package jenga_test

import (
	"testing"

	"jenga"
	"jenga/internal/bench"
)

// TestDecodeStepZeroAlloc is the allocation budget of the hot path: in
// steady-state decode, one engine step performs zero heap allocations —
// no per-step running-list copy, no per-decode projected-context map,
// no Usage map on the sampling path, no free-pool map churn in the
// allocator. The budget is asserted over a measurement window placed
// mid-plateau of the engine's amortized slices (token buffer is
// pre-sized at Submit; page tables and timelines are within capacity),
// so any regression that allocates per step or per token fails loudly.
//
// Skipped under -short: the race-detector CI pass (-race -short) adds
// instrumentation allocations that are not the engine's.
func TestDecodeStepZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is not meaningful under -short/-race runs")
	}
	spec := &jenga.Spec{
		Name: "zeroalloc", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []jenga.KVGroup{
			{Name: "kv", Kind: jenga.FullAttention, Layers: 2, BytesPerToken: 128, Scope: jenga.ScopeText},
		},
	}
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: 64 << 20, TokensPerPage: 16, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := jenga.NewEngine(jenga.EngineConfig{
		Spec: spec, Manager: mgr, MaxBatchTokens: 2048, MaxSteps: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := jenga.Request{ID: 1, OutputLen: 4096}
	for j := 0; j < 64; j++ {
		req.Prompt = append(req.Prompt, jenga.Token{ID: int32(j + 1)})
	}
	if err := eng.Submit(&req); err != nil {
		t.Fatal(err)
	}
	// Warm deep into decode so every amortized slice (page table,
	// decode timeline) sits mid-plateau for the measurement window.
	for i := 0; i < 1300; i++ {
		if err := eng.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(128, func() {
		if err := eng.StepOnce(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode step allocates %.2f objects per step, want 0", allocs)
	}
}

// TestWarmLookupZeroAlloc pins the warm-lookup budget on the exact
// fixture the committed benchmark trajectory measures: after the first
// lookup hashes the prompt, repeat lookups over the same live sequence
// extend the per-group scratch incrementally and allocate nothing
// (buildView's contract — the scratch lives on the group, and nothing
// returned from Lookup outlives the call).
func TestWarmLookupZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is not meaningful under -short/-race runs")
	}
	op, err := bench.LookupWarm()
	if err != nil {
		t.Fatal(err)
	}
	// First lookup builds the scratch cold; everything after is warm.
	if err := op.Run(0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(128, func() {
		if err := op.Run(1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm prefix lookup allocates %.2f objects per call, want 0", allocs)
	}
}

// TestServeArrivalAllocBudget bounds the per-arrival cost of the
// online router loop (snapshot every replica, route, submit) on the
// serve_online_arrival fixture. Unlike the decode and lookup paths
// this one legitimately allocates — Submit creates the request's run
// state — so the budget is a measured constant, not zero: the point is
// catching a regression that starts allocating per replica or per
// prompt token on the routing path.
func TestServeArrivalAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is not meaningful under -short/-race runs")
	}
	op, err := bench.ServeOnlineArrival()
	if err != nil {
		t.Fatal(err)
	}
	// Warm within one recycle window (RecycleEvery is 512): the
	// measurement below stays inside the near-empty routing regime the
	// fixture is built to hold.
	iter := 0
	for ; iter < 100; iter++ {
		if err := op.Run(iter); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(64, func() {
		if err := op.Run(iter); err != nil {
			t.Fatal(err)
		}
		iter++
	})
	const budget = 16
	if allocs > budget {
		t.Fatalf("online arrival allocates %.2f objects per request, budget %d", allocs, budget)
	}
}
