module jenga

go 1.24
