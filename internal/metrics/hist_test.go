package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestDurationHistExactEdges(t *testing.T) {
	var h DurationHist
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	xs := []time.Duration{5 * time.Millisecond, 80 * time.Microsecond, 3 * time.Second, 80 * time.Microsecond}
	for _, x := range xs {
		h.Observe(x)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	// Rank 1 and rank n are served from the tracked exact min and max.
	if got := h.Percentile(0.1); got != 80*time.Microsecond {
		t.Fatalf("p0.1 = %v, want exact min", got)
	}
	if got := h.Percentile(100); got != 3*time.Second {
		t.Fatalf("p100 = %v, want exact max", got)
	}
	if got, want := h.Mean(), MeanDuration(xs); got != want {
		t.Fatalf("mean = %v, want exact %v", got, want)
	}
}

func TestDurationHistNegativeClamps(t *testing.T) {
	var h DurationHist
	h.Observe(-time.Second)
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("negative observation must clamp to 0, got %v", got)
	}
}

// Histogram percentiles must track the exact nearest-rank percentiles
// within the bucket resolution (≤ ~4.5% relative error above 16ns).
func TestDurationHistMatchesExactPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h DurationHist
	xs := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over ~6 decades: exercises many bucket scales.
		x := time.Duration(float64(time.Microsecond) * (1 + rng.ExpFloat64()*float64(int64(1)<<uint(rng.Intn(20)))))
		xs = append(xs, x)
		h.Observe(x)
	}
	for _, p := range []float64{25, 50, 90, 99, 99.9} {
		exact := Percentile(xs, p)
		got := h.Percentile(p)
		if relErr(got, exact) > 0.045 {
			t.Fatalf("p%v = %v, exact %v (rel err %.3f)", p, got, exact, relErr(got, exact))
		}
	}
}

func TestDurationHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b DurationHist
	for i := 0; i < 2000; i++ {
		x := time.Duration(rng.Int63n(int64(10 * time.Millisecond)))
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(&b)
	var empty DurationHist
	a.Merge(&empty) // merging an empty histogram is a no-op
	if a.Count() != whole.Count() || a.Mean() != whole.Mean() {
		t.Fatalf("merge lost observations: count %d/%d mean %v/%v", a.Count(), whole.Count(), a.Mean(), whole.Mean())
	}
	for _, p := range []float64{1, 50, 99, 100} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%v differs after merge: %v vs %v", p, a.Percentile(p), whole.Percentile(p))
		}
	}
}

func relErr(got, want time.Duration) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}
