package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// TestPercentilesMatchesPercentile pins the sort-once helper to the
// per-call form across sizes and edge ranks, including the empty and
// out-of-range cases.
func TestPercentilesMatchesPercentile(t *testing.T) {
	ps := []float64{-1, 0, 25, 50, 90, 99, 100, 150}
	for _, n := range []int{0, 1, 2, 7, 100, 999} {
		rng := rand.New(rand.NewSource(int64(n)))
		xs := make([]time.Duration, n)
		for i := range xs {
			xs[i] = time.Duration(rng.Intn(1_000_000))
		}
		got := Percentiles(xs, ps...)
		if len(got) != len(ps) {
			t.Fatalf("n=%d: got %d values, want %d", n, len(got), len(ps))
		}
		for i, p := range ps {
			if want := Percentile(xs, p); got[i] != want {
				t.Errorf("n=%d p=%v: Percentiles = %v, Percentile = %v", n, p, got[i], want)
			}
		}
	}
	// The input must not be reordered (callers keep their samples).
	xs := []time.Duration{5, 1, 4, 2, 3}
	Percentiles(xs, 50, 99)
	for i, want := range []time.Duration{5, 1, 4, 2, 3} {
		if xs[i] != want {
			t.Fatalf("input mutated: %v", xs)
		}
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Errorf("mean = %v, want 2s", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("percentile mutated its input")
	}
}

// TestPercentileNearestRank pins the ceil-based nearest-rank rule on
// small samples: rank ⌈n·p/100⌉ of the sorted sample, 1-indexed. The
// previous round-half-up implementation disagreed on several of these
// (n=6 p=20 picked rank 1 instead of 2; p99 understated by one rank
// for most n), so each row is a regression anchor.
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		rank int // 1-indexed nearest rank: ⌈n·p/100⌉
	}{
		{n: 6, p: 20, rank: 2},   // ⌈1.2⌉ — the motivating bug: half-up gave rank 1
		{n: 6, p: 50, rank: 3},   // ⌈3.0⌉
		{n: 6, p: 99, rank: 6},   // ⌈5.94⌉
		{n: 4, p: 50, rank: 2},   // ⌈2.0⌉
		{n: 5, p: 50, rank: 3},   // ⌈2.5⌉
		{n: 5, p: 30, rank: 2},   // ⌈1.5⌉ — half-up also gave 2; agreement case
		{n: 1, p: 99, rank: 1},   // single sample
		{n: 2, p: 99, rank: 2},   // ⌈1.98⌉
		{n: 10, p: 99, rank: 10}, // ⌈9.9⌉ — half-up gave rank 9
		{n: 10, p: 90, rank: 9},  // ⌈9.0⌉
		{n: 100, p: 99, rank: 99},
		{n: 101, p: 99, rank: 100}, // ⌈99.99⌉
		{n: 180, p: 99, rank: 179}, // ⌈178.2⌉ — half-up gave 178 (cluster goldens)
		{n: 180, p: 50, rank: 90},  // unchanged by the fix
		{n: 460, p: 99, rank: 456}, // ⌈455.4⌉ (BENCH_serving population)
		{n: 1000, p: 99.9, rank: 999},
	}
	for _, c := range cases {
		// Sorted sample 1ns..n ns, so value == rank.
		xs := make([]time.Duration, c.n)
		for i := range xs {
			xs[i] = time.Duration(i + 1)
		}
		if got := Percentile(xs, c.p); got != time.Duration(c.rank) {
			t.Errorf("n=%d p=%v: rank %d, want %d", c.n, c.p, int64(got), c.rank)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(4, 2) != 2 {
		t.Error("4/2 should be 2")
	}
	if Speedup(1, 0) != 0 {
		t.Error("division by zero should yield 0")
	}
}

func TestMeans(t *testing.T) {
	if MeanFloat(nil) != 0 || MeanInt(nil) != 0 {
		t.Error("empty means should be 0")
	}
	if MeanFloat([]float64{1, 2, 3}) != 2 {
		t.Error("float mean wrong")
	}
	if MeanInt([]int{2, 4}) != 3 {
		t.Error("int mean wrong")
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	ds := Downsample(xs, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d, want 10", len(ds))
	}
	if ds[len(ds)-1] != 99 {
		t.Error("downsample must keep the final point")
	}
	// Short series pass through untouched.
	short := []float64{1, 2}
	if got := Downsample(short, 10); len(got) != 2 {
		t.Error("short series should pass through")
	}
	ints := DownsampleInts([]int{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if len(ints) != 4 || ints[3] != 8 {
		t.Errorf("int downsample wrong: %v", ints)
	}
	if got := DownsampleInts([]int{1}, 0); len(got) != 1 {
		t.Error("n<=0 should pass through")
	}
}
