// Package metrics provides small statistics helpers shared by the
// experiment runners: means, percentiles, ratios and series
// downsampling for terminal-width output.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"time"
)

// histBuckets is the DurationHist bucket count: values below 16ns get
// an exact bucket each; above that, 16 sub-buckets per power of two
// (≈4.4% relative width) up to the full int64 nanosecond range.
const histBuckets = 16 * 61

// DurationHist is a log-bucketed duration histogram for streamed
// percentile accounting: million-request runs can't keep a duration
// per request, so terminal events fold into fixed-size buckets and
// percentiles are read back with ≤ ~3% relative error (exact min and
// max are tracked separately). The bucket function is pure integer
// math, so histograms are deterministic and Merge-able across shards.
type DurationHist struct {
	counts   [histBuckets]int64
	n        int64
	sum      int64
	min, max int64
}

// histBucket maps a non-negative nanosecond count to its bucket.
func histBucket(ns int64) int {
	if ns < 16 {
		return int(ns)
	}
	e := bits.Len64(uint64(ns)) - 1 // 4..62
	sub := int((uint64(ns) >> (e - 4)) & 15)
	return 16*(e-3) + sub
}

// histValue returns the midpoint of bucket idx's value range.
func histValue(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	e := idx/16 + 3
	lo := int64(16+idx%16) << (e - 4)
	return lo + int64(1)<<(e-4)/2
}

// Observe adds one duration (negatives clamp to zero).
func (h *DurationHist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	if h.n == 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.counts[histBucket(ns)]++
	h.n++
	h.sum += ns
}

// Merge folds o into h (shard-local histograms into the fleet one).
func (h *DurationHist) Merge(o *DurationHist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *DurationHist) Count() int64 { return h.n }

// Mean returns the exact mean of the observed durations.
func (h *DurationHist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Percentile returns the nearest-rank p-th percentile, matching
// Percentile's rank rule (⌈n·p/100⌉) at bucket resolution; rank 1 and
// rank n return the exact min and max.
func (h *DurationHist) Percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	k := int64(math.Ceil(float64(h.n) * p / 100.0))
	if k < 1 {
		k = 1
	}
	if k > h.n {
		k = h.n
	}
	if k == 1 {
		return time.Duration(h.min)
	}
	if k == h.n {
		return time.Duration(h.max)
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= k {
			return time.Duration(histValue(i))
		}
	}
	return time.Duration(h.max)
}

// MeanDuration returns the arithmetic mean (0 for empty input).
func MeanDuration(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var s time.Duration
	for _, x := range xs {
		s += x
	}
	return s / time.Duration(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []time.Duration, p float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return percentileSorted(cp, p)
}

// Percentiles returns the requested percentiles of xs, sorting one
// copy once — the multi-percentile form report paths use so a p50/p99
// pair doesn't sort the same latency sample twice. Values match
// Percentile exactly (same nearest-rank rule).
func Percentiles(xs []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(xs) == 0 {
		return out
	}
	cp := append([]time.Duration(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	for i, p := range ps {
		out[i] = percentileSorted(cp, p)
	}
	return out
}

// percentileSorted is the nearest-rank rule over a sorted sample:
// rank ⌈n·p/100⌉, 1-indexed. (A round-half-up variant shipped here
// once disagreed with nearest rank on small samples — n=6, p=20
// picked rank 1 instead of 2 — and understated p99 by one rank for
// most sample sizes.)
func percentileSorted(cp []time.Duration, p float64) time.Duration {
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	idx := int(math.Ceil(float64(len(cp))*p/100)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Attainment returns the fraction of xs at or below target — SLO
// attainment over a latency sample. Empty input or a non-positive
// target returns 1 (a vacuous SLO is met).
func Attainment(xs []time.Duration, target time.Duration) float64 {
	if len(xs) == 0 || target <= 0 {
		return 1
	}
	met := 0
	for _, x := range xs {
		if x <= target {
			met++
		}
	}
	return float64(met) / float64(len(xs))
}

// Goodput returns useful completions per second of d: finishes that
// met their deadline, over the serving duration. Zero duration is
// zero goodput.
func Goodput(metDeadline int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(metDeadline) / d.Seconds()
}

// Fraction returns part/whole, 0 when whole is 0 — shed rate, failure
// rate and similar count ratios.
func Fraction(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// Speedup returns a/b, guarding against division by zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MeanFloat returns the arithmetic mean of a float slice.
func MeanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanInt returns the arithmetic mean of an int slice.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// Imbalance returns the load-imbalance factor of a share vector:
// max(xs)/mean(xs). 1.0 is perfect balance; it returns 0 for empty or
// all-zero input.
func Imbalance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	maxV, sum := xs[0], 0.0
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
		sum += x
	}
	if sum == 0 {
		return 0
	}
	return maxV / (sum / float64(len(xs)))
}

// Jain returns Jain's fairness index of a share vector:
// (Σx)² / (n·Σx²). 1.0 means perfectly even shares, 1/n means one
// participant received everything. Empty or all-zero input returns 1
// (nothing was served, so nobody was treated unfairly).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Downsample reduces a series to at most n points by striding, always
// keeping the final point; it returns the original when already short.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	stride := float64(len(xs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, xs[int(float64(i)*stride)])
	}
	out[len(out)-1] = xs[len(xs)-1]
	return out
}

// DownsampleInts is Downsample for integer series.
func DownsampleInts(xs []int, n int) []int {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]int, 0, n)
	stride := float64(len(xs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, xs[int(float64(i)*stride)])
	}
	out[len(out)-1] = xs[len(xs)-1]
	return out
}
