// Package metrics provides small statistics helpers shared by the
// experiment runners: means, percentiles, ratios and series
// downsampling for terminal-width output.
package metrics

import (
	"math"
	"sort"
	"time"
)

// MeanDuration returns the arithmetic mean (0 for empty input).
func MeanDuration(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var s time.Duration
	for _, x := range xs {
		s += x
	}
	return s / time.Duration(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []time.Duration, p float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return percentileSorted(cp, p)
}

// Percentiles returns the requested percentiles of xs, sorting one
// copy once — the multi-percentile form report paths use so a p50/p99
// pair doesn't sort the same latency sample twice. Values match
// Percentile exactly (same nearest-rank rule).
func Percentiles(xs []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(xs) == 0 {
		return out
	}
	cp := append([]time.Duration(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	for i, p := range ps {
		out[i] = percentileSorted(cp, p)
	}
	return out
}

// percentileSorted is the nearest-rank rule over a sorted sample:
// rank ⌈n·p/100⌉, 1-indexed. (A round-half-up variant shipped here
// once disagreed with nearest rank on small samples — n=6, p=20
// picked rank 1 instead of 2 — and understated p99 by one rank for
// most sample sizes.)
func percentileSorted(cp []time.Duration, p float64) time.Duration {
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	idx := int(math.Ceil(float64(len(cp))*p/100)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Attainment returns the fraction of xs at or below target — SLO
// attainment over a latency sample. Empty input or a non-positive
// target returns 1 (a vacuous SLO is met).
func Attainment(xs []time.Duration, target time.Duration) float64 {
	if len(xs) == 0 || target <= 0 {
		return 1
	}
	met := 0
	for _, x := range xs {
		if x <= target {
			met++
		}
	}
	return float64(met) / float64(len(xs))
}

// Goodput returns useful completions per second of d: finishes that
// met their deadline, over the serving duration. Zero duration is
// zero goodput.
func Goodput(metDeadline int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(metDeadline) / d.Seconds()
}

// Fraction returns part/whole, 0 when whole is 0 — shed rate, failure
// rate and similar count ratios.
func Fraction(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// Speedup returns a/b, guarding against division by zero.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MeanFloat returns the arithmetic mean of a float slice.
func MeanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanInt returns the arithmetic mean of an int slice.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}

// Imbalance returns the load-imbalance factor of a share vector:
// max(xs)/mean(xs). 1.0 is perfect balance; it returns 0 for empty or
// all-zero input.
func Imbalance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	maxV, sum := xs[0], 0.0
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
		sum += x
	}
	if sum == 0 {
		return 0
	}
	return maxV / (sum / float64(len(xs)))
}

// Jain returns Jain's fairness index of a share vector:
// (Σx)² / (n·Σx²). 1.0 means perfectly even shares, 1/n means one
// participant received everything. Empty or all-zero input returns 1
// (nothing was served, so nobody was treated unfairly).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Downsample reduces a series to at most n points by striding, always
// keeping the final point; it returns the original when already short.
func Downsample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	stride := float64(len(xs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, xs[int(float64(i)*stride)])
	}
	out[len(out)-1] = xs[len(xs)-1]
	return out
}

// DownsampleInts is Downsample for integer series.
func DownsampleInts(xs []int, n int) []int {
	if n <= 0 || len(xs) <= n {
		return xs
	}
	out := make([]int, 0, n)
	stride := float64(len(xs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, xs[int(float64(i)*stride)])
	}
	out[len(out)-1] = xs[len(xs)-1]
	return out
}
