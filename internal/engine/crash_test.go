package engine

import (
	"testing"
	"time"
)

// TestCrashOutLosesProgressKeepsIdentity: a crash extracts every live
// request with its progress reset to the prompt (the KV died with the
// device), emits nothing, and empties the engine. Re-dispatched on a
// survivor, every request still finishes exactly once — the crashed
// work re-runs as recompute, and a request whose first token was
// already streamed never emits a second EventFirstToken.
func TestCrashOutLosesProgressKeepsIdentity(t *testing.T) {
	reqs := textReqs(31, 3, 200, 12)
	reqs[2].Arrival = time.Hour // still pending at crash time
	a := migrateEngine(t, 32<<20)
	for i := range reqs {
		if err := a.Submit(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	stepToGenerated(t, a, 4)

	var crashEvents int
	a.SetEventSink(func(Event) { crashEvents++ })
	lost := a.CrashOut()
	a.SetEventSink(nil)
	if crashEvents != 0 {
		t.Fatalf("CrashOut emitted %d events, want none", crashEvents)
	}
	if len(lost) != 3 {
		t.Fatalf("extracted %d requests, want 3", len(lost))
	}
	if a.Live() {
		t.Fatal("engine still live after CrashOut")
	}
	sawProgress := false
	for _, m := range lost {
		if len(m.Tokens) != len(m.Req.Prompt) {
			t.Fatalf("request %d extracted %d tokens, want prompt-only %d",
				m.Req.ID, len(m.Tokens), len(m.Req.Prompt))
		}
		if m.DecodesDone != 0 {
			t.Fatalf("request %d kept %d decodes across a crash", m.Req.ID, m.DecodesDone)
		}
		if m.EverComputed > 0 {
			sawProgress = true
		}
		if m.Req.Arrival == time.Hour && m.Started {
			t.Fatal("pending request extracted as started")
		}
	}
	if !sawProgress {
		t.Fatal("no extracted request carried a recompute high-water mark")
	}

	b := migrateEngine(t, 32<<20)
	firstTokens := make(map[int64]int)
	terminals := make(map[int64]int)
	b.SetEventSink(func(ev Event) {
		if ev.Type == EventFirstToken {
			firstTokens[ev.ID]++
		}
		if ev.Type.Terminal() {
			terminals[ev.ID]++
		}
	})
	for _, m := range lost {
		// A redispatched request whose first token already streamed
		// must not re-announce it on the survivor.
		if m.FirstToken > 0 {
			firstTokens[m.Req.ID]++
		}
		b.MigrateIn(m)
	}
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	res := b.ResultSnapshot()
	if res.Finished != 3 {
		t.Fatalf("survivor finished %d of 3 redispatched requests", res.Finished)
	}
	if res.RecomputedTokens == 0 {
		t.Fatal("crashed progress re-ran without counting as recompute")
	}
	for id, n := range firstTokens {
		if n != 1 {
			t.Fatalf("request %d announced %d first tokens, want exactly 1", id, n)
		}
	}
	for id, n := range terminals {
		if n != 1 {
			t.Fatalf("request %d saw %d terminal events on the survivor", id, n)
		}
	}
}
