package engine

import (
	"testing"
	"time"

	"jenga/internal/core"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// tieredJengaFor builds a prefix-caching Jenga manager with a host
// tier of hostBytes.
func tieredJengaFor(t *testing.T, spec *model.Spec, capacity, hostBytes int64) core.Manager {
	t.Helper()
	m, err := core.New(core.Config{
		Spec: spec, CapacityBytes: capacity, TokensPerPage: 8,
		EnablePrefixCache: true, RequestAware: true,
		HostTierBytes: hostBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRunGoldenRecomputeZeroTier: PreemptMode=recompute with an
// explicitly zero-byte host tier must be bit-identical to the pinned
// golden engine — the tier plumbing (TierManager capability,
// per-step DrainTransfers, PCIe term) must add exactly nothing when
// the tier is empty. Reuses the pressure golden (the regime with a
// preemption, where a behavior change would show first).
func TestRunGoldenRecomputeZeroTier(t *testing.T) {
	spec := miniWindowSpec()
	mgr := tieredJengaFor(t, spec, 2<<20, 0)
	e, err := New(Config{
		Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512, MaxPrefills: 2,
		PreemptMode: PreemptRecompute,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(goldenWorkload())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, goldenExpect{
		steps: 420, finished: 72, failed: 0, preemptions: 1,
		duration: 718772744, meanTTFT: 51702475, meanE2E: 115422445, tpot: 1674159,
		cached: 0, computed: 36005, generated: 2737,
		hitRate: "0.000000000", meanKV: "0.861000559", peakKV: "0.984726295",
		decodeBatch: "6.532219570",
	})
	if res.SwapOuts != 0 || res.SwapIns != 0 || res.RestoredTokens != 0 || res.TierHitRate != 0 {
		t.Fatalf("zero-byte tier moved data: %+v", res)
	}
}

// pressureWorkload is a shared-prefix stream whose prefix working set
// (24 groups × 600 tokens) far exceeds the 1 MiB GPU budget: the
// evictor constantly discards one group's prefix to admit another's,
// so without a tier nearly every arrival recomputes its shared prefix
// from scratch, and preemption victims whose blocks were evicted
// recompute their own work too.
func pressureWorkload() []workload.Request {
	g := workload.NewGen(42)
	reqs := g.PrefixGroups(24, 8, 600, 64)
	g.PoissonArrivals(reqs, 400)
	return reqs
}

// runPressure executes the pressure scenario under one preempt mode
// and tier size.
func runPressure(t *testing.T, mode PreemptMode, hostBytes int64) *Result {
	t.Helper()
	spec := miniWindowSpec()
	mgr := tieredJengaFor(t, spec, 1<<20, hostBytes)
	e, err := New(Config{
		Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512, MaxPrefills: 2, MaxRunning: 16,
		PreemptMode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(pressureWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// p99TTFT is the nearest-rank p99 over a result's finished requests.
func p99TTFT(res *Result) time.Duration {
	ts := make([]time.Duration, 0, len(res.PerRequest))
	for _, rm := range res.PerRequest {
		ts = append(ts, rm.TTFT)
	}
	if len(ts) == 0 {
		return 0
	}
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	idx := (len(ts)*99 + 99) / 100
	if idx > len(ts) {
		idx = len(ts)
	}
	return ts[idx-1]
}

// TestSwapBeatsRecomputeUnderPressure is the tier's acceptance
// anchor: with a host tier sized to the working set and swap-based
// preemption, a memory-pressured run must recompute fewer tokens and
// deliver a better p99 TTFT than recompute-mode with no tier, while
// actually moving data through the tier both ways.
func TestSwapBeatsRecomputeUnderPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("pressured serving comparison (seconds of simulation); run without -short")
	}
	recompute := runPressure(t, PreemptRecompute, 0)
	swap := runPressure(t, PreemptSwap, 64<<20)

	if recompute.Preemptions == 0 && recompute.RecomputedTokens == 0 {
		t.Fatalf("scenario not memory-pressured: no preemptions or recompute (finished %d)", recompute.Finished)
	}
	if swap.SwapOuts == 0 || swap.SwapIns == 0 || swap.RestoredTokens == 0 {
		t.Fatalf("swap mode moved nothing through the tier: %+v", swap)
	}
	if swap.TierHitRate <= 0 {
		t.Fatalf("TierHitRate = %v, want > 0", swap.TierHitRate)
	}
	// Fewer recomputed tokens: both the per-request recompute waste
	// and the shared-prefix recompute (computed prompt work overall).
	if swap.RecomputedTokens >= recompute.RecomputedTokens && recompute.RecomputedTokens > 0 {
		t.Errorf("swap recomputed %d tokens, recompute %d — tier did not pay",
			swap.RecomputedTokens, recompute.RecomputedTokens)
	}
	if swap.ComputedPromptTokens >= recompute.ComputedPromptTokens {
		t.Errorf("swap computed %d prompt tokens, recompute %d — spilled prefixes were not restored",
			swap.ComputedPromptTokens, recompute.ComputedPromptTokens)
	}
	if swap.HitRate <= recompute.HitRate {
		t.Errorf("swap hit rate %v not above recompute %v", swap.HitRate, recompute.HitRate)
	}
	if got, want := p99TTFT(swap), p99TTFT(recompute); got >= want {
		t.Errorf("swap p99 TTFT %v not better than recompute %v", got, want)
	}
	if swap.Finished < recompute.Finished {
		t.Errorf("finished: swap %d below recompute %d", swap.Finished, recompute.Finished)
	}
}

// TestSwapModeDegradesOnBaseline: a manager without the TierManager
// capability must serve identically under PreemptSwap and
// PreemptRecompute — swap mode silently degrades, it never breaks a
// baseline comparison.
func TestSwapModeDegradesOnBaseline(t *testing.T) {
	spec := miniWindowSpec()
	run := func(mode PreemptMode) *Result {
		mgr := jengaFor(t, spec, 2<<20, true)
		// Strip the capability by wrapping.
		e, err := New(Config{
			Spec: spec, Device: smallDevice(), Manager: managerOnly{mgr},
			MaxBatchTokens: 512, MaxPrefills: 2, PreemptMode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(goldenWorkload())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(PreemptRecompute), run(PreemptSwap)
	if a.Duration != b.Duration || a.Steps != b.Steps || a.Finished != b.Finished ||
		a.Preemptions != b.Preemptions || a.ComputedPromptTokens != b.ComputedPromptTokens {
		t.Fatalf("swap mode diverged on a tierless manager: %+v vs %+v", a, b)
	}
}

// managerOnly hides every extra capability of the wrapped manager.
type managerOnly struct{ core.Manager }
