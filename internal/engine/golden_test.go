package engine

import (
	"fmt"
	"testing"
	"time"

	"jenga/internal/workload"
)

// The batch/online equivalence contract: Engine.Run is now a thin
// driver over the event-emitting streaming core, and these goldens pin
// its seeded metrics to the exact values the PR-1 pull-batch engine
// produced — every duration to the nanosecond, every float to nine
// digits. If a scheduler change shifts any of them, that change is not
// a refactor.

// goldenWorkload is the seeded scenario both goldens share: six prefix
// classes arriving at 150 req/s.
func goldenWorkload() []workload.Request {
	g := workload.NewGen(42)
	reqs := g.PrefixGroups(6, 12, 400, 100)
	g.PoissonArrivals(reqs, 150)
	return reqs
}

func runGolden(t *testing.T, capacity int64) *Result {
	t.Helper()
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, capacity, true)
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 512, MaxPrefills: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(goldenWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

type goldenExpect struct {
	steps, finished, failed, preemptions int
	duration, meanTTFT, meanE2E, tpot    time.Duration
	cached, computed, generated          int64
	hitRate, meanKV, peakKV, decodeBatch string // %.9f
}

func checkGolden(t *testing.T, res *Result, want goldenExpect) {
	t.Helper()
	if res.Steps != want.steps || res.Finished != want.finished || res.Failed != want.failed || res.Preemptions != want.preemptions {
		t.Errorf("steps/finished/failed/preempt = %d/%d/%d/%d, want %d/%d/%d/%d",
			res.Steps, res.Finished, res.Failed, res.Preemptions,
			want.steps, want.finished, want.failed, want.preemptions)
	}
	if res.Duration != want.duration || res.MeanTTFT != want.meanTTFT || res.MeanE2E != want.meanE2E || res.MeanTPOT != want.tpot {
		t.Errorf("duration/ttft/e2e/tpot = %d/%d/%d/%d, want %d/%d/%d/%d",
			int64(res.Duration), int64(res.MeanTTFT), int64(res.MeanE2E), int64(res.MeanTPOT),
			int64(want.duration), int64(want.meanTTFT), int64(want.meanE2E), int64(want.tpot))
	}
	if res.CachedPromptTokens != want.cached || res.ComputedPromptTokens != want.computed || res.GeneratedTokens != want.generated {
		t.Errorf("cached/computed/generated = %d/%d/%d, want %d/%d/%d",
			res.CachedPromptTokens, res.ComputedPromptTokens, res.GeneratedTokens,
			want.cached, want.computed, want.generated)
	}
	for _, c := range []struct{ name, got, want string }{
		{"hitRate", fmt.Sprintf("%.9f", res.HitRate), want.hitRate},
		{"meanKVUtil", fmt.Sprintf("%.9f", res.MeanKVUtil), want.meanKV},
		{"peakKVUtil", fmt.Sprintf("%.9f", res.PeakKVUtil), want.peakKV},
		{"meanDecodeBatch", fmt.Sprintf("%.9f", res.MeanDecodeBatch), want.decodeBatch},
	} {
		if c.got != c.want {
			t.Errorf("%s = %s, want %s", c.name, c.got, c.want)
		}
	}
}

// TestRunGoldenSeeded pins the cache-hit regime (capacity fits the
// shared prefixes) to the PR-1 numbers.
func TestRunGoldenSeeded(t *testing.T) {
	checkGolden(t, runGolden(t, 4<<20), goldenExpect{
		steps: 364, finished: 72, failed: 0, preemptions: 0,
		duration: 610860021, meanTTFT: 4447128, meanE2E: 69768203, tpot: 1720666,
		cached: 7600, computed: 28400, generated: 2737,
		hitRate: "0.211111111", meanKV: "0.882433203", peakKV: "0.980266373",
		decodeBatch: "7.539944904",
	})
}

// TestRunGoldenSeededPressure pins the memory-pressure regime (caches
// evicted, one preemption) to the PR-1 numbers.
func TestRunGoldenSeededPressure(t *testing.T) {
	checkGolden(t, runGolden(t, 2<<20), goldenExpect{
		steps: 420, finished: 72, failed: 0, preemptions: 1,
		duration: 718772744, meanTTFT: 51702475, meanE2E: 115422445, tpot: 1674159,
		cached: 0, computed: 36005, generated: 2737,
		hitRate: "0.000000000", meanKV: "0.861000559", peakKV: "0.984726295",
		decodeBatch: "6.532219570",
	})
}

// TestRunMatchesManualDrive proves the batch driver is nothing but the
// streaming core: submitting the same workload by hand and stepping
// the core to drain reproduces Run's result exactly.
func TestRunMatchesManualDrive(t *testing.T) {
	spec := miniWindowSpec()
	want := runGolden(t, 4<<20)

	mgr := jengaFor(t, spec, 4<<20, true)
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 512, MaxPrefills: 2})
	if err != nil {
		t.Fatal(err)
	}
	reqs := goldenWorkload()
	e.Reset()
	for i := range reqs {
		if err := e.Submit(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	got := e.ResultSnapshot()
	if got.Steps != want.Steps || got.Duration != want.Duration ||
		got.Finished != want.Finished || got.CachedPromptTokens != want.CachedPromptTokens ||
		got.GeneratedTokens != want.GeneratedTokens || got.MeanTTFT != want.MeanTTFT ||
		got.MeanKVUtil != want.MeanKVUtil {
		t.Errorf("manual drive diverged from Run: got %+v want %+v", got, want)
	}
}
