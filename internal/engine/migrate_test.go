package engine

import (
	"testing"
	"time"

	"jenga/internal/core"
)

// stepToGenerated advances e until the request has produced at least
// want output tokens (first token included), via the event stream.
func stepToGenerated(t *testing.T, e *Engine, want int) {
	t.Helper()
	gen := 0
	prev := e.onEvent
	e.SetEventSink(func(ev Event) {
		if ev.Generated > gen {
			gen = ev.Generated
		}
		if prev != nil {
			prev(ev)
		}
	})
	for e.Live() && gen < want {
		if err := e.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	e.SetEventSink(prev)
	if gen < want {
		t.Fatalf("engine drained at %d generated tokens, want ≥ %d", gen, want)
	}
}

// migrateEngine builds a single-replica engine over a fresh manager.
func migrateEngine(t *testing.T, hostBytes int64) *Engine {
	t.Helper()
	spec := miniWindowSpec()
	var mgr core.Manager
	if hostBytes > 0 {
		mgr = tieredJengaFor(t, spec, 8<<20, hostBytes)
	} else {
		mgr = jengaFor(t, spec, 8<<20, true)
	}
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512, PreemptMode: PreemptSwap})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMigrateRunningRoundTrip: a mid-decode request migrates from A to
// B and finishes there; the extracted state releases every page on A,
// rides A's host tier (SwapOut), and the resumed decode on B picks up
// exactly where A stopped — token content is deterministic in
// (ID, position), so the sequence B continues is the one a never-
// migrated engine would have produced.
func TestMigrateRunningRoundTrip(t *testing.T) {
	req := textReqs(21, 1, 200, 20)[0]
	a := migrateEngine(t, 32<<20)
	var aEvents []EventType
	a.SetEventSink(func(ev Event) { aEvents = append(aEvents, ev.Type) })
	if err := a.Submit(&req); err != nil {
		t.Fatal(err)
	}
	stepToGenerated(t, a, 4)

	m, ok := a.MigrateOut(req.ID)
	if !ok {
		t.Fatal("MigrateOut missed a running request")
	}
	if !m.Started || m.DecodesDone < 3 || m.FirstToken <= 0 {
		t.Fatalf("extracted state: %+v", m)
	}
	// The newest decode token is appended at its consuming step, so the
	// sequence holds the prompt plus one token per completed decode.
	if want := len(req.Prompt) + m.DecodesDone; len(m.Tokens) != want {
		t.Fatalf("extracted %d tokens, want %d", len(m.Tokens), want)
	}
	if a.Live() {
		t.Fatal("source still live after migrating its only request")
	}
	// Cache-preserving release: nothing stays pinned to the request.
	if u := a.cfg.Manager.Usage(); u.Used != 0 {
		t.Fatalf("source leaked held memory: %+v", u)
	}
	if ts := a.tier.TierStats(); ts.SwapOuts == 0 {
		t.Fatalf("running migration bypassed the host tier: %+v", ts)
	}
	if got := aEvents[len(aEvents)-1]; got != EventMigrated {
		t.Fatalf("last source event %v, want %v", got, EventMigrated)
	}
	if EventMigrated.Terminal() {
		t.Fatal("EventMigrated must not be terminal")
	}
	if res := a.ResultSnapshot(); res.MigratedOut != 1 || res.Finished != 0 {
		t.Fatalf("source result: %+v", res)
	}

	// A control engine runs the same request to the same point: the
	// extracted token content must be identical.
	reqC := textReqs(21, 1, 200, 20)[0]
	c := migrateEngine(t, 0)
	if err := c.Submit(&reqC); err != nil {
		t.Fatal(err)
	}
	stepToGenerated(t, c, 1+m.DecodesDone)
	mc, ok := c.MigrateOut(reqC.ID)
	if !ok || len(mc.Tokens) != len(m.Tokens) {
		t.Fatalf("control extraction: ok=%v %d tokens vs %d", ok, len(mc.Tokens), len(m.Tokens))
	}
	for i := range m.Tokens {
		if m.Tokens[i] != mc.Tokens[i] {
			t.Fatalf("token %d diverged across engines: %v vs %v", i, m.Tokens[i], mc.Tokens[i])
		}
	}

	// Resume on B: queued event first, then the rest of the decode.
	b := migrateEngine(t, 0)
	var bQueued, bFinished bool
	b.SetEventSink(func(ev Event) {
		switch ev.Type {
		case EventQueued:
			bQueued = true
		case EventFinished:
			bFinished = true
		}
	})
	b.MigrateIn(m)
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	if !bQueued || !bFinished {
		t.Fatalf("destination events: queued=%v finished=%v", bQueued, bFinished)
	}
	res := b.ResultSnapshot()
	if res.Finished != 1 || res.MigratedIn != 1 {
		t.Fatalf("destination result: %+v", res)
	}
	if len(res.PerRequest) != 1 || res.PerRequest[0].ID != req.ID {
		t.Fatalf("per-request record missing: %+v", res.PerRequest)
	}
	// TTFT continuity: the destination keeps the source's first-token
	// instant rather than re-measuring.
	if res.PerRequest[0].TTFT != m.FirstToken {
		t.Fatalf("TTFT %v, want the migrated instant %v", res.PerRequest[0].TTFT, m.FirstToken)
	}
	if u := b.cfg.Manager.Usage(); u.Used != 0 {
		t.Fatalf("destination leaked held memory: %+v", u)
	}
}

// TestMigrateUnstartedAndWaiting covers the two no-KV extraction paths:
// a pending (not yet arrived) request migrates with Started=false and
// re-enters the destination's arrival queue; a waiting request migrates
// with Started=true.
func TestMigrateUnstartedAndWaiting(t *testing.T) {
	reqs := textReqs(22, 2, 150, 8)
	reqs[1].Arrival = time.Hour // never reached before migration
	a := migrateEngine(t, 0)
	for i := range reqs {
		if err := a.Submit(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := a.MigrateOut(reqs[1].ID)
	if !ok || m.Started {
		t.Fatalf("pending extraction: ok=%v started=%v", ok, m.Started)
	}
	m.Req.Arrival = 0
	b := migrateEngine(t, 0)
	b.MigrateIn(m)
	if err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	if res := b.ResultSnapshot(); res.Finished != 1 || res.MigratedIn != 1 {
		t.Fatalf("unstarted resume: %+v", res)
	}

	// Waiting: two arrivals, one running slot.
	spec := miniWindowSpec()
	e, err := New(Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, 8<<20, true), MaxBatchTokens: 512, MaxRunning: 1})
	if err != nil {
		t.Fatal(err)
	}
	reqs2 := textReqs(23, 2, 150, 8)
	for i := range reqs2 {
		if err := e.Submit(&reqs2[i]); err != nil {
			t.Fatal(err)
		}
	}
	stepToGenerated(t, e, 1)
	snap := e.Snapshot()
	if snap.Waiting != 1 {
		t.Fatalf("setup: %d waiting, want 1", snap.Waiting)
	}
	waitID := int64(-1)
	for _, c := range e.MigrationCandidates() {
		if !c.Running {
			waitID = c.ID
		}
	}
	mw, ok := e.MigrateOut(waitID)
	if !ok || !mw.Started || mw.DecodesDone != 0 {
		t.Fatalf("waiting extraction: ok=%v %+v", ok, mw)
	}
	// Unknown IDs are rejected everywhere.
	if _, ok := e.MigrateOut(99999); ok {
		t.Fatal("MigrateOut invented a request")
	}
	if e.Shed(99999) {
		t.Fatal("Shed invented a request")
	}
}

// TestMigrateIntoOwnTierRestores: when a migrated request lands on a
// replica whose host tier holds its pages (here: the same engine,
// after GPU-cache pressure evicted the live copies), the re-entry
// prefill claims them back through the tier instead of recomputing —
// the mechanism that makes transfer-migration cheaper than
// recompute-migration.
func TestMigrateIntoOwnTierRestores(t *testing.T) {
	spec := miniWindowSpec()
	e, err := New(Config{Spec: spec, Device: smallDevice(),
		Manager:        tieredJengaFor(t, spec, 1<<20, 32<<20),
		MaxBatchTokens: 512, PreemptMode: PreemptSwap})
	if err != nil {
		t.Fatal(err)
	}
	req := textReqs(24, 1, 300, 16)[0]
	if err := e.Submit(&req); err != nil {
		t.Fatal(err)
	}
	stepToGenerated(t, e, 3)
	m, ok := e.MigrateOut(req.ID)
	if !ok {
		t.Fatal("MigrateOut failed")
	}
	// Unrelated requests overrun the 1 MiB GPU budget, evicting every
	// cached page of the migrated request (its bytes survive in the
	// tier, where MigrateOut spilled them).
	fillers := textReqs(77, 3, 800, 4)
	for i := range fillers {
		if err := e.Submit(&fillers[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	e.MigrateIn(m)
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	res := e.ResultSnapshot()
	if res.Finished != 4 || res.MigratedIn != 1 || res.MigratedOut != 1 {
		t.Fatalf("round trip: %+v", res)
	}
	if res.SwapIns == 0 || res.RestoredTokens == 0 {
		t.Fatalf("re-entry did not restore from the tier: swapins=%d restored=%d",
			res.SwapIns, res.RestoredTokens)
	}
}

// TestShedDropsLiveRequest: Shed terminates a running request like an
// admission rejection — terminal EventShed, KV released, counted in
// Result.Shed — while the rest of the stream completes normally.
func TestShedDropsLiveRequest(t *testing.T) {
	reqs := textReqs(25, 2, 150, 10)
	e := migrateEngine(t, 0)
	var shedEv bool
	e.SetEventSink(func(ev Event) {
		if ev.Type == EventShed && ev.ID == reqs[0].ID {
			shedEv = true
		}
	})
	for i := range reqs {
		if err := e.Submit(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	stepToGenerated(t, e, 2)
	if !e.Shed(reqs[0].ID) {
		t.Fatal("Shed missed a live request")
	}
	if !shedEv {
		t.Fatal("no EventShed emitted")
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	res := e.ResultSnapshot()
	if res.Shed != 1 || res.Finished != 1 {
		t.Fatalf("shed=%d finished=%d, want 1/1", res.Shed, res.Finished)
	}
	if u := e.cfg.Manager.Usage(); u.Used != 0 {
		t.Fatalf("shed leaked held memory: %+v", u)
	}
}

// TestRecordPeerFetchCharging: peer-fetch bytes surface as peer-link
// DMA time on the next executed step (wall-clock grows), and the
// hit/token/byte counters land in the result. A zero-token fetch (a
// migration page move) charges bytes without counting a hit.
func TestRecordPeerFetchCharging(t *testing.T) {
	run := func(peerBytes int64) *Result {
		req := textReqs(26, 1, 200, 10)[0]
		e := migrateEngine(t, 0)
		if err := e.Submit(&req); err != nil {
			t.Fatal(err)
		}
		if peerBytes > 0 {
			e.RecordPeerFetch(64, peerBytes)
			e.RecordPeerFetch(0, peerBytes) // migration move: bytes only
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		return e.ResultSnapshot()
	}
	base := run(0)
	charged := run(1 << 30) // 2 GiB total at 10 GB/s default link ≈ 0.2 s
	if charged.PeerHits != 1 || charged.PeerTokens != 64 || charged.PeerBytes != 2<<30 {
		t.Fatalf("peer counters: %+v", charged)
	}
	if base.PeerHits != 0 || base.PeerBytes != 0 {
		t.Fatalf("baseline saw peer traffic: %+v", base)
	}
	if charged.Duration <= base.Duration {
		t.Fatalf("peer bytes not charged: %v vs %v", charged.Duration, base.Duration)
	}
	if charged.Duration-base.Duration < 100*time.Millisecond {
		t.Fatalf("charge too small: %v", charged.Duration-base.Duration)
	}
}
