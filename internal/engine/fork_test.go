package engine

import (
	"testing"

	"jenga/internal/core"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// miniFullSpec is a pure full-attention model: every shared prefix
// token stays resident, so fan-out memory arithmetic is exact.
func miniFullSpec() *model.Spec {
	return &model.Spec{
		Name: "mini-full", Params: 100_000_000, WeightBytes: 2, HiddenSize: 256,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 4, BytesPerToken: 256},
		},
	}
}

func peakUsed(res *Result) int64 {
	var peak int64
	for _, s := range res.MemTimeline {
		if s.Usage.Used > peak {
			peak = s.Usage.Used
		}
	}
	return peak
}

// TestAutoFanout: a Fanout root expands into its branches at the
// divergence point, every branch finishes as a first-class request, and
// the branches share KV copy-on-write.
func TestAutoFanout(t *testing.T) {
	spec := miniFullSpec()
	mgr := jengaFor(t, spec, 32<<20, false)
	reqs := textReqs(21, 1, 128, 64)
	reqs[0].Fanout = 8
	// 128+19 tokens at fork: mid-block (tokens-per-page 8), so every
	// branch's first own decode writes into a shared partial block and
	// must privatize it.
	reqs[0].ForkAfter = 19
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512, SampleEvery: 1}, reqs)

	if res.Finished != 8 || res.Failed != 0 {
		t.Fatalf("finished %d failed %d, want 8/0", res.Finished, res.Failed)
	}
	st := mgr.(interface{ Stats() core.Stats }).Stats()
	if st.Forks != 7 {
		t.Errorf("forks = %d, want 7 (one per extra branch)", st.Forks)
	}
	if st.CowCopies == 0 {
		t.Error("divergent decode on shared pages must trigger CoW copies")
	}
	u := mgr.Usage()
	if u.Used != 0 || u.SharedBytes != 0 {
		t.Errorf("memory leak at end of run: %+v", u)
	}
}

// TestFanoutSharesPrefixKV pins the headline claim: n branches forked
// from one root hold far less KV than n independent requests with the
// same token budget, because the pre-divergence prefix exists once.
func TestFanoutSharesPrefixKV(t *testing.T) {
	spec := miniFullSpec()
	const (
		prompt = 128
		outLen = 256
		branch = 8
		forkAt = 224 // shared: 128+224 tokens; divergent: 32 per branch
	)

	forkReqs := textReqs(22, 1, prompt, outLen)
	forkReqs[0].Fanout = branch
	forkReqs[0].ForkAfter = forkAt
	forkRes := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, 16<<20, false), MaxBatchTokens: 512,
		SampleEvery: 1}, forkReqs)

	// Naive baseline: the same total work as branch independent
	// requests over the identical prompt (prefix cache off — nothing
	// shared, each holds its full context privately).
	naiveReqs := make([]workload.Request, branch)
	for i := range naiveReqs {
		naiveReqs[i] = textReqs(22, 1, prompt, outLen)[0]
		naiveReqs[i].ID = int64(i + 1)
	}
	workload.AllAtOnce(naiveReqs)
	naiveRes := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, 16<<20, false), MaxBatchTokens: 512,
		SampleEvery: 1}, naiveReqs)

	if forkRes.Finished != branch || naiveRes.Finished != branch {
		t.Fatalf("finished: fork %d naive %d, want %d each",
			forkRes.Finished, naiveRes.Finished, branch)
	}
	fp, np := peakUsed(forkRes), peakUsed(naiveRes)
	if fp == 0 || np == 0 {
		t.Fatal("expected nonzero memory peaks")
	}
	if np < 4*fp {
		t.Errorf("naive peak %d should be ≥4× fork peak %d (ratio %.2f)",
			np, fp, float64(np)/float64(fp))
	}
}

// TestForkStreaming drives the explicit Fork API through the streaming
// core: fork a decoding request mid-flight, drain, and both branches
// complete.
func TestForkStreaming(t *testing.T) {
	spec := miniFullSpec()
	mgr := jengaFor(t, spec, 32<<20, false)
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 512})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	e.SetEventSink(func(ev Event) { events = append(events, ev) })

	req := &textReqs(23, 1, 64, 40)[0]
	if err := e.Submit(req); err != nil {
		t.Fatal(err)
	}

	// Forking before the parent reaches decode is an error.
	if err := e.Fork(req.ID, []int64{900}); err == nil {
		t.Error("fork of a still-prefilling request should fail")
	}
	// Step until the parent has produced a few tokens, then fork.
	for {
		if err := e.StepOnce(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ev := range events {
			if ev.ID == req.ID && (ev.Type == EventFirstToken || ev.Type == EventToken) {
				n++
			}
		}
		if n >= 4 {
			break
		}
	}
	if err := e.Fork(req.ID, []int64{901, 902}); err != nil {
		t.Fatal(err)
	}
	if err := e.Fork(777, []int64{903}); err == nil {
		t.Error("fork of an unknown request should fail")
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}

	res := e.ResultSnapshot()
	if res.Finished != 3 || res.Failed != 0 {
		t.Fatalf("finished %d failed %d, want 3/0", res.Finished, res.Failed)
	}
	// Each child emits a full first-class lifecycle: queued, first
	// token, finished.
	for _, id := range []int64{901, 902} {
		var queued, first, fin bool
		for _, ev := range events {
			if ev.ID != id {
				continue
			}
			switch ev.Type {
			case EventQueued:
				queued = true
			case EventFirstToken:
				first = true
			case EventFinished:
				fin = true
			}
		}
		if !queued || !first || !fin {
			t.Errorf("child %d lifecycle incomplete: queued=%v first=%v finished=%v",
				id, queued, first, fin)
		}
	}
	if u := mgr.Usage(); u.Used != 0 || u.SharedBytes != 0 {
		t.Errorf("memory leak after drain: %+v", u)
	}
}

// TestFanoutWithoutForker: a Fanout request on a manager that cannot
// fork degrades gracefully to a single stream.
func TestFanoutWithoutForker(t *testing.T) {
	spec := miniWindowSpec()
	mgr := pagedFor(t, spec, 8<<20, false)
	reqs := textReqs(24, 1, 64, 20)
	reqs[0].Fanout = 4
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512}, reqs)
	if res.Finished != 1 || res.Failed != 0 {
		t.Fatalf("finished %d failed %d, want 1/0", res.Finished, res.Failed)
	}

	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fork(1, []int64{2}); err == nil {
		t.Error("explicit Fork without a Forker manager should fail")
	}
}

// TestForkDeterminism: fan-out runs are bit-identical across repeats.
func TestForkDeterminism(t *testing.T) {
	spec := miniFullSpec()
	run := func() *Result {
		reqs := textReqs(25, 1, 96, 48)
		reqs[0].Fanout = 4
		reqs[0].ForkAfter = 8
		return runEngine(t, Config{Spec: spec, Device: smallDevice(),
			Manager: jengaFor(t, spec, 16<<20, false), MaxBatchTokens: 256}, reqs)
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Steps != b.Steps || a.ReqPerSec != b.ReqPerSec ||
		a.TokensPerSec != b.TokensPerSec {
		t.Errorf("nondeterministic fan-out: %+v vs %+v", a, b)
	}
}
