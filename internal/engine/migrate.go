package engine

import (
	"sort"
	"time"

	"jenga/internal/core"
	"jenga/internal/workload"
)

// Live request migration: MigrateOut extracts a request from this
// engine — swapping its KV to the host tier so the fleet transfer
// path can carry the pages — and MigrateIn resumes it on another
// engine, re-entering through the ordinary re-admission path (prefix
// claim first, recompute only what neither the destination's tier nor
// a fleet fetch restored). The extracted state is exactly what
// preemption already preserves plus the request's metrics continuity:
// generated tokens (decode content is deterministic in (ID, position),
// so a resumed decode produces identical output), the recompute
// high-water mark, the first-token instant and the accumulated
// restore shares. The cluster layer owns policy — when to migrate,
// where to, and how to move the pages (internal/fleet).

// Migrated is one request's portable runtime state.
type Migrated struct {
	// Req is the original request (the engine retained it; the
	// destination retains it next).
	Req *workload.Request
	// Tokens is the sequence content at extraction: prompt plus every
	// generated token.
	Tokens []core.Token
	// DecodesDone and EverComputed restore decode progress and the
	// recompute high-water mark (cross-replica recomputation still
	// counts as RecomputedTokens on the destination).
	DecodesDone  int
	EverComputed int
	// RestoredTokens and RestoredBytes carry the request's host-tier
	// restore share so its PerRequest record survives the move.
	RestoredTokens int
	RestoredBytes  int64
	// FirstToken is the TTFT instant if prefill completed (0 before);
	// Started marks that the request's arrival was processed.
	FirstToken time.Duration
	Started    bool
	// ForkDone marks an already-expanded fan-out root.
	ForkDone bool
}

// MigrationCandidate summarizes one live request for migration policy.
type MigrationCandidate struct {
	ID int64
	// Remaining is the unserved work: uncommitted tokens plus undone
	// output.
	Remaining int
	// Running marks actively scheduled requests (their KV moves with
	// them); waiting and pending requests hold no pages.
	Running bool
}

// MigrationCandidates lists this engine's live requests in
// deterministic order — running first (schedule order), then waiting
// (queue order), then pending (arrival order) — so cluster rebalancing
// picks identically across runs.
func (e *Engine) MigrationCandidates() []MigrationCandidate {
	out := make([]MigrationCandidate, 0, len(e.running)+len(e.waiting)+len(e.pending))
	add := func(r *run, running bool) {
		rem := len(r.seq.Tokens) - r.computed
		if rem < 0 {
			rem = 0
		}
		if n := r.req.OutputLen - 1 - r.decodesDone; n > 0 {
			rem += n
		}
		out = append(out, MigrationCandidate{ID: r.req.ID, Remaining: rem, Running: running})
	}
	for _, r := range e.running {
		add(r, true)
	}
	for _, r := range e.waiting {
		add(r, false)
	}
	for _, r := range e.pending {
		add(r, false)
	}
	return out
}

// MigrateOut extracts the request with the given ID, releasing its KV
// cache-preservingly — through the host tier's SwapOut when the
// manager has one, so the pages survive for a fleet transfer — and
// removing it from this engine without a terminal event (the request's
// stream continues on the destination; EventMigrated marks the
// hand-off point). Reports false for unknown IDs.
func (e *Engine) MigrateOut(id int64) (Migrated, bool) {
	extract := func(r *run, started bool) Migrated {
		e.migratedOut++
		e.emit(EventMigrated, r)
		return Migrated{
			Req:            r.req,
			Tokens:         append([]core.Token(nil), r.seq.Tokens...),
			DecodesDone:    r.decodesDone,
			EverComputed:   r.everComputed,
			RestoredTokens: r.restoredTokens,
			RestoredBytes:  r.restoredBytes,
			FirstToken:     r.firstToken,
			Started:        started,
			ForkDone:       r.forkDone,
		}
	}
	for _, r := range e.running {
		if r.req.ID != id {
			continue
		}
		if e.tier != nil {
			e.tier.SwapOut(r.seq)
		} else {
			e.cfg.Manager.Release(r.seq, true)
		}
		e.removeRunning(r)
		return extract(r, true), true
	}
	for i, r := range e.waiting {
		if r.req.ID != id {
			continue
		}
		e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
		e.cfg.Manager.Release(r.seq, false) // holds no pages; defensive
		return extract(r, true), true
	}
	for i, r := range e.pending {
		if r.req.ID != id {
			continue
		}
		e.pending = append(e.pending[:i], e.pending[i+1:]...)
		return extract(r, false), true
	}
	return Migrated{}, false
}

// MigrateIn resumes a migrated request on this engine. Started
// requests join the waiting queue directly (arrival was already
// processed on the source — admission is not re-run, mirroring how a
// preempted request never re-sheds) and re-enter through the prefill
// path: the first chunk's prefix claim restores whatever this
// replica's cache, its host tier or a prior fleet fetch holds, and
// only the remainder recomputes. Unstarted requests re-join the
// arrival queue. IDs must remain unique among this engine's live
// requests.
func (e *Engine) MigrateIn(m Migrated) {
	toks := make([]core.Token, 0, len(m.Req.Prompt)+m.Req.OutputLen)
	toks = append(toks, m.Tokens...)
	r := &run{
		req:            m.Req,
		seq:            &core.Sequence{ID: core.RequestID(m.Req.ID), PromptLen: len(m.Req.Prompt), Tokens: toks},
		ph:             phasePrefill,
		decodesDone:    m.DecodesDone,
		everComputed:   m.EverComputed,
		restoredTokens: m.RestoredTokens,
		restoredBytes:  m.RestoredBytes,
		firstToken:     m.FirstToken,
		started:        m.Started,
		forkDone:       m.ForkDone,
	}
	e.totalPromptTokens += int64(len(m.Req.Prompt))
	e.migratedIn++
	if !m.Started {
		i := sort.Search(len(e.pending), func(i int) bool { return e.pending[i].req.Arrival > m.Req.Arrival })
		e.pending = append(e.pending, nil)
		copy(e.pending[i+1:], e.pending[i:])
		e.pending[i] = r
		return
	}
	e.waiting = append(e.waiting, r)
	e.emit(EventQueued, r)
}

// CrashOut simulates the replica process dying: every live request —
// running, waiting, pending, in that deterministic order — is
// extracted with its progress reset to the prompt, because its KV and
// generated state died with the device. Unlike MigrateOut nothing is
// swapped out (there is no process left to serialize pages) and no
// events are emitted (a crashed process emits nothing); the cluster
// decides whether the extracted requests are re-dispatched to
// survivors — recompute from the prompt; EverComputed is preserved so
// the survivor's recompute counts as RecomputedTokens, the crash's
// waste — or counted lost. The caller owns wiping the manager
// (core.Crasher); CrashOut only empties the engine's queues.
func (e *Engine) CrashOut() []Migrated {
	out := make([]Migrated, 0, len(e.running)+len(e.waiting)+len(e.pending))
	extract := func(r *run, started bool) {
		out = append(out, Migrated{
			Req:            r.req,
			Tokens:         append([]core.Token(nil), r.req.Prompt...),
			EverComputed:   r.everComputed,
			RestoredTokens: r.restoredTokens,
			RestoredBytes:  r.restoredBytes,
			FirstToken:     r.firstToken,
			Started:        started,
			ForkDone:       r.forkDone,
		})
	}
	for _, r := range e.running {
		extract(r, true)
	}
	for _, r := range e.waiting {
		extract(r, true)
	}
	for _, r := range e.pending {
		extract(r, false)
	}
	e.running = nil
	e.waiting = nil
	e.pending = e.pending[:0]
	e.pendingPeerBytes = 0
	return out
}

// Shed drops the live request with the given ID as if the admission
// policy had rejected it — the no-migration baseline for replica
// drain. Running requests release their KV cache-preservingly.
// Reports false for unknown IDs.
func (e *Engine) Shed(id int64) bool {
	for i, r := range e.pending {
		if r.req.ID == id {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			e.retireTerminal(r, EventShed)
			e.emit(EventShed, r)
			return true
		}
	}
	for i, r := range e.waiting {
		if r.req.ID == id {
			e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
			e.cfg.Manager.Release(r.seq, false)
			e.retireTerminal(r, EventShed)
			e.emit(EventShed, r)
			return true
		}
	}
	for _, r := range e.running {
		if r.req.ID == id {
			e.cfg.Manager.Release(r.seq, true)
			e.removeRunning(r)
			e.retireTerminal(r, EventShed)
			e.emit(EventShed, r)
			return true
		}
	}
	return false
}

// RecordPeerFetch accounts one fleet peer transfer into this engine:
// tokens is the prefix length the fetch added over the local lookup
// (0 for migration page moves), bytes the wire volume. The bytes are
// charged as peer-link DMA time on the engine's next executed step
// (gpu.StepWork.PeerBytes), exactly as tier transfers ride the PCIe
// term.
func (e *Engine) RecordPeerFetch(tokens int, bytes int64) {
	if tokens > 0 {
		e.peerHits++
		e.peerTokens += int64(tokens)
	}
	e.pendingPeerBytes += bytes
}
