package engine

import (
	"fmt"
	"strings"
	"time"

	"jenga/internal/workload"
)

// Built-in admission policies: the reject/queue/shed decisions an
// online server makes at each request's arrival instant, against live
// memory usage and queue state. They compose with AdmissionChain;
// ParseAdmission converts flag spellings ("kv", "slo", "kv+slo").

// admitAll admits everything (the explicit form of a nil policy).
type admitAll struct{}

func (admitAll) Name() string { return "none" }
func (admitAll) Decide(*workload.Request, AdmissionState) AdmissionDecision {
	return Admit
}

// AdmitAll returns the policy that queues every arrival.
func AdmitAll() AdmissionPolicy { return admitAll{} }

// KVAdmission sheds by estimated KV demand versus live usage: a
// request whose steady-state footprint exceeds total capacity can
// never run and is shed immediately (instead of failing later on an
// idle engine), and when the footprint exceeds what is free plus
// evictable *and* the queue is already deep, the request is shed
// rather than queued into memory thrash.
type KVAdmission struct {
	// MaxQueue is the waiting-queue depth beyond which a
	// memory-blocked request is shed instead of queued (default 64).
	MaxQueue int
	// Headroom scales the free-plus-evictable budget a footprint is
	// compared against (default 1.0).
	Headroom float64
}

// Name implements AdmissionPolicy.
func (p KVAdmission) Name() string { return "kv" }

// Decide implements AdmissionPolicy.
func (p KVAdmission) Decide(req *workload.Request, s AdmissionState) AdmissionDecision {
	maxQueue := p.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 64
	}
	headroom := p.Headroom
	if headroom <= 0 {
		headroom = 1.0
	}
	if s.Footprint > int64(headroom*float64(s.Capacity)) {
		return Shed
	}
	if s.Footprint > int64(headroom*float64(s.Usage.Free+s.Usage.Cached)) && s.Queued >= maxQueue {
		return Shed
	}
	return Admit
}

// SLOAdmission sheds requests whose first-order queueing estimate
// already busts the latency target: admitting them would waste compute
// on work that misses its SLO and steal it from work that could meet
// its own.
type SLOAdmission struct {
	// TTFT is the time-to-first-token target compared against the
	// queueing estimate (0 disables the global target).
	TTFT time.Duration
	// Slack scales the target before comparison (default 1.0); >1
	// admits borderline requests, <1 sheds early.
	Slack float64
}

// Name implements AdmissionPolicy.
func (p SLOAdmission) Name() string { return "slo" }

// Decide implements AdmissionPolicy. A request's own Deadline (when
// set) is enforced alongside the global TTFT target: a request that
// cannot even start before its end-to-end budget expires is shed.
func (p SLOAdmission) Decide(req *workload.Request, s AdmissionState) AdmissionDecision {
	slack := p.Slack
	if slack <= 0 {
		slack = 1.0
	}
	if p.TTFT > 0 && s.EstTTFT > time.Duration(slack*float64(p.TTFT)) {
		return Shed
	}
	if req.Deadline > 0 && s.EstTTFT > time.Duration(slack*float64(req.Deadline)) {
		return Shed
	}
	return Admit
}

// chain sheds when any member sheds.
type chain struct {
	policies []AdmissionPolicy
}

func (c chain) Name() string {
	names := make([]string, len(c.policies))
	for i, p := range c.policies {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

func (c chain) Decide(req *workload.Request, s AdmissionState) AdmissionDecision {
	for _, p := range c.policies {
		if p.Decide(req, s) == Shed {
			return Shed
		}
	}
	return Admit
}

// AdmissionChain composes policies: a request is admitted only when
// every member admits it.
func AdmissionChain(policies ...AdmissionPolicy) AdmissionPolicy {
	return chain{policies: policies}
}

// ParseAdmission converts a flag spelling into a policy: "none", "kv",
// "slo", or a "+"-joined chain like "kv+slo". slo is the TTFT target
// the "slo" member enforces.
func ParseAdmission(s string, slo time.Duration) (AdmissionPolicy, error) {
	if s == "" || s == "none" {
		return nil, nil
	}
	var members []AdmissionPolicy
	for _, part := range strings.Split(s, "+") {
		switch strings.TrimSpace(part) {
		case "kv":
			members = append(members, KVAdmission{})
		case "slo":
			members = append(members, SLOAdmission{TTFT: slo})
		case "none", "":
			members = append(members, AdmitAll())
		default:
			return nil, fmt.Errorf("engine: unknown admission policy %q (want none, kv, slo or a + chain)", part)
		}
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return AdmissionChain(members...), nil
}
