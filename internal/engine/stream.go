package engine

import (
	"fmt"
	"sort"
	"time"

	"jenga/internal/core"
	"jenga/internal/workload"
)

// This file is the engine's event-driven streaming core: the push-event
// API (Submit / Cancel / StepOnce / events) that online serving layers
// drive directly. Engine.Run is a thin batch driver over it — submit
// everything, step until drained — so batch and online serving share
// one scheduler with identical deterministic behavior.
//
// The core stays goroutine-confined: Submit, Cancel, StepOnce and
// Snapshot must all be called from the goroutine (or under the lock)
// that owns the engine. internal/serve wraps one engine in a
// mutex-guarded Server for concurrent online use.

// EventType classifies a scheduler event.
type EventType int

const (
	// EventQueued: the request's arrival time was reached and admission
	// accepted it into the waiting queue.
	EventQueued EventType = iota
	// EventFirstToken: prefill completed and the first output token
	// exists (the TTFT instant). Emitted once per request — a recompute
	// pass after preemption does not re-emit it.
	EventFirstToken
	// EventToken: one decode step produced one output token.
	EventToken
	// EventPreempted: the request lost its KV to a higher-priority (or
	// earlier-arrived) request and was requeued for recompute.
	EventPreempted
	// EventFinished: the request produced its full output (terminal).
	EventFinished
	// EventFailed: the request can never run (its context exceeds
	// capacity on an idle engine) and was dropped (terminal).
	EventFailed
	// EventShed: the admission policy rejected the request at its
	// arrival instant (terminal).
	EventShed
	// EventCancelled: Cancel released the request's KV mid-flight
	// (terminal).
	EventCancelled
	// EventMigrated: the request was extracted for live migration to
	// another replica. Not terminal — the request's stream continues
	// on the destination engine, which re-emits EventQueued there and
	// eventually the terminal event.
	EventMigrated
)

// String names the event type for logs and traces.
func (t EventType) String() string {
	switch t {
	case EventQueued:
		return "queued"
	case EventFirstToken:
		return "first_token"
	case EventToken:
		return "token"
	case EventPreempted:
		return "preempted"
	case EventFinished:
		return "finished"
	case EventFailed:
		return "failed"
	case EventShed:
		return "shed"
	case EventCancelled:
		return "cancelled"
	case EventMigrated:
		return "migrated"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Terminal reports whether the event ends its request's lifecycle.
func (t EventType) Terminal() bool {
	switch t {
	case EventFinished, EventFailed, EventShed, EventCancelled:
		return true
	}
	return false
}

// Event is one scheduler occurrence for one request. Events for a
// given request are emitted in lifecycle order: EventQueued, then
// EventFirstToken, then EventToken (once per decode), interleaved with
// EventPreempted, and exactly one terminal event last. Events are
// emitted synchronously from StepOnce on the engine's goroutine.
type Event struct {
	// Type classifies the event.
	Type EventType
	// ID is the request's ID.
	ID int64
	// Step is the scheduler step that produced the event.
	Step int
	// Clock is the simulated time of the event.
	Clock time.Duration
	// Generated is the number of output tokens produced so far
	// (includes the first token).
	Generated int
}

// Snapshot is the live scheduler state online layers (admission,
// routers, autoscalers) decide on.
type Snapshot struct {
	// Clock and Step are the simulation position.
	Clock time.Duration
	Step  int
	// Pending, Waiting and Running are queue depths: not yet arrived,
	// arrived but not scheduled, and actively scheduled.
	Pending, Waiting, Running int
	// OutstandingTokens is the admitted-but-unserved work: remaining
	// prompt plus remaining output tokens over every live request.
	OutstandingTokens int64
	// Usage is the manager's live memory accounting.
	Usage core.Usage
	// Capacity is the manager's total KV bytes.
	Capacity int64
}

// AdmissionState is the live state an AdmissionPolicy decides on when
// a request's arrival time is reached.
type AdmissionState struct {
	// Clock and Step are the simulation position.
	Clock time.Duration
	Step  int
	// Usage and Capacity are the manager's live memory accounting.
	// Usage carries aggregate totals only (PerGroup is nil): policies
	// run once per arrival and must not cost a map allocation each.
	Usage    core.Usage
	Capacity int64
	// Queued and Running are the current queue depths.
	Queued, Running int
	// Footprint is the manager's steady-state KV demand estimate for
	// the candidate request.
	Footprint int64
	// EstTTFT is a first-order queueing estimate of the candidate's
	// time to first token: prompt tokens queued ahead of it (plus its
	// own) at the device's compute-bound token rate.
	EstTTFT time.Duration
	// QueuePos is the position the candidate would take in the
	// scheduler's admission order: the number of waiting requests the
	// configured scheduling policy would admit ahead of it (0 = next).
	// Under FCFS this is the queue depth; a priority policy ranks a
	// high-priority arrival ahead of a deep low-priority backlog, so
	// SLO-style policies can shed on effective rather than nominal
	// queue position.
	QueuePos int
}

// AdmissionDecision is an AdmissionPolicy verdict.
type AdmissionDecision int

const (
	// Admit queues the request for scheduling.
	Admit AdmissionDecision = iota
	// Shed drops the request now (terminal EventShed) rather than
	// letting it miss its SLO or thrash memory.
	Shed
)

// AdmissionPolicy decides, at each request's arrival instant, whether
// the engine queues or sheds it. Policies see live memory usage and
// queue state; a nil policy admits everything (the pre-streaming
// behavior). Decide is called on the engine goroutine and must not
// retain state.
type AdmissionPolicy interface {
	// Name identifies the policy in results and flags.
	Name() string
	// Decide returns the verdict for req given the live state.
	Decide(req *workload.Request, s AdmissionState) AdmissionDecision
}

// SetEventSink installs fn as the engine's event callback. fn is
// invoked synchronously during StepOnce/Cancel; it must not call back
// into the engine. A nil fn disables emission (the default).
func (e *Engine) SetEventSink(fn func(Event)) { e.onEvent = fn }

// emit sends one event for r to the sink, if installed.
func (e *Engine) emit(t EventType, r *run) {
	if e.onEvent == nil {
		return
	}
	gen := 0
	if r.firstToken > 0 {
		gen = 1 + r.decodesDone
	}
	e.onEvent(Event{Type: t, ID: r.req.ID, Step: e.step, Clock: e.clock, Generated: gen})
}

// Reset returns the scheduler to a clean state for a new online
// session. As with Run, the manager keeps its prefix cache, so a reset
// server models a warmed-up replica.
func (e *Engine) Reset() { e.reset() }

// Live reports whether any submitted request has not yet reached a
// terminal state.
func (e *Engine) Live() bool {
	return len(e.pending)+len(e.waiting)+len(e.running) > 0
}

// Clock returns the current simulated time.
func (e *Engine) Clock() time.Duration { return e.clock }

// Snapshot returns the live scheduler state with full memory
// accounting (Usage includes the PerGroup breakdown).
func (e *Engine) Snapshot() Snapshot {
	s := e.snapshot(e.cfg.Manager.Usage())
	return s
}

// SnapshotTotals is Snapshot with aggregate-only memory accounting
// (Usage.PerGroup is nil) — the allocation-light form per-arrival hot
// paths such as online cluster routing read.
//
//jenga:hotpath
func (e *Engine) SnapshotTotals() Snapshot {
	return e.snapshot(e.cfg.Manager.UsageTotals())
}

//jenga:hotpath
func (e *Engine) snapshot(u core.Usage) Snapshot {
	s := Snapshot{
		Clock:    e.clock,
		Step:     e.step,
		Pending:  len(e.pending),
		Waiting:  len(e.waiting),
		Running:  len(e.running),
		Usage:    u,
		Capacity: e.cfg.Manager.Capacity(),
	}
	for _, r := range e.pending {
		s.OutstandingTokens += int64(r.promptLen() + r.req.OutputLen)
	}
	for _, r := range e.waiting {
		s.OutstandingTokens += int64(r.promptLen() + r.req.OutputLen)
	}
	for _, r := range e.running {
		remPrompt := len(r.seq.Tokens) - r.computed
		if remPrompt < 0 {
			remPrompt = 0
		}
		remOut := r.req.OutputLen - 1 - r.decodesDone
		if remOut < 0 {
			remOut = 0
		}
		s.OutstandingTokens += int64(remPrompt + remOut)
	}
	return s
}

// Submit enqueues one request into the streaming core. The request
// joins the arrival queue at req.Arrival (which may be in the
// simulated past — it is then admitted on the next step). The engine
// retains req; callers must not mutate it afterwards. IDs must be
// unique among live requests.
func (e *Engine) Submit(req *workload.Request) error {
	if req.OutputLen < 1 {
		return fmt.Errorf("engine: request %d has output length %d", req.ID, req.OutputLen)
	}
	// Size the token slice for the full prompt-plus-output lifetime up
	// front so decode-time appends never reallocate.
	toks := make([]core.Token, 0, len(req.Prompt)+req.OutputLen)
	toks = append(toks, req.Prompt...)
	r := &run{
		req: req,
		seq: &core.Sequence{ID: core.RequestID(req.ID), PromptLen: len(req.Prompt), Tokens: toks},
	}
	// Stable insert by arrival: after existing entries with arrival
	// ≤ req.Arrival, so submission order breaks ties exactly like the
	// batch driver's stable sort.
	i := sort.Search(len(e.pending), func(i int) bool { return e.pending[i].req.Arrival > req.Arrival })
	e.pending = append(e.pending, nil)
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = r
	e.totalPromptTokens += int64(len(req.Prompt))
	return nil
}

// Cancel terminates the request with the given ID wherever it is in
// the lifecycle, releasing all KV it holds. Fully committed pages
// return to the evictable prefix cache (exactly as on normal
// completion), so cancellation never corrupts the cache; everything
// else returns to the free pool. Reports whether the ID was live.
func (e *Engine) Cancel(id int64) bool {
	for i, r := range e.pending {
		if r.req.ID == id {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			e.retireTerminal(r, EventCancelled)
			e.emit(EventCancelled, r)
			return true
		}
	}
	for i, r := range e.waiting {
		if r.req.ID == id {
			e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
			// Waiting requests hold no pages (admission is
			// all-or-nothing), but mirror the stall path's defensive
			// release.
			e.cfg.Manager.Release(r.seq, false)
			e.retireTerminal(r, EventCancelled)
			e.emit(EventCancelled, r)
			return true
		}
	}
	for _, r := range e.running {
		if r.req.ID == id {
			e.cfg.Manager.Release(r.seq, true)
			e.removeRunning(r)
			e.retireTerminal(r, EventCancelled)
			e.emit(EventCancelled, r)
			return true
		}
	}
	return false
}

// StepOnce advances the simulation by one scheduler step: admit
// arrivals (shedding per the admission policy), schedule and execute
// one batch, advance the clock, emit events. Callers must check Live
// first; stepping an empty engine is an error.
//
//jenga:hotpath
func (e *Engine) StepOnce() error {
	e.step++
	if e.step > e.cfg.MaxSteps {
		//jenga:alloc-ok stuck-engine error path terminates the run; never taken on the measured steady state
		return fmt.Errorf("engine: exceeded %d steps (stuck?)", e.cfg.MaxSteps)
	}
	e.admitArrivals()
	if len(e.running) == 0 && len(e.waiting) == 0 && len(e.pending) > 0 {
		e.clock = e.pending[0].req.Arrival
		e.admitArrivals()
	}
	if e.step%5000 == 0 && debugSteps {
		e.debugDump()
	}
	progressed := e.runStep()
	switch {
	case progressed:
		e.globalStalls = 0
	case !e.Live():
		// Everything drained mid-step (the admission policy shed the
		// last arrivals): not a stall.
		e.globalStalls = 0
	default:
		e.globalStalls++
		if !e.handleStall() {
			//jenga:alloc-ok deadlock error path terminates the run; never taken on the measured steady state
			return fmt.Errorf("engine: no progress possible at step %d", e.step)
		}
	}
	if e.cfg.SampleEvery > 0 && e.step%e.cfg.SampleEvery == 0 {
		e.memTimeline = append(e.memTimeline, MemSample{Step: e.step, Clock: e.clock, Usage: e.cfg.Manager.Usage()})
	}
	if e.step%kvUtilEvery == 0 {
		e.sampleKVUtil()
	}
	return nil
}

// debugDump prints the JENGA_DEBUG step trace. Kept out of StepOnce so
// the hot step body stays free of fmt's boxing and formatting.
func (e *Engine) debugDump() {
	fmt.Printf("step %d clock %v running %d waiting %d pending %d finished %d failed %d stalls %d\n",
		e.step, e.clock, len(e.running), len(e.waiting), len(e.pending), len(e.finished), len(e.failed), e.globalStalls)
	for _, r := range e.running {
		fmt.Printf("  run id=%d ph=%d computed=%d/%d decodes=%d/%d cachedHit=%d\n", r.req.ID, r.ph, r.computed, r.promptLen(), r.decodesDone, r.req.OutputLen, r.cachedHit)
	}
}

// AdvanceTo steps the simulation until the clock reaches t or no
// schedulable work remains before t; an idle engine jumps straight to
// t. Online drivers use it to align replicas to an arrival instant
// before routing against their live state.
func (e *Engine) AdvanceTo(t time.Duration) error {
	for e.Live() && e.clock < t {
		if len(e.running) == 0 && len(e.waiting) == 0 && e.pending[0].req.Arrival > t {
			break
		}
		if err := e.StepOnce(); err != nil {
			return err
		}
	}
	if e.clock < t {
		e.clock = t
	}
	return nil
}

// Drain steps the simulation until every live request terminates,
// then closes out KV-utilization sampling. The counterpart of Run's
// main loop for online sessions.
func (e *Engine) Drain() error {
	for e.Live() {
		if err := e.StepOnce(); err != nil {
			return err
		}
	}
	e.finishSampling()
	return nil
}

// FinishSampling takes the drain-time closing KV-utilization sample.
// Idempotent per step; drivers that step the core themselves (instead
// of calling Drain) call it once the last request terminates, so their
// MeanKVUtil matches the batch driver's exactly.
func (e *Engine) FinishSampling() { e.finishSampling() }

// ResultSnapshot assembles the metrics accumulated so far — for online
// sessions, the aggregate over every terminated request at this
// instant. Batch Run returns the same structure at drain time.
func (e *Engine) ResultSnapshot() *Result { return e.result() }

// admissionState builds the policy input for candidate r. Usage comes
// from UsageTotals: policies decide on aggregates, and arrival-time
// admission must not allocate a PerGroup map per candidate.
func (e *Engine) admissionState(r *run) AdmissionState {
	s := AdmissionState{
		Clock:     e.clock,
		Step:      e.step,
		Usage:     e.cfg.Manager.UsageTotals(),
		Capacity:  e.cfg.Manager.Capacity(),
		Queued:    len(e.waiting),
		Running:   len(e.running),
		Footprint: e.cfg.Manager.Footprint(r.seq),
		QueuePos:  e.scheduler.RankWaiting(e.reqInfo(r, true), e.policyView()),
	}
	if e.drainRate > 0 {
		ahead := int64(r.promptLen())
		for _, w := range e.waiting {
			ahead += int64(w.promptLen())
		}
		for _, c := range e.running {
			if rem := len(c.seq.Tokens) - c.computed; rem > 0 {
				ahead += int64(rem)
			}
		}
		s.EstTTFT = time.Duration(float64(ahead) / e.drainRate * float64(time.Second))
	}
	return s
}
