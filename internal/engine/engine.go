// Package engine simulates a continuous-batching LLM serving engine in
// the style of vLLM: policy-ordered admission, chunked prefill under a
// token budget, one-token decode steps for running sequences, and
// recompute-style preemption when memory runs out. The engine is
// manager-agnostic — Jenga and the PagedAttention baselines plug in
// through core.Manager, so experiments vary only memory management,
// exactly as the paper's evaluation does. It is likewise
// policy-agnostic about scheduling: admission order, preemption victim
// selection and the prefill/decode budget split all delegate to a
// pluggable sched.Scheduler (default FCFS, the historical behavior);
// the engine itself encodes no priority or arrival-order comparison.
//
// Time is simulated: each step's duration comes from the gpu.CostModel,
// so results are deterministic and hardware-independent.
//
// The engine is an event-driven streaming core (stream.go): requests
// enter through Submit, progress is pushed out as Events (first token,
// per-token, preemption, terminal states), Cancel releases a request's
// KV mid-flight, and a pluggable AdmissionPolicy sheds work at arrival
// when memory or SLO headroom is gone. Engine.Run is the thin batch
// driver over that core — submit everything, step until drained — so
// offline experiments and online serving share one scheduler.
//
// An Engine is goroutine-confined: it owns its Manager and all run
// state, and nothing in it is safe for concurrent use. Concurrency
// lives one level up — internal/serve wraps one engine in a
// mutex-guarded online Server, and internal/cluster gives every
// replica its own Engine, Manager and Device.
package engine

import (
	"fmt"
	"os"
	"time"

	"jenga/internal/core"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/sched"
	"jenga/internal/workload"
)

// debugSteps enables periodic scheduler state dumps (debugging only).
//
//jenga:det-ok debug tracing gate only; read once at init and never on a result path
var debugSteps = os.Getenv("JENGA_DEBUG") != ""

// VisionStrategy selects how vision embeddings are managed (§6.2).
type VisionStrategy int

const (
	// VisionNone: no embedding cache — the encoder re-runs for every
	// prefill chunk that still involves image tokens (vLLM baseline).
	VisionNone VisionStrategy = iota
	// VisionFreeOnDemand: encode once, cache embeddings, free them as
	// chunks consume them (§6.2a).
	VisionFreeOnDemand
	// VisionReuseKV: encode once; embeddings live in the KV pages
	// already allocated for those tokens, costing no extra memory
	// (§6.2b).
	VisionReuseKV
)

// PreemptMode selects what happens to a preemption victim's KV.
type PreemptMode int

const (
	// PreemptRecompute releases the victim's pages (cache-preserving)
	// and recomputes whatever the prefix cache no longer holds when
	// the victim is re-admitted — vLLM-style recompute preemption, the
	// historical behavior the golden tests pin.
	PreemptRecompute PreemptMode = iota
	// PreemptSwap moves the victim's pages to the manager's host
	// memory tier (core.TierManager.SwapOut): when pressure later
	// evicts them from the GPU, the bytes survive one tier down, and
	// re-admission restores them over PCIe instead of recomputing.
	// Managers without the TierManager capability (the PagedAttention
	// baselines) degrade to PreemptRecompute.
	PreemptSwap
)

// String names the mode for flags and reports.
func (m PreemptMode) String() string {
	if m == PreemptSwap {
		return "swap"
	}
	return "recompute"
}

// ParsePreemptMode converts a flag spelling.
func ParsePreemptMode(s string) (PreemptMode, error) {
	switch s {
	case "", "recompute":
		return PreemptRecompute, nil
	case "swap":
		return PreemptSwap, nil
	default:
		return PreemptRecompute, fmt.Errorf("engine: unknown preempt mode %q (want recompute or swap)", s)
	}
}

// Config configures an engine run.
type Config struct {
	// Spec is the true model architecture.
	Spec *model.Spec
	// Device is the simulated GPU.
	Device gpu.Device
	// Manager is the KV memory manager under test.
	Manager core.Manager
	// MaxBatchTokens is the per-step token budget (chunked prefill
	// chunk size). Default 2048.
	MaxBatchTokens int
	// MaxRunning caps concurrent sequences (max_num_seqs). Default 256.
	MaxRunning int
	// MaxPrefills caps concurrently prefilling sequences. Prefills
	// share the fixed token budget, so admitting more of them adds no
	// prefill throughput while their KV crowds out the prefix cache;
	// chunked-prefill schedulers keep this small. Default 2.
	MaxPrefills int
	// Vision selects the embedding-cache strategy for VLMs.
	Vision VisionStrategy
	// KernelEfficiency models slower kernels (GCD ablation); 0 → 1.0.
	KernelEfficiency float64
	// Admission, when set, decides at each request's arrival instant
	// whether it is queued or shed (see AdmissionPolicy). Nil admits
	// everything.
	Admission AdmissionPolicy
	// Scheduler is the scheduling policy: admission order, preemption
	// victim selection and the prefill/decode budget split all
	// delegate to it (see internal/sched). Nil means sched.NewFCFS(),
	// which is priority-blind pure arrival order — bit-identical to
	// the historical engine for the default all-zero priorities.
	// Workloads that set Request.Priority must configure
	// sched.NewPriority() (or another priority-aware policy) for the
	// field to take effect.
	Scheduler sched.Scheduler
	// PreemptMode selects recompute- or swap-based preemption
	// (default recompute, the golden-pinned historical behavior).
	PreemptMode PreemptMode
	// Faults, when set, is consulted before every executed step: the
	// returned factors scale the step's PCIe/peer-link DMA terms and
	// its total duration (fault injection's degraded-link windows and
	// slow-replica stragglers — see internal/chaos). Nil, the
	// default, leaves every step's cost untouched.
	Faults FaultInjector
	// SampleEvery records a memory-usage sample every N steps
	// (0 disables the timeline).
	SampleEvery int
	// MaxSteps aborts runaway simulations. Default 2_000_000.
	MaxSteps int
}

// StepFault scales one executed step's cost: PCIe and Link in (0, 1]
// degrade the respective link bandwidths, Slow ≥ 1 stretches the
// whole step (the straggler). Zero fields mean "no fault".
type StepFault struct {
	PCIe, Link, Slow float64
}

// FaultInjector supplies the fault factors in effect at a simulated
// instant. Implementations must be deterministic functions of the
// clock — the engine consults them on every executed step.
type FaultInjector interface {
	StepFault(clock time.Duration) StepFault
}

// MemSample is one point of the Fig. 16 memory timeline.
type MemSample struct {
	Step  int
	Clock time.Duration
	Usage core.Usage
}

// RequestMetrics is one finished request's latency record; cluster-level
// aggregation computes percentiles across replicas from these.
type RequestMetrics struct {
	ID      int64
	Arrival time.Duration
	TTFT    time.Duration
	E2E     time.Duration
	// Deadline is the request's E2E budget (0 = none); goodput counts
	// only finished requests with E2E within it.
	Deadline time.Duration
	// Group and Priority echo the request's tenant label and
	// scheduling class; cluster aggregation computes per-group
	// fairness and per-priority breakdowns from them.
	Group    int64
	Priority int
	// Tokens is the request's served work: prompt plus output tokens.
	Tokens int
	// RestoredTokens and RestoreBytes are the request's host-tier
	// share: prefix tokens the tier served (beyond the GPU-only
	// prefix) instead of recompute, and the H2D bytes that cost;
	// RestoreTime is the PCIe time of those bytes — report layers
	// take restore-latency percentiles over it.
	RestoredTokens int
	RestoreBytes   int64
	RestoreTime    time.Duration
}

// kvUtilEvery is the step stride for KV-utilization sampling (cheap
// enough to stay on by default, coarse enough not to show in profiles).
const kvUtilEvery = 32

// Result aggregates one run's metrics.
type Result struct {
	Duration time.Duration
	Steps    int
	Finished int
	Failed   int
	// ReqPerSec is finished requests per simulated second.
	ReqPerSec float64
	// TokensPerSec counts computed prompt tokens plus generated tokens.
	TokensPerSec float64
	// MeanTTFT, MeanE2E, MeanTPOT are latency averages over finished
	// requests.
	MeanTTFT, MeanE2E, MeanTPOT time.Duration
	// MeanDecodeBatch is the average number of decoding sequences per
	// step that decoded anything (Fig. 15).
	MeanDecodeBatch float64
	// DecodeBatchTimeline is the per-step decode batch size (Fig. 15).
	DecodeBatchTimeline []int
	// MemTimeline is the sampled memory usage (Fig. 16).
	MemTimeline []MemSample
	// HitRate is cached prompt tokens over all prefill work, cached
	// plus computed — recompute passes after preemption included, so it
	// stays in [0, 1] (Fig. 17).
	HitRate float64
	// CachedPromptTokens and ComputedPromptTokens are HitRate's
	// numerator and the computed remainder; keeping both lets a cluster
	// aggregate an exact fleet-wide hit rate instead of averaging ratios.
	CachedPromptTokens   int64
	ComputedPromptTokens int64
	// GeneratedTokens counts decode-produced tokens.
	GeneratedTokens int64
	// PerRequest records each finished request's latencies.
	PerRequest []RequestMetrics
	// MeanKVUtil and PeakKVUtil are the mean and peak fraction of KV
	// capacity holding live or cached KV, sampled every kvUtilEvery
	// steps.
	MeanKVUtil, PeakKVUtil float64
	// Preemptions counts preemptions (recompute- or swap-mode).
	Preemptions int
	// RecomputedTokens counts prompt-pass tokens that had already been
	// computed once for the same request — the work preemption wastes
	// and the host tier exists to avoid.
	RecomputedTokens int64
	// RestoredTokens counts prefix tokens served from the host tier
	// (H2D restore) instead of being recomputed, over claims whose
	// admission succeeded; TierHitRate is their share of all prefill
	// work (cached + computed), the tier counterpart of (and bounded
	// by) HitRate. Both are zero without a tiered manager.
	RestoredTokens int64
	TierHitRate    float64
	// SwapOuts and SwapIns count large pages spilled to and blocks
	// restored from the host tier; SwapOutBytes/SwapInBytes are the
	// D2H/H2D volumes. HostTierUsed/HostTierCapacity snapshot the
	// tier at the end of the run.
	SwapOuts, SwapIns              int64
	SwapOutBytes, SwapInBytes      int64
	HostTierUsed, HostTierCapacity int64
	// PeerHits counts fleet-store fetches that extended this replica's
	// local prefix from a peer's host tier; PeerTokens is the prefix
	// length they added over the local lookup, and PeerBytes the total
	// peer-link wire volume charged (fetches plus migration moves).
	PeerHits   int
	PeerTokens int64
	PeerBytes  int64
	// MigratedIn and MigratedOut count live request migrations through
	// this engine (a cluster's fleet-wide migration count is the sum
	// of MigratedIn over replicas).
	MigratedIn, MigratedOut int
	// EncoderRuns counts vision-encoder invocations (Fig. 18).
	EncoderRuns int
	// Shed counts requests the admission policy dropped at arrival.
	Shed int
	// Cancelled counts requests terminated by Cancel.
	Cancelled int
}

type phase int

const (
	phasePrefill phase = iota
	phaseDecode
)

// run is one request's runtime state.
type run struct {
	req *workload.Request
	seq *core.Sequence
	ph  phase
	// computed is the number of tokens with committed KV.
	computed int
	// cachedHit is the prefix served from cache at (re)admission.
	cachedHit int
	// decodesDone counts completed decode steps (need OutputLen-1).
	decodesDone int
	// encoded marks that the vision encoder ran for the current
	// prefill pass (resets on preemption).
	encoded bool
	// pendingTarget is the commit target set during scheduling.
	pendingTarget int
	// scheduledStep is the step that last scheduled this run; a run
	// scheduled in the current step must not be preempted (its commit
	// is already in flight).
	scheduledStep int
	// ctxText and ctxImg count text and image tokens among the first
	// `computed` tokens, maintained incrementally as KV commits so the
	// per-decode KV-read cost never rescans the context.
	ctxText, ctxImg int
	// alive reports membership in Engine.running (an O(1) stand-in for
	// scanning the running list when a preemption may have removed the
	// run mid-step).
	alive bool
	// everComputed is the high-water mark of computed: prefill work
	// below it is recomputation (preemption waste), which the host
	// tier avoids by restoring instead.
	everComputed int
	// restoredTokens and restoredBytes accumulate the run's host-tier
	// restore share across (re)admissions.
	restoredTokens int
	restoredBytes  int64
	// forkDone marks that the run's Fanout expansion already fired
	// (set on forked children at creation so they never re-fork).
	forkDone   bool
	firstToken time.Duration
	finish     time.Duration
	started    bool
}

// advanceCtx folds tokens [from, to) into the run's committed text and
// image counts.
func (r *run) advanceCtx(from, to int) {
	for i := from; i < to && i < len(r.seq.Tokens); i++ {
		if r.seq.Tokens[i].Image {
			r.ctxImg++
		} else {
			r.ctxText++
		}
	}
}

// resetCtx clears the committed-context counters (preemption and
// admission rollback set computed back to zero).
func (r *run) resetCtx() { r.ctxText, r.ctxImg = 0, 0 }

func (r *run) promptLen() int { return len(r.req.Prompt) }

// Engine executes one simulation run.
type Engine struct {
	cfg   Config
	cost  gpu.CostModel
	clock time.Duration
	step  int

	pending   []*run // not yet arrived (sorted by arrival)
	waiting   []*run // arrived, not running
	running   []*run
	finished  []*run
	failed    []*run
	shed      []*run // dropped by the admission policy at arrival
	cancelled []*run // terminated by Cancel

	// onEvent is the streaming sink (nil: no emission).
	onEvent func(Event)
	// drainRate is the device's compute-bound token rate (tokens per
	// simulated second), the first-order term admission uses to
	// estimate queueing delay.
	drainRate float64
	// kvSampledStep is the last step sampleKVUtil ran for, so the
	// drain-time closing sample is never taken twice.
	kvSampledStep int

	totalPromptComputed int64
	totalCachedTokens   int64
	totalPromptTokens   int64
	totalGenerated      int64
	totalRecomputed     int64
	totalRestored       int64
	preemptions         int
	encoderRuns         int
	globalStalls        int

	// Fleet accounting: peerHits/peerTokens count fleet-store prefix
	// fetches that extended the local lookup; pendingPeerBytes is
	// wire volume recorded since the last executed step, drained into
	// that step's StepWork.PeerBytes (the peer-link DMA term) and
	// accumulated into peerBytes. migratedIn/migratedOut count live
	// request migrations through this engine.
	peerHits                int
	peerTokens              int64
	peerBytes               int64
	pendingPeerBytes        int64
	migratedIn, migratedOut int

	kvUtilSum  float64
	kvUtilN    int
	kvUtilPeak float64

	decodeTimeline []int
	memTimeline    []MemSample

	// stepScratch and committers are per-step work lists reused across
	// steps so the steady-state step loop allocates nothing.
	stepScratch []*run
	committers  []*run

	// scheduler is the resolved scheduling policy (never nil) and
	// schedView the reusable read-only view it decides on; policyView
	// repopulates it before every delegated decision. admPreempt
	// caches whether the policy can preempt for blocked admissions,
	// so the step loop skips that phase entirely for policies (like
	// the default FCFS) that never do.
	scheduler  sched.Scheduler
	schedView  sched.View
	admPreempt bool

	// tier is the manager's host-tier capability (nil for managers
	// without one, e.g. the PagedAttention baselines); tierBase is
	// the counter snapshot taken at reset so Result reports per-run
	// deltas even on a warm manager.
	tier     core.TierManager
	tierBase core.TierStats

	// forker is the manager's copy-on-write forking capability (nil
	// for managers without one — fan-out then degrades to running the
	// root single-stream); forkSeq numbers engine-generated branch IDs.
	forker  core.Forker
	forkSeq int64

	// sink, when set via SetRetireSink, switches the engine to
	// streaming retirement: terminal runs fold into the counters below
	// (and into the caller's sink) instead of accumulating in the
	// finished/failed/shed/cancelled lists, and the decode timeline
	// folds into decodeSteps/decodeSum — memory stays bounded over
	// million-request streams.
	sink         RetireSink
	retFinished  int
	retFailed    int
	retShed      int
	retCancelled int
	retTTFT      time.Duration
	retE2E       time.Duration
	retTPOT      time.Duration
	retTPOTN     int
	decodeSteps  int64
	decodeSum    int64
}

// RetireSink receives each request's final record at its terminal
// event. Latency fields (TTFT, E2E) are meaningful only for
// EventFinished; failed/shed/cancelled records carry identity and
// sizing fields. The sink is invoked synchronously on the engine's
// stepping goroutine and must not call back into the engine.
type RetireSink func(m RequestMetrics, ev EventType)

// SetRetireSink installs sink and switches the engine to streaming
// retirement: Result.PerRequest, DecodeBatchTimeline and the terminal
// run lists stay empty, while every aggregate field (counts, means,
// hit rates, throughput) is still computed exactly. The sink survives
// Reset; pass nil to restore retained-list behavior.
func (e *Engine) SetRetireSink(sink RetireSink) { e.sink = sink }

// runMetrics assembles one run's per-request record (the Result
// PerRequest entry, and the RetireSink payload in streaming mode).
func (e *Engine) runMetrics(r *run) RequestMetrics {
	return RequestMetrics{
		ID:             r.req.ID,
		Arrival:        r.req.Arrival,
		TTFT:           r.firstToken - r.req.Arrival,
		E2E:            r.finish - r.req.Arrival,
		Deadline:       r.req.Deadline,
		Group:          r.req.Group,
		Priority:       r.req.Priority,
		Tokens:         r.promptLen() + r.req.OutputLen,
		RestoredTokens: r.restoredTokens,
		RestoreBytes:   r.restoredBytes,
		RestoreTime:    e.cfg.Device.PCIeTime(r.restoredBytes),
	}
}

// retireTerminal routes a non-finished terminal run to the sink (in
// streaming-retirement mode) or to its retention list. Callers emit
// the matching lifecycle event themselves.
func (e *Engine) retireTerminal(r *run, ev EventType) {
	if e.sink != nil {
		switch ev {
		case EventFailed:
			e.retFailed++
		case EventShed:
			e.retShed++
		case EventCancelled:
			e.retCancelled++
		}
		e.sink(e.runMetrics(r), ev)
		return
	}
	switch ev {
	case EventFailed:
		e.failed = append(e.failed, r)
	case EventShed:
		e.shed = append(e.shed, r)
	case EventCancelled:
		e.cancelled = append(e.cancelled, r)
	}
}

// New validates the config and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Spec == nil || cfg.Manager == nil {
		return nil, fmt.Errorf("engine: spec and manager are required")
	}
	if cfg.MaxBatchTokens <= 0 {
		cfg.MaxBatchTokens = 2048
	}
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 256
	}
	if cfg.MaxPrefills <= 0 {
		cfg.MaxPrefills = 2
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 2_000_000
	}
	if cfg.Device.Name == "" {
		cfg.Device = gpu.H100()
	}
	e := &Engine{
		cfg:       cfg,
		cost:      gpu.CostModel{Dev: cfg.Device, Spec: cfg.Spec},
		scheduler: cfg.Scheduler,
	}
	if e.scheduler == nil {
		e.scheduler = sched.NewFCFS()
	}
	e.admPreempt = sched.CanAdmissionPreempt(e.scheduler)
	e.tier, _ = cfg.Manager.(core.TierManager)
	e.forker, _ = cfg.Manager.(core.Forker)
	// 2 FLOPs per active parameter per token, compute-bound: the same
	// first-order term the cost model charges per scheduled token.
	if f := cfg.Device.FLOPS; f > 0 {
		e.drainRate = f / (2 * float64(cfg.Spec.ActiveParamCount()))
	}
	return e, nil
}

// Run simulates serving the request set to completion: the batch
// driver over the streaming core — every request is submitted up
// front, then the core steps until drained. Run is restartable: each
// call starts from a clean scheduler state, but the Manager keeps
// whatever prefix cache earlier runs left behind, so back-to-back runs
// model a warmed-up replica.
func (e *Engine) Run(reqs []workload.Request) (*Result, error) {
	e.reset()
	for i := range reqs {
		if err := e.Submit(&reqs[i]); err != nil {
			return nil, err
		}
	}
	if err := e.Drain(); err != nil {
		return nil, err
	}
	return e.result(), nil
}

// reset returns the scheduler to a clean state so Run can be called
// again on the same engine (the manager's cache is deliberately kept).
func (e *Engine) reset() {
	e.clock = 0
	e.step = 0
	e.pending = e.pending[:0]
	e.waiting = nil
	e.running = nil
	e.finished = nil
	e.failed = nil
	e.shed = nil
	e.cancelled = nil
	e.kvSampledStep = 0
	e.totalPromptComputed = 0
	e.totalCachedTokens = 0
	e.totalPromptTokens = 0
	e.totalGenerated = 0
	e.totalRecomputed = 0
	e.totalRestored = 0
	e.preemptions = 0
	e.peerHits = 0
	e.peerTokens = 0
	e.peerBytes = 0
	e.pendingPeerBytes = 0
	e.migratedIn = 0
	e.migratedOut = 0
	if e.tier != nil {
		e.tierBase = e.tier.TierStats()
	}
	e.encoderRuns = 0
	e.globalStalls = 0
	e.forkSeq = 0
	e.kvUtilSum = 0
	e.kvUtilN = 0
	e.kvUtilPeak = 0
	e.decodeTimeline = nil
	e.memTimeline = nil
	e.retFinished = 0
	e.retFailed = 0
	e.retShed = 0
	e.retCancelled = 0
	e.retTTFT = 0
	e.retE2E = 0
	e.retTPOT = 0
	e.retTPOTN = 0
	e.decodeSteps = 0
	e.decodeSum = 0
}

// sampleKVUtil records the fraction of KV capacity holding live or
// cached KV.
func (e *Engine) sampleKVUtil() {
	e.kvSampledStep = e.step
	capacity := e.cfg.Manager.Capacity()
	if capacity <= 0 {
		return
	}
	u := e.cfg.Manager.UsageTotals()
	util := float64(u.Used+u.Cached) / float64(capacity)
	e.kvUtilSum += util
	e.kvUtilN++
	if util > e.kvUtilPeak {
		e.kvUtilPeak = util
	}
}

// finishSampling takes the drain-time closing KV-utilization sample,
// unless the last step already took one (or nothing ran at all).
func (e *Engine) finishSampling() {
	if e.step%kvUtilEvery != 0 && e.kvSampledStep != e.step {
		e.sampleKVUtil()
	}
}

// admitArrivals moves arrived requests into the waiting queue,
// applying the admission policy at each request's arrival instant.
func (e *Engine) admitArrivals() {
	for len(e.pending) > 0 && e.pending[0].req.Arrival <= e.clock {
		r := e.pending[0]
		e.pending = e.pending[1:]
		if e.cfg.Admission != nil && e.cfg.Admission.Decide(r.req, e.admissionState(r)) == Shed {
			e.retireTerminal(r, EventShed)
			e.emit(EventShed, r)
			continue
		}
		e.waiting = append(e.waiting, r)
		e.emit(EventQueued, r)
	}
}

// runStep schedules and executes one engine step. Reports whether any
// work happened.
//
//jenga:hotpath
func (e *Engine) runStep() bool {
	now := core.Tick(e.step)
	work := gpu.StepWork{KernelEfficiency: e.cfg.KernelEfficiency}
	budget := e.cfg.MaxBatchTokens
	committers := e.committers[:0]
	decodeBatch := 0

	// The scheduler splits the step budget between the decode and
	// prefill paths; the historical policy (DefaultSplit) is a shared
	// budget consumed decode-first.
	split := e.scheduler.PrefillBudget(e.policyView(), budget)
	decodeLeft := clampBudget(split.Decode, budget)
	prefillLeft := clampBudget(split.Prefill, budget)

	// Phase 0: blocked-admission preemption. This must run before any
	// work is scheduled — once a run's commit is in flight it is
	// preemption-immune, so by admission time (phase 3) every decode
	// scheduled this step is untouchable and a blocked high-priority
	// arrival could never get in. Here nothing is in flight yet: the
	// policy may evict running victims for the admission candidate it
	// would pick. Policies that never preempt at admission (FCFS,
	// SJF, FairShare — and the historical engine) skip the phase
	// entirely via the cached AdmissionPreempter capability; one view
	// fill serves both the pick and the victim call of an iteration
	// (nothing mutates between them).
	if e.admPreempt && len(e.waiting) > 0 && len(e.running) > 0 {
		for {
			v := e.policyView()
			idx := e.scheduler.PickWaiting(v)
			if idx < 0 || idx >= len(e.waiting) {
				idx = 0
			}
			cand := e.waiting[idx]
			if e.admissionFits(cand) {
				break
			}
			if !e.admissionFeasible(cand) {
				break // could never fit: evicting the fleet cannot help
			}
			victim := e.validVictim(e.scheduler.VictimFor(e.reqInfo(cand, true), v), cand.req.ID)
			if victim == nil {
				break
			}
			e.preempt(victim)
		}
	}

	// Phase 1: one decode slot per running decode-phase sequence. The
	// running list can shrink mid-loop (reserveWithPreemption), so
	// iterate a reused snapshot and skip runs a preemption removed.
	e.stepScratch = append(e.stepScratch[:0], e.running...)
	for _, r := range e.stepScratch {
		if r.ph != phaseDecode || budget <= 0 || decodeLeft <= 0 {
			continue
		}
		if !r.alive {
			continue // preempted by an earlier iteration of this loop
		}
		r.seq.Tokens = append(r.seq.Tokens, e.genToken(r))
		target := len(r.seq.Tokens)
		if !e.reserveWithPreemption(r, target, now) {
			// Roll the speculative append back and wait for memory.
			r.seq.Tokens = r.seq.Tokens[:target-1]
			continue
		}
		r.pendingTarget = target
		r.scheduledStep = e.step
		committers = append(committers, r)
		budget--
		decodeLeft--
		decodeBatch++
		work.DecodeSeqs++
		work.KVReadBytes += gpu.DecodeKVReadBytesSplit(e.cfg.Spec, r.ctxText, r.ctxImg)
	}

	// Phase 2: prefill chunks for running prefill-phase sequences.
	// Prefill continuation never preempts — it waits for decodes to
	// drain or for the decode path to preempt on its behalf.
	for _, r := range e.running {
		if r.ph != phasePrefill || budget <= 0 || prefillLeft <= 0 {
			continue
		}
		chunk := e.schedulePrefill(r, min(budget, prefillLeft), now, &work)
		if chunk > 0 {
			budget -= chunk
			prefillLeft -= chunk
			committers = append(committers, r)
		}
	}

	// Phase 3: admission of waiting requests, in the scheduler's
	// order. A request is admitted only when its whole steady-state
	// footprint fits in free plus evictable memory (vLLM's
	// can_allocate check) — otherwise chunked prefill would over-admit
	// and thrash on recompute-preemption. A policy may resolve a
	// blocked admission by preempting a running victim (strict
	// priority); the historical policies never do.
	prefills := 0
	for _, r := range e.running {
		if r.ph == phasePrefill {
			prefills++
		}
	}
	for budget > 0 && prefillLeft > 0 && len(e.waiting) > 0 && len(e.running) < e.cfg.MaxRunning &&
		prefills < e.cfg.MaxPrefills {
		idx := e.pickWaiting()
		r := e.waiting[idx]
		blocked := false
		for !e.admissionFits(r) {
			if !e.admPreempt || !e.admissionFeasible(r) {
				blocked = true
				break
			}
			victim := e.victimFor(e.reqInfo(r, true))
			if victim == nil {
				blocked = true
				break
			}
			if victim.ph == phasePrefill {
				prefills--
			}
			e.preempt(victim)
			idx++ // preempt prepended the victim to the waiting queue
		}
		if blocked {
			break
		}
		prefills++
		e.running = append(e.running, r)
		r.alive = true
		if idx == 0 {
			e.waiting = e.waiting[1:]
		} else {
			e.waiting = append(e.waiting[:idx], e.waiting[idx+1:]...)
		}
		if !r.started {
			r.started = true
		}
		chunk := e.schedulePrefill(r, min(budget, prefillLeft), now, &work)
		if chunk == 0 {
			// Could not reserve the first chunk: admission is
			// all-or-nothing, so drop any partial reservation (a
			// waiting request must hold no memory — it is invisible to
			// preemption) and stop admitting. The release preserves
			// cache: the claim may have attached previously cached (or
			// host-tier-restored) complete blocks, and destroying them
			// here would force the next admission attempt to restore
			// or recompute the identical content again.
			e.running = e.running[:len(e.running)-1]
			r.alive = false
			e.cfg.Manager.Release(r.seq, true)
			r.computed = 0
			r.resetCtx()
			r.cachedHit = 0
			r.encoded = false
			e.waiting = append([]*run{r}, e.waiting...)
			break
		}
		budget -= chunk
		prefillLeft -= chunk
		committers = append(committers, r)
	}

	e.committers = committers
	if len(committers) == 0 {
		return false
	}

	// Execute: advance the clock by the cost model, then commit. The
	// manager's tier transfers (spills during this step's evictions,
	// restores during its claims) ride the PCIe term of the same step.
	if e.tier != nil {
		h2d, d2h := e.tier.DrainTransfers()
		work.SwapBytes += h2d + d2h
	}
	// Copy-on-write privatizations triggered by this step's
	// reservations are device-to-device copies on the HBM term.
	if e.forker != nil {
		work.CopyBytes += e.forker.DrainCopyBytes()
	}
	// Peer-link transfers recorded since the previous executed step
	// (fleet prefix fetches, migration page moves) ride this step's
	// interconnect term.
	if e.pendingPeerBytes > 0 {
		work.PeerBytes += e.pendingPeerBytes
		e.peerBytes += e.pendingPeerBytes
		e.pendingPeerBytes = 0
	}
	// Fault windows in effect at this instant (degraded links,
	// stragglers) scale the step's DMA terms and duration.
	if e.cfg.Faults != nil {
		f := e.cfg.Faults.StepFault(e.clock)
		work.PCIeFactor, work.LinkFactor, work.TimeFactor = f.PCIe, f.Link, f.Slow
	}
	e.clock += e.cost.StepTime(work)
	if e.sink != nil {
		if decodeBatch > 0 {
			e.decodeSteps++
			e.decodeSum += int64(decodeBatch)
		}
	} else {
		e.decodeTimeline = append(e.decodeTimeline, decodeBatch)
	}
	for _, r := range committers {
		e.cfg.Manager.Commit(r.seq, r.pendingTarget, now)
		if r.ph == phasePrefill {
			e.totalPromptComputed += int64(r.pendingTarget - r.computed)
			// Work below the run's high-water mark was computed once
			// already: recomputation, the waste swap preemption avoids.
			if rec := min(r.pendingTarget, r.everComputed) - r.computed; rec > 0 {
				e.totalRecomputed += int64(rec)
			}
			r.advanceCtx(r.computed, r.pendingTarget)
			r.computed = r.pendingTarget
			if r.computed > r.everComputed {
				r.everComputed = r.computed
			}
			if e.cfg.Vision == VisionFreeOnDemand && e.cfg.Manager.SupportsVisionCache() {
				e.cfg.Manager.DropImages(r.seq, r.computed)
			}
			// After a preemption the recompute pass covers generated
			// tokens too, so completion is against the full sequence.
			if r.computed >= len(r.seq.Tokens) {
				// Prefill complete: first output token produced now.
				r.ph = phaseDecode
				if r.firstToken == 0 {
					r.firstToken = e.clock
					e.emit(EventFirstToken, r)
				}
				if r.req.OutputLen == 1 {
					e.finishRun(r)
				}
			}
		} else {
			r.advanceCtx(r.computed, r.pendingTarget)
			r.computed = r.pendingTarget
			if r.computed > r.everComputed {
				r.everComputed = r.computed
			}
			r.decodesDone++
			e.totalGenerated++
			if r.firstToken == 0 {
				// Only forked branches reach decode without a first
				// token: this is the branch's TTFT instant.
				r.firstToken = e.clock
				e.emit(EventFirstToken, r)
			} else {
				e.emit(EventToken, r)
			}
			if r.req.Fanout > 1 && !r.forkDone && r.decodesDone >= r.req.ForkAfter {
				e.autoFork(r)
			}
			if r.decodesDone >= r.req.OutputLen-1 {
				e.finishRun(r)
			}
		}
	}
	return true
}

// schedulePrefill reserves the next prefill chunk for r without
// preempting anyone, running the vision encoder per the configured
// strategy. Returns the number of tokens scheduled for compute
// (0 when blocked on memory).
func (e *Engine) schedulePrefill(r *run, budget int, now core.Tick, work *gpu.StepWork) int {
	if r.computed == 0 && r.cachedHit == 0 {
		// First chunk after (re)admission: consult the prefix cache.
		r.cachedHit = e.cfg.Manager.Lookup(r.seq)
		if debugSteps {
			fmt.Printf("admit id=%d len=%d hit=%d\n", r.req.ID, len(r.seq.Tokens), r.cachedHit)
		}
	}
	images := r.req.PromptImages()
	encoderTokens := 0
	if images > 0 && e.cfg.Spec.Vision != nil {
		switch {
		case e.cfg.Vision == VisionFreeOnDemand && e.cfg.Manager.SupportsVisionCache():
			if !r.encoded {
				// Embeddings must exist before the chunk consumes them.
				if err := e.cfg.Manager.EncodeImages(r.seq, r.promptLen(), now); err != nil {
					return 0
				}
				encoderTokens = images
			}
		case e.cfg.Vision == VisionReuseKV:
			if !r.encoded {
				encoderTokens = images
			}
		default:
			// No embedding cache: the encoder re-runs for every chunk
			// that still needs image embeddings (§7.4 / Fig. 18).
			if e.imagesRemaining(r) {
				encoderTokens = images
			}
		}
	}

	start := r.computed
	if start < r.cachedHit {
		start = r.cachedHit
	}
	// Recompute passes after preemption cover generated tokens too.
	total := len(r.seq.Tokens)
	chunk := total - start
	if chunk > budget {
		chunk = budget
	}
	if chunk < 0 {
		chunk = 0
	}
	target := start + chunk
	if err := e.cfg.Manager.Reserve(r.seq, target, now); err != nil {
		return 0
	}
	// A prefix hit skips compute for [r.computed, claimed). A
	// host-tier claim can come back shorter than the advisory Lookup
	// promised (mid-claim restore ran out of device memory and fell
	// back to the GPU-only prefix): reconcile cachedHit down so later
	// chunks size themselves from the real claim, not the stale
	// advisory. Untiered, claim and advisory always agree.
	claimed := e.cfg.Manager.CachedPrefix(r.seq)
	if claimed < r.cachedHit {
		r.cachedHit = claimed
	}
	if claimed > r.computed {
		e.totalCachedTokens += int64(claimed - r.computed)
		r.advanceCtx(r.computed, claimed)
		r.computed = claimed
		if r.computed > r.everComputed {
			r.everComputed = r.computed
		}
		// The claim runs once per (re)admission; fold its host-tier
		// restore share into the run's record and the run totals.
		// This branch only runs after the first chunk reserved
		// successfully, so claims whose admission rolled back (and
		// whose restored blocks may thrash back to the tier and be
		// restored again) never inflate RestoredTokens past the
		// prefill work actually served — TierHitRate stays ≤ HitRate.
		if e.tier != nil {
			if tok, bytes := e.tier.RestoreCost(r.seq); tok > 0 || bytes > 0 {
				r.restoredTokens += tok
				r.restoredBytes += bytes
				e.totalRestored += int64(tok)
			}
		}
	}
	if target < r.computed {
		target = r.computed
	}
	// A host-tier claim can fall back to a shorter GPU-only prefix
	// than the advisory Lookup promised (mid-claim restore ran out of
	// device memory): clamp the commit target so the step still
	// computes at most `chunk` tokens — the budget cap must hold even
	// on the fallback path. Reserved-but-uncommitted slots beyond the
	// clamp stay reserved for the next chunk. Untiered, the claim
	// always equals the advisory lookup and the clamp is a no-op.
	if target > r.computed+chunk {
		target = r.computed + chunk
	}
	r.pendingTarget = target
	r.scheduledStep = e.step
	if encoderTokens > 0 {
		work.EncoderTokens += encoderTokens
		e.encoderRuns++
		if e.cfg.Vision != VisionNone {
			r.encoded = true
		}
	}
	computeTokens := target - r.computed
	work.PrefillTokens += computeTokens
	work.KVReadBytes += gpu.DecodeKVReadBytesSplit(e.cfg.Spec, r.ctxText, r.ctxImg)
	if computeTokens == 0 {
		// Nothing to compute (full-prompt hit): commit advances state.
		return 1
	}
	return computeTokens
}

// imagesRemaining reports whether un-prefilled image tokens remain.
func (e *Engine) imagesRemaining(r *run) bool {
	for i := r.computed; i < r.promptLen(); i++ {
		if r.req.Prompt[i].Image {
			return true
		}
	}
	return false
}

// reserveWithPreemption tries to reserve KV for r, recompute-
// preempting the scheduler's chosen victims when memory runs out —
// vLLM's recompute preemption with the victim order delegated to the
// scheduling policy.
func (e *Engine) reserveWithPreemption(r *run, upTo int, now core.Tick) bool {
	for {
		err := e.cfg.Manager.Reserve(r.seq, upTo, now)
		if err == nil {
			return true
		}
		victim := e.victimFor(e.reqInfo(r, false))
		if victim == nil {
			return false
		}
		e.preempt(victim)
	}
}

// victimFor asks the scheduler for requester's preemption victim.
func (e *Engine) victimFor(requester sched.ReqInfo) *run {
	return e.validVictim(e.scheduler.VictimFor(requester, e.policyView()), requester.ID)
}

// validVictim validates a scheduler's victim pick: out-of-range
// indices, the requester itself and runs whose commits are in flight
// this step are all treated as "no victim", so a broken custom policy
// degrades to a failed reservation instead of corrupting the step.
func (e *Engine) validVictim(idx int, requesterID int64) *run {
	if idx < 0 || idx >= len(e.running) {
		return nil
	}
	victim := e.running[idx]
	if victim.req.ID == requesterID || victim.scheduledStep == e.step {
		return nil
	}
	return victim
}

// pickWaiting returns the index of the next admission candidate in
// the scheduler's order, clamped defensively to the queue front.
func (e *Engine) pickWaiting() int {
	idx := e.scheduler.PickWaiting(e.policyView())
	if idx < 0 || idx >= len(e.waiting) {
		return 0
	}
	return idx
}

// admissionFits reports whether r's whole steady-state footprint fits
// in free plus evictable memory, keeping a 1% watermark clear.
func (e *Engine) admissionFits(r *run) bool {
	u := e.cfg.Manager.UsageTotals()
	watermark := e.cfg.Manager.Capacity() / 100
	return e.cfg.Manager.Footprint(r.seq) <= u.Free+u.Cached-watermark
}

// admissionFeasible reports whether r could fit even on an idle
// engine: its footprint within total capacity minus the watermark.
// Admission-time preemption must not fire for infeasible candidates —
// recompute-preempting the entire running set could not make room, so
// one impossible arrival must not wipe the fleet's in-flight work.
func (e *Engine) admissionFeasible(r *run) bool {
	capacity := e.cfg.Manager.Capacity()
	return e.cfg.Manager.Footprint(r.seq) <= capacity-capacity/100
}

// policyView repopulates the reusable scheduler view from the live
// queues. Slices are reused so steady-state steps allocate nothing.
func (e *Engine) policyView() *sched.View {
	v := &e.schedView
	v.Clock = e.clock
	v.Step = e.step
	v.Usage = e.cfg.Manager.UsageTotals()
	v.Capacity = e.cfg.Manager.Capacity()
	v.Waiting = v.Waiting[:0]
	for _, r := range e.waiting {
		v.Waiting = append(v.Waiting, e.reqInfo(r, true))
	}
	v.Running = v.Running[:0]
	for _, r := range e.running {
		v.Running = append(v.Running, e.reqInfo(r, false))
	}
	return v
}

// reqInfo summarizes one run for the scheduler.
func (e *Engine) reqInfo(r *run, waiting bool) sched.ReqInfo {
	info := sched.ReqInfo{
		ID:        r.req.ID,
		Priority:  r.req.Priority,
		Arrival:   r.req.Arrival,
		Deadline:  r.req.Deadline,
		Group:     r.req.Group,
		PromptLen: r.promptLen(),
		OutputLen: r.req.OutputLen,
		Waiting:   waiting,
	}
	// Remaining work: uncommitted tokens (a recompute pass after
	// preemption covers generated tokens too) plus undone output.
	remTok := len(r.seq.Tokens) - r.computed
	if remTok < 0 {
		remTok = 0
	}
	remOut := r.req.OutputLen - 1 - r.decodesDone
	if remOut < 0 {
		remOut = 0
	}
	info.Remaining = remTok + remOut
	if !waiting {
		if r.ph == phaseDecode {
			info.Phase = sched.PhaseDecode
		} else {
			info.Phase = sched.PhasePrefill
		}
		info.ScheduledNow = r.scheduledStep == e.step
	}
	return info
}

// clampBudget bounds a scheduler-returned budget share to [0, total].
func clampBudget(share, total int) int {
	if share > total {
		return total
	}
	if share < 0 {
		return 0
	}
	return share
}

// preempt releases a sequence's memory and requeues it. In recompute
// mode the victim's pages return to the evictable prefix cache; in
// swap mode they additionally move to the manager's host tier, so the
// victim resumes by restoring over PCIe even if GPU pressure evicted
// everything in between. Either way re-admission goes through the
// prefix-cache claim, so whatever survives is never recomputed.
func (e *Engine) preempt(victim *run) {
	if e.cfg.PreemptMode == PreemptSwap && e.tier != nil {
		e.tier.SwapOut(victim.seq)
	} else {
		e.cfg.Manager.Release(victim.seq, true)
	}
	victim.ph = phasePrefill
	victim.computed = 0
	victim.resetCtx()
	victim.cachedHit = 0
	victim.encoded = false
	e.preemptions++
	e.removeRunning(victim)
	e.waiting = append([]*run{victim}, e.waiting...)
	e.emit(EventPreempted, victim)
}

// handleStall resolves a step that scheduled nothing. Returns false if
// the simulation is irrecoverably stuck.
func (e *Engine) handleStall() bool {
	// Future arrivals: fast-forward.
	if len(e.running) == 0 && len(e.waiting) == 0 && len(e.pending) > 0 {
		e.clock = e.pending[0].req.Arrival
		e.globalStalls = 0
		return true
	}
	// A waiting request that cannot start even on an idle engine can
	// never run (the Ministral-on-L4 vLLM failure): fail it. The
	// candidate is the one admission actually tried — pickWaiting's
	// choice — not blindly waiting[0], or a stuck high-priority
	// request would sink every fitting request queued behind it.
	if len(e.running) == 0 && len(e.waiting) > 0 {
		idx := e.pickWaiting()
		r := e.waiting[idx]
		e.waiting = append(e.waiting[:idx], e.waiting[idx+1:]...)
		e.cfg.Manager.Release(r.seq, false)
		e.retireTerminal(r, EventFailed)
		e.emit(EventFailed, r)
		e.globalStalls = 0
		if debugSteps {
			u := e.cfg.Manager.Usage()
			fmt.Printf("FAIL idle-admission id=%d len=%d fp=%d free=%d cached=%d used=%d wasted=%d\n",
				r.req.ID, len(r.seq.Tokens), e.cfg.Manager.Footprint(r.seq), u.Free, u.Cached, u.Used, u.Wasted)
		}
		return true
	}
	if len(e.running) == 0 {
		return false
	}
	// Running sequences globally stuck: the decode path already
	// preempted everyone it could, so the largest remaining context
	// exceeds capacity on its own. Give eviction a couple of steps,
	// then fail it.
	if e.globalStalls <= 2 {
		return true
	}
	var worst *run
	for _, r := range e.running {
		if worst == nil || len(r.seq.Tokens) > len(worst.seq.Tokens) {
			worst = r
		}
	}
	if debugSteps {
		u := e.cfg.Manager.Usage()
		fmt.Printf("FAIL stuck-running id=%d len=%d computed=%d free=%d cached=%d\n",
			worst.req.ID, len(worst.seq.Tokens), worst.computed, u.Free, u.Cached)
	}
	e.cfg.Manager.Release(worst.seq, false)
	e.removeRunning(worst)
	e.retireTerminal(worst, EventFailed)
	e.emit(EventFailed, worst)
	e.globalStalls = 0
	return true
}

func (e *Engine) finishRun(r *run) {
	r.finish = e.clock
	e.cfg.Manager.Release(r.seq, true)
	e.removeRunning(r)
	if e.sink != nil {
		e.retFinished++
		e.retTTFT += r.firstToken - r.req.Arrival
		e.retE2E += r.finish - r.req.Arrival
		if r.req.OutputLen > 1 {
			e.retTPOT += (r.finish - r.firstToken) / time.Duration(r.req.OutputLen-1)
			e.retTPOTN++
		}
		e.sink(e.runMetrics(r), EventFinished)
	} else {
		e.finished = append(e.finished, r)
	}
	e.emit(EventFinished, r)
}

func (e *Engine) removeRunning(r *run) {
	r.alive = false
	for i, c := range e.running {
		if c == r {
			e.running = append(e.running[:i], e.running[i+1:]...)
			return
		}
	}
}

// genToken produces the deterministic "generated" token for a decode
// step (content derived from request id and position so prefix caching
// across identical requests behaves consistently).
func (e *Engine) genToken(r *run) core.Token {
	pos := len(r.seq.Tokens)
	x := uint64(r.req.ID)*0x9E3779B97F4A7C15 + uint64(pos)*0xBF58476D1CE4E5B9
	x ^= x >> 29
	return core.Token{ID: int32(x%50000 + 1)}
}

// result assembles the final metrics.
func (e *Engine) result() *Result {
	res := &Result{
		Duration:             e.clock,
		Steps:                e.step,
		Finished:             len(e.finished) + e.retFinished,
		Failed:               len(e.failed) + e.retFailed,
		Shed:                 len(e.shed) + e.retShed,
		Cancelled:            len(e.cancelled) + e.retCancelled,
		Preemptions:          e.preemptions,
		PeerHits:             e.peerHits,
		PeerTokens:           e.peerTokens,
		PeerBytes:            e.peerBytes,
		MigratedIn:           e.migratedIn,
		MigratedOut:          e.migratedOut,
		EncoderRuns:          e.encoderRuns,
		CachedPromptTokens:   e.totalCachedTokens,
		ComputedPromptTokens: e.totalPromptComputed,
		GeneratedTokens:      e.totalGenerated,
		RecomputedTokens:     e.totalRecomputed,
		PeakKVUtil:           e.kvUtilPeak,
		DecodeBatchTimeline:  e.decodeTimeline,
		MemTimeline:          e.memTimeline,
	}
	if e.kvUtilN > 0 {
		res.MeanKVUtil = e.kvUtilSum / float64(e.kvUtilN)
	}
	if e.clock > 0 {
		res.ReqPerSec = float64(res.Finished) / e.clock.Seconds()
		res.TokensPerSec = float64(e.totalPromptComputed+e.totalGenerated) / e.clock.Seconds()
	}
	// Hit rate over all prefill work (recompute passes after preemption
	// included), so it stays in [0, 1].
	if work := e.totalCachedTokens + e.totalPromptComputed; work > 0 {
		res.HitRate = float64(e.totalCachedTokens) / float64(work)
	}
	// Host-tier accounting. Transfer counts and volumes are per-run
	// deltas of the manager's counters (the manager may be warm
	// across runs) and include every wire transfer, even for claims
	// whose admission later rolled back. RestoredTokens is the
	// engine's served-claims tally — the subset of restored prefix
	// that reached admitted work — and TierHitRate is computed from
	// it, so the engine result, serve.Report and the cluster's
	// fleet-exact aggregation all derive the same rate from the same
	// counter, bounded by HitRate.
	if e.tier != nil {
		ts := e.tier.TierStats()
		res.SwapOuts = ts.SwapOuts - e.tierBase.SwapOuts
		res.SwapIns = ts.SwapIns - e.tierBase.SwapIns
		res.SwapOutBytes = ts.SpilledBytes - e.tierBase.SpilledBytes
		res.SwapInBytes = ts.RestoredBytes - e.tierBase.RestoredBytes
		res.RestoredTokens = e.totalRestored
		res.HostTierUsed = ts.HostUsed
		res.HostTierCapacity = ts.HostCapacity
		if work := e.totalCachedTokens + e.totalPromptComputed; work > 0 {
			res.TierHitRate = float64(res.RestoredTokens) / float64(work)
		}
	}
	// Latency means: streamed retirements accumulated their sums at
	// the terminal event; retained runs contribute here. In streaming-
	// retirement mode PerRequest stays empty — per-request records went
	// to the sink as they retired.
	ttft, e2e, tpot := e.retTTFT, e.retE2E, e.retTPOT
	tpotN := e.retTPOTN
	res.PerRequest = make([]RequestMetrics, 0, len(e.finished))
	for _, r := range e.finished {
		ttft += r.firstToken - r.req.Arrival
		e2e += r.finish - r.req.Arrival
		res.PerRequest = append(res.PerRequest, e.runMetrics(r))
		if r.req.OutputLen > 1 {
			tpot += (r.finish - r.firstToken) / time.Duration(r.req.OutputLen-1)
			tpotN++
		}
	}
	if n := res.Finished; n > 0 {
		res.MeanTTFT = ttft / time.Duration(n)
		res.MeanE2E = e2e / time.Duration(n)
	}
	if tpotN > 0 {
		res.MeanTPOT = tpot / time.Duration(tpotN)
	}
	steps, sum := e.decodeSteps, e.decodeSum
	for _, b := range e.decodeTimeline {
		if b > 0 {
			steps++
			sum += int64(b)
		}
	}
	if steps > 0 {
		res.MeanDecodeBatch = float64(sum) / float64(steps)
	}
	return res
}
