package engine

import (
	"fmt"

	"jenga/internal/core"
	"jenga/internal/workload"
)

// Stream forking at the engine layer. Fork clones a running
// decode-phase request into children that share every committed KV
// page copy-on-write (core.Forker): the children enter the running set
// directly — they already hold their memory, so admission, MaxRunning
// and the prefix-cache claim path are all bypassed — and decode
// independently from the divergence point. Each child is a first-class
// request afterwards: it emits its own lifecycle events (EventQueued
// at fork, EventFirstToken at its first own token), can be cancelled
// or preempted on its own (a preempted child re-admits through the
// ordinary prefix-cache claim, recomputing only its divergent tail),
// and shares the parent's Group label so fair-share scheduling sees
// the whole fan-out as one tenant's siblings.

// forkIDBase offsets engine-generated branch IDs (auto fan-out) far
// above any workload-generated request ID.
const forkIDBase = int64(1) << 40

// Fork clones the running decode-phase request parentID into one new
// branch per child ID. Children share all committed KV copy-on-write,
// inherit the parent's prompt, output length, deadline and priority,
// arrive now, and carry the parent's Group label (assigning the
// parent's ID as the group when it had none, so schedulers see the
// fan-out as siblings). Fails without a core.Forker manager, for
// unknown or still-prefilling parents, and for child IDs already in
// use; on a mid-list failure the earlier children stand (best effort).
func (e *Engine) Fork(parentID int64, childIDs []int64) error {
	if e.forker == nil {
		return fmt.Errorf("engine: manager %T does not support forking", e.cfg.Manager)
	}
	var parent *run
	for _, r := range e.running {
		if r.req.ID == parentID {
			parent = r
			break
		}
	}
	if parent == nil {
		return fmt.Errorf("engine: fork: request %d is not running", parentID)
	}
	if parent.ph != phaseDecode {
		return fmt.Errorf("engine: fork: request %d is still prefilling", parentID)
	}
	for _, id := range childIDs {
		if err := e.forkOne(parent, id); err != nil {
			return err
		}
	}
	return nil
}

// forkOne clones parent into one child branch and enters it into the
// running set.
func (e *Engine) forkOne(parent *run, childID int64) error {
	if parent.req.Group == 0 {
		parent.req.Group = parent.req.ID
	}
	creq := &workload.Request{
		ID:        childID,
		Arrival:   e.clock,
		Group:     parent.req.Group,
		Prompt:    parent.req.Prompt,
		OutputLen: parent.req.OutputLen,
		Deadline:  parent.req.Deadline,
		Priority:  parent.req.Priority,
	}
	// Same slice sizing rule as Submit: room for the full
	// prompt-plus-output lifetime so decode appends never reallocate.
	toks := make([]core.Token, len(parent.seq.Tokens), len(creq.Prompt)+creq.OutputLen)
	copy(toks, parent.seq.Tokens)
	child := &run{
		req: creq,
		seq: &core.Sequence{ID: core.RequestID(childID), PromptLen: parent.seq.PromptLen, Tokens: toks},
		ph:  phaseDecode,
		// The child starts exactly where the parent stands: everything
		// committed so far is shared, nothing needs recomputing.
		computed:      parent.computed,
		cachedHit:     parent.cachedHit,
		decodesDone:   parent.decodesDone,
		encoded:       parent.encoded,
		scheduledStep: e.step, // not preemptible in the fork step
		ctxText:       parent.ctxText,
		ctxImg:        parent.ctxImg,
		everComputed:  parent.everComputed,
		alive:         true,
		started:       true,
		forkDone:      true, // children of a Fanout root never re-fork
	}
	if err := e.forker.Fork(parent.seq, child.seq, core.Tick(e.step)); err != nil {
		return err
	}
	e.running = append(e.running, child)
	e.emit(EventQueued, child)
	return nil
}

// autoFork expands a Fanout request into its branches at the
// divergence point. Best effort: on a failed branch (no memory for the
// Mamba state copy, say) the branches created so far run and the rest
// are abandoned — the parent keeps decoding either way. Without a
// Forker manager the request simply runs single-stream.
func (e *Engine) autoFork(r *run) {
	r.forkDone = true
	if e.forker == nil {
		return
	}
	for i := 1; i < r.req.Fanout; i++ {
		e.forkSeq++
		if err := e.forkOne(r, forkIDBase+e.forkSeq); err != nil {
			return
		}
	}
}
