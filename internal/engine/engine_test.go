package engine

import (
	"testing"
	"time"

	"jenga/internal/baseline"
	"jenga/internal/core"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// miniWindowSpec is a scaled-down Ministral: 1 full + 3 sliding-window
// layers, window 64.
func miniWindowSpec() *model.Spec {
	return &model.Spec{
		Name: "mini-win", Params: 100_000_000, WeightBytes: 2, HiddenSize: 256,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 1, BytesPerToken: 256},
			{Name: "window", Kind: model.SlidingWindow, Layers: 3, BytesPerToken: 256, Window: 64},
		},
	}
}

// miniVLMSpec is a scaled-down LLaVA.
func miniVLMSpec() *model.Spec {
	return &model.Spec{
		Name: "mini-vlm", Params: 100_000_000, WeightBytes: 2, HiddenSize: 256,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 4, BytesPerToken: 256},
			{Name: "vision", Kind: model.VisionEmbedding, Layers: 1, BytesPerToken: 512, Scope: model.ScopeImage},
		},
		Vision: &model.VisionSpec{Params: 10_000_000, TokensPerImage: 16},
	}
}

// smallDevice is a fast simulated GPU so tests finish quickly.
func smallDevice() gpu.Device {
	return gpu.Device{Name: "test-gpu", MemBytes: 1 << 30, FLOPS: 50e12, MemBW: 500e9,
		StepOverhead: time.Millisecond}
}

func jengaFor(t *testing.T, spec *model.Spec, capacity int64, cache bool) core.Manager {
	t.Helper()
	m, err := core.New(core.Config{
		Spec: spec, CapacityBytes: capacity, TokensPerPage: 8,
		EnablePrefixCache: cache, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func pagedFor(t *testing.T, spec *model.Spec, capacity int64, cache bool) core.Manager {
	t.Helper()
	m, err := baseline.NewPaged(baseline.Config{
		Spec: spec, CapacityBytes: capacity, TokensPerPage: 8, EnablePrefixCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func textReqs(seed int64, n, promptLen, outLen int) []workload.Request {
	g := workload.NewGen(seed)
	reqs := g.ShareGPT(n)
	for i := range reqs {
		if len(reqs[i].Prompt) > promptLen {
			reqs[i].Prompt = reqs[i].Prompt[:promptLen]
		}
		reqs[i].OutputLen = outLen
	}
	workload.AllAtOnce(reqs)
	return reqs
}

func runEngine(t *testing.T, cfg Config, reqs []workload.Request) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEngineBasicRun(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, false)
	reqs := textReqs(1, 10, 300, 20)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 512}, reqs)
	if res.Finished != 10 || res.Failed != 0 {
		t.Fatalf("finished %d failed %d, want 10/0", res.Finished, res.Failed)
	}
	if res.ReqPerSec <= 0 || res.TokensPerSec <= 0 {
		t.Error("throughput must be positive")
	}
	if res.MeanTTFT <= 0 || res.MeanE2E < res.MeanTTFT {
		t.Errorf("latencies inconsistent: ttft %v e2e %v", res.MeanTTFT, res.MeanE2E)
	}
	if res.MeanTPOT <= 0 {
		t.Error("TPOT must be positive with multi-token outputs")
	}
	// Memory fully drains at the end.
	u := mgr.Usage()
	if u.Used != 0 || u.Wasted != 0 {
		t.Errorf("memory leak at end of run: %+v", u)
	}
}

func TestEngineConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing spec/manager should error")
	}
	spec := miniWindowSpec()
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: jengaFor(t, spec, 8<<20, false)})
	if err != nil {
		t.Fatal(err)
	}
	bad := textReqs(1, 1, 50, 5)
	bad[0].OutputLen = 0
	if _, err := e.Run(bad); err == nil {
		t.Error("zero output length should error")
	}
}

// TestJengaOutbatchesBaseline: under tight memory, Jenga's window
// freeing fits more concurrent decodes → higher throughput and larger
// decode batches (the Fig. 13/15 mechanism at miniature scale).
func TestJengaOutbatchesBaseline(t *testing.T) {
	spec := miniWindowSpec()
	capacity := int64(1 << 20) // tight: forces batch-size differences
	reqs := textReqs(2, 12, 400, 30)

	jr := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, capacity, false), MaxBatchTokens: 512}, reqs)
	reqs2 := textReqs(2, 12, 400, 30)
	br := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: pagedFor(t, spec, capacity, false), MaxBatchTokens: 512}, reqs2)

	if jr.Finished != 12 || br.Finished != 12 {
		t.Fatalf("finished: jenga %d baseline %d", jr.Finished, br.Finished)
	}
	if jr.ReqPerSec <= br.ReqPerSec {
		t.Errorf("jenga %.3f req/s should beat baseline %.3f req/s",
			jr.ReqPerSec, br.ReqPerSec)
	}
	if jr.MeanDecodeBatch <= br.MeanDecodeBatch {
		t.Errorf("jenga decode batch %.2f should beat baseline %.2f",
			jr.MeanDecodeBatch, br.MeanDecodeBatch)
	}
}

// TestPreemptionRecovers: short prompts admit many requests, then long
// outputs grow decode KV beyond capacity, forcing recompute-preemption;
// everything must still complete.
func TestPreemptionRecovers(t *testing.T) {
	spec := miniWindowSpec()
	capacity := int64(400 << 10)
	mgr := jengaFor(t, spec, capacity, false)
	reqs := textReqs(3, 6, 100, 300)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 512}, reqs)
	if res.Finished != 6 {
		t.Fatalf("finished %d of 6 (failed %d)", res.Finished, res.Failed)
	}
	if res.Preemptions == 0 {
		t.Error("expected preemptions under tight memory")
	}
}

// TestImpossibleRequestFails: a prompt that cannot fit even alone is
// failed rather than looping forever.
func TestImpossibleRequestFails(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 256<<10, false)
	reqs := textReqs(4, 2, 100, 5)
	// Request 0: a prompt far beyond capacity.
	reqs[0].Prompt = workload.NewGen(9).LongDocQA(1)[0].Prompt[:20000]
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 1024}, reqs)
	if res.Failed != 1 {
		t.Errorf("failed = %d, want 1", res.Failed)
	}
	if res.Finished != 1 {
		t.Errorf("finished = %d, want 1", res.Finished)
	}
}

// TestPrefixCachingImprovesThroughput: repeated questions over the same
// articles hit the cache, skipping prefill compute (Fig. 17 mechanism).
func TestPrefixCachingImprovesThroughput(t *testing.T) {
	spec := miniWindowSpec()
	gen := workload.NewGen(5)
	arts := gen.Articles(2, 400)
	reqs := gen.ArxivQA(arts, 16, 32)
	for i := range reqs {
		reqs[i].OutputLen = 10
	}
	workload.AllAtOnce(reqs)

	on := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, 16<<20, true), MaxBatchTokens: 512}, reqs)

	gen2 := workload.NewGen(5)
	arts2 := gen2.Articles(2, 400)
	reqs2 := gen2.ArxivQA(arts2, 16, 32)
	for i := range reqs2 {
		reqs2[i].OutputLen = 10
	}
	workload.AllAtOnce(reqs2)
	off := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, 16<<20, false), MaxBatchTokens: 512}, reqs2)

	if on.HitRate <= 0.2 {
		t.Errorf("hit rate = %.2f, expected substantial hits", on.HitRate)
	}
	if off.HitRate != 0 {
		t.Errorf("hit rate with caching off = %.2f, want 0", off.HitRate)
	}
	if on.Duration >= off.Duration {
		t.Errorf("caching should shorten the run: on %v vs off %v", on.Duration, off.Duration)
	}
}

// TestVisionEncoderRuns: with the embedding cache the encoder runs once
// per request; without it, once per image-bearing chunk (Fig. 18).
func TestVisionEncoderRuns(t *testing.T) {
	spec := miniVLMSpec()
	gen := workload.NewGen(6)
	reqs := gen.MMMUPro(4, 16)
	for i := range reqs {
		// 4 images ≈ 64 image tokens + text; chunk 32 → several chunks.
		reqs[i].OutputLen = 5
	}
	workload.AllAtOnce(reqs)

	cached := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, 32<<20, false), MaxBatchTokens: 32,
		Vision: VisionFreeOnDemand}, reqs)

	gen2 := workload.NewGen(6)
	reqs2 := gen2.MMMUPro(4, 16)
	for i := range reqs2 {
		reqs2[i].OutputLen = 5
	}
	workload.AllAtOnce(reqs2)
	uncached := runEngine(t, Config{Spec: spec, Device: smallDevice(),
		Manager: pagedFor(t, spec, 32<<20, false), MaxBatchTokens: 32,
		Vision: VisionNone}, reqs2)

	if cached.EncoderRuns != 4 {
		t.Errorf("cached encoder runs = %d, want 4 (once per request)", cached.EncoderRuns)
	}
	if uncached.EncoderRuns <= cached.EncoderRuns {
		t.Errorf("uncached encoder runs = %d, must exceed %d", uncached.EncoderRuns, cached.EncoderRuns)
	}
	if cached.Duration >= uncached.Duration {
		t.Errorf("embedding cache should be faster: %v vs %v", cached.Duration, uncached.Duration)
	}
}

// TestVisionReuseKVZeroVisionMemory: strategy B keeps vision memory at
// zero while still encoding once.
func TestVisionReuseKVZeroVisionMemory(t *testing.T) {
	spec := miniVLMSpec()
	mgr := jengaFor(t, spec, 32<<20, false)
	gen := workload.NewGen(7)
	reqs := gen.MMMUPro(3, 16)
	for i := range reqs {
		reqs[i].OutputLen = 4
	}
	workload.AllAtOnce(reqs)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 32, Vision: VisionReuseKV, SampleEvery: 1}, reqs)
	if res.EncoderRuns != 3 {
		t.Errorf("encoder runs = %d, want 3", res.EncoderRuns)
	}
	for _, s := range res.MemTimeline {
		if v, ok := s.Usage.PerGroup["vision"]; ok && v.Used > 0 {
			t.Fatalf("step %d: vision memory %d under ReuseKV, want 0", s.Step, v.Used)
		}
	}
}

// TestMemTimelineConservation: every sample conserves capacity.
func TestMemTimelineConservation(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 4<<20, true)
	reqs := textReqs(8, 8, 300, 15)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 256, SampleEvery: 2}, reqs)
	if len(res.MemTimeline) == 0 {
		t.Fatal("expected memory samples")
	}
	for _, s := range res.MemTimeline {
		total := s.Usage.Used + s.Usage.Cached + s.Usage.Wasted + s.Usage.Free
		if total != mgr.Capacity() {
			t.Fatalf("step %d: conservation violated (%d != %d)", s.Step, total, mgr.Capacity())
		}
	}
}

// TestDeterminism: identical configs produce identical results.
func TestDeterminism(t *testing.T) {
	spec := miniWindowSpec()
	run := func() *Result {
		return runEngine(t, Config{Spec: spec, Device: smallDevice(),
			Manager: jengaFor(t, spec, 2<<20, true), MaxBatchTokens: 256},
			textReqs(11, 8, 250, 12))
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Steps != b.Steps || a.ReqPerSec != b.ReqPerSec ||
		a.Preemptions != b.Preemptions || a.HitRate != b.HitRate {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestPoissonLatencyGrowsWithRate: higher request rates mean higher
// TTFT (queueing) — the Fig. 14 shape.
func TestPoissonLatencyGrowsWithRate(t *testing.T) {
	spec := miniWindowSpec()
	runAt := func(rate float64) *Result {
		g := workload.NewGen(12)
		reqs := g.ShareGPT(20)
		for i := range reqs {
			if len(reqs[i].Prompt) > 200 {
				reqs[i].Prompt = reqs[i].Prompt[:200]
			}
			reqs[i].OutputLen = 10
		}
		g.PoissonArrivals(reqs, rate)
		return runEngine(t, Config{Spec: spec, Device: smallDevice(),
			Manager: jengaFor(t, spec, 1<<20, false), MaxBatchTokens: 256}, reqs)
	}
	slow := runAt(1)
	fast := runAt(1000)
	if fast.MeanTTFT <= slow.MeanTTFT {
		t.Errorf("TTFT at high rate (%v) should exceed low rate (%v)",
			fast.MeanTTFT, slow.MeanTTFT)
	}
}
