package engine

import (
	"testing"

	"jenga/internal/core"
	"jenga/internal/workload"
)

// TestMaxRunningCap: the scheduler never runs more sequences than
// MaxRunning even with abundant memory.
func TestMaxRunningCap(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 64<<20, false)
	reqs := textReqs(21, 16, 100, 40)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 4096, MaxRunning: 3, MaxPrefills: 3}, reqs)
	if res.Finished != 16 {
		t.Fatalf("finished %d of 16", res.Finished)
	}
	for step, b := range res.DecodeBatchTimeline {
		if b > 3 {
			t.Fatalf("step %d: decode batch %d exceeds MaxRunning 3", step, b)
		}
	}
}

// TestKernelEfficiencySlowsRun: the GCD-ablation knob must lengthen the
// simulated run without changing the work done.
func TestKernelEfficiencySlowsRun(t *testing.T) {
	spec := miniWindowSpec()
	run := func(eff float64) *Result {
		return runEngine(t, Config{Spec: spec, Device: smallDevice(),
			Manager: jengaFor(t, spec, 8<<20, false), MaxBatchTokens: 512,
			KernelEfficiency: eff}, textReqs(22, 8, 200, 15))
	}
	fast := run(1.0)
	slow := run(0.5)
	if slow.Duration <= fast.Duration {
		t.Errorf("0.5 efficiency should be slower: %v vs %v", slow.Duration, fast.Duration)
	}
	if slow.Finished != fast.Finished {
		t.Error("efficiency must not change completed work")
	}
}

// TestPreemptionWithCachingEnabled: recompute-preemption with the
// prefix cache enabled exercises the Release(cache=true) path; under
// this much memory pressure the preempted blocks are usually evicted
// before re-admission, so only completion is asserted.
func TestPreemptionWithCachingEnabled(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 400<<10, true)
	reqs := textReqs(23, 6, 100, 300)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512}, reqs)
	if res.Finished != 6 {
		t.Fatalf("finished %d of 6 (failed %d)", res.Finished, res.Failed)
	}
	if res.Preemptions == 0 {
		t.Skip("no preemptions at this capacity; nothing to check")
	}
	u := mgr.Usage()
	if u.Used != 0 {
		t.Errorf("leaked used memory after run: %+v", u)
	}
}

// TestSampleEveryControlsTimeline: sampling cadence shapes the
// timeline length.
func TestSampleEveryControlsTimeline(t *testing.T) {
	spec := miniWindowSpec()
	run := func(every int) int {
		res := runEngine(t, Config{Spec: spec, Device: smallDevice(),
			Manager: jengaFor(t, spec, 8<<20, false), MaxBatchTokens: 512,
			SampleEvery: every}, textReqs(24, 6, 150, 10))
		return len(res.MemTimeline)
	}
	if run(0) != 0 {
		t.Error("SampleEvery 0 must disable the timeline")
	}
	dense, sparse := run(1), run(8)
	if dense <= sparse {
		t.Errorf("denser sampling should yield more samples: %d vs %d", dense, sparse)
	}
}

// TestArrivalFastForward: a gap between arrivals advances the clock
// rather than spinning steps.
func TestArrivalFastForward(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, false)
	g := workload.NewGen(25)
	reqs := g.ShareGPT(3)
	for i := range reqs {
		reqs[i].Prompt = reqs[i].Prompt[:50]
		reqs[i].OutputLen = 4
		reqs[i].Arrival = 0
	}
	reqs[2].Arrival = 1e9 * 30 // 30 s after the first two
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512}, reqs)
	if res.Finished != 3 {
		t.Fatalf("finished %d of 3", res.Finished)
	}
	if res.Duration.Seconds() < 30 {
		t.Errorf("clock should jump to the late arrival: %v", res.Duration)
	}
	if res.Steps > 200 {
		t.Errorf("fast-forward should not burn steps: %d", res.Steps)
	}
}

// TestVisionAdmissionBlockedByEmbeddings: when the embedding cache
// cannot fit, the request waits rather than deadlocking, and completes
// once memory frees.
func TestVisionAdmissionBlocked(t *testing.T) {
	spec := miniVLMSpec()
	// Capacity fits roughly one request's embeddings + KV at a time.
	mgr := jengaFor(t, spec, 256<<10, false)
	reqs := make([]workload.Request, 3)
	for i := range reqs {
		r := workload.Request{ID: int64(i + 1), OutputLen: 3}
		for j := 0; j < 64; j++ {
			r.Prompt = append(r.Prompt, core.Token{ID: int32(100*i + j), Image: true})
		}
		for j := 0; j < 16; j++ {
			r.Prompt = append(r.Prompt, core.Token{ID: int32(j + 1)})
		}
		reqs[i] = r
	}
	workload.AllAtOnce(reqs)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 64, Vision: VisionFreeOnDemand}, reqs)
	if res.Finished != 3 {
		t.Fatalf("finished %d of 3 (failed %d)", res.Finished, res.Failed)
	}
	if res.EncoderRuns < 3 {
		t.Errorf("each request needs at least one encoder run, got %d", res.EncoderRuns)
	}
}

func newSeq(n int) *core.Sequence {
	s := &core.Sequence{ID: 1}
	for i := 0; i < n; i++ {
		s.Tokens = append(s.Tokens, core.Token{ID: int32(i + 1)})
	}
	return s
}

// TestGenTokenDeterministic: generated tokens depend only on (request,
// position), keeping prefix caching coherent across identical runs.
func TestGenTokenDeterministic(t *testing.T) {
	spec := miniWindowSpec()
	e1, err := New(Config{Spec: spec, Device: smallDevice(), Manager: jengaFor(t, spec, 8<<20, false)})
	if err != nil {
		t.Fatal(err)
	}
	r := &run{req: &workload.Request{ID: 42}, seq: newSeq(5)}
	a := e1.genToken(r)
	b := e1.genToken(r)
	if a != b {
		t.Error("genToken must be deterministic for a fixed position")
	}
	r.seq.Tokens = append(r.seq.Tokens, a)
	c := e1.genToken(r)
	if c == a {
		t.Error("next position should generally differ")
	}
}

// TestLatencyInvariants: TTFT ≤ E2E, and decode time ≈ TPOT·(out−1)
// accounts for the gap, per finished request aggregates.
func TestLatencyInvariants(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, false)
	reqs := textReqs(41, 10, 200, 25)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512}, reqs)
	if res.MeanTTFT > res.MeanE2E {
		t.Errorf("TTFT %v exceeds E2E %v", res.MeanTTFT, res.MeanE2E)
	}
	decode := res.MeanE2E - res.MeanTTFT
	approx := res.MeanTPOT * 24 // OutputLen-1
	ratio := float64(decode) / float64(approx)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("decode time %v vs TPOT×(out-1) %v: ratio %.2f", decode, approx, ratio)
	}
	if res.TokensPerSec <= 0 || res.ReqPerSec <= 0 {
		t.Error("throughputs must be positive")
	}
	// Duration is the max finish time.
	if res.Duration < res.MeanE2E {
		t.Error("run duration cannot undercut mean E2E for all-at-once arrivals")
	}
}

// TestBaselineThroughEngineDrains: the Paged baseline leaves no used
// memory behind after a full engine run with caching on.
func TestBaselineThroughEngineDrains(t *testing.T) {
	spec := miniWindowSpec()
	mgr := pagedFor(t, spec, 4<<20, true)
	reqs := textReqs(42, 12, 250, 20)
	res := runEngine(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr,
		MaxBatchTokens: 512}, reqs)
	if res.Finished != 12 {
		t.Fatalf("finished %d of 12", res.Finished)
	}
	u := mgr.Usage()
	if u.Used != 0 || u.Wasted != 0 {
		t.Errorf("baseline retained used/wasted memory: %+v", u)
	}
	if u.Used+u.Cached+u.Wasted+u.Free != mgr.Capacity() {
		t.Error("conservation violated")
	}
}

// TestEmptyRequestList: an empty run terminates immediately.
func TestEmptyRequestList(t *testing.T) {
	spec := miniWindowSpec()
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: jengaFor(t, spec, 1<<20, false)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 || res.Finished != 0 {
		t.Errorf("empty run produced work: %+v", res)
	}
}

// TestMaxStepsGuard: an unservable configuration aborts with an error
// instead of spinning forever.
func TestMaxStepsGuard(t *testing.T) {
	spec := miniWindowSpec()
	e, err := New(Config{Spec: spec, Device: smallDevice(),
		Manager: jengaFor(t, spec, 1<<20, false), MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Enough work to exceed 50 steps.
	reqs := textReqs(43, 20, 300, 50)
	if _, err := e.Run(reqs); err == nil {
		t.Error("expected a MaxSteps error")
	}
}
