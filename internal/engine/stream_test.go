package engine

import (
	"testing"
	"time"

	"jenga/internal/sched"
	"jenga/internal/workload"
)

// collectEvents runs reqs through an engine with a recording sink.
func collectEvents(t *testing.T, cfg Config, reqs []workload.Request) ([]Event, *Result) {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	e.SetEventSink(func(ev Event) { events = append(events, ev) })
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// TestEventLifecycleOrder checks the per-request event contract:
// queued, then first_token, then one token per decode, then exactly
// one terminal event, with monotone clocks.
func TestEventLifecycleOrder(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, false)
	reqs := textReqs(3, 6, 200, 12)
	events, res := collectEvents(t, Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 512}, reqs)
	if res.Finished != 6 {
		t.Fatalf("finished %d, want 6", res.Finished)
	}
	type lifecycle struct {
		queued, first, tokens, terminals int
		lastClock                        time.Duration
		lastGen                          int
	}
	per := map[int64]*lifecycle{}
	for _, ev := range events {
		lc := per[ev.ID]
		if lc == nil {
			lc = &lifecycle{}
			per[ev.ID] = lc
		}
		if ev.Clock < lc.lastClock {
			t.Fatalf("req %d: clock went backwards (%v after %v)", ev.ID, ev.Clock, lc.lastClock)
		}
		lc.lastClock = ev.Clock
		switch ev.Type {
		case EventQueued:
			lc.queued++
		case EventFirstToken:
			if lc.queued != 1 {
				t.Fatalf("req %d: first token before queued", ev.ID)
			}
			lc.first++
			if ev.Generated != 1 {
				t.Fatalf("req %d: first token Generated=%d, want 1", ev.ID, ev.Generated)
			}
			lc.lastGen = ev.Generated
		case EventToken:
			if ev.Generated != lc.lastGen+1 {
				t.Fatalf("req %d: token Generated=%d after %d", ev.ID, ev.Generated, lc.lastGen)
			}
			lc.lastGen = ev.Generated
			lc.tokens++
		case EventFinished, EventFailed, EventShed, EventCancelled:
			lc.terminals++
		}
		if lc.terminals > 1 {
			t.Fatalf("req %d: multiple terminal events", ev.ID)
		}
	}
	if len(per) != 6 {
		t.Fatalf("events for %d requests, want 6", len(per))
	}
	for id, lc := range per {
		if lc.queued != 1 || lc.first != 1 || lc.terminals != 1 {
			t.Errorf("req %d: queued=%d first=%d terminals=%d, want 1/1/1", id, lc.queued, lc.first, lc.terminals)
		}
		// OutputLen 12: first token plus 11 decode tokens.
		if lc.lastGen != 12 {
			t.Errorf("req %d: generated %d tokens, want 12", id, lc.lastGen)
		}
	}
}

// cancelMidGeneration submits one request, steps until it has
// generated at least minTokens, cancels it, and returns the engine.
func cancelMidGeneration(t *testing.T, e *Engine, req workload.Request, minTokens int) {
	t.Helper()
	e.Reset()
	if err := e.Submit(&req); err != nil {
		t.Fatal(err)
	}
	tokens := 0
	e.SetEventSink(func(ev Event) {
		if ev.ID == req.ID && ev.Type == EventToken {
			tokens = ev.Generated
		}
	})
	for e.Live() && tokens < minTokens {
		if err := e.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if tokens < minTokens {
		t.Fatalf("request never reached mid-generation (tokens %d)", tokens)
	}
	if !e.Cancel(req.ID) {
		t.Fatal("Cancel(live request) returned false")
	}
	if e.Cancel(req.ID) {
		t.Fatal("Cancel(already cancelled) returned true")
	}
	e.SetEventSink(nil)
	if res := e.ResultSnapshot(); res.Cancelled != 1 {
		t.Fatalf("cancelled %d, want 1", res.Cancelled)
	}
}

// TestCancelReleasesMemory is the mid-generation cancellation
// contract, cache-disabled variant: with no prefix cache to park
// committed pages in, cancelling must return Usage exactly to its
// pre-submit snapshot.
func TestCancelReleasesMemory(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, false)
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 256})
	if err != nil {
		t.Fatal(err)
	}
	pre := mgr.Usage()
	cancelMidGeneration(t, e, textReqs(9, 1, 600, 64)[0], 8)
	u := mgr.Usage()
	if u.Used != pre.Used || u.Wasted != pre.Wasted || u.Cached != pre.Cached || u.Free != pre.Free {
		t.Errorf("cancelled stream leaked KV: pre %+v post %+v", pre, u)
	}
}

// TestCancelKeepsPrefixCacheIntact is the cache-enabled variant: a
// cancelled stream's used memory returns to the pre-submit level (its
// committed pages move to the evictable cache, exactly as on normal
// completion), the accounting conserves, and the cache it leaves
// behind is valid — the identical prompt reruns to completion served
// from cache.
func TestCancelKeepsPrefixCacheIntact(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, true)
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 256})
	if err != nil {
		t.Fatal(err)
	}
	pre := mgr.Usage()
	req := textReqs(9, 1, 600, 64)[0]
	cancelMidGeneration(t, e, req, 8)
	u := mgr.Usage()
	if u.Used != pre.Used {
		t.Errorf("cancelled stream still holds live KV: pre %+v post %+v", pre, u)
	}
	if u.Free+u.Cached+u.Used+u.Wasted != mgr.Capacity() {
		t.Errorf("accounting broken after cancel: %+v vs capacity %d", u, mgr.Capacity())
	}
	// Prefix cache intact: the cancelled prompt reruns to completion
	// and is served from the cache the cancelled stream left behind.
	rerun := []workload.Request{req}
	rerun[0].Arrival = 0
	res2, err := e.Run(rerun)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Finished != 1 {
		t.Fatalf("rerun after cancel: finished %d, want 1", res2.Finished)
	}
	if res2.CachedPromptTokens == 0 {
		t.Error("rerun after cancel hit no cache: cancellation corrupted the prefix cache")
	}
	if fin := mgr.Usage(); fin.Used != pre.Used {
		t.Errorf("rerun left live KV behind: %+v", fin)
	}
}

// TestCancelPendingAndWaiting cancels requests that never started.
func TestCancelPendingAndWaiting(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, false)
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr})
	if err != nil {
		t.Fatal(err)
	}
	reqs := textReqs(11, 3, 200, 8)
	reqs[2].Arrival = time.Hour // stays pending
	e.Reset()
	for i := range reqs {
		if err := e.Submit(&reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Cancel(reqs[2].ID) {
		t.Fatal("cancel pending failed")
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	res := e.ResultSnapshot()
	if res.Cancelled != 1 || res.Finished != 2 {
		t.Fatalf("cancelled %d finished %d, want 1/2", res.Cancelled, res.Finished)
	}
	if u := mgr.Usage(); u.Used != 0 || u.Wasted != 0 {
		t.Errorf("memory leak after cancel: %+v", u)
	}
}

// TestKVAdmissionShedsImpossible: a request larger than capacity is
// shed at arrival instead of failing after an idle-engine stall.
func TestKVAdmissionSheds(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 1<<20, false)
	reqs := textReqs(5, 3, 128, 8)
	huge := workload.Request{ID: 999, Prompt: goldenWorkload()[0].Prompt, OutputLen: 4}
	for len(huge.Prompt) < 40_000 {
		huge.Prompt = append(huge.Prompt, huge.Prompt...)
	}
	reqs = append(reqs, huge)
	events, res := collectEvents(t,
		Config{Spec: spec, Device: smallDevice(), Manager: mgr, Admission: KVAdmission{}}, reqs)
	if res.Shed != 1 || res.Finished != 3 || res.Failed != 0 {
		t.Fatalf("shed/finished/failed = %d/%d/%d, want 1/3/0", res.Shed, res.Finished, res.Failed)
	}
	sawShed := false
	for _, ev := range events {
		if ev.Type == EventShed {
			if ev.ID != 999 {
				t.Fatalf("shed wrong request %d", ev.ID)
			}
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatal("no EventShed emitted")
	}
}

// TestSLOAdmissionShedsUnderBacklog: with a deep backlog and a tight
// TTFT target, late arrivals are shed; with a loose target everything
// is admitted.
func TestSLOAdmissionShedsUnderBacklog(t *testing.T) {
	spec := miniWindowSpec()
	run := func(target time.Duration) *Result {
		mgr := jengaFor(t, spec, 32<<20, false)
		reqs := textReqs(13, 40, 2000, 4)
		e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr,
			MaxBatchTokens: 256, Admission: SLOAdmission{TTFT: target}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tight := run(10 * time.Millisecond)
	loose := run(time.Hour)
	if loose.Shed != 0 || loose.Finished != 40 {
		t.Fatalf("loose target shed %d finished %d, want 0/40", loose.Shed, loose.Finished)
	}
	if tight.Shed == 0 {
		t.Fatal("tight target shed nothing under a 40-deep all-at-once backlog")
	}
	if tight.Shed+tight.Finished+tight.Failed != 40 {
		t.Fatalf("request accounting broken: %d+%d+%d != 40", tight.Shed, tight.Finished, tight.Failed)
	}
}

// TestPriorityShapesService: with two priority classes arriving
// together under a constrained engine, the high-priority class must
// finish no later on average than the low-priority class.
func TestPriorityShapesService(t *testing.T) {
	spec := miniWindowSpec()
	mgr := jengaFor(t, spec, 8<<20, false)
	reqs := textReqs(17, 16, 400, 16)
	for i := range reqs {
		if i%2 == 0 {
			reqs[i].Priority = 5
		}
	}
	e, err := New(Config{Spec: spec, Device: smallDevice(), Manager: mgr, MaxBatchTokens: 256, MaxPrefills: 1,
		Scheduler: sched.NewPriority()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 16 {
		t.Fatalf("finished %d, want 16", res.Finished)
	}
	var hi, lo time.Duration
	var nHi, nLo int
	prio := map[int64]int{}
	for i := range reqs {
		prio[reqs[i].ID] = reqs[i].Priority
	}
	for _, rm := range res.PerRequest {
		if prio[rm.ID] > 0 {
			hi += rm.TTFT
			nHi++
		} else {
			lo += rm.TTFT
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 {
		t.Fatal("both classes must finish")
	}
	if hi/time.Duration(nHi) > lo/time.Duration(nLo) {
		t.Errorf("high-priority mean TTFT %v above low-priority %v", hi/time.Duration(nHi), lo/time.Duration(nLo))
	}
}

// TestParseAdmission covers the flag spellings.
func TestParseAdmission(t *testing.T) {
	if p, err := ParseAdmission("none", 0); err != nil || p != nil {
		t.Fatalf("none: %v %v", p, err)
	}
	p, err := ParseAdmission("kv+slo", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "kv+slo" {
		t.Fatalf("chain name %q", p.Name())
	}
	if _, err := ParseAdmission("bogus", 0); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
