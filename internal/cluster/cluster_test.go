package cluster

import (
	"testing"

	"jenga/internal/model"
	"jenga/internal/workload"
)

// testSpec is a small full-attention model: 2 KiB of KV per token, so
// per-replica cache pressure is easy to dial in with CapacityBytes.
func testSpec() *model.Spec {
	return &model.Spec{
		Name: "cluster-test", Params: 100_000_000, WeightBytes: 2, HiddenSize: 512,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 4, BytesPerToken: 512},
		},
	}
}

func testCluster(t *testing.T, replicas int, policy RouterPolicy, capacity int64) *Cluster {
	t.Helper()
	c, err := New(Config{
		Spec:          testSpec(),
		Replicas:      replicas,
		Policy:        policy,
		CapacityBytes: capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sharedPrefixStream is the routing-sensitive workload: 15 prefix
// classes (deliberately not a multiple of the replica counts used in
// tests, so round-robin cannot accidentally align classes to replicas)
// whose combined prefix KV exceeds any single replica's cache.
func sharedPrefixStream(seed int64) []workload.Request {
	gen := workload.NewGen(seed)
	reqs := gen.PrefixGroups(15, 12, 512, 48)
	workload.AllAtOnce(reqs)
	return reqs
}

// perReplicaCapacity holds ~5 of the 15 × 512-token prefixes (at 2 KiB
// per token), so a replica that sees every class must keep evicting.
const perReplicaCapacity = 6 << 20

func TestServeInvariants(t *testing.T) {
	c := testCluster(t, 4, RoundRobin, perReplicaCapacity)
	reqs := sharedPrefixStream(21)
	res, err := c.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished+res.Failed != len(reqs) {
		t.Fatalf("finished %d + failed %d != %d requests", res.Finished, res.Failed, len(reqs))
	}
	if len(res.PerReplica) != 4 {
		t.Fatalf("PerReplica has %d entries, want 4", len(res.PerReplica))
	}
	total := 0
	for _, pr := range res.PerReplica {
		total += pr.Requests
		if pr.Result == nil {
			t.Fatalf("replica %d has no result", pr.Replica)
		}
	}
	if total != len(reqs) {
		t.Fatalf("routed %d requests, want %d", total, len(reqs))
	}
	if res.Duration <= 0 || res.ReqPerSec <= 0 {
		t.Fatalf("degenerate aggregate: duration %v, req/s %f", res.Duration, res.ReqPerSec)
	}
	if res.Imbalance < 1 {
		t.Fatalf("imbalance %.3f below 1", res.Imbalance)
	}
}

// TestRouteThenServeAgree checks that inspecting placement with Route
// does not perturb a following Serve: stateful built-in routers reset
// per pass, so both calls see the identical assignment.
func TestRouteThenServeAgree(t *testing.T) {
	c := testCluster(t, 4, RoundRobin, perReplicaCapacity)
	reqs := sharedPrefixStream(55)
	inspected := c.Route(reqs)
	res, err := c.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.PerReplica {
		if pr.Requests != len(inspected[i]) {
			t.Fatalf("replica %d: Route saw %d requests, Serve routed %d",
				i, len(inspected[i]), pr.Requests)
		}
	}
}

// TestServeDeterministic checks that two identically configured
// clusters produce identical placements and aggregates even though
// replicas run on concurrent goroutines.
func TestServeDeterministic(t *testing.T) {
	a := testCluster(t, 4, PrefixAffinity, perReplicaCapacity)
	b := testCluster(t, 4, PrefixAffinity, perReplicaCapacity)
	reqs := sharedPrefixStream(33)
	ra, err := a.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Finished != rb.Finished || ra.Duration != rb.Duration || ra.HitRate != rb.HitRate {
		t.Fatalf("nondeterministic serve: %+v vs %+v", ra, rb)
	}
	for i := range ra.PerReplica {
		if ra.PerReplica[i].Requests != rb.PerReplica[i].Requests ||
			ra.PerReplica[i].RoutedTokens != rb.PerReplica[i].RoutedTokens {
			t.Fatalf("replica %d placement differs", i)
		}
	}
}

// TestServeConcurrentReplicas runs a wide fleet so `go test -race`
// exercises the replica goroutines against each other and against
// aggregation.
func TestServeConcurrentReplicas(t *testing.T) {
	c := testCluster(t, 8, LeastLoaded, perReplicaCapacity)
	gen := workload.NewGen(5)
	reqs := gen.PrefixGroups(15, 8, 256, 32)
	gen.PoissonArrivals(reqs, 500)
	res, err := c.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished+res.Failed != len(reqs) {
		t.Fatalf("finished %d + failed %d != %d", res.Finished, res.Failed, len(reqs))
	}
}

// TestWarmCacheAcrossServes checks that a second Serve on the same
// cluster reuses the replica caches left by the first (the engine Run
// reset keeps manager state).
func TestWarmCacheAcrossServes(t *testing.T) {
	c := testCluster(t, 4, PrefixAffinity, 64<<20)
	reqs := sharedPrefixStream(44)
	cold, err := c.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.HitRate <= cold.HitRate {
		t.Fatalf("warm hit rate %.3f not above cold %.3f", warm.HitRate, cold.HitRate)
	}
}

// TestAffinityBeatsRoundRobin is the tentpole acceptance check: on a
// shared-prefix workload over ≥4 replicas whose caches cannot each
// hold every prefix class, prefix-affinity routing must achieve a
// strictly higher fleet-wide prefix-cache hit rate than round-robin.
func TestAffinityBeatsRoundRobin(t *testing.T) {
	reqs := sharedPrefixStream(99)

	rr := testCluster(t, 4, RoundRobin, perReplicaCapacity)
	rrRes, err := rr.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	af := testCluster(t, 4, PrefixAffinity, perReplicaCapacity)
	afRes, err := af.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("round-robin hit rate %.3f (req/s %.1f), affinity hit rate %.3f (req/s %.1f)",
		rrRes.HitRate, rrRes.ReqPerSec, afRes.HitRate, afRes.ReqPerSec)
	if afRes.HitRate <= rrRes.HitRate {
		t.Fatalf("prefix-affinity hit rate %.3f not strictly above round-robin %.3f",
			afRes.HitRate, rrRes.HitRate)
	}
}
