package cluster

import (
	"fmt"
	"sort"

	"jenga/internal/core"
	"jenga/internal/workload"
)

// RouterPolicy selects one of the built-in routing policies.
type RouterPolicy int

const (
	// RoundRobin cycles through replicas in order — the baseline load
	// balancer, oblivious to both load and prefix sharing.
	RoundRobin RouterPolicy = iota
	// LeastLoaded sends each request to the replica with the fewest
	// estimated outstanding tokens (queued prompt + pending output),
	// drained at the replica's nominal serving rate between arrivals.
	LeastLoaded
	// PrefixAffinity consistent-hashes the request's prompt-prefix hash
	// onto a replica ring, so requests sharing a prefix land on the
	// same replica and hit its prefix cache — the PagedAttention
	// sharing insight lifted to the cluster level.
	PrefixAffinity
)

// String implements fmt.Stringer (also the -router flag spelling).
func (p RouterPolicy) String() string {
	switch p {
	case RoundRobin:
		return "roundrobin"
	case LeastLoaded:
		return "leastloaded"
	case PrefixAffinity:
		return "affinity"
	default:
		return fmt.Sprintf("RouterPolicy(%d)", int(p))
	}
}

// ParsePolicy converts a -router flag spelling to a RouterPolicy.
func ParsePolicy(s string) (RouterPolicy, error) {
	switch s {
	case "roundrobin", "rr":
		return RoundRobin, nil
	case "leastloaded", "ll":
		return LeastLoaded, nil
	case "affinity", "prefix", "prefix-affinity":
		return PrefixAffinity, nil
	default:
		return 0, fmt.Errorf("cluster: unknown router policy %q (want roundrobin, leastloaded or affinity)", s)
	}
}

// Load is the router-visible state of one replica at routing time. The
// cluster maintains it: RoutedTokens grows with every assignment and
// Outstanding additionally drains at the replica's nominal serving
// rate as simulated arrival time advances. In online serving
// (Cluster.ServeOnline) the Live fields additionally carry the
// replica's actual scheduler state at the arrival instant, so routers
// decide on measured usage and queue depth instead of estimates.
type Load struct {
	// Replica is the replica index.
	Replica int
	// Requests is the number of requests routed so far.
	Requests int
	// RoutedTokens is the total work routed so far (prompt plus target
	// output tokens).
	RoutedTokens int64
	// Outstanding estimates tokens routed but not yet served.
	Outstanding float64
	// Live reports whether the fields below hold the replica's real
	// scheduler state (online serving) rather than zero values (the
	// precomputed batch routing pass).
	Live bool
	// Usage is the replica's live KV memory accounting.
	Usage core.Usage
	// QueueDepth is the replica's live count of admitted-but-unstarted
	// requests.
	QueueDepth int
	// OutstandingTokens is the replica's live admitted-but-unserved
	// work: remaining prompt plus remaining output tokens.
	OutstandingTokens int64
	// Health is the replica's live health under a chaos plan (online
	// serving; always Healthy without one). Routers may read it to
	// avoid sick replicas; the cluster itself falls requests over when
	// a router picks a dead or sick one.
	Health Health
}

// Router decides which replica serves each request. Route is called
// once per request in arrival order with the current per-replica loads
// and must return an index in [0, len(loads)). Implementations may
// keep state; the cluster serializes calls.
type Router interface {
	// Name identifies the policy in results and output tables.
	Name() string
	// Route picks the replica for req.
	Route(req *workload.Request, loads []Load) int
}

// NewRouter builds a built-in router. PrefixTokens is the prompt
// prefix length hashed by PrefixAffinity (default 256 — long enough to
// separate few-shot templates, short enough to ignore unique question
// tails); vnodes is the number of ring points per replica (default 64).
func NewRouter(p RouterPolicy, replicas, prefixTokens, vnodes int) (Router, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 replica, got %d", replicas)
	}
	switch p {
	case RoundRobin:
		return &roundRobinRouter{}, nil
	case LeastLoaded:
		return &leastLoadedRouter{}, nil
	case PrefixAffinity:
		if prefixTokens <= 0 {
			prefixTokens = 256
		}
		if vnodes <= 0 {
			vnodes = 64
		}
		return newAffinityRouter(replicas, prefixTokens, vnodes), nil
	default:
		return nil, fmt.Errorf("cluster: unknown router policy %d", int(p))
	}
}

// resettable is implemented by stateful built-in routers so every
// Route pass over a stream starts from the same state — placement is
// then a pure function of the stream, and inspecting placement with
// Cluster.Route before Serve sees exactly what Serve will do.
type resettable interface{ reset() }

// roundRobinRouter cycles through replicas.
type roundRobinRouter struct{ next int }

func (r *roundRobinRouter) Name() string { return RoundRobin.String() }

func (r *roundRobinRouter) reset() { r.next = 0 }

//jenga:hotpath
func (r *roundRobinRouter) Route(_ *workload.Request, loads []Load) int {
	i := r.next % len(loads)
	r.next++
	return i
}

// leastLoadedRouter picks the replica with the fewest outstanding
// tokens — the live measured backlog when the cluster provides it
// (online serving), the drained estimate otherwise — breaking ties
// toward less total routed work and then the lower index
// (deterministic).
type leastLoadedRouter struct{}

func (r *leastLoadedRouter) Name() string { return LeastLoaded.String() }

// backlog is the ranking signal: live outstanding work when available.
func (r *leastLoadedRouter) backlog(l Load) float64 {
	if l.Live {
		return float64(l.OutstandingTokens)
	}
	return l.Outstanding
}

//jenga:hotpath
func (r *leastLoadedRouter) Route(_ *workload.Request, loads []Load) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		switch {
		case r.backlog(loads[i]) < r.backlog(loads[best]):
			best = i
		case r.backlog(loads[i]) == r.backlog(loads[best]) &&
			loads[i].RoutedTokens < loads[best].RoutedTokens:
			best = i
		}
	}
	return best
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash    uint64
	replica int
}

// affinityRouter consistent-hashes prompt prefixes onto a replica
// ring. Virtual nodes smooth the per-replica arc lengths, and
// consistent hashing (rather than hash mod N) keeps most prefix
// classes pinned to the same replica when the fleet is resized.
type affinityRouter struct {
	prefixTokens int
	ring         []ringPoint
}

func newAffinityRouter(replicas, prefixTokens, vnodes int) *affinityRouter {
	r := &affinityRouter{prefixTokens: prefixTokens}
	r.ring = make([]ringPoint, 0, replicas*vnodes)
	for rep := 0; rep < replicas; rep++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(uint64(rep)*0x1000193 + uint64(v) + 0xA11F1A57)
			r.ring = append(r.ring, ringPoint{hash: h, replica: rep})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool {
		if r.ring[i].hash != r.ring[j].hash {
			return r.ring[i].hash < r.ring[j].hash
		}
		return r.ring[i].replica < r.ring[j].replica
	})
	return r
}

func (r *affinityRouter) Name() string { return PrefixAffinity.String() }

func (r *affinityRouter) Route(req *workload.Request, loads []Load) int {
	h := core.PrefixHash(req.Prompt, r.prefixTokens)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0 // wrap around the ring
	}
	rep := r.ring[i].replica
	if rep >= len(loads) {
		// Ring built for more replicas than the cluster has; fold.
		rep %= len(loads)
	}
	return rep
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed hash
// for ring-point placement.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
