package cluster

import (
	"fmt"
	"time"

	"jenga/internal/chaos"
	"jenga/internal/core"
	"jenga/internal/engine"
)

// ChaosPolicy attaches a deterministic fault-injection plan to the
// cluster (see internal/chaos). The zero value disables everything —
// a cluster without a plan is bit-identical to one built before chaos
// existed.
//
// Degrade and straggler windows slow the affected replica's simulated
// steps in both serving paths; crash/restart point events and transfer
// faults apply during ServeOnline, where there is an arrival loop to
// order them against.
type ChaosPolicy struct {
	// Plan is the seeded fault schedule. Nil: no faults.
	Plan *chaos.Plan
	// Recover enables the recovery machinery: crashed replicas'
	// directory entries are invalidated, their in-flight requests are
	// re-dispatched to survivors (recompute from prompt), and peer
	// transfers retry within FetchAttempts before falling back to
	// local recompute. Without it the cluster takes the faults raw:
	// crashed requests are lost, dangling directory entries linger
	// until tier churn clears them, and every transfer gets exactly
	// one attempt.
	Recover bool
	// FetchAttempts bounds the per-batch peer-transfer retry loop when
	// Recover is set (0 → 3). Ignored without Recover: one attempt.
	FetchAttempts int
}

// defaultFetchAttempts is the recovery-mode transfer retry bound.
const defaultFetchAttempts = 3

// enabled reports whether a plan is attached.
func (p ChaosPolicy) enabled() bool { return p.Plan != nil }

// attempts resolves the transfer attempt bound for this policy.
func (p ChaosPolicy) attempts() int {
	if !p.Recover {
		return 1
	}
	if p.FetchAttempts > 0 {
		return p.FetchAttempts
	}
	return defaultFetchAttempts
}

// Health is a replica's liveness as the router sees it.
type Health uint8

const (
	// Healthy: serving normally.
	Healthy Health = iota
	// Sick: alive but inside a degraded or straggler window — routing
	// prefers healthy replicas and falls over when a router picks it.
	Sick
	// Dead: crashed and not yet restarted — never routed to.
	Dead
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Sick:
		return "sick"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// replicaFaults adapts one replica's view of the chaos plan onto the
// engine's per-step fault hook: every step reads the plan's degrade
// and straggler windows at the current simulated clock.
type replicaFaults struct {
	plan    *chaos.Plan
	replica int
}

func (f *replicaFaults) StepFault(clock time.Duration) engine.StepFault {
	pcie, link, slow := f.plan.Window(f.replica, clock)
	return engine.StepFault{PCIe: pcie, Link: link, Slow: slow}
}

// chaosStats accumulates what the fault machinery did during one
// ServeOnline pass.
type chaosStats struct {
	crashes, restarts int
	redispatched      int
	lost              int
	dirInvalidations  int
	rollbacks         int
}

// onlineState is the per-pass fleet state ServeOnline threads through
// the routing and fleet helpers: which replicas are drained for
// scale-down, each replica's chaos health, and the live fault cursor.
type onlineState struct {
	drained []bool
	health  []Health
	// cur walks the chaos plan's point events and failure streams (nil
	// without a plan — every fault check short-circuits off).
	cur     *chaos.Cursor
	recover bool
	stats   chaosStats
}

func newOnlineState(n int, pol ChaosPolicy) *onlineState {
	st := &onlineState{
		drained: make([]bool, n),
		health:  make([]Health, n),
		recover: pol.Recover,
	}
	if pol.Plan != nil {
		st.cur = pol.Plan.Start()
	}
	return st
}

// applyChaos applies every pending point event with At ≤ upTo, in
// order: all replicas advance to the event instant first, so a crash
// takes exactly the progress made before it and nothing after.
func (c *Cluster) applyChaos(st *onlineState, upTo time.Duration) error {
	if st.cur == nil {
		return nil
	}
	for {
		ev, ok := st.cur.Peek()
		if !ok || ev.At > upTo {
			return nil
		}
		for j, e := range c.engines {
			if err := e.AdvanceTo(ev.At); err != nil {
				return fmt.Errorf("cluster: replica %d: %w", j, err)
			}
		}
		switch ev.Kind {
		case chaos.KindCrash:
			c.crashReplica(st, ev.Replica)
		case chaos.KindRestart:
			c.restartReplica(st, ev.Replica)
		}
		st.cur.Pop()
	}
}

// crashReplica kills one replica at the current instant: every
// in-flight request's KV and queue state is lost and its manager
// restarts cold. With recovery on, the fleet reacts — the directory
// drops the dead holder's entries and the lost requests re-dispatch to
// the coolest survivors, recomputing from their prompts. Without it
// the requests die with the replica.
func (c *Cluster) crashReplica(st *onlineState, rep int) {
	if rep < 0 || rep >= len(c.engines) || st.health[rep] == Dead {
		return
	}
	st.health[rep] = Dead
	st.stats.crashes++
	lost := c.engines[rep].CrashOut()
	if cr, ok := c.managers[rep].(core.Crasher); ok {
		// The tier dies with the process: CrashReset swaps in a cold
		// manager behind the same pointer the engine and store hold.
		_ = cr.CrashReset()
	}
	if !st.recover {
		st.stats.lost += len(lost)
		return
	}
	if c.store != nil {
		st.stats.dirInvalidations += c.store.Crash(rep)
	}
	for _, m := range lost {
		dst := c.coolestReplica(st, rep)
		if dst < 0 {
			st.stats.lost++
			continue
		}
		c.engines[dst].MigrateIn(m)
		st.stats.redispatched++
	}
}

// restartReplica brings a crashed replica back with a cold tier. Its
// manager was already reset at crash time; new content re-registers in
// the directory through the still-attached observer as it is spilled.
func (c *Cluster) restartReplica(st *onlineState, rep int) {
	if rep < 0 || rep >= len(c.engines) || st.health[rep] != Dead {
		return
	}
	st.health[rep] = Healthy
	st.stats.restarts++
}

// refreshHealth re-derives each live replica's Sick/Healthy state from
// the plan's windows at the given instant (Dead is sticky until a
// restart event clears it).
func (st *onlineState) refreshHealth(plan *chaos.Plan, at time.Duration) {
	if plan == nil {
		return
	}
	for j := range st.health {
		if st.health[j] == Dead {
			continue
		}
		pcie, link, slow := plan.Window(j, at)
		if pcie != 1 || link != 1 || slow != 1 {
			st.health[j] = Sick
		} else {
			st.health[j] = Healthy
		}
	}
}
