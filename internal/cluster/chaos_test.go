package cluster

import (
	"testing"
	"time"

	"jenga/internal/chaos"
	"jenga/internal/engine"
)

// chaosCluster builds a store+migration fleet with the given chaos
// policy (ledger may be nil).
func chaosCluster(t *testing.T, replicas int, pol ChaosPolicy, ledger *eventLedger) *Cluster {
	t.Helper()
	cfg := Config{
		Spec: testSpec(), Replicas: replicas, Policy: LeastLoaded,
		CapacityBytes: perReplicaCapacity,
		HostTierBytes: 64 << 20,
		PreemptMode:   engine.PreemptSwap,
		Fleet:         FleetPolicy{Store: true, Migrate: true},
		Chaos:         pol,
	}
	if ledger != nil {
		cfg.EventSink = ledger.sink
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// crashPlan schedules one mid-burst crash of the given replica, with
// an optional restart.
func crashPlan(replica int, restart bool) *chaos.Plan {
	p := chaos.NewPlan(1).Crash(replica, 200*time.Millisecond)
	if restart {
		p.Restart(replica, 400*time.Millisecond)
	}
	return p
}

// TestChaosCrashRecoveryInvariants is the crash-schedule extension of
// the drain exactly-once contract: a replica crashes mid-burst with
// recovery on, its in-flight requests re-dispatch to survivors, and
// every request in the stream still reaches exactly one terminal
// event. The dead holder leaves no dangling directory entries.
func TestChaosCrashRecoveryInvariants(t *testing.T) {
	ledger := newEventLedger()
	c := chaosCluster(t, 3, ChaosPolicy{Plan: crashPlan(1, false), Recover: true}, ledger)
	reqs := onlineWorkload(41, 0)
	res, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || res.Restarts != 0 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/0", res.Crashes, res.Restarts)
	}
	if res.Redispatched == 0 {
		t.Fatal("crash at 200ms into a 300 req/s burst redispatched nothing")
	}
	if res.LostRequests != 0 {
		t.Fatalf("recovery lost %d requests with survivors available", res.LostRequests)
	}
	if res.Finished+res.Failed+res.Shed != len(reqs) {
		t.Fatalf("accounting broken: %d+%d+%d != %d",
			res.Finished, res.Failed, res.Shed, len(reqs))
	}
	ledger.checkTerminalOnce(t, reqs)
	// Crash recovery dropped the dead holder's directory entries and
	// nothing re-registered them: the replica never came back.
	if n := c.store.Directory().HolderLen(1); n != 0 {
		t.Fatalf("crashed holder still owns %d directory entries", n)
	}
	// The crashed replica's share of routed requests froze at the crash
	// instant while survivors kept absorbing the stream.
	if res.PerReplica[1].Requests >= res.PerReplica[0].Requests {
		t.Fatalf("dead replica kept taking work: %d vs survivor %d",
			res.PerReplica[1].Requests, res.PerReplica[0].Requests)
	}
}

// TestChaosNoRecoveryLosesRequests: the same crash without recovery
// loses the in-flight requests outright — they never reach a terminal
// event — and the rest of the stream still accounts exactly.
func TestChaosNoRecoveryLosesRequests(t *testing.T) {
	ledger := newEventLedger()
	c := chaosCluster(t, 3, ChaosPolicy{Plan: crashPlan(1, false), Recover: false}, ledger)
	reqs := onlineWorkload(41, 0)
	res, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostRequests == 0 {
		t.Fatal("crash without recovery lost nothing")
	}
	if res.Redispatched != 0 || res.DirInvalidations != 0 {
		t.Fatalf("recovery machinery ran while off: redispatched %d, invalidations %d",
			res.Redispatched, res.DirInvalidations)
	}
	if got := res.Finished + res.Failed + res.Shed + res.LostRequests; got != len(reqs) {
		t.Fatalf("accounting broken: %d terminals + %d lost != %d",
			got-res.LostRequests, res.LostRequests, len(reqs))
	}
	ledger.mu.Lock()
	terminated := len(ledger.terminals)
	for id, n := range ledger.terminals {
		if n != 1 {
			t.Fatalf("request %d saw %d terminal events", id, n)
		}
	}
	ledger.mu.Unlock()
	if terminated != len(reqs)-res.LostRequests {
		t.Fatalf("%d requests terminated, want %d (%d lost)",
			terminated, len(reqs)-res.LostRequests, res.LostRequests)
	}
}

// TestChaosRestartRejoins: a crashed replica that restarts re-enters
// the routing pool with a cold tier and takes new work again.
func TestChaosRestartRejoins(t *testing.T) {
	c := chaosCluster(t, 3, ChaosPolicy{Plan: crashPlan(1, true), Recover: true}, nil)
	reqs := onlineWorkload(41, 0)
	res, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || res.Restarts != 1 {
		t.Fatalf("crashes/restarts = %d/%d, want 1/1", res.Crashes, res.Restarts)
	}
	if res.LostRequests != 0 {
		t.Fatalf("lost %d requests with recovery on", res.LostRequests)
	}
	if res.Finished+res.Failed+res.Shed != len(reqs) {
		t.Fatalf("accounting broken: %d+%d+%d != %d",
			res.Finished, res.Failed, res.Shed, len(reqs))
	}
	// The stream runs well past the 400ms restart; the rejoined replica
	// must have been routed more work than it held at the crash.
	rejoined := res.PerReplica[1].Requests
	if rejoined == 0 {
		t.Fatal("restarted replica never took work again")
	}
}

// TestChaosRecoveryBeatsNone is the headline robustness claim at test
// scale: same workload, same crash schedule — recovery on finishes
// every request; recovery off loses the crashed replica's in-flight
// work.
func TestChaosRecoveryBeatsNone(t *testing.T) {
	reqs := onlineWorkload(41, 0)
	run := func(recover bool) *Result {
		c := chaosCluster(t, 3, ChaosPolicy{Plan: crashPlan(1, false), Recover: recover}, nil)
		res, err := c.ServeOnline(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	if with.Finished <= without.Finished {
		t.Fatalf("recovery finished %d, no-recovery %d — recovery did not pay",
			with.Finished, without.Finished)
	}
	if with.LostRequests >= without.LostRequests || without.LostRequests == 0 {
		t.Fatalf("lost: recovery %d vs none %d", with.LostRequests, without.LostRequests)
	}
}

// TestChaosDeterminism: the same seed and schedule reproduce the run
// bit-identically — crash recovery, transfer faults and all.
func TestChaosDeterminism(t *testing.T) {
	reqs := onlineWorkload(41, 0)
	run := func() *Result {
		plan := chaos.NewPlan(7).
			Crash(1, 200*time.Millisecond).
			Restart(1, 400*time.Millisecond).
			Degrade(0, 100*time.Millisecond, 300*time.Millisecond, 0.5, 0.5).
			Straggle(2, 150*time.Millisecond, 250*time.Millisecond, 1.5)
		plan.FetchFailRate = 0.3
		plan.MigrateFailRate = 0.3
		c := chaosCluster(t, 3, ChaosPolicy{Plan: plan, Recover: true}, nil)
		res, err := c.ServeOnline(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	type key struct {
		finished, failed, shed           int
		crashes, redisp, lost, rollbacks int
		retries, fails                   int64
		dur, p99                         time.Duration
		hit                              float64
		peerBytes                        int64
		restored, recomputed             int64
	}
	k := func(r *Result) key {
		return key{
			r.Finished, r.Failed, r.Shed,
			r.Crashes, r.Redispatched, r.LostRequests, r.MigrationRollbacks,
			r.FetchRetries, r.FetchFailures,
			r.Duration, r.P99TTFT,
			r.HitRate, r.PeerBytes,
			r.RestoredTokens, r.RecomputedTokens,
		}
	}
	if k(a) != k(b) {
		t.Fatalf("same seed diverged:\n  a: %+v\n  b: %+v", k(a), k(b))
	}
}

// TestChaosZeroPlanIsIdentical: attaching no plan must leave ServeOnline
// bit-identical to a chaos-free cluster — the zero-fault determinism
// contract.
func TestChaosZeroPlanIsIdentical(t *testing.T) {
	reqs := onlineWorkload(41, 0)
	run := func(pol ChaosPolicy) *Result {
		c := chaosCluster(t, 3, pol, nil)
		res, err := c.ServeOnline(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(ChaosPolicy{})
	recoverOn := run(ChaosPolicy{Recover: true}) // no plan: machinery never engages
	if plain.Duration != recoverOn.Duration || plain.Finished != recoverOn.Finished ||
		plain.P99TTFT != recoverOn.P99TTFT || plain.HitRate != recoverOn.HitRate ||
		plain.PeerBytes != recoverOn.PeerBytes {
		t.Fatalf("zero-fault runs diverged:\n  plain: %+v\n  chaos: %+v", plain, recoverOn)
	}
	if plain.Crashes != 0 || plain.LostRequests != 0 || plain.FetchRetries != 0 {
		t.Fatalf("chaos counters nonzero without a plan: %+v", plain)
	}
}

// TestChaosStragglerAvoidance: routing falls over from a replica inside
// a straggler window, so the sick replica's share of arrivals during
// the window shrinks versus the same stream without the plan.
func TestChaosStragglerAvoidance(t *testing.T) {
	reqs := onlineWorkload(43, 0)
	plan := chaos.NewPlan(3).Straggle(0, 0, time.Hour, 4)
	sickRes, err := chaosCluster(t, 3, ChaosPolicy{Plan: plan}, nil).ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	wellRes, err := chaosCluster(t, 3, ChaosPolicy{}, nil).ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if sickRes.PerReplica[0].Requests >= wellRes.PerReplica[0].Requests {
		t.Fatalf("straggling replica still took %d requests (healthy run: %d)",
			sickRes.PerReplica[0].Requests, wellRes.PerReplica[0].Requests)
	}
	if sickRes.Finished+sickRes.Failed+sickRes.Shed != len(reqs) {
		t.Fatalf("straggler run lost requests: %d+%d+%d != %d",
			sickRes.Finished, sickRes.Failed, sickRes.Shed, len(reqs))
	}
}
