package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"jenga/internal/engine"
	"jenga/internal/workload"
)

// ServeOnline drives the fleet as an online event-driven system in
// simulated time: every replica's streaming core is advanced to each
// request's arrival instant, the router then places the request
// against the replicas' *live* state — measured KV usage, queue depth
// and outstanding work, not the batch path's drained estimates — and
// the request is submitted to the chosen replica, where its admission
// policy may still shed it. After the last arrival the replicas drain
// concurrently.
//
// The whole drive is deterministic: arrivals are processed serially in
// time order, each replica's engine is deterministic, and the drain
// phase only runs already-placed work.
func (c *Cluster) ServeOnline(reqs []workload.Request) (*Result, error) {
	if r, ok := c.router.(resettable); ok {
		r.reset()
	}
	n := len(c.engines)
	loads := make([]Load, n)
	for i := range loads {
		loads[i].Replica = i
	}
	for _, e := range c.engines {
		e.Reset()
	}
	stream := append([]workload.Request(nil), reqs...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })

	// Fleet state for this pass: which replicas have been drained for
	// scale-down, and whether the drain already fired.
	drained := make([]bool, n)
	drainFired := false

	lastArrival := time.Duration(0)
	for i := range stream {
		r := &stream[i]
		// Advance every replica to the arrival instant so routing sees
		// the state an online router would.
		for j, e := range c.engines {
			if err := e.AdvanceTo(r.Arrival); err != nil {
				return nil, fmt.Errorf("cluster: replica %d: %w", j, err)
			}
		}
		// Keep the estimate-drained Outstanding for routers written
		// against the batch contract.
		if dt := (r.Arrival - lastArrival).Seconds(); dt > 0 && c.drainRate > 0 {
			for j := range loads {
				loads[j].Outstanding -= c.drainRate * dt
				if loads[j].Outstanding < 0 {
					loads[j].Outstanding = 0
				}
			}
		}
		lastArrival = r.Arrival
		for j, e := range c.engines {
			// Aggregate-only usage: routers read totals, and this runs
			// per replica per arrival.
			snap := e.SnapshotTotals()
			loads[j].Live = true
			loads[j].Usage = snap.Usage
			loads[j].QueueDepth = snap.Pending + snap.Waiting
			loads[j].OutstandingTokens = snap.OutstandingTokens
		}
		// Scale-down: at the first arrival past the drain deadline the
		// tail replicas evacuate — live requests migrate to survivors
		// (Fleet.Migrate) or shed — and stop receiving new work.
		if c.cfg.Fleet.DrainAfter > 0 && !drainFired && r.Arrival >= c.cfg.Fleet.DrainAfter {
			drainFired = true
			c.drainReplicas(drained)
		}
		rep := c.router.Route(r, loads)
		if rep < 0 || rep >= n {
			rep = 0 // defensive: a broken custom router must not panic the run
		}
		if drained[rep] {
			// The router's pick is out of service: fall over to the
			// coolest surviving replica (deterministic — serial loop,
			// lowest index on ties).
			if alt := c.coolestReplica(drained, -1); alt >= 0 {
				rep = alt
			}
		}
		// Fleet store: if peers hold prefix blocks this replica lacks,
		// move them into its host tier before the request is submitted
		// (the admission claim then restores them locally).
		c.fleetFetch(rep, r.ID, r.Prompt)
		if err := c.engines[rep].Submit(r); err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", rep, err)
		}
		work := int64(len(r.Prompt) + r.OutputLen)
		loads[rep].Requests++
		loads[rep].RoutedTokens += work
		loads[rep].Outstanding += float64(work)
		// Imbalance rebalancing: at most one migration per arrival,
		// hottest surviving replica to coolest.
		c.rebalance(drained)
	}

	// Drain concurrently: all requests are placed, replicas are
	// independent, so this cannot change the outcome.
	results := make([]*engine.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, e := range c.engines {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			if err := e.Drain(); err != nil {
				errs[i] = fmt.Errorf("cluster: replica %d: %w", i, err)
				return
			}
			results[i] = e.ResultSnapshot()
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return c.aggregate(loads, results, groupCounts(reqs)), nil
}
