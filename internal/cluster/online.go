//jenga:concurrent online fan-out: replica goroutines advance to each arrival; nothing is shared between them
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"jenga/internal/engine"
	"jenga/internal/fleet"
	"jenga/internal/workload"
)

// ServeOnline drives the fleet as an online event-driven system in
// simulated time: every replica's streaming core is advanced to each
// request's arrival instant, the router then places the request
// against the replicas' *live* state — measured KV usage, queue depth
// and outstanding work, not the batch path's drained estimates — and
// the request is submitted to the chosen replica, where its admission
// policy may still shed it. After the last arrival the replicas drain
// concurrently.
//
// When a chaos plan is attached (Config.Chaos), its point events are
// woven into the same serial loop: before each arrival every crash and
// restart with an earlier timestamp is applied at its exact instant —
// all replicas advance to the event time first — so the schedule is
// reproducible to the step. Degrade and straggler windows stretch the
// affected replica's steps through the engine's fault hook, routing
// falls over from dead and sick replicas, and with Chaos.Recover the
// crashed replicas' requests re-dispatch to survivors.
//
// The whole drive is deterministic: arrivals are processed serially in
// time order, each replica's engine is deterministic, the chaos plan
// is a pure function of its seed, and the drain phase only runs
// already-placed work.
func (c *Cluster) ServeOnline(reqs []workload.Request) (*Result, error) {
	if r, ok := c.router.(resettable); ok {
		r.reset()
	}
	n := len(c.engines)
	loads := make([]Load, n)
	for i := range loads {
		loads[i].Replica = i
	}
	for _, e := range c.engines {
		e.Reset()
	}
	stream := append([]workload.Request(nil), reqs...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })

	// Fleet state for this pass: scale-down drains, chaos health, and
	// the plan cursor. drainFired latches the one-shot scale-down.
	st := newOnlineState(n, c.cfg.Chaos)
	drainFired := false
	var storeBase fleet.StoreStats
	if c.store != nil {
		storeBase = c.store.Stats()
		if st.cur != nil {
			c.store.SetFaults(st.cur, c.cfg.Chaos.attempts())
			defer c.store.SetFaults(nil, 1)
		}
	}

	lastArrival := time.Duration(0)
	for i := range stream {
		r := &stream[i]
		// Apply any crash/restart scheduled before this arrival, then
		// advance every replica to the arrival instant so routing sees
		// the state an online router would.
		if err := c.applyChaos(st, r.Arrival); err != nil {
			return nil, err
		}
		for j, e := range c.engines {
			if err := e.AdvanceTo(r.Arrival); err != nil {
				return nil, fmt.Errorf("cluster: replica %d: %w", j, err)
			}
		}
		// Keep the estimate-drained Outstanding for routers written
		// against the batch contract.
		if dt := (r.Arrival - lastArrival).Seconds(); dt > 0 && c.drainRate > 0 {
			for j := range loads {
				loads[j].Outstanding -= c.drainRate * dt
				if loads[j].Outstanding < 0 {
					loads[j].Outstanding = 0
				}
			}
		}
		lastArrival = r.Arrival
		st.refreshHealth(c.cfg.Chaos.Plan, r.Arrival)
		for j, e := range c.engines {
			// Aggregate-only usage: routers read totals, and this runs
			// per replica per arrival.
			snap := e.SnapshotTotals()
			loads[j].Live = true
			loads[j].Usage = snap.Usage
			loads[j].QueueDepth = snap.Pending + snap.Waiting
			loads[j].OutstandingTokens = snap.OutstandingTokens
			loads[j].Health = st.health[j]
		}
		// Scale-down: at the first arrival past the drain deadline the
		// tail replicas evacuate — live requests migrate to survivors
		// (Fleet.Migrate) or shed — and stop receiving new work.
		if c.cfg.Fleet.DrainAfter > 0 && !drainFired && r.Arrival >= c.cfg.Fleet.DrainAfter {
			drainFired = true
			c.drainReplicas(st)
		}
		rep := c.router.Route(r, loads)
		if rep < 0 || rep >= n {
			rep = 0 // defensive: a broken custom router must not panic the run
		}
		if st.drained[rep] || st.health[rep] != Healthy {
			// The router's pick is out of service (drained, dead, or
			// inside a fault window): fall over to the coolest healthy
			// survivor (deterministic — serial loop, lowest index on
			// ties). With nowhere better to go the pick stands.
			if alt := c.coolestReplica(st, -1); alt >= 0 {
				rep = alt
			}
		}
		// Fleet store: if peers hold prefix blocks this replica lacks,
		// move them into its host tier before the request is submitted
		// (the admission claim then restores them locally).
		c.fleetFetch(rep, r.ID, r.Prompt)
		if err := c.engines[rep].Submit(r); err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", rep, err)
		}
		work := int64(len(r.Prompt) + r.OutputLen)
		loads[rep].Requests++
		loads[rep].RoutedTokens += work
		loads[rep].Outstanding += float64(work)
		// Imbalance rebalancing: at most one migration per arrival,
		// hottest surviving replica to coolest.
		c.rebalance(st)
	}

	// Apply every remaining chaos point event (crashes scheduled after
	// the last arrival) before the concurrent drain: the events mutate
	// shared fleet state and must stay inside the serial phase.
	if st.cur != nil {
		if err := c.applyChaos(st, 1<<62); err != nil {
			return nil, err
		}
	}

	// Drain concurrently: all requests are placed, replicas are
	// independent, so this cannot change the outcome.
	results := make([]*engine.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, e := range c.engines {
		wg.Add(1)
		go func(i int, e *engine.Engine) {
			defer wg.Done()
			if err := e.Drain(); err != nil {
				errs[i] = fmt.Errorf("cluster: replica %d: %w", i, err)
				return
			}
			results[i] = e.ResultSnapshot()
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := c.aggregate(loads, results, groupCounts(reqs))
	out.Crashes = st.stats.crashes
	out.Restarts = st.stats.restarts
	out.Redispatched = st.stats.redispatched
	out.LostRequests = st.stats.lost
	out.DirInvalidations = st.stats.dirInvalidations
	out.MigrationRollbacks = st.stats.rollbacks
	if c.store != nil {
		ss := c.store.Stats()
		out.FetchRetries = ss.Retries - storeBase.Retries
		out.FetchFailures = ss.Failed - storeBase.Failed
		out.FetchSkips = ss.Skipped - storeBase.Skipped
	}
	return out, nil
}
