package cluster

import (
	"testing"
	"time"

	"jenga/internal/engine"
	"jenga/internal/workload"
)

func onlineWorkload(seed int64, deadline time.Duration) []workload.Request {
	gen := workload.NewGen(seed)
	reqs := gen.PrefixGroups(15, 12, 512, 48)
	gen.PoissonArrivals(reqs, 300)
	gen.JitterArrivals(reqs, 2*time.Millisecond)
	if deadline > 0 {
		workload.SetDeadlines(reqs, deadline)
	}
	return reqs
}

// TestServeOnlineInvariants: every routed request terminates in
// exactly one state, and the online scorecard is internally
// consistent.
func TestServeOnlineInvariants(t *testing.T) {
	c, err := New(Config{
		Spec: testSpec(), Replicas: 4, Policy: LeastLoaded,
		CapacityBytes: perReplicaCapacity,
		SLOTTFT:       500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := onlineWorkload(3, time.Second)
	res, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished+res.Failed+res.Shed != len(reqs) {
		t.Fatalf("finished %d + failed %d + shed %d != %d requests",
			res.Finished, res.Failed, res.Shed, len(reqs))
	}
	if res.Finished == 0 {
		t.Fatal("nothing finished")
	}
	if res.SLOAttainment < 0 || res.SLOAttainment > 1 {
		t.Fatalf("attainment %f out of range", res.SLOAttainment)
	}
	if res.Goodput > res.ReqPerSec {
		t.Fatalf("goodput %f above req/s %f", res.Goodput, res.ReqPerSec)
	}
	total := 0
	for _, pr := range res.PerReplica {
		total += pr.Requests
	}
	if total != len(reqs) {
		t.Fatalf("routed %d != %d", total, len(reqs))
	}
}

// TestServeOnlineDeterministic: the online drive is a pure function of
// the stream.
func TestServeOnlineDeterministic(t *testing.T) {
	run := func() *Result {
		c, err := New(Config{
			Spec: testSpec(), Replicas: 3, Policy: PrefixAffinity,
			CapacityBytes: perReplicaCapacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.ServeOnline(onlineWorkload(11, 0))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Finished != b.Finished || a.HitRate != b.HitRate ||
		a.P99TTFT != b.P99TTFT || a.Imbalance != b.Imbalance {
		t.Errorf("online serve not deterministic: %+v vs %+v", a, b)
	}
}

// liveRecordingRouter asserts the cluster hands routers live replica
// state and then delegates to round-robin.
type liveRecordingRouter struct {
	rr       roundRobinRouter
	sawLive  int
	sawUsage int
	sawQueue int
}

func (r *liveRecordingRouter) Name() string { return "live-recording" }

func (r *liveRecordingRouter) Route(req *workload.Request, loads []Load) int {
	for _, l := range loads {
		if l.Live {
			r.sawLive++
			if l.Usage.Free+l.Usage.Used+l.Usage.Cached+l.Usage.Wasted > 0 {
				r.sawUsage++
			}
			if l.QueueDepth > 0 || l.OutstandingTokens > 0 {
				r.sawQueue++
			}
		}
	}
	return r.rr.Route(req, loads)
}

// TestServeOnlineRoutersSeeLiveState: online routing decisions observe
// real per-replica memory accounting and queue state, not estimates.
func TestServeOnlineRoutersSeeLiveState(t *testing.T) {
	rec := &liveRecordingRouter{}
	c, err := New(Config{
		Spec: testSpec(), Replicas: 3, Router: rec,
		CapacityBytes: perReplicaCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := onlineWorkload(13, 0)
	if _, err := c.ServeOnline(reqs); err != nil {
		t.Fatal(err)
	}
	if rec.sawLive != 3*len(reqs) {
		t.Errorf("live loads seen %d, want %d", rec.sawLive, 3*len(reqs))
	}
	if rec.sawUsage != rec.sawLive {
		t.Errorf("usage populated on %d of %d live loads", rec.sawUsage, rec.sawLive)
	}
	if rec.sawQueue == 0 {
		t.Error("no router decision ever saw a non-empty queue at 300 req/s")
	}
	// The batch path must keep handing out estimate-only loads.
	rec2 := &liveRecordingRouter{}
	c2, err := New(Config{Spec: testSpec(), Replicas: 3, Router: rec2, CapacityBytes: perReplicaCapacity})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Serve(onlineWorkload(13, 0)); err != nil {
		t.Fatal(err)
	}
	if rec2.sawLive != 0 {
		t.Errorf("batch Serve handed routers %d live loads, want 0", rec2.sawLive)
	}
}

// TestServeOnlineAdmissionSheds: a fleet-wide SLO admission policy
// sheds under overload instead of failing, and goodput stays positive.
func TestServeOnlineAdmissionSheds(t *testing.T) {
	c, err := New(Config{
		Spec: testSpec(), Replicas: 2, Policy: LeastLoaded,
		CapacityBytes: perReplicaCapacity,
		Admission:     engine.SLOAdmission{TTFT: 2 * time.Millisecond},
		SLOTTFT:       2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := onlineWorkload(17, 0)
	res, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("tight SLO admission shed nothing at 300 req/s on 2 replicas")
	}
	if res.Finished == 0 || res.Goodput <= 0 {
		t.Fatalf("overloaded fleet served nothing: %+v", res)
	}
	if res.Finished+res.Failed+res.Shed != len(reqs) {
		t.Fatalf("accounting broken: %d+%d+%d != %d", res.Finished, res.Failed, res.Shed, len(reqs))
	}
}

// TestServeOnlineWarmCache: back-to-back online serves keep replica
// caches warm, like the batch path.
func TestServeOnlineWarmCache(t *testing.T) {
	c, err := New(Config{
		Spec: testSpec(), Replicas: 2, Policy: PrefixAffinity,
		CapacityBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.ServeOnline(onlineWorkload(19, 0))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.ServeOnline(onlineWorkload(19, 0))
	if err != nil {
		t.Fatal(err)
	}
	if warm.HitRate <= cold.HitRate {
		t.Errorf("warm hit rate %.3f not above cold %.3f", warm.HitRate, cold.HitRate)
	}
}
