//jenga:concurrent sharded event loops: replica shards, bounded mailboxes, and the epoch-horizon barrier channels
package cluster

import (
	"fmt"
	"sync"
	"time"

	"jenga/internal/detmap"
	"jenga/internal/engine"
	"jenga/internal/metrics"
	"jenga/internal/workload"
)

// StreamConfig tunes ServeStream's sharded event loops.
type StreamConfig struct {
	// Shards is the number of replica event-loop goroutines; replica i
	// runs on shard i mod Shards. 0 or negative defaults to 1; values
	// above the replica count are clamped (an empty shard is useless).
	Shards int
	// Mailbox is each shard's bounded command-queue depth (routed
	// arrivals plus snapshot horizons). 0 defaults to 256.
	Mailbox int
	// SnapshotEvery is the load-snapshot epoch length K in simulated
	// time: replicas publish their SnapshotTotals at every multiple of
	// K, and the router reads those epoch snapshots instead of
	// force-advancing all engines per arrival. Smaller K is fresher
	// load state but more synchronization; 0 defaults to 10ms.
	SnapshotEvery time.Duration
}

const (
	defaultMailbox       = 256
	defaultSnapshotEvery = 10 * time.Millisecond
)

// streamCmd is one shard-mailbox entry: a routed arrival (horizon
// false) or a snapshot-horizon barrier (horizon true). Commands reach
// each shard in router order, so per-replica arrival order is exactly
// the routing order.
type streamCmd struct {
	req     workload.Request
	rep     int
	at      time.Duration
	horizon bool
}

// streamGroup is one tenant's exact served-work accumulator (the
// streamed counterpart of aggregate's per-group fold).
type streamGroup struct {
	tokens   int64
	finished int
	ttftSum  time.Duration
}

// streamAcc folds one shard's terminal request metrics as they retire:
// latency histograms instead of per-request slices, exact counters for
// everything aggregate computes exactly. One accumulator per shard,
// touched only by that shard's goroutine — merged after the drain.
type streamAcc struct {
	ttft, e2e, restore metrics.DurationHist
	deadlineMet        int
	sloMet             int
	groups             map[int64]*streamGroup
}

func newStreamAcc() *streamAcc {
	return &streamAcc{groups: make(map[int64]*streamGroup)}
}

// observe folds one finished request (RetireSink latency fields are
// only meaningful for EventFinished).
func (a *streamAcc) observe(m engine.RequestMetrics, slo time.Duration) {
	a.ttft.Observe(m.TTFT)
	a.e2e.Observe(m.E2E)
	a.restore.Observe(m.RestoreTime)
	if m.Deadline == 0 || m.E2E <= m.Deadline {
		a.deadlineMet++
	}
	if slo > 0 && m.TTFT <= slo {
		a.sloMet++
	}
	g := a.groups[m.Group]
	if g == nil {
		g = &streamGroup{}
		a.groups[m.Group] = g
	}
	g.tokens += int64(m.Tokens)
	g.finished++
	g.ttftSum += m.TTFT
}

// streamShard is one replica event loop: it owns replicas rep where
// rep mod shards == id, consumes its mailbox in FIFO order, and
// publishes load snapshots at horizon barriers.
type streamShard struct {
	id      int
	cluster *Cluster
	owned   []int // replica indices, ascending
	cmds    chan streamCmd
	// ack signals one completed horizon; loads is the snapshot buffer
	// the router reads after the ack (the channel receive orders the
	// shard's writes before the router's reads, and the router never
	// reads it between a horizon send and its ack).
	ack   chan struct{}
	loads []Load
	acc   *streamAcc
	err   error
}

// run is the shard goroutine body. On error it keeps consuming (and
// acking horizons) so the router never blocks; the error surfaces
// after the drain.
func (s *streamShard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	engines := s.cluster.engines
	for cmd := range s.cmds {
		if s.err != nil {
			if cmd.horizon {
				s.ack <- struct{}{}
			}
			continue
		}
		if cmd.horizon {
			for i, rep := range s.owned {
				e := engines[rep]
				if err := e.AdvanceTo(cmd.at); err != nil {
					s.err = fmt.Errorf("cluster: replica %d: %w", rep, err)
					break
				}
				snap := e.SnapshotTotals()
				s.loads[i].Usage = snap.Usage
				s.loads[i].QueueDepth = snap.Pending + snap.Waiting
				s.loads[i].OutstandingTokens = snap.OutstandingTokens
			}
			s.ack <- struct{}{}
			continue
		}
		e := engines[cmd.rep]
		if err := e.AdvanceTo(cmd.req.Arrival); err != nil {
			s.err = fmt.Errorf("cluster: replica %d: %w", cmd.rep, err)
			continue
		}
		// Submit retains the pointer; the command is a loop variable,
		// so give the engine its own copy.
		req := cmd.req
		if err := e.Submit(&req); err != nil {
			s.err = fmt.Errorf("cluster: replica %d: %w", cmd.rep, err)
		}
	}
	if s.err != nil {
		return
	}
	for _, rep := range s.owned {
		if err := engines[rep].Drain(); err != nil {
			s.err = fmt.Errorf("cluster: replica %d: %w", rep, err)
			return
		}
	}
}

// ServeStream is ServeOnline's scale path: the workload streams in
// (never materialized), each replica's engine runs on a shard
// goroutine fed by a bounded mailbox of routed arrivals, and routing
// reads epoch-published load snapshots instead of force-advancing
// every engine at every arrival — the O(replicas × arrivals) snapshot
// work that dominates large serial runs becomes O(replicas × epochs),
// and per-request retirement folds into fixed-size histograms so
// memory stays bounded at any request count.
//
// The drive is a conservative parallel discrete-event simulation: at
// each snapshot epoch boundary E·K the router broadcasts a horizon
// barrier, every shard advances its replicas exactly to E·K and
// publishes their SnapshotTotals, and only then does routing proceed.
// Snapshots are therefore taken at exact simulated instants, so the
// result is a pure function of the workload, config and shard-visible
// routing state — independent of the shard count and of wall-clock
// scheduling. For a load-oblivious router (prefix affinity, round
// robin) routing never reads engine state at all, and every replica
// receives exactly the ServeOnline request sequence: per-replica
// results are bit-identical to the serial path at any shard count.
// Load-aware routers see epoch-stale state (staleness < K) instead of
// per-arrival state, so their placements are statistically — not
// bit — equivalent to ServeOnline's.
//
// Arrivals must be non-decreasing (PoissonSource and MergeSources
// guarantee this); chaos plans, the fleet store, scale-down drains and
// migration need the serial arrival loop and are rejected. Latency
// percentiles come from log-bucketed histograms (≤ ~3% relative
// error, exact min/max); every count, rate and sum in the Result is
// exact.
func (c *Cluster) ServeStream(src workload.Source, sc StreamConfig) (*Result, error) {
	if c.cfg.Chaos.enabled() {
		return nil, fmt.Errorf("cluster: ServeStream does not support a chaos plan (use ServeOnline)")
	}
	if c.cfg.Fleet.enabled() || c.store != nil {
		return nil, fmt.Errorf("cluster: ServeStream does not support fleet policies (use ServeOnline)")
	}
	n := len(c.engines)
	shards := sc.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	mailbox := sc.Mailbox
	if mailbox <= 0 {
		mailbox = defaultMailbox
	}
	every := sc.SnapshotEvery
	if every <= 0 {
		every = defaultSnapshotEvery
	}
	if r, ok := c.router.(resettable); ok {
		r.reset()
	}
	for _, e := range c.engines {
		e.Reset()
	}

	// Build the shards and wire each owned engine's retirement into its
	// shard's accumulator (sink calls run on the shard goroutine).
	shardOf := make([]*streamShard, n)
	ss := make([]*streamShard, shards)
	for i := range ss {
		s := &streamShard{
			id:      i,
			cluster: c,
			cmds:    make(chan streamCmd, mailbox),
			ack:     make(chan struct{}, 1),
			acc:     newStreamAcc(),
		}
		ss[i] = s
	}
	slo := c.cfg.SLOTTFT
	for rep := 0; rep < n; rep++ {
		s := ss[rep%shards]
		s.owned = append(s.owned, rep)
		shardOf[rep] = s
		acc := s.acc
		c.engines[rep].SetRetireSink(func(m engine.RequestMetrics, ev engine.EventType) {
			if ev == engine.EventFinished {
				acc.observe(m, slo)
			}
		})
	}
	defer func() {
		for _, e := range c.engines {
			e.SetRetireSink(nil)
		}
	}()
	for _, s := range ss {
		s.loads = make([]Load, len(s.owned))
	}
	var wg sync.WaitGroup
	for _, s := range ss {
		wg.Add(1)
		go s.run(&wg)
	}

	// Route: the serial part of the drive. Epoch snapshots plus the
	// drained-estimate Outstanding are the only engine state it reads.
	loads := make([]Load, n)
	for i := range loads {
		loads[i].Replica = i
	}
	routedGroups := make(map[int64]int)
	epoch := int64(-1)
	lastArrival := time.Duration(0)
	var routeErr error
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Arrival < lastArrival {
			routeErr = fmt.Errorf("cluster: ServeStream needs non-decreasing arrivals (got %v after %v)", r.Arrival, lastArrival)
			break
		}
		// Snapshot horizon: on an epoch change, barrier every shard at
		// the boundary E·K and collect the published loads.
		if e := int64(r.Arrival / every); e > epoch {
			epoch = e
			at := time.Duration(epoch) * every
			for _, s := range ss {
				s.cmds <- streamCmd{at: at, horizon: true}
			}
			for _, s := range ss {
				<-s.ack
				for i, rep := range s.owned {
					loads[rep].Live = true
					loads[rep].Usage = s.loads[i].Usage
					loads[rep].QueueDepth = s.loads[i].QueueDepth
					loads[rep].OutstandingTokens = s.loads[i].OutstandingTokens
				}
			}
		}
		// Keep the estimate-drained Outstanding for routers written
		// against the batch contract (same decay as the serial paths).
		if dt := (r.Arrival - lastArrival).Seconds(); dt > 0 && c.drainRate > 0 {
			for j := range loads {
				loads[j].Outstanding -= c.drainRate * dt
				if loads[j].Outstanding < 0 {
					loads[j].Outstanding = 0
				}
			}
		}
		lastArrival = r.Arrival
		rep := c.router.Route(r, loads)
		if rep < 0 || rep >= n {
			rep = 0 // defensive: a broken custom router must not panic the run
		}
		work := int64(len(r.Prompt) + r.OutputLen)
		loads[rep].Requests++
		loads[rep].RoutedTokens += work
		loads[rep].Outstanding += float64(work)
		// Optimistic local deltas over the stale snapshot: the epoch
		// publish can't see work routed after it, so account for it
		// here or a load-aware router dumps a whole epoch's arrivals on
		// whichever replica the last snapshot showed coolest. The next
		// horizon overwrites both with measured values.
		loads[rep].OutstandingTokens += work
		loads[rep].QueueDepth++
		routedGroups[r.Group]++
		shardOf[rep].cmds <- streamCmd{req: *r, rep: rep}
	}

	// EOF (or router error): close the mailboxes, let the shards drain
	// their replicas to completion, then collect.
	for _, s := range ss {
		close(s.cmds)
	}
	wg.Wait()
	if routeErr != nil {
		return nil, routeErr
	}
	for _, s := range ss {
		if s.err != nil {
			return nil, s.err
		}
	}
	results := make([]*engine.Result, n)
	for i, e := range c.engines {
		results[i] = e.ResultSnapshot()
	}
	accs := make([]*streamAcc, len(ss))
	for i, s := range ss {
		accs[i] = s.acc
	}
	return c.aggregateStream(loads, results, accs, routedGroups), nil
}

// aggregateStream is aggregate for the streamed path: identical exact
// counters, rates and fairness folds, with latency percentiles read
// from the merged shard histograms instead of per-request slices.
func (c *Cluster) aggregateStream(loads []Load, results []*engine.Result, accs []*streamAcc, routedGroups map[int64]int) *Result {
	out := &Result{
		Policy:   c.router.Name(),
		Replicas: len(results),
	}
	var cached, computed, generated, restored int64
	shares := make([]float64, len(results))
	for i, res := range results {
		shares[i] = float64(loads[i].RoutedTokens)
		out.PerReplica = append(out.PerReplica, ReplicaResult{
			Replica:      i,
			Requests:     loads[i].Requests,
			RoutedTokens: loads[i].RoutedTokens,
			Result:       res,
		})
		out.Finished += res.Finished
		out.Failed += res.Failed
		out.Shed += res.Shed
		if res.Duration > out.Duration {
			out.Duration = res.Duration
		}
		cached += res.CachedPromptTokens
		computed += res.ComputedPromptTokens
		generated += res.GeneratedTokens
		restored += res.RestoredTokens
		out.RestoredTokens += res.RestoredTokens
		out.RecomputedTokens += res.RecomputedTokens
		out.SwapOuts += res.SwapOuts
		out.SwapIns += res.SwapIns
		out.PeerHits += res.PeerHits
		out.PeerTokens += res.PeerTokens
		out.PeerBytes += res.PeerBytes
		out.Migrations += res.MigratedIn
		out.MeanKVUtil += res.MeanKVUtil
	}
	var ttft, e2e, restoreH metrics.DurationHist
	deadlineMet, sloMet := 0, 0
	groups := make(map[int64]*streamGroup)
	for _, a := range accs {
		ttft.Merge(&a.ttft)
		e2e.Merge(&a.e2e)
		restoreH.Merge(&a.restore)
		deadlineMet += a.deadlineMet
		sloMet += a.sloMet
		for id, sg := range a.groups {
			g := groups[id]
			if g == nil {
				g = &streamGroup{}
				groups[id] = g
			}
			g.tokens += sg.tokens
			g.finished += sg.finished
			g.ttftSum += sg.ttftSum
		}
	}
	// Sorted traversal: float accumulation order must not depend on
	// map iteration order (see the identical aggregation in Serve).
	groupTokens := make([]float64, 0, len(groups))
	for _, g := range detmap.Sorted(groups) {
		groupTokens = append(groupTokens, float64(g.tokens))
		if mean := g.ttftSum / time.Duration(g.finished); mean > out.MaxGroupMeanTTFT {
			out.MaxGroupMeanTTFT = mean
		}
	}
	out.GroupJain = metrics.Jain(groupTokens)
	for g, routed := range routedGroups {
		if routed > 0 && groups[g] == nil {
			out.StarvedGroups++
		}
	}
	if n := len(results); n > 0 {
		out.MeanKVUtil /= float64(n)
	}
	if out.Duration > 0 {
		out.ReqPerSec = float64(out.Finished) / out.Duration.Seconds()
		out.TokensPerSec = float64(computed+generated) / out.Duration.Seconds()
		out.Goodput = metrics.Goodput(deadlineMet, out.Duration)
	}
	if c.cfg.SLOTTFT > 0 {
		if n := ttft.Count(); n > 0 {
			out.SLOAttainment = float64(sloMet) / float64(n)
		} else {
			out.SLOAttainment = 1
		}
	} else {
		out.SLOAttainment = metrics.Fraction(deadlineMet, out.Finished)
	}
	out.CachedPromptTokens = cached
	out.ComputedPromptTokens = computed
	if work := cached + computed; work > 0 {
		out.HitRate = float64(cached) / float64(work)
		out.TierHitRate = float64(restored) / float64(work)
		out.PeerHitRate = float64(out.PeerTokens) / float64(work)
	}
	out.P99Restore = restoreH.Percentile(99)
	out.Imbalance = metrics.Imbalance(shares)
	out.P50TTFT, out.P99TTFT = ttft.Percentile(50), ttft.Percentile(99)
	out.P50E2E, out.P99E2E = e2e.Percentile(50), e2e.Percentile(99)
	return out
}
