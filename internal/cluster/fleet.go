package cluster

import (
	"time"

	"jenga/internal/core"
	"jenga/internal/fleet"
)

// FleetPolicy configures the cluster-wide KV store and live request
// migration (internal/fleet) for ServeOnline. The zero value disables
// everything: no directory, no peer transfers, no migration — the
// cluster is bit-identical to a fleet-unaware one.
type FleetPolicy struct {
	// Store enables the fleet-wide KV store: every replica's host tier
	// registers its content in a shared prefix directory, and a local
	// prefix miss at routing time fetches a peer's spilled pages over
	// the device peer link (gpu.Device.LinkBW) instead of recomputing.
	// Requires the replicas to have host tiers (Config.HostTierBytes
	// or a tiered custom manager); without one the store never holds
	// anything and fetches never fire.
	Store bool
	// Migrate enables live request migration: replica drain evacuates
	// in-flight requests to the surviving replicas instead of shedding
	// them, and ImbalanceThreshold rebalancing moves work off hot
	// replicas. With Store also set, a migrated request's swapped
	// pages follow it over the peer link; without, the destination
	// restores what its own cache holds and recomputes the rest.
	Migrate bool
	// ImbalanceThreshold triggers a rebalancing migration when the
	// hottest replica's outstanding tokens exceed threshold × the
	// fleet mean (values ≤ 1 or Migrate unset: no rebalancing). One
	// request moves per arrival, hottest replica to coolest, so
	// rebalancing can never thrash faster than the offered load.
	ImbalanceThreshold float64
	// DrainAfter, when positive, drains the DrainReplicas
	// highest-indexed replicas at the first arrival at or past it
	// (scale-down): their live requests migrate (Migrate) or shed
	// (otherwise), and the router stops placing new work on them.
	DrainAfter time.Duration
	// DrainReplicas is how many replicas DrainAfter removes
	// (default 1, capped at Replicas-1).
	DrainReplicas int
}

// enabled reports whether any fleet mechanism is on.
func (p FleetPolicy) enabled() bool {
	return p.Store || p.Migrate || p.DrainAfter > 0
}

// fleetFetch runs the fleet-store miss path for a request routed to
// replica rep: if the directory says peers extend rep's local prefix,
// the pages move into rep's host tier now (serially, before Submit)
// and the wire bytes are charged to rep's next step as peer-link DMA.
func (c *Cluster) fleetFetch(rep int, id int64, prompt []core.Token) {
	if c.store == nil {
		return
	}
	seq := &core.Sequence{ID: core.RequestID(id), PromptLen: len(prompt), Tokens: prompt}
	now := core.Tick(c.engines[rep].SnapshotTotals().Step)
	if fr := c.store.Fetch(rep, seq, now); fr.Bytes > 0 {
		c.engines[rep].RecordPeerFetch(fr.Tokens, fr.Bytes)
	}
}

// migrate moves one live request from replica src to replica dst:
// swap out (the source tier keeps the pages and registers them in the
// directory), fetch the pages into dst's tier when the store is on,
// resume on dst through the ordinary re-admission path. Reports false
// for unknown IDs and for migrations the chaos plan fails mid-
// transfer: those roll back whole to the source — the swapped pages
// are still in its tier, so MigrateIn re-queues the request exactly
// where it left — unless the source is draining out of service, in
// which case the request is shed (its one terminal event).
func (c *Cluster) migrate(st *onlineState, src, dst int, id int64) bool {
	m, ok := c.engines[src].MigrateOut(id)
	if !ok {
		return false
	}
	if st != nil && st.cur != nil && st.cur.FailMigration() {
		st.stats.rollbacks++
		c.engines[src].MigrateIn(m)
		if st.drained[src] {
			c.engines[src].Shed(m.Req.ID)
		}
		return false
	}
	if c.store != nil && len(m.Tokens) > 0 {
		seq := &core.Sequence{ID: core.RequestID(m.Req.ID), PromptLen: len(m.Req.Prompt), Tokens: m.Tokens}
		now := core.Tick(c.engines[dst].SnapshotTotals().Step)
		if fr := c.store.Fetch(dst, seq, now); fr.Bytes > 0 {
			c.engines[dst].RecordPeerFetch(fr.Tokens, fr.Bytes)
		}
	}
	c.engines[dst].MigrateIn(m)
	return true
}

// coolestReplica returns the in-service replica with the fewest
// outstanding tokens (lowest index on ties), excluding `exclude`
// (pass a negative to exclude none). Healthy replicas are preferred;
// sick ones (inside a degraded or straggler window) are a fallback;
// dead and drained replicas are never candidates. Returns -1 when no
// candidate is in service.
func (c *Cluster) coolestReplica(st *onlineState, exclude int) int {
	pick := func(want Health) int {
		best, bestOut := -1, int64(0)
		for i, e := range c.engines {
			if st.drained[i] || i == exclude || st.health[i] != want {
				continue
			}
			out := e.SnapshotTotals().OutstandingTokens
			if best < 0 || out < bestOut {
				best, bestOut = i, out
			}
		}
		return best
	}
	if best := pick(Healthy); best >= 0 {
		return best
	}
	return pick(Sick)
}

// drainReplicas evacuates the fleet's tail replicas for scale-down:
// every live request on a draining replica migrates to the coolest
// surviving replica (Migrate) or is shed (otherwise). Runs serially
// inside the arrival loop, so the evacuation is deterministic.
func (c *Cluster) drainReplicas(st *onlineState) {
	n := len(c.engines)
	k := c.cfg.Fleet.DrainReplicas
	if k <= 0 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	for d := n - k; d < n; d++ {
		st.drained[d] = true
	}
	for d := n - k; d < n; d++ {
		for _, cand := range c.engines[d].MigrationCandidates() {
			if c.cfg.Fleet.Migrate {
				if dst := c.coolestReplica(st, -1); dst >= 0 {
					// A rolled-back migration sheds internally (the
					// source is draining), so the request still ends
					// with exactly one terminal either way.
					c.migrate(st, d, dst, cand.ID)
					continue
				}
			}
			c.engines[d].Shed(cand.ID)
		}
	}
}

// rebalance moves one request from the hottest replica to the coolest
// when the imbalance threshold is exceeded. The victim is the
// deterministic first candidate with the most remaining work, running
// requests preferred (their KV rides the transfer path; queued ones
// carry nothing).
func (c *Cluster) rebalance(st *onlineState) {
	thr := c.cfg.Fleet.ImbalanceThreshold
	if !c.cfg.Fleet.Migrate || thr <= 1 {
		return
	}
	var total int64
	hot, hotOut := -1, int64(0)
	live := 0
	for i, e := range c.engines {
		if st.drained[i] || st.health[i] == Dead {
			continue
		}
		live++
		out := e.SnapshotTotals().OutstandingTokens
		total += out
		if out > hotOut {
			hot, hotOut = i, out
		}
	}
	if live < 2 || hot < 0 {
		return
	}
	mean := float64(total) / float64(live)
	if mean <= 0 || float64(hotOut) <= thr*mean {
		return
	}
	var victim int64 = -1
	best, bestRunning := 0, false
	for _, cand := range c.engines[hot].MigrationCandidates() {
		better := cand.Remaining > best || (cand.Remaining == best && cand.Running && !bestRunning)
		if victim < 0 || (cand.Running && !bestRunning) || (cand.Running == bestRunning && better) {
			victim, best, bestRunning = cand.ID, cand.Remaining, cand.Running
		}
	}
	if victim < 0 {
		return
	}
	if dst := c.coolestReplica(st, hot); dst >= 0 {
		c.migrate(st, hot, dst, victim)
	}
}

// attachFleet builds the store and wires every replica's tier into
// the shared directory (called from New when the policy asks for it).
// Migration without the store needs no wiring at all: MigrateOut
// swaps the source's pages cache-preservingly either way, but nothing
// fetches across replicas — the destination restores what its own
// cache holds and recomputes the rest.
func (c *Cluster) attachFleet(managers []core.Manager) {
	if !c.cfg.Fleet.Store {
		return
	}
	c.store = fleet.NewStore(len(managers))
	for i, m := range managers {
		c.store.Attach(i, m)
	}
}
