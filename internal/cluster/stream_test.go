package cluster

import (
	"testing"
	"time"

	"jenga/internal/chaos"
	"jenga/internal/workload"
)

// streamWorkload builds a monotone-arrival online stream (ServeStream
// requires non-decreasing arrivals, so no jitter here).
func streamWorkload(seed int64, deadline time.Duration) []workload.Request {
	gen := workload.NewGen(seed)
	reqs := gen.PrefixGroups(15, 12, 512, 48)
	gen.PoissonArrivals(reqs, 300)
	if deadline > 0 {
		workload.SetDeadlines(reqs, deadline)
	}
	return reqs
}

func streamCluster(t *testing.T, replicas int, policy RouterPolicy) *Cluster {
	t.Helper()
	c, err := New(Config{
		Spec: testSpec(), Replicas: replicas, Policy: policy,
		CapacityBytes: perReplicaCapacity,
		SLOTTFT:       500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	lim := relTol * want
	if lim < 0 {
		lim = -lim
	}
	if d > lim {
		t.Errorf("%s: stream %v vs serial %v (beyond %.0f%%)", name, got, want, relTol*100)
	}
}

// With a load-oblivious router the streamed path routes identically to
// the serial one, so every exact counter must match ServeOnline
// bit for bit; only histogram-read percentiles may differ, within the
// bucket resolution.
func TestServeStreamMatchesServeOnlineAffinity(t *testing.T) {
	reqs := streamWorkload(11, time.Second)
	serial, err := streamCluster(t, 4, PrefixAffinity).ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := streamCluster(t, 4, PrefixAffinity).ServeStream(workload.SliceSource(reqs), StreamConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Finished != serial.Finished || stream.Failed != serial.Failed || stream.Shed != serial.Shed {
		t.Fatalf("terminal counts differ: stream %d/%d/%d serial %d/%d/%d",
			stream.Finished, stream.Failed, stream.Shed, serial.Finished, serial.Failed, serial.Shed)
	}
	if stream.Duration != serial.Duration {
		t.Fatalf("duration differs: %v vs %v", stream.Duration, serial.Duration)
	}
	if stream.ReqPerSec != serial.ReqPerSec || stream.TokensPerSec != serial.TokensPerSec ||
		stream.Goodput != serial.Goodput {
		t.Fatalf("rates differ: %+v vs %+v", stream, serial)
	}
	if stream.HitRate != serial.HitRate ||
		stream.CachedPromptTokens != serial.CachedPromptTokens ||
		stream.ComputedPromptTokens != serial.ComputedPromptTokens ||
		stream.RestoredTokens != serial.RestoredTokens {
		t.Fatalf("cache accounting differs: %+v vs %+v", stream, serial)
	}
	if stream.GroupJain != serial.GroupJain || stream.MaxGroupMeanTTFT != serial.MaxGroupMeanTTFT ||
		stream.StarvedGroups != serial.StarvedGroups {
		t.Fatalf("fairness differs: jain %v/%v maxTTFT %v/%v starved %d/%d",
			stream.GroupJain, serial.GroupJain, stream.MaxGroupMeanTTFT, serial.MaxGroupMeanTTFT,
			stream.StarvedGroups, serial.StarvedGroups)
	}
	if stream.Imbalance != serial.Imbalance || stream.MeanKVUtil != serial.MeanKVUtil ||
		stream.SLOAttainment != serial.SLOAttainment {
		t.Fatalf("scorecard differs: imbalance %v/%v kvutil %v/%v slo %v/%v",
			stream.Imbalance, serial.Imbalance, stream.MeanKVUtil, serial.MeanKVUtil,
			stream.SLOAttainment, serial.SLOAttainment)
	}
	for i := range serial.PerReplica {
		s, o := stream.PerReplica[i], serial.PerReplica[i]
		if s.Requests != o.Requests || s.RoutedTokens != o.RoutedTokens {
			t.Fatalf("replica %d routing differs: %d/%d tokens %d/%d",
				i, s.Requests, o.Requests, s.RoutedTokens, o.RoutedTokens)
		}
		if s.Result.Finished != o.Result.Finished || s.Result.Duration != o.Result.Duration ||
			s.Result.Steps != o.Result.Steps ||
			s.Result.CachedPromptTokens != o.Result.CachedPromptTokens ||
			s.Result.GeneratedTokens != o.Result.GeneratedTokens {
			t.Fatalf("replica %d engine result differs:\nstream %+v\nserial %+v", i, s.Result, o.Result)
		}
	}
	// Percentiles are histogram reads: within the bucket width of the
	// serial exact values (min/max ranks are exact).
	within(t, "p50 TTFT", float64(stream.P50TTFT), float64(serial.P50TTFT), 0.06)
	within(t, "p99 TTFT", float64(stream.P99TTFT), float64(serial.P99TTFT), 0.06)
	within(t, "p50 E2E", float64(stream.P50E2E), float64(serial.P50E2E), 0.06)
	within(t, "p99 E2E", float64(stream.P99E2E), float64(serial.P99E2E), 0.06)
	within(t, "p99 restore", float64(stream.P99Restore), float64(serial.P99Restore), 0.06)
}

// The conservative-horizon protocol makes the run a pure function of
// the workload and config: any shard count, same result — for
// load-aware routers too, since snapshots are published at exact
// epoch instants.
func TestServeStreamShardCountInvariant(t *testing.T) {
	reqs := streamWorkload(5, time.Second)
	run := func(shards int, policy RouterPolicy) *Result {
		res, err := streamCluster(t, 4, policy).ServeStream(workload.SliceSource(reqs), StreamConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, policy := range []RouterPolicy{LeastLoaded, PrefixAffinity} {
		base := run(1, policy)
		for _, shards := range []int{2, 4, 7} { // 7 clamps to the replica count
			got := run(shards, policy)
			if got.Finished != base.Finished || got.Duration != base.Duration ||
				got.HitRate != base.HitRate || got.P99TTFT != base.P99TTFT ||
				got.P99E2E != base.P99E2E || got.Imbalance != base.Imbalance ||
				got.Goodput != base.Goodput || got.SLOAttainment != base.SLOAttainment {
				t.Errorf("policy %v shards %d diverged:\n%+v\nvs shards=1\n%+v", policy, shards, got, base)
			}
			for i := range base.PerReplica {
				if got.PerReplica[i].Requests != base.PerReplica[i].Requests {
					t.Errorf("policy %v shards %d replica %d routed %d, shards=1 routed %d",
						policy, shards, i, got.PerReplica[i].Requests, base.PerReplica[i].Requests)
				}
			}
		}
	}
}

// Load-aware routing over epoch-stale snapshots must stay
// statistically close to the serial per-arrival path.
func TestServeStreamLeastLoadedEquivalence(t *testing.T) {
	reqs := streamWorkload(23, time.Second)
	serial, err := streamCluster(t, 4, LeastLoaded).ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := streamCluster(t, 4, LeastLoaded).ServeStream(workload.SliceSource(reqs),
		StreamConfig{Shards: 4, SnapshotEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Finished+stream.Failed+stream.Shed != len(reqs) {
		t.Fatalf("terminal counts %d+%d+%d != %d", stream.Finished, stream.Failed, stream.Shed, len(reqs))
	}
	within(t, "finished", float64(stream.Finished), float64(serial.Finished), 0.02)
	within(t, "hit rate", stream.HitRate, serial.HitRate, 0.15)
	within(t, "goodput", stream.Goodput, serial.Goodput, 0.05)
	within(t, "p99 TTFT", float64(stream.P99TTFT), float64(serial.P99TTFT), 0.25)
	within(t, "imbalance", stream.Imbalance, serial.Imbalance, 0.10)
}

// A cluster is reusable across streamed and serial passes: the retire
// sink is detached afterwards, so a following ServeOnline still gets
// exact per-request aggregation.
func TestServeStreamThenServeOnline(t *testing.T) {
	c := streamCluster(t, 3, PrefixAffinity)
	reqs := streamWorkload(9, 0)
	first, err := c.ServeStream(workload.SliceSource(reqs), StreamConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Finished != second.Finished {
		t.Fatalf("streamed pass finished %d, serial re-run %d", first.Finished, second.Finished)
	}
	if len(second.PerReplica) > 0 {
		total := 0
		for _, pr := range second.PerReplica {
			total += len(pr.Result.PerRequest)
		}
		if total != second.Finished {
			t.Fatalf("serial pass after stream lost per-request records: %d != %d", total, second.Finished)
		}
	}
}

// Chaos plans and fleet mechanisms need the serial arrival loop.
func TestServeStreamRejectsIncompatibleConfigs(t *testing.T) {
	src := func() workload.Source { return workload.SliceSource(streamWorkload(1, 0)) }
	c, err := New(Config{
		Spec: testSpec(), Replicas: 2, Policy: PrefixAffinity,
		CapacityBytes: perReplicaCapacity,
		Chaos:         ChaosPolicy{Plan: chaos.NewPlan(1).Crash(0, time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ServeStream(src(), StreamConfig{}); err == nil {
		t.Fatal("chaos plan must be rejected")
	}
	c, err = New(Config{
		Spec: testSpec(), Replicas: 2, Policy: PrefixAffinity,
		CapacityBytes: perReplicaCapacity,
		Fleet:         FleetPolicy{DrainAfter: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ServeStream(src(), StreamConfig{}); err == nil {
		t.Fatal("fleet scale-down must be rejected")
	}
}

// Out-of-order arrivals are a caller bug the router reports rather
// than silently misroutes.
func TestServeStreamRejectsNonMonotoneArrivals(t *testing.T) {
	reqs := streamWorkload(2, 0)
	reqs[1].Arrival = reqs[0].Arrival - time.Millisecond
	if _, err := streamCluster(t, 2, PrefixAffinity).ServeStream(workload.SliceSource(reqs[:3]), StreamConfig{}); err == nil {
		t.Fatal("decreasing arrivals must be rejected")
	}
}
