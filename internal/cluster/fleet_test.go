package cluster

import (
	"sync"
	"testing"
	"time"

	"jenga/internal/engine"
	"jenga/internal/workload"
)

// eventLedger is a goroutine-safe EventSink recording, per request,
// the terminal events and sheds seen fleet-wide. ServeOnline invokes
// the sink serially during the arrival loop but concurrently during
// the drain phase, so the ledger locks.
type eventLedger struct {
	mu        sync.Mutex
	terminals map[int64]int
	migrated  map[int64]int
	shedBy    map[int]int // replica → sheds
}

func newEventLedger() *eventLedger {
	return &eventLedger{
		terminals: make(map[int64]int),
		migrated:  make(map[int64]int),
		shedBy:    make(map[int]int),
	}
}

func (l *eventLedger) sink(replica int, ev engine.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ev.Type.Terminal() {
		l.terminals[ev.ID]++
	}
	switch ev.Type {
	case engine.EventMigrated:
		l.migrated[ev.ID]++
	case engine.EventShed:
		l.shedBy[replica]++
	}
}

// checkTerminalOnce asserts every request in reqs reached exactly one
// terminal event across the whole fleet — the stream contract live
// migration must preserve (EventMigrated is a hand-off, not an end).
func (l *eventLedger) checkTerminalOnce(t *testing.T, reqs []workload.Request) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range reqs {
		if n := l.terminals[r.ID]; n != 1 {
			t.Fatalf("request %d saw %d terminal events, want exactly 1", r.ID, n)
		}
	}
	if len(l.terminals) != len(reqs) {
		t.Fatalf("%d requests terminated, want %d", len(l.terminals), len(reqs))
	}
}

// drainCluster builds a fleet whose tail replica is drained mid-stream.
func drainCluster(t *testing.T, ledger *eventLedger, migrate bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Spec: testSpec(), Replicas: 3, Policy: LeastLoaded,
		CapacityBytes: perReplicaCapacity,
		HostTierBytes: 64 << 20,
		PreemptMode:   engine.PreemptSwap,
		Fleet: FleetPolicy{
			Migrate:    migrate,
			DrainAfter: 100 * time.Millisecond,
		},
		EventSink: ledger.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServeOnlineDrainMigrates: with migration on, a draining replica
// sheds nothing — every in-flight request moves to a survivor and
// still reaches exactly one terminal event.
func TestServeOnlineDrainMigrates(t *testing.T) {
	ledger := newEventLedger()
	c := drainCluster(t, ledger, true)
	reqs := onlineWorkload(41, 0)
	res, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 0 {
		t.Fatalf("drain shed %d requests with migration on, want 0", res.Shed)
	}
	if res.Migrations == 0 {
		t.Fatal("drain at 100ms into a 300 req/s stream migrated nothing")
	}
	if res.Finished+res.Failed != len(reqs) {
		t.Fatalf("finished %d + failed %d != %d", res.Finished, res.Failed, len(reqs))
	}
	ledger.checkTerminalOnce(t, reqs)
	if len(ledger.migrated) == 0 {
		t.Fatal("no EventMigrated reached the sink")
	}
	// The drained tail replica stops taking new work: everything it
	// routed arrived before the drain instant.
	tail := res.PerReplica[len(res.PerReplica)-1]
	for _, pr := range res.PerReplica[:len(res.PerReplica)-1] {
		if tail.Requests >= pr.Requests {
			t.Fatalf("drained replica kept %d requests vs survivor %d — drain did not stick",
				tail.Requests, pr.Requests)
		}
	}
}

// TestServeOnlineDrainShedsWithoutMigration: the same drain with
// migration off falls back to shedding — and the shed events come from
// the draining replica, still exactly one terminal event per request.
func TestServeOnlineDrainShedsWithoutMigration(t *testing.T) {
	ledger := newEventLedger()
	c := drainCluster(t, ledger, false)
	reqs := onlineWorkload(41, 0)
	res, err := c.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("drain without migration shed nothing")
	}
	if res.Migrations != 0 {
		t.Fatalf("migrations %d with migration off, want 0", res.Migrations)
	}
	if res.Finished+res.Failed+res.Shed != len(reqs) {
		t.Fatalf("accounting broken: %d+%d+%d != %d", res.Finished, res.Failed, res.Shed, len(reqs))
	}
	ledger.checkTerminalOnce(t, reqs)
	for rep, n := range ledger.shedBy {
		if rep != 2 {
			t.Fatalf("replica %d shed %d requests; only the drained tail (2) may shed", rep, n)
		}
	}
}

// hotspotRouter pins every request to replica 0, manufacturing the
// imbalance the rebalancer must repair.
type hotspotRouter struct{}

func (hotspotRouter) Name() string                                      { return "hotspot" }
func (hotspotRouter) Route(_ *workload.Request, _ []Load) (replica int) { return 0 }

// TestServeOnlineRebalance: with an imbalance threshold set, the fleet
// moves work off the manufactured hotspot; without it, nothing moves.
func TestServeOnlineRebalance(t *testing.T) {
	run := func(thr float64) *Result {
		c, err := New(Config{
			Spec: testSpec(), Replicas: 3, Router: hotspotRouter{},
			CapacityBytes: perReplicaCapacity,
			HostTierBytes: 64 << 20,
			PreemptMode:   engine.PreemptSwap,
			Fleet:         FleetPolicy{Migrate: true, ImbalanceThreshold: thr},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.ServeOnline(onlineWorkload(43, 0))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	balanced := run(1.5)
	if balanced.Migrations == 0 {
		t.Fatal("hotspot router triggered no rebalancing migrations")
	}
	static := run(0)
	if static.Migrations != 0 {
		t.Fatalf("migrations %d with rebalancing off, want 0", static.Migrations)
	}
	if balanced.Shed != 0 || static.Shed != 0 {
		t.Fatalf("rebalancing shed work: %d/%d", balanced.Shed, static.Shed)
	}
}

// churnStream is the replica-churn workload: group popularity phase-
// shifts through the stream, so each replica keeps seeing prefixes
// that some *other* replica computed during an earlier phase.
func churnStream(seed int64) []workload.Request {
	gen := workload.NewGen(seed)
	reqs := gen.ChurnGroups(12, 10, 512, 48, 4)
	gen.PoissonArrivals(reqs, 300)
	return reqs
}

// TestFleetStoreImprovesChurn is the fleet store's acceptance anchor
// at test scale: under replica churn with cache pressure, turning the
// store on must produce peer hits and cut computed prompt work versus
// local recompute — same workload, same routing.
func TestFleetStoreImprovesChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn comparison (seconds of simulation); run without -short")
	}
	run := func(store bool) *Result {
		c, err := New(Config{
			Spec: testSpec(), Replicas: 3, Policy: RoundRobin,
			CapacityBytes: 2 << 20, // ~2 of the 12 × 512-token prefixes
			HostTierBytes: 64 << 20,
			PreemptMode:   engine.PreemptSwap,
			Fleet:         FleetPolicy{Store: store},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.ServeOnline(churnStream(47))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(false)
	fleet := run(true)
	if local.PeerHits != 0 || local.PeerBytes != 0 {
		t.Fatalf("store off but peer traffic flowed: %+v", local)
	}
	if fleet.PeerHits == 0 || fleet.PeerBytes == 0 || fleet.PeerHitRate <= 0 {
		t.Fatalf("store on but no peer hits: hits=%d bytes=%d rate=%f",
			fleet.PeerHits, fleet.PeerBytes, fleet.PeerHitRate)
	}
	if fleet.HitRate <= local.HitRate {
		t.Errorf("fleet hit rate %.3f not above local %.3f", fleet.HitRate, local.HitRate)
	}
	if fleet.ComputedPromptTokens >= local.ComputedPromptTokens {
		t.Errorf("fleet computed %d prompt tokens, local %d — peer pages did not pay",
			fleet.ComputedPromptTokens, local.ComputedPromptTokens)
	}
	if fleet.Finished == 0 || fleet.Finished+fleet.Failed != local.Finished+local.Failed {
		t.Errorf("request accounting diverged: fleet %d+%d, local %d+%d",
			fleet.Finished, fleet.Failed, local.Finished, local.Failed)
	}
}
