package cluster

import (
	"fmt"
	"testing"
	"time"

	"jenga/internal/workload"
)

// Golden regression for the streaming-core reimplementation: batch
// Cluster.Serve must reproduce the PR-1 seeded fleet metrics exactly
// (placement, per-replica engine runs, and aggregation are all
// deterministic).

func goldenFleetWorkload() []workload.Request {
	gen := workload.NewGen(7)
	reqs := gen.PrefixGroups(15, 12, 512, 48)
	gen.PoissonArrivals(reqs, 300)
	return reqs
}

func TestServeGoldenSeeded(t *testing.T) {
	want := map[RouterPolicy]struct {
		duration, p50TTFT, p99TTFT, p50E2E, p99E2E time.Duration
		finished, failed                           int
		hitRate, imbalance, meanKV                 string // %.9f
	}{
		// p99 values regenerated when percentileSorted moved from
		// round-half-up to the ceil-based nearest-rank rule (n=180:
		// rank 179, one above the old read-out); everything else —
		// durations, counts, hit rates — is bit-identical, proving the
		// fix changed only the percentile read-out, not the engines.
		RoundRobin: {
			duration: 1093943001, finished: 180, failed: 0,
			p50TTFT: 124383636, p99TTFT: 295524174, p50E2E: 218291369, p99E2E: 415902176,
			hitRate: "0.725212881", imbalance: "1.004259133", meanKV: "0.984120115",
		},
		PrefixAffinity: {
			duration: 1777086611, finished: 180, failed: 0,
			p50TTFT: 200514466, p99TTFT: 1015661683, p50E2E: 274051375, p99E2E: 1105022040,
			hitRate: "0.428072477", imbalance: "1.602828951", meanKV: "0.894021815",
		},
	}
	for policy, w := range want {
		c := testCluster(t, 3, policy, perReplicaCapacity)
		res, err := c.Serve(goldenFleetWorkload())
		if err != nil {
			t.Fatal(err)
		}
		if res.Duration != w.duration || res.Finished != w.finished || res.Failed != w.failed {
			t.Errorf("%s: duration/finished/failed = %d/%d/%d, want %d/%d/%d", policy,
				int64(res.Duration), res.Finished, res.Failed, int64(w.duration), w.finished, w.failed)
		}
		if res.P50TTFT != w.p50TTFT || res.P99TTFT != w.p99TTFT || res.P50E2E != w.p50E2E || res.P99E2E != w.p99E2E {
			t.Errorf("%s: percentiles = %d/%d/%d/%d, want %d/%d/%d/%d", policy,
				int64(res.P50TTFT), int64(res.P99TTFT), int64(res.P50E2E), int64(res.P99E2E),
				int64(w.p50TTFT), int64(w.p99TTFT), int64(w.p50E2E), int64(w.p99E2E))
		}
		for _, c := range []struct{ name, got, want string }{
			{"hitRate", fmt.Sprintf("%.9f", res.HitRate), w.hitRate},
			{"imbalance", fmt.Sprintf("%.9f", res.Imbalance), w.imbalance},
			{"meanKVUtil", fmt.Sprintf("%.9f", res.MeanKVUtil), w.meanKV},
		} {
			if c.got != c.want {
				t.Errorf("%s: %s = %s, want %s", policy, c.name, c.got, c.want)
			}
		}
	}
}
