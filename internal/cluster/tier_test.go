package cluster

import (
	"testing"

	"jenga/internal/engine"
	"jenga/internal/workload"
)

// tierCluster builds a pressured fleet with a per-replica host tier
// and the given preempt mode.
func tierCluster(t *testing.T, mode engine.PreemptMode, hostBytes int64) *Cluster {
	t.Helper()
	c, err := New(Config{
		Spec:          testSpec(),
		Replicas:      2,
		Policy:        RoundRobin,
		CapacityBytes: perReplicaCapacity,
		HostTierBytes: hostBytes,
		PreemptMode:   mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterTierAggregation drives a cache-pressured fleet through
// ServeOnline with a host tier and checks the tier metrics flow
// through aggregation: a positive fleet-exact tier hit rate bounded
// by the overall hit rate, summed transfer counts, and a restore p99.
// The same fleet without a tier must report all-zero tier metrics.
func TestClusterTierAggregation(t *testing.T) {
	gen := workload.NewGen(21)
	reqs := gen.PrefixGroups(15, 12, 512, 48)
	gen.PoissonArrivals(reqs, 400)

	tiered := tierCluster(t, engine.PreemptSwap, 256<<20)
	res, err := tiered.ServeOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapOuts == 0 || res.SwapIns == 0 || res.RestoredTokens == 0 {
		t.Fatalf("pressured tiered fleet moved nothing: swapOuts=%d swapIns=%d restored=%d",
			res.SwapOuts, res.SwapIns, res.RestoredTokens)
	}
	if res.TierHitRate <= 0 || res.TierHitRate > res.HitRate {
		t.Fatalf("TierHitRate = %v, want in (0, HitRate=%v]", res.TierHitRate, res.HitRate)
	}
	if res.P99Restore <= 0 {
		t.Fatalf("P99Restore = %v, want > 0 on a restoring fleet", res.P99Restore)
	}

	gen2 := workload.NewGen(21)
	reqs2 := gen2.PrefixGroups(15, 12, 512, 48)
	gen2.PoissonArrivals(reqs2, 400)
	bare := tierCluster(t, engine.PreemptRecompute, 0)
	res2, err := bare.ServeOnline(reqs2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SwapOuts != 0 || res2.SwapIns != 0 || res2.RestoredTokens != 0 ||
		res2.TierHitRate != 0 || res2.P99Restore != 0 {
		t.Fatalf("untiered fleet reports tier activity: %+v", res2)
	}
	// The tier can only help: never fewer finishes, never less cached
	// prefill on the identical stream.
	if res.Finished < res2.Finished {
		t.Errorf("tiered fleet finished %d < untiered %d", res.Finished, res2.Finished)
	}
	if res.HitRate < res2.HitRate {
		t.Errorf("tiered hit rate %v below untiered %v", res.HitRate, res2.HitRate)
	}
}
