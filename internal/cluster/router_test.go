package cluster

import (
	"testing"

	"jenga/internal/metrics"
	"jenga/internal/workload"
)

func testLoads(n int) []Load {
	loads := make([]Load, n)
	for i := range loads {
		loads[i].Replica = i
	}
	return loads
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []RouterPolicy{RoundRobin, LeastLoaded, PrefixAffinity} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) succeeded")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r, err := NewRouter(RoundRobin, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	loads := testLoads(4)
	req := &workload.Request{}
	for i := 0; i < 40; i++ {
		if got := r.Route(req, loads); got != i%4 {
			t.Fatalf("route %d = replica %d, want %d", i, got, i%4)
		}
	}
}

// TestAffinityDeterministic checks that prefix-affinity placement is a
// pure function of the prompt prefix: equal prefixes land on the same
// replica, across requests and across independently built routers.
func TestAffinityDeterministic(t *testing.T) {
	const replicas = 8
	gen := workload.NewGen(7)
	reqs := gen.PrefixGroups(12, 6, 300, 64)

	r1, err := NewRouter(PrefixAffinity, replicas, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouter(PrefixAffinity, replicas, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	loads := testLoads(replicas)
	groupReplica := map[int64]int{}
	for i := range reqs {
		a := r1.Route(&reqs[i], loads)
		b := r2.Route(&reqs[i], loads)
		if a != b {
			t.Fatalf("request %d: routers disagree (%d vs %d)", i, a, b)
		}
		if prev, ok := groupReplica[reqs[i].Group]; ok && prev != a {
			t.Fatalf("group %d split across replicas %d and %d", reqs[i].Group, prev, a)
		}
		groupReplica[reqs[i].Group] = a
	}
	if len(groupReplica) != 12 {
		t.Fatalf("expected 12 prefix groups, saw %d", len(groupReplica))
	}
}

// TestAffinitySpreadsGroups checks the ring actually uses the fleet:
// with many more groups than replicas, every replica should own at
// least one group (vnode smoothing).
func TestAffinitySpreadsGroups(t *testing.T) {
	const replicas = 4
	gen := workload.NewGen(11)
	reqs := gen.PrefixGroups(64, 1, 300, 16)
	r, err := NewRouter(PrefixAffinity, replicas, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	loads := testLoads(replicas)
	seen := map[int]int{}
	for i := range reqs {
		seen[r.Route(&reqs[i], loads)]++
	}
	for rep := 0; rep < replicas; rep++ {
		if seen[rep] == 0 {
			t.Fatalf("replica %d received no prefix groups: %v", rep, seen)
		}
	}
}

// TestLeastLoadedBalance checks the balance bound: on a uniform
// all-at-once stream, least-loaded routing keeps the max/mean routed
// token imbalance within a few percent (one request's worth of slack).
func TestLeastLoadedBalance(t *testing.T) {
	const replicas = 5
	r, err := NewRouter(LeastLoaded, replicas, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGen(3)
	reqs := gen.ShareGPT(200)
	loads := testLoads(replicas)
	for i := range reqs {
		rep := r.Route(&reqs[i], loads)
		work := int64(len(reqs[i].Prompt) + reqs[i].OutputLen)
		loads[rep].Requests++
		loads[rep].RoutedTokens += work
		loads[rep].Outstanding += float64(work)
	}
	shares := make([]float64, replicas)
	for i, l := range loads {
		if l.Requests == 0 {
			t.Fatalf("replica %d got no requests", i)
		}
		shares[i] = float64(l.RoutedTokens)
	}
	if imb := metrics.Imbalance(shares); imb > 1.10 {
		t.Fatalf("least-loaded imbalance %.3f exceeds 1.10 (shares %v)", imb, shares)
	}
}

// TestLeastLoadedPrefersIdle checks the core property directly: a
// replica with zero outstanding work wins over loaded ones.
func TestLeastLoadedPrefersIdle(t *testing.T) {
	r, _ := NewRouter(LeastLoaded, 3, 0, 0)
	loads := testLoads(3)
	loads[0].Outstanding = 5000
	loads[1].Outstanding = 100
	req := &workload.Request{}
	if got := r.Route(req, loads); got != 2 {
		t.Fatalf("routed to %d, want idle replica 2", got)
	}
}
