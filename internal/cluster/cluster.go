// Package cluster scales the single-engine serving simulation out to a
// multi-replica cluster: N independent engine.Engine replicas — each
// with its own core.Manager heap and simulated gpu.Device — run
// concurrently on their own goroutines, while a pluggable Router
// decides which replica serves each request of the arrival stream.
//
// The routing decision is where the paper's single-engine story meets
// production scale-out: prefix-cache hit rate depends on *which*
// replica a request lands on, because each replica caches only the
// prefixes it has served. Round-robin spreads every prefix class over
// every replica (each must cache everything); prefix-affinity
// consistent-hashes the prompt prefix so sharing requests co-locate and
// the fleet's caches partition the prefix space — the PagedAttention
// sharing insight lifted one level up.
//
// Engines are goroutine-confined: the cluster serializes routing, hands
// each replica its own request slice, and only aggregates results after
// all replicas finish. Nothing is shared between replica goroutines.
//
// Two serving paths share the replicas and the aggregation. Serve is
// the batch path: placement is precomputed from estimate-drained
// loads, then every replica's Engine.Run (the batch driver over the
// engine's streaming core) executes concurrently. ServeOnline (see
// online.go) drives the streaming cores directly: replicas advance to
// each arrival instant, routers decide on live per-replica state
// (measured Usage, queue depth, outstanding tokens — Load.Live), and
// per-replica admission policies shed at arrival.
//
//jenga:concurrent batch fan-out: one goroutine per goroutine-confined replica, joined before aggregation
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"jenga/internal/core"
	"jenga/internal/detmap"
	"jenga/internal/engine"
	"jenga/internal/fleet"
	"jenga/internal/gpu"
	"jenga/internal/metrics"
	"jenga/internal/model"
	"jenga/internal/sched"
	"jenga/internal/workload"
)

// Config configures a Cluster.
type Config struct {
	// Spec is the model every replica serves (required).
	Spec *model.Spec
	// Device is each replica's simulated GPU (default H100).
	Device gpu.Device
	// Replicas is the number of engine replicas (required, ≥ 1).
	Replicas int
	// Policy selects a built-in router (ignored when Router is set).
	Policy RouterPolicy
	// Router overrides Policy with a custom implementation.
	Router Router
	// NewManager builds replica i's memory manager. Default: a Jenga
	// manager with prefix caching and request-aware placement on
	// CapacityBytes.
	NewManager func(replica int) (core.Manager, error)
	// CapacityBytes is the per-replica KV budget for the default
	// manager (0 → gpu.KVBudget for Spec on Device).
	CapacityBytes int64
	// HostTierBytes is each default manager's host-memory KV tier
	// budget (0 = no tier): whole-large-page eviction then spills to
	// host instead of discarding, and prefix lookups restore spilled
	// blocks over PCIe. Ignored when NewManager is set — a custom
	// manager configures its own tier.
	HostTierBytes int64
	// PreemptMode forwards the preemption strategy to every replica
	// engine: recompute (default, historical) or swap (preemption
	// victims move to the host tier and resume by restore).
	PreemptMode engine.PreemptMode
	// MaxBatchTokens, MaxRunning and MaxPrefills forward to each
	// replica's engine.Config.
	MaxBatchTokens int
	MaxRunning     int
	MaxPrefills    int
	// AffinityPrefixTokens is the prompt prefix length PrefixAffinity
	// hashes (default 256).
	AffinityPrefixTokens int
	// VNodes is the consistent-hash ring points per replica (default 64).
	VNodes int
	// Admission forwards an admission policy to every replica engine:
	// online serving sheds at each request's arrival instant against
	// that replica's live memory and queue state. Nil admits all.
	Admission engine.AdmissionPolicy
	// Scheduler forwards a scheduling policy (admission order,
	// preemption victims, prefill/decode budget) to every replica
	// engine. Nil means FCFS, the historical behavior.
	Scheduler sched.Scheduler
	// NewScheduler, when set, overrides Scheduler per replica — a
	// heterogeneous fleet can run, say, one SJF latency replica next
	// to FairShare bulk replicas. Returning nil for a replica falls
	// back to Scheduler (and from there to FCFS).
	NewScheduler func(replica int) sched.Scheduler
	// SLOTTFT is the fleet time-to-first-token target SLO attainment
	// is measured against (0: attainment over per-request deadlines).
	SLOTTFT time.Duration
	// Fleet configures the cluster-wide KV store and live request
	// migration for ServeOnline (see FleetPolicy). Zero value:
	// disabled — no directory, no peer transfers, no migration.
	Fleet FleetPolicy
	// Chaos attaches a deterministic fault-injection plan and the
	// recovery machinery (see ChaosPolicy). Zero value: no faults,
	// bit-identical to a chaos-free cluster.
	Chaos ChaosPolicy
	// EventSink, when set, receives every replica engine's events
	// tagged with the replica index. During the arrival loop events
	// arrive serially; during the concurrent drain phase they arrive
	// from replica goroutines, so implementations must be
	// goroutine-safe.
	EventSink func(replica int, ev engine.Event)
}

// ReplicaResult is one replica's share of a cluster run.
type ReplicaResult struct {
	// Replica is the replica index.
	Replica int
	// Requests is how many requests were routed here.
	Requests int
	// RoutedTokens is the work routed here (prompt + output tokens).
	RoutedTokens int64
	// Result is the replica engine's full result.
	Result *engine.Result
}

// Result aggregates one cluster run.
type Result struct {
	// Policy is the router that produced this run.
	Policy string
	// Replicas is the fleet size.
	Replicas int
	// Duration is the wall time of the run: the slowest replica.
	Duration time.Duration
	// Finished and Failed sum across replicas.
	Finished, Failed int
	// ReqPerSec is total finished requests per wall second.
	ReqPerSec float64
	// TokensPerSec is total computed prompt plus generated tokens per
	// wall second.
	TokensPerSec float64
	// P50TTFT/P99TTFT/P50E2E/P99E2E are latency percentiles over every
	// finished request in the fleet.
	P50TTFT, P99TTFT, P50E2E, P99E2E time.Duration
	// HitRate is the fleet-wide prefix-cache hit rate: cached prompt
	// tokens over cached plus computed prompt tokens (exact aggregate,
	// not a mean of per-replica ratios).
	HitRate float64
	// Imbalance is max/mean of per-replica routed tokens (1.0 = even).
	Imbalance float64
	// MeanKVUtil averages the per-replica mean KV utilization.
	MeanKVUtil float64
	// Shed counts requests the replicas' admission policies dropped
	// (online serving; 0 without an admission policy).
	Shed int
	// Goodput is deadline-meeting finishes per wall second (equals
	// ReqPerSec when no request carries a deadline).
	Goodput float64
	// SLOAttainment is the fraction of finished requests with TTFT at
	// or under Config.SLOTTFT (with no target: the fraction meeting
	// their own deadlines; 1 when neither is set).
	SLOAttainment float64
	// GroupJain is Jain's fairness index over per-group (tenant)
	// served tokens across the whole fleet: 1.0 means every prefix
	// group received an even share of the fleet's work, 1/groups
	// means one group got everything. 1 when no request finished or
	// no request carries a group label.
	GroupJain float64
	// MaxGroupMeanTTFT is the worst per-group mean TTFT — the
	// starvation indicator a fair scheduler bounds: under overload a
	// starving tenant's mean TTFT grows without bound while the
	// fleet-wide mean stays flat.
	MaxGroupMeanTTFT time.Duration
	// StarvedGroups counts groups that were routed at least one
	// request but finished none.
	StarvedGroups int
	// TierHitRate is the fleet-exact host-tier share of all prefill
	// work: Σ restored tokens over Σ (cached + computed) prompt
	// tokens across replicas — the tier counterpart of HitRate.
	TierHitRate float64
	// RestoredTokens and RecomputedTokens sum the per-replica tier
	// restores and the recompute waste; SwapOuts/SwapIns sum the
	// fleet's page/block transfers.
	RestoredTokens, RecomputedTokens int64
	SwapOuts, SwapIns                int64
	// P99Restore is the p99 per-request PCIe restore time over every
	// finished request in the fleet.
	P99Restore time.Duration
	// CachedPromptTokens and ComputedPromptTokens are HitRate's exact
	// numerator and computed remainder summed across replicas —
	// exported so fleet experiments can compare recompute volumes
	// directly instead of back-deriving them from ratios.
	CachedPromptTokens, ComputedPromptTokens int64
	// PeerHits counts fleet-store fetches that extended a replica's
	// local prefix from a peer's host tier; PeerTokens is the prefix
	// length they added, PeerBytes the peer-link wire volume (fetches
	// plus migration moves), and PeerHitRate the peer-served share of
	// all prefill work (the fleet-store counterpart of TierHitRate).
	PeerHits    int
	PeerTokens  int64
	PeerBytes   int64
	PeerHitRate float64
	// Migrations counts live request migrations completed fleet-wide
	// (the sum of per-replica MigratedIn).
	Migrations int
	// Crashes and Restarts count the chaos plan's replica failures
	// applied during ServeOnline; Redispatched is how many in-flight
	// requests from crashed replicas were recovered onto survivors,
	// LostRequests how many died with their replica (recovery off, or
	// no survivor to take them).
	Crashes, Restarts int
	Redispatched      int
	LostRequests      int
	// DirInvalidations counts fleet-directory entries dropped by crash
	// recovery; MigrationRollbacks counts migrations that faulted
	// mid-transfer and rolled back to their source replica.
	DirInvalidations   int
	MigrationRollbacks int
	// FetchRetries, FetchFailures and FetchSkips are the fleet store's
	// peer-transfer outcome counts for this run (zero without the
	// store): retried attempts, holder batches that exhausted the
	// retry bound, and batches skipped before any transfer.
	FetchRetries, FetchFailures, FetchSkips int64
	// PerReplica holds each replica's share, indexed by replica.
	PerReplica []ReplicaResult
}

// Cluster owns N engine replicas and a router. Serve may be called
// repeatedly (replica caches stay warm across calls) but is not safe
// for concurrent use.
type Cluster struct {
	cfg     Config
	router  Router
	engines []*engine.Engine
	// managers holds each replica's manager (same index as engines) —
	// crash recovery needs the core.Crasher surface to cold-restart a
	// replica's memory behind the engine's back.
	managers []core.Manager
	// store is the fleet-wide KV store (nil unless Config.Fleet.Store
	// is on): one prefix directory spanning every replica's host tier
	// plus the peer-transfer path (see internal/fleet).
	store *fleet.Store
	// drainRate is the nominal per-replica serving rate (tokens per
	// simulated second) used to decay Load.Outstanding between
	// arrivals: the cost model's compute-bound token rate.
	drainRate float64
}

// New validates the config and builds the replicas.
func New(cfg Config) (*Cluster, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("cluster: model spec is required")
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 replica, got %d", cfg.Replicas)
	}
	if cfg.Device.Name == "" {
		cfg.Device = gpu.H100()
	}
	newMgr := cfg.NewManager
	if newMgr == nil {
		capacity := cfg.CapacityBytes
		if capacity == 0 {
			budget, err := gpu.KVBudget(cfg.Spec, cfg.Device, 0)
			if err != nil {
				return nil, err
			}
			capacity = budget
		}
		newMgr = func(int) (core.Manager, error) {
			return core.New(core.Config{
				Spec:              cfg.Spec,
				CapacityBytes:     capacity,
				EnablePrefixCache: true,
				RequestAware:      true,
				HostTierBytes:     cfg.HostTierBytes,
			})
		}
	}
	router := cfg.Router
	if router == nil {
		var err error
		router, err = NewRouter(cfg.Policy, cfg.Replicas, cfg.AffinityPrefixTokens, cfg.VNodes)
		if err != nil {
			return nil, err
		}
	}
	c := &Cluster{cfg: cfg, router: router}
	managers := make([]core.Manager, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		mgr, err := newMgr(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d manager: %w", i, err)
		}
		managers = append(managers, mgr)
		scheduler := cfg.Scheduler
		if cfg.NewScheduler != nil {
			if s := cfg.NewScheduler(i); s != nil {
				scheduler = s
			}
		}
		var faults engine.FaultInjector
		if cfg.Chaos.Plan != nil {
			faults = &replicaFaults{plan: cfg.Chaos.Plan, replica: i}
		}
		eng, err := engine.New(engine.Config{
			Spec:           cfg.Spec,
			Device:         cfg.Device,
			Manager:        mgr,
			MaxBatchTokens: cfg.MaxBatchTokens,
			MaxRunning:     cfg.MaxRunning,
			MaxPrefills:    cfg.MaxPrefills,
			Admission:      cfg.Admission,
			Scheduler:      scheduler,
			PreemptMode:    cfg.PreemptMode,
			Faults:         faults,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d engine: %w", i, err)
		}
		if cfg.EventSink != nil {
			sink, replica := cfg.EventSink, i
			eng.SetEventSink(func(ev engine.Event) { sink(replica, ev) })
		}
		c.engines = append(c.engines, eng)
	}
	c.managers = managers
	c.attachFleet(managers)
	// 2 FLOPs per active parameter per token, compute-bound: the same
	// first-order term the cost model charges per scheduled token.
	if f := cfg.Device.FLOPS; f > 0 {
		c.drainRate = f / (2 * float64(cfg.Spec.ActiveParamCount()))
	}
	return c, nil
}

// Router returns the active router (tests and diagnostics).
func (c *Cluster) Router() Router { return c.router }

// Route partitions a request stream across replicas in arrival order
// without running it, returning one slice per replica. Exposed so
// tests and tools can inspect placement; Serve uses the same path.
// Stateful built-in routers are reset at the start of every pass, so
// placement is a pure function of the stream and a Route followed by
// Serve sees the identical assignment (a custom stateful Router keeps
// its own state across passes and forfeits that guarantee).
func (c *Cluster) Route(reqs []workload.Request) [][]workload.Request {
	assigned, _ := c.route(reqs)
	return assigned
}

// route is Route plus the final per-replica Load vector.
func (c *Cluster) route(reqs []workload.Request) ([][]workload.Request, []Load) {
	if r, ok := c.router.(resettable); ok {
		r.reset()
	}
	n := len(c.engines)
	assigned := make([][]workload.Request, n)
	loads := make([]Load, n)
	for i := range loads {
		loads[i].Replica = i
	}
	stream := append([]workload.Request(nil), reqs...)
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Arrival < stream[j].Arrival })
	lastArrival := time.Duration(0)
	for i := range stream {
		r := &stream[i]
		// Drain outstanding work at the nominal serving rate for the
		// time elapsed since the previous arrival.
		if dt := (r.Arrival - lastArrival).Seconds(); dt > 0 && c.drainRate > 0 {
			for j := range loads {
				loads[j].Outstanding -= c.drainRate * dt
				if loads[j].Outstanding < 0 {
					loads[j].Outstanding = 0
				}
			}
		}
		lastArrival = r.Arrival
		rep := c.router.Route(r, loads)
		if rep < 0 || rep >= n {
			rep = 0 // defensive: a broken custom router must not panic the run
		}
		work := int64(len(r.Prompt) + r.OutputLen)
		loads[rep].Requests++
		loads[rep].RoutedTokens += work
		loads[rep].Outstanding += float64(work)
		assigned[rep] = append(assigned[rep], *r)
	}
	return assigned, loads
}

// Serve routes the request stream and runs every replica to completion
// concurrently, then aggregates the fleet result. The simulation is
// deterministic: placement is computed serially before any replica
// starts, and each replica's engine is deterministic on its share.
func (c *Cluster) Serve(reqs []workload.Request) (*Result, error) {
	assigned, loads := c.route(reqs)
	n := len(c.engines)
	results := make([]*engine.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range c.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.engines[i].Run(assigned[i])
			if err != nil {
				errs[i] = fmt.Errorf("cluster: replica %d: %w", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return c.aggregate(loads, results, groupCounts(reqs)), nil
}

// groupCounts tallies the request stream by group label (every
// request is routed somewhere, so this is the fleet's routed-group
// census).
func groupCounts(reqs []workload.Request) map[int64]int {
	out := make(map[int64]int)
	for i := range reqs {
		out[reqs[i].Group]++
	}
	return out
}

// aggregate folds per-replica results into the fleet view.
// routedGroups maps each group label to the number of requests routed
// anywhere in the fleet (starvation accounting needs the groups that
// got nothing back).
func (c *Cluster) aggregate(loads []Load, results []*engine.Result, routedGroups map[int64]int) *Result {
	out := &Result{
		Policy:   c.router.Name(),
		Replicas: len(results),
	}
	var cached, computed, generated, restored int64
	var ttfts, e2es, restores []time.Duration
	deadlineMet := 0
	shares := make([]float64, len(results))
	type groupAcc struct {
		tokens   int64
		finished int
		ttftSum  time.Duration
	}
	groups := make(map[int64]*groupAcc)
	for i, res := range results {
		shares[i] = float64(loads[i].RoutedTokens)
		out.PerReplica = append(out.PerReplica, ReplicaResult{
			Replica:      i,
			Requests:     loads[i].Requests,
			RoutedTokens: loads[i].RoutedTokens,
			Result:       res,
		})
		out.Finished += res.Finished
		out.Failed += res.Failed
		out.Shed += res.Shed
		if res.Duration > out.Duration {
			out.Duration = res.Duration
		}
		cached += res.CachedPromptTokens
		computed += res.ComputedPromptTokens
		generated += res.GeneratedTokens
		restored += res.RestoredTokens
		out.RestoredTokens += res.RestoredTokens
		out.RecomputedTokens += res.RecomputedTokens
		out.SwapOuts += res.SwapOuts
		out.SwapIns += res.SwapIns
		out.PeerHits += res.PeerHits
		out.PeerTokens += res.PeerTokens
		out.PeerBytes += res.PeerBytes
		out.Migrations += res.MigratedIn
		out.MeanKVUtil += res.MeanKVUtil
		for _, rm := range res.PerRequest {
			ttfts = append(ttfts, rm.TTFT)
			e2es = append(e2es, rm.E2E)
			restores = append(restores, rm.RestoreTime)
			if rm.Deadline == 0 || rm.E2E <= rm.Deadline {
				deadlineMet++
			}
			g := groups[rm.Group]
			if g == nil {
				g = &groupAcc{}
				groups[rm.Group] = g
			}
			g.tokens += int64(rm.Tokens)
			g.finished++
			g.ttftSum += rm.TTFT
		}
	}
	// Cross-replica fairness and starvation over prefix groups. Sorted
	// traversal keeps the float accumulation order (and so Jain's
	// rounding) identical across runs.
	groupTokens := make([]float64, 0, len(groups))
	for _, g := range detmap.Sorted(groups) {
		groupTokens = append(groupTokens, float64(g.tokens))
		if mean := g.ttftSum / time.Duration(g.finished); mean > out.MaxGroupMeanTTFT {
			out.MaxGroupMeanTTFT = mean
		}
	}
	out.GroupJain = metrics.Jain(groupTokens)
	for g, routed := range routedGroups {
		if routed > 0 && groups[g] == nil {
			out.StarvedGroups++
		}
	}
	if n := len(results); n > 0 {
		out.MeanKVUtil /= float64(n)
	}
	if out.Duration > 0 {
		out.ReqPerSec = float64(out.Finished) / out.Duration.Seconds()
		out.TokensPerSec = float64(computed+generated) / out.Duration.Seconds()
		out.Goodput = metrics.Goodput(deadlineMet, out.Duration)
	}
	if c.cfg.SLOTTFT > 0 {
		out.SLOAttainment = metrics.Attainment(ttfts, c.cfg.SLOTTFT)
	} else {
		out.SLOAttainment = metrics.Fraction(deadlineMet, out.Finished)
	}
	out.CachedPromptTokens = cached
	out.ComputedPromptTokens = computed
	if work := cached + computed; work > 0 {
		out.HitRate = float64(cached) / float64(work)
		out.TierHitRate = float64(restored) / float64(work)
		out.PeerHitRate = float64(out.PeerTokens) / float64(work)
	}
	out.P99Restore = metrics.Percentile(restores, 99)
	out.Imbalance = metrics.Imbalance(shares)
	tq := metrics.Percentiles(ttfts, 50, 99)
	eq := metrics.Percentiles(e2es, 50, 99)
	out.P50TTFT, out.P99TTFT = tq[0], tq[1]
	out.P50E2E, out.P99E2E = eq[0], eq[1]
	return out
}
