package analysis

import (
	"go/ast"
	"go/types"
)

// Capability enforces comma-ok handling on type assertions to the
// optional capability interfaces (TierManager, Forker, Crasher,
// AdmissionPreempter): a baseline manager legitimately lacks any of
// them, so a single-result assertion is a latent panic that only fires
// on the degraded configuration no golden covers. `v, ok :=` and
// `v, _ :=` (deliberate nil-degrade, checked at the use site) are both
// fine; type switches are fine; the bare expression form `x.(T)` is
// not. Unlike the other analyzers this one checks _test.go files too —
// a test that asserts capabilities panics the same way on a fixture
// without them.
var Capability = &Analyzer{
	Name: "capability",
	Doc:  "require comma-ok on type assertions to capability interfaces",
	Run:  runCapability,
}

// capabilityNames are the optional-capability interfaces; matching is
// by interface name, so fixtures and future homes of these interfaces
// are covered without importing the packages that declare them.
var capabilityNames = map[string]bool{
	"TierManager":        true,
	"Forker":             true,
	"Crasher":            true,
	"AdmissionPreempter": true,
}

func runCapability(pass *Pass) error {
	for _, f := range pass.Files {
		// parents tracks the path from the file root to the node under
		// inspection so an assertion can see its enclosing statement.
		var parents []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				parents = parents[:len(parents)-1]
				return true
			}
			if ta, ok := n.(*ast.TypeAssertExpr); ok && ta.Type != nil {
				checkAssert(pass, f, ta, parents)
			}
			parents = append(parents, n)
			return true
		})
	}
	return nil
}

func checkAssert(pass *Pass, f *ast.File, ta *ast.TypeAssertExpr, parents []ast.Node) {
	tv, ok := pass.Info.Types[ta.Type]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || !capabilityNames[named.Obj().Name()] {
		return
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return
	}
	// Comma-ok contexts: `v, ok := x.(T)` / `v, ok = x.(T)` /
	// `var v, ok = x.(T)`. The parent chain ends
	// [..., AssignStmt|ValueSpec, (nothing between)].
	if len(parents) > 0 {
		switch p := parents[len(parents)-1].(type) {
		case *ast.AssignStmt:
			if len(p.Lhs) == 2 && len(p.Rhs) == 1 && p.Rhs[0] == ast.Expr(ta) {
				return
			}
		case *ast.ValueSpec:
			if len(p.Names) == 2 && len(p.Values) == 1 && p.Values[0] == ast.Expr(ta) {
				return
			}
		}
	}
	if pass.suppressed(f, "cap-ok", ta.Pos()) {
		return
	}
	pass.Reportf(ta.Pos(), "single-result assertion to capability interface %s panics when the value lacks the capability; use the `, ok` form (or //jenga:cap-ok <why>)", named.Obj().Name())
}
