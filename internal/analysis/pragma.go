package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Pragma is one parsed //jenga:<kind> <arg> comment. The grammar is a
// single namespace:
//
//	//jenga:concurrent <why>   file pragma — the whole file is
//	                           allow-listed for goroutines, sync and
//	                           channels (confine).
//	//jenga:hotpath            function annotation — the function's body
//	                           is held to the zero-alloc contract
//	                           (hotpath). Must appear in the func's doc
//	                           comment.
//	//jenga:order-ok <why>     line suppression for maporder.
//	//jenga:det-ok <why>       line suppression for detsource.
//	//jenga:alloc-ok <why>     line suppression for hotpath.
//	//jenga:cap-ok <why>       line suppression for capability.
//
// Line suppressions attach to the flagged line itself or the line
// directly above it, and every *-ok pragma must carry a non-empty
// justification — a bare pragma is reported instead of honored.
type Pragma struct {
	Kind string
	Arg  string
	Pos  token.Pos
}

// FilePragmas is every //jenga: pragma of one file, pre-indexed.
type FilePragmas struct {
	// Concurrent is the file-level //jenga:concurrent pragma, if any.
	Concurrent *Pragma
	// byLine holds line suppressions keyed by the line they sit on.
	byLine map[int][]*Pragma
	// hotpath holds the body-start offsets of functions annotated
	// //jenga:hotpath via their doc comment.
	hotpath map[*ast.FuncDecl]*Pragma
}

const pragmaPrefix = "//jenga:"

func parsePragma(c *ast.Comment) *Pragma {
	if !strings.HasPrefix(c.Text, pragmaPrefix) {
		return nil
	}
	rest := c.Text[len(pragmaPrefix):]
	kind, arg, _ := strings.Cut(rest, " ")
	kind = strings.TrimSpace(kind)
	if kind == "" {
		return nil
	}
	return &Pragma{Kind: kind, Arg: strings.TrimSpace(arg), Pos: c.Pos()}
}

// scanPragmas indexes every //jenga: pragma in f.
func scanPragmas(fset *token.FileSet, f *ast.File) *FilePragmas {
	fp := &FilePragmas{
		byLine:  map[int][]*Pragma{},
		hotpath: map[*ast.FuncDecl]*Pragma{},
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			p := parsePragma(c)
			if p == nil {
				continue
			}
			switch p.Kind {
			case "concurrent":
				if fp.Concurrent == nil {
					fp.Concurrent = p
				}
			case "hotpath":
				// Attached to a function below, via its doc comment.
			default:
				line := fset.Position(p.Pos).Line
				fp.byLine[line] = append(fp.byLine[line], p)
			}
		}
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			if p := parsePragma(c); p != nil && p.Kind == "hotpath" {
				fp.hotpath[fn] = p
				break
			}
		}
	}
	return fp
}

// linePragma returns a pragma of the given kind on line or line-1.
func (fp *FilePragmas) linePragma(kind string, line int) *Pragma {
	for _, l := range []int{line, line - 1} {
		for _, p := range fp.byLine[l] {
			if p.Kind == kind {
				return p
			}
		}
	}
	return nil
}

// HotpathPragma returns fn's //jenga:hotpath annotation, if any.
func (fp *FilePragmas) HotpathPragma(fn *ast.FuncDecl) *Pragma {
	return fp.hotpath[fn]
}
