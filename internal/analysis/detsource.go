package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detsource forbids sources of nondeterminism in sim packages, whose
// results must be a pure function of (workload, config, seed): wall-
// clock reads (time.Now/Since/Until), the implicitly-seeded global
// math/rand source, and environment reads. Test files and the entry
// points (cmd, examples) are exempt; the one legitimate debug knob in
// the tree carries //jenga:det-ok. Seeded generators
// (rand.New(rand.NewSource(seed))) stay legal: only package-level
// math/rand functions — the shared global source — are flagged.
var Detsource = &Analyzer{
	Name: "detsource",
	Doc:  "forbid wall-clock, global rand, and env reads in sim packages",
	Run:  runDetsource,
}

// detBanned maps package path → banned package-level identifiers. An
// empty set means "every package-level function except constructors".
var detBanned = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
	// math/rand package-level functions draw from the shared global
	// source; the nil set is interpreted as "all but New*".
	"math/rand":    nil,
	"math/rand/v2": nil,
}

func runDetsource(pass *Pass) error {
	if !isSimPkg(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			// Only qualified identifiers (pkg.Fn), not methods on
			// values like r.Intn for a seeded *rand.Rand.
			pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			banned, watched := detBanned[path]
			if !watched {
				return true
			}
			name := sel.Sel.Name
			if banned != nil && !banned[name] {
				return true
			}
			if banned == nil {
				// Global-source rand: constructors are the escape
				// hatch (rand.New, NewSource, NewPCG, NewChaCha8, …),
				// and referring to types (rand.Rand, rand.Source) is
				// always fine.
				if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				if strings.HasPrefix(name, "New") {
					return true
				}
			}
			if pass.suppressed(f, "det-ok", sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s in sim package %s: results must be a pure function of (workload, config, seed); inject the value through config, or justify with //jenga:det-ok <why>", path, name, pass.Path)
			return true
		})
	}
	return nil
}
