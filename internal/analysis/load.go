package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked unit ready for analysis.
type Package struct {
	// Path is the gating path: the import path, with everything up to
	// and including an analysistest-style "testdata/src/" stripped so
	// fixture packages gate like the real tree.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath   string
	ForTest      string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load type-checks the packages matching patterns (relative to dir, the
// module root) without golang.org/x/tools and without the network: it
// asks `go list -export` to compile export data for every dependency
// into the build cache, parses the target sources, and type-checks them
// with the stdlib gc importer reading that export data. When
// includeTests is set, in-package _test.go files join their package's
// unit and external test packages are checked as their own unit.
func Load(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles",
	}, patterns...))
	if err != nil {
		return nil, err
	}

	exportArgs := []string{"-export", "-deps"}
	if includeTests {
		exportArgs = append(exportArgs, "-test")
	}
	exportArgs = append(exportArgs, "-json=ImportPath,ForTest,Export")
	universe, err := goList(dir, append(exportArgs, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range universe {
		// Skip the synthetic per-test recompilations ("p [p.test]")
		// and test binaries: the plain package's export data is the
		// one every import resolves against.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") || p.Export == "" {
			continue
		}
		exports[p.ImportPath] = p.Export
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var pkgs []*Package
	for _, t := range targets {
		units := [][]string{t.GoFiles}
		paths := []string{t.ImportPath}
		if includeTests {
			units[0] = append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
			if len(t.XTestGoFiles) > 0 {
				units = append(units, t.XTestGoFiles)
				paths = append(paths, t.ImportPath+"_test")
			}
		}
		for i, names := range units {
			if len(names) == 0 {
				continue
			}
			pkg, err := check(fset, imp, paths[i], t.Dir, names)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, errors.Join(terrs...))
	}
	return &Package{
		Path:  virtualPath(path),
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// virtualPath strips an analysistest-style testdata/src/ prefix so
// fixture packages gate like real packages.
func virtualPath(path string) string {
	if i := strings.Index(path, "testdata/src/"); i >= 0 {
		return path[i+len("testdata/src/"):]
	}
	return path
}

func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
