package analysis_test

import (
	"testing"

	"jenga/internal/analysis"
	"jenga/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package under testdata/src; the
// fixture paths under the virtual jenga/ tree double as tests of the
// package gates (golden-affecting, confined, sim).

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Maporder, "jenga/internal/core/mapordertest")
}

func TestDetsource(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detsource, "jenga/internal/engine/detsourcetest")
}

func TestConfine(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Confine, "jenga/internal/sched/confinetest")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Hotpath, "hotpathtest")
}

func TestCapability(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Capability, "captest")
}

// TestGatesSkipOutsidePackages pins the negative side of the package
// gates: the same constructs the fixtures flag are legal in a package
// outside the golden/confined/sim sets.
func TestGatesSkipOutsidePackages(t *testing.T) {
	for _, a := range []*analysis.Analyzer{analysis.Maporder, analysis.Detsource, analysis.Confine} {
		analysistest.Run(t, "testdata", a, "ungated")
	}
}
