package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Confine forbids concurrency in the goroutine-confined packages: the
// engine and everything below it (core, sched) is single-goroutine by
// contract — DESIGN.md's confinement rules — and the wrappers that do
// run goroutines (serve's pump, cluster's shard loops, the fleet
// directory's lock) live in files explicitly allow-listed with a
// //jenga:concurrent <why> file pragma. Flagged constructs: go
// statements, select, channel sends/receives/close/make(chan), and any
// use of sync or sync/atomic. Test files are exempt (test harnesses
// may drive the engine concurrently on purpose, under -race).
var Confine = &Analyzer{
	Name: "confine",
	Doc:  "forbid goroutines, sync, and channel ops outside //jenga:concurrent files",
	Run:  runConfine,
}

func runConfine(pass *Pass) error {
	if !isConfinedPkg(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		if pr := pass.FilePragmas(f).Concurrent; pr != nil {
			if pr.Arg == "" {
				pass.Reportf(pr.Pos, "//jenga:concurrent needs a justification (\"//jenga:concurrent <why>\")")
			}
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in goroutine-confined package %s: move the concurrency into a //jenga:concurrent file or a wrapper package", pass.Path)
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in goroutine-confined package %s", pass.Path)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in goroutine-confined package %s", pass.Path)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in goroutine-confined package %s", pass.Path)
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) >= 1 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						switch id.Name {
						case "make":
							if _, isChan := n.Args[0].(*ast.ChanType); isChan {
								pass.Reportf(n.Pos(), "make(chan) in goroutine-confined package %s", pass.Path)
							}
						case "close":
							if tv, ok := pass.Info.Types[n.Args[0]]; ok {
								if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
									pass.Reportf(n.Pos(), "close(chan) in goroutine-confined package %s", pass.Path)
								}
							}
						}
					}
				}
			case *ast.SelectorExpr:
				if pkgID, ok := n.X.(*ast.Ident); ok {
					if pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName); ok {
						switch pkgName.Imported().Path() {
						case "sync", "sync/atomic":
							pass.Reportf(n.Pos(), "%s.%s in goroutine-confined package %s", pkgName.Imported().Path(), n.Sel.Name, pass.Path)
						}
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel in goroutine-confined package %s", pass.Path)
					}
				}
			}
			return true
		})
	}
	return nil
}
