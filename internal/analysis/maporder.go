package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `range` over a map in golden-affecting packages. Map
// iteration order is randomized per run, so any such loop whose body
// can influence results, event order, or allocation order silently
// breaks the bit-identity the goldens and the sim anchor
// (126.11533015205485) pin. A loop survives only if the body is
// provably order-insensitive — every statement merely aggregates into
// commutative accumulators or writes cells keyed by the (unique) loop
// key — or the site carries //jenga:order-ok <why>.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid nondeterministic map iteration in golden-affecting packages",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	if !isGoldenPkg(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.suppressed(f, "order-ok", rng.Pos()) {
				return true
			}
			if orderInsensitive(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(), "range over map %s in golden-affecting package %s: iteration order is nondeterministic; iterate sorted keys, or justify with //jenga:order-ok <why>", typeLabel(tv.Type), pass.Path)
			return true
		})
	}
	return nil
}

func typeLabel(t types.Type) string {
	s := t.String()
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return s
}

// orderInsensitive conservatively proves the loop body produces the
// same state for every iteration order. Allowed statements:
//
//   - x++ / x-- and commutative compound assignments (+=, -=, *=, |=,
//     &=, ^=)
//   - x = min(x, e) / x = max(x, e) running extrema
//   - writes and deletes keyed exactly by the loop key (m2[k] = e,
//     delete(m2, k)): range keys are unique, so cell writes commute
//   - plain assignment to loop-body locals (invisible across
//     iterations)
//   - nested ranges over pure operands whose bodies only aggregate
//     (no keyed writes inside — the inner iteration multiplies every
//     write)
//   - local := definitions, if/else with the same properties, blocks,
//     and continue
//
// Everything in an allowed statement must also be call-free (only
// builtins len/cap/min/max and type conversions), since an arbitrary
// call can observe or mutate order-dependent state.
func orderInsensitive(pass *Pass, rng *ast.RangeStmt) bool {
	key, _ := rng.Key.(*ast.Ident)
	ctx := &proofCtx{pass: pass, key: key, locals: map[types.Object]bool{}}
	// Anything defined inside the body is per-iteration state: writes
	// to it cannot leak across iteration orders.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				ctx.locals[obj] = true
			}
		}
		return true
	})
	for _, stmt := range rng.Body.List {
		if !ctx.stmt(stmt) {
			return false
		}
	}
	return true
}

type proofCtx struct {
	pass   *Pass
	key    *ast.Ident
	locals map[types.Object]bool
}

func (c *proofCtx) stmt(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return pureExpr(c.pass, s.X)
	case *ast.AssignStmt:
		return c.assign(s)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmt(s.Init) {
			return false
		}
		if !pureExpr(c.pass, s.Cond) {
			return false
		}
		if !c.stmt(s.Body) {
			return false
		}
		return s.Else == nil || c.stmt(s.Else)
	case *ast.BlockStmt:
		for _, st := range s.List {
			if !c.stmt(st) {
				return false
			}
		}
		return true
	case *ast.RangeStmt:
		// A nested loop over a pure operand may aggregate, but not do
		// keyed writes: each inner element would repeat the write, so
		// the unique-key argument no longer holds.
		if !pureExpr(c.pass, s.X) {
			return false
		}
		inner := &proofCtx{pass: c.pass, key: nil, locals: c.locals}
		return inner.stmt(s.Body)
	case *ast.BranchStmt:
		// A conditional break decides *which* iteration runs last —
		// order-dependent. Only continue is safe.
		return s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		// delete(other, k): unique keys commute.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
				return keyedBy(c.pass, c.key, call.Args[1]) && pureExpr(c.pass, call.Args[0])
			}
		}
		return false
	case *ast.EmptyStmt:
		return true
	default:
		return false
	}
}

func (c *proofCtx) assign(s *ast.AssignStmt) bool {
	for _, rhs := range s.Rhs {
		if !pureExpr(c.pass, rhs) {
			return false
		}
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.DEFINE:
		// Loop-local temporaries are invisible across iterations.
		return true
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// Plain write to a loop-body local.
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			if obj := c.pass.Info.ObjectOf(id); obj != nil && c.locals[obj] {
				return true
			}
		}
		// Cell write keyed by the unique loop key.
		if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			return keyedBy(c.pass, c.key, ix.Index) && pureExpr(c.pass, ix.X)
		}
		// Running extremum: x = min/max(..., x, ...).
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "min" || id.Name == "max") {
				lhs, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				for _, arg := range call.Args {
					if keyedBy(c.pass, lhs, arg) {
						return true
					}
				}
			}
		}
		return false
	default:
		return false
	}
}

// keyedBy reports whether expr is exactly the identifier id (the same
// object, not merely the same name, so shadowing cannot fool it).
func keyedBy(pass *Pass, id *ast.Ident, expr ast.Expr) bool {
	if id == nil {
		return false
	}
	e, ok := expr.(*ast.Ident)
	if !ok || e.Name != id.Name {
		return false
	}
	if eo, io := pass.Info.ObjectOf(e), pass.Info.ObjectOf(id); eo != nil && io != nil {
		return eo == io
	}
	return true
}

// pureExpr walks expr rejecting any call that is not a builtin
// len/cap/min/max or a type conversion.
func pureExpr(pass *Pass, expr ast.Expr) bool {
	pure := true
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return pure
		}
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return pure // conversion
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap", "min", "max":
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					return pure
				}
			}
		}
		pure = false
		return false
	})
	return pure
}
