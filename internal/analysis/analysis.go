// Package analysis is jengalint: a suite of static analyzers that
// machine-enforce the determinism, confinement, and hot-path contracts
// the golden tests and the sim anchor rest on. The API deliberately
// mirrors golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic)
// but is built on the standard library only — go/ast, go/types and
// export data from `go list -export` — so the suite compiles from the
// module itself and runs fully offline, unlike the network-fetched
// staticcheck pin.
//
// Analyzers:
//
//	maporder   — no `range` over a map in golden-affecting packages
//	             unless the loop body is provably order-insensitive or
//	             the site carries //jenga:order-ok <why>.
//	detsource  — no wall-clock reads (time.Now/Since/Until), global
//	             math/rand, or environment reads in sim packages.
//	confine    — no go statements, sync primitives, or channel ops in
//	             goroutine-confined packages outside files that carry
//	             the //jenga:concurrent <why> pragma.
//	hotpath    — functions annotated //jenga:hotpath may not call fmt,
//	             allocate maps or closures, or grow a nil local slice.
//	capability — type assertions to a capability interface must use the
//	             comma-ok form so a missing capability degrades instead
//	             of panicking.
//
// The pragma grammar is documented in DESIGN.md ("Determinism
// contract") and implemented in pragma.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors the x/tools analysis.Analyzer
// shape so the checks port unchanged if the dependency ever lands.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package path analyzers gate on. For packages under
	// an analysistest-style testdata/src tree it is the virtual path
	// relative to testdata/src, so package-gated analyzers fire on
	// fixtures the same way they fire on the real tree.
	Path string

	report  func(Diagnostic)
	pragmas map[*ast.File]*FilePragmas
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f is a _test.go file. detsource, maporder
// and confine exempt test files (the goldens themselves range over
// result maps freely); capability checks them too, because a
// single-result capability assertion panics the same way in a test.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// FilePragmas returns the parsed //jenga: pragmas of f.
func (p *Pass) FilePragmas(f *ast.File) *FilePragmas {
	if fp, ok := p.pragmas[f]; ok {
		return fp
	}
	fp := scanPragmas(p.Fset, f)
	p.pragmas[f] = fp
	return fp
}

// suppressed reports whether a finding at pos inside f is suppressed by
// a line pragma of the given kind (same line or the line above). A bare
// pragma with no justification does not suppress — it is itself
// reported, so every suppression in the tree explains why it is safe.
func (p *Pass) suppressed(f *ast.File, kind string, pos token.Pos) bool {
	pr := p.FilePragmas(f).linePragma(kind, p.Fset.Position(pos).Line)
	if pr == nil {
		return false
	}
	if pr.Arg == "" {
		p.Reportf(pr.Pos, "//jenga:%s needs a justification (\"//jenga:%s <why>\")", kind, kind)
		return false
	}
	return true
}

// pathIn reports whether path is pkg or a package under pkg/.
func pathIn(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}

// goldenPkgs are the packages whose outputs are pinned by golden tests
// and the sim anchor: one unordered map iteration on a result path
// breaks bit-identity. maporder guards them.
var goldenPkgs = []string{
	"jenga/internal/core",
	"jenga/internal/engine",
	"jenga/internal/sched",
	"jenga/internal/cluster",
	"jenga/internal/fleet",
	"jenga/internal/chaos",
	"jenga/internal/workload",
}

func isGoldenPkg(path string) bool {
	for _, g := range goldenPkgs {
		if pathIn(path, g) {
			return true
		}
	}
	return false
}

// confinedPkgs run goroutine-confined by contract: the engine and
// everything under it is single-goroutine, and the concurrent wrappers
// (serve's pump, cluster's shard loops, the fleet directory lock) are
// confined to files that carry the //jenga:concurrent pragma.
var confinedPkgs = []string{
	"jenga/internal/core",
	"jenga/internal/engine",
	"jenga/internal/sched",
	"jenga/internal/serve",
	"jenga/internal/cluster",
	"jenga/internal/fleet",
}

func isConfinedPkg(path string) bool {
	for _, c := range confinedPkgs {
		if pathIn(path, c) {
			return true
		}
	}
	return false
}

// isSimPkg reports whether path is part of the simulation whose results
// must be a pure function of (workload, config, seed). Everything in
// the module is, except the entry points (cmd, examples), the wall-
// clock benchmark harness (internal/bench measures real time by
// design), and this linter.
func isSimPkg(path string) bool {
	if path != "jenga" && !strings.HasPrefix(path, "jenga/") {
		return false
	}
	for _, ex := range []string{
		"jenga/cmd",
		"jenga/examples",
		"jenga/internal/bench",
		"jenga/internal/analysis",
	} {
		if pathIn(path, ex) {
			return false
		}
	}
	return true
}

// All enumerates the suite in report order.
func All() []*Analyzer {
	return []*Analyzer{Maporder, Detsource, Confine, Hotpath, Capability}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var as []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		as = append(as, a)
	}
	return as, nil
}

// RunAnalyzers applies each analyzer to each package and returns all
// diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	var diags []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		pragmas := map[*ast.File]*FilePragmas{}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				pragmas:  pragmas,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if fset != nil {
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return pi.Column < pj.Column
		})
	}
	return diags, fset, nil
}
