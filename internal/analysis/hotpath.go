package analysis

import (
	"go/ast"
	"go/types"
)

// Hotpath holds functions annotated //jenga:hotpath — the zero-alloc
// set whose budget alloc_budget_test.go pins with
// testing.AllocsPerRun — to the allocation contract: no fmt calls, no
// map or closure allocation, and no growing a nil local slice (the
// amortized scratch buffers that make these paths zero-alloc are
// struct fields, never loop-local slices born nil). Cold branches that
// must allocate move to an unannotated helper or carry
// //jenga:alloc-ok <why>. The check is per-function, not transitive:
// annotate every function of a measured chain.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "enforce the zero-alloc contract in //jenga:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		fp := pass.FilePragmas(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fp.HotpathPragma(fn) == nil {
				continue
			}
			checkHotFunc(pass, f, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, f *ast.File, fn *ast.FuncDecl) {
	// Nil-born local slices: `var x []T` declared in this function.
	nilSlices := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					nilSlices[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !pass.suppressed(f, "alloc-ok", n.Pos()) {
				pass.Reportf(n.Pos(), "closure in //jenga:hotpath function %s may allocate per call; hoist it or justify with //jenga:alloc-ok <why>", fn.Name.Name)
			}
			return false
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !pass.suppressed(f, "alloc-ok", n.Pos()) {
						pass.Reportf(n.Pos(), "map literal in //jenga:hotpath function %s allocates; reuse a field or justify with //jenga:alloc-ok <why>", fn.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, f, fn, n, nilSlices)
		}
		return true
	})
}

func checkHotCall(pass *Pass, f *ast.File, fn *ast.FuncDecl, call *ast.CallExpr, nilSlices map[types.Object]bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
			return
		}
		switch fun.Name {
		case "make":
			if len(call.Args) == 0 {
				return
			}
			if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.IsType() {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if !pass.suppressed(f, "alloc-ok", call.Pos()) {
						pass.Reportf(call.Pos(), "make(map) in //jenga:hotpath function %s allocates; reuse a field or justify with //jenga:alloc-ok <why>", fn.Name.Name)
					}
				}
			}
		case "append":
			if len(call.Args) == 0 {
				return
			}
			id, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return
			}
			if obj := pass.Info.ObjectOf(id); obj != nil && nilSlices[obj] {
				if !pass.suppressed(f, "alloc-ok", call.Pos()) {
					pass.Reportf(call.Pos(), "append to nil-born local slice %s in //jenga:hotpath function %s allocates on first growth; use an amortized scratch field or justify with //jenga:alloc-ok <why>", id.Name, fn.Name.Name)
				}
			}
		}
	case *ast.SelectorExpr:
		pkgID, ok := fun.X.(*ast.Ident)
		if !ok {
			return
		}
		if pkgName, ok := pass.Info.Uses[pkgID].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
			if !pass.suppressed(f, "alloc-ok", call.Pos()) {
				pass.Reportf(call.Pos(), "fmt.%s in //jenga:hotpath function %s allocates (interface boxing + formatting); move it to a cold helper or justify with //jenga:alloc-ok <why>", fun.Sel.Name, fn.Name.Name)
			}
		}
	}
}
