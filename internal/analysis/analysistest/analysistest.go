// Package analysistest runs one analyzer over a fixture package under
// testdata/src and checks its diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only. Fixture packages are loaded through the
// same `go list -export` loader jengalint uses, and their package path
// relative to testdata/src is the path analyzers gate on — so a
// fixture under testdata/src/jenga/internal/core/... exercises the
// golden-affecting and confined package gates exactly like the real
// tree.
//
// Want syntax: one or more quoted regexps after the word want, in a
// line or block comment on the line the diagnostic is reported at:
//
//	for k := range m { // want "range over map"
//	x /* want "a" "b" */
//
// Every diagnostic must match an unconsumed want on its line, and
// every want must be consumed.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"jenga/internal/analysis"
)

// Run loads testdata/src/<pkgpath> and checks a's diagnostics against
// the fixture's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkgpath)
	pkgs, err := analysis.Load(dir, true, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, fset, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := fset.Position(c.Pos())
					for _, re := range parseWants(t, pos, c) {
						k := wantKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[k][matched] = nil // consumed
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// parseWants extracts the quoted regexps of a want comment.
func parseWants(t *testing.T, pos token.Position, c *ast.Comment) []*regexp.Regexp {
	text := strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
	text = strings.TrimPrefix(text, "//")
	i := strings.Index(text, "want ")
	if i < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[i+len("want "):])
	var res []*regexp.Regexp
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q: %v", pos, q, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
		}
		res = append(res, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(res) == 0 {
		t.Fatalf("%s: want comment with no patterns: %q", pos, c.Text)
	}
	return res
}
