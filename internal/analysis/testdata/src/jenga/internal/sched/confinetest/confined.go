// Package confinetest is the confine fixture: its virtual path sits
// under jenga/internal/sched, a goroutine-confined package. This file
// carries no pragma, so every concurrency construct is flagged; the
// twin file concurrent.go is allow-listed and clean.
package confinetest

import "sync"

var mu sync.Mutex // want "sync.Mutex in goroutine-confined package"

func fanOut(work []func()) {
	var wg sync.WaitGroup // want "sync.WaitGroup in goroutine-confined package"
	for _, w := range work {
		wg.Add(1)
		go func() { // want "go statement in goroutine-confined package"
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

func pump(n int) int {
	ch := make(chan int, n) // want "make\\(chan\\) in goroutine-confined package"
	ch <- 1                 // want "channel send in goroutine-confined package"
	select {                // want "select in goroutine-confined package"
	case v := <-ch: // want "channel receive in goroutine-confined package"
		ch <- v // want "channel send in goroutine-confined package"
	default:
	}
	close(ch) // want "close\\(chan\\) in goroutine-confined package"
	total := 0
	for v := range ch { // want "range over channel in goroutine-confined package"
		total += v
	}
	return total
}
