// This file is the allow-listed twin of confined.go: the justified
// //jenga:concurrent pragma exempts the whole file, so the same
// constructs produce no findings.
//
//jenga:concurrent fixture twin of confined.go; the harness drives these workers concurrently on purpose
package confinetest

import "sync"

func fanOutAllowed(work []func()) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for _, w := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	<-done
}
