// A bare //jenga:concurrent still exempts the file (the pragma marks
// the file as a deliberate concurrency boundary either way) but is
// itself reported until it carries a justification — so the only
// finding in this file is at the pragma, not at the go statement.
//
/* want "needs a justification" */ //jenga:concurrent
package confinetest

func bareAllowed(w func()) {
	go w()
}
