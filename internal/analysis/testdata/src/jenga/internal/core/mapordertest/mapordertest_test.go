package mapordertest

// maporder exempts _test.go files — the goldens themselves range over
// result maps freely — so this order-sensitive loop is not flagged.
func collectForAssert(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
