// Package mapordertest is the maporder fixture: its virtual package
// path sits under jenga/internal/core, a golden-affecting package, so
// the analyzer gates on.
package mapordertest

// Positive: appending in map order leaks the iteration order.
func collect(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "range over map"
		out = append(out, v)
	}
	return out
}

// Positive: calling out of the loop can observe order.
func emit(m map[int]int, sink func(int)) {
	for _, v := range m { // want "range over map"
		sink(v)
	}
}

// Positive: a conditional break decides which iteration runs last.
func firstOver(m map[int]int, lim int) int {
	found := 0
	for _, v := range m { // want "range over map"
		if v > lim {
			found = v
			break
		}
	}
	return found
}

// Negative: counters, commutative accumulation, extrema, and writes
// keyed by the unique loop key are provably order-insensitive.
func aggregate(m map[int]int) (int, int, int) {
	n, sum, most := 0, 0, 0
	seen := make(map[int]bool)
	for k, v := range m {
		n++
		sum += v
		most = max(most, v)
		seen[k] = true
		if v == 0 {
			continue
		}
	}
	return n, sum, most
}

// Negative: nested ranges that only aggregate.
func countAll(m map[int][]int, who int) int {
	n := 0
	for _, vs := range m {
		for _, v := range vs {
			if v == who {
				n++
			}
		}
	}
	return n
}

// Negative: writes and deletes keyed by the unique loop key commute,
// and loop-body locals are invisible across iterations.
func overlay(dst, src map[int]int) {
	for k, v := range src {
		old := dst[k]
		if old < v {
			dst[k] = v
		}
		if v == 0 {
			delete(dst, k)
		}
	}
}

// Suppressed: a justified pragma on the line above.
func justified(m map[int]func()) {
	//jenga:order-ok callbacks are independent; invocation order has no observable effect here
	for _, fn := range m {
		fn()
	}
}

// A bare pragma is reported and does not suppress the finding.
func bare(m map[int]func()) {
	for _, fn := range m { /* want "range over map" "needs a justification" */ //jenga:order-ok
		fn()
	}
}
