// Package detsourcetest is the detsource fixture: its virtual path
// sits under jenga/internal/engine, a sim package, so the analyzer
// gates on.
package detsourcetest

import (
	"math/rand"
	"os"
	"time"
)

// Positive: wall-clock reads.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in sim package"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in sim package"
}

// Positive: environment reads.
func mode() string {
	return os.Getenv("JENGA_MODE") // want "os.Getenv in sim package"
}

// Positive: the implicitly-seeded global math/rand source.
func roll() int {
	return rand.Intn(6) // want "math/rand.Intn in sim package"
}

// Negative: seeded generators are the sanctioned randomness source —
// constructors and methods on the seeded value are both fine.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Negative: time types and arithmetic carry no wall-clock read.
func wait(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// Suppressed: a justified pragma on the line above.
var debug = func() bool {
	//jenga:det-ok fixture mirror of the one legitimate debug gate; read once at init, never on a result path
	return os.Getenv("DETSOURCETEST_DEBUG") != ""
}()

// A bare pragma is reported and does not suppress the finding.
func bare() string {
	return os.Getenv("X") /* want "os.Getenv in sim package" "needs a justification" */ //jenga:det-ok
}
