package captest

// Capability is the one analyzer that checks _test.go files: a test
// asserting a capability panics the same way on a fixture without it.
func helperAssert(v any) TierManager {
	return v.(TierManager) // want "single-result assertion to capability interface TierManager"
}
