// Package captest exercises the capability analyzer. Matching is by
// interface name, so the fixture declares its own TierManager instead
// of importing the real one.
package captest

// TierManager mirrors the optional capability interface by name.
type TierManager interface {
	SwapOut(int) bool
}

// Stats is an ordinary interface: assertions to it are unrestricted.
type Stats interface {
	Len() int
}

// Positive: the bare expression form panics on a baseline value.
func use(v any) bool {
	return v.(TierManager).SwapOut(1) // want "single-result assertion to capability interface TierManager"
}

// Negative: the comma-ok form degrades instead of panicking.
func okForm(v any) bool {
	tm, ok := v.(TierManager)
	if !ok {
		return false
	}
	return tm.SwapOut(1)
}

// Negative: `, _` is the deliberate nil-degrade form, checked at the
// use site.
func nilDegrade(v any) {
	tm, _ := v.(TierManager)
	if tm != nil {
		tm.SwapOut(0)
	}
}

// Negative: var-declaration comma-ok.
func varForm(v any) bool {
	var tm, ok = v.(TierManager)
	return ok && tm.SwapOut(2)
}

// Negative: type switches carry their own ok semantics.
func typeSwitch(v any) int {
	switch v.(type) {
	case TierManager:
		return 1
	}
	return 0
}

// Negative: not a capability interface.
func otherIface(v any) int {
	return v.(Stats).Len()
}

// Suppressed: a justified pragma on the line above.
func justified(v any) TierManager {
	//jenga:cap-ok fixture constructor hands every caller a tiered manager by construction
	return v.(TierManager)
}

// A bare pragma is reported and does not suppress the finding.
func bare(v any) TierManager {
	return v.(TierManager) /* want "single-result assertion" "needs a justification" */ //jenga:cap-ok
}
