// Package ungated sits outside the virtual jenga/ tree, so the
// package-gated analyzers (maporder, detsource, confine) all skip it:
// none of the constructs below is flagged.
package ungated

import (
	"math/rand"
	"sync"
	"time"
)

func orderLeaks(m map[int]string, sink func(string)) {
	for _, v := range m {
		sink(v)
	}
}

func wallClock() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}

func concurrent(w func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w()
	}()
	wg.Wait()
}
