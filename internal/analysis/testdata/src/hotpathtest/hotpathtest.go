// Package hotpathtest exercises the hotpath analyzer. The check is
// pragma-gated rather than package-gated, so the fixture lives outside
// the virtual jenga/ tree: any //jenga:hotpath function anywhere is
// held to the zero-alloc contract.
package hotpathtest

import "fmt"

type ring struct {
	scratch []int
	index   map[int]int
}

// hot is annotated, so every allocating construct is flagged.
//
//jenga:hotpath
func (r *ring) hot(vs []int) int {
	var tmp []int
	for _, v := range vs {
		tmp = append(tmp, v) // want "append to nil-born local slice tmp"
	}
	f := func() int { return len(tmp) } // want "closure in //jenga:hotpath function hot"
	m := map[int]int{}                  // want "map literal in //jenga:hotpath function hot"
	mm := make(map[int]int)             // want "make\\(map\\) in //jenga:hotpath function hot"
	fmt.Println(len(m), len(mm))        // want "fmt.Println in //jenga:hotpath function hot"
	return f()
}

// cold is the same body without the annotation: no findings.
func (r *ring) cold(vs []int) int {
	var tmp []int
	for _, v := range vs {
		tmp = append(tmp, v)
	}
	f := func() int { return len(tmp) }
	m := map[int]int{}
	mm := make(map[int]int)
	fmt.Println(len(m), len(mm))
	return f()
}

// hotClean shows the sanctioned shapes: amortized scratch fields,
// capacity-born locals, and integer work stay silent.
//
//jenga:hotpath
func (r *ring) hotClean(vs []int) int {
	r.scratch = r.scratch[:0]
	tmp := make([]int, 0, 8)
	for _, v := range vs {
		r.scratch = append(r.scratch, v)
		tmp = append(tmp, v)
	}
	n := 0
	for _, v := range tmp {
		n += r.index[v]
	}
	return n
}

// hotJustified carries a justified suppression for its one cold-start
// allocation.
//
//jenga:hotpath
func (r *ring) hotJustified(v int) {
	if r.index == nil {
		//jenga:alloc-ok lazy init: taken once per ring, never on the steady-state path
		r.index = make(map[int]int)
	}
	r.index[v]++
}

// A bare pragma is reported and does not suppress the finding.
//
//jenga:hotpath
func (r *ring) hotBare() map[int]int {
	return make(map[int]int) /* want "make\\(map\\) in //jenga:hotpath function hotBare" "needs a justification" */ //jenga:alloc-ok
}
