// Package model describes LLM architectures as collections of KV groups.
//
// A KV group is a set of layers that share one KV-cache format and one
// token-dependency pattern (the unit Jenga calls a "layer type"). The
// memory manager never looks at weights: everything it needs — embedding
// sizes, sliding windows, Mamba state sizes, token scopes — is captured
// here, mirroring how the paper's implementation parses vLLM model
// configs (§7: "Jenga can parse all possible embedding sizes from the
// model structure").
package model

import (
	"fmt"
	"strings"
)

// Kind identifies the token-dependency pattern of a KV group.
type Kind int

const (
	// FullAttention layers attend to the entire prefix; every prefix
	// token's KV must stay resident (the classic PagedAttention case).
	FullAttention Kind = iota
	// SlidingWindow layers attend to the last Window tokens only;
	// KV outside the window can be freed (Gemma-2, Ministral).
	SlidingWindow
	// Mamba layers keep one fixed-size recurrent state per sequence
	// instead of per-token KV (Jamba). Jenga checkpoints the state
	// every CheckpointEvery tokens for prefix caching (§5.3).
	Mamba
	// CrossAttention layers hold encoder KV for image tokens only
	// (Llama 3.2 Vision / NVLM style).
	CrossAttention
	// VisionEmbedding is the vision-encoder output cache: one embedding
	// per image token, consumed by chunked prefill (§6.2).
	VisionEmbedding
	// PyramidWindow models PyramidKV-style token dropping: the layer
	// keeps a budget of the most recent/important tokens. Memory-wise it
	// behaves like a sliding window of Window tokens.
	PyramidWindow
)

// String returns the lower-case name used in traces and CLI output.
func (k Kind) String() string {
	switch k {
	case FullAttention:
		return "full"
	case SlidingWindow:
		return "window"
	case Mamba:
		return "mamba"
	case CrossAttention:
		return "cross"
	case VisionEmbedding:
		return "vision"
	case PyramidWindow:
		return "pyramid"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TokenScope says which tokens of a request a group stores KV for.
type TokenScope int

const (
	// ScopeAll covers every token of the sequence (text and image).
	ScopeAll TokenScope = iota
	// ScopeText covers text tokens only (self-attention in mllama).
	ScopeText
	// ScopeImage covers image tokens only (cross-attention, vision cache).
	ScopeImage
)

// String returns the scope name used in traces.
func (s TokenScope) String() string {
	switch s {
	case ScopeAll:
		return "all"
	case ScopeText:
		return "text"
	case ScopeImage:
		return "image"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// KVGroup describes one layer type: a set of Layers homogeneous layers
// that share a KV format and dependency pattern.
type KVGroup struct {
	// Name is unique within a Spec (e.g. "self", "cross", "mamba").
	Name string
	// Kind selects the dependency pattern and caching policy.
	Kind Kind
	// Layers is the number of layers in the group. For architectures
	// with cross-layer KV sharing (character.ai style) this counts
	// KV-owning layers only.
	Layers int
	// PhysicalLayers is the number of layers the group actually runs
	// (≥ Layers when several layers share one KV). A manager without
	// sharing support — the PagedAttention baseline — must allocate KV
	// for every physical layer. Zero means equal to Layers.
	PhysicalLayers int
	// BytesPerToken is the per-layer, per-token KV size in bytes
	// (2 × kv-heads × head-dim × dtype for attention layers; the
	// embedding size for VisionEmbedding groups). Zero for Mamba.
	BytesPerToken int
	// Window is the attention window in tokens (SlidingWindow and
	// PyramidWindow kinds).
	Window int
	// StateBytes is the per-layer recurrent state size (Mamba only).
	StateBytes int
	// CheckpointEvery is the Mamba prefix-cache checkpoint interval in
	// tokens; 0 means DefaultMambaCheckpoint.
	CheckpointEvery int
	// Scope restricts which tokens the group stores KV for.
	Scope TokenScope
	// Tag restricts the group to sequences carrying the same tag; empty
	// applies to all. Used when one manager serves several models at
	// once (§6.1 — speculative decoding's draft + target share one
	// Jenga heap and exchange memory at large-page granularity).
	Tag string
}

// DefaultMambaCheckpoint is the paper's state-checkpoint interval (§5.3).
const DefaultMambaCheckpoint = 512

// PageBytes returns the small-page size for this group given the
// allocator's tokensPerPage: the bytes needed to hold tokensPerPage
// tokens (or one state checkpoint for Mamba groups) across every layer
// of the group. This is the paper's "customized page size" (Fig. 6:
// 2 cross layers × 128 = 256; 3 self layers × 128 = 384).
func (g *KVGroup) PageBytes(tokensPerPage int) int {
	if g.Kind == Mamba {
		return g.StateBytes * g.Layers
	}
	return g.BytesPerToken * g.Layers * tokensPerPage
}

// PerLayerPageBytes returns the bytes one layer contributes to each
// small page; the kernel view for layer j starts at offset
// j*PerLayerPageBytes within every small page (§4.2, Fig. 7c).
func (g *KVGroup) PerLayerPageBytes(tokensPerPage int) int {
	if g.Kind == Mamba {
		return g.StateBytes
	}
	return g.BytesPerToken * tokensPerPage
}

// Physical returns the physical layer count (Layers when unset).
func (g *KVGroup) Physical() int {
	if g.PhysicalLayers > g.Layers {
		return g.PhysicalLayers
	}
	return g.Layers
}

// Checkpoint returns the effective Mamba checkpoint interval.
func (g *KVGroup) Checkpoint() int {
	if g.CheckpointEvery > 0 {
		return g.CheckpointEvery
	}
	return DefaultMambaCheckpoint
}

// StoresToken reports whether the group holds state for a token of the
// given modality (true = image token).
func (g *KVGroup) StoresToken(image bool) bool {
	switch g.Scope {
	case ScopeText:
		return !image
	case ScopeImage:
		return image
	default:
		return true
	}
}

// VisionSpec describes the vision encoder of a multi-modal model.
type VisionSpec struct {
	// Params is the encoder parameter count (for the cost model).
	Params int64
	// TokensPerImage is the number of image tokens one image expands to.
	TokensPerImage int
}

// Spec is a complete model architecture from the memory manager's and
// cost model's point of view.
type Spec struct {
	// Name is the display name used in experiment output.
	Name string
	// Params is the total parameter count.
	Params int64
	// ActiveParams is the per-token active parameter count for MoE
	// models (Jamba); 0 means all parameters are active.
	ActiveParams int64
	// WeightBytes is bytes per weight (2 = fp16, 1 = fp8).
	WeightBytes int
	// HiddenSize is the model dimension (cost model detail).
	HiddenSize int
	// Groups lists every KV group of the model.
	Groups []KVGroup
	// Vision is non-nil for multi-modal models.
	Vision *VisionSpec
}

// WeightFootprint returns the device memory the weights occupy.
func (s *Spec) WeightFootprint() int64 {
	w := s.Params * int64(s.WeightBytes)
	if s.Vision != nil {
		w += s.Vision.Params * int64(s.WeightBytes)
	}
	return w
}

// ActiveParamCount returns the parameters touched per token.
func (s *Spec) ActiveParamCount() int64 {
	if s.ActiveParams > 0 {
		return s.ActiveParams
	}
	return s.Params
}

// Group returns the group with the given name, or nil.
func (s *Spec) Group(name string) *KVGroup {
	for i := range s.Groups {
		if s.Groups[i].Name == name {
			return &s.Groups[i]
		}
	}
	return nil
}

// TotalLayers returns the number of KV-owning layers across all groups.
func (s *Spec) TotalLayers() int {
	n := 0
	for i := range s.Groups {
		n += s.Groups[i].Layers
	}
	return n
}

// IsHeterogeneous reports whether the model has more than one KV group,
// i.e. whether PagedAttention's fixed-size-embedding assumption breaks.
func (s *Spec) IsHeterogeneous() bool {
	return len(s.Groups) > 1
}

// BytesPerTokenAllLayers returns the KV bytes one token of the given
// modality requires across all groups that store it — the "ideal" cost
// used by the §3.2 waste analysis. Mamba groups are excluded (their
// state is per-sequence, not per-token).
func (s *Spec) BytesPerTokenAllLayers(image bool) int {
	total := 0
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Kind == Mamba || g.Kind == VisionEmbedding {
			continue
		}
		if g.StoresToken(image) {
			total += g.BytesPerToken * g.Layers
		}
	}
	return total
}

// Validate checks structural invariants of the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("model: spec has empty name")
	}
	if s.Params <= 0 {
		return fmt.Errorf("model %s: non-positive param count", s.Name)
	}
	if s.WeightBytes != 1 && s.WeightBytes != 2 && s.WeightBytes != 4 {
		return fmt.Errorf("model %s: weight bytes %d not in {1,2,4}", s.Name, s.WeightBytes)
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("model %s: no KV groups", s.Name)
	}
	seen := make(map[string]bool, len(s.Groups))
	for i := range s.Groups {
		g := &s.Groups[i]
		if g.Name == "" {
			return fmt.Errorf("model %s: group %d has empty name", s.Name, i)
		}
		if seen[g.Name] {
			return fmt.Errorf("model %s: duplicate group name %q", s.Name, g.Name)
		}
		seen[g.Name] = true
		if g.Layers <= 0 {
			return fmt.Errorf("model %s group %s: non-positive layer count", s.Name, g.Name)
		}
		switch g.Kind {
		case Mamba:
			if g.StateBytes <= 0 {
				return fmt.Errorf("model %s group %s: mamba group needs StateBytes", s.Name, g.Name)
			}
		case SlidingWindow, PyramidWindow:
			if g.Window <= 0 {
				return fmt.Errorf("model %s group %s: %v group needs Window", s.Name, g.Name, g.Kind)
			}
			if g.BytesPerToken <= 0 {
				return fmt.Errorf("model %s group %s: non-positive BytesPerToken", s.Name, g.Name)
			}
		default:
			if g.BytesPerToken <= 0 {
				return fmt.Errorf("model %s group %s: non-positive BytesPerToken", s.Name, g.Name)
			}
		}
		if g.Kind == VisionEmbedding && g.Scope != ScopeImage {
			return fmt.Errorf("model %s group %s: vision embedding group must have image scope", s.Name, g.Name)
		}
	}
	if s.Vision != nil && s.Vision.TokensPerImage <= 0 {
		return fmt.Errorf("model %s: vision spec needs TokensPerImage", s.Name)
	}
	return nil
}

// String summarizes the spec for logs.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%dB params, groups:", s.Name, s.Params)
	for i := range s.Groups {
		g := &s.Groups[i]
		fmt.Fprintf(&b, " %s/%v×%d", g.Name, g.Kind, g.Layers)
	}
	b.WriteString(")")
	return b.String()
}
