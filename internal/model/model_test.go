package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZooSpecsValidate(t *testing.T) {
	specs := All()
	if len(specs) < 15 {
		t.Fatalf("expected at least 15 registered models, got %d", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s failed validation: %v", s.Name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	} else if !strings.Contains(err.Error(), "available") {
		t.Errorf("error should list available models, got %v", err)
	}
}

func TestByNameKnown(t *testing.T) {
	s, err := ByName("mllama")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "Llama-3.2-11B-Vision" {
		t.Errorf("unexpected name %q", s.Name)
	}
	if !s.IsHeterogeneous() {
		t.Error("mllama should be heterogeneous")
	}
	if s.Vision == nil {
		t.Error("mllama should have a vision spec")
	}
}

// paperExampleSpec reproduces the Fig. 6 example: per-layer KV 128 bytes,
// 2 cross-attention layers (image page 256) + 3 self-attention layers
// (text page 384), LCM page 768.
func paperExampleSpec() *Spec {
	return &Spec{
		Name: "fig6", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 3, BytesPerToken: 128, Scope: ScopeText},
			{Name: "cross", Kind: CrossAttention, Layers: 2, BytesPerToken: 128, Scope: ScopeImage},
		},
	}
}

func TestGeometryPaperExample(t *testing.T) {
	s := paperExampleSpec()
	g, err := s.Geometry(LCMPage, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.SmallPageBytes["self"] != 384 {
		t.Errorf("self page = %d, want 384", g.SmallPageBytes["self"])
	}
	if g.SmallPageBytes["cross"] != 256 {
		t.Errorf("cross page = %d, want 256", g.SmallPageBytes["cross"])
	}
	if g.LargePageBytes != 768 {
		t.Errorf("LCM page = %d, want 768", g.LargePageBytes)
	}
	if g.Ratio["self"] != 2 || g.Ratio["cross"] != 3 {
		t.Errorf("ratios = %v, want self:2 cross:3", g.Ratio)
	}
	for name, w := range g.WastePerLargePage {
		if w != 0 {
			t.Errorf("LCM geometry should have zero tail waste, group %s has %d", name, w)
		}
	}
}

func TestGeometryGCDAndMax(t *testing.T) {
	s := paperExampleSpec()
	gcd, err := s.Geometry(GCDPage, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gcd.LargePageBytes != 128 {
		t.Errorf("GCD page = %d, want 128", gcd.LargePageBytes)
	}
	mx, err := s.Geometry(MaxPage, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mx.LargePageBytes != 384 {
		t.Errorf("MAX page = %d, want 384", mx.LargePageBytes)
	}
	// Under MAX, a 256-byte cross page wastes 128 bytes of each 384-byte
	// large page.
	if mx.WastePerLargePage["cross"] != 128 {
		t.Errorf("MAX tail waste for cross = %d, want 128", mx.WastePerLargePage["cross"])
	}
}

// TestJambaGeometryFacts checks the two §4.4 facts: MAX paging needs
// 1344 tokens per attention page to avoid fragmentation, and the
// per-layer LCM ratio is 84× at 16 tokens per page.
func TestJambaGeometryFacts(t *testing.T) {
	s := Jamba52B()
	attn := s.Group("attn")
	mamba := s.Group("mamba")
	if attn == nil || mamba == nil {
		t.Fatal("jamba groups missing")
	}
	tokensForMax := mamba.StateBytes / attn.BytesPerToken
	if tokensForMax != 1344 {
		t.Errorf("MAX needs %d tokens/page, paper says 1344", tokensForMax)
	}
	perLayerRatio := mamba.StateBytes / (attn.BytesPerToken * 16)
	if perLayerRatio != 84 {
		t.Errorf("per-layer LCM ratio = %d, paper says 84", perLayerRatio)
	}
	g, err := s.Geometry(LCMPage, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Group pages span all layers of the group, so the group-level ratio
	// is 84 × mambaLayers / attnLayers = 84 × 28/4 = 588.
	if g.Ratio["attn"] != 588 {
		t.Errorf("group-level attn ratio = %d, want 588", g.Ratio["attn"])
	}
	if g.Ratio["mamba"] != 1 {
		t.Errorf("mamba ratio = %d, want 1", g.Ratio["mamba"])
	}
}

func TestGeometryErrors(t *testing.T) {
	s := paperExampleSpec()
	if _, err := s.Geometry(LCMPage, 0); err == nil {
		t.Error("tokensPerPage 0 should error")
	}
	if _, err := s.Geometry(CompatPolicy(99), 1); err == nil {
		t.Error("unknown policy should error")
	}
	empty := &Spec{Name: "e", Params: 1, WeightBytes: 2}
	if _, err := empty.Geometry(LCMPage, 1); err == nil {
		t.Error("empty groups should error")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
	}{
		{"empty name", Spec{Params: 1, WeightBytes: 2, Groups: []KVGroup{{Name: "g", Kind: FullAttention, Layers: 1, BytesPerToken: 1}}}},
		{"bad params", Spec{Name: "x", WeightBytes: 2, Groups: []KVGroup{{Name: "g", Kind: FullAttention, Layers: 1, BytesPerToken: 1}}}},
		{"bad dtype", Spec{Name: "x", Params: 1, WeightBytes: 3, Groups: []KVGroup{{Name: "g", Kind: FullAttention, Layers: 1, BytesPerToken: 1}}}},
		{"no groups", Spec{Name: "x", Params: 1, WeightBytes: 2}},
		{"dup group", Spec{Name: "x", Params: 1, WeightBytes: 2, Groups: []KVGroup{
			{Name: "g", Kind: FullAttention, Layers: 1, BytesPerToken: 1},
			{Name: "g", Kind: FullAttention, Layers: 1, BytesPerToken: 1}}}},
		{"mamba no state", Spec{Name: "x", Params: 1, WeightBytes: 2, Groups: []KVGroup{{Name: "g", Kind: Mamba, Layers: 1}}}},
		{"window no window", Spec{Name: "x", Params: 1, WeightBytes: 2, Groups: []KVGroup{{Name: "g", Kind: SlidingWindow, Layers: 1, BytesPerToken: 1}}}},
		{"vision wrong scope", Spec{Name: "x", Params: 1, WeightBytes: 2, Groups: []KVGroup{{Name: "g", Kind: VisionEmbedding, Layers: 1, BytesPerToken: 1, Scope: ScopeText}}}},
		{"zero layers", Spec{Name: "x", Params: 1, WeightBytes: 2, Groups: []KVGroup{{Name: "g", Kind: FullAttention, Layers: 0, BytesPerToken: 1}}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestStoresToken(t *testing.T) {
	text := KVGroup{Scope: ScopeText}
	image := KVGroup{Scope: ScopeImage}
	all := KVGroup{Scope: ScopeAll}
	if text.StoresToken(true) || !text.StoresToken(false) {
		t.Error("text scope wrong")
	}
	if !image.StoresToken(true) || image.StoresToken(false) {
		t.Error("image scope wrong")
	}
	if !all.StoresToken(true) || !all.StoresToken(false) {
		t.Error("all scope wrong")
	}
}

func TestBytesPerTokenAllLayers(t *testing.T) {
	s := Llama32Vision11B()
	text := s.BytesPerTokenAllLayers(false)
	img := s.BytesPerTokenAllLayers(true)
	// 32 self layers × 4096 for text; 8 cross layers × 4096 for image.
	if text != 32*4096 {
		t.Errorf("text bytes/token = %d, want %d", text, 32*4096)
	}
	if img != 8*4096 {
		t.Errorf("image bytes/token = %d, want %d", img, 8*4096)
	}
}

func TestMambaCheckpointDefault(t *testing.T) {
	g := KVGroup{Kind: Mamba, StateBytes: 10, Layers: 1}
	if g.Checkpoint() != DefaultMambaCheckpoint {
		t.Errorf("default checkpoint = %d, want %d", g.Checkpoint(), DefaultMambaCheckpoint)
	}
	g.CheckpointEvery = 128
	if g.Checkpoint() != 128 {
		t.Errorf("checkpoint = %d, want 128", g.Checkpoint())
	}
}

func TestLCMGCDProperties(t *testing.T) {
	// gcd divides both inputs; lcm is divisible by both; lcm*gcd == a*b.
	prop := func(a, b uint16) bool {
		x, y := int(a)+1, int(b)+1
		g := GCD(x, y)
		if x%g != 0 || y%g != 0 {
			return false
		}
		l, err := LCM(x, y)
		if err != nil {
			return false
		}
		if l%x != 0 || l%y != 0 {
			return false
		}
		return l*g == x*y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLCMErrors(t *testing.T) {
	if _, err := LCM(0, 5); err == nil {
		t.Error("lcm(0,5) should error")
	}
	if _, err := LCM(1<<61, (1<<61)-1); err == nil {
		t.Error("huge lcm should overflow")
	}
}

func TestGeometryLCMDivisibility(t *testing.T) {
	// For every zoo model, the LCM page must be divisible by every
	// small page with zero tail waste (property 5 in DESIGN.md).
	for _, s := range All() {
		g, err := s.Geometry(LCMPage, 16)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		for name, sz := range g.SmallPageBytes {
			if g.LargePageBytes%sz != 0 {
				t.Errorf("%s group %s: LCM %d not divisible by %d", s.Name, name, g.LargePageBytes, sz)
			}
			if g.WastePerLargePage[name] != 0 {
				t.Errorf("%s group %s: nonzero LCM waste", s.Name, name)
			}
		}
		if g.MaxRatio() < 1 {
			t.Errorf("%s: max ratio < 1", s.Name)
		}
	}
}

func TestKindScopeStrings(t *testing.T) {
	kinds := map[Kind]string{FullAttention: "full", SlidingWindow: "window", Mamba: "mamba",
		CrossAttention: "cross", VisionEmbedding: "vision", PyramidWindow: "pyramid", Kind(42): "kind(42)"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), want)
		}
	}
	scopes := map[TokenScope]string{ScopeAll: "all", ScopeText: "text", ScopeImage: "image", TokenScope(7): "scope(7)"}
	for s, want := range scopes {
		if s.String() != want {
			t.Errorf("scope %d = %q, want %q", int(s), s.String(), want)
		}
	}
	if !strings.Contains(Jamba52B().String(), "mamba") {
		t.Error("spec string should mention groups")
	}
}

func TestWeightFootprint(t *testing.T) {
	s := Llama32Vision11B()
	want := s.Params*2 + s.Vision.Params*2
	if got := s.WeightFootprint(); got != want {
		t.Errorf("weight footprint = %d, want %d", got, want)
	}
	j := Jamba52B()
	if j.ActiveParamCount() != 12_000_000_000 {
		t.Errorf("jamba active params = %d", j.ActiveParamCount())
	}
	l := Llama31_8B()
	if l.ActiveParamCount() != l.Params {
		t.Error("dense model active params should equal params")
	}
}
