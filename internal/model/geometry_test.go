package model

import "testing"

// TestGeometryAllPoliciesAllModels sweeps every zoo model under every
// compatibility policy and checks the §4.4 invariants.
func TestGeometryAllPoliciesAllModels(t *testing.T) {
	for _, s := range All() {
		for _, pol := range []CompatPolicy{LCMPage, GCDPage, MaxPage} {
			g, err := s.Geometry(pol, 16)
			if err != nil {
				t.Errorf("%s/%v: %v", s.Name, pol, err)
				continue
			}
			switch pol {
			case LCMPage:
				for name, sz := range g.SmallPageBytes {
					if g.LargePageBytes%sz != 0 {
						t.Errorf("%s: LCM %d %% %d != 0", s.Name, g.LargePageBytes, sz)
					}
					if g.WastePerLargePage[name] != 0 {
						t.Errorf("%s/%s: LCM tail waste", s.Name, name)
					}
				}
			case GCDPage:
				for name, sz := range g.SmallPageBytes {
					if sz%g.LargePageBytes != 0 {
						t.Errorf("%s/%s: small %d not a multiple of GCD %d",
							s.Name, name, sz, g.LargePageBytes)
					}
				}
			case MaxPage:
				maxSeen := 0
				for _, sz := range g.SmallPageBytes {
					if sz > maxSeen {
						maxSeen = sz
					}
				}
				if g.LargePageBytes != maxSeen {
					t.Errorf("%s: MAX page %d != max small %d", s.Name, g.LargePageBytes, maxSeen)
				}
				// Tail waste per large page is LargePage − ratio·small.
				for name, sz := range g.SmallPageBytes {
					want := g.LargePageBytes - g.Ratio[name]*sz
					if g.WastePerLargePage[name] != want {
						t.Errorf("%s/%s: MAX waste %d, want %d",
							s.Name, name, g.WastePerLargePage[name], want)
					}
				}
			}
		}
	}
}

func TestPhysicalLayers(t *testing.T) {
	g := KVGroup{Layers: 6}
	if g.Physical() != 6 {
		t.Error("unset PhysicalLayers must default to Layers")
	}
	g.PhysicalLayers = 13
	if g.Physical() != 13 {
		t.Error("PhysicalLayers must override")
	}
	g.PhysicalLayers = 3 // smaller than Layers: ignore (KV owners can't exceed physical)
	if g.Physical() != 6 {
		t.Error("PhysicalLayers below Layers must be ignored")
	}
	// character.ai: baseline allocates 80 physical layers.
	c := CharacterAI70B()
	total := 0
	for i := range c.Groups {
		total += c.Groups[i].Physical()
	}
	if total != 80 {
		t.Errorf("character physical layers = %d, want 80", total)
	}
}

func TestCompatPolicyString(t *testing.T) {
	cases := map[CompatPolicy]string{LCMPage: "lcm", GCDPage: "gcd", MaxPage: "max", CompatPolicy(9): "policy(9)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d = %q, want %q", int(p), p.String(), want)
		}
	}
}

// TestTagValidation: tagged groups pass validation (multi-model specs).
func TestTaggedSpecValidates(t *testing.T) {
	s := &Spec{
		Name: "tagged", Params: 1, WeightBytes: 2,
		Groups: []KVGroup{
			{Name: "t:self", Kind: FullAttention, Layers: 1, BytesPerToken: 64, Tag: "target"},
			{Name: "d:self", Kind: FullAttention, Layers: 1, BytesPerToken: 64, Tag: "draft"},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
