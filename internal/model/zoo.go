package model

import (
	"fmt"
	"sort"
)

// This file transcribes the architectures of every model in the paper's
// evaluation (Table 1 plus the Fig. 18/19 models) into Specs. Layer
// counts, KV-head geometry and window sizes follow the public configs;
// KV dtype follows the weight dtype (fp8-quantized variants use fp8 KV,
// as vLLM does). Jamba's Mamba state size is chosen so the paper's two
// reported geometry facts hold exactly: MAX-page would need 1344 tokens
// per attention page, and the per-layer LCM ratio is 84×.

const (
	fp16 = 2
	fp8  = 1
)

// kvBytes returns per-layer per-token KV bytes for an attention layer.
func kvBytes(kvHeads, headDim, dtype int) int {
	return 2 * kvHeads * headDim * dtype
}

// Llama31_8B is the homogeneous baseline model (overhead check, Fig. 13).
func Llama31_8B() *Spec {
	return &Spec{
		Name: "Llama-3.1-8B", Params: 8_030_000_000, WeightBytes: fp16, HiddenSize: 4096,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 32, BytesPerToken: kvBytes(8, 128, fp16)},
		},
	}
}

// Llama31_70B is the fp8-quantized 70B used on H100 (Table 1 "70B*").
func Llama31_70B() *Spec {
	return &Spec{
		Name: "Llama-3.1-70B-FP8", Params: 70_600_000_000, WeightBytes: fp8, HiddenSize: 8192,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 80, BytesPerToken: kvBytes(8, 128, fp8)},
		},
	}
}

// Llama32Vision11B is "mllama": 32 self-attention layers over text
// tokens interleaved with 8 cross-attention layers over image tokens
// (§3.2's running example; the 79.6% waste model).
func Llama32Vision11B() *Spec {
	return &Spec{
		Name: "Llama-3.2-11B-Vision", Params: 9_800_000_000, WeightBytes: fp16, HiddenSize: 4096,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 32, BytesPerToken: kvBytes(8, 128, fp16), Scope: ScopeText},
			{Name: "cross", Kind: CrossAttention, Layers: 8, BytesPerToken: kvBytes(8, 128, fp16), Scope: ScopeImage},
		},
		Vision: &VisionSpec{Params: 900_000_000, TokensPerImage: 1601},
	}
}

// Gemma2_27B interleaves full and sliding-window (4096) attention.
func Gemma2_27B() *Spec {
	return &Spec{
		Name: "Gemma-2-27B", Params: 27_200_000_000, WeightBytes: fp16, HiddenSize: 4608,
		Groups: []KVGroup{
			{Name: "full", Kind: FullAttention, Layers: 23, BytesPerToken: kvBytes(16, 128, fp16)},
			{Name: "window", Kind: SlidingWindow, Layers: 23, BytesPerToken: kvBytes(16, 128, fp16), Window: 4096},
		},
	}
}

// Gemma2_9B is the L4-sized Gemma-2 variant.
func Gemma2_9B() *Spec {
	return &Spec{
		Name: "Gemma-2-9B", Params: 9_240_000_000, WeightBytes: fp16, HiddenSize: 3584,
		Groups: []KVGroup{
			{Name: "full", Kind: FullAttention, Layers: 21, BytesPerToken: kvBytes(8, 256, fp16)},
			{Name: "window", Kind: SlidingWindow, Layers: 21, BytesPerToken: kvBytes(8, 256, fp16), Window: 4096},
		},
	}
}

// Gemma2_2B is the speculative-decoding draft for Gemma-2 (Fig. 19).
func Gemma2_2B() *Spec {
	return &Spec{
		Name: "Gemma-2-2B", Params: 2_600_000_000, WeightBytes: fp16, HiddenSize: 2304,
		Groups: []KVGroup{
			{Name: "full", Kind: FullAttention, Layers: 13, BytesPerToken: kvBytes(4, 256, fp16)},
			{Name: "window", Kind: SlidingWindow, Layers: 13, BytesPerToken: kvBytes(4, 256, fp16), Window: 4096},
		},
	}
}

// Ministral8B uses a 3:1 interleaved sliding-window pattern with a
// 32768-token window and 128k context; at max context the PagedAttention
// waste reaches the paper's 56.25%.
func Ministral8B() *Spec {
	return &Spec{
		Name: "Ministral-8B", Params: 8_020_000_000, WeightBytes: fp16, HiddenSize: 4096,
		Groups: []KVGroup{
			{Name: "full", Kind: FullAttention, Layers: 9, BytesPerToken: kvBytes(8, 128, fp16)},
			{Name: "window", Kind: SlidingWindow, Layers: 27, BytesPerToken: kvBytes(8, 128, fp16), Window: 32768},
		},
	}
}

// MinistralDraft1B is the 1B draft the authors created for Ministral
// following the Llama 3.2 1B configuration (§7.4).
func MinistralDraft1B() *Spec {
	s := Llama32_1B()
	s.Name = "Ministral-1B-draft"
	return s
}

// Jamba52B mixes 4 full-attention layers with 28 Mamba layers (1:7
// blocks). StateBytes = 1344 × the per-token attention KV so that MAX
// paging needs 1344 tokens per page (§4.4) and the per-layer LCM ratio
// is 84× at 16 tokens/page.
func Jamba52B() *Spec {
	attn := kvBytes(8, 128, fp16) // 4096
	return &Spec{
		Name: "Jamba-1.5-52B", Params: 52_000_000_000, ActiveParams: 12_000_000_000,
		WeightBytes: fp8, HiddenSize: 8192,
		Groups: []KVGroup{
			{Name: "attn", Kind: FullAttention, Layers: 4, BytesPerToken: attn},
			{Name: "mamba", Kind: Mamba, Layers: 28, StateBytes: 1344 * attn},
		},
	}
}

// CharacterAI70B models the character.ai blog architecture on a Llama
// 70B base: ~1/6 global-attention layers, the rest sliding window 1024,
// with cross-layer KV sharing — 80 physical layers share KV owned by
// 33. A sharing-unaware manager (the PagedAttention baseline) must
// allocate for all 80.
func CharacterAI70B() *Spec {
	return &Spec{
		Name: "character.ai-70B-FP8", Params: 70_600_000_000, WeightBytes: fp8, HiddenSize: 8192,
		Groups: []KVGroup{
			{Name: "global", Kind: FullAttention, Layers: 6, PhysicalLayers: 13, BytesPerToken: kvBytes(8, 128, fp8)},
			{Name: "window", Kind: SlidingWindow, Layers: 27, PhysicalLayers: 67, BytesPerToken: kvBytes(8, 128, fp8), Window: 1024},
		},
	}
}

// CharacterAI8B is the L4-sized variant.
func CharacterAI8B() *Spec {
	return &Spec{
		Name: "character.ai-8B", Params: 8_030_000_000, WeightBytes: fp16, HiddenSize: 4096,
		Groups: []KVGroup{
			{Name: "global", Kind: FullAttention, Layers: 2, PhysicalLayers: 5, BytesPerToken: kvBytes(8, 128, fp16)},
			{Name: "window", Kind: SlidingWindow, Layers: 11, PhysicalLayers: 27, BytesPerToken: kvBytes(8, 128, fp16), Window: 1024},
		},
	}
}

// PyramidKV70B applies pyramidal per-layer token budgets to Llama 70B:
// deeper layers keep fewer tokens (§3.1(a.2)). Budgets are grouped into
// four tiers so the manager sees four layer types.
func PyramidKV70B() *Spec {
	kv := kvBytes(8, 128, fp8)
	return &Spec{
		Name: "PyramidKV-70B-FP8", Params: 70_600_000_000, WeightBytes: fp8, HiddenSize: 8192,
		Groups: []KVGroup{
			{Name: "full", Kind: FullAttention, Layers: 20, BytesPerToken: kv},
			{Name: "pyr4k", Kind: PyramidWindow, Layers: 20, BytesPerToken: kv, Window: 4096},
			{Name: "pyr1k", Kind: PyramidWindow, Layers: 20, BytesPerToken: kv, Window: 1024},
			{Name: "pyr256", Kind: PyramidWindow, Layers: 20, BytesPerToken: kv, Window: 256},
		},
	}
}

// PyramidKV8B is the L4-sized variant.
func PyramidKV8B() *Spec {
	kv := kvBytes(8, 128, fp16)
	return &Spec{
		Name: "PyramidKV-8B", Params: 8_030_000_000, WeightBytes: fp16, HiddenSize: 4096,
		Groups: []KVGroup{
			{Name: "full", Kind: FullAttention, Layers: 8, BytesPerToken: kv},
			{Name: "pyr2k", Kind: PyramidWindow, Layers: 8, BytesPerToken: kv, Window: 2048},
			{Name: "pyr512", Kind: PyramidWindow, Layers: 8, BytesPerToken: kv, Window: 512},
			{Name: "pyr128", Kind: PyramidWindow, Layers: 8, BytesPerToken: kv, Window: 128},
		},
	}
}

// LLaVAOneVision7B is a decoder-only VLM with a vision-embedding cache
// group (Fig. 18). The embedding per image token (hidden × fp16) is
// smaller than the LLM KV per token across layers, as §6.2 requires.
func LLaVAOneVision7B() *Spec {
	return &Spec{
		Name: "LLaVA-OneVision-7B", Params: 7_060_000_000, WeightBytes: fp16, HiddenSize: 3584,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 28, BytesPerToken: kvBytes(4, 128, fp16)},
			{Name: "vision", Kind: VisionEmbedding, Layers: 1, BytesPerToken: 3584 * fp16, Scope: ScopeImage},
		},
		Vision: &VisionSpec{Params: 400_000_000, TokensPerImage: 729},
	}
}

// InternVL2_8B pairs InternViT-300M with an 8B LLM.
func InternVL2_8B() *Spec {
	return &Spec{
		Name: "InternVL2-8B", Params: 7_700_000_000, WeightBytes: fp16, HiddenSize: 4096,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 32, BytesPerToken: kvBytes(8, 128, fp16)},
			{Name: "vision", Kind: VisionEmbedding, Layers: 1, BytesPerToken: 4096 * fp16, Scope: ScopeImage},
		},
		Vision: &VisionSpec{Params: 300_000_000, TokensPerImage: 256},
	}
}

// Phi3Vision4B is the smallest Fig. 18 VLM.
func Phi3Vision4B() *Spec {
	return &Spec{
		Name: "Phi-3-Vision-4B", Params: 3_800_000_000, WeightBytes: fp16, HiddenSize: 3072,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 32, BytesPerToken: kvBytes(8, 96, fp16)},
			{Name: "vision", Kind: VisionEmbedding, Layers: 1, BytesPerToken: 3072 * fp16, Scope: ScopeImage},
		},
		Vision: &VisionSpec{Params: 300_000_000, TokensPerImage: 576},
	}
}

// Paligemma2_10B mixes three memory types — vision embeddings, sliding
// window KV and full-attention KV (§7.1 notes it as the three-type model).
func Paligemma2_10B() *Spec {
	kv := kvBytes(8, 256, fp16)
	return &Spec{
		Name: "Paligemma2-10B", Params: 9_660_000_000, WeightBytes: fp16, HiddenSize: 3584,
		Groups: []KVGroup{
			{Name: "full", Kind: FullAttention, Layers: 21, BytesPerToken: kv},
			{Name: "window", Kind: SlidingWindow, Layers: 21, BytesPerToken: kv, Window: 4096},
			{Name: "vision", Kind: VisionEmbedding, Layers: 1, BytesPerToken: 3584 * fp16, Scope: ScopeImage},
		},
		Vision: &VisionSpec{Params: 400_000_000, TokensPerImage: 256},
	}
}

// Llama32_1B is the draft model for Llama/character speculative decoding.
func Llama32_1B() *Spec {
	return &Spec{
		Name: "Llama-3.2-1B", Params: 1_240_000_000, WeightBytes: fp16, HiddenSize: 2048,
		Groups: []KVGroup{
			{Name: "self", Kind: FullAttention, Layers: 16, BytesPerToken: kvBytes(8, 64, fp16)},
		},
	}
}

// Registry maps CLI names to spec constructors.
var Registry = map[string]func() *Spec{
	"llama-8b":      Llama31_8B,
	"llama-70b":     Llama31_70B,
	"mllama":        Llama32Vision11B,
	"gemma2-27b":    Gemma2_27B,
	"gemma2-9b":     Gemma2_9B,
	"gemma2-2b":     Gemma2_2B,
	"ministral":     Ministral8B,
	"ministral-1b":  MinistralDraft1B,
	"jamba":         Jamba52B,
	"character-70b": CharacterAI70B,
	"character-8b":  CharacterAI8B,
	"pyramidkv-70b": PyramidKV70B,
	"pyramidkv-8b":  PyramidKV8B,
	"llava-ov":      LLaVAOneVision7B,
	"internvl2":     InternVL2_8B,
	"phi3v":         Phi3Vision4B,
	"paligemma2":    Paligemma2_10B,
	"llama-1b":      Llama32_1B,
}

// ByName returns the registered spec constructor's result, or an error
// listing available names.
func ByName(name string) (*Spec, error) {
	ctor, ok := Registry[name]
	if !ok {
		names := make([]string, 0, len(Registry))
		for n := range Registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("model: unknown model %q (available: %v)", name, names)
	}
	return ctor(), nil
}

// All returns every registered spec, sorted by registry name.
func All() []*Spec {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	specs := make([]*Spec, 0, len(names))
	for _, n := range names {
		specs = append(specs, Registry[n]())
	}
	return specs
}
