package model

import "fmt"

// CompatPolicy selects how the compatibility layer sizes its large pages
// when a model has several small-page sizes (§4.4).
type CompatPolicy int

const (
	// LCMPage uses the least common multiple of all small-page sizes:
	// no external fragmentation, no kernel changes (Jenga's choice).
	LCMPage CompatPolicy = iota
	// GCDPage uses the greatest common divisor: zero internal
	// fragmentation but splits KV tensors across pages, which real GPU
	// kernels pay for (modeled as a kernel-efficiency penalty).
	GCDPage
	// MaxPage uses the maximum small-page size: smaller types waste the
	// tail of every page.
	MaxPage
)

// String returns the policy name used in ablation output.
func (p CompatPolicy) String() string {
	switch p {
	case LCMPage:
		return "lcm"
	case GCDPage:
		return "gcd"
	case MaxPage:
		return "max"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// GCD returns the greatest common divisor of a and b (gcd(0,b)=b).
func GCD(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// LCM returns the least common multiple of a and b, or an error on
// overflow or non-positive input.
func LCM(a, b int) (int, error) {
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("model: lcm of non-positive values %d, %d", a, b)
	}
	g := GCD(a, b)
	q := a / g
	if q > (1<<62)/b {
		return 0, fmt.Errorf("model: lcm(%d,%d) overflows", a, b)
	}
	return q * b, nil
}

// PageGeometry is the result of compatibility-layer sizing for a model:
// the large-page size plus each group's small-page size and the number
// of small pages per large page (the "ratio").
type PageGeometry struct {
	// Policy that produced this geometry.
	Policy CompatPolicy
	// TokensPerPage used for token-granularity groups.
	TokensPerPage int
	// LargePageBytes is the compatibility-layer page size.
	LargePageBytes int
	// SmallPageBytes maps group name to its small-page size.
	SmallPageBytes map[string]int
	// Ratio maps group name to LargePageBytes / SmallPageBytes
	// (small pages per large page). For MaxPage geometry the division
	// may be inexact; Ratio is the floor and WastePerLargePage records
	// the remainder.
	Ratio map[string]int
	// WastePerLargePage maps group name to the bytes at the tail of
	// each large page the group cannot use (zero under LCM and GCD).
	WastePerLargePage map[string]int
}

// MaxLCMRatio guards against pathological LCM blow-ups: the paper
// reports the largest observed ratio in vLLM v0.6.4 is 84× (Jamba), so
// a generous cap catches config mistakes without limiting real models.
const MaxLCMRatio = 1 << 20

// Geometry computes the page geometry for the spec under a policy.
// tokensPerPage must be ≥ 1.
func (s *Spec) Geometry(policy CompatPolicy, tokensPerPage int) (*PageGeometry, error) {
	if tokensPerPage < 1 {
		return nil, fmt.Errorf("model %s: tokensPerPage %d < 1", s.Name, tokensPerPage)
	}
	if len(s.Groups) == 0 {
		return nil, fmt.Errorf("model %s: no KV groups", s.Name)
	}
	g := &PageGeometry{
		Policy:            policy,
		TokensPerPage:     tokensPerPage,
		SmallPageBytes:    make(map[string]int, len(s.Groups)),
		Ratio:             make(map[string]int, len(s.Groups)),
		WastePerLargePage: make(map[string]int, len(s.Groups)),
	}
	sizes := make([]int, 0, len(s.Groups))
	for i := range s.Groups {
		grp := &s.Groups[i]
		sz := grp.PageBytes(tokensPerPage)
		if sz <= 0 {
			return nil, fmt.Errorf("model %s group %s: non-positive page size", s.Name, grp.Name)
		}
		g.SmallPageBytes[grp.Name] = sz
		sizes = append(sizes, sz)
	}

	switch policy {
	case LCMPage:
		lcm := sizes[0]
		var err error
		for _, sz := range sizes[1:] {
			lcm, err = LCM(lcm, sz)
			if err != nil {
				return nil, err
			}
		}
		g.LargePageBytes = lcm
	case GCDPage:
		gcd := sizes[0]
		for _, sz := range sizes[1:] {
			gcd = GCD(gcd, sz)
		}
		g.LargePageBytes = gcd
	case MaxPage:
		maxSz := sizes[0]
		for _, sz := range sizes[1:] {
			if sz > maxSz {
				maxSz = sz
			}
		}
		g.LargePageBytes = maxSz
	default:
		return nil, fmt.Errorf("model %s: unknown compat policy %d", s.Name, int(policy))
	}

	for name, sz := range g.SmallPageBytes {
		switch policy {
		case GCDPage:
			// Under GCD, small pages are split across ceil(sz/gcd)
			// large pages; the "ratio" is how many large pages one
			// small page spans (stored as a negative-free count).
			g.Ratio[name] = sz / g.LargePageBytes
			g.WastePerLargePage[name] = 0
		default:
			r := g.LargePageBytes / sz
			if r < 1 {
				return nil, fmt.Errorf("model %s group %s: small page %d exceeds large page %d",
					s.Name, name, sz, g.LargePageBytes)
			}
			if r > MaxLCMRatio {
				return nil, fmt.Errorf("model %s group %s: ratio %d exceeds cap %d",
					s.Name, name, r, MaxLCMRatio)
			}
			g.Ratio[name] = r
			g.WastePerLargePage[name] = g.LargePageBytes - r*sz
		}
	}
	return g, nil
}

// MaxRatio returns the largest small-pages-per-large-page ratio across
// groups — the paper's "84× for Jamba" statistic.
func (g *PageGeometry) MaxRatio() int {
	m := 0
	for _, r := range g.Ratio {
		if r > m {
			m = r
		}
	}
	return m
}
