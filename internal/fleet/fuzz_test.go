package fleet

import "testing"

// refDirectory is the map-based reference model: identical semantics
// to Directory (including pin-deferred invalidation), naive data
// structures. The fuzz target cross-checks every Lookup and Len
// against it.
type refDirectory struct {
	holders  map[string]map[uint64]map[int]bool
	pins     map[int]int
	deferred map[int][]refInv
}

// refInv mirrors deferredInv: one deferred block invalidation, or a
// deferred holder-wide wipe (crash while pinned).
type refInv struct {
	key dirKey
	all bool
}

func newRefDirectory() *refDirectory {
	return &refDirectory{
		holders:  make(map[string]map[uint64]map[int]bool),
		pins:     make(map[int]int),
		deferred: make(map[int][]refInv),
	}
}

func (d *refDirectory) register(replica int, group string, hash uint64) {
	gm := d.holders[group]
	if gm == nil {
		gm = make(map[uint64]map[int]bool)
		d.holders[group] = gm
	}
	if gm[hash] == nil {
		gm[hash] = make(map[int]bool)
	}
	gm[hash][replica] = true
}

func (d *refDirectory) invalidate(replica int, group string, hash uint64) {
	if d.pins[replica] > 0 {
		d.deferred[replica] = append(d.deferred[replica], refInv{key: dirKey{group, hash}})
		return
	}
	delete(d.holders[group][hash], replica)
}

func (d *refDirectory) invalidateHolder(replica int) {
	if d.pins[replica] > 0 {
		d.deferred[replica] = append(d.deferred[replica], refInv{all: true})
		return
	}
	d.wipeHolder(replica)
}

func (d *refDirectory) wipeHolder(replica int) {
	for _, gm := range d.holders {
		for _, hs := range gm {
			delete(hs, replica)
		}
	}
}

func (d *refDirectory) lookup(group string, hash uint64, exclude int) (int, bool) {
	best, ok := 0, false
	for r := range d.holders[group][hash] {
		if r == exclude {
			continue
		}
		if !ok || r < best {
			best, ok = r, true
		}
	}
	return best, ok
}

func (d *refDirectory) pin(replica int) { d.pins[replica]++ }

func (d *refDirectory) unpin(replica int) {
	if d.pins[replica] == 0 {
		return
	}
	d.pins[replica]--
	if d.pins[replica] > 0 {
		return
	}
	delete(d.pins, replica)
	for _, inv := range d.deferred[replica] {
		if inv.all {
			d.wipeHolder(replica)
		} else {
			delete(d.holders[inv.key.group][inv.key.hash], replica)
		}
	}
	delete(d.deferred, replica)
}

func (d *refDirectory) holderLen(replica int) int {
	n := 0
	for _, gm := range d.holders {
		for _, hs := range gm {
			if hs[replica] {
				n++
			}
		}
	}
	return n
}

func (d *refDirectory) len() int {
	n := 0
	for _, gm := range d.holders {
		for _, hs := range gm {
			n += len(hs)
		}
	}
	return n
}

// FuzzFleetDirectory drives random register/invalidate/lookup/pin/
// unpin/crash interleavings over a small key space against the
// map-based reference, checking after every op that (a) every
// (group, hash, exclude) lookup agrees, (b) Len agrees, and (c) the
// pinned-holder exclusion invariant holds: an invalidation — single
// block or a crash's holder-wide wipe — against a pinned replica
// never removes its entries until the final Unpin.
func FuzzFleetDirectory(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x40})
	f.Add([]byte{0x30, 0x10, 0x11, 0x20, 0x40, 0x20})
	f.Add([]byte{0x01, 0x05, 0x51})             // register two holders, crash one
	f.Add([]byte{0x31, 0x01, 0x51, 0x01, 0x41}) // crash deferred behind a pin
	f.Add([]byte{})
	const (
		replicas = 4
		hashes   = 8
	)
	groups := []string{"a", "b"}
	f.Fuzz(func(t *testing.T, ops []byte) {
		d := NewDirectory()
		ref := newRefDirectory()
		for _, b := range ops {
			op := int(b >> 4 % 6)
			replica := int(b % replicas)
			h := uint64(b>>2) % hashes
			g := groups[int(b>>1)%len(groups)]
			switch op {
			case 0:
				d.Register(replica, g, []uint64{h})
				ref.register(replica, g, h)
			case 1:
				d.Invalidate(replica, g, []uint64{h})
				ref.invalidate(replica, g, h)
			case 2:
				// lookup correctness is checked exhaustively below
			case 3:
				d.Pin(replica)
				ref.pin(replica)
			case 4:
				d.Unpin(replica)
				ref.unpin(replica)
			case 5:
				d.InvalidateHolder(replica)
				ref.invalidateHolder(replica)
			}
			if got, want := d.Len(), ref.len(); got != want {
				t.Fatalf("Len = %d, reference %d", got, want)
			}
			for r := 0; r < replicas; r++ {
				if got, want := d.HolderLen(r), ref.holderLen(r); got != want {
					t.Fatalf("HolderLen(%d) = %d, reference %d", r, got, want)
				}
			}
			for _, gg := range groups {
				for hh := uint64(0); hh < hashes; hh++ {
					for ex := -1; ex < replicas; ex++ {
						gr, gok := d.Lookup(gg, hh, ex)
						wr, wok := ref.lookup(gg, hh, ex)
						if gok != wok || (gok && gr != wr) {
							t.Fatalf("Lookup(%s,%d,%d) = %d/%v, reference %d/%v",
								gg, hh, ex, gr, gok, wr, wok)
						}
					}
				}
			}
		}
		// Drain every pin: deferred invalidations must all apply and
		// the two models must still agree.
		for r := 0; r < replicas; r++ {
			for i := 0; i < len(ops)+1; i++ {
				d.Unpin(r)
				ref.unpin(r)
			}
		}
		if got, want := d.Len(), ref.len(); got != want {
			t.Fatalf("post-drain Len = %d, reference %d", got, want)
		}
		for _, gg := range groups {
			for hh := uint64(0); hh < hashes; hh++ {
				gr, gok := d.Lookup(gg, hh, -1)
				wr, wok := ref.lookup(gg, hh, -1)
				if gok != wok || (gok && gr != wr) {
					t.Fatalf("post-drain Lookup(%s,%d) = %d/%v, reference %d/%v",
						gg, hh, gr, gok, wr, wok)
				}
			}
		}
	})
}
