package fleet

import (
	"testing"

	"jenga/internal/core"
)

// scriptedFaults fails the first `fails` transfer attempts, then
// succeeds forever.
type scriptedFaults struct{ fails int }

func (f *scriptedFaults) FailTransfer(src, dst int) bool {
	if f.fails > 0 {
		f.fails--
		return true
	}
	return false
}

// storeWithSpill builds a two-replica store where replica 0 holds a
// spilled 33-token prefix the directory knows about.
func storeWithSpill(t *testing.T) (*Store, []core.Manager) {
	t.Helper()
	s := NewStore(2)
	mgrs := []core.Manager{newMgr(t), newMgr(t)}
	for i, m := range mgrs {
		if !s.Attach(i, m) {
			t.Fatalf("Attach(%d) failed", i)
		}
	}
	seq := seqOf(1, 33)
	if err := mgrs[0].Reserve(seq, 33, 1); err != nil {
		t.Fatal(err)
	}
	mgrs[0].Commit(seq, 33, 1)
	mgrs[0].Release(seq, true)
	swapSeq := seqOf(2, 33)
	if err := mgrs[0].Reserve(swapSeq, 33, 2); err != nil {
		t.Fatal(err)
	}
	mgrs[0].Commit(swapSeq, 33, 2)
	tm0, ok := mgrs[0].(core.TierManager)
	if !ok {
		t.Fatal("manager 0 has no tier capability")
	}
	if pages, _ := tm0.SwapOut(swapSeq); pages == 0 {
		t.Fatal("SwapOut spilled nothing")
	}
	if s.Directory().Len() == 0 {
		t.Fatal("spill did not register in the directory")
	}
	return s, mgrs
}

// TestFetchRetriesWithinBound: a transient transfer fault retries and
// lands within the attempt budget; the timed-out attempt's wire bytes
// are still charged (the pages were in flight when it died).
func TestFetchRetriesWithinBound(t *testing.T) {
	s, mgrs := storeWithSpill(t)
	s.SetFaults(&scriptedFaults{fails: 1}, 3)
	fr := s.Fetch(1, seqOf(3, 33), 3)
	if fr.Tokens < 32 || fr.Fetched == 0 || fr.Failed != 0 {
		t.Fatalf("fetch after transient fault: %+v", fr)
	}
	if fr.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", fr.Retries)
	}
	if fr.Bytes <= fr.Imported {
		t.Fatalf("wasted attempt not charged: wire %d, imported %d", fr.Bytes, fr.Imported)
	}
	for _, hr := range fr.Holders {
		if hr.Attempts != 2 {
			t.Fatalf("holder attempts = %d, want 2", hr.Attempts)
		}
	}
	st := s.Stats()
	if st.MaxAttempts != 2 || st.Retries != 1 || st.Fetched == 0 {
		t.Fatalf("store stats: %+v", st)
	}
	if p := mgrs[1].Lookup(seqOf(3, 33)); p < 32 {
		t.Fatalf("post-retry lookup = %d, want ≥ 32", p)
	}
}

// TestFetchFailureIsBoundedAndObservable: a persistent fault exhausts
// exactly the attempt budget — never more — reports the holder as
// failed, imports nothing (the caller falls back to local recompute),
// and surfaces the failure in the destination tier's stats.
func TestFetchFailureIsBoundedAndObservable(t *testing.T) {
	s, mgrs := storeWithSpill(t)
	const attempts = 3
	s.SetFaults(&scriptedFaults{fails: 1 << 30}, attempts)
	fr := s.Fetch(1, seqOf(3, 33), 3)
	if fr.Tokens != 0 || fr.Imported != 0 || fr.Failed == 0 || fr.Fetched != 0 {
		t.Fatalf("failed fetch report: %+v", fr)
	}
	if fr.Bytes == 0 {
		t.Fatal("failed attempts burned no wire time")
	}
	for _, hr := range fr.Holders {
		if hr.Attempts != attempts {
			t.Fatalf("holder used %d attempts, want exactly the bound %d", hr.Attempts, attempts)
		}
		if hr.Outcome != FetchFailed || hr.Reason == "" {
			t.Fatalf("holder report: %+v", hr)
		}
	}
	if st := s.Stats(); st.MaxAttempts > attempts {
		t.Fatalf("retry loop exceeded its bound: %+v", st)
	}
	if p := mgrs[1].Lookup(seqOf(3, 33)); p != 0 {
		t.Fatalf("failed fetch still delivered pages: lookup = %d", p)
	}
	tm1, ok := mgrs[1].(core.TierManager)
	if !ok {
		t.Fatal("manager 1 has no tier capability")
	}
	ts := tm1.TierStats()
	if ts.PeerFails == 0 {
		t.Fatalf("failure not surfaced in tier stats: %+v", ts)
	}
	// The fault clears; the same fetch then succeeds.
	s.SetFaults(nil, 1)
	if fr := s.Fetch(1, seqOf(3, 33), 4); fr.Tokens < 32 {
		t.Fatalf("post-fault fetch: %+v", fr)
	}
}

// TestStoreCrashInvalidatesHolder: crashing a holder drops every
// directory entry naming it, so later fetches skip it entirely.
func TestStoreCrashInvalidatesHolder(t *testing.T) {
	s, _ := storeWithSpill(t)
	before := s.Directory().HolderLen(0)
	if before == 0 {
		t.Fatal("setup: holder 0 has no entries")
	}
	if got := s.Crash(0); got != before {
		t.Fatalf("Crash dropped %d entries, want %d", got, before)
	}
	if got := s.Directory().HolderLen(0); got != 0 {
		t.Fatalf("dangling entries after crash: %d", got)
	}
	fr := s.Fetch(1, seqOf(3, 33), 3)
	if fr.Tokens != 0 || fr.Bytes != 0 || len(fr.Holders) != 0 {
		t.Fatalf("fetch from crashed holder: %+v", fr)
	}
}

// TestInvalidateHolderDefersUnderPin: a crash invalidation arriving
// while the holder is pinned (export in flight) applies only at the
// final Unpin, after earlier deferred invalidations.
func TestInvalidateHolderDefersUnderPin(t *testing.T) {
	d := NewDirectory()
	d.Register(1, "a", []uint64{1, 2, 3})
	d.Pin(1)
	d.Invalidate(1, "a", []uint64{1})
	if got := d.InvalidateHolder(1); got != 0 {
		t.Fatalf("pinned InvalidateHolder removed %d entries immediately", got)
	}
	if got := d.HolderLen(1); got != 3 {
		t.Fatalf("pinned holder lost entries early: %d of 3 left", got)
	}
	if _, ok := d.Lookup("a", 2, -1); !ok {
		t.Fatal("pinned holder vanished from Lookup")
	}
	d.Unpin(1)
	if got := d.HolderLen(1); got != 0 {
		t.Fatalf("deferred wipe did not apply at Unpin: %d entries left", got)
	}
	if d.Len() != 0 {
		t.Fatalf("directory not empty: %d", d.Len())
	}
}
