package fleet

import "jenga/internal/core"

// Store is the cluster-wide KV store: one Directory spanning N replica
// managers plus the peer-transfer path. Attach wires a replica's
// manager into the directory (its tier notifies stores and evictions
// through a TierObserver); Fetch runs the miss path — extend the local
// prefix with peer-held blocks, export the pages from their holders,
// import them into the local tier — and reports the tokens and wire
// bytes moved so the engine can charge the peer link.
type Store struct {
	dir  *Directory
	mgrs []core.TierManager
	base []core.Manager // same replicas, plain Manager surface (Lookup)
}

// NewStore returns a store for n replicas with an empty directory.
func NewStore(n int) *Store {
	return &Store{
		dir:  NewDirectory(),
		mgrs: make([]core.TierManager, n),
		base: make([]core.Manager, n),
	}
}

// Directory exposes the store's directory (tests, stats).
func (s *Store) Directory() *Directory { return s.dir }

// Attach wires replica's manager into the store. Managers without the
// TierManager capability (or without a configured host tier) simply
// never contribute: Attach is a no-op and reports false.
func (s *Store) Attach(replica int, mgr core.Manager) bool {
	tm, ok := mgr.(core.TierManager)
	if !ok || replica < 0 || replica >= len(s.mgrs) {
		return false
	}
	tm.SetTierObserver(&dirObserver{dir: s.dir, replica: replica})
	s.mgrs[replica] = tm
	s.base[replica] = mgr
	return true
}

// Fetch runs the fleet miss path for a sequence about to be admitted
// on replica dst: if peers extend the locally cached prefix, export
// the needed pages from their holders and import them into dst's host
// tier, so dst's own claim restores them like locally spilled pages.
// It returns the prefix tokens gained over the local lookup and the
// wire bytes moved (both zero when peers add nothing). Transfer
// sources are directory-pinned for the duration of their export, and
// pinned tier pages are never exported — mid-restore state stays
// private to its replica.
func (s *Store) Fetch(dst int, seq *core.Sequence, now core.Tick) (tokens int, bytes int64) {
	if dst < 0 || dst >= len(s.mgrs) || s.mgrs[dst] == nil {
		return 0, 0
	}
	tm := s.mgrs[dst]
	peer := func(group string, hash uint64) bool {
		_, ok := s.dir.Lookup(group, hash, dst)
		return ok
	}
	p, fetch := tm.LookupFleet(seq, peer)
	if len(fetch) == 0 {
		return 0, 0
	}
	local := s.base[dst].Lookup(seq)
	if p <= local {
		return 0, 0
	}
	// Batch the fetch list by (source replica, group) in first-seen
	// order so each holder exports once per group.
	type batchKey struct {
		src   int
		group string
	}
	var order []batchKey
	batches := make(map[batchKey][]uint64)
	for _, fb := range fetch {
		src, ok := s.dir.Lookup(fb.Group, fb.Hash, dst)
		if !ok {
			continue
		}
		k := batchKey{src, fb.Group}
		if _, seen := batches[k]; !seen {
			order = append(order, k)
		}
		batches[k] = append(batches[k], fb.Hash)
	}
	for _, k := range order {
		src := s.mgrs[k.src]
		if src == nil {
			continue
		}
		s.dir.Pin(k.src)
		ps, ok := src.ExportPrefix(k.group, batches[k])
		s.dir.Unpin(k.src)
		if !ok {
			continue
		}
		_, b := tm.ImportPrefix(ps, now)
		bytes += b
	}
	if bytes == 0 {
		return 0, 0
	}
	return p - local, bytes
}

// dirObserver adapts one replica's tier notifications onto the shared
// directory.
type dirObserver struct {
	dir     *Directory
	replica int
}

func (o *dirObserver) TierStored(group string, hashes []uint64) {
	o.dir.Register(o.replica, group, hashes)
}

func (o *dirObserver) TierEvicted(group string, hashes []uint64) {
	o.dir.Invalidate(o.replica, group, hashes)
}
