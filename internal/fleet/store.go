package fleet

import "jenga/internal/core"

// Store is the cluster-wide KV store: one Directory spanning N replica
// managers plus the peer-transfer path. Attach wires a replica's
// manager into the directory (its tier notifies stores and evictions
// through a TierObserver); Fetch runs the miss path — extend the local
// prefix with peer-held blocks, export the pages from their holders,
// import them into the local tier — and reports every holder's
// outcome plus the tokens and wire bytes moved, so the engine can
// charge the peer link and partial results are observable instead of
// silent.
type Store struct {
	dir  *Directory
	mgrs []core.TierManager
	base []core.Manager // same replicas, plain Manager surface (Lookup)
	// faults, when set, decides whether each transfer attempt fails;
	// attempts bounds the per-batch retry loop (≥ 1; 1 = no retry,
	// the historical behavior). Both are written only between runs
	// and read only from the serial arrival loop.
	faults   TransferFaults
	attempts int
	stats    StoreStats
}

// TransferFaults decides whether one peer-transfer attempt from
// replica src to replica dst fails (timeout, link error) — the fault
// injection seam. chaos.Cursor satisfies it structurally.
type TransferFaults interface {
	FailTransfer(src, dst int) bool
}

// StoreStats aggregates transfer outcomes across every Fetch since
// the store was built — the retry-bound and failure-visibility
// surface for cluster results.
type StoreStats struct {
	// Fetched/Skipped/Failed count holder batches by outcome;
	// Retries counts failed attempts that were retried.
	Fetched, Skipped, Failed, Retries int64
	// MaxAttempts is the largest attempt count any single batch used
	// (never exceeds the configured bound).
	MaxAttempts int
}

// FetchOutcome classifies one holder batch's result.
type FetchOutcome uint8

const (
	// FetchOK: the holder's pages were exported and imported.
	FetchOK FetchOutcome = iota
	// FetchSkipped: the holder had nothing left to export by transfer
	// time (tier churn beat the fetch) — fall back to local recompute.
	FetchSkipped
	// FetchFailed: every transfer attempt faulted — fall back to
	// local recompute.
	FetchFailed
)

// String names the outcome for reports.
func (o FetchOutcome) String() string {
	switch o {
	case FetchOK:
		return "fetched"
	case FetchSkipped:
		return "skipped"
	case FetchFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// HolderReport is one (holder, group) batch's outcome within a Fetch.
type HolderReport struct {
	Holder  int
	Group   string
	Blocks  int
	Outcome FetchOutcome
	// Reason explains a skip or failure ("" for FetchOK).
	Reason string
	// Attempts is how many transfer attempts ran (≥ 1 once the export
	// succeeded; 0 for batches skipped before any transfer).
	Attempts int
	// Bytes is the wire volume this batch charged — imported pages
	// plus every timed-out attempt's wasted transfer.
	Bytes int64
}

// FetchReport is the full outcome of one Store.Fetch.
type FetchReport struct {
	// Tokens is the prefix length gained over the local lookup (0
	// when nothing landed); Bytes the total peer-link wire volume to
	// charge, failed attempts included; Imported the successfully
	// injected share of Bytes.
	Tokens   int
	Bytes    int64
	Imported int64
	// Holders details every (holder, group) batch in first-seen
	// order; the counters tally them by outcome.
	Holders                  []HolderReport
	Fetched, Skipped, Failed int
	Retries                  int
}

// NewStore returns a store for n replicas with an empty directory.
func NewStore(n int) *Store {
	return &Store{
		dir:      NewDirectory(),
		mgrs:     make([]core.TierManager, n),
		base:     make([]core.Manager, n),
		attempts: 1,
	}
}

// Directory exposes the store's directory (tests, stats).
func (s *Store) Directory() *Directory { return s.dir }

// SetFaults installs the transfer fault decider and the per-batch
// attempt bound (values < 1 mean 1 — no retry). Pass (nil, 1) to
// clear. Recovery-enabled clusters raise attempts so transient faults
// retry with the wasted wire time charged as backoff; the final
// failure falls back to local recompute.
func (s *Store) SetFaults(f TransferFaults, attempts int) {
	if attempts < 1 {
		attempts = 1
	}
	s.faults = f
	s.attempts = attempts
}

// Stats snapshots the store's aggregate transfer counters.
func (s *Store) Stats() StoreStats { return s.stats }

// Crash invalidates every directory entry naming replica as a holder
// — its tier died with its process, so each entry is dangling; peers
// must stop trying to fetch from it. Returns the number of entries
// dropped. The replica's manager stays attached: after a restart its
// cold tier re-registers new content through the same observer.
func (s *Store) Crash(replica int) int {
	return s.dir.InvalidateHolder(replica)
}

// Attach wires replica's manager into the store. Managers without the
// TierManager capability (or without a configured host tier) simply
// never contribute: Attach is a no-op and reports false.
func (s *Store) Attach(replica int, mgr core.Manager) bool {
	tm, ok := mgr.(core.TierManager)
	if !ok || replica < 0 || replica >= len(s.mgrs) {
		return false
	}
	tm.SetTierObserver(&dirObserver{dir: s.dir, replica: replica})
	s.mgrs[replica] = tm
	s.base[replica] = mgr
	return true
}

// peerFetchNoter is the optional destination-tier capability that
// records skip/fail counts into tier stats (core.Jenga implements
// it).
type peerFetchNoter interface {
	NotePeerFetch(skipped, failed int64)
}

// Fetch runs the fleet miss path for a sequence about to be admitted
// on replica dst: if peers extend the locally cached prefix, export
// the needed pages from their holders and import them into dst's host
// tier, so dst's own claim restores them like locally spilled pages.
// The report carries every holder's outcome — fetched, skipped or
// failed, with the per-batch attempt count — plus the prefix tokens
// gained over the local lookup and the wire bytes to charge (timed-out
// attempts burn wire time too: the pages were in flight when the
// transfer died). Transfer sources are directory-pinned for the
// duration of their export, and pinned tier pages are never exported —
// mid-restore state stays private to its replica. Batches that skip
// or fail fall back to local recompute naturally: the destination
// simply never sees their pages.
func (s *Store) Fetch(dst int, seq *core.Sequence, now core.Tick) FetchReport {
	var rep FetchReport
	if dst < 0 || dst >= len(s.mgrs) || s.mgrs[dst] == nil {
		return rep
	}
	tm := s.mgrs[dst]
	peer := func(group string, hash uint64) bool {
		_, ok := s.dir.Lookup(group, hash, dst)
		return ok
	}
	p, fetch := tm.LookupFleet(seq, peer)
	if len(fetch) == 0 {
		return rep
	}
	local := s.base[dst].Lookup(seq)
	if p <= local {
		return rep
	}
	// Batch the fetch list by (source replica, group) in first-seen
	// order so each holder exports once per group.
	type batchKey struct {
		src   int
		group string
	}
	var order []batchKey
	batches := make(map[batchKey][]uint64)
	for _, fb := range fetch {
		src, ok := s.dir.Lookup(fb.Group, fb.Hash, dst)
		if !ok {
			continue
		}
		k := batchKey{src, fb.Group}
		if _, seen := batches[k]; !seen {
			order = append(order, k)
		}
		batches[k] = append(batches[k], fb.Hash)
	}
	for _, k := range order {
		hr := HolderReport{Holder: k.src, Group: k.group, Blocks: len(batches[k])}
		src := s.mgrs[k.src]
		if src == nil {
			hr.Outcome, hr.Reason = FetchSkipped, "holder detached"
			rep.Holders = append(rep.Holders, hr)
			rep.Skipped++
			continue
		}
		s.dir.Pin(k.src)
		ps, ok := src.ExportPrefix(k.group, batches[k])
		s.dir.Unpin(k.src)
		if !ok {
			hr.Outcome, hr.Reason = FetchSkipped, "nothing to export"
			rep.Holders = append(rep.Holders, hr)
			rep.Skipped++
			continue
		}
		for {
			hr.Attempts++
			if s.faults != nil && s.faults.FailTransfer(k.src, dst) {
				hr.Bytes += ps.Bytes()
				if hr.Attempts >= s.attempts {
					hr.Outcome, hr.Reason = FetchFailed, "transfer timeout"
					break
				}
				rep.Retries++
				continue
			}
			_, b := tm.ImportPrefix(ps, now)
			hr.Bytes += b
			rep.Imported += b
			hr.Outcome = FetchOK
			break
		}
		rep.Holders = append(rep.Holders, hr)
		switch hr.Outcome {
		case FetchOK:
			rep.Fetched++
		case FetchFailed:
			rep.Failed++
		}
		rep.Bytes += hr.Bytes
		if hr.Attempts > s.stats.MaxAttempts {
			s.stats.MaxAttempts = hr.Attempts
		}
	}
	s.stats.Fetched += int64(rep.Fetched)
	s.stats.Skipped += int64(rep.Skipped)
	s.stats.Failed += int64(rep.Failed)
	s.stats.Retries += int64(rep.Retries)
	// Surface non-delivering holders in the destination tier's stats:
	// a partial fetch must be observable, not silent.
	if rep.Skipped > 0 || rep.Failed > 0 {
		if noter, ok := tm.(peerFetchNoter); ok {
			noter.NotePeerFetch(int64(rep.Skipped), int64(rep.Failed))
		}
	}
	if rep.Imported > 0 {
		rep.Tokens = p - local
	}
	return rep
}

// dirObserver adapts one replica's tier notifications onto the shared
// directory.
type dirObserver struct {
	dir     *Directory
	replica int
}

func (o *dirObserver) TierStored(group string, hashes []uint64) {
	o.dir.Register(o.replica, group, hashes)
}

func (o *dirObserver) TierEvicted(group string, hashes []uint64) {
	o.dir.Invalidate(o.replica, group, hashes)
}
