// Package fleet promotes the per-replica host tier (PR 5) to a
// cluster-wide KV store and builds live request migration on the same
// transfer path.
//
// The pieces: a Directory mapping (group, block hash) → the replica
// IDs whose host tiers hold a live copy, kept consistent through the
// core.TierObserver callbacks (registered when a page is stored,
// invalidated when its live copy is evicted); and a Store that wires
// one Directory across N replica managers and runs the transfer path —
// on a local prefix miss it asks core.LookupFleet how far peers extend
// the prefix, exports the needed pages from the holder, and imports
// them into the local tier, where the ordinary claim path restores
// them. The engine charges the moved bytes as peer-link DMA
// (gpu.StepWork.PeerBytes), not PCIe.
//
// Nothing here runs its own goroutines; the cluster's serial arrival
// loop is the only writer during routing, and the Directory carries a
// mutex only so the concurrent drain phase's evictions stay safe.
//
//jenga:concurrent the directory mutex serializes observer callbacks arriving from concurrent replica goroutines
package fleet

import "sync"

// Directory tracks which replicas' host tiers hold which prefix
// blocks. Lookup is deterministic: the lowest-numbered holder wins,
// regardless of registration order. Pin defers invalidations for a
// replica while one of its exports is in flight, so a transfer source
// never vanishes from the directory mid-copy (the pinned-holder
// exclusion invariant, fuzzed in FuzzFleetDirectory).
type Directory struct {
	mu      sync.Mutex
	holders map[string]map[uint64][]int // group → hash → sorted replica IDs
	pins    map[int]int                 // replica → pin depth
	// deferred holds invalidations that arrived while their replica
	// was pinned; they apply in arrival order at the final Unpin.
	deferred map[int][]deferredInv
}

type dirKey struct {
	group string
	hash  uint64
}

// deferredInv is one pin-deferred invalidation: a single block, or —
// for a crash arriving mid-export — the holder's entire entry set.
type deferredInv struct {
	key dirKey
	all bool
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		holders:  make(map[string]map[uint64][]int),
		pins:     make(map[int]int),
		deferred: make(map[int][]deferredInv),
	}
}

// Register records that replica holds a live tier copy of each block.
func (d *Directory) Register(replica int, group string, hashes []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	gm := d.holders[group]
	if gm == nil {
		gm = make(map[uint64][]int)
		d.holders[group] = gm
	}
	for _, h := range hashes {
		gm[h] = insertHolder(gm[h], replica)
	}
}

// Invalidate removes replica as a holder of each block. While the
// replica is pinned (an export in flight) the removal is deferred to
// Unpin so concurrent tier eviction cannot drop a transfer source
// from under a reader.
func (d *Directory) Invalidate(replica int, group string, hashes []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pins[replica] > 0 {
		for _, h := range hashes {
			d.deferred[replica] = append(d.deferred[replica], deferredInv{key: dirKey{group, h}})
		}
		return
	}
	for _, h := range hashes {
		d.remove(replica, group, h)
	}
}

// InvalidateHolder removes every entry naming replica as a holder —
// the crash path: the replica's tier died with its process, so each
// of its entries is dangling. While the replica is pinned (an export
// in flight) the wipe is deferred to the final Unpin, ordered after
// any invalidations deferred before it. Returns the number of entries
// removed immediately (a deferred wipe reports 0 and applies later).
func (d *Directory) InvalidateHolder(replica int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pins[replica] > 0 {
		d.deferred[replica] = append(d.deferred[replica], deferredInv{all: true})
		return 0
	}
	return d.removeHolder(replica)
}

// removeHolder drops replica from every holder list, returning the
// entry count removed. Caller holds the mutex.
func (d *Directory) removeHolder(replica int) int {
	n := 0
	//jenga:order-ok each (group,hash) cell is edited independently and exactly once; no cross-cell state
	for g, gm := range d.holders {
		//jenga:order-ok per-cell mutation of the ranged map itself; unique keys commute
		for h, hs := range gm {
			for i, r := range hs {
				if r != replica {
					continue
				}
				n++
				hs = append(hs[:i], hs[i+1:]...)
				if len(hs) == 0 {
					delete(gm, h)
				} else {
					gm[h] = hs
				}
				break
			}
		}
		if len(gm) == 0 {
			delete(d.holders, g)
		}
	}
	return n
}

// Lookup returns the lowest-numbered holder of (group, hash) other
// than exclude, or false when no peer holds it. Pass a negative
// exclude to consider every holder.
func (d *Directory) Lookup(group string, hash uint64, exclude int) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.holders[group][hash] {
		if r != exclude {
			return r, true
		}
	}
	return 0, false
}

// Pin marks replica as an in-flight transfer source: invalidations
// against it are deferred until the matching Unpin. Pins nest.
func (d *Directory) Pin(replica int) {
	d.mu.Lock()
	d.pins[replica]++
	d.mu.Unlock()
}

// Unpin releases one Pin; the last release applies any deferred
// invalidations.
func (d *Directory) Unpin(replica int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pins[replica] == 0 {
		return
	}
	d.pins[replica]--
	if d.pins[replica] > 0 {
		return
	}
	delete(d.pins, replica)
	for _, inv := range d.deferred[replica] {
		if inv.all {
			d.removeHolder(replica)
		} else {
			d.remove(replica, inv.key.group, inv.key.hash)
		}
	}
	delete(d.deferred, replica)
}

// HolderLen returns the number of live entries naming replica as a
// holder — the "no directory entry points at a dead holder" recovery
// invariant's test surface.
func (d *Directory) HolderLen(replica int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, gm := range d.holders {
		for _, hs := range gm {
			for _, r := range hs {
				if r == replica {
					n++
				}
			}
		}
	}
	return n
}

// Len returns the number of live (group, hash, holder) entries —
// test and stats surface.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, gm := range d.holders {
		for _, hs := range gm {
			n += len(hs)
		}
	}
	return n
}

// remove drops replica from (group, hash)'s holder list. Caller holds
// the mutex.
func (d *Directory) remove(replica int, group string, hash uint64) {
	gm := d.holders[group]
	hs := gm[hash]
	for i, r := range hs {
		if r == replica {
			hs = append(hs[:i], hs[i+1:]...)
			break
		}
	}
	if len(hs) == 0 {
		delete(gm, hash)
		if len(gm) == 0 {
			delete(d.holders, group)
		}
	} else {
		gm[hash] = hs
	}
}

// insertHolder adds replica to a sorted holder list, deduplicating.
func insertHolder(hs []int, replica int) []int {
	for i, r := range hs {
		if r == replica {
			return hs
		}
		if r > replica {
			hs = append(hs, 0)
			copy(hs[i+1:], hs[i:])
			hs[i] = replica
			return hs
		}
	}
	return append(hs, replica)
}
