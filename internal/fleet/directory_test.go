package fleet

import "testing"

func TestDirectoryLowestHolderWins(t *testing.T) {
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		d := NewDirectory()
		for _, r := range order {
			d.Register(r, "g", []uint64{42})
		}
		if got, ok := d.Lookup("g", 42, -1); !ok || got != 0 {
			t.Fatalf("order %v: Lookup = %d/%v, want 0/true", order, got, ok)
		}
		if got, ok := d.Lookup("g", 42, 0); !ok || got != 1 {
			t.Fatalf("order %v: Lookup excl 0 = %d/%v, want 1/true", order, got, ok)
		}
	}
}

func TestDirectoryInvalidate(t *testing.T) {
	d := NewDirectory()
	d.Register(0, "g", []uint64{1, 2})
	d.Register(1, "g", []uint64{1})
	d.Invalidate(0, "g", []uint64{1})
	if got, ok := d.Lookup("g", 1, -1); !ok || got != 1 {
		t.Fatalf("Lookup = %d/%v, want 1/true", got, ok)
	}
	d.Invalidate(1, "g", []uint64{1})
	if _, ok := d.Lookup("g", 1, -1); ok {
		t.Fatal("hash 1 still has holders")
	}
	if got, ok := d.Lookup("g", 2, -1); !ok || got != 0 {
		t.Fatalf("hash 2 Lookup = %d/%v, want 0/true", got, ok)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	// Double registration is idempotent.
	d.Register(0, "g", []uint64{2})
	if d.Len() != 1 {
		t.Fatalf("Len after re-register = %d, want 1", d.Len())
	}
}

func TestDirectoryPinDefersInvalidation(t *testing.T) {
	d := NewDirectory()
	d.Register(0, "g", []uint64{7})
	d.Pin(0)
	d.Invalidate(0, "g", []uint64{7})
	// Pinned: the entry survives (an export may be reading it).
	if got, ok := d.Lookup("g", 7, -1); !ok || got != 0 {
		t.Fatalf("pinned Lookup = %d/%v, want 0/true", got, ok)
	}
	// Nested pins: only the last Unpin applies the deferral.
	d.Pin(0)
	d.Unpin(0)
	if _, ok := d.Lookup("g", 7, -1); !ok {
		t.Fatal("entry vanished while still pinned once")
	}
	d.Unpin(0)
	if _, ok := d.Lookup("g", 7, -1); ok {
		t.Fatal("deferred invalidation never applied")
	}
	// Unpin without a pin is a no-op.
	d.Unpin(0)
	// Invalidation of an unpinned replica applies immediately even
	// while another replica is pinned.
	d.Register(0, "g", []uint64{8})
	d.Register(1, "g", []uint64{8})
	d.Pin(1)
	d.Invalidate(0, "g", []uint64{8})
	if got, ok := d.Lookup("g", 8, -1); !ok || got != 1 {
		t.Fatalf("Lookup = %d/%v, want 1/true", got, ok)
	}
	d.Unpin(1)
}
