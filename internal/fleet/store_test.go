package fleet

import (
	"testing"

	"jenga/internal/core"
	"jenga/internal/model"
)

func storeSpec() *model.Spec {
	return &model.Spec{
		Name: "flat", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "kv", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128},
		},
	}
}

func newMgr(t *testing.T) core.Manager {
	t.Helper()
	m, err := core.New(core.Config{
		Spec: storeSpec(), CapacityBytes: 1 << 16, TokensPerPage: 4,
		EnablePrefixCache: true, RequestAware: true, Backed: true,
		HostTierBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// seqOf builds a sequence with deterministic token content.
func seqOf(id int64, n int) *core.Sequence {
	toks := make([]core.Token, n)
	for i := range toks {
		toks[i] = core.Token{ID: int32(i%97 + 1)}
	}
	return &core.Sequence{ID: core.RequestID(id), PromptLen: n, Tokens: toks}
}

// TestStoreFetchMovesPrefix: replica 0 computes and spills a prefix;
// a Fetch for replica 1 finds it through the directory, moves the
// pages, and replica 1's local lookup serves the prefix afterwards.
func TestStoreFetchMovesPrefix(t *testing.T) {
	s := NewStore(2)
	mgrs := []core.Manager{newMgr(t), newMgr(t)}
	for i, m := range mgrs {
		if !s.Attach(i, m) {
			t.Fatalf("Attach(%d) failed", i)
		}
	}

	// Replica 0 serves the prefix, then spills it under pressure.
	seq := seqOf(1, 33)
	if err := mgrs[0].Reserve(seq, 33, 1); err != nil {
		t.Fatal(err)
	}
	mgrs[0].Commit(seq, 33, 1)
	mgrs[0].Release(seq, true)
	tm, ok := mgrs[0].(core.TierManager)
	if !ok {
		t.Fatal("manager 0 has no tier capability")
	}
	swapSeq := seqOf(2, 33)
	if err := mgrs[0].Reserve(swapSeq, 33, 2); err != nil {
		t.Fatal(err)
	}
	mgrs[0].Commit(swapSeq, 33, 2)
	if pages, _ := tm.SwapOut(swapSeq); pages == 0 {
		t.Fatal("SwapOut spilled nothing")
	}
	if s.Directory().Len() == 0 {
		t.Fatal("spill did not register in the directory")
	}

	// Replica 1 misses locally; the fleet store fills its tier.
	probe := seqOf(3, 33)
	if p := mgrs[1].Lookup(probe); p != 0 {
		t.Fatalf("replica 1 local lookup = %d, want 0", p)
	}
	fr := s.Fetch(1, probe, 3)
	if fr.Tokens < 32 || fr.Bytes == 0 {
		t.Fatalf("Fetch = %d tokens/%d bytes, want ≥ 32 tokens and > 0 bytes", fr.Tokens, fr.Bytes)
	}
	if fr.Fetched == 0 || fr.Failed != 0 || len(fr.Holders) == 0 {
		t.Fatalf("fetch report: %+v", fr)
	}
	for _, hr := range fr.Holders {
		if hr.Outcome != FetchOK || hr.Attempts != 1 || hr.Holder != 0 {
			t.Fatalf("holder report: %+v", hr)
		}
	}
	if fr.Imported != fr.Bytes {
		t.Fatalf("fault-free fetch: imported %d ≠ wire %d", fr.Imported, fr.Bytes)
	}
	if p := mgrs[1].Lookup(probe); p < 32 {
		t.Fatalf("post-fetch local lookup = %d, want ≥ 32", p)
	}
	tm1, ok := mgrs[1].(core.TierManager)
	if !ok {
		t.Fatal("manager 1 has no tier capability")
	}
	if ts := tm1.TierStats(); ts.PeerImports == 0 {
		t.Fatalf("replica 1 tier stats: %+v", ts)
	}

	// A second fetch for the same prefix is a no-op: it is local now.
	if fr := s.Fetch(1, probe, 4); fr.Tokens != 0 || fr.Bytes != 0 {
		t.Fatalf("repeat Fetch = %d/%d, want 0/0", fr.Tokens, fr.Bytes)
	}
	// Unattached or out-of-range destinations are safe no-ops.
	if fr := s.Fetch(7, probe, 5); fr.Tokens != 0 || fr.Bytes != 0 {
		t.Fatalf("out-of-range Fetch = %d/%d, want 0/0", fr.Tokens, fr.Bytes)
	}
}
