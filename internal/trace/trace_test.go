package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1.23456)
	tbl.AddRow("b", 42)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## demo", "name", "value", "alpha", "1.235", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
	// Columns align: header and rows share the first column width.
	if !strings.HasPrefix(lines[3], "alpha ") {
		t.Errorf("row not aligned: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("x", float32(2.5))
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a,b\nx,2.500\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteSeriesCSV(&sb,
		Series{Name: "s1", Points: []float64{1, 2, 3}},
		Series{Name: "s2", Points: []float64{9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "idx,s1,s2" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "1,2.0000,") || !strings.HasSuffix(lines[2], ",") {
		t.Errorf("short series should pad: %q", lines[2])
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if len([]rune(s)) != 8 {
		t.Errorf("expected 8 runes, got %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	// Downsampled to width.
	wide := make([]float64, 100)
	for i := range wide {
		wide[i] = float64(i)
	}
	if got := len([]rune(Sparkline(wide, 20))); got != 20 {
		t.Errorf("downsampled width = %d, want 20", got)
	}
	// Constant series: all minimum blocks, no panic.
	flat := Sparkline([]float64{5, 5, 5}, 10)
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should be all low blocks: %q", flat)
		}
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := NewTable("My Table §1", "a", "b")
	tbl.AddRow(1, 2)
	if err := tbl.SaveCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "my-table-1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("csv content = %q", string(data))
	}
	// A title with no legal runes falls back to "table".
	empty := NewTable("§§", "x")
	if err := empty.SaveCSV(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table.csv")); err != nil {
		t.Error("fallback slug missing")
	}
}
