// Package trace renders experiment output: aligned text tables for the
// terminal (the paper's rows/series) and CSV files for replotting.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v, floats with
// three significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// SaveCSV writes the table as <dir>/<slug-of-title>.csv.
func (t *Table) SaveCSV(dir string) error {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == ' ' || r == '-' || r == '_':
			return '-'
		default:
			return -1
		}
	}, strings.ToLower(t.Title))
	if slug == "" {
		slug = "table"
	}
	f, err := os.Create(filepath.Join(dir, slug+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// WriteCSV writes headers and rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is a named numeric sequence (one figure line).
type Series struct {
	Name   string
	Points []float64
}

// WriteSeriesCSV writes aligned series as CSV columns with an index
// column; shorter series pad with empty cells.
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	cw := csv.NewWriter(w)
	head := []string{"idx"}
	maxLen := 0
	for _, s := range series {
		head = append(head, s.Name)
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.4f", s.Points[i]))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sparkline renders a compact unicode sketch of a series (for terminal
// figure output).
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if width > 0 && len(xs) > width {
		stride := float64(len(xs)) / float64(width)
		ds := make([]float64, 0, width)
		for i := 0; i < width; i++ {
			ds = append(ds, xs[int(float64(i)*stride)])
		}
		xs = ds
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
