package experiments

import (
	"fmt"
	"io"

	"jenga/internal/baseline"
	"jenga/internal/gpu"
	"jenga/internal/metrics"
	"jenga/internal/model"
	"jenga/internal/spec"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// Fig19 reproduces the speculative-decoding comparison: each target
// model runs with its draft under three memory strategies — vLLM-max
// (one uniform page size, set by the target), vLLM-manual (SmartSpec's
// static split) and Jenga (one shared heap, per-model page sizes).
//
// Paper shapes: on heterogeneous targets Jenga wins (Gemma-2 1.12×,
// Ministral 1.07×, character 3.30× over the best baseline); on plain
// Llama, Jenga matches vLLM-manual (0.97×), showing the automatic
// manager reaches the hand-tuned optimum for self-attention models.
func Fig19(w io.Writer, opt Options) error {
	opt = opt.norm()
	dev := gpu.H100()

	type entry struct {
		label         string
		target, draft *model.Spec
		load          func(g *workload.Gen, n int) []workload.Request
		baseN         int
		paper         string
	}
	entries := []entry{
		{label: "Gemma2", target: model.Gemma2_27B(), draft: model.Gemma2_2B(),
			load: mmluLoad(64), baseN: 64, paper: "1.12x"},
		{label: "Ministral*", target: model.Ministral8B(), draft: model.MinistralDraft1B(),
			load: arxivLoad(60000), baseN: 12, paper: "1.07x"},
		{label: "character", target: model.CharacterAI70B(), draft: model.Llama32_1B(),
			load: mmluLoad(64), baseN: 64, paper: "3.30x"},
		{label: "Llama", target: model.Llama31_70B(), draft: model.Llama32_1B(),
			load: mmluLoad(64), baseN: 48, paper: "0.97x"},
	}

	tbl := trace.NewTable("Fig. 19 speculative decoding throughput (H100)",
		"model", "vLLM-max req/s", "vLLM-manual req/s", "Jenga req/s",
		"Jenga vs best baseline", "paper (vs manual)")

	for _, e := range entries {
		budget, err := gpu.KVBudget(e.target, dev, 0)
		if err != nil {
			return err
		}
		// The draft's weights also occupy device memory.
		budget -= e.draft.WeightFootprint()
		if budget <= 0 {
			tbl.AddRow(e.label, "OOM", "OOM", "OOM", "-", e.paper)
			continue
		}
		n := opt.n(e.baseN)
		run := func(ms baseline.Managers) (float64, error) {
			d, err := spec.New(spec.Config{
				Target: e.target, Draft: e.draft, Device: dev,
				Managers: ms, K: 4, AcceptRate: 0.7,
			})
			if err != nil {
				return 0, err
			}
			g := workload.NewGen(opt.Seed)
			res, err := d.Run(e.load(g, n))
			if err != nil {
				return 0, err
			}
			return res.ReqPerSec, nil
		}

		vmaxM, err := baseline.NewVLLMMax(e.target, e.draft, budget, opt.TokensPerPage, false)
		if err != nil {
			return err
		}
		vmax, err := run(vmaxM)
		if err != nil {
			return fmt.Errorf("fig19 %s vmax: %w", e.label, err)
		}
		manualM, err := baseline.NewVLLMManual(e.target, e.draft, budget, opt.TokensPerPage, false, 4)
		if err != nil {
			return err
		}
		manual, err := run(manualM)
		if err != nil {
			return fmt.Errorf("fig19 %s manual: %w", e.label, err)
		}
		sharedM, err := baseline.NewJengaShared(e.target, e.draft, budget, opt.TokensPerPage, false)
		if err != nil {
			return err
		}
		shared, err := run(sharedM)
		if err != nil {
			return fmt.Errorf("fig19 %s jenga: %w", e.label, err)
		}
		best := vmax
		if manual > best {
			best = manual
		}
		tbl.AddRow(e.label,
			fmt.Sprintf("%.3f", vmax),
			fmt.Sprintf("%.3f", manual),
			fmt.Sprintf("%.3f", shared),
			fmt.Sprintf("%.2fx", metrics.Speedup(shared, best)),
			e.paper)
	}
	return emit(w, opt, tbl)
}
