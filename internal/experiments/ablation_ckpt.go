package experiments

import (
	"fmt"
	"io"

	"jenga/internal/core"
	"jenga/internal/model"
	"jenga/internal/trace"
)

// AblationCheckpoint sweeps the Mamba state-checkpoint interval (§5.3
// fixes it at 512; Marconi [38] proposes smarter selection). Shorter
// intervals raise the prefix-cache hit length on repeated prompts but
// multiply the cached-state footprint — Jamba's state is 147 MB per
// checkpoint, so the interval is a real capacity knob.
func AblationCheckpoint(w io.Writer, opt Options) error {
	opt = opt.norm()
	base := model.Jamba52B()
	promptLen := 3000

	tbl := trace.NewTable("§5.3 Mamba checkpoint-interval ablation (Jamba, repeated 3000-token prompt)",
		"interval", "hit tokens", "hit %", "cached state GB per request", "checkpoints")
	for _, every := range []int{256, 512, 1024, 2048} {
		spec := *base
		spec.Groups = append([]model.KVGroup{}, base.Groups...)
		spec.Groups[1].CheckpointEvery = every
		mgr, err := core.New(core.Config{
			Spec: &spec, CapacityBytes: 40 << 30, TokensPerPage: opt.TokensPerPage,
			EnablePrefixCache: true, RequestAware: true,
		})
		if err != nil {
			return err
		}
		seq := &core.Sequence{ID: 1, PromptLen: promptLen}
		for i := 0; i < promptLen; i++ {
			seq.Tokens = append(seq.Tokens, core.Token{ID: int32(i%50000 + 1)})
		}
		if err := mgr.Reserve(seq, promptLen, 1); err != nil {
			return fmt.Errorf("ablation-ckpt interval %d: %w", every, err)
		}
		mgr.Commit(seq, promptLen, 1)
		mgr.Release(seq, true)

		probe := &core.Sequence{ID: 2, PromptLen: promptLen, Tokens: seq.Tokens}
		hit := mgr.Lookup(probe)
		ckpts := promptLen / every
		stateGB := float64(ckpts) * float64(spec.Groups[1].StateBytes) * float64(spec.Groups[1].Layers) / (1 << 30)
		tbl.AddRow(every, hit,
			fmt.Sprintf("%.1f", 100*float64(hit)/float64(promptLen)),
			fmt.Sprintf("%.2f", stateGB), ckpts)
	}
	return emit(w, opt, tbl)
}
