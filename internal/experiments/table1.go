package experiments

import (
	"fmt"
	"io"

	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/trace"
)

// Table1 reproduces the paper's Table 1: the evaluated models, their
// datasets, and per-device sizes (★ marks fp8 quantization), extended
// with the KV-group structure each model declares — the information
// Jenga actually consumes.
func Table1(w io.Writer, opt Options) error {
	opt = opt.norm()
	type row struct {
		spec    *model.Spec
		dataset string
		h100    string
		l4      string
	}
	rows := []row{
		{model.Llama32Vision11B(), "MMMU-pro", "11B", "11B*"},
		{model.Gemma2_27B(), "arXiv-QA", "27B", "9B"},
		{model.Ministral8B(), "arXiv-QA", "8B", "8B*"},
		{model.Jamba52B(), "MMLU-pro", "52B*", "OOM"},
		{model.CharacterAI70B(), "MMLU-pro", "70B*", "8B"},
		{model.PyramidKV70B(), "MMLU-pro", "70B*", "8B"},
		{model.Llama31_70B(), "MMLU-pro", "70B*", "8B"},
	}
	tbl := trace.NewTable("Table 1: models and datasets (★ = FP8)",
		"model", "dataset", "H100", "L4", "KV groups", "LCM page MiB", "max ratio")
	for _, r := range rows {
		geo, err := r.spec.Geometry(model.LCMPage, opt.TokensPerPage)
		if err != nil {
			return err
		}
		groups := ""
		for i := range r.spec.Groups {
			g := &r.spec.Groups[i]
			if i > 0 {
				groups += " + "
			}
			groups += fmt.Sprintf("%d×%v", g.Layers, g.Kind)
		}
		tbl.AddRow(r.spec.Name, r.dataset, r.h100, r.l4, groups,
			fmt.Sprintf("%.2f", float64(geo.LargePageBytes)/(1<<20)),
			geo.MaxRatio())
	}
	if err := emit(w, opt, tbl); err != nil {
		return err
	}

	// The Fig. 18 VLMs and Fig. 19 drafts complete the zoo.
	extra := trace.NewTable("Additional models (Figs. 18 and 19)",
		"model", "role", "KV groups", "vision tokens/image")
	for _, s := range []*model.Spec{
		model.LLaVAOneVision7B(), model.InternVL2_8B(),
		model.Phi3Vision4B(), model.Paligemma2_10B(),
	} {
		groups := ""
		for i := range s.Groups {
			if i > 0 {
				groups += " + "
			}
			groups += fmt.Sprintf("%d×%v", s.Groups[i].Layers, s.Groups[i].Kind)
		}
		extra.AddRow(s.Name, "Fig. 18 VLM", groups, s.Vision.TokensPerImage)
	}
	for _, s := range []*model.Spec{model.Gemma2_2B(), model.Llama32_1B(), model.MinistralDraft1B()} {
		extra.AddRow(s.Name, "Fig. 19 draft", fmt.Sprintf("%d layers", s.TotalLayers()), "-")
	}
	if err := emit(w, opt, extra); err != nil {
		return err
	}

	// Device platforms (§7.1).
	dev := trace.NewTable("Evaluation platforms (§7.1)",
		"device", "memory GiB", "eff. TFLOP/s", "eff. TB/s")
	for _, d := range []gpu.Device{gpu.H100(), gpu.L4()} {
		dev.AddRow(d.Name, d.MemBytes>>30,
			fmt.Sprintf("%.0f", d.FLOPS/1e12), fmt.Sprintf("%.2f", d.MemBW/1e12))
	}
	return emit(w, opt, dev)
}
