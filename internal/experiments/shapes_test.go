package experiments

import (
	"strings"
	"testing"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// Shape-regression tests: these pin the qualitative results recorded in
// EXPERIMENTS.md so a refactor cannot silently lose a reproduced shape.
// They run the underlying simulations directly (not the table
// renderers) with the same configurations at full scale.

// TestShapeFig15DecodeBatch locks the Fig. 15 result: Jenga's mean
// decode batch beats the flat baseline by ≥1.4× and finishes in fewer
// decode steps, on the paper's exact workload.
func TestShapeFig15DecodeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation; skipped with -short")
	}
	spec := model.Ministral8B()
	dev := gpu.H100()
	load := func() []workload.Request {
		g := workload.NewGen(42)
		reqs := g.LongDocQA(20)
		workload.AllAtOnce(reqs)
		return reqs
	}
	run := func(jenga bool) *engine.Result {
		var mgr core.Manager
		var err error
		if jenga {
			mgr, err = newJenga(spec, dev, Options{}.norm(), true, 0)
		} else {
			mgr, err = newPaged(spec, dev, Options{}.norm(), false, 0, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := serve(spec, dev, mgr, load(), func(c *engine.Config) {
			c.MaxBatchTokens = 8192
			c.MaxPrefills = 4
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	v := run(false)
	j := run(true)
	if v.Finished != 20 || j.Finished != 20 {
		t.Fatalf("finished: vllm %d jenga %d", v.Finished, j.Finished)
	}
	ratio := j.MeanDecodeBatch / v.MeanDecodeBatch
	if ratio < 1.4 {
		t.Errorf("decode batch ratio = %.2f (jenga %.2f vs vllm %.2f), want ≥ 1.4 (paper 1.95)",
			ratio, j.MeanDecodeBatch, v.MeanDecodeBatch)
	}
}

// TestShapeFig16Waste locks the Fig. 16 result: the baseline wastes
// >15% of KV memory on the Ministral trace while Jenga wastes <0.5%.
func TestShapeFig16Waste(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation; skipped with -short")
	}
	spec := model.Ministral8B()
	dev := gpu.H100()
	budget, err := gpu.KVBudget(spec, dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	load := func() []workload.Request {
		g := workload.NewGen(42)
		arts := g.Articles(8, 80000)
		reqs := g.ArxivQA(arts, 8, 150)
		workload.AllAtOnce(reqs)
		return reqs
	}
	wasteFrac := func(jenga bool) float64 {
		var mgr core.Manager
		var err error
		if jenga {
			mgr, err = newJenga(spec, dev, Options{}.norm(), false, 0)
		} else {
			mgr, err = newPaged(spec, dev, Options{}.norm(), false, 0, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := serve(spec, dev, mgr, load(), func(c *engine.Config) {
			c.SampleEvery = 4
			c.MaxBatchTokens = 8192
			c.MaxPrefills = 4
		})
		if err != nil {
			t.Fatal(err)
		}
		var wasted float64
		n := 0
		for _, s := range res.MemTimeline {
			if s.Usage.Used == 0 && s.Usage.Wasted == 0 {
				continue
			}
			wasted += float64(s.Usage.Wasted)
			n++
		}
		if n == 0 {
			t.Fatal("no samples")
		}
		return wasted / float64(n) / float64(budget)
	}
	v := wasteFrac(false)
	j := wasteFrac(true)
	if v < 0.15 {
		t.Errorf("baseline waste = %.1f%%, want > 15%% (paper 38.2%%)", v*100)
	}
	if j > 0.005 {
		t.Errorf("jenga waste = %.3f%%, want < 0.5%% (paper 0.04%%)", j*100)
	}
}

// TestShapeWasteTableExact locks the §3.2 numbers to one decimal.
func TestShapeWasteTableExact(t *testing.T) {
	cases := []struct {
		spec        *model.Spec
		text, image int
		want        float64
	}{
		{model.Llama32Vision11B(), 43, 6193, 0.796},
		{model.Gemma2_27B(), 8192, 0, 0.25},
		{model.Ministral8B(), 131072, 0, 0.5625},
	}
	for _, c := range cases {
		got := analyticWaste(c.spec, c.text, c.image)
		if diff := got - c.want; diff > 0.0005 || diff < -0.0005 {
			t.Errorf("%s: waste %.4f, want %.4f", c.spec.Name, got, c.want)
		}
	}
}

// TestShapeHomogeneousNoOverhead locks the Fig. 13 Llama row: on a
// self-attention-only model, Jenga and the baseline are identical.
func TestShapeHomogeneousNoOverhead(t *testing.T) {
	spec := model.Llama31_8B()
	dev := gpu.L4()
	load := func() []workload.Request {
		g := workload.NewGen(42)
		reqs := g.MMLUPro(48, 1024)
		workload.AllAtOnce(reqs)
		return reqs
	}
	run := func(jenga bool) float64 {
		var mgr core.Manager
		var err error
		if jenga {
			mgr, err = newJenga(spec, dev, Options{}.norm(), false, 0)
		} else {
			mgr, err = newPaged(spec, dev, Options{}.norm(), false, 0, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := serve(spec, dev, mgr, load(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.ReqPerSec
	}
	v, j := run(false), run(true)
	if ratio := j / v; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("homogeneous overhead: jenga/vllm = %.3f, want ≈ 1.00", ratio)
	}
}

// TestExperimentOutputDeterministic: identical options give
// byte-identical tables.
func TestExperimentOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two fig15 runs; skipped with -short")
	}
	var a, b strings.Builder
	opt := Options{Scale: 0.1, Seed: 5}
	if err := Fig15(&a, opt); err != nil {
		t.Fatal(err)
	}
	if err := Fig15(&b, opt); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("fig15 output not deterministic")
	}
}
