package experiments

import (
	"fmt"
	"io"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/metrics"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// AblationPageSize reproduces the §4.4 compatibility-layer discussion:
// the same Jamba workload served with the three candidate page sizes.
//
//   - LCM (Jenga): natural per-type pages, near-zero fragmentation.
//   - MAX: every type uses the largest page (the Mamba state), so
//     attention pages carry enormous tails — emulated by padding the
//     attention group to the Mamba page size. (Avoiding that would
//     need 1344 tokens per page, beyond typical requests.)
//   - GCD: zero internal fragmentation, but KV tensors split across
//     pages, which the fastest GPU kernels reject — emulated as a
//     kernel-efficiency penalty at LCM-equivalent memory use.
func AblationPageSize(w io.Writer, opt Options) error {
	opt = opt.norm()
	spec := model.Jamba52B()
	dev := gpu.H100()
	n := opt.n(64)

	// Geometry facts from §4.4.
	attn := spec.Group("attn")
	mamba := spec.Group("mamba")
	facts := trace.NewTable("§4.4 geometry facts (Jamba-1.5 52B)",
		"fact", "value", "paper")
	facts.AddRow("tokens/page for MAX to avoid fragmentation",
		mamba.StateBytes/attn.BytesPerToken, "1344")
	facts.AddRow("per-layer LCM ratio at 16 tokens/page",
		mamba.StateBytes/(attn.BytesPerToken*16), "84x")
	geo, err := spec.Geometry(model.LCMPage, opt.TokensPerPage)
	if err != nil {
		return err
	}
	facts.AddRow("group-level LCM ratio (max)", geo.MaxRatio(), "-")
	if err := emit(w, opt, facts); err != nil {
		return err
	}

	load := func() []workload.Request {
		g := workload.NewGen(opt.Seed)
		reqs := g.MMLUPro(n, 1024)
		workload.AllAtOnce(reqs)
		return reqs
	}
	budget, err := gpu.KVBudget(spec, dev, 0)
	if err != nil {
		return err
	}

	runWith := func(s *model.Spec, eff float64) (*engine.Result, error) {
		mgr, err := core.New(core.Config{
			Spec: s, CapacityBytes: budget, TokensPerPage: opt.TokensPerPage,
			RequestAware: true,
		})
		if err != nil {
			return nil, err
		}
		return serve(s, dev, mgr, load(), func(c *engine.Config) {
			c.KernelEfficiency = eff
		})
	}

	lcm, err := runWith(spec, 1.0)
	if err != nil {
		return fmt.Errorf("ablation lcm: %w", err)
	}
	// MAX: pad the attention page to the Mamba page size.
	maxSpec := *spec
	maxSpec.Name += "-maxpage"
	maxSpec.Groups = append([]model.KVGroup{}, spec.Groups...)
	mambaPage := mamba.StateBytes * mamba.Layers
	maxSpec.Groups[0].BytesPerToken = mambaPage / (attn.Layers * opt.TokensPerPage)
	maxRes, err := runWith(&maxSpec, 1.0)
	if err != nil {
		return fmt.Errorf("ablation max: %w", err)
	}
	// GCD: LCM-equivalent memory at reduced kernel efficiency.
	gcd, err := runWith(spec, 0.55)
	if err != nil {
		return fmt.Errorf("ablation gcd: %w", err)
	}

	tbl := trace.NewTable("§4.4 page-size policy ablation (Jamba, MMLU-pro)",
		"policy", "req/s", "vs LCM", "note")
	tbl.AddRow("LCM (Jenga)", fmt.Sprintf("%.3f", lcm.ReqPerSec), "1.00x", "per-type pages, no kernel change")
	tbl.AddRow("MAX", fmt.Sprintf("%.3f", maxRes.ReqPerSec),
		fmt.Sprintf("%.2fx", metrics.Speedup(maxRes.ReqPerSec, lcm.ReqPerSec)),
		"attention pages padded to the Mamba page")
	tbl.AddRow("GCD", fmt.Sprintf("%.3f", gcd.ReqPerSec),
		fmt.Sprintf("%.2fx", metrics.Speedup(gcd.ReqPerSec, lcm.ReqPerSec)),
		"no fragmentation, ~0.55x kernel efficiency")
	return emit(w, opt, tbl)
}

// AblationRequestAware reproduces the §4.3 / Fig. 8 design point at
// the allocator level: many concurrent requests grow token-by-token
// (the decode allocation pattern), interleaving their small-page
// allocations; half the requests then finish. With request-aware
// placement the finished requests' large pages return to the LCM
// allocator; with naive placement their small pages are scattered
// across large pages shared with live requests, stranding the memory.
func AblationRequestAware(w io.Writer, opt Options) error {
	opt = opt.norm()
	// The Fig. 6 geometry (cross-attention pages, ratio 3 per large
	// page) at tokensPerPage 1, so each decode step allocates one page.
	spec := &model.Spec{
		Name: "fig8", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 3, BytesPerToken: 128, Scope: model.ScopeText},
			{Name: "cross", Kind: model.CrossAttention, Layers: 2, BytesPerToken: 128, Scope: model.ScopeImage},
		},
	}
	requests := opt.n(64)
	tokensEach := 96

	tbl := trace.NewTable("§4.3 request-aware allocation ablation (Fig. 8 churn)",
		"placement", "large pages reclaimed", "stranded large pages", "free after churn %")
	for _, aware := range []bool{true, false} {
		mgr, err := core.New(core.Config{
			Spec: spec, CapacityBytes: int64(requests*tokensEach*2) * 768,
			TokensPerPage: 1, RequestAware: aware,
		})
		if err != nil {
			return err
		}
		seqs := make([]*core.Sequence, requests)
		for i := range seqs {
			seqs[i] = &core.Sequence{ID: core.RequestID(i + 1)}
		}
		// Interleaved decode-style growth: one token per request per
		// round (Fig. 8's alternating allocate pattern).
		for tok := 0; tok < tokensEach; tok++ {
			for _, s := range seqs {
				s.Tokens = append(s.Tokens, core.Token{ID: int32(tok + 1)})
				if err := mgr.Reserve(s, len(s.Tokens), core.Tick(tok)); err != nil {
					return err
				}
				mgr.Commit(s, len(s.Tokens), core.Tick(tok))
			}
		}
		before := mgr.Stats().LargeReclaims
		// Every other request completes (Fig. 8's free pattern).
		for i := 0; i < requests; i += 2 {
			mgr.Release(seqs[i], false)
		}
		st := mgr.Stats()
		u := mgr.Usage()
		// Stranded: wasted bytes are empty small pages trapped inside
		// partially used large pages.
		stranded := u.Wasted / 768
		freePct := 100 * float64(u.Free) / float64(mgr.Capacity())
		label := "naive"
		if aware {
			label = "request-aware (Jenga)"
		}
		tbl.AddRow(label, st.LargeReclaims-before, stranded, fmt.Sprintf("%.1f", freePct))
		for i := 1; i < requests; i += 2 {
			mgr.Release(seqs[i], false)
		}
	}
	return emit(w, opt, tbl)
}
