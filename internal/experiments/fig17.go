package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/metrics"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// Fig17 reproduces the prefix-caching study: questions over a pool of
// long arXiv articles (multiple questions per article), sweeping the
// pool size. With few articles both systems cache everything; as the
// pool outgrows KV memory, Jenga's window-aware eviction (out-of-window
// tokens are evicted first, and aligned/balanced eviction keeps whole
// prefixes intact) sustains a higher hit rate and token throughput.
//
// Paper shapes: up to 1.60× higher hit rate and 1.77× throughput at
// large pool sizes; a slight Jenga overhead at small pools (it
// allocates per layer type instead of once).
func Fig17(w io.Writer, opt Options) error {
	opt = opt.norm()
	spec := model.Gemma2_27B()
	dev := gpu.H100()
	questionsPerArticle := 4

	tbl := trace.NewTable("Fig. 17 prefix caching vs number of articles (Gemma-2 27B, H100)",
		"articles", "vLLM hit %", "Jenga hit %", "hit ratio", "vLLM tok/s", "Jenga tok/s", "speedup")

	for _, articles := range []int{2, 4, 8, 16, 24} {
		load := func() []workload.Request {
			g := workload.NewGen(opt.Seed)
			arts := g.Articles(articles, 10000)
			// Q questions per article, in random arrival order (users
			// ask about different documents concurrently).
			var reqs []workload.Request
			for q := 0; q < questionsPerArticle; q++ {
				for a := 0; a < articles; a++ {
					r := g.ArxivQA(arts[a:a+1], 1, 120)[0]
					r.OutputLen = 60
					reqs = append(reqs, r)
				}
			}
			rng := rand.New(rand.NewSource(opt.Seed))
			rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
			// Interactive QA arrives at a steady rate; the cache serves
			// across requests, not just within one saturated batch.
			g.PoissonArrivals(reqs, 1.0)
			return reqs
		}
		run := func(jenga bool) (hit float64, toks float64, err error) {
			var mgr core.Manager
			if jenga {
				mgr, err = newJenga(spec, dev, opt, true, 0)
			} else {
				mgr, err = newPaged(spec, dev, opt, true, 0, 0)
			}
			if err != nil {
				return 0, 0, err
			}
			res, err := serve(spec, dev, mgr, load(), func(c *engine.Config) {
				c.MaxBatchTokens = 8192
				c.MaxPrefills = 2
				// Equal batch ceilings isolate the eviction-policy
				// comparison: the question is what each manager keeps
				// cached, not how many requests it can run.
				c.MaxRunning = 4
			})
			if err != nil {
				return 0, 0, err
			}
			return res.HitRate, res.TokensPerSec, nil
		}
		vHit, vToks, err := run(false)
		if err != nil {
			return fmt.Errorf("fig17 vllm %d articles: %w", articles, err)
		}
		jHit, jToks, err := run(true)
		if err != nil {
			return fmt.Errorf("fig17 jenga %d articles: %w", articles, err)
		}
		tbl.AddRow(articles,
			fmt.Sprintf("%.1f", vHit*100),
			fmt.Sprintf("%.1f", jHit*100),
			fmt.Sprintf("%.2fx", metrics.Speedup(jHit, vHit)),
			fmt.Sprintf("%.0f", vToks),
			fmt.Sprintf("%.0f", jToks),
			fmt.Sprintf("%.2fx", metrics.Speedup(jToks, vToks)))
	}
	return emit(w, opt, tbl)
}
