package experiments

import (
	"io"
	"strings"
	"testing"

	"jenga/internal/model"
)

// tinyOpt keeps experiment smoke tests fast.
var tinyOpt = Options{Scale: 0.1, Seed: 7}

func TestRegistryComplete(t *testing.T) {
	want := []string{"waste", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "ablation-page", "ablation-reqaware", "ablation-ckpt", "table1"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(ids), len(want), ids)
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	// IDs are sorted.
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
}

// TestEveryExperimentRuns smoke-tests each runner at tiny scale and
// checks it produces a table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped with -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			if err := Registry[id](&sb, tinyOpt); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out := sb.String()
			if !strings.Contains(out, "##") {
				t.Errorf("%s produced no table header:\n%s", id, out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("%s produced too little output", id)
			}
		})
	}
}

func TestWasteNumbersMatchPaper(t *testing.T) {
	var sb strings.Builder
	if err := WasteAnalysis(&sb, tinyOpt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"79.6", "25.0", "56.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("waste table missing paper number %s:\n%s", want, out)
		}
	}
}

func TestAblationGeometryFacts(t *testing.T) {
	var sb strings.Builder
	if err := AblationPageSize(&sb, tinyOpt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1344") {
		t.Error("missing the 1344 tokens/page fact")
	}
	if !strings.Contains(out, "84") {
		t.Error("missing the 84x LCM ratio fact")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.norm()
	if o.Scale != 1 || o.Seed != 42 || o.TokensPerPage != 16 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if n := (Options{Scale: 0.01}).norm().n(100); n != 4 {
		t.Errorf("scaled n floor = %d, want 4", n)
	}
	if n := (Options{Scale: 2}).norm().n(10); n != 20 {
		t.Errorf("scaled n = %d, want 20", n)
	}
}

func TestQuantized(t *testing.T) {
	base := Options{}.norm()
	_ = base
	spec := quantized(modelGemma())
	if spec.WeightBytes != 1 {
		t.Error("quantized should set fp8 weights")
	}
	if !strings.HasSuffix(spec.Name, "*") {
		t.Error("quantized should star the name")
	}
}

func TestUnknownExperimentAbsent(t *testing.T) {
	if _, ok := Registry["nope"]; ok {
		t.Error("unexpected experiment")
	}
	if testing.Short() {
		t.Skip("fig13 smoke run; skipped with -short")
	}
	if err := Fig13(io.Discard, Options{Scale: 0.05, Seed: 1}); err != nil {
		t.Fatalf("fig13 at tiny scale: %v", err)
	}
}

// modelGemma avoids importing model directly in multiple tests.
func modelGemma() *model.Spec { return model.Gemma2_27B() }
