package experiments

import (
	"fmt"
	"io"

	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// Fig14 reproduces the latency-vs-rate study: the Llama Vision model
// (mllama) on H100 under Poisson arrivals at increasing request rates,
// reporting end-to-end latency (E2EL), time to first token (TTFT) and
// time per output token (TPOT) for vLLM and Jenga.
//
// Paper shapes: near-identical latency at low rates; at high rates
// Jenga cuts E2EL (up to 2.24×) and TTFT (up to 29×) via larger
// batches, while its TPOT is slightly higher because each step batches
// more requests.
func Fig14(w io.Writer, opt Options) error {
	opt = opt.norm()
	spec := model.Llama32Vision11B()
	dev := gpu.H100()
	n := opt.n(384)
	// The paper sweeps 0.5–4 req/s on its testbed; our simulated engine
	// saturates at a higher absolute rate, so the sweep extends until
	// the same divergence appears: vLLM's decode capacity saturates
	// first (queue explosion), Jenga's larger batches absorb the rate.
	rates := []float64{1, 2, 3, 4, 6}

	tbl := trace.NewTable("Fig. 14 latency vs request rate (mllama, H100; times in s)",
		"rate req/s", "vLLM E2EL", "Jenga E2EL", "vLLM TTFT", "Jenga TTFT", "vLLM TPOT", "Jenga TPOT")

	for _, rate := range rates {
		load := func() []workload.Request {
			g := workload.NewGen(opt.Seed)
			reqs := g.MMMUPro(n, 1601)
			for i := range reqs {
				// Fig. 14 measures latency under load with the short
				// multiple-choice answers of MMMU-pro.
				reqs[i].OutputLen = 64 + (i*17)%96
			}
			g.PoissonArrivals(reqs, rate)
			return reqs
		}
		vm, err := newPaged(spec, dev, opt, true, 0, vlmReserve)
		if err != nil {
			return err
		}
		mod := func(c *engine.Config) {
			c.Vision = engine.VisionReuseKV
			// Latency serving uses small chunks so prefill work cannot
			// stall in-flight decodes (SARATHI-style TPOT protection).
			c.MaxBatchTokens = 4096
			c.MaxPrefills = 2
		}
		vres, err := serve(spec, dev, vm, load(), mod)
		if err != nil {
			return fmt.Errorf("fig14 vllm rate %.1f: %w", rate, err)
		}
		jm, err := newJenga(spec, dev, opt, true, vlmReserve)
		if err != nil {
			return err
		}
		jres, err := serve(spec, dev, jm, load(), mod)
		if err != nil {
			return fmt.Errorf("fig14 jenga rate %.1f: %w", rate, err)
		}
		tbl.AddRow(rate,
			fmt.Sprintf("%.2f", vres.MeanE2E.Seconds()),
			fmt.Sprintf("%.2f", jres.MeanE2E.Seconds()),
			fmt.Sprintf("%.2f", vres.MeanTTFT.Seconds()),
			fmt.Sprintf("%.2f", jres.MeanTTFT.Seconds()),
			fmt.Sprintf("%.4f", vres.MeanTPOT.Seconds()),
			fmt.Sprintf("%.4f", jres.MeanTPOT.Seconds()),
		)
	}
	return emit(w, opt, tbl)
}
