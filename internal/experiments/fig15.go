package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// Fig15 reproduces the decode-batch-size timeline: 20 long-document QA
// requests (inputs 55–110k tokens, outputs 50–100) hit the Ministral
// model at once; the plot tracks how many sequences decode per
// scheduler step under four systems.
//
// Paper shapes: Jenga's average batch is 5.39 vs ≈2.6 for vLLM, SGLang
// and TGI (1.95×), and Jenga finishes within ~300 steps vs ~600. TGI
// ends earlier only because it lacks --ignore-eos and generates fewer
// tokens — emulated here by truncating its outputs.
func Fig15(w io.Writer, opt Options) error {
	opt = opt.norm()
	spec := model.Ministral8B()
	dev := gpu.H100()
	n := opt.n(20)

	load := func(outputScale float64) []workload.Request {
		g := workload.NewGen(opt.Seed)
		reqs := g.LongDocQA(n)
		for i := range reqs {
			reqs[i].OutputLen = int(float64(reqs[i].OutputLen) * outputScale)
			if reqs[i].OutputLen < 2 {
				reqs[i].OutputLen = 2
			}
		}
		workload.AllAtOnce(reqs)
		return reqs
	}

	type system struct {
		name        string
		jenga       bool
		cache       bool
		outputScale float64
	}
	systems := []system{
		{name: "vLLM", cache: false, outputScale: 1},
		{name: "SGLang", cache: true, outputScale: 1}, // radix-style caching
		{name: "TGI", cache: false, outputScale: 0.6}, // no --ignore-eos
		{name: "Jenga", jenga: true, cache: true, outputScale: 1},
	}

	tbl := trace.NewTable("Fig. 15 decode batch size (Ministral, 20 long-doc requests)",
		"system", "mean decode batch", "decode steps", "finished", "timeline")
	var series []trace.Series
	for _, s := range systems {
		var mgr core.Manager
		var err error
		if s.jenga {
			mgr, err = newJenga(spec, dev, opt, s.cache, 0)
		} else {
			mgr, err = newPaged(spec, dev, opt, s.cache, 0, 0)
		}
		if err != nil {
			return err
		}
		res, err := serve(spec, dev, mgr, load(s.outputScale), func(c *engine.Config) {
			c.MaxBatchTokens = 8192
			c.MaxPrefills = 4
		})
		if err != nil {
			return fmt.Errorf("fig15 %s: %w", s.name, err)
		}
		decodeSteps := 0
		pts := make([]float64, 0, len(res.DecodeBatchTimeline))
		for _, b := range res.DecodeBatchTimeline {
			if b > 0 {
				decodeSteps++
				pts = append(pts, float64(b))
			}
		}
		series = append(series, trace.Series{Name: s.name, Points: pts})
		tbl.AddRow(s.name,
			fmt.Sprintf("%.2f", res.MeanDecodeBatch),
			decodeSteps,
			res.Finished,
			trace.Sparkline(pts, 40))
	}
	if opt.CSVDir != "" {
		f, err := os.Create(filepath.Join(opt.CSVDir, "fig15-decode-batch-series.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteSeriesCSV(f, series...); err != nil {
			return err
		}
	}
	return emit(w, opt, tbl)
}
