// Package experiments contains one runner per table and figure of the
// paper's evaluation (§7), shared by cmd/jengabench and the root
// benchmark suite. Each runner builds the workload, runs every
// compared memory manager under the identical engine, and prints the
// same rows/series the paper reports.
//
// Absolute numbers come from the simulated cost model, so they differ
// from the paper's H100/L4 measurements; the shapes — who wins, by
// roughly what factor, where crossovers fall — are the reproduction
// target (see EXPERIMENTS.md).
package experiments

import (
	"io"
	"sort"

	"jenga/internal/baseline"
	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// Options tunes experiment scale and reproducibility.
type Options struct {
	// Scale multiplies request counts (1.0 = paper-like scale; smaller
	// for quick runs). Zero means 1.0.
	Scale float64
	// Seed feeds every workload generator. Zero means 42.
	Seed int64
	// TokensPerPage is the page granularity. Zero means 16.
	TokensPerPage int
	// CSVDir, when set, additionally writes each table as a CSV file
	// (named from the table title) for replotting.
	CSVDir string
}

func (o Options) norm() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.TokensPerPage <= 0 {
		o.TokensPerPage = 16
	}
	return o
}

// vlmReserve is the runtime reserve fraction for VLM serving: the
// vision encoder's activation workspace for thousands of image tokens
// is far larger than a text model's (§6.2 discusses the peak-memory
// pressure of vision inputs).
const vlmReserve = 0.35

func (o Options) n(base int) int {
	n := int(float64(base) * o.Scale)
	if n < 4 {
		n = 4
	}
	return n
}

// Runner executes one experiment, writing its tables to w.
type Runner func(w io.Writer, opt Options) error

// Registry maps experiment IDs to runners.
var Registry = map[string]Runner{
	"waste":             WasteAnalysis,
	"table1":            Table1,
	"fig13":             Fig13,
	"fig14":             Fig14,
	"fig15":             Fig15,
	"fig16":             Fig16,
	"fig17":             Fig17,
	"fig18":             Fig18,
	"fig19":             Fig19,
	"ablation-page":     AblationPageSize,
	"ablation-reqaware": AblationRequestAware,
	"ablation-ckpt":     AblationCheckpoint,
}

// IDs returns the registered experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// newJenga builds a Jenga manager sized for the model on the device.
// reserve overrides the runtime reserve fraction (0 = default); VLM
// experiments reserve more for vision-encoder activation workspace.
func newJenga(spec *model.Spec, dev gpu.Device, opt Options, cache bool, reserve float64) (core.Manager, error) {
	budget, err := gpu.KVBudget(spec, dev, reserve)
	if err != nil {
		return nil, err
	}
	return core.New(core.Config{
		Spec: spec, CapacityBytes: budget, TokensPerPage: opt.TokensPerPage,
		EnablePrefixCache: cache, RequestAware: true,
	})
}

// newPaged builds the vLLM-style baseline sized for the model.
func newPaged(spec *model.Spec, dev gpu.Device, opt Options, cache bool, maxSeqs int, reserve float64) (core.Manager, error) {
	budget, err := gpu.KVBudget(spec, dev, reserve)
	if err != nil {
		return nil, err
	}
	return baseline.NewPaged(baseline.Config{
		Spec: spec, CapacityBytes: budget, TokensPerPage: opt.TokensPerPage,
		EnablePrefixCache: cache, MaxSeqs: maxSeqs,
	})
}

// serve runs one engine simulation.
func serve(spec *model.Spec, dev gpu.Device, mgr core.Manager, reqs []workload.Request, mod func(*engine.Config)) (*engine.Result, error) {
	cfg := engine.Config{
		Spec: spec, Device: dev, Manager: mgr,
		MaxBatchTokens: 2048, MaxRunning: 256,
	}
	if mod != nil {
		mod(&cfg)
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(reqs)
}

// quantized returns a copy of the spec with fp8 weights (the Table 1
// "*" variants).
func quantized(spec *model.Spec) *model.Spec {
	cp := *spec
	cp.Name += "*"
	cp.WeightBytes = 1
	return &cp
}

// emit renders a table to w and, when Options.CSVDir is set, writes it
// as CSV alongside.
func emit(w io.Writer, opt Options, tbl *trace.Table) error {
	if opt.CSVDir != "" {
		if err := tbl.SaveCSV(opt.CSVDir); err != nil {
			return err
		}
	}
	return tbl.Render(w)
}
