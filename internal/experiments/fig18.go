package experiments

import (
	"fmt"
	"io"

	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/metrics"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// Fig18 reproduces the vision-embedding-cache study: four VLMs serving
// MMMU-pro with chunked prefill (chunk 1024). Without the cache (vLLM)
// the vision encoder re-runs for every chunk that needs image
// embeddings; with Jenga's cache it runs once per request and the
// embeddings are freed as chunks consume them (§6.2).
//
// Paper shapes: 1.88× mean throughput (3.53× LLaVA, 1.79× InternVL,
// 1.34× Phi3V, 1.48× Paligemma2) and 20–78% lower E2E latency.
func Fig18(w io.Writer, opt Options) error {
	opt = opt.norm()
	dev := gpu.H100()
	n := opt.n(32)

	models := []*model.Spec{
		model.LLaVAOneVision7B(),
		model.InternVL2_8B(),
		model.Phi3Vision4B(),
		model.Paligemma2_10B(),
	}
	paper := map[string]string{
		"LLaVA-OneVision-7B": "3.53x", "InternVL2-8B": "1.79x",
		"Phi-3-Vision-4B": "1.34x", "Paligemma2-10B": "1.48x",
	}

	tbl := trace.NewTable("Fig. 18 VLM chunked prefill with vision embedding cache (H100, chunk 1024)",
		"model", "vLLM req/s", "Jenga req/s", "speedup", "paper",
		"vLLM E2E s", "Jenga E2E s", "vLLM enc runs", "Jenga enc runs")

	for _, spec := range models {
		load := func() []workload.Request {
			g := workload.NewGen(opt.Seed)
			reqs := g.MMMUPro(n, spec.Vision.TokensPerImage)
			workload.AllAtOnce(reqs)
			return reqs
		}
		vm, err := newPaged(spec, dev, opt, false, 0, vlmReserve)
		if err != nil {
			return err
		}
		vres, err := serve(spec, dev, vm, load(), func(c *engine.Config) {
			c.Vision = engine.VisionNone
			c.MaxBatchTokens = 1024
		})
		if err != nil {
			return fmt.Errorf("fig18 vllm %s: %w", spec.Name, err)
		}
		jm, err := newJenga(spec, dev, opt, false, vlmReserve)
		if err != nil {
			return err
		}
		jres, err := serve(spec, dev, jm, load(), func(c *engine.Config) {
			c.Vision = engine.VisionFreeOnDemand
			c.MaxBatchTokens = 1024
		})
		if err != nil {
			return fmt.Errorf("fig18 jenga %s: %w", spec.Name, err)
		}
		tbl.AddRow(spec.Name,
			fmt.Sprintf("%.3f", vres.ReqPerSec),
			fmt.Sprintf("%.3f", jres.ReqPerSec),
			fmt.Sprintf("%.2fx", metrics.Speedup(jres.ReqPerSec, vres.ReqPerSec)),
			paper[spec.Name],
			fmt.Sprintf("%.2f", vres.MeanE2E.Seconds()),
			fmt.Sprintf("%.2f", jres.MeanE2E.Seconds()),
			vres.EncoderRuns, jres.EncoderRuns)
	}
	return emit(w, opt, tbl)
}
