package experiments

import (
	"fmt"
	"io"

	"jenga/internal/core"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/trace"
)

// WasteAnalysis reproduces the §3.2 fragmentation analysis: for each
// heterogeneous model, the fraction of PagedAttention-allocated KV
// bytes that store nothing the model will read. Both an analytic value
// (the paper's formula) and a measured value (running one request
// through the baseline manager) are reported.
//
// Paper numbers: mllama 79.6% (MMMU-pro), Gemma-2 up to 25%,
// Ministral up to 56.25%.
func WasteAnalysis(w io.Writer, opt Options) error {
	opt = opt.norm()
	tbl := trace.NewTable("§3.2 PagedAttention waste on heterogeneous models",
		"model", "workload", "analytic waste %", "measured waste %", "paper %")

	cases := []struct {
		spec  *model.Spec
		label string
		text  int
		image int
		paper string
	}{
		// MMMU-pro averages: 6193 image + 43 text tokens (§3.2).
		{model.Llama32Vision11B(), "MMMU-pro avg (43 txt + 6193 img)", 43, 6193, "79.6"},
		// Gemma-2: waste = ½·(1 − 4096/L); the paper's "up to 25%" is
		// L = 8192.
		{model.Gemma2_27B(), "8192-token context", 8192, 0, "25.0"},
		// Ministral: ¾ sliding layers, window 32768; "up to 56.25%" at
		// the 131072-token context limit.
		{model.Ministral8B(), "131072-token context", 131072, 0, "56.25"},
		// Jamba: static Mamba partition waste depends on occupancy; the
		// analytic column reports the per-request page overhead only.
		{model.Jamba52B(), "3072-token context", 3072, 0, "(n/a)"},
	}

	for _, c := range cases {
		analytic := analyticWaste(c.spec, c.text, c.image)
		measured, err := measuredWaste(c.spec, c.text, c.image, opt)
		if err != nil {
			return fmt.Errorf("waste %s: %w", c.spec.Name, err)
		}
		tbl.AddRow(c.spec.Name, c.label,
			fmt.Sprintf("%.1f", analytic*100),
			fmt.Sprintf("%.1f", measured*100),
			c.paper)
	}
	return emit(w, opt, tbl)
}

// analyticWaste computes 1 − needed/allocated for one request under
// flat PagedAttention allocation (§3.2's formula generalized to every
// layer kind).
func analyticWaste(spec *model.Spec, text, image int) float64 {
	var allocated, needed float64
	perTokFlat := 0
	for i := range spec.Groups {
		g := &spec.Groups[i]
		if g.Kind == model.Mamba || g.Kind == model.VisionEmbedding {
			continue
		}
		perTokFlat += g.BytesPerToken * g.Physical()
	}
	allocated = float64((text + image) * perTokFlat)
	for i := range spec.Groups {
		g := &spec.Groups[i]
		proj := 0
		if g.StoresToken(false) {
			proj += text
		}
		if g.StoresToken(true) {
			proj += image
		}
		switch g.Kind {
		case model.Mamba:
			needed += float64(g.StateBytes * g.Layers)
			allocated += float64(g.StateBytes * g.Layers)
		case model.SlidingWindow, model.PyramidWindow:
			if proj > g.Window {
				proj = g.Window
			}
			needed += float64(proj * g.BytesPerToken * g.Layers)
		case model.VisionEmbedding:
			// Not stored by PagedAttention.
		default:
			needed += float64(proj * g.BytesPerToken * g.Layers)
		}
	}
	if allocated == 0 {
		return 0
	}
	return 1 - needed/allocated
}

// measuredWaste runs one request through the baseline manager and
// reads Usage().
func measuredWaste(spec *model.Spec, text, image int, opt Options) (float64, error) {
	mgr, err := newPaged(spec, bigDevice(spec), opt, false, 1, 0)
	if err != nil {
		return 0, err
	}
	seq := &core.Sequence{ID: 1}
	for i := 0; i < image; i++ {
		seq.Tokens = append(seq.Tokens, core.Token{ID: int32(i%50000 + 1), Image: true})
	}
	for i := 0; i < text; i++ {
		seq.Tokens = append(seq.Tokens, core.Token{ID: int32(i%50000 + 1)})
	}
	n := len(seq.Tokens)
	if err := mgr.Reserve(seq, n, 1); err != nil {
		return 0, err
	}
	mgr.Commit(seq, n, 1)
	u := mgr.Usage()
	alloc := u.Used + u.Wasted
	if alloc == 0 {
		return 0, nil
	}
	return float64(u.Wasted) / float64(alloc), nil
}

// bigDevice returns a device with ample memory for single-request
// measurements of any model (weights plus 400 GB of KV headroom).
func bigDevice(spec *model.Spec) gpu.Device {
	d := gpu.H100()
	d.MemBytes = spec.WeightFootprint() + (400 << 30)
	return d
}
