package experiments

import (
	"fmt"
	"io"

	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/metrics"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// fig13Entry describes one (model, dataset) row of Fig. 13.
type fig13Entry struct {
	label string
	spec  *model.Spec
	// load builds the workload (Table 1's dataset for the model).
	load func(g *workload.Gen, n int) []workload.Request
	// baseN is the paper-scale request count before Options.Scale.
	baseN int
	// cache enables prefix caching on both managers.
	cache bool
	// maxSeqs sizes the baseline's static Mamba pool.
	maxSeqs int
	// vision marks VLM rows (Jenga gets the embedding cache).
	vision bool
	// reserve overrides the runtime reserve fraction (VLM rows).
	reserve float64
	// paper is the paper's reported speedup for reference.
	paper string
}

func mmluLoad(outMin int) func(g *workload.Gen, n int) []workload.Request {
	return func(g *workload.Gen, n int) []workload.Request {
		reqs := g.MMLUPro(n, 1024)
		workload.AllAtOnce(reqs)
		_ = outMin
		return reqs
	}
}

// arxivLoad builds one question per unique article (the Fig. 13
// long-context workload; cross-request sharing is Fig. 17's subject).
// Answers over long documents are long-form (outMin..outMax).
func arxivLoad(meanLen int) func(g *workload.Gen, n int) []workload.Request {
	maxLen := meanLen + meanLen/4 // model context limit caps articles
	return func(g *workload.Gen, n int) []workload.Request {
		arts := g.Articles(n, meanLen)
		reqs := make([]workload.Request, 0, n)
		for i := 0; i < n; i++ {
			r := g.ArxivQA(arts[i:i+1], 1, 150)[0]
			if len(r.Prompt) > maxLen {
				r.Prompt = r.Prompt[:maxLen]
			}
			r.OutputLen = 400 + (i*37)%400
			reqs = append(reqs, r)
		}
		workload.AllAtOnce(reqs)
		return reqs
	}
}

func mmmuLoad(tokensPerImage int) func(g *workload.Gen, n int) []workload.Request {
	return func(g *workload.Gen, n int) []workload.Request {
		reqs := g.MMMUPro(n, tokensPerImage)
		workload.AllAtOnce(reqs)
		return reqs
	}
}

func fig13H100() []fig13Entry {
	return []fig13Entry{
		{label: "mllama", spec: model.Llama32Vision11B(), load: mmmuLoad(1601), baseN: 128, cache: false, vision: true, reserve: vlmReserve, paper: "1.71x"},
		{label: "Gemma-2", spec: model.Gemma2_27B(), load: arxivLoad(9000), baseN: 40, cache: false, paper: "1.26x"},
		{label: "Ministral*", spec: model.Ministral8B(), load: arxivLoad(90000), baseN: 18, cache: false, paper: "2.08x"},
		{label: "Jamba", spec: model.Jamba52B(), load: mmluLoad(64), baseN: 160, cache: false, maxSeqs: 64, paper: "1.78x"},
		{label: "character", spec: model.CharacterAI70B(), load: mmluLoad(64), baseN: 160, cache: false, paper: "4.92x"},
		{label: "PyramidKV", spec: model.PyramidKV70B(), load: mmluLoad(64), baseN: 160, cache: false, paper: "1.50x"},
		{label: "Llama", spec: model.Llama31_70B(), load: mmluLoad(64), baseN: 96, cache: false, paper: "1.03x"},
	}
}

func fig13L4() []fig13Entry {
	return []fig13Entry{
		{label: "mllama*", spec: quantized(model.Llama32Vision11B()), load: mmmuLoad(1601), baseN: 48, cache: false, vision: true, reserve: vlmReserve, paper: "1.54x"},
		{label: "Gemma-2", spec: model.Gemma2_9B(), load: arxivLoad(6000), baseN: 24, cache: false, paper: "1.44x"},
		{label: "Ministral*", spec: quantized(model.Ministral8B()), load: arxivLoad(90000), baseN: 10, cache: false, paper: "3.29x"},
		{label: "Jamba", spec: model.Jamba52B(), load: mmluLoad(64), baseN: 8, cache: false, maxSeqs: 8, paper: "OOM"},
		{label: "character", spec: model.CharacterAI8B(), load: mmluLoad(64), baseN: 128, cache: false, paper: "1.76x"},
		{label: "PyramidKV", spec: model.PyramidKV8B(), load: mmluLoad(64), baseN: 128, cache: false, paper: "1.08x"},
		{label: "Llama", spec: model.Llama31_8B(), load: mmluLoad(64), baseN: 96, cache: false, paper: "1.08x"},
	}
}

// Fig13 reproduces the end-to-end throughput comparison on both
// devices: vLLM-style PagedAttention vs Jenga, one row per model.
func Fig13(w io.Writer, opt Options) error {
	opt = opt.norm()
	for _, dev := range []gpu.Device{gpu.H100(), gpu.L4()} {
		entries := fig13H100()
		if dev.Name == "L4" {
			entries = fig13L4()
		}
		tbl := trace.NewTable(fmt.Sprintf("Fig. 13 end-to-end throughput (%s)", dev.Name),
			"model", "vLLM req/s", "Jenga req/s", "speedup", "paper", "vLLM done/fail", "Jenga done/fail")
		for _, e := range entries {
			row, err := fig13Row(e, dev, opt)
			if err != nil {
				return fmt.Errorf("fig13 %s/%s: %w", dev.Name, e.label, err)
			}
			tbl.AddRow(row...)
		}
		if err := emit(w, opt, tbl); err != nil {
			return err
		}
	}
	return nil
}

func fig13Row(e fig13Entry, dev gpu.Device, opt Options) ([]any, error) {
	// OOM detection first (Jamba on L4).
	if _, err := gpu.KVBudget(e.spec, dev, 0); err != nil {
		return []any{e.label, "OOM", "OOM", "-", e.paper, "-", "-"}, nil
	}

	n := opt.n(e.baseN)
	run := func(jenga bool) (*engine.Result, error) {
		g := workload.NewGen(opt.Seed)
		reqs := e.load(g, n)
		mod := func(c *engine.Config) {
			// Real prefill token budgets are large (vLLM defaults to
			// the model's context length); several prompts prefill in
			// one step.
			c.MaxBatchTokens = 8192
			c.MaxPrefills = 4
			if e.vision {
				// mllama's encoder feeds cross-attention KV, computed
				// once per request by every engine.
				c.Vision = engine.VisionReuseKV
			}
		}
		if jenga {
			m, err := newJenga(e.spec, dev, opt, e.cache, e.reserve)
			if err != nil {
				return nil, err
			}
			return serve(e.spec, dev, m, reqs, mod)
		}
		m, err := newPaged(e.spec, dev, opt, e.cache, e.maxSeqs, e.reserve)
		if err != nil {
			return nil, err
		}
		return serve(e.spec, dev, m, reqs, mod)
	}

	vres, err := run(false)
	if err != nil {
		return nil, err
	}
	jres, err := run(true)
	if err != nil {
		return nil, err
	}
	return []any{
		e.label,
		fmt.Sprintf("%.3f", vres.ReqPerSec),
		fmt.Sprintf("%.3f", jres.ReqPerSec),
		fmt.Sprintf("%.2fx", metrics.Speedup(jres.ReqPerSec, vres.ReqPerSec)),
		e.paper,
		fmt.Sprintf("%d/%d", vres.Finished, vres.Failed),
		fmt.Sprintf("%d/%d", jres.Finished, jres.Failed),
	}, nil
}
