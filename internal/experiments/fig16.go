package experiments

import (
	"fmt"
	"io"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/trace"
	"jenga/internal/workload"
)

// Fig16 reproduces the fragmentation timeline: Ministral on H100 under
// a static trace (stationary length distribution) and a dynamic trace
// (mean length drifting over time), sampling the memory breakdown —
// weights, runtime reserve, used, wasted, unallocated — every few
// steps.
//
// Paper shapes: vLLM wastes 38.2% of KV memory on average (unfreed
// out-of-window KV, red band); Jenga wastes 0.04% (stranded small
// pages and partially filled tail pages). In the dynamic trace,
// Jenga's split between self-attention KV and window KV follows the
// workload (27.8%–54.5% of allocated KV is self-attention).
func Fig16(w io.Writer, opt Options) error {
	opt = opt.norm()
	spec := model.Ministral8B()
	dev := gpu.H100()
	n := opt.n(16)
	budget, err := gpu.KVBudget(spec, dev, 0)
	if err != nil {
		return err
	}
	weights := spec.WeightFootprint()
	reserve := dev.MemBytes - weights - budget

	load := func(dynamic bool) []workload.Request {
		g := workload.NewGen(opt.Seed)
		arts := g.Articles(8, 80000)
		reqs := g.ArxivQA(arts, n, 150)
		if dynamic {
			g.DriftLengths(reqs, 0.3, 1.0)
		}
		workload.AllAtOnce(reqs)
		return reqs
	}

	tbl := trace.NewTable("Fig. 16 memory breakdown (Ministral, H100; GB are averages over the run)",
		"system", "trace", "weights GB", "reserve GB", "used GB", "wasted GB", "unalloc GB",
		"waste % of KV", "self-KV share range", "used timeline", "wasted timeline")
	for _, dynamic := range []bool{false, true} {
		traceName := "static"
		if dynamic {
			traceName = "dynamic"
		}
		for _, jenga := range []bool{false, true} {
			name := "vLLM"
			var mgr core.Manager
			if jenga {
				name = "Jenga"
				mgr, err = newJenga(spec, dev, opt, false, 0)
			} else {
				mgr, err = newPaged(spec, dev, opt, false, 0, 0)
			}
			if err != nil {
				return err
			}
			res, err := serve(spec, dev, mgr, load(dynamic), func(c *engine.Config) {
				c.SampleEvery = 4
				c.MaxBatchTokens = 8192
				c.MaxPrefills = 4
			})
			if err != nil {
				return fmt.Errorf("fig16 %s/%s: %w", name, traceName, err)
			}
			var used, wasted, free float64
			var usedSeries, wastedSeries []float64
			selfLo, selfHi := 1.0, 0.0
			samples := 0
			for _, s := range res.MemTimeline {
				if s.Usage.Used == 0 && s.Usage.Wasted == 0 {
					continue // idle tail
				}
				samples++
				used += float64(s.Usage.Used + s.Usage.Cached)
				wasted += float64(s.Usage.Wasted)
				free += float64(s.Usage.Free)
				usedSeries = append(usedSeries, float64(s.Usage.Used+s.Usage.Cached))
				wastedSeries = append(wastedSeries, float64(s.Usage.Wasted))
				if jenga {
					fullU := s.Usage.PerGroup["full"].Used
					winU := s.Usage.PerGroup["window"].Used
					if tot := fullU + winU; tot > 0 {
						share := float64(fullU) / float64(tot)
						if share < selfLo {
							selfLo = share
						}
						if share > selfHi {
							selfHi = share
						}
					}
				}
			}
			if samples == 0 {
				samples = 1
			}
			used /= float64(samples)
			wasted /= float64(samples)
			free /= float64(samples)
			wastePct := 0.0
			if budget > 0 {
				wastePct = wasted / float64(budget) * 100
			}
			selfRange := "-"
			if jenga && selfHi > 0 {
				selfRange = fmt.Sprintf("%.1f%%..%.1f%%", selfLo*100, selfHi*100)
			}
			gb := func(x float64) string { return fmt.Sprintf("%.1f", x/(1<<30)) }
			tbl.AddRow(name, traceName,
				gb(float64(weights)), gb(float64(reserve)),
				gb(used), gb(wasted), gb(free),
				fmt.Sprintf("%.2f", wastePct), selfRange,
				trace.Sparkline(usedSeries, 24), trace.Sparkline(wastedSeries, 24))
		}
	}
	return emit(w, opt, tbl)
}
