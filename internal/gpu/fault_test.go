package gpu

import (
	"testing"
	"time"

	"jenga/internal/model"
)

// Fault factors: zero and one are bit-identical to the unfactored
// step, degraded link factors stretch exactly their own DMA term, and
// the straggler factor stretches the whole step.
func TestStepTimeFaultFactors(t *testing.T) {
	cm := &CostModel{Dev: H100(), Spec: model.Llama31_8B()}
	base := StepWork{PrefillTokens: 512, DecodeSeqs: 8, KVReadBytes: 1 << 20,
		SwapBytes: 64 << 20, PeerBytes: 32 << 20}
	nominal := cm.StepTime(base)

	zeroed := base // zero factors are the untouched zero value
	if got := cm.StepTime(zeroed); got != nominal {
		t.Fatalf("zero factors changed StepTime: %v vs %v", got, nominal)
	}
	ones := base
	ones.PCIeFactor, ones.LinkFactor, ones.TimeFactor = 1, 1, 1
	if got := cm.StepTime(ones); got != nominal {
		t.Fatalf("unit factors changed StepTime: %v vs %v", got, nominal)
	}

	// Halved PCIe bandwidth adds exactly one extra nominal PCIe term.
	degraded := base
	degraded.PCIeFactor = 0.5
	if got, want := cm.StepTime(degraded), nominal+cm.Dev.PCIeTime(base.SwapBytes); got != want {
		t.Fatalf("PCIeFactor 0.5: got %v, want %v", got, want)
	}
	// Quartered peer-link bandwidth adds three extra link terms.
	slowLink := base
	slowLink.LinkFactor = 0.25
	if got, want := cm.StepTime(slowLink), nominal+3*cm.Dev.LinkTime(base.PeerBytes); got != want {
		t.Fatalf("LinkFactor 0.25: got %v, want %v", got, want)
	}
	// The straggler multiplies everything, overhead included.
	slow := base
	slow.TimeFactor = 3
	got := cm.StepTime(slow)
	if want := time.Duration(3 * float64(nominal)); got != want {
		t.Fatalf("TimeFactor 3: got %v, want %v", got, want)
	}
}
