package gpu

import (
	"testing"

	"jenga/internal/model"
)

// TestKVBudgetReserveFraction: a larger reserve shrinks the budget by
// exactly the extra reserve.
func TestKVBudgetReserveFraction(t *testing.T) {
	spec := model.Llama31_8B()
	dev := H100()
	small, err := KVBudget(spec, dev, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	big, err := KVBudget(spec, dev, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	wantDiff := int64(float64(dev.MemBytes) * (0.35 - 0.08))
	if diff := small - big; diff < wantDiff-2 || diff > wantDiff+2 {
		t.Errorf("budget diff = %d, want ≈ %d", diff, wantDiff)
	}
}

// TestDecodeKVReadSkipsVision: vision-embedding groups contribute no
// decode-time KV traffic (embeddings are prefill inputs).
func TestDecodeKVReadSkipsVision(t *testing.T) {
	spec := model.LLaVAOneVision7B()
	ctx := map[string]int{"self": 1000, "vision": 1000}
	got := DecodeKVReadBytes(spec, ctx)
	want := int64(1000) * int64(spec.Group("self").BytesPerToken) * int64(spec.Group("self").Layers)
	if got != want {
		t.Errorf("kv read = %d, want %d (vision must not count)", got, want)
	}
}

// TestStepTimeExtraWeightBytes: a draft model riding along adds its
// weight traffic to the bandwidth term.
func TestStepTimeExtraWeightBytes(t *testing.T) {
	cm := &CostModel{Dev: H100(), Spec: model.Llama31_70B()}
	plain := cm.StepTime(StepWork{DecodeSeqs: 4})
	withDraft := cm.StepTime(StepWork{DecodeSeqs: 4, ExtraWeightBytes: 10 << 30})
	if withDraft <= plain {
		t.Error("extra weight bytes must slow bandwidth-bound steps")
	}
}

// TestDeviceConstants sanity-checks the two platforms.
func TestDeviceConstants(t *testing.T) {
	h, l := H100(), L4()
	if h.MemBytes != 80<<30 || l.MemBytes != 24<<30 {
		t.Error("device memory sizes wrong")
	}
	if h.FLOPS <= l.FLOPS || h.MemBW <= l.MemBW {
		t.Error("H100 must outclass L4")
	}
}
