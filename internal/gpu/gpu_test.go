package gpu

import (
	"testing"
	"time"

	"jenga/internal/model"
)

func TestKVBudget(t *testing.T) {
	spec := model.Llama31_8B()
	b, err := KVBudget(spec, H100(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 80 GB − ~16 GB weights − 8% reserve → tens of GB.
	if b < 40<<30 || b > 70<<30 {
		t.Errorf("8B on H100 KV budget = %d GiB, expected 40-70 GiB", b>>30)
	}
}

func TestKVBudgetOOM(t *testing.T) {
	// Jamba 52B fp8 (52 GB weights) cannot fit on a 24 GB L4 — the
	// paper skips this combination for the same reason.
	if _, err := KVBudget(model.Jamba52B(), L4(), 0); err == nil {
		t.Error("jamba on L4 should OOM")
	}
}

func TestStepTimeBatchingAmortizesWeights(t *testing.T) {
	spec := model.Llama31_8B()
	cm := &CostModel{Dev: H100(), Spec: spec}
	one := cm.StepTime(StepWork{DecodeSeqs: 1})
	thirtyTwo := cm.StepTime(StepWork{DecodeSeqs: 32})
	// 32 decodes in one step must cost far less than 32 single-decode
	// steps — the whole reason batch size drives throughput.
	if thirtyTwo >= 32*one {
		t.Errorf("batching does not amortize: 1×%v vs 32-batch %v", one, thirtyTwo)
	}
	if thirtyTwo < one {
		t.Error("bigger batches cannot be faster than smaller ones")
	}
}

func TestStepTimePrefillComputeBound(t *testing.T) {
	spec := model.Llama31_70B()
	cm := &CostModel{Dev: H100(), Spec: spec}
	small := cm.StepTime(StepWork{PrefillTokens: 256})
	big := cm.StepTime(StepWork{PrefillTokens: 8192})
	if big <= small {
		t.Error("longer prefill must take longer")
	}
	// 8192 tokens × 2 × 70e9 FLOPs ≈ 1.1e15 → ≈ 2 s at 600 TFLOP/s.
	if big < 500*time.Millisecond || big > 5*time.Second {
		t.Errorf("8k-token 70B prefill = %v, expected O(seconds)", big)
	}
}

func TestStepTimeZeroWork(t *testing.T) {
	cm := &CostModel{Dev: H100(), Spec: model.Llama31_8B()}
	if got := cm.StepTime(StepWork{}); got != 0 {
		t.Errorf("zero work should be free, got %v", got)
	}
}

func TestStepTimeKernelEfficiencyPenalty(t *testing.T) {
	cm := &CostModel{Dev: H100(), Spec: model.Llama31_8B()}
	native := cm.StepTime(StepWork{DecodeSeqs: 8, KVReadBytes: 1 << 30})
	slow := cm.StepTime(StepWork{DecodeSeqs: 8, KVReadBytes: 1 << 30, KernelEfficiency: 0.5})
	if slow <= native {
		t.Error("reduced kernel efficiency must slow the step")
	}
	weird := cm.StepTime(StepWork{DecodeSeqs: 8, KernelEfficiency: 7})
	if weird != cm.StepTime(StepWork{DecodeSeqs: 8}) {
		t.Error("out-of-range efficiency should clamp to 1")
	}
}

func TestEncoderCost(t *testing.T) {
	spec := model.Llama32Vision11B()
	cm := &CostModel{Dev: H100(), Spec: spec}
	without := cm.StepTime(StepWork{PrefillTokens: 1024})
	with := cm.StepTime(StepWork{PrefillTokens: 1024, EncoderTokens: 6193})
	if with <= without {
		t.Error("vision encoder must add time")
	}
}

func TestDecodeKVReadBytes(t *testing.T) {
	spec := model.Ministral8B()
	ctx := map[string]int{"full": 90_000, "window": 90_000}
	got := DecodeKVReadBytes(spec, ctx)
	want := int64(90_000)*4096*9 + int64(32_768)*4096*27
	if got != want {
		t.Errorf("kv read = %d, want %d", got, want)
	}
	j := model.Jamba52B()
	got = DecodeKVReadBytes(j, map[string]int{"attn": 1000, "mamba": 1000})
	want = int64(1000)*4096*4 + int64(1344*4096)*28
	if got != want {
		t.Errorf("jamba kv read = %d, want %d", got, want)
	}
}
