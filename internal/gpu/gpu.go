// Package gpu provides the simulated device substrate: device specs
// for the paper's two platforms and a roofline-style cost model that
// converts a scheduling step's work into simulated time.
//
// The paper's throughput gaps come from batch size (how many requests
// fit in KV memory), not from kernel micro-architecture, so the model
// only needs the first-order terms: a per-step launch overhead, the
// weight read that every step pays once (decode is bandwidth-bound and
// amortizes it across the batch), GEMM FLOPs proportional to tokens ×
// active parameters, attention's KV-read traffic, and the vision
// encoder's FLOPs.
package gpu

import (
	"fmt"
	"time"

	"jenga/internal/model"
)

// Device describes one GPU platform.
type Device struct {
	// Name appears in experiment output.
	Name string
	// MemBytes is total device memory.
	MemBytes int64
	// FLOPS is effective (achievable) compute throughput.
	FLOPS float64
	// MemBW is effective memory bandwidth in bytes/second.
	MemBW float64
	// PCIeBW is effective host↔device interconnect bandwidth in
	// bytes/second (H2D ≈ D2H), the cost term of tiered KV offload:
	// spilling a large page to host memory and restoring it back both
	// ride this link. 0 falls back to DefaultPCIeBW.
	PCIeBW float64
	// LinkBW is effective device↔device interconnect bandwidth in
	// bytes/second (NVLink within a node, InfiniBand across nodes,
	// derated): the cost term of fleet peer transfers — fetching a
	// peer replica's spilled KV pages or migrating a live request's
	// pages both ride this link, not PCIe. 0 falls back to
	// DefaultLinkBW.
	LinkBW float64
	// StepOverhead is the fixed per-step launch/scheduling cost.
	StepOverhead time.Duration
}

// H100 is the paper's default platform: 80 GB, ~1 PFLOP/s peak fp16
// derated to an achievable fraction, 3.35 TB/s HBM3 derated likewise.
func H100() Device {
	return Device{
		Name: "H100", MemBytes: 80 << 30,
		FLOPS: 600e12, MemBW: 2.7e12,
		PCIeBW:       50e9,  // PCIe gen5 ×16, derated
		LinkBW:       250e9, // NVLink 4 per-direction, derated
		StepOverhead: 2 * time.Millisecond,
	}
}

// L4 is the paper's small platform: 24 GB, 121 TFLOP/s fp16 derated,
// 300 GB/s GDDR6.
func L4() Device {
	return Device{
		Name: "L4", MemBytes: 24 << 30,
		FLOPS: 80e12, MemBW: 250e9,
		PCIeBW:       20e9, // PCIe gen4 ×16, derated
		LinkBW:       10e9, // no NVLink: Ethernet/IB NIC class
		StepOverhead: 2 * time.Millisecond,
	}
}

// DefaultReserveFraction is the device memory held back for activations
// and CUDA graphs (the "reserve" band in Fig. 16).
const DefaultReserveFraction = 0.08

// DefaultPCIeBW is the host↔device bandwidth assumed for devices that
// do not declare one (hand-built test devices): PCIe gen4-class.
const DefaultPCIeBW = 25e9

// DefaultLinkBW is the device↔device peer bandwidth assumed for
// devices that do not declare one: NIC-class (IB/Ethernet), well below
// NVLink, so hand-built test devices price peer transfers
// conservatively.
const DefaultLinkBW = 10e9

// encoderWorkFactor scales vision-encoder FLOPs above the 2·params·
// tokens GEMM estimate: high-resolution pipelines (anyres/multi-crop)
// push several image crops through the ViT per emitted token, and ViT
// attention over large patch grids adds quadratic work.
const encoderWorkFactor = 5.0

// KVBudget returns the KV-cache byte budget for a model on a device:
// device memory minus weights minus the runtime reserve. It errors when
// the weights alone do not fit (the paper's Jamba-on-L4 OOM case).
func KVBudget(spec *model.Spec, dev Device, reserveFraction float64) (int64, error) {
	if reserveFraction <= 0 {
		reserveFraction = DefaultReserveFraction
	}
	reserve := int64(float64(dev.MemBytes) * reserveFraction)
	budget := dev.MemBytes - spec.WeightFootprint() - reserve
	if budget <= 0 {
		return 0, fmt.Errorf("gpu: %s does not fit on %s (weights %d + reserve %d > %d)",
			spec.Name, dev.Name, spec.WeightFootprint(), reserve, dev.MemBytes)
	}
	return budget, nil
}

// StepWork describes the computation of one engine step.
type StepWork struct {
	// PrefillTokens is the number of prompt tokens computed this step
	// across the batch (excluding prefix-cache hits).
	PrefillTokens int
	// DecodeSeqs is the number of sequences generating one token each.
	DecodeSeqs int
	// KVReadBytes is the KV traffic attention reads this step.
	KVReadBytes int64
	// EncoderTokens is the number of image tokens pushed through the
	// vision encoder this step.
	EncoderTokens int
	// ExtraWeightPasses counts additional full weight reads in the step
	// (e.g. a speculative draft model running alongside the target).
	ExtraWeightBytes int64
	// SwapBytes is the host↔device KV transfer volume of the step
	// (tiered-offload spills plus restores, H2D and D2H combined);
	// it rides the PCIe link, not HBM.
	SwapBytes int64
	// PeerBytes is the replica↔replica KV transfer volume of the step:
	// fleet-store prefix fetches from a peer's host tier and live
	// request migrations. It rides the device's peer link (NVLink/IB),
	// not PCIe and not HBM.
	PeerBytes int64
	// CopyBytes is the device-to-device KV copy volume of the step:
	// copy-on-write privatizations when forked branches diverge. It
	// rides HBM (one read + one write per byte is folded into the
	// effective bandwidth figure).
	CopyBytes int64
	// KernelEfficiency scales compute/bandwidth terms; 1.0 is the
	// native kernel. The GCD-page ablation uses < 1 (§4.4: GCD paging
	// forces non-contiguous KV layouts that efficient kernels reject).
	KernelEfficiency float64
	// PCIeFactor and LinkFactor scale the respective link bandwidths
	// for this step — fault injection's degraded-link windows. 0 or 1
	// means nominal; 0.25 means the transfer takes 4× as long.
	// TimeFactor multiplies the whole step's duration (the
	// slow-replica straggler); 0 or 1 means nominal.
	PCIeFactor, LinkFactor, TimeFactor float64
}

// CostModel turns StepWork into simulated time for one model on one
// device.
type CostModel struct {
	Dev  Device
	Spec *model.Spec
}

// StepTime returns the simulated duration of one step.
func (c *CostModel) StepTime(w StepWork) time.Duration {
	eff := w.KernelEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	tokens := float64(w.PrefillTokens + w.DecodeSeqs)
	if tokens == 0 && w.EncoderTokens == 0 && w.SwapBytes == 0 && w.CopyBytes == 0 && w.PeerBytes == 0 {
		return 0
	}
	var sec float64
	if tokens > 0 {
		// GEMMs: 2 FLOPs per active parameter per token.
		compute := 2 * float64(c.Spec.ActiveParamCount()) * tokens / c.Dev.FLOPS
		// Weights stream through SRAM once per step regardless of batch
		// size — the term that makes batching pay.
		weights := (float64(c.Spec.WeightFootprint()) + float64(w.ExtraWeightBytes)) / c.Dev.MemBW
		if compute > weights {
			sec += compute
		} else {
			sec += weights
		}
		sec += float64(w.KVReadBytes) / c.Dev.MemBW
	}
	if w.EncoderTokens > 0 && c.Spec.Vision != nil {
		sec += encoderWorkFactor * 2 * float64(c.Spec.Vision.Params) * float64(w.EncoderTokens) / c.Dev.FLOPS
	}
	sec /= eff
	// DMA transfers are not kernel work: neither PCIe swaps, peer-link
	// transfers nor device-to-device CoW copies scale with kernel
	// efficiency.
	if w.CopyBytes > 0 {
		sec += float64(w.CopyBytes) / c.Dev.MemBW
	}
	pcie := c.Dev.PCIeTime(w.SwapBytes)
	if w.PCIeFactor > 0 && w.PCIeFactor != 1 {
		pcie = time.Duration(float64(pcie) / w.PCIeFactor)
	}
	link := c.Dev.LinkTime(w.PeerBytes)
	if w.LinkFactor > 0 && w.LinkFactor != 1 {
		link = time.Duration(float64(link) / w.LinkFactor)
	}
	t := c.Dev.StepOverhead + pcie + link + time.Duration(sec*float64(time.Second))
	if w.TimeFactor > 0 && w.TimeFactor != 1 {
		t = time.Duration(float64(t) * w.TimeFactor)
	}
	return t
}

// PCIeTime converts a host↔device transfer volume into wire time on
// the device's interconnect (DefaultPCIeBW when the device declares
// none) — the single bandwidth-resolution rule behind both the step
// cost model and per-request restore latencies.
func (d Device) PCIeTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	bw := d.PCIeBW
	if bw <= 0 {
		bw = DefaultPCIeBW
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// LinkTime converts a replica↔replica transfer volume into wire time
// on the device's peer interconnect (DefaultLinkBW when the device
// declares none) — the charging rule for fleet prefix fetches and
// live-migration page moves.
func (d Device) LinkTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	bw := d.LinkBW
	if bw <= 0 {
		bw = DefaultLinkBW
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// DecodeKVReadBytes returns the attention KV traffic of one decode step
// for a sequence with the given per-group projected context lengths:
// each group reads what its dependency pattern requires — full layers
// the whole prefix, window layers min(ctx, window), Mamba its state.
func DecodeKVReadBytes(spec *model.Spec, projCtx map[string]int) int64 {
	var total int64
	for i := range spec.Groups {
		total += groupKVReadBytes(&spec.Groups[i], projCtx[spec.Groups[i].Name])
	}
	return total
}

// DecodeKVReadBytesSplit is DecodeKVReadBytes with the projected
// context given as committed (text, image) token counts: each group's
// context follows from its scope, so per-decode cost lookups build no
// map. The engine tracks the two counts incrementally per sequence.
func DecodeKVReadBytesSplit(spec *model.Spec, text, img int) int64 {
	var total int64
	for i := range spec.Groups {
		g := &spec.Groups[i]
		var ctx int
		switch g.Scope {
		case model.ScopeText:
			ctx = text
		case model.ScopeImage:
			ctx = img
		default:
			ctx = text + img
		}
		total += groupKVReadBytes(g, ctx)
	}
	return total
}

// groupKVReadBytes is one group's decode read traffic at context ctx.
func groupKVReadBytes(g *model.KVGroup, ctx int) int64 {
	switch g.Kind {
	case model.Mamba:
		return int64(g.StateBytes) * int64(g.Layers)
	case model.SlidingWindow, model.PyramidWindow:
		if ctx > g.Window {
			ctx = g.Window
		}
		return int64(ctx) * int64(g.BytesPerToken) * int64(g.Layers)
	case model.VisionEmbedding:
		// Embeddings are consumed by prefill, not decode.
		return 0
	default:
		return int64(ctx) * int64(g.BytesPerToken) * int64(g.Layers)
	}
}
