package serve

import (
	"context"
	"testing"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/workload"
)

// TestReportTierMetrics drives a cache-pressured tiered server online
// and checks the tier columns of the scorecard: positive tier hit
// rate bounded by the overall hit rate, transfer counts, and a
// restore p99; an untiered server on the same stream reports zeros.
func TestReportTierMetrics(t *testing.T) {
	run := func(hostBytes int64) Report {
		mgr, err := core.New(core.Config{
			Spec: testSpec(), CapacityBytes: 1 << 20, TokensPerPage: 8,
			EnablePrefixCache: true, RequestAware: true,
			HostTierBytes: hostBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Engine: engine.Config{
			Spec: testSpec(), Device: testDevice(), Manager: mgr,
			PreemptMode: engine.PreemptSwap,
		}})
		if err != nil {
			t.Fatal(err)
		}
		// Shared prefixes whose working set overflows the 1 MiB budget:
		// without a tier every re-arrival recomputes its group prefix.
		g := workload.NewGen(5)
		reqs := g.PrefixGroups(16, 6, 400, 32)
		g.PoissonArrivals(reqs, 400)
		for _, r := range reqs {
			if _, err := s.Submit(context.Background(), r); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		return s.Report()
	}

	tiered := run(64 << 20)
	if tiered.SwapOuts == 0 || tiered.SwapIns == 0 || tiered.RestoredTokens == 0 {
		t.Fatalf("tiered server moved nothing: %+v", tiered)
	}
	if tiered.TierHitRate <= 0 || tiered.TierHitRate > tiered.HitRate {
		t.Fatalf("TierHitRate = %v, want in (0, HitRate=%v]", tiered.TierHitRate, tiered.HitRate)
	}
	if tiered.P99Restore <= 0 {
		t.Fatalf("P99Restore = %v, want > 0", tiered.P99Restore)
	}

	bare := run(0)
	if bare.SwapOuts != 0 || bare.SwapIns != 0 || bare.RestoredTokens != 0 ||
		bare.TierHitRate != 0 || bare.P99Restore != 0 {
		t.Fatalf("untiered server reports tier activity: %+v", bare)
	}
	if tiered.HitRate <= bare.HitRate {
		t.Errorf("tiered hit rate %v not above untiered %v", tiered.HitRate, bare.HitRate)
	}
}
