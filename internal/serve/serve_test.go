package serve

import (
	"context"
	"math"
	"testing"
	"time"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/sched"
	"jenga/internal/workload"
)

func testSpec() *model.Spec {
	return &model.Spec{
		Name: "serve-test", Params: 100_000_000, WeightBytes: 2, HiddenSize: 256,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 4, BytesPerToken: 256},
		},
	}
}

func testDevice() gpu.Device {
	return gpu.Device{Name: "test-gpu", MemBytes: 1 << 30, FLOPS: 50e12, MemBW: 500e9,
		StepOverhead: time.Millisecond}
}

func testServer(t *testing.T, capacity int64, cache bool, cfg Config) *Server {
	t.Helper()
	mgr, err := core.New(core.Config{
		Spec: testSpec(), CapacityBytes: capacity, TokensPerPage: 8,
		EnablePrefixCache: cache, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine.Spec = testSpec()
	cfg.Engine.Device = testDevice()
	cfg.Engine.Manager = mgr
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testReqs(seed int64, n, promptLen, outLen int) []workload.Request {
	g := workload.NewGen(seed)
	reqs := g.ShareGPT(n)
	for i := range reqs {
		if len(reqs[i].Prompt) > promptLen {
			reqs[i].Prompt = reqs[i].Prompt[:promptLen]
		}
		reqs[i].OutputLen = outLen
		reqs[i].Arrival = 0
	}
	return reqs
}

// TestServerStreamsTokens submits a few requests and checks that each
// stream carries its full token sequence in order and terminates
// Finished, and that the report adds up.
func TestServerStreamsTokens(t *testing.T) {
	s := testServer(t, 64<<20, false, Config{})
	const out = 12
	reqs := testReqs(1, 4, 200, out)
	streams := make([]*Stream, 0, len(reqs))
	for _, r := range reqs {
		st, err := s.Submit(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}
	for _, st := range streams {
		gen, last := 0, 0
		for ev := range st.Events() {
			switch ev.Type {
			case engine.EventFirstToken, engine.EventToken:
				if ev.Generated != last+1 {
					t.Fatalf("stream %d: token %d after %d", st.ID(), ev.Generated, last)
				}
				last = ev.Generated
				gen = ev.Generated
			}
		}
		res, ok := st.Result()
		if !ok {
			t.Fatalf("stream %d: no result after channel close", st.ID())
		}
		if res.State != StateFinished || res.Generated != out || gen != out {
			t.Fatalf("stream %d: state %v generated %d/%d, want finished %d", st.ID(), res.State, res.Generated, gen, out)
		}
		if res.TTFT <= 0 || res.E2E < res.TTFT {
			t.Fatalf("stream %d: latencies inconsistent: %+v", st.ID(), res)
		}
		if st.Dropped() != 0 {
			t.Fatalf("stream %d: dropped %d events despite full consumption", st.ID(), st.Dropped())
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Finished != 4 || rep.Submitted != 4 || rep.Live != 0 {
		t.Fatalf("report %+v, want 4 finished of 4", rep)
	}
	if rep.ReqPerSec <= 0 || rep.P99E2E < rep.P50E2E {
		t.Fatalf("report stats inconsistent: %+v", rep)
	}
}

// TestServerContextCancelReleasesKV cancels one stream mid-generation
// via its context and checks the KV returns and the other stream
// completes untouched.
func TestServerContextCancelReleasesKV(t *testing.T) {
	s := testServer(t, 64<<20, false, Config{})
	pre := s.Snapshot().Usage

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	victimReq := testReqs(5, 1, 400, 50_000)[0]
	victimReq.ID = 101
	victim, err := s.Submit(ctx, victimReq)
	if err != nil {
		t.Fatal(err)
	}
	bystanderReq := testReqs(6, 1, 300, 16)[0]
	bystanderReq.ID = 102
	bystander, err := s.Submit(context.Background(), bystanderReq)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the victim is mid-generation, then cancel its context.
	seen := 0
	for ev := range victim.Events() {
		if ev.Type == engine.EventToken {
			seen = ev.Generated
		}
		if seen >= 8 {
			cancel()
			break
		}
	}
	res, err := victim.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateCancelled {
		t.Fatalf("victim state %v, want cancelled", res.State)
	}
	if res.Generated < 8 || res.Generated >= 50_000 {
		t.Fatalf("victim generated %d, want mid-generation", res.Generated)
	}
	if bres, err := bystander.Wait(context.Background()); err != nil || bres.State != StateFinished {
		t.Fatalf("bystander %+v err %v, want finished", bres, err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	u := s.Snapshot().Usage
	if u.Used != pre.Used || u.Wasted != pre.Wasted {
		t.Errorf("cancelled stream leaked KV: pre %+v post %+v", pre, u)
	}
	rep := s.Report()
	if rep.Cancelled != 1 || rep.Finished != 1 {
		t.Fatalf("report %+v, want 1 cancelled 1 finished", rep)
	}
}

// TestServerBackpressure: with MaxQueue 2 and a paused scheduler, the
// third submission bounces with ErrQueueFull; after close, ErrClosed.
func TestServerBackpressure(t *testing.T) {
	s := testServer(t, 64<<20, false, Config{MaxQueue: 2})
	s.Pause()
	reqs := testReqs(7, 3, 100, 4)
	if _, err := s.Submit(context.Background(), reqs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), reqs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), reqs[2]); err != ErrQueueFull {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	s.Resume()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), reqs[2]); err != ErrClosed {
		t.Fatalf("submit after drain: %v, want ErrClosed", err)
	}
	if rep := s.Report(); rep.Finished != 2 {
		t.Fatalf("report %+v, want 2 finished", rep)
	}
}

// TestServerShedStreams: an admission policy on the wrapped engine
// sheds an impossible request; its stream terminates StateShed.
func TestServerShedStreams(t *testing.T) {
	s := testServer(t, 1<<20, false, Config{
		Engine: engine.Config{Admission: engine.KVAdmission{}},
	})
	huge := testReqs(8, 1, 100, 4)[0]
	for len(huge.Prompt) < 40_000 {
		huge.Prompt = append(huge.Prompt, huge.Prompt...)
	}
	st, err := s.Submit(context.Background(), huge)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateShed {
		t.Fatalf("state %v, want shed", res.State)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Shed != 1 || rep.ShedRate != 1 {
		t.Fatalf("report %+v, want shed 1 rate 1", rep)
	}
}

// TestCancelAfterIsDeterministic: CancelAfter(n) terminates the stream
// with exactly n tokens generated, however fast the pump runs.
func TestCancelAfterIsDeterministic(t *testing.T) {
	for i := 0; i < 3; i++ {
		s := testServer(t, 64<<20, false, Config{})
		st, err := s.Submit(context.Background(), testReqs(21, 1, 200, 100_000)[0])
		if err != nil {
			t.Fatal(err)
		}
		st.CancelAfter(24)
		res, err := st.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.State != StateCancelled || res.Generated != 24 {
			t.Fatalf("run %d: state %v generated %d, want cancelled at exactly 24", i, res.State, res.Generated)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		if u := s.Snapshot().Usage; u.Used != 0 {
			t.Fatalf("run %d: leaked KV: %+v", i, u)
		}
	}
}

// TestServerClose cancels live streams and refuses new work.
func TestServerClose(t *testing.T) {
	s := testServer(t, 64<<20, false, Config{})
	st, err := s.Submit(context.Background(), testReqs(9, 1, 400, 50_000)[0])
	if err != nil {
		t.Fatal(err)
	}
	// Let it start, then suspend the pump so Close is guaranteed to
	// find the stream mid-generation (the step loop is fast enough to
	// finish 50k decodes within a scheduler quantum otherwise).
	for ev := range st.Events() {
		if ev.Type == engine.EventFirstToken {
			break
		}
	}
	s.Pause()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	res, ok := st.Result()
	if !ok || res.State != StateCancelled {
		t.Fatalf("stream after Close: %+v ok=%v, want cancelled", res, ok)
	}
}

// TestBatchOnlineEquivalence: pausing the server, submitting a full
// seeded workload and resuming reproduces Engine.Run's aggregate
// numbers exactly — batch mode really is a thin driver over the same
// core the online server pumps.
func TestBatchOnlineEquivalence(t *testing.T) {
	gen := func() []workload.Request {
		g := workload.NewGen(42)
		reqs := g.PrefixGroups(5, 10, 320, 64)
		g.PoissonArrivals(reqs, 200)
		return reqs
	}

	// Batch reference.
	mgr, err := core.New(core.Config{
		Spec: testSpec(), CapacityBytes: 16 << 20, TokensPerPage: 8,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(engine.Config{Spec: testSpec(), Device: testDevice(), Manager: mgr, MaxBatchTokens: 512})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Run(gen())
	if err != nil {
		t.Fatal(err)
	}

	// Online drive of the identical workload.
	s := testServer(t, 16<<20, true, Config{Engine: engine.Config{MaxBatchTokens: 512}})
	s.Pause()
	for _, r := range gen() {
		if _, err := s.Submit(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	s.Resume()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	got := s.EngineResult()
	if got.Steps != want.Steps || got.Duration != want.Duration ||
		got.Finished != want.Finished || got.Failed != want.Failed ||
		got.CachedPromptTokens != want.CachedPromptTokens ||
		got.ComputedPromptTokens != want.ComputedPromptTokens ||
		got.GeneratedTokens != want.GeneratedTokens ||
		got.MeanTTFT != want.MeanTTFT || got.MeanE2E != want.MeanE2E ||
		got.HitRate != want.HitRate || got.MeanKVUtil != want.MeanKVUtil {
		t.Errorf("online drive diverged from batch:\n got  %+v\n want %+v", got, want)
	}
}

// TestReportNoStreams: a report over zero terminated streams must be
// all zeros (or the vacuous 1.0 attainment), never NaN and never a
// panic inside the percentile math.
func TestReportNoStreams(t *testing.T) {
	s := testServer(t, 8<<20, false, Config{})
	rep := s.Report()
	if rep.Submitted != 0 || rep.Finished != 0 || rep.Live != 0 {
		t.Fatalf("empty server report %+v", rep)
	}
	if rep.P50TTFT != 0 || rep.P99TTFT != 0 || rep.P50E2E != 0 || rep.P99E2E != 0 {
		t.Errorf("percentiles over no streams = %v/%v/%v/%v, want zeros",
			rep.P50TTFT, rep.P99TTFT, rep.P50E2E, rep.P99E2E)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ReqPerSec", rep.ReqPerSec}, {"Goodput", rep.Goodput},
		{"SLOAttainment", rep.SLOAttainment}, {"ShedRate", rep.ShedRate},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			t.Errorf("%s = %v over zero streams", f.name, f.v)
		}
	}
	if len(rep.PerPriority) != 0 {
		t.Errorf("per-priority breakdown over zero streams: %+v", rep.PerPriority)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReportOneStream: p50 and p99 over a single finished stream must
// both equal that stream's latency.
func TestReportOneStream(t *testing.T) {
	s := testServer(t, 8<<20, false, Config{})
	st, err := s.Submit(context.Background(), testReqs(21, 1, 64, 4)[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Finished != 1 {
		t.Fatalf("finished %d, want 1", rep.Finished)
	}
	if rep.P50TTFT != res.TTFT || rep.P99TTFT != res.TTFT {
		t.Errorf("TTFT percentiles %v/%v, want both %v", rep.P50TTFT, rep.P99TTFT, res.TTFT)
	}
	if rep.P50E2E != res.E2E || rep.P99E2E != res.E2E {
		t.Errorf("E2E percentiles %v/%v, want both %v", rep.P50E2E, rep.P99E2E, res.E2E)
	}
	if len(rep.PerPriority) != 1 || rep.PerPriority[0].Finished != 1 ||
		rep.PerPriority[0].P50TTFT != res.TTFT {
		t.Errorf("per-priority breakdown %+v, want one class mirroring the stream", rep.PerPriority)
	}
}

// TestReportAllShed: when every submission is shed, percentiles stay
// zero, the shed rate is 1, and attainment is well-defined.
func TestReportAllShed(t *testing.T) {
	s := testServer(t, 1<<20, false, Config{
		Engine:  engine.Config{Admission: engine.KVAdmission{}},
		SLOTTFT: 100 * time.Millisecond,
	})
	huge := testReqs(8, 3, 100, 4)
	for i := range huge {
		for len(huge[i].Prompt) < 40_000 {
			huge[i].Prompt = append(huge[i].Prompt, huge[i].Prompt...)
		}
		huge[i].Priority = i % 2
		if _, err := s.Submit(context.Background(), huge[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Shed != 3 || rep.ShedRate != 1 || rep.Finished != 0 {
		t.Fatalf("report %+v, want 3 shed at rate 1", rep)
	}
	if rep.P50TTFT != 0 || rep.P99TTFT != 0 {
		t.Errorf("percentiles over all-shed = %v/%v, want zeros", rep.P50TTFT, rep.P99TTFT)
	}
	if math.IsNaN(rep.SLOAttainment) || math.IsNaN(rep.Goodput) || math.IsNaN(rep.ReqPerSec) {
		t.Errorf("NaN in all-shed report %+v", rep)
	}
	if len(rep.PerPriority) != 2 {
		t.Fatalf("per-priority classes %d, want 2", len(rep.PerPriority))
	}
	for _, pr := range rep.PerPriority {
		if pr.Finished != 0 || pr.Shed == 0 || math.IsNaN(pr.SLOAttainment) || math.IsNaN(pr.Goodput) {
			t.Errorf("per-priority all-shed row %+v", pr)
		}
	}
}

// TestReportPerPriorityBreakdown: two priority classes under a
// Priority scheduler — the breakdown must partition the submitted
// streams by class, in ascending priority order, with the high class
// seeing no worse p50 TTFT than the low class.
func TestReportPerPriorityBreakdown(t *testing.T) {
	s := testServer(t, 1<<20, false, Config{
		Scheduler: sched.NewPriority(),
		SLOTTFT:   time.Second,
	})
	s.Pause()
	reqs := testReqs(33, 16, 400, 32)
	for i := range reqs {
		reqs[i].Priority = i % 2
		if _, err := s.Submit(context.Background(), reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Resume()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if len(rep.PerPriority) != 2 {
		t.Fatalf("per-priority classes %d, want 2: %+v", len(rep.PerPriority), rep.PerPriority)
	}
	lo, hi := rep.PerPriority[0], rep.PerPriority[1]
	if lo.Priority != 0 || hi.Priority != 1 {
		t.Fatalf("classes not ascending: %+v", rep.PerPriority)
	}
	if lo.Submitted != 8 || hi.Submitted != 8 {
		t.Errorf("submitted %d/%d, want 8/8", lo.Submitted, hi.Submitted)
	}
	if lo.Finished+hi.Finished != rep.Finished {
		t.Errorf("breakdown finished %d+%d != total %d", lo.Finished, hi.Finished, rep.Finished)
	}
	if hi.P50TTFT > lo.P50TTFT {
		t.Errorf("high-class p50 TTFT %v above low-class %v under a priority scheduler", hi.P50TTFT, lo.P50TTFT)
	}
}

// TestReportLivePriorityClass: a class whose streams are all still
// live must still appear in the breakdown with its Submitted count.
func TestReportLivePriorityClass(t *testing.T) {
	s := testServer(t, 8<<20, false, Config{})
	s.Pause()
	reqs := testReqs(41, 2, 64, 4)
	for i := range reqs {
		reqs[i].Priority = 3
		if _, err := s.Submit(context.Background(), reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.Report() // nothing has terminated yet
	if len(rep.PerPriority) != 1 || rep.PerPriority[0].Priority != 3 ||
		rep.PerPriority[0].Submitted != 2 || rep.PerPriority[0].Finished != 0 {
		t.Errorf("live-class breakdown %+v, want class 3 with 2 submitted, 0 finished", rep.PerPriority)
	}
	s.Resume()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamFork forks a live stream into branches mid-decode and
// checks each branch is a first-class stream: its own events (first
// token with no prefill), its own deterministic CancelAfter bound, its
// own report row — and that the shared KV is fully released at drain.
func TestStreamFork(t *testing.T) {
	s := testServer(t, 64<<20, true, Config{})
	rootReq := testReqs(51, 1, 200, 100_000)[0]
	root, err := s.Submit(context.Background(), rootReq)
	if err != nil {
		t.Fatal(err)
	}
	for ev := range root.Events() {
		if (ev.Type == engine.EventFirstToken || ev.Type == engine.EventToken) &&
			ev.Generated >= 8 {
			break
		}
	}
	s.Pause() // step boundary: the parent is quiescent and mid-decode
	kids, err := root.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 {
		t.Fatalf("forked %d branches, want 2", len(kids))
	}
	if u := s.Snapshot().Usage; u.SharedBytes <= 0 {
		t.Errorf("no shared KV right after fork: %+v", u)
	}
	root.CancelAfter(40)
	for _, k := range kids {
		k.CancelAfter(60)
	}
	s.Resume()
	for _, k := range kids {
		sawFirst := false
		for ev := range k.Events() {
			if ev.Type == engine.EventFirstToken {
				sawFirst = true
			}
		}
		res, ok := k.Result()
		if !ok || res.State != StateCancelled || res.Generated != 60 {
			t.Fatalf("branch %d: %+v ok=%v, want cancelled at exactly 60", k.ID(), res, ok)
		}
		if !sawFirst || res.TTFT <= 0 {
			t.Errorf("branch %d: first token missing (saw=%v TTFT=%v)", k.ID(), sawFirst, res.TTFT)
		}
	}
	if res, err := root.Wait(context.Background()); err != nil || res.State != StateCancelled {
		t.Fatalf("root: %+v err %v, want cancelled", res, err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	rep := s.Report()
	if rep.Submitted != 3 || rep.Cancelled != 3 {
		t.Fatalf("report %+v, want 3 submitted, 3 cancelled", rep)
	}
	if u := s.Snapshot().Usage; u.Used != 0 || u.SharedBytes != 0 {
		t.Errorf("fork leaked KV: %+v", u)
	}
}

// TestStreamForkQueued: forking a stream that has not started decoding
// is an error, and the server stays usable.
func TestStreamForkQueued(t *testing.T) {
	s := testServer(t, 64<<20, true, Config{})
	s.Pause()
	st, err := s.Submit(context.Background(), testReqs(52, 1, 100, 4)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Fork(1); err == nil {
		t.Error("fork of a queued stream should fail")
	}
	s.Resume()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if rep := s.Report(); rep.Finished != 1 {
		t.Fatalf("report %+v, want the root finished despite the failed fork", rep)
	}
}
