// Package serve is the online serving surface over the engine's
// event-driven streaming core: a Server wraps one engine replica and
// makes it safe for concurrent clients, each Submit returns a Stream
// whose channel carries that request's scheduler events (first token,
// per-token progress, preemptions) and whose Result records the
// terminal state and per-stream latencies.
//
// Layering and goroutine confinement: the engine itself stays
// single-threaded. The Server guards it with one mutex; a pump
// goroutine steps the simulation whenever live work exists, and
// Submit/Cancel/Report interleave between steps under the same lock.
// Engine events are dispatched to stream channels synchronously from
// the pump, so per-stream event order always matches scheduler order:
// queued → first_token → token* (interleaved with preempted) → exactly
// one terminal event, after which the channel closes.
//
// Backpressure has two stages. At submit time, a bounded queue
// (MaxQueue) rejects with ErrQueueFull — the caller's signal to slow
// down. At arrival time, the engine's AdmissionPolicy (configured on
// the wrapped engine.Config) sheds by estimated KV demand versus live
// usage or by SLO estimates; shed streams terminate with StateShed.
// Slow event consumers never block the scheduler: channel sends are
// non-blocking, dropped progress events are counted on the stream, and
// the terminal state is always available from Result after the channel
// closes.
//
//jenga:concurrent the server is the concurrency boundary: pump goroutine, stream channels, and the mutex/cond that confine the engine
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"jenga/internal/engine"
	"jenga/internal/metrics"
	"jenga/internal/sched"
	"jenga/internal/workload"
)

// maxEventBuffer caps a stream's event-channel allocation: outputs up
// to this length never drop progress events even if the consumer only
// reads after termination; longer streams fall back to the documented
// drop-and-count rule for events beyond the consumer's lag.
const maxEventBuffer = 1024

// ErrQueueFull is returned by Submit when the server's bounded queue
// is at capacity — backpressure, not failure; retry after draining.
var ErrQueueFull = errors.New("serve: submission queue full")

// ErrClosed is returned by Submit after Drain or Close.
var ErrClosed = errors.New("serve: server closed")

// Config configures a Server.
type Config struct {
	// Engine configures the wrapped replica (spec, device, manager,
	// batching limits, admission policy).
	Engine engine.Config
	// Scheduler, when set, overrides Engine.Scheduler: the scheduling
	// policy (admission order, preemption victims, prefill/decode
	// budget) the wrapped replica runs. Nil falls back to
	// Engine.Scheduler, and from there to the FCFS default.
	Scheduler sched.Scheduler
	// MaxQueue bounds the not-yet-scheduled requests (pending plus
	// waiting) a Submit may join; beyond it Submit returns
	// ErrQueueFull. 0 means unbounded.
	MaxQueue int
	// SLOTTFT is the time-to-first-token target Report measures
	// SLO attainment against (0: attainment over per-request
	// deadlines instead).
	SLOTTFT time.Duration
}

// StreamState is a stream's terminal state.
type StreamState int

const (
	// StateActive: the stream has not terminated yet.
	StateActive StreamState = iota
	// StateFinished: the full output was generated.
	StateFinished
	// StateFailed: the request could never run (context exceeds
	// capacity) or the engine aborted.
	StateFailed
	// StateShed: the admission policy dropped the request at arrival.
	StateShed
	// StateCancelled: the stream was cancelled (Cancel or context).
	StateCancelled
)

// String names the state.
func (s StreamState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateFinished:
		return "finished"
	case StateFailed:
		return "failed"
	case StateShed:
		return "shed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("StreamState(%d)", int(s))
	}
}

// StreamResult is a stream's terminal record.
type StreamResult struct {
	// ID is the request ID.
	ID int64
	// State is the terminal state.
	State StreamState
	// Arrival is the simulated arrival instant.
	Arrival time.Duration
	// TTFT and E2E are the stream's latencies (TTFT zero when no first
	// token was produced, E2E measured to the terminal event).
	TTFT, E2E time.Duration
	// Generated is the number of output tokens produced.
	Generated int
	// Preemptions counts recompute-preemptions the stream suffered.
	Preemptions int
	// DeadlineMet reports whether the stream finished within its
	// request's Deadline (true when no deadline was set and the stream
	// finished).
	DeadlineMet bool
	// Priority echoes the request's scheduling class; Report groups
	// its per-priority breakdown by it.
	Priority int
	// Err carries the engine error when State is StateFailed because
	// the simulation aborted.
	Err error
}

// Stream is the per-request handle Submit returns.
type Stream struct {
	id  int64
	srv *Server

	events chan engine.Event
	done   chan struct{}

	// Owned by the pump (under srv.mu) until done closes.
	arrival     time.Duration
	deadline    time.Duration
	priority    int
	outputLen   int
	firstToken  time.Duration
	generated   int
	preemptions int
	dropped     int
	cancelAfter int
	result      StreamResult
}

// ID returns the request ID the stream serves.
func (st *Stream) ID() int64 { return st.id }

// Events returns the stream's event channel. It closes after the
// terminal event. Sends never block the scheduler: progress events
// are dropped (and counted) when the consumer lags behind the buffer,
// so treat the channel as a progress feed and read the authoritative
// outcome from Result.
func (st *Stream) Events() <-chan engine.Event { return st.events }

// Done returns a channel closed when the stream terminates.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Result returns the terminal record; ok is false while the stream is
// still active.
func (st *Stream) Result() (StreamResult, bool) {
	select {
	case <-st.done:
		return st.result, true
	default:
		return StreamResult{}, false
	}
}

// Dropped returns the number of progress events dropped because the
// consumer lagged (terminal state is never dropped).
func (st *Stream) Dropped() int {
	st.srv.mu.Lock()
	defer st.srv.mu.Unlock()
	return st.dropped
}

// Cancel terminates the stream mid-generation, releasing all KV it
// holds (fully committed pages return to the prefix cache). A no-op
// after the stream terminates.
func (st *Stream) Cancel() {
	st.srv.mu.Lock()
	defer st.srv.mu.Unlock()
	select {
	case <-st.done:
	default:
		st.srv.eng.Cancel(st.id)
	}
}

// CancelAfter cancels the stream deterministically once n output
// tokens exist: the scheduler applies the cancellation at the step
// boundary right after the n-th token, regardless of how fast the
// consumer drains events — server-side token-budget enforcement. If n
// tokens were already generated, cancellation is applied before the
// next step.
func (st *Stream) CancelAfter(n int) {
	if n < 1 {
		n = 1
	}
	s := st.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-st.done:
		return
	default:
	}
	st.cancelAfter = n
	if st.generated >= n {
		s.pendingCancels = append(s.pendingCancels, st.id)
	}
	s.cond.Broadcast()
}

// Fork splits the stream into n additional branches that share all KV
// computed so far copy-on-write and decode independently from this
// point — parallel sampling, beam-search expansion or agentic fan-out
// over one prefix without recomputing or duplicating it. Each returned
// Stream is a first-class handle: it emits its own events, counts in
// Report, and can be cancelled or forked again on its own. The parent
// keeps streaming unaffected.
//
// The stream must be actively decoding (past its first token) on a
// manager with the core.Forker capability. Fork is best effort: on a
// mid-fan-out failure the branches created so far are returned
// alongside the error and remain live.
func (st *Stream) Fork(n int) ([]*Stream, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: fork: branch count %d", n)
	}
	s := st.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case <-st.done:
		return nil, fmt.Errorf("serve: fork: stream %d already terminated", st.id)
	default:
	}
	buf := st.outputLen + 8
	if buf > maxEventBuffer {
		buf = maxEventBuffer
	}
	streams := make([]*Stream, 0, n)
	for i := 0; i < n; i++ {
		id := s.nextID
		s.nextID++
		cst := &Stream{
			id:        id,
			srv:       s,
			events:    make(chan engine.Event, buf),
			done:      make(chan struct{}),
			arrival:   s.eng.Clock(),
			deadline:  st.deadline,
			priority:  st.priority,
			outputLen: st.outputLen,
		}
		// Register before forking: the engine emits the child's queued
		// event synchronously from Fork.
		s.streams[id] = cst
		if err := s.eng.Fork(st.id, []int64{id}); err != nil {
			delete(s.streams, id)
			return streams, err
		}
		s.submitted++
		s.submittedByPrio[cst.priority]++
		streams = append(streams, cst)
	}
	s.cond.Signal()
	return streams, nil
}

// Wait blocks until the stream terminates or the context expires.
func (st *Stream) Wait(ctx context.Context) (StreamResult, error) {
	select {
	case <-st.done:
		return st.result, nil
	case <-ctx.Done():
		return StreamResult{}, ctx.Err()
	}
}

// Server is the concurrent online serving surface over one engine
// replica. All methods are safe for concurrent use.
type Server struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	eng     *engine.Engine
	streams map[int64]*Stream
	records []StreamResult
	// submittedByPrio counts accepted Submits per priority class for
	// the Report breakdown.
	submittedByPrio map[int]int
	nextID          int64
	// pendingCancels are CancelAfter hits applied at the next step
	// boundary (the engine sink must not re-enter the engine).
	pendingCancels []int64

	submitted int
	closed    bool
	paused    bool
	runErr    error

	done chan struct{}
}

// New builds a Server and starts its pump goroutine. The server owns
// the engine built from cfg.Engine; callers interact only through the
// Server.
func New(cfg Config) (*Server, error) {
	if cfg.Scheduler != nil {
		cfg.Engine.Scheduler = cfg.Scheduler
	}
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:             cfg,
		eng:             eng,
		streams:         make(map[int64]*Stream),
		submittedByPrio: make(map[int]int),
		nextID:          1,
		done:            make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	eng.SetEventSink(s.handleEvent)
	go s.pump()
	return s, nil
}

// Submit enqueues one request for online serving and returns its
// Stream. The request's Arrival is stamped to the server's current
// simulated clock when it lies in the past; an ID of 0 is assigned
// automatically; duplicate live IDs are rejected. The context governs
// the stream's lifetime: when it expires before the stream terminates,
// the stream is cancelled and its KV released.
func (s *Server) Submit(ctx context.Context, req workload.Request) (*Stream, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	snap := s.eng.SnapshotTotals() // queue depths and clock only
	if s.cfg.MaxQueue > 0 && snap.Pending+snap.Waiting >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	if req.ID == 0 {
		req.ID = s.nextID
	}
	if _, dup := s.streams[req.ID]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: request ID %d already live", req.ID)
	}
	if req.Arrival < snap.Clock {
		req.Arrival = snap.Clock
	}
	r := req // escapes: the engine retains the pointer
	if err := s.eng.Submit(&r); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if req.ID >= s.nextID {
		s.nextID = req.ID + 1
	}
	// Buffer the full output when small so an after-the-fact consumer
	// drops nothing, but cap the allocation: beyond the cap the
	// documented drop-and-count backpressure rule applies.
	buf := req.OutputLen + 8
	if buf > maxEventBuffer {
		buf = maxEventBuffer
	}
	st := &Stream{
		id:        req.ID,
		srv:       s,
		events:    make(chan engine.Event, buf),
		done:      make(chan struct{}),
		arrival:   req.Arrival,
		deadline:  req.Deadline,
		priority:  req.Priority,
		outputLen: req.OutputLen,
	}
	s.streams[req.ID] = st
	s.submitted++
	s.submittedByPrio[req.Priority]++
	s.cond.Signal()
	s.mu.Unlock()
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				st.Cancel()
			case <-st.done:
			}
		}()
	}
	return st, nil
}

// pump steps the engine whenever live work exists. It holds the lock
// across each step and releases it between steps so submissions and
// cancellations interleave at step boundaries.
func (s *Server) pump() {
	defer close(s.done)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && (s.paused || !s.eng.Live()) {
			s.cond.Wait()
		}
		if s.closed && !s.eng.Live() {
			s.eng.FinishSampling()
			return
		}
		if len(s.pendingCancels) > 0 {
			for _, id := range s.pendingCancels {
				s.eng.Cancel(id)
			}
			s.pendingCancels = s.pendingCancels[:0]
			continue // re-check liveness before stepping
		}
		if err := s.eng.StepOnce(); err != nil {
			s.runErr = err
			s.closed = true // no pump survives an engine abort; Submit must refuse
			s.failAll(err)
			return
		}
		// Yield the lock AND the processor so Submit/Cancel get a turn
		// between steps: with the hot-path work per step now far below
		// a scheduler quantum, a bare unlock/lock pair would let the
		// pump re-acquire the mutex for thousands of steps before a
		// blocked caller ever runs (GOMAXPROCS=1 ping-pong).
		s.mu.Unlock()
		runtime.Gosched()
		s.mu.Lock()
	}
}

// handleEvent routes one engine event to its stream. Called
// synchronously from StepOnce with s.mu held by the pump.
func (s *Server) handleEvent(ev engine.Event) {
	st := s.streams[ev.ID]
	if st == nil {
		return
	}
	switch ev.Type {
	case engine.EventFirstToken:
		st.firstToken = ev.Clock
		st.generated = ev.Generated
	case engine.EventToken:
		st.generated = ev.Generated
	case engine.EventPreempted:
		st.preemptions++
	}
	if (ev.Type == engine.EventFirstToken || ev.Type == engine.EventToken) &&
		st.cancelAfter > 0 && st.generated >= st.cancelAfter {
		s.pendingCancels = append(s.pendingCancels, st.id)
	}
	if !ev.Type.Terminal() {
		select {
		case st.events <- ev:
		default:
			st.dropped++
		}
		return
	}
	res := StreamResult{
		ID:          st.id,
		Arrival:     st.arrival,
		Generated:   st.generated,
		Preemptions: st.preemptions,
		Priority:    st.priority,
	}
	// Cancelling a request still ahead of its simulated arrival emits
	// the terminal event before st.arrival; a lifetime cannot be
	// negative.
	if ev.Clock > st.arrival {
		res.E2E = ev.Clock - st.arrival
	}
	if st.firstToken > 0 {
		res.TTFT = st.firstToken - st.arrival
	}
	switch ev.Type {
	case engine.EventFinished:
		res.State = StateFinished
		res.DeadlineMet = st.deadline == 0 || res.E2E <= st.deadline
	case engine.EventFailed:
		res.State = StateFailed
	case engine.EventShed:
		res.State = StateShed
	case engine.EventCancelled:
		res.State = StateCancelled
	}
	s.finalize(st, ev, res)
}

// finalize records a terminal result and closes the stream.
func (s *Server) finalize(st *Stream, ev engine.Event, res StreamResult) {
	st.result = res
	s.records = append(s.records, res)
	delete(s.streams, st.id)
	select {
	case st.events <- ev:
	default:
		st.dropped++
	}
	close(st.events)
	close(st.done)
}

// failAll terminates every live stream with err (engine abort).
func (s *Server) failAll(err error) {
	for id, st := range s.streams {
		res := StreamResult{
			ID: id, State: StateFailed, Arrival: st.arrival,
			Generated: st.generated, Preemptions: st.preemptions,
			Priority: st.priority, Err: err,
		}
		s.finalize(st, engine.Event{Type: engine.EventFailed, ID: id}, res)
	}
}

// Pause suspends stepping after the in-flight step completes;
// submissions still queue. With Resume it brackets a deterministic
// burst: pause, submit a full workload, resume — the engine then sees
// exactly the submission set the batch driver would.
func (s *Server) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume restarts stepping after Pause.
func (s *Server) Resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Drain stops accepting submissions, serves everything already
// admitted to completion, and returns the engine error if the
// simulation aborted.
func (s *Server) Drain() error {
	s.mu.Lock()
	s.closed = true
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Close stops accepting submissions and cancels every live stream,
// releasing their KV, then waits for the pump to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.paused = false
	for id := range s.streams {
		s.eng.Cancel(id)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Snapshot returns the live scheduler state (queue depths, memory
// usage) — what admission policies and cluster routers decide on.
func (s *Server) Snapshot() engine.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Snapshot()
}

// EngineResult returns the wrapped engine's aggregate metrics over
// every terminated request so far (the same structure Engine.Run
// returns at drain time).
func (s *Server) EngineResult() *engine.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.ResultSnapshot()
}

// Report is the server-level serving scorecard.
type Report struct {
	// Submitted counts accepted Submit calls; Finished, Failed, Shed
	// and Cancelled partition the terminated ones; Live is the rest.
	Submitted, Finished, Failed, Shed, Cancelled, Live int
	// Duration is the simulated clock at report time.
	Duration time.Duration
	// ReqPerSec is finished requests per simulated second.
	ReqPerSec float64
	// Goodput is deadline-meeting finishes per simulated second (equal
	// to ReqPerSec when no deadlines are set).
	Goodput float64
	// SLOAttainment is the fraction of finished streams with TTFT at
	// or under the configured SLOTTFT (with no target: the fraction
	// meeting their own deadlines).
	SLOAttainment float64
	// ShedRate is shed over submitted.
	ShedRate float64
	// P50TTFT/P99TTFT/P50E2E/P99E2E are per-stream latency
	// percentiles over finished streams.
	P50TTFT, P99TTFT, P50E2E, P99E2E time.Duration
	// HitRate, MeanKVUtil, PeakKVUtil and Preemptions mirror the
	// engine's aggregates.
	HitRate                float64
	MeanKVUtil, PeakKVUtil float64
	Preemptions            int
	// GeneratedTokens counts decode-produced tokens.
	GeneratedTokens int64
	// TierHitRate is the host-tier share of all prefill work (tokens
	// restored over PCIe instead of recomputed); RestoredTokens is
	// its numerator and SwapOuts/SwapIns the page/block transfer
	// counts — all zero without a tiered manager. RecomputedTokens is
	// the engine-level recompute waste (prompt work computed more
	// than once for the same request); it accumulates with or without
	// a tier, and the tier's job is to drive it toward zero.
	TierHitRate       float64
	RestoredTokens    int64
	RecomputedTokens  int64
	SwapOuts, SwapIns int64
	// PeerHits/PeerTokens/PeerBytes mirror the engine's fleet-store
	// accounting (peer-tier prefix fetches and their wire volume);
	// Migrations counts live requests migrated in plus out through
	// this server's engine. All zero outside a fleet deployment.
	PeerHits   int
	PeerTokens int64
	PeerBytes  int64
	Migrations int
	// P99Restore is the p99 per-request PCIe restore time over
	// finished streams — what a spilled-prefix hit costs at the tail.
	P99Restore time.Duration
	// PerPriority breaks the scorecard down by scheduling class,
	// ascending by priority — how a Priority scheduler trades
	// low-class latency for high-class SLO attainment. Every class
	// with an accepted Submit gets a row (a class whose streams are
	// all still live shows Submitted with zero terminated); empty
	// when nothing was submitted.
	PerPriority []PriorityReport
}

// PriorityReport is one priority class's share of the serving
// scorecard.
type PriorityReport struct {
	// Priority is the class (workload.Request.Priority).
	Priority int
	// Submitted counts accepted Submits in the class; Finished and
	// Shed partition its terminated streams (failed and cancelled
	// make up the remainder).
	Submitted, Finished, Shed int
	// P50TTFT and P99TTFT are latency percentiles over the class's
	// finished streams.
	P50TTFT, P99TTFT time.Duration
	// Goodput is the class's deadline-meeting finishes per simulated
	// second.
	Goodput float64
	// SLOAttainment is the fraction of the class's finished streams
	// with TTFT at or under the configured SLOTTFT (with no target:
	// the fraction meeting their own deadlines).
	SLOAttainment float64
	// Preemptions counts recompute-preemptions the class's terminated
	// streams suffered.
	Preemptions int
}

// Report assembles the scorecard over every stream terminated so far.
func (s *Server) Report() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	er := s.eng.ResultSnapshot()
	r := Report{
		Submitted:        s.submitted,
		Live:             len(s.streams),
		Duration:         s.eng.Clock(),
		HitRate:          er.HitRate,
		MeanKVUtil:       er.MeanKVUtil,
		PeakKVUtil:       er.PeakKVUtil,
		Preemptions:      er.Preemptions,
		GeneratedTokens:  er.GeneratedTokens,
		TierHitRate:      er.TierHitRate,
		RestoredTokens:   er.RestoredTokens,
		RecomputedTokens: er.RecomputedTokens,
		SwapOuts:         er.SwapOuts,
		SwapIns:          er.SwapIns,
		PeerHits:         er.PeerHits,
		PeerTokens:       er.PeerTokens,
		PeerBytes:        er.PeerBytes,
		Migrations:       er.MigratedIn + er.MigratedOut,
	}
	if len(er.PerRequest) > 0 {
		restores := make([]time.Duration, 0, len(er.PerRequest))
		for _, rm := range er.PerRequest {
			restores = append(restores, rm.RestoreTime)
		}
		r.P99Restore = metrics.Percentile(restores, 99)
	}
	// perPrio accumulates the per-class breakdown alongside the
	// aggregate pass.
	type prioAcc struct {
		finished, shed, good, preempt int
		ttfts                         []time.Duration
	}
	perPrio := make(map[int]*prioAcc)
	acc := func(p int) *prioAcc {
		a := perPrio[p]
		if a == nil {
			a = &prioAcc{}
			perPrio[p] = a
		}
		return a
	}
	var ttfts, e2es []time.Duration
	goodFinishes := 0
	for _, rec := range s.records {
		a := acc(rec.Priority)
		a.preempt += rec.Preemptions
		switch rec.State {
		case StateFinished:
			r.Finished++
			a.finished++
			ttfts = append(ttfts, rec.TTFT)
			e2es = append(e2es, rec.E2E)
			a.ttfts = append(a.ttfts, rec.TTFT)
			if rec.DeadlineMet {
				goodFinishes++
				a.good++
			}
		case StateFailed:
			r.Failed++
		case StateShed:
			r.Shed++
			a.shed++
		case StateCancelled:
			r.Cancelled++
		}
	}
	if r.Duration > 0 {
		r.ReqPerSec = float64(r.Finished) / r.Duration.Seconds()
	}
	r.Goodput = metrics.Goodput(goodFinishes, r.Duration)
	r.ShedRate = metrics.Fraction(r.Shed, s.submitted)
	if s.cfg.SLOTTFT > 0 {
		r.SLOAttainment = metrics.Attainment(ttfts, s.cfg.SLOTTFT)
	} else {
		r.SLOAttainment = metrics.Fraction(goodFinishes, r.Finished)
	}
	tq := metrics.Percentiles(ttfts, 50, 99)
	eq := metrics.Percentiles(e2es, 50, 99)
	r.P50TTFT, r.P99TTFT = tq[0], tq[1]
	r.P50E2E, r.P99E2E = eq[0], eq[1]
	// Every class with an accepted Submit gets a row, including
	// classes whose streams are all still live (zero terminated).
	prios := make([]int, 0, len(perPrio)+len(s.submittedByPrio))
	for p := range perPrio {
		prios = append(prios, p)
	}
	for p := range s.submittedByPrio {
		if _, ok := perPrio[p]; !ok {
			prios = append(prios, p)
		}
	}
	sort.Ints(prios)
	for _, p := range prios {
		a := perPrio[p]
		if a == nil {
			a = &prioAcc{}
		}
		pq := metrics.Percentiles(a.ttfts, 50, 99)
		pr := PriorityReport{
			Priority:    p,
			Submitted:   s.submittedByPrio[p],
			Finished:    a.finished,
			Shed:        a.shed,
			P50TTFT:     pq[0],
			P99TTFT:     pq[1],
			Goodput:     metrics.Goodput(a.good, r.Duration),
			Preemptions: a.preempt,
		}
		if s.cfg.SLOTTFT > 0 {
			pr.SLOAttainment = metrics.Attainment(a.ttfts, s.cfg.SLOTTFT)
		} else {
			pr.SLOAttainment = metrics.Fraction(a.good, a.finished)
		}
		r.PerPriority = append(r.PerPriority, pr)
	}
	return r
}
