package chaos

import (
	"testing"
	"time"
)

func samplePlan(seed int64) *Plan {
	p := NewPlan(seed).
		Crash(2, 3*time.Second).
		Restart(2, 5*time.Second).
		Degrade(1, time.Second, 4*time.Second, 0.25, 0.5).
		Straggle(0, 2*time.Second, 6*time.Second, 3)
	p.FetchFailRate = 0.2
	p.MigrateFailRate = 0.1
	return p
}

// Same seed, same construction → bit-identical schedule and decision
// stream: equal fingerprints, equal point-event replay, equal failure
// draws. This is the contract the cluster's chaos determinism rests
// on.
func TestPlanDeterminism(t *testing.T) {
	a, b := samplePlan(42), samplePlan(42)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same-seed fingerprints differ: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == samplePlan(43).Fingerprint() {
		t.Fatal("different seeds produced the same fingerprint")
	}
	ca, cb := a.Start(), b.Start()
	for {
		ea, oka := ca.Peek()
		eb, okb := cb.Peek()
		if oka != okb || ea != eb {
			t.Fatalf("point-event streams diverge: %v/%v vs %v/%v", ea, oka, eb, okb)
		}
		if !oka {
			break
		}
		ca.Pop()
		cb.Pop()
	}
	for i := 0; i < 10_000; i++ {
		if ca.FailFetch() != cb.FailFetch() || ca.FailMigration() != cb.FailMigration() {
			t.Fatalf("failure streams diverge at draw %d", i)
		}
	}
}

// The cursor replays only point events, in At order, regardless of
// builder insertion order.
func TestCursorPointEventOrder(t *testing.T) {
	p := NewPlan(1).
		Restart(0, 4*time.Second).
		Degrade(0, 0, 10*time.Second, 0.5, 0.5).
		Crash(1, 3*time.Second).
		Crash(0, time.Second)
	c := p.Start()
	want := []struct {
		kind    Kind
		replica int
		at      time.Duration
	}{
		{KindCrash, 0, time.Second},
		{KindCrash, 1, 3 * time.Second},
		{KindRestart, 0, 4 * time.Second},
	}
	for _, w := range want {
		ev, ok := c.Peek()
		if !ok || ev.Kind != w.kind || ev.Replica != w.replica || ev.At != w.at {
			t.Fatalf("Peek = %+v/%v, want %+v", ev, ok, w)
		}
		c.Pop()
	}
	if _, ok := c.Peek(); ok {
		t.Fatal("cursor not exhausted after all point events")
	}
}

// Window factors hold over [At, Until), compound when overlapping, and
// are nominal (1, 1, 1) everywhere else.
func TestWindowFactors(t *testing.T) {
	p := NewPlan(0).
		Degrade(0, time.Second, 3*time.Second, 0.5, 0.25).
		Degrade(0, 2*time.Second, 4*time.Second, 0.5, 1).
		Straggle(0, 2*time.Second, 3*time.Second, 2)
	if pc, lk, sl := p.Window(0, 0); pc != 1 || lk != 1 || sl != 1 {
		t.Fatalf("before any window: got %v %v %v, want nominal", pc, lk, sl)
	}
	if pc, lk, sl := p.Window(0, 1500*time.Millisecond); pc != 0.5 || lk != 0.25 || sl != 1 {
		t.Fatalf("single window: got %v %v %v", pc, lk, sl)
	}
	if pc, lk, sl := p.Window(0, 2500*time.Millisecond); pc != 0.25 || lk != 0.25 || sl != 2 {
		t.Fatalf("overlap: got %v %v %v", pc, lk, sl)
	}
	if pc, lk, sl := p.Window(0, 3500*time.Millisecond); pc != 0.5 || lk != 1 || sl != 1 {
		t.Fatalf("tail window: got %v %v %v", pc, lk, sl)
	}
	if pc, lk, sl := p.Window(1, 2500*time.Millisecond); pc != 1 || lk != 1 || sl != 1 {
		t.Fatalf("other replica: got %v %v %v, want nominal", pc, lk, sl)
	}
	// Until is exclusive: the closing instant is already nominal.
	if pc, _, _ := p.Window(0, 4*time.Second); pc != 1 {
		t.Fatalf("at Until: pcie = %v, want 1", pc)
	}
}

// Builder clamps: degrade factors outside (0, 1] mean nominal,
// straggle below 1 means nominal.
func TestFactorClamping(t *testing.T) {
	p := NewPlan(0).
		Degrade(0, 0, time.Second, -3, 7).
		Straggle(0, 0, time.Second, 0.5)
	if pc, lk, sl := p.Window(0, 0); pc != 1 || lk != 1 || sl != 1 {
		t.Fatalf("clamped factors should be nominal, got %v %v %v", pc, lk, sl)
	}
}

// Zero rates never fail; rate 1 always fails.
func TestFailureRates(t *testing.T) {
	p := NewPlan(7)
	c := p.Start()
	for i := 0; i < 1000; i++ {
		if c.FailFetch() || c.FailMigration() {
			t.Fatal("zero-rate plan produced a failure")
		}
	}
	p2 := NewPlan(7)
	p2.FetchFailRate = 1
	c2 := p2.Start()
	for i := 0; i < 1000; i++ {
		if !c2.FailFetch() {
			t.Fatal("rate-1 plan produced a success")
		}
	}
	// A 20% rate lands loosely near 20% over a long stream.
	p3 := NewPlan(7)
	p3.FetchFailRate = 0.2
	c3 := p3.Start()
	fails := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if c3.FailFetch() {
			fails++
		}
	}
	if got := float64(fails) / n; got < 0.18 || got > 0.22 {
		t.Fatalf("fail fraction = %v, want ≈ 0.2", got)
	}
}
