// Package chaos is the fleet's deterministic fault injector: a
// seeded, immutable Plan of timed fault events that the cluster
// replays against a run's simulated clock.
//
// Faults come in two shapes. Point events — replica crash (the GPU
// heap, the host tier and every in-flight request die with the
// process) and restart (the replica returns with a cold tier) — fire
// once, at an instant. Window events — degraded PCIe/peer-link
// bandwidth and slow-replica stragglers — hold over an interval and
// scale the cost model's terms for every step inside it. On top of
// the schedule, a Plan carries per-transfer failure rates for fleet
// peer fetches and migration moves, drawn from a seeded stream.
//
// Everything is deterministic and replayable: a Plan is pure data, a
// Cursor (Plan.Start) holds one run's replay position and its seeded
// failure stream, and two runs of the same plan over the same arrival
// stream make identical decisions at identical instants. The zero
// plan — no events, zero rates — injects nothing, and the layers
// consuming it are bit-identical to a chaos-unaware build (the
// golden-pinned contract).
//
// The package is a leaf: it knows nothing about engines, replicas or
// pages, only instants, factors and draws. The cluster layer owns
// applying the events (internal/cluster's ChaosPolicy).
package chaos

import (
	"fmt"
	"sort"
	"time"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// KindCrash kills a replica at Event.At: tier contents and
	// in-flight KV are lost, the router stops sending traffic.
	KindCrash Kind = iota
	// KindRestart returns a crashed replica to service with a cold
	// tier.
	KindRestart
	// KindDegrade scales the replica's PCIe and peer-link bandwidths
	// by Event.PCIe/Event.Link over [At, Until).
	KindDegrade
	// KindStraggle multiplies the replica's step time by Event.Slow
	// over [At, Until) — the slow-replica straggler.
	KindStraggle
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindDegrade:
		return "degrade"
	case KindStraggle:
		return "straggle"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one timed fault against one replica.
type Event struct {
	Kind    Kind
	Replica int
	// At is the fault instant; Until closes a Degrade/Straggle window
	// (point events ignore it).
	At, Until time.Duration
	// PCIe and Link scale the respective link bandwidths inside a
	// Degrade window (0 < f ≤ 1: 0.25 means a quarter of nominal).
	// Slow multiplies step time inside a Straggle window (≥ 1).
	PCIe, Link, Slow float64
}

// window reports whether the event holds over an interval rather than
// firing at an instant.
func (e Event) window() bool {
	return e.Kind == KindDegrade || e.Kind == KindStraggle
}

// Plan is a seeded, reproducible fault schedule. Build one with
// NewPlan and the chainable event methods, set the transfer failure
// rates directly, then hand it to the cluster; the plan itself is
// immutable during a run (all per-run state lives in a Cursor).
type Plan struct {
	// Seed drives the transfer-failure stream (and nothing else: the
	// event schedule is explicit).
	Seed int64
	// FetchFailRate is the probability that one fleet peer-transfer
	// attempt fails (timeout/link error); MigrateFailRate the same for
	// one migration page move. Both are per-attempt draws from the
	// seeded stream; zero never fails.
	FetchFailRate   float64
	MigrateFailRate float64
	// Events is the schedule, kept sorted by At (stable, so
	// same-instant events apply in insertion order).
	Events []Event
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed int64) *Plan { return &Plan{Seed: seed} }

// Crash schedules a replica crash at the instant.
func (p *Plan) Crash(replica int, at time.Duration) *Plan {
	return p.add(Event{Kind: KindCrash, Replica: replica, At: at})
}

// Restart schedules a crashed replica's cold restart at the instant.
func (p *Plan) Restart(replica int, at time.Duration) *Plan {
	return p.add(Event{Kind: KindRestart, Replica: replica, At: at})
}

// Degrade schedules a degraded-bandwidth window on the replica: PCIe
// and peer-link bandwidth scale by pcie and link (clamped to (0, 1];
// pass 1 to leave a link nominal).
func (p *Plan) Degrade(replica int, at, until time.Duration, pcie, link float64) *Plan {
	return p.add(Event{Kind: KindDegrade, Replica: replica, At: at, Until: until,
		PCIe: clampFactor(pcie), Link: clampFactor(link)})
}

// Straggle schedules a slow-replica window: every step on the replica
// takes slow× its nominal time (clamped to ≥ 1).
func (p *Plan) Straggle(replica int, at, until time.Duration, slow float64) *Plan {
	if slow < 1 {
		slow = 1
	}
	return p.add(Event{Kind: KindStraggle, Replica: replica, At: at, Until: until, Slow: slow})
}

// add inserts the event keeping Events sorted by At, stable on ties.
func (p *Plan) add(ev Event) *Plan {
	i := sort.Search(len(p.Events), func(i int) bool { return p.Events[i].At > ev.At })
	p.Events = append(p.Events, Event{})
	copy(p.Events[i+1:], p.Events[i:])
	p.Events[i] = ev
	return p
}

// clampFactor forces a bandwidth factor into (0, 1]; zero or negative
// means "not degraded" and maps to 1.
func clampFactor(f float64) float64 {
	if f <= 0 || f > 1 {
		return 1
	}
	return f
}

// Window returns the combined degrade/straggle factors active on the
// replica at the instant: pcie and link multiply the respective
// bandwidths (≤ 1), slow multiplies step time (≥ 1). Overlapping
// windows compound. Nominal is (1, 1, 1).
func (p *Plan) Window(replica int, at time.Duration) (pcie, link, slow float64) {
	pcie, link, slow = 1, 1, 1
	for i := range p.Events {
		ev := &p.Events[i]
		if !ev.window() || ev.Replica != replica || at < ev.At || at >= ev.Until {
			continue
		}
		switch ev.Kind {
		case KindDegrade:
			pcie *= ev.PCIe
			link *= ev.Link
		case KindStraggle:
			slow *= ev.Slow
		}
	}
	return pcie, link, slow
}

// Fingerprint hashes the complete schedule — seed, rates and every
// event — so determinism tests can assert two plans are the same plan
// and reports can identify the schedule they ran.
func (p *Plan) Fingerprint() uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(p.Seed))
	mix(uint64(p.FetchFailRate * float64(1<<32)))
	mix(uint64(p.MigrateFailRate * float64(1<<32)))
	for i := range p.Events {
		ev := &p.Events[i]
		mix(uint64(ev.Kind))
		mix(uint64(ev.Replica))
		mix(uint64(ev.At))
		mix(uint64(ev.Until))
		mix(uint64(ev.PCIe * float64(1<<32)))
		mix(uint64(ev.Link * float64(1<<32)))
		mix(uint64(ev.Slow * float64(1<<32)))
	}
	return h
}

// Cursor is one run's mutable view of a plan: the replay position
// over the point events (crash/restart) and the seeded
// transfer-failure stream. Window events need no cursor — they are
// pure functions of the clock (Plan.Window).
//
// A Cursor is not safe for concurrent use; the cluster only consults
// it from its serial arrival loop.
type Cursor struct {
	plan *Plan
	next int    // index into plan.Events of the next candidate
	rng  uint64 // splitmix64 state for the failure stream
}

// Start returns a fresh cursor positioned before the first event,
// with the failure stream reset to the seed.
func (p *Plan) Start() *Cursor {
	c := &Cursor{plan: p, rng: uint64(p.Seed)}
	c.skipWindows()
	return c
}

// skipWindows advances next past window events, which the cursor
// never replays.
func (c *Cursor) skipWindows() {
	for c.next < len(c.plan.Events) && c.plan.Events[c.next].window() {
		c.next++
	}
}

// Peek returns the next unapplied point event without consuming it.
func (c *Cursor) Peek() (Event, bool) {
	if c.next >= len(c.plan.Events) {
		return Event{}, false
	}
	return c.plan.Events[c.next], true
}

// Pop consumes the event Peek returned.
func (c *Cursor) Pop() {
	if c.next < len(c.plan.Events) {
		c.next++
		c.skipWindows()
	}
}

// FailFetch draws once from the seeded stream against FetchFailRate:
// true means this peer-transfer attempt fails.
func (c *Cursor) FailFetch() bool {
	return c.draw() < c.plan.FetchFailRate
}

// FailMigration draws once against MigrateFailRate: true means this
// migration transfer times out.
func (c *Cursor) FailMigration() bool {
	return c.draw() < c.plan.MigrateFailRate
}

// FailTransfer adapts FailFetch onto the fleet store's fault hook
// (fleet.TransferFaults, satisfied structurally).
func (c *Cursor) FailTransfer(src, dst int) bool { return c.FailFetch() }

// draw returns the next uniform [0, 1) variate of the failure stream
// (splitmix64 — tiny, seedable, and stable across platforms).
func (c *Cursor) draw() float64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
