package sched_test

// The scheduler-equivalence matrix: every built-in policy drives the
// real engine on seeded workloads and must be (a) deterministic —
// two runs from fresh engines produce identical results to the
// nanosecond, (b) starvation-free — a finite 2× overload drains
// completely, every request finishes, and (c) true to its contract —
// FairShare bounds the worst tenant's wait and beats FCFS's fairness
// on a skewed stream, Priority preempts lower classes at admission,
// SJF finishes short work first.

import (
	"sort"
	"testing"
	"time"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/metrics"
	"jenga/internal/model"
	"jenga/internal/sched"
	"jenga/internal/workload"
)

func simSpec() *model.Spec {
	return &model.Spec{
		Name: "sched-sim", Params: 100_000_000, WeightBytes: 2, HiddenSize: 256,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 1, BytesPerToken: 256},
			{Name: "window", Kind: model.SlidingWindow, Layers: 3, BytesPerToken: 256, Window: 64},
		},
	}
}

func simDevice() gpu.Device {
	return gpu.Device{Name: "sim-gpu", MemBytes: 1 << 30, FLOPS: 50e12, MemBW: 500e9,
		StepOverhead: time.Millisecond}
}

func simEngine(t *testing.T, capacity int64, s sched.Scheduler) *engine.Engine {
	t.Helper()
	mgr, err := core.New(core.Config{
		Spec: simSpec(), CapacityBytes: capacity, TokensPerPage: 8,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Spec: simSpec(), Device: simDevice(), Manager: mgr,
		MaxBatchTokens: 512, MaxPrefills: 2, Scheduler: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// builtins enumerates the policy matrix.
func builtins() []sched.Scheduler {
	return []sched.Scheduler{
		sched.NewFCFS(), sched.NewPriority(), sched.NewSJF(), sched.NewFairShare(nil),
	}
}

// matrixWorkload is the seeded mixed stream every matrix entry runs:
// six prefix groups, two priority classes, deadlines, Poisson
// arrivals at roughly 2× the service rate the capacity sustains.
func matrixWorkload(seed int64, n int, rate float64) []workload.Request {
	g := workload.NewGen(seed)
	reqs := g.PrefixGroups(6, (n+5)/6, 400, 100)
	g.PoissonArrivals(reqs, rate)
	for i := range reqs {
		reqs[i].Priority = i % 2
	}
	workload.SetDeadlines(reqs, 2*time.Second)
	return reqs
}

// TestSchedulerDeterminism: two fresh engines under the same policy
// and seed must agree on every metric, durations to the nanosecond.
func TestSchedulerDeterminism(t *testing.T) {
	for _, s := range builtins() {
		var results []*engine.Result
		for run := 0; run < 2; run++ {
			e := simEngine(t, 4<<20, s)
			res, err := e.Run(matrixWorkload(42, 72, 150))
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			results = append(results, res)
		}
		a, b := results[0], results[1]
		if a.Steps != b.Steps || a.Duration != b.Duration || a.Finished != b.Finished ||
			a.Preemptions != b.Preemptions || a.MeanTTFT != b.MeanTTFT || a.MeanE2E != b.MeanE2E ||
			a.CachedPromptTokens != b.CachedPromptTokens || a.GeneratedTokens != b.GeneratedTokens ||
			a.MeanKVUtil != b.MeanKVUtil {
			t.Errorf("%s: two seeded runs diverged:\n  %+v\n  %+v", s.Name(), a, b)
		}
	}
}

// TestNoStarvationUnderOverload: a finite burst at ~2× sustainable
// rate must drain completely under every policy — nothing starves,
// nothing fails, nothing livelocks.
func TestNoStarvationUnderOverload(t *testing.T) {
	const n = 96
	for _, s := range builtins() {
		e := simEngine(t, 2<<20, s)
		res, err := e.Run(matrixWorkload(7, n, 400))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Finished != n || res.Failed != 0 {
			t.Errorf("%s: finished %d failed %d of %d under overload", s.Name(), res.Finished, res.Failed, n)
		}
	}
}

// skewedWorkload is two equal tenants with tenant A's burst queued
// entirely ahead of tenant B's: under FCFS the whole of B waits
// behind the whole of A, while a fair scheduler interleaves the two
// backlogs — the head-of-line unfairness fair sharing exists to fix.
func skewedWorkload(seed int64) []workload.Request {
	g := workload.NewGen(seed)
	all := g.PrefixGroups(2, 24, 400, 100)
	workload.AllAtOnce(all)
	byGroup := workload.SplitByGroup(all)
	labels := make([]int64, 0, len(byGroup))
	for grp := range byGroup {
		labels = append(labels, grp)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	var out []workload.Request
	for _, grp := range labels {
		out = append(out, byGroup[grp]...)
	}
	return out
}

// groupMeanTTFT folds per-request metrics into per-group mean TTFTs.
func groupMeanTTFT(res *engine.Result) map[int64]time.Duration {
	sum := map[int64]time.Duration{}
	n := map[int64]int{}
	for _, rm := range res.PerRequest {
		sum[rm.Group] += rm.TTFT
		n[rm.Group]++
	}
	out := map[int64]time.Duration{}
	for g := range sum {
		out[g] = sum[g] / time.Duration(n[g])
	}
	return out
}

// TestFairShareBoundsGroupWait: tenant B's backlog is queued entirely
// behind tenant A's, and the combined backlog is far beyond what the
// replica serves concurrently — sustained overload. A scheduler
// cannot lower the total wait (that is conserved), only distribute
// it: FCFS gives A a tiny wait and B the whole backlog's, FairShare
// must serve the two backlogs alongside each other. The starvation
// bound is relative: the worst tenant's mean TTFT must stay within
// 25% of the fleet's mean (FCFS fails this by construction), and
// wait-fairness (Jain's index over per-group mean TTFT) must beat
// FCFS's and clear an absolute 0.9 bound.
func TestFairShareBoundsGroupWait(t *testing.T) {
	run := func(s sched.Scheduler) *engine.Result {
		e := simEngine(t, 2<<20, s)
		res, err := e.Run(skewedWorkload(11))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Finished != 48 {
			t.Fatalf("%s: finished %d of 48", s.Name(), res.Finished)
		}
		return res
	}
	// worstRatio is max group mean TTFT over the mean of group means;
	// jain is Jain's index over the group means.
	stats := func(res *engine.Result) (worstRatio, jain float64) {
		means := groupMeanTTFT(res)
		var worst, sum float64
		var xs []float64
		for _, m := range means {
			if m.Seconds() > worst {
				worst = m.Seconds()
			}
			sum += m.Seconds()
			xs = append(xs, m.Seconds())
		}
		return worst / (sum / float64(len(means))), metrics.Jain(xs)
	}
	fcfsRatio, fcfsJain := stats(run(sched.NewFCFS()))
	fairRatio, fairJain := stats(run(sched.NewFairShare(nil)))
	if fairRatio > 1.25 {
		t.Errorf("fairshare worst tenant waits %.2f× the fleet mean, want ≤ 1.25×", fairRatio)
	}
	if fairRatio >= fcfsRatio {
		t.Errorf("fairshare worst-wait ratio %.2f not below fcfs %.2f", fairRatio, fcfsRatio)
	}
	if fairJain <= fcfsJain {
		t.Errorf("fairshare wait-fairness %.3f not above fcfs %.3f", fairJain, fcfsJain)
	}
	if fairJain < 0.9 {
		t.Errorf("fairshare wait-fairness %.3f below the 0.9 bound", fairJain)
	}
}

// TestPriorityAdmissionPreempts: a high-priority burst landing on a
// memory-full engine serving low-priority decodes must preempt its
// way in — low-priority requests are recomputed (not dropped: all
// finish) and the burst's TTFT stays far below the low class's.
func TestPriorityAdmissionPreempts(t *testing.T) {
	g := workload.NewGen(3)
	low := g.PrefixGroups(2, 8, 500, 400)
	workload.AllAtOnce(low)
	burst := g.PrefixGroups(1, 4, 500, 20)
	for i := range burst {
		burst[i].Priority = 5
		burst[i].Arrival = 60 * time.Millisecond
	}
	reqs := workload.Merge(low, burst)

	run := func(s sched.Scheduler) *engine.Result {
		e := simEngine(t, 1<<20, s)
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return res
	}
	classTTFT := func(res *engine.Result) (hi, lo time.Duration) {
		var nHi, nLo int
		for _, rm := range res.PerRequest {
			if rm.Priority > 0 {
				hi += rm.TTFT
				nHi++
			} else {
				lo += rm.TTFT
				nLo++
			}
		}
		return hi / time.Duration(nHi), lo / time.Duration(nLo)
	}

	prio := run(sched.NewPriority())
	if prio.Finished != len(reqs) {
		t.Fatalf("priority: finished %d of %d — a class starved", prio.Finished, len(reqs))
	}
	if prio.Preemptions == 0 {
		t.Error("priority: the high-priority burst did not preempt on a full engine")
	}
	prioHi, prioLo := classTTFT(prio)
	if prioHi >= prioLo {
		t.Errorf("priority: high-class mean TTFT %v not below low-class %v", prioHi, prioLo)
	}
	// Against FCFS the burst must start strictly sooner.
	fcfsHi, _ := classTTFT(run(sched.NewFCFS()))
	if prioHi >= fcfsHi {
		t.Errorf("priority high-class TTFT %v not below fcfs %v", prioHi, fcfsHi)
	}
}

// TestSJFFavorsShortWork: with one long request ahead of many short
// ones in an all-at-once batch, SJF's mean TTFT over the short
// requests must not exceed FCFS's — shortest-remaining-first is the
// whole point.
func TestSJFFavorsShortWork(t *testing.T) {
	g := workload.NewGen(5)
	long := g.PrefixGroups(1, 2, 1500, 100)
	short := g.PrefixGroups(1, 12, 64, 16)
	reqs := workload.Merge(long, short)
	workload.AllAtOnce(reqs)

	meanShortTTFT := func(s sched.Scheduler) time.Duration {
		e := simEngine(t, 2<<20, s)
		res, err := e.Run(reqs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var sum time.Duration
		var n int
		for _, rm := range res.PerRequest {
			if rm.Tokens < 500 {
				sum += rm.TTFT
				n++
			}
		}
		if n == 0 {
			t.Fatalf("%s: no short requests finished", s.Name())
		}
		return sum / time.Duration(n)
	}
	if sjf, fcfs := meanShortTTFT(sched.NewSJF()), meanShortTTFT(sched.NewFCFS()); sjf > fcfs {
		t.Errorf("sjf short-request mean TTFT %v above fcfs %v", sjf, fcfs)
	}
}

// TestQueuePosReachesAdmission: the scheduler's rank is surfaced to
// admission policies as AdmissionState.QueuePos — under a priority
// scheduler a high-priority arrival ranks ahead of the low-priority
// backlog even though the nominal queue is deep.
func TestQueuePosReachesAdmission(t *testing.T) {
	type obs struct {
		prio int
		pos  int
		deep int
	}
	var seen []obs
	capture := admissionFunc(func(req *workload.Request, s engine.AdmissionState) engine.AdmissionDecision {
		seen = append(seen, obs{prio: req.Priority, pos: s.QueuePos, deep: s.Queued})
		return engine.Admit
	})
	mgr, err := core.New(core.Config{
		Spec: simSpec(), CapacityBytes: 1 << 20, TokensPerPage: 8,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Spec: simSpec(), Device: simDevice(), Manager: mgr,
		MaxBatchTokens: 256, MaxPrefills: 1, MaxRunning: 2,
		Scheduler: sched.NewPriority(), Admission: capture,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGen(9)
	reqs := g.PrefixGroups(1, 12, 600, 50)
	workload.AllAtOnce(reqs)
	hi := g.PrefixGroups(1, 1, 600, 50)
	hi[0].Priority = 5
	hi[0].Arrival = 200 * time.Millisecond
	if _, err := e.Run(workload.Merge(reqs, hi)); err != nil {
		t.Fatal(err)
	}
	var hiObs *obs
	for i := range seen {
		if seen[i].prio == 5 {
			hiObs = &seen[i]
		}
	}
	if hiObs == nil {
		t.Fatal("admission never saw the high-priority arrival")
	}
	if hiObs.deep == 0 {
		t.Fatal("test needs a backlog at the high-priority arrival instant")
	}
	if hiObs.pos != 0 {
		t.Errorf("high-priority QueuePos = %d over a %d-deep backlog, want 0", hiObs.pos, hiObs.deep)
	}
}

// admissionFunc adapts a function to engine.AdmissionPolicy.
type admissionFunc func(*workload.Request, engine.AdmissionState) engine.AdmissionDecision

func (admissionFunc) Name() string { return "capture" }
func (f admissionFunc) Decide(r *workload.Request, s engine.AdmissionState) engine.AdmissionDecision {
	return f(r, s)
}
