// Package sched is the engine's pluggable scheduling layer: the
// policy decisions — which waiting request to admit next, which
// running request to evict when memory runs out, and how a step's
// token budget splits between prefill and decode — carved out of the
// engine behind a small deterministic Scheduler interface.
//
// The engine populates a read-only View (waiting queue, running set,
// live memory usage, clock) before every decision and delegates to the
// configured Scheduler; it never encodes a priority or arrival-order
// comparison itself. The FCFS built-in reproduces the engine's
// historical behavior bit-for-bit (the golden regression tests pin
// this); Priority, SJF and FairShare open scheduling scenarios a
// single baked-in policy cannot: strict-priority serving with
// admission-time preemption, shortest-remaining-first latency shaping,
// and weighted fair sharing across tenant prefix groups.
//
// Determinism contract: a Scheduler must be a pure function of the
// View (no hidden mutable state, no randomness, no wall-clock reads).
// The engine is deterministic for a seeded workload; a stateful or
// randomized policy forfeits that guarantee and with it the golden
// tests, replayable traces and cross-run comparisons. All built-ins
// are stateless values and safe to share across engines.
package sched

import (
	"time"

	"jenga/internal/core"
)

// Phase mirrors the engine's request phase in the scheduler's view.
type Phase int

const (
	// PhasePrefill: the request still has prompt (or recompute) tokens
	// to commit.
	PhasePrefill Phase = iota
	// PhaseDecode: the request produces one output token per step.
	PhaseDecode
)

// ReqInfo is the scheduler-visible summary of one request. The engine
// fills it from the request and its runtime state; policies decide on
// it without seeing engine internals.
type ReqInfo struct {
	// ID is the request's unique ID.
	ID int64
	// Priority is the request's scheduling class (higher = more
	// urgent; the workload default is 0 everywhere).
	Priority int
	// Arrival is the request's simulated arrival instant.
	Arrival time.Duration
	// Deadline is the request's end-to-end budget (0 = none).
	Deadline time.Duration
	// Group is the request's prefix-sharing / tenant label (0 =
	// unlabeled; FairShare treats all unlabeled requests as one group).
	Group int64
	// PromptLen and OutputLen are the request's token dimensions.
	PromptLen int
	OutputLen int
	// Remaining is the work still to serve: uncommitted prompt tokens
	// (the full prompt again after a preemption) plus remaining output.
	Remaining int
	// Phase is the request's current phase (running entries only).
	Phase Phase
	// ScheduledNow marks a running entry whose commit is in flight this
	// step; it is immune to preemption and VictimFor must not pick it.
	ScheduledNow bool
	// Waiting is true for waiting-queue entries and admission
	// candidates, false for running entries.
	Waiting bool
}

// View is the read-only scheduler input the engine populates before
// each decision: the live queues plus aggregate memory accounting.
// Slices are reused across steps — policies must not retain them.
type View struct {
	// Clock and Step are the simulation position.
	Clock time.Duration
	Step  int
	// Waiting is the admission queue in queue order (preempted
	// requests re-enter at the front).
	Waiting []ReqInfo
	// Running is the scheduled set in running order.
	Running []ReqInfo
	// Usage is the manager's aggregate memory accounting (PerGroup is
	// nil — scheduling decisions must not cost a map per call).
	Usage core.Usage
	// Capacity is the manager's total KV bytes.
	Capacity int64
}

// Split is a step's token-budget split between the decode and prefill
// paths. The engine clamps both to the step's total budget; Decode
// caps phase-1 decode tokens, Prefill caps phase-2/3 prefill chunks
// and admissions. Returning {total, total} (DefaultSplit) means the
// shared-budget, decode-first behavior the engine always had.
type Split struct {
	Decode  int
	Prefill int
}

// DefaultSplit is the historical shared budget: decode first, prefill
// takes the remainder.
func DefaultSplit(total int) Split { return Split{Decode: total, Prefill: total} }

// Scheduler is the pluggable scheduling policy. All methods must be
// deterministic pure functions of their inputs (see the package
// determinism contract). Index results refer to the View slices; the
// engine validates them and treats out-of-range or ineligible picks
// as "none".
type Scheduler interface {
	// Name identifies the policy in flags, results and reports.
	Name() string
	// PickWaiting returns the index in v.Waiting of the next admission
	// candidate. Called only with a non-empty waiting queue.
	PickWaiting(v *View) int
	// VictimFor returns the index in v.Running of the request to
	// recompute-preempt so that requester can obtain memory, or -1 to
	// preempt nothing. The requester is either a running decode
	// needing one more page (Waiting false) or a blocked admission
	// candidate (Waiting true) — a policy that returns -1 for waiting
	// requesters never preempts at admission, the historical behavior.
	// Entries with ScheduledNow or the requester itself are not
	// eligible.
	VictimFor(requester ReqInfo, v *View) int
	// PrefillBudget splits the step's token budget between decode and
	// prefill work (chunked-prefill interaction, §6 of the paper).
	PrefillBudget(v *View, total int) Split
	// RankWaiting returns how many waiting requests the policy would
	// schedule ahead of cand — the queue position an arriving request
	// would take, surfaced to admission policies as
	// AdmissionState.QueuePos.
	RankWaiting(cand ReqInfo, v *View) int
}

// AdmissionPreempter is an optional Scheduler capability: it reports
// whether VictimFor can ever return a victim for a *waiting*
// requester (admission-time preemption). The engine consults it to
// skip the blocked-admission phase entirely for policies that never
// preempt there; a scheduler that does not implement it is assumed to
// preempt (the safe default for custom policies). All built-ins
// implement it.
type AdmissionPreempter interface {
	AdmissionPreempts() bool
}

// CanAdmissionPreempt reports whether s may preempt for a blocked
// admission candidate: its AdmissionPreempter answer when implemented,
// true otherwise.
func CanAdmissionPreempt(s Scheduler) bool {
	if p, ok := s.(AdmissionPreempter); ok {
		return p.AdmissionPreempts()
	}
	return true
}

// Compare is the one shared priority/arrival comparator every policy
// and both engine decision sites (admission pick and preemption
// victim) derive their ordering from: higher Priority schedules
// first, earlier Arrival breaks ties within a level. It returns -1
// when a schedules before b, +1 when b schedules before a, and 0 on a
// full tie (equal priority and arrival — callers keep their first
// candidate, so queue order decides). Victim selection is the same
// comparator reversed: the last request in schedule order is evicted
// first.
func Compare(a, b ReqInfo) int {
	if a.Priority != b.Priority {
		if a.Priority > b.Priority {
			return -1
		}
		return 1
	}
	return compareArrival(a, b)
}

// compareArrival orders by arrival alone (the priority-blind FCFS
// core): earlier first, 0 on equal arrivals.
func compareArrival(a, b ReqInfo) int {
	if a.Arrival != b.Arrival {
		if a.Arrival < b.Arrival {
			return -1
		}
		return 1
	}
	return 0
}

// pickMin returns the first index of entries minimizing cmp (the next
// request in schedule order); -1 when entries is empty.
func pickMin(entries []ReqInfo, cmp func(a, b ReqInfo) int) int {
	if len(entries) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(entries); i++ {
		if cmp(entries[i], entries[best]) < 0 {
			best = i
		}
	}
	return best
}

// victimMax returns the first eligible index of running maximizing cmp
// (the last request in schedule order — the eviction choice), skipping
// the requester and entries whose commits are in flight; -1 when no
// entry is eligible. eligible may further restrict candidates (nil
// admits all).
func victimMax(requester ReqInfo, running []ReqInfo, cmp func(a, b ReqInfo) int, eligible func(ReqInfo) bool) int {
	best := -1
	for i := range running {
		c := &running[i]
		if c.ScheduledNow || c.ID == requester.ID {
			continue
		}
		if eligible != nil && !eligible(*c) {
			continue
		}
		if best < 0 || cmp(*c, running[best]) > 0 {
			best = i
		}
	}
	return best
}

// rankBy counts the waiting entries ordered at-or-ahead of cand under
// cmp (ties count as ahead: an equal entry already in the queue keeps
// its place).
func rankBy(cand ReqInfo, waiting []ReqInfo, cmp func(a, b ReqInfo) int) int {
	n := 0
	for i := range waiting {
		if cmp(waiting[i], cand) <= 0 {
			n++
		}
	}
	return n
}

// hasPrefillWork reports whether any waiting request or running
// prefill-phase request exists — the condition under which reserving
// prefill budget changes anything.
func hasPrefillWork(v *View) bool {
	if len(v.Waiting) > 0 {
		return true
	}
	for i := range v.Running {
		if v.Running[i].Phase == PhasePrefill {
			return true
		}
	}
	return false
}
