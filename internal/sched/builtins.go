package sched

import (
	"fmt"
	"strconv"
	"strings"
)

// Built-in schedulers. FCFS is the engine default and reproduces the
// historical hard-coded behavior exactly; Priority, SJF and FairShare
// are drop-in alternatives. ParseScheduler converts flag spellings
// ("fcfs", "priority", "sjf", "fairshare", optionally ":<frac>" for a
// prefill reserve, e.g. "sjf:0.25").

// fcfs is first-come-first-served: pure arrival order, priorities
// ignored. Admission picks the earliest-arrived waiting request (the
// queue front), eviction recomputes the latest-arrived running
// request, admission never preempts, and the step budget is shared
// decode-first — bit-identical to the engine before the scheduling
// layer was extracted, as the golden regression tests pin.
type fcfs struct{}

// NewFCFS returns the first-come-first-served scheduler (the engine
// default).
func NewFCFS() Scheduler { return fcfs{} }

func (fcfs) Name() string { return "fcfs" }

func (fcfs) PickWaiting(v *View) int { return pickMin(v.Waiting, compareArrival) }

func (fcfs) VictimFor(requester ReqInfo, v *View) int {
	if requester.Waiting {
		return -1 // admission never preempts under FCFS
	}
	return victimMax(requester, v.Running, compareArrival, nil)
}

func (fcfs) PrefillBudget(_ *View, total int) Split { return DefaultSplit(total) }

func (fcfs) AdmissionPreempts() bool { return false }

func (fcfs) RankWaiting(cand ReqInfo, v *View) int { return rankBy(cand, v.Waiting, compareArrival) }

// priority is strict priority with arrival tiebreak — the shared
// Compare order. It subsumes the engine's old inline priority logic
// (highest-priority pick, lowest-priority latest-arrival victim) and
// extends it with admission-time preemption: a blocked admission
// candidate may recompute-preempt a running request of strictly lower
// priority, so a high-priority burst starts immediately instead of
// queueing behind low-priority decodes. Recompute preserves the
// victim's work in the prefix cache, and the victim re-enters the
// waiting queue rather than being dropped — lower classes are delayed,
// never starved.
type priority struct{}

// NewPriority returns the strict-priority scheduler.
func NewPriority() Scheduler { return priority{} }

func (priority) Name() string { return "priority" }

func (priority) PickWaiting(v *View) int { return pickMin(v.Waiting, Compare) }

func (priority) VictimFor(requester ReqInfo, v *View) int {
	if requester.Waiting {
		// Admission-time preemption: strictly lower classes only.
		return victimMax(requester, v.Running, Compare, func(c ReqInfo) bool {
			return c.Priority < requester.Priority
		})
	}
	// Decode-path preemption keeps the historical rule: the last
	// request in schedule order loses its memory, whatever its class.
	return victimMax(requester, v.Running, Compare, nil)
}

func (priority) PrefillBudget(_ *View, total int) Split { return DefaultSplit(total) }

func (priority) AdmissionPreempts() bool { return true }

func (priority) RankWaiting(cand ReqInfo, v *View) int { return rankBy(cand, v.Waiting, Compare) }

// sjf is shortest-remaining-work-first with a deadline-aware
// tiebreak: the waiting request with the fewest tokens left to serve
// (prompt plus output) is admitted first, so short interactive
// requests are not head-of-line blocked by long ones; equal work is
// broken by earlier deadline (requests without deadlines sort last),
// then by the shared priority/arrival order. Eviction is the reverse:
// the longest-remaining running request is recomputed first, the
// cheapest work to redo per byte freed.
type sjf struct{}

// NewSJF returns the shortest-remaining-first scheduler.
func NewSJF() Scheduler { return sjf{} }

func (sjf) Name() string { return "sjf" }

// compareSJF orders by remaining work, then deadline urgency —
// Deadline is a budget relative to Arrival, so urgency compares the
// absolute instants Arrival+Deadline (a request with a tight budget
// that arrived late can be less urgent than one with a loose budget
// that arrived long ago) — then the shared comparator.
func compareSJF(a, b ReqInfo) int {
	if a.Remaining != b.Remaining {
		if a.Remaining < b.Remaining {
			return -1
		}
		return 1
	}
	switch {
	case a.Deadline == 0 && b.Deadline != 0:
		return 1 // no deadline sorts after any deadline
	case a.Deadline != 0 && b.Deadline == 0:
		return -1
	case a.Deadline != 0 && b.Deadline != 0:
		if da, db := a.Arrival+a.Deadline, b.Arrival+b.Deadline; da != db {
			if da < db {
				return -1
			}
			return 1
		}
	}
	return Compare(a, b)
}

func (sjf) PickWaiting(v *View) int { return pickMin(v.Waiting, compareSJF) }

func (sjf) VictimFor(requester ReqInfo, v *View) int {
	if requester.Waiting {
		return -1
	}
	return victimMax(requester, v.Running, compareSJF, nil)
}

func (sjf) PrefillBudget(_ *View, total int) Split { return DefaultSplit(total) }

func (sjf) AdmissionPreempts() bool { return false }

func (sjf) RankWaiting(cand ReqInfo, v *View) int { return rankBy(cand, v.Waiting, compareSJF) }

// fairShare serves tenants (workload.Request.Group labels) by
// weighted max-min share of live KV-backed work: the next admission
// goes to the waiting request whose group currently has the least
// weighted in-flight token footprint (running prompt plus output
// tokens, divided by the group's weight), so one tenant's burst
// cannot occupy every slot while another tenant waits — a flood
// raises its own group's share and loses every subsequent pick to the
// underserved group. Within a group, the shared priority/arrival
// order applies. Eviction reverses the rule: memory pressure
// recomputes the latest request of the most-served group first.
type fairShare struct {
	weights map[int64]float64
}

// NewFairShare returns the weighted fair-share scheduler. weights maps
// a Group label to its relative share (a group with weight 2 may hold
// twice the in-flight work of a weight-1 group before losing picks);
// absent or non-positive entries default to 1. A nil map gives every
// group equal weight. Group 0 (unlabeled requests) is one shared
// group.
func NewFairShare(weights map[int64]float64) Scheduler {
	w := make(map[int64]float64, len(weights))
	for g, x := range weights {
		if x > 0 {
			w[g] = x
		}
	}
	return fairShare{weights: w}
}

func (f fairShare) Name() string { return "fairshare" }

func (f fairShare) weight(group int64) float64 {
	if w, ok := f.weights[group]; ok {
		return w
	}
	return 1
}

// shares folds the running set into each group's weighted in-flight
// token footprint in one pass, so pick and victim decisions cost
// O(running + waiting) instead of rescanning Running per comparison.
func (f fairShare) shares(v *View) map[int64]float64 {
	m := make(map[int64]float64, 8)
	for i := range v.Running {
		m[v.Running[i].Group] += float64(v.Running[i].PromptLen + v.Running[i].OutputLen)
	}
	//jenga:order-ok each group's cell is divided exactly once; weight() is a pure read of f.weights
	for g := range m {
		m[g] /= f.weight(g)
	}
	return m
}

func (f fairShare) PickWaiting(v *View) int {
	sh := f.shares(v)
	best := 0
	bestShare := sh[v.Waiting[0].Group]
	for i := 1; i < len(v.Waiting); i++ {
		s := sh[v.Waiting[i].Group]
		if s < bestShare || (s == bestShare && Compare(v.Waiting[i], v.Waiting[best]) < 0) {
			best, bestShare = i, s
		}
	}
	return best
}

func (f fairShare) VictimFor(requester ReqInfo, v *View) int {
	if requester.Waiting {
		return -1
	}
	// Evict from the most-served group; the shared reverse order picks
	// within it.
	sh := f.shares(v)
	return victimMax(requester, v.Running, func(a, b ReqInfo) int {
		sa, sb := sh[a.Group], sh[b.Group]
		if sa != sb {
			if sa < sb {
				return -1 // a's group is under-served: a evicts later
			}
			return 1
		}
		return Compare(a, b)
	}, nil)
}

func (f fairShare) PrefillBudget(_ *View, total int) Split { return DefaultSplit(total) }

func (f fairShare) AdmissionPreempts() bool { return false }

func (f fairShare) RankWaiting(cand ReqInfo, v *View) int {
	sh := f.shares(v)
	candShare := sh[cand.Group]
	n := 0
	for i := range v.Waiting {
		s := sh[v.Waiting[i].Group]
		if s < candShare || (s == candShare && Compare(v.Waiting[i], cand) <= 0) {
			n++
		}
	}
	return n
}

// withReserve wraps a scheduler with a prefill budget reserve: when
// prefill work exists, a fraction of the step budget is withheld from
// decode so waiting prompts always make progress — the
// chunked-prefill TTFT-versus-TPOT knob. With no prefill work, decode
// keeps the whole budget.
type withReserve struct {
	Scheduler
	frac float64
}

// WithPrefillReserve wraps s so PrefillBudget withholds frac of the
// step token budget from decode whenever prefill work (a waiting
// request or a running prefill) exists. frac is clamped to [0, 1);
// 0 returns s unchanged.
func WithPrefillReserve(s Scheduler, frac float64) Scheduler {
	if frac <= 0 {
		return s
	}
	if frac >= 1 {
		frac = 0.99
	}
	return withReserve{Scheduler: s, frac: frac}
}

func (w withReserve) Name() string { return fmt.Sprintf("%s:%g", w.Scheduler.Name(), w.frac) }

// AdmissionPreempts forwards the wrapped scheduler's capability (an
// embedded interface does not promote optional methods).
func (w withReserve) AdmissionPreempts() bool { return CanAdmissionPreempt(w.Scheduler) }

func (w withReserve) PrefillBudget(v *View, total int) Split {
	if !hasPrefillWork(v) {
		return DefaultSplit(total)
	}
	decode := total - int(w.frac*float64(total))
	if decode < 0 {
		decode = 0
	}
	return Split{Decode: decode, Prefill: total}
}

// ParseScheduler converts a flag spelling into a scheduler: "fcfs"
// (also "" — the default), "priority", "sjf" or "fairshare", each with
// an optional ":<frac>" prefill-reserve suffix ("sjf:0.25" reserves a
// quarter of each step's budget for prefill work).
func ParseScheduler(s string) (Scheduler, error) {
	name, reserveStr, hasReserve := strings.Cut(strings.TrimSpace(s), ":")
	var out Scheduler
	switch strings.ToLower(name) {
	case "", "fcfs":
		out = NewFCFS()
	case "priority":
		out = NewPriority()
	case "sjf":
		out = NewSJF()
	case "fairshare":
		out = NewFairShare(nil)
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (want fcfs, priority, sjf or fairshare)", name)
	}
	if hasReserve {
		frac, err := strconv.ParseFloat(reserveStr, 64)
		if err != nil || frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("sched: bad prefill reserve %q in %q (want a fraction in [0, 1))", reserveStr, s)
		}
		out = WithPrefillReserve(out, frac)
	}
	return out, nil
}
