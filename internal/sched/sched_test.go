package sched

import (
	"testing"
	"time"
)

// TestCompare is the table-driven contract of the one shared
// priority/arrival comparator both engine decision sites (admission
// pick and preemption victim) derive from — including the
// equal-priority and equal-arrival ties that used to be encoded twice
// with opposite orderings inside the engine.
func TestCompare(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name string
		a, b ReqInfo
		want int
	}{
		{"higher priority first", ReqInfo{Priority: 5, Arrival: ms(9)}, ReqInfo{Priority: 0, Arrival: ms(1)}, -1},
		{"lower priority last", ReqInfo{Priority: -1, Arrival: ms(1)}, ReqInfo{Priority: 0, Arrival: ms(9)}, 1},
		{"equal priority: earlier arrival first", ReqInfo{Priority: 2, Arrival: ms(1)}, ReqInfo{Priority: 2, Arrival: ms(2)}, -1},
		{"equal priority: later arrival last", ReqInfo{Priority: 2, Arrival: ms(3)}, ReqInfo{Priority: 2, Arrival: ms(2)}, 1},
		{"equal priority equal arrival: full tie", ReqInfo{Priority: 2, Arrival: ms(2)}, ReqInfo{Priority: 2, Arrival: ms(2)}, 0},
		{"zero values: full tie", ReqInfo{}, ReqInfo{}, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("%s: Compare = %d, want %d", c.name, got, c.want)
		}
		// Antisymmetry: swapping the arguments flips the sign.
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("%s: Compare(b, a) = %d, want %d", c.name, got, -c.want)
		}
	}
}

// view builds a test View from waiting and running entries.
func view(waiting, running []ReqInfo) *View {
	for i := range waiting {
		waiting[i].Waiting = true
	}
	return &View{Waiting: waiting, Running: running}
}

func TestFCFSPickIgnoresPriority(t *testing.T) {
	v := view([]ReqInfo{
		{ID: 1, Arrival: 2 * time.Millisecond, Priority: 0},
		{ID: 2, Arrival: 1 * time.Millisecond, Priority: 9},
		{ID: 3, Arrival: 1 * time.Millisecond, Priority: 0},
	}, nil)
	if got := NewFCFS().PickWaiting(v); got != 1 {
		t.Errorf("pick = %d, want 1 (earliest arrival, first on ties, priority ignored)", got)
	}
}

func TestFCFSVictimLatestArrival(t *testing.T) {
	requester := ReqInfo{ID: 9}
	v := view(nil, []ReqInfo{
		{ID: 1, Arrival: 1 * time.Millisecond},
		{ID: 2, Arrival: 5 * time.Millisecond, ScheduledNow: true}, // immune
		{ID: 3, Arrival: 4 * time.Millisecond},
		{ID: 4, Arrival: 4 * time.Millisecond}, // tie: first stays victim
	})
	if got := NewFCFS().VictimFor(requester, v); got != 2 {
		t.Errorf("victim = %d, want 2 (latest non-immune arrival, first on ties)", got)
	}
	// Admission candidates never preempt under FCFS.
	requester.Waiting = true
	if got := NewFCFS().VictimFor(requester, v); got != -1 {
		t.Errorf("admission victim = %d, want -1", got)
	}
}

func TestPrioritySchedulerOrdering(t *testing.T) {
	s := NewPriority()
	v := view([]ReqInfo{
		{ID: 1, Priority: 0, Arrival: 1 * time.Millisecond},
		{ID: 2, Priority: 5, Arrival: 3 * time.Millisecond},
		{ID: 3, Priority: 5, Arrival: 2 * time.Millisecond},
	}, []ReqInfo{
		{ID: 4, Priority: 0, Arrival: 1 * time.Millisecond},
		{ID: 5, Priority: 0, Arrival: 2 * time.Millisecond},
		{ID: 6, Priority: 9, Arrival: 9 * time.Millisecond},
	})
	if got := s.PickWaiting(v); got != 2 {
		t.Errorf("pick = %d, want 2 (highest priority, earlier arrival breaks the tie)", got)
	}
	// Decode-path victim: lowest priority, latest arrival — whatever
	// the requester's own class.
	if got := s.VictimFor(ReqInfo{ID: 9, Priority: 0}, v); got != 1 {
		t.Errorf("decode victim = %d, want 1", got)
	}
	// Admission-path victim: strictly lower classes only.
	if got := s.VictimFor(ReqInfo{ID: 9, Priority: 5, Waiting: true}, v); got != 1 {
		t.Errorf("admission victim = %d, want 1", got)
	}
	if got := s.VictimFor(ReqInfo{ID: 9, Priority: 0, Waiting: true}, v); got != -1 {
		t.Errorf("equal-class admission victim = %d, want -1 (no admission preemption within a class)", got)
	}
}

func TestSJFOrdering(t *testing.T) {
	s := NewSJF()
	v := view([]ReqInfo{
		{ID: 1, Remaining: 100, Arrival: 1 * time.Millisecond},
		{ID: 2, Remaining: 50, Deadline: 0, Arrival: 2 * time.Millisecond},
		{ID: 3, Remaining: 50, Deadline: time.Second, Arrival: 3 * time.Millisecond},
	}, []ReqInfo{
		{ID: 4, Remaining: 10},
		{ID: 5, Remaining: 900},
	})
	if got := s.PickWaiting(v); got != 2 {
		t.Errorf("pick = %d, want 2 (least remaining; a deadline beats none on ties)", got)
	}
	if got := s.VictimFor(ReqInfo{ID: 9}, v); got != 1 {
		t.Errorf("victim = %d, want 1 (longest remaining)", got)
	}
	// Deadline urgency is the absolute instant Arrival+Deadline, not
	// the relative budget: an old request with a loose budget can be
	// more urgent than a fresh one with a tight budget.
	v = view([]ReqInfo{
		{ID: 1, Remaining: 50, Arrival: 1900 * time.Millisecond, Deadline: 1000 * time.Millisecond}, // due at 2900ms
		{ID: 2, Remaining: 50, Arrival: 0, Deadline: 2000 * time.Millisecond},                       // due at 2000ms
	}, nil)
	if got := s.PickWaiting(v); got != 1 {
		t.Errorf("pick = %d, want 1 (earlier absolute deadline despite the looser budget)", got)
	}
}

func TestAdmissionPreemptCapability(t *testing.T) {
	for _, c := range []struct {
		s    Scheduler
		want bool
	}{
		{NewFCFS(), false}, {NewSJF(), false}, {NewFairShare(nil), false},
		{NewPriority(), true},
		{WithPrefillReserve(NewPriority(), 0.25), true},
		{WithPrefillReserve(NewFCFS(), 0.25), false},
	} {
		if got := CanAdmissionPreempt(c.s); got != c.want {
			t.Errorf("CanAdmissionPreempt(%s) = %v, want %v", c.s.Name(), got, c.want)
		}
	}
}

func TestFairShareServesUnderservedGroup(t *testing.T) {
	s := NewFairShare(nil)
	running := []ReqInfo{
		{ID: 1, Group: 100, PromptLen: 400, OutputLen: 100},
		{ID: 2, Group: 100, PromptLen: 400, OutputLen: 100},
		{ID: 3, Group: 200, PromptLen: 100, OutputLen: 50},
	}
	v := view([]ReqInfo{
		{ID: 4, Group: 100, Arrival: 1 * time.Millisecond}, // earlier, but its group is ahead
		{ID: 5, Group: 200, Arrival: 2 * time.Millisecond},
	}, running)
	if got := s.PickWaiting(v); got != 1 {
		t.Errorf("pick = %d, want 1 (group 200 is under-served)", got)
	}
	// Victim comes from the most-served group, latest arrival within.
	if got := s.VictimFor(ReqInfo{ID: 9, Group: 200}, view(nil, []ReqInfo{
		{ID: 1, Group: 100, PromptLen: 400, OutputLen: 100, Arrival: 1 * time.Millisecond},
		{ID: 2, Group: 100, PromptLen: 400, OutputLen: 100, Arrival: 2 * time.Millisecond},
		{ID: 3, Group: 200, PromptLen: 100, OutputLen: 50, Arrival: 9 * time.Millisecond},
	})); got != 1 {
		t.Errorf("victim = %d, want 1 (most-served group, latest arrival)", got)
	}
}

func TestFairShareWeights(t *testing.T) {
	// Group 100 holds twice the tokens but has weight 4: its weighted
	// share is half of group 200's, so it still wins the pick.
	s := NewFairShare(map[int64]float64{100: 4})
	running := []ReqInfo{
		{ID: 1, Group: 100, PromptLen: 800, OutputLen: 0},
		{ID: 2, Group: 200, PromptLen: 400, OutputLen: 0},
	}
	v := view([]ReqInfo{
		{ID: 3, Group: 200, Arrival: 1 * time.Millisecond},
		{ID: 4, Group: 100, Arrival: 2 * time.Millisecond},
	}, running)
	if got := s.PickWaiting(v); got != 1 {
		t.Errorf("pick = %d, want 1 (weight 4 quarters group 100's share)", got)
	}
}

func TestRankWaiting(t *testing.T) {
	waiting := []ReqInfo{
		{ID: 1, Priority: 0, Arrival: 1 * time.Millisecond},
		{ID: 2, Priority: 5, Arrival: 2 * time.Millisecond},
		{ID: 3, Priority: 0, Arrival: 3 * time.Millisecond},
	}
	cand := ReqInfo{ID: 9, Priority: 5, Arrival: 4 * time.Millisecond, Waiting: true}
	if got := NewFCFS().RankWaiting(cand, view(waiting, nil)); got != 3 {
		t.Errorf("fcfs rank = %d, want 3 (arrived last, priority ignored)", got)
	}
	if got := NewPriority().RankWaiting(cand, view(waiting, nil)); got != 1 {
		t.Errorf("priority rank = %d, want 1 (only the earlier priority-5 request is ahead)", got)
	}
}

func TestWithPrefillReserve(t *testing.T) {
	s := WithPrefillReserve(NewFCFS(), 0.25)
	if s.Name() != "fcfs:0.25" {
		t.Errorf("name = %q", s.Name())
	}
	// No prefill work: decode keeps the whole budget.
	idle := view(nil, []ReqInfo{{ID: 1, Phase: PhaseDecode}})
	if got := s.PrefillBudget(idle, 100); got != (Split{Decode: 100, Prefill: 100}) {
		t.Errorf("idle split = %+v", got)
	}
	// Prefill work exists: a quarter of the budget is withheld.
	busy := view([]ReqInfo{{ID: 2}}, nil)
	if got := s.PrefillBudget(busy, 100); got != (Split{Decode: 75, Prefill: 100}) {
		t.Errorf("busy split = %+v", got)
	}
	if WithPrefillReserve(NewFCFS(), 0) != NewFCFS() {
		t.Error("zero reserve must return the scheduler unchanged")
	}
}

func TestParseScheduler(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"", "fcfs"}, {"fcfs", "fcfs"}, {"priority", "priority"},
		{"sjf", "sjf"}, {"FairShare", "fairshare"}, {"sjf:0.25", "sjf:0.25"},
	} {
		s, err := ParseScheduler(c.in)
		if err != nil {
			t.Fatalf("ParseScheduler(%q): %v", c.in, err)
		}
		if s.Name() != c.want {
			t.Errorf("ParseScheduler(%q).Name() = %q, want %q", c.in, s.Name(), c.want)
		}
	}
	for _, bad := range []string{"bogus", "fcfs:1.5", "sjf:x", "priority:-0.1"} {
		if _, err := ParseScheduler(bad); err == nil {
			t.Errorf("ParseScheduler(%q) accepted", bad)
		}
	}
}
