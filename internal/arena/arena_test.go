package arena

import (
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(100, 0); err == nil {
		t.Error("zero page size should error")
	}
	if _, err := New(-1, 64); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestPartialTailPageUnusable(t *testing.T) {
	a, err := New(1000, 256)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLargePages() != 3 {
		t.Errorf("pages = %d, want 3", a.NumLargePages())
	}
	if a.UsableBytes() != 768 {
		t.Errorf("usable = %d, want 768", a.UsableBytes())
	}
}

func TestLargeSlice(t *testing.T) {
	a, err := NewBacked(1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.LargeSlice(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 256 {
		t.Errorf("slice len = %d, want 256", len(s))
	}
	if _, err := a.LargeSlice(4); err == nil {
		t.Error("out-of-range large page should error")
	}
	u, _ := New(1024, 256)
	if _, err := u.LargeSlice(0); err == nil {
		t.Error("unbacked LargeSlice should error")
	}
}

// fig6View builds the paper's Fig. 6/7 example: large page 768, text
// view 384 (3 layers × 128), image view 256 (2 layers × 128),
// tokens_per_page = 1.
func fig6Views(t *testing.T, capacity int64) (*Arena, *View, *View) {
	t.Helper()
	a, err := NewBacked(capacity, 768)
	if err != nil {
		t.Fatal(err)
	}
	text, err := a.View("text", 384, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := a.View("image", 256, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a, text, img
}

func TestViewGeometryPaperExample(t *testing.T) {
	_, text, img := fig6Views(t, 4*768)
	if text.Ratio() != 2 || img.Ratio() != 3 {
		t.Errorf("ratios = %d,%d want 2,3", text.Ratio(), img.Ratio())
	}
	// Fig. 6: large page 1 owned by text → small pages P2, P3.
	first, n := text.SmallRange(1)
	if first != 2 || n != 2 {
		t.Errorf("text SmallRange(1) = %d,%d want 2,2", first, n)
	}
	// Large page 2 owned by image → small pages P6, P7, P8.
	first, n = img.SmallRange(2)
	if first != 6 || n != 3 {
		t.Errorf("img SmallRange(2) = %d,%d want 6,3", first, n)
	}
	if img.LargeOf(7) != 2 {
		t.Errorf("LargeOf(7) = %d, want 2", img.LargeOf(7))
	}
	off, length := img.ByteRange(6)
	if off != 6*256 || length != 256 {
		t.Errorf("ByteRange(6) = %d,%d", off, length)
	}
}

func TestViewErrors(t *testing.T) {
	a, _ := New(768*4, 768)
	cases := []struct {
		name                        string
		small, layers, tokensPerPge int
	}{
		{"non-divisor small", 500, 2, 1},
		{"zero small", 0, 2, 1},
		{"zero layers", 384, 0, 1},
		{"layers not dividing", 384, 5, 1},
		{"zero tokens", 384, 3, 0},
		{"tokens not dividing", 384, 3, 7},
	}
	for _, c := range cases {
		if _, err := a.View("x", c.small, c.layers, c.tokensPerPge); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestKernelViewFig7c reproduces Fig. 7c: layer cross.1 (second layer of
// the image group) with pages [0,4,12,14] must address arena offsets
// pageID*256 + 128.
func TestKernelViewFig7c(t *testing.T) {
	a, err := NewBacked(768*8, 768)
	if err != nil {
		t.Fatal(err)
	}
	img, err := a.View("image", 256, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	kv, err := img.Kernel(1, []SmallPageID{0, 4, 12, 14})
	if err != nil {
		t.Fatal(err)
	}
	if kv.StartOff != 128 {
		t.Errorf("start offset = %d, want 128", kv.StartOff)
	}
	if kv.PageSizeExec != 256 {
		t.Errorf("page size exec = %d, want 256", kv.PageSizeExec)
	}
	for i, want := range []int64{0*256 + 128, 4*256 + 128, 12*256 + 128, 14*256 + 128} {
		off, err := kv.slotOffset(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if off != want {
			t.Errorf("page %d offset = %d, want %d", i, off, want)
		}
	}
	if _, err := img.Kernel(2, nil); err == nil {
		t.Error("layer out of range should error")
	}
}

func TestFingerprintRoundTrip(t *testing.T) {
	_, text, img := fig6Views(t, 8*768)
	tkv, err := text.Kernel(0, []SmallPageID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ikv, err := img.Kernel(1, []SmallPageID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Text layer 0 page 2 starts at byte 768; image layer 1 page 0 at
	// byte 128 — disjoint, so writes must not interfere.
	if err := tkv.WriteFingerprint(0, 0, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	if err := ikv.WriteFingerprint(0, 0, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	got, err := tkv.ReadFingerprint(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xAAAA {
		t.Errorf("text fingerprint = %#x, want 0xAAAA", got)
	}
	got, err = ikv.ReadFingerprint(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xBBBB {
		t.Errorf("image fingerprint = %#x, want 0xBBBB", got)
	}
}

func TestFingerprintErrors(t *testing.T) {
	_, text, _ := fig6Views(t, 4*768)
	kv, _ := text.Kernel(0, []SmallPageID{0})
	if err := kv.WriteFingerprint(1, 0, 1); err == nil {
		t.Error("page index out of range should error")
	}
	if err := kv.WriteFingerprint(0, 1, 1); err == nil {
		t.Error("slot out of range should error")
	}
	if _, err := kv.ReadFingerprint(-1, 0); err == nil {
		t.Error("negative page index should error")
	}
	u, _ := New(4*768, 768)
	uv, _ := u.View("text", 384, 3, 1)
	ukv, _ := uv.Kernel(0, []SmallPageID{0})
	if err := ukv.WriteFingerprint(0, 0, 1); err == nil {
		t.Error("write on unbacked arena should error")
	}
	if _, err := ukv.ReadFingerprint(0, 0); err == nil {
		t.Error("read on unbacked arena should error")
	}
}

// TestKernelLayerIsolation writes a distinct fingerprint to every
// (layer, page, slot) of a multi-token view and verifies all of them:
// any overlap between layers or pages would corrupt a read.
func TestKernelLayerIsolation(t *testing.T) {
	a, err := NewBacked(16*1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// 4 layers × 4 token slots × 64 bytes = 1024-byte small pages.
	v, err := a.View("g", 1024, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	pages := []SmallPageID{0, 3, 7, 9}
	kvs := make([]KernelView, v.Layers())
	for l := 0; l < v.Layers(); l++ {
		kv, err := v.Kernel(l, pages)
		if err != nil {
			t.Fatal(err)
		}
		kvs[l] = kv
		for pi := range pages {
			for s := 0; s < 4; s++ {
				if err := kv.WriteFingerprint(pi, s, TokenFingerprint(uint64(l), pi, s)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for l := 0; l < v.Layers(); l++ {
		for pi := range pages {
			for s := 0; s < 4; s++ {
				got, err := kvs[l].ReadFingerprint(pi, s)
				if err != nil {
					t.Fatal(err)
				}
				if want := TokenFingerprint(uint64(l), pi, s); got != want {
					t.Errorf("layer %d page %d slot %d: got %#x want %#x", l, pi, s, got, want)
				}
			}
		}
	}
}

func TestTokenFingerprintDistinct(t *testing.T) {
	prop := func(r1, r2 uint32, l1, l2 uint8, p1, p2 uint16) bool {
		a := TokenFingerprint(uint64(r1), int(l1), int(p1))
		b := TokenFingerprint(uint64(r2), int(l2), int(p2))
		same := r1 == r2 && l1 == l2 && p1 == p2
		return same == (a == b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSmallPageDisjointness: distinct small pages of any view map to
// non-overlapping byte ranges (DESIGN.md invariant 1).
func TestSmallPageDisjointness(t *testing.T) {
	a, _ := New(768*64, 768)
	text, _ := a.View("text", 384, 3, 1)
	prop := func(p1, p2 uint8) bool {
		a1, l1 := text.ByteRange(SmallPageID(p1))
		a2, _ := text.ByteRange(SmallPageID(p2))
		if p1 == p2 {
			return a1 == a2
		}
		lo, hi := a1, a2
		if lo > hi {
			lo, hi = hi, lo
		}
		return lo+int64(l1) <= hi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
