// Package arena simulates the device memory that holds KV caches.
//
// An Arena is a contiguous region carved into fixed-size large pages —
// the compatibility layer of Jenga's two-level design (§4.1). Typed
// views re-address the same bytes as small pages of a specific layer
// type, using the paper's page-layer partition (§4.2, Fig. 7b): memory
// is partitioned into small pages first and each small page is then
// partitioned into layers, so a small page is contiguous and can move
// between layer types wholesale.
//
// Arenas can be backed (a real []byte, so tests can verify that every
// allocation maps to disjoint bytes and that kernel views address
// exactly the right slots) or unbacked (pure accounting, so experiments
// can model an 80 GB H100 without allocating 80 GB).
package arena

import (
	"encoding/binary"
	"fmt"
)

// LargePageID indexes a large page within an arena.
type LargePageID int32

// SmallPageID indexes a small page within a typed view. Small page p of
// a view with small-page size S occupies arena bytes [p*S, (p+1)*S), so
// large page L contains small pages [L*ratio, (L+1)*ratio).
type SmallPageID int32

// Arena is a simulated device-memory region for KV caches.
type Arena struct {
	buf            []byte // nil when unbacked
	largePageBytes int
	numLarge       int
}

// New creates an accounting-only arena: capacity bytes carved into
// large pages of largePageBytes (partial tail pages are unusable, as on
// a real device).
func New(capacity int64, largePageBytes int) (*Arena, error) {
	if largePageBytes <= 0 {
		return nil, fmt.Errorf("arena: non-positive large page size %d", largePageBytes)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("arena: negative capacity %d", capacity)
	}
	n := capacity / int64(largePageBytes)
	if n > int64(1)<<31-1 {
		return nil, fmt.Errorf("arena: %d large pages exceed id space", n)
	}
	return &Arena{largePageBytes: largePageBytes, numLarge: int(n)}, nil
}

// NewBacked creates an arena backed by real memory so byte-level layout
// can be verified. Intended for tests and examples; capacity should be
// modest.
func NewBacked(capacity int64, largePageBytes int) (*Arena, error) {
	a, err := New(capacity, largePageBytes)
	if err != nil {
		return nil, err
	}
	a.buf = make([]byte, int64(a.numLarge)*int64(largePageBytes))
	return a, nil
}

// Backed reports whether the arena has real bytes behind it.
func (a *Arena) Backed() bool { return a.buf != nil }

// NumLargePages returns the number of large pages.
func (a *Arena) NumLargePages() int { return a.numLarge }

// LargePageBytes returns the large-page size.
func (a *Arena) LargePageBytes() int { return a.largePageBytes }

// UsableBytes returns the bytes addressable through large pages.
func (a *Arena) UsableBytes() int64 {
	return int64(a.numLarge) * int64(a.largePageBytes)
}

// LargeSlice returns the bytes of one large page (backed arenas only).
func (a *Arena) LargeSlice(id LargePageID) ([]byte, error) {
	if a.buf == nil {
		return nil, fmt.Errorf("arena: LargeSlice on unbacked arena")
	}
	if id < 0 || int(id) >= a.numLarge {
		return nil, fmt.Errorf("arena: large page %d out of range [0,%d)", id, a.numLarge)
	}
	off := int64(id) * int64(a.largePageBytes)
	return a.buf[off : off+int64(a.largePageBytes)], nil
}

// View creates a typed view of the arena for one layer type.
//
// smallPageBytes must divide the large-page size; layers is the number
// of layers in the group; tokensPerPage is how many token slots each
// layer's share of a small page holds (1 for Mamba state pages).
func (a *Arena) View(name string, smallPageBytes, layers, tokensPerPage int) (*View, error) {
	switch {
	case smallPageBytes <= 0:
		return nil, fmt.Errorf("arena view %s: non-positive small page size", name)
	case a.largePageBytes%smallPageBytes != 0:
		return nil, fmt.Errorf("arena view %s: small page %d does not divide large page %d",
			name, smallPageBytes, a.largePageBytes)
	case layers <= 0:
		return nil, fmt.Errorf("arena view %s: non-positive layer count", name)
	case smallPageBytes%layers != 0:
		return nil, fmt.Errorf("arena view %s: small page %d not divisible by %d layers",
			name, smallPageBytes, layers)
	case tokensPerPage <= 0:
		return nil, fmt.Errorf("arena view %s: non-positive tokensPerPage", name)
	case (smallPageBytes/layers)%tokensPerPage != 0:
		return nil, fmt.Errorf("arena view %s: per-layer bytes %d not divisible by %d token slots",
			name, smallPageBytes/layers, tokensPerPage)
	}
	return &View{
		a:          a,
		name:       name,
		smallBytes: smallPageBytes,
		layers:     layers,
		perLayer:   smallPageBytes / layers,
		slotBytes:  smallPageBytes / layers / tokensPerPage,
		tokens:     tokensPerPage,
		ratio:      a.largePageBytes / smallPageBytes,
	}, nil
}

// View addresses the arena as small pages of one layer type.
type View struct {
	a          *Arena
	name       string
	smallBytes int
	layers     int
	perLayer   int
	slotBytes  int
	tokens     int
	ratio      int
}

// Name returns the view's layer-type name.
func (v *View) Name() string { return v.name }

// Ratio returns small pages per large page.
func (v *View) Ratio() int { return v.ratio }

// SmallPageBytes returns the small-page size.
func (v *View) SmallPageBytes() int { return v.smallBytes }

// TokensPerPage returns token slots per small page per layer.
func (v *View) TokensPerPage() int { return v.tokens }

// Layers returns the layer count of the group.
func (v *View) Layers() int { return v.layers }

// SmallRange returns the first small-page ID inside a large page and
// the count (always Ratio).
func (v *View) SmallRange(lp LargePageID) (first SmallPageID, n int) {
	return SmallPageID(int(lp) * v.ratio), v.ratio
}

// LargeOf returns the large page containing a small page.
func (v *View) LargeOf(p SmallPageID) LargePageID {
	return LargePageID(int(p) / v.ratio)
}

// ByteRange returns the arena byte range [off, off+len) of a small page.
func (v *View) ByteRange(p SmallPageID) (off int64, length int) {
	return int64(p) * int64(v.smallBytes), v.smallBytes
}

// SmallSlice returns the bytes of one small page (backed arenas
// only) — the D2H/H2D transfer unit a tiered-memory layer copies.
func (v *View) SmallSlice(p SmallPageID) ([]byte, error) {
	if v.a.buf == nil {
		return nil, fmt.Errorf("arena view %s: SmallSlice on unbacked arena", v.name)
	}
	off, length := v.ByteRange(p)
	if off < 0 || off+int64(length) > int64(len(v.a.buf)) {
		return nil, fmt.Errorf("arena view %s: small page %d out of range", v.name, p)
	}
	return v.a.buf[off : off+int64(length)], nil
}

// Kernel builds the attention-kernel arguments of Fig. 7c for one layer
// of the group: the start offset (KV_cache_start_ptr relative to the
// arena base), the execution page stride (page_size_exec) and the small
// page IDs (pageid_exec). Existing PagedAttention kernels consume
// exactly this triple, which is the §4.2 compatibility claim.
func (v *View) Kernel(layer int, pages []SmallPageID) (KernelView, error) {
	if layer < 0 || layer >= v.layers {
		return KernelView{}, fmt.Errorf("arena view %s: layer %d out of range [0,%d)", v.name, layer, v.layers)
	}
	ids := make([]SmallPageID, len(pages))
	copy(ids, pages)
	return KernelView{
		StartOff:     int64(layer) * int64(v.perLayer),
		PageSizeExec: v.smallBytes,
		PageIDs:      ids,
		slotBytes:    v.slotBytes,
		tokens:       v.tokens,
		view:         v,
	}, nil
}

// KernelView is the per-layer argument triple passed to (simulated)
// attention kernels, plus helpers to execute reads against the arena.
type KernelView struct {
	// StartOff is KV_cache_start_ptr as an offset from the arena base.
	StartOff int64
	// PageSizeExec is the per-page stride in bytes.
	PageSizeExec int
	// PageIDs is pageid_exec: the small pages holding this layer's KV.
	PageIDs []SmallPageID

	slotBytes int
	tokens    int
	view      *View
}

// slotOffset computes the arena offset of a token slot the way a GPU
// kernel would: base + page_id*page_size_exec + start_off + slot*slot_bytes.
func (k *KernelView) slotOffset(pageIdx, slot int) (int64, error) {
	if pageIdx < 0 || pageIdx >= len(k.PageIDs) {
		return 0, fmt.Errorf("arena kernel: page index %d out of range", pageIdx)
	}
	if slot < 0 || slot >= k.tokens {
		return 0, fmt.Errorf("arena kernel: slot %d out of range [0,%d)", slot, k.tokens)
	}
	return int64(k.PageIDs[pageIdx])*int64(k.PageSizeExec) + k.StartOff + int64(slot)*int64(k.slotBytes), nil
}

// WriteFingerprint stores a token fingerprint in the slot's first 8
// bytes, simulating the KV write of a forward pass (backed arenas only).
func (k *KernelView) WriteFingerprint(pageIdx, slot int, fp uint64) error {
	off, err := k.slotOffset(pageIdx, slot)
	if err != nil {
		return err
	}
	if k.view.a.buf == nil {
		return fmt.Errorf("arena kernel: write on unbacked arena")
	}
	if k.slotBytes < 8 {
		return fmt.Errorf("arena kernel: slot bytes %d < 8", k.slotBytes)
	}
	binary.LittleEndian.PutUint64(k.view.a.buf[off:off+8], fp)
	return nil
}

// ReadFingerprint reads back a token fingerprint, simulating the KV
// read of an attention kernel.
func (k *KernelView) ReadFingerprint(pageIdx, slot int) (uint64, error) {
	off, err := k.slotOffset(pageIdx, slot)
	if err != nil {
		return 0, err
	}
	if k.view.a.buf == nil {
		return 0, fmt.Errorf("arena kernel: read on unbacked arena")
	}
	return binary.LittleEndian.Uint64(k.view.a.buf[off : off+8]), nil
}

// TokenFingerprint derives a deterministic fingerprint for (request,
// layer, position) used by layout tests: any aliasing of two distinct
// (request, layer, position) triples onto the same slot changes a read
// value and is caught.
func TokenFingerprint(requestID uint64, layer, position int) uint64 {
	x := requestID*0x9E3779B97F4A7C15 ^ uint64(layer)*0xBF58476D1CE4E5B9 ^ uint64(position)*0x94D049BB133111EB
	x ^= x >> 31
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 29
	return x
}
