package bench

import "testing"

// TestRunScaleSmall: the scale harness is wired end to end — the
// streamed run finishes its whole workload and the fidelity anchors
// are shard-count invariant.
func TestRunScaleSmall(t *testing.T) {
	run := func(shards int) ScaleResult {
		res, err := RunScale(ScaleOptions{Requests: 1600, Replicas: 4, Shards: shards, Rate: 2000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Finished == 0 || a.Finished != a.Requests {
		t.Fatalf("finished %d of %d", a.Finished, a.Requests)
	}
	if a.Finished != b.Finished || a.SimDuration != b.SimDuration || a.HitRate != b.HitRate {
		t.Fatalf("sim outcome moved with shard count: %+v vs %+v", a, b)
	}
	if a.PeakHeapBytes <= 0 {
		t.Fatal("heap watcher recorded nothing")
	}
}

// TestScaleSmoke is the CI scale gate (make scale-smoke): a
// ~100k-request streamed ServeStream pass on the 16-replica fleet,
// asserting the workload is never materialized — peak live heap stays
// far below the ~450 MB the request slice alone would cost — and that
// the fleet serves the entire stream. Run under -race by the Makefile
// target; skipped in -short runs (the race suite covers correctness).
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke is its own CI target (make scale-smoke)")
	}
	res, err := RunScale(ScaleOptions{Requests: 100_000, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != res.Requests {
		t.Fatalf("finished %d of %d requests", res.Finished, res.Requests)
	}
	const heapBound = 320 << 20
	if res.PeakHeapBytes > heapBound {
		t.Fatalf("peak heap %d MB exceeds the %d MB streaming bound — is the workload being materialized?",
			res.PeakHeapBytes>>20, int64(heapBound)>>20)
	}
	t.Logf("scale smoke: %d requests, wall %v, peak heap %d MB, %0.f req/wall-s",
		res.Requests, res.Wall, res.PeakHeapBytes>>20, res.ReqPerWallSec)
}
