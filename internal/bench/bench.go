// Package bench defines the allocator/engine hot-path micro-benchmark
// fixtures shared by the root benchmark suite (bench_core_test.go) and
// cmd/jengabench -bench-core, so the committed BENCH_core.json
// trajectory measures exactly the code paths the CI benchmarks run.
//
// Each fixture returns a setup-complete Op whose Run executes one
// iteration of the measured hot path. Ops with a Recycle hook need it
// called (untimed) every RecycleEvery iterations to hold the system in
// steady state — without it, context growth would drift the
// measurement out of the regime the benchmark names.
package bench

import (
	"fmt"
	"testing"
	"time"

	"jenga/internal/cluster"
	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// Op is one hot-path micro-benchmark.
type Op struct {
	// Run executes measured iteration i.
	Run func(i int) error
	// Recycle, when non-nil, restores steady state; Loop invokes it
	// outside the timed region every RecycleEvery iterations.
	Recycle      func(i int) error
	RecycleEvery int
}

// Loop drives one fixture under b, excluding steady-state recycles
// from timing and allocation accounting — the single harness behind
// both the root benchmark suite and jengabench -bench-core, so the
// committed trajectory and the CI benchmarks cannot measure different
// regimes.
func Loop(b *testing.B, op *Op) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if op.Recycle != nil && op.RecycleEvery > 0 && i > 0 && i%op.RecycleEvery == 0 {
			b.StopTimer()
			if err := op.Recycle(i); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := op.Run(i); err != nil {
			b.Fatal(err)
		}
	}
}

// All enumerates the fixtures in report order.
var All = []struct {
	Name string
	Make func() (*Op, error)
}{
	{"alloc_small", AllocSmall},
	{"claim_release", ClaimRelease},
	{"lookup_warm", LookupWarm},
	{"commit_decode", CommitDecode},
	{"run_step_steady_state", RunStepSteadyState},
	{"serve_online_arrival", ServeOnlineArrival},
}

// AllocSmall measures one small-page allocation plus release at ~99.9%
// pool utilization with a quarter-million-page pool — the §5.4 step-4
// any-free pop every admission-time reservation ends in once the
// replica is loaded. The fixture interleaves two sequences page by
// page and releases one, so the surviving free pages are scattered
// across half-used large pages; a third sequence then re-occupies all
// but ~200 of them. The "pad" group stores only image tokens, so the
// all-text workload leaves it empty and the LCM geometry gives "kv"
// two small pages per large page (free pages can strand inside
// half-used large pages instead of being reclaimed).
func AllocSmall() (*Op, error) {
	spec := &model.Spec{
		Name: "bench-hiutil", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "kv", Kind: model.FullAttention, Layers: 1, BytesPerToken: 256, Scope: model.ScopeText},
			{Name: "pad", Kind: model.FullAttention, Layers: 1, BytesPerToken: 512, Scope: model.ScopeImage},
		},
	}
	mgr, err := core.New(core.Config{
		Spec: spec, CapacityBytes: 1 << 30, TokensPerPage: 16, RequestAware: false,
	})
	if err != nil {
		return nil, err
	}
	const pages = 131072 // per interleaved sequence: half the kv pool
	a := &core.Sequence{ID: 1}
	b := &core.Sequence{ID: 2}
	for i := 0; i < pages*16; i++ {
		a.Tokens = append(a.Tokens, core.Token{ID: int32(i%50_000 + 1)})
		b.Tokens = append(b.Tokens, core.Token{ID: int32(i%50_000 + 1)})
	}
	for p := 1; p <= pages; p++ {
		if err := mgr.Reserve(a, p*16, 1); err != nil {
			return nil, err
		}
		if err := mgr.Reserve(b, p*16, 1); err != nil {
			return nil, err
		}
	}
	mgr.Release(b, false)
	c := &core.Sequence{ID: 3}
	const cPages = pages - 200
	for i := 0; i < cPages*16; i++ {
		c.Tokens = append(c.Tokens, core.Token{ID: int32(i%50_000 + 1)})
	}
	if err := mgr.Reserve(c, cPages*16, 1); err != nil {
		return nil, err
	}
	seq := &core.Sequence{ID: 1000}
	for i := 0; i < 16; i++ {
		seq.Tokens = append(seq.Tokens, core.Token{ID: int32(i + 1)})
	}
	return &Op{Run: func(i int) error {
		seq.ID = core.RequestID(1000 + i)
		if err := mgr.Reserve(seq, 16, core.Tick(i)); err != nil {
			return err
		}
		mgr.Release(seq, false)
		return nil
	}}, nil
}

// ClaimRelease measures a one-block prefix-cache claim and
// cache-preserving release against a fully cached large page of 4096
// small pages: every release flips the large page back to evictable,
// which re-keys it for the large-page LRU (§5.4 step 3). The
// megabyte-scale image-embedding group (the paper's VLM heterogeneity)
// drives the LCM geometry to 4096 small KV pages per large page.
func ClaimRelease() (*Op, error) {
	spec := &model.Spec{
		Name: "bench-claim", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "kv", Kind: model.FullAttention, Layers: 1, BytesPerToken: 64, Scope: model.ScopeText},
			{Name: "embed", Kind: model.FullAttention, Layers: 1, BytesPerToken: 262144, Scope: model.ScopeImage},
		},
	}
	mgr, err := core.New(core.Config{
		Spec: spec, CapacityBytes: 8 << 20, TokensPerPage: 16,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		return nil, err
	}
	// Fill one large page (4096 kv pages = 65536 tokens) as cache.
	const tokens = 65536
	base := &core.Sequence{ID: 1, PromptLen: tokens}
	for i := 0; i < tokens; i++ {
		base.Tokens = append(base.Tokens, core.Token{ID: int32(i%50_000 + 1)})
	}
	if err := mgr.Reserve(base, tokens, 1); err != nil {
		return nil, err
	}
	mgr.Commit(base, tokens, 1)
	mgr.Release(base, true)
	// Pin one page of a second large page so the probe's uncached tail
	// block allocates from an existing half-used large page instead of
	// carving and reclaiming a fresh one every iteration.
	pin := &core.Sequence{ID: 2}
	pin.Tokens = append(pin.Tokens, core.Token{ID: 7})
	if err := mgr.Reserve(pin, 1, 1); err != nil {
		return nil, err
	}
	probe := &core.Sequence{ID: 3, PromptLen: 17}
	probe.Tokens = append(probe.Tokens, base.Tokens[:17]...)
	return &Op{Run: func(i int) error {
		probe.ID = core.RequestID(100 + i)
		if err := mgr.Reserve(probe, 17, core.Tick(i)); err != nil {
			return err
		}
		mgr.Release(probe, true)
		return nil
	}}, nil
}

// LookupWarm measures the admission-path prefix lookup over a long
// fully cached prompt.
func LookupWarm() (*Op, error) {
	mgr, err := core.New(core.Config{
		Spec: textSpec("bench-lookup"), CapacityBytes: 256 << 20, TokensPerPage: 16,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		return nil, err
	}
	const tokens = 8192
	seq := &core.Sequence{ID: 1, PromptLen: tokens}
	for i := 0; i < tokens; i++ {
		seq.Tokens = append(seq.Tokens, core.Token{ID: int32(i%50_000 + 1)})
	}
	if err := mgr.Reserve(seq, tokens, 1); err != nil {
		return nil, err
	}
	mgr.Commit(seq, tokens, 1)
	mgr.Release(seq, true)
	probe := &core.Sequence{ID: 2, PromptLen: tokens, Tokens: seq.Tokens}
	return &Op{Run: func(int) error {
		if mgr.Lookup(probe) == 0 {
			return fmt.Errorf("bench: expected a warm hit")
		}
		return nil
	}}, nil
}

// CommitDecode measures the per-token decode commit: append one token,
// reserve it, commit it — the core-manager share of every decode step.
// Recycle releases and restarts the sequence before it outgrows the
// pool.
func CommitDecode() (*Op, error) {
	mgr, err := core.New(core.Config{
		Spec: textSpec("bench-commit"), CapacityBytes: 1 << 30, TokensPerPage: 16, RequestAware: true,
	})
	if err != nil {
		return nil, err
	}
	start := func(id core.RequestID, toks []core.Token) (*core.Sequence, error) {
		seq := &core.Sequence{ID: id, PromptLen: 64, Tokens: toks[:64]}
		if err := mgr.Reserve(seq, 64, 0); err != nil {
			return nil, err
		}
		mgr.Commit(seq, 64, 0)
		return seq, nil
	}
	toks := make([]core.Token, 64)
	for i := range toks {
		toks[i] = core.Token{ID: int32(i + 1)}
	}
	seq, err := start(1, toks)
	if err != nil {
		return nil, err
	}
	op := &Op{
		RecycleEvery: 1 << 20,
		Recycle: func(i int) error {
			mgr.Release(seq, false)
			s, err := start(core.RequestID(i), seq.Tokens)
			seq = s
			return err
		},
	}
	op.Run = func(i int) error {
		seq.Tokens = append(seq.Tokens, core.Token{ID: int32(i%50_000 + 1)})
		n := len(seq.Tokens)
		if err := mgr.Reserve(seq, n, core.Tick(i)); err != nil {
			return err
		}
		mgr.Commit(seq, n, core.Tick(i))
		return nil
	}
	return op, nil
}

// RunStepSteadyState measures one engine scheduler step with 32
// decode-phase sequences at 2k context — the steady-state decode loop
// every serving scenario spends most of its simulated time in. Recycle
// cancels the fleet (cache-preserving release) and launches a fresh
// wave over the same prompts, bounding context growth so the
// measurement never drifts into preemption thrash.
func RunStepSteadyState() (*Op, error) {
	spec := textSpec("bench-step")
	mgr, err := core.New(core.Config{
		Spec: spec, CapacityBytes: 1 << 30, TokensPerPage: 16, RequestAware: true,
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		Spec: spec, Manager: mgr,
		MaxBatchTokens: 4096, MaxRunning: 64, MaxPrefills: 8,
		MaxSteps: 1 << 40,
	})
	if err != nil {
		return nil, err
	}
	const seqs, ctx = 32, 2048
	nextID := int64(1)
	launch := func() error {
		for i := 0; i < seqs; i++ {
			req := workload.Request{ID: nextID, OutputLen: 1 << 20}
			nextID++
			for j := 0; j < ctx; j++ {
				req.Prompt = append(req.Prompt, core.Token{ID: int32((i*131+j)%50_000 + 1)})
			}
			if err := eng.Submit(&req); err != nil {
				return err
			}
		}
		// Warm until every sequence is decoding.
		for i := 0; i < ctx/128+seqs+64; i++ {
			if err := eng.StepOnce(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := launch(); err != nil {
		return nil, err
	}
	return &Op{
		Run:          func(int) error { return eng.StepOnce() },
		RecycleEvery: 2048,
		Recycle: func(int) error {
			for id := nextID - seqs; id < nextID; id++ {
				eng.Cancel(id)
			}
			return launch()
		},
	}, nil
}

// ServeOnlineArrival measures ServeOnline's per-arrival router-loop
// body — snapshot every replica, route against the live loads, submit
// to the chosen engine — the serial cost the streamed serving path
// amortizes into epochs. Recycle resets the fleet so the pending-queue
// insert never drifts out of the near-empty regime routing runs in.
func ServeOnlineArrival() (*Op, error) {
	spec := textSpec("bench-arrival")
	const replicas = 8
	engines := make([]*engine.Engine, replicas)
	for i := range engines {
		mgr, err := core.New(core.Config{
			Spec: spec, CapacityBytes: 64 << 20, TokensPerPage: 16,
			EnablePrefixCache: true, RequestAware: true,
		})
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(engine.Config{Spec: spec, Manager: mgr})
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	router, err := cluster.NewRouter(cluster.LeastLoaded, replicas, 0, 0)
	if err != nil {
		return nil, err
	}
	loads := make([]cluster.Load, replicas)
	for i := range loads {
		loads[i].Replica = i
	}
	prompt := make([]core.Token, 256)
	for i := range prompt {
		prompt[i] = core.Token{ID: int32(i + 1)}
	}
	base := 0
	op := &Op{
		RecycleEvery: 512,
		Recycle: func(i int) error {
			for _, e := range engines {
				e.Reset()
			}
			for j := range loads {
				loads[j] = cluster.Load{Replica: j}
			}
			base = i
			return nil
		},
	}
	op.Run = func(i int) error {
		req := workload.Request{
			ID:        int64(i + 1),
			Prompt:    prompt,
			OutputLen: 32,
			Arrival:   time.Duration(i-base) * 50 * time.Microsecond,
		}
		for j, e := range engines {
			snap := e.SnapshotTotals()
			loads[j].Live = true
			loads[j].Usage = snap.Usage
			loads[j].QueueDepth = snap.Pending + snap.Waiting
			loads[j].OutstandingTokens = snap.OutstandingTokens
		}
		rep := router.Route(&req, loads)
		work := int64(len(req.Prompt) + req.OutputLen)
		loads[rep].Requests++
		loads[rep].RoutedTokens += work
		return engines[rep].Submit(&req)
	}
	return op, nil
}

// textSpec is the shared one-group full-attention model.
func textSpec(name string) *model.Spec {
	return &model.Spec{
		Name: name, Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "kv", Kind: model.FullAttention, Layers: 2, BytesPerToken: 128, Scope: model.ScopeText},
		},
	}
}

// SimResult anchors the micro numbers to an end-to-end run.
type SimResult struct {
	ReqPerSec    float64
	TokensPerSec float64
	Wall         time.Duration
}

// SimThroughput runs a compact single-replica serving scenario (96
// shared-prefix requests, Gemma-2 2B geometry, default Jenga manager)
// and returns its simulated throughput plus the wall time the
// simulation itself took — the absolute end-to-end anchor committed
// next to the per-op numbers.
func SimThroughput() (SimResult, error) {
	spec, err := model.ByName("gemma2-2b")
	if err != nil {
		return SimResult{}, err
	}
	mgr, err := core.New(core.Config{
		Spec: spec, CapacityBytes: 2 << 30,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		return SimResult{}, err
	}
	eng, err := engine.New(engine.Config{Spec: spec, Manager: mgr})
	if err != nil {
		return SimResult{}, err
	}
	gen := workload.NewGen(42)
	reqs := gen.PrefixGroups(8, 12, 1024, 128)
	gen.PoissonArrivals(reqs, 200)
	start := time.Now()
	res, err := eng.Run(reqs)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		ReqPerSec:    res.ReqPerSec,
		TokensPerSec: res.TokensPerSec,
		Wall:         time.Since(start),
	}, nil
}
