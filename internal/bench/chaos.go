package bench

import (
	"time"

	"jenga/internal/chaos"
	"jenga/internal/cluster"
	"jenga/internal/engine"
	"jenga/internal/workload"
)

// ChaosOptions configures one run of the chaos benchmark: the fleet
// churn workload with a replica crash (and optional restart) injected
// mid-burst, plus a transfer-fault rate on the peer link. jengabench's
// -faults mode runs it twice — recovery off, recovery on — so
// BENCH_serving.json records what the recovery machinery buys on an
// identical fault schedule.
type ChaosOptions struct {
	FleetOptions
	// CrashReplica is the replica the plan kills (default: the last).
	CrashReplica int
	// CrashAt and RestartAt anchor the crash and restart instants.
	// Zero values derive them from the workload's arrival span: crash
	// at 40% through the burst, restart at 75% — mid-burst at any
	// request count or rate.
	CrashAt, RestartAt time.Duration
	// FetchFailRate is the per-attempt peer-transfer failure
	// probability drawn from the plan's seeded stream.
	FetchFailRate float64
	// Recover toggles the recovery machinery (cluster.ChaosPolicy).
	Recover bool
}

// Plan materializes the options' deterministic fault schedule against
// the options' workload (the same schedule regardless of Recover, so
// the two rows face identical faults).
func (o ChaosOptions) Plan() *chaos.Plan {
	crashAt, restartAt := o.CrashAt, o.RestartAt
	if crashAt == 0 || restartAt == 0 {
		first, last := workload.Span(ChurnWorkload(o.FleetOptions))
		span := last - first
		if crashAt == 0 {
			crashAt = first + span*2/5
		}
		if restartAt == 0 {
			restartAt = first + span*3/4
		}
	}
	rep := o.CrashReplica
	if rep <= 0 || rep >= o.Replicas {
		rep = o.Replicas - 1
	}
	p := chaos.NewPlan(o.Seed).Crash(rep, crashAt).Restart(rep, restartAt)
	p.FetchFailRate = o.FetchFailRate
	return p
}

// RunChaos drives the options' churn workload through a fresh cluster
// with the fault plan attached. The fleet store and migration are
// always on — the chaos benchmark measures the recovery machinery, not
// the fleet features — and only Recover differs between the scorecard
// rows.
func RunChaos(o ChaosOptions) (*cluster.Result, error) {
	mode := engine.PreemptRecompute
	if o.HostTierBytes > 0 {
		mode = engine.PreemptSwap
	}
	c, err := cluster.New(cluster.Config{
		Spec:          o.Spec,
		Device:        o.Device,
		Replicas:      o.Replicas,
		CapacityBytes: o.CapacityBytes,
		Policy:        o.Router,
		SLOTTFT:       o.SLOTTFT,
		HostTierBytes: o.HostTierBytes,
		PreemptMode:   mode,
		Fleet:         cluster.FleetPolicy{Store: true, Migrate: true},
		Chaos:         cluster.ChaosPolicy{Plan: o.Plan(), Recover: o.Recover},
	})
	if err != nil {
		return nil, err
	}
	return c.ServeOnline(ChurnWorkload(o.FleetOptions))
}
