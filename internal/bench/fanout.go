package bench

import (
	"sort"
	"time"

	"jenga/internal/core"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// FanoutOptions configures one fan-out serving run: Roots requests,
// each a PromptLen-token prompt that branches into Branch streams after
// ForkAfter output tokens, every branch decoding to OutputLen total.
// The same options drive both sides of the scorecard: the fork mode
// (copy-on-write branching via core.Forker) and, with Naive set, the
// baseline an engine without forking must serve — every root lowered to
// Branch independent requests over the identical prompt. Prefix caching
// is on in both modes, so the naive side still shares what claiming can
// share (prompt blocks); the delta isolates what only forking can
// share: the generated pre-divergence region.
type FanoutOptions struct {
	// Spec and Device describe the replica (zero Device = H100).
	Spec   *model.Spec
	Device gpu.Device
	// CapacityBytes overrides the KV budget (0 = full device budget).
	CapacityBytes int64
	// PromptLen, ForkAfter, OutputLen and Branch shape each fan-out.
	PromptLen, ForkAfter, OutputLen, Branch int
	// Roots is the number of fan-out requests; Rate their Poisson
	// arrival rate in req/s (0 = all at once).
	Roots int
	Rate  float64
	// Seed drives the deterministic workload generator.
	Seed int64
	// Naive lowers every root to Branch independent requests.
	Naive bool
}

// FanoutResult is one mode's scorecard: the KV footprint of the fan-out
// (peak bytes, and per branch at the peak) plus branch-serving metrics.
type FanoutResult struct {
	// PeakKVBytes is the peak live KV across the run (sampled every
	// step); KVBytesPerBranch divides it by the total branch count.
	PeakKVBytes      int64
	KVBytesPerBranch float64
	// Forks, CowCopies and CowCopyBytes report the sharing machinery's
	// work (zero in naive mode).
	Forks, CowCopies, CowCopyBytes int64
	// Branch-serving metrics: every branch finishes as a first-class
	// request, so Finished counts branches, not roots.
	Finished, Failed int
	ReqPerSec        float64
	TokensPerSec     float64
	// P50TTFT/P99TTFT are time-to-first-token percentiles over
	// branches. A forked branch's clock starts at the fork instant and
	// its first token needs no prefill — the latency face of sharing.
	P50TTFT, P99TTFT time.Duration
	Duration         time.Duration
}

// RunFanout runs one fan-out serving benchmark mode on a fresh
// single-replica engine.
func RunFanout(o FanoutOptions) (*FanoutResult, error) {
	if o.Device == (gpu.Device{}) {
		o.Device = gpu.H100()
	}
	gen := workload.NewGen(o.Seed)
	reqs := gen.FanOut(o.Roots, o.PromptLen, o.ForkAfter, o.OutputLen, o.Branch)
	if o.Rate > 0 {
		gen.PoissonArrivals(reqs, o.Rate)
	} else {
		workload.AllAtOnce(reqs)
	}
	if o.Naive {
		reqs = workload.NaiveFanOut(reqs)
	}
	mgr, err := core.New(core.Config{
		Spec: o.Spec, CapacityBytes: o.CapacityBytes,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		Spec: o.Spec, Device: o.Device, Manager: mgr, SampleEvery: 1,
	})
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(reqs)
	if err != nil {
		return nil, err
	}
	branches := o.Roots * o.Branch
	if branches < 1 {
		branches = 1
	}
	out := &FanoutResult{
		Finished: res.Finished, Failed: res.Failed,
		ReqPerSec: res.ReqPerSec, TokensPerSec: res.TokensPerSec,
		Duration: res.Duration,
	}
	for _, s := range res.MemTimeline {
		if s.Usage.Used > out.PeakKVBytes {
			out.PeakKVBytes = s.Usage.Used
		}
	}
	out.KVBytesPerBranch = float64(out.PeakKVBytes) / float64(branches)
	st := mgr.Stats()
	out.Forks, out.CowCopies, out.CowCopyBytes = st.Forks, st.CowCopies, st.CowCopyBytes
	ttfts := make([]time.Duration, 0, len(res.PerRequest))
	for _, rm := range res.PerRequest {
		ttfts = append(ttfts, rm.TTFT)
	}
	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	out.P50TTFT = percentileDur(ttfts, 0.50)
	out.P99TTFT = percentileDur(ttfts, 0.99)
	return out, nil
}

// percentileDur reads the p-th percentile of a sorted slice.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
