package bench

import (
	"time"

	"jenga/internal/cluster"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// FleetOptions configures one run of the fleet-memory benchmark: a
// seeded replica-churn Poisson stream (group popularity phase-shifts
// through the stream, so replicas keep seeing prefixes some other
// replica computed earlier) driven through ServeOnline under one
// cluster.FleetPolicy. jengabench's fleet modes run it once per policy
// variant so BENCH_serving.json records a fleet-store-vs-recompute and
// a migrate-vs-shed comparison on identical workloads.
type FleetOptions struct {
	// Spec and Device describe the replicas (required Spec; zero
	// Device means H100).
	Spec   *model.Spec
	Device gpu.Device
	// Replicas is the fleet size (min 2 for anything fleet-y to move).
	Replicas int
	// CapacityBytes overrides each replica's KV budget (0 = the full
	// device budget) — small budgets force the tier spills the fleet
	// store serves peers from.
	CapacityBytes int64
	// HostTierBytes gives every replica manager a host-memory KV tier
	// (the fleet store's substrate; fleet runs always use swap
	// preemption when a tier is present).
	HostTierBytes int64
	// Router places arrivals (the zero value is round-robin, the
	// placement that maximizes churn).
	Router cluster.RouterPolicy
	// Requests, Rate, Groups, PrefixLen, SuffixLen and Phases shape
	// the churn workload (Phases popularity windows over the stream).
	Requests  int
	Rate      float64
	Groups    int
	PrefixLen int
	SuffixLen int
	Phases    int
	// SLOTTFT is the fleet TTFT target; Deadline the per-request E2E
	// budget for goodput (0 = none).
	SLOTTFT  time.Duration
	Deadline time.Duration
	// Seed drives the deterministic workload generator.
	Seed int64
	// Fleet is the policy under test: store on/off, migration on/off,
	// drain schedule.
	Fleet cluster.FleetPolicy
}

// RequestCount is the number of requests ChurnWorkload generates
// (Requests rounded to whole groups), without generating them.
func (o FleetOptions) RequestCount() int {
	perGroup := o.Requests / o.Groups
	if perGroup < 1 {
		perGroup = 1
	}
	return o.Groups * perGroup
}

// ChurnWorkload builds the options' seeded replica-churn stream:
// phase-shifted group popularity, Poisson arrivals, uniform deadlines.
func ChurnWorkload(o FleetOptions) []workload.Request {
	perGroup := o.Requests / o.Groups
	if perGroup < 1 {
		perGroup = 1
	}
	gen := workload.NewGen(o.Seed)
	reqs := gen.ChurnGroups(o.Groups, perGroup, o.PrefixLen, o.SuffixLen, o.Phases)
	gen.PoissonArrivals(reqs, o.Rate)
	if o.Deadline > 0 {
		workload.SetDeadlines(reqs, o.Deadline)
	}
	return reqs
}

// RunFleet drives the options' churn workload through a fresh
// cluster's ServeOnline under the given fleet policy. A fresh cluster
// per call keeps variants comparable — every policy starts from cold
// caches and an empty directory on the identical seeded stream.
func RunFleet(o FleetOptions) (*cluster.Result, error) {
	mode := engine.PreemptRecompute
	if o.HostTierBytes > 0 {
		mode = engine.PreemptSwap
	}
	c, err := cluster.New(cluster.Config{
		Spec:          o.Spec,
		Device:        o.Device,
		Replicas:      o.Replicas,
		CapacityBytes: o.CapacityBytes,
		Policy:        o.Router,
		SLOTTFT:       o.SLOTTFT,
		HostTierBytes: o.HostTierBytes,
		PreemptMode:   mode,
		Fleet:         o.Fleet,
	})
	if err != nil {
		return nil, err
	}
	return c.ServeOnline(ChurnWorkload(o))
}
