package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"jenga/internal/cluster"
	"jenga/internal/workload"
)

// ScaleOptions sizes one RunScale pass. The zero value is not runnable;
// callers set at least Requests (DefaultScaleOptions fills the rest).
type ScaleOptions struct {
	// Requests is the workload length (streamed, never materialized in
	// the ServeStream path).
	Requests int
	// Replicas is the fleet size; Shards the event-loop count.
	Replicas int
	Shards   int
	// Rate is the Poisson arrival rate (requests per simulated second).
	Rate float64
	// Groups/PrefixLen/SuffixLen shape the PrefixGroups workload.
	Groups    int
	PrefixLen int
	SuffixLen int
	// Mailbox and SnapshotEvery pass through to StreamConfig.
	Mailbox       int
	SnapshotEvery time.Duration
	// Seed drives both the workload and arrival generators.
	Seed int64
	// NewSource, when non-nil, overrides the built-in PrefixGroups
	// stream: it must return a fresh source yielding about Requests
	// monotone-arrival requests each call (callers pick the workload,
	// e.g. jengabench -stream-workload).
	NewSource func(opt ScaleOptions) workload.Source
}

// DefaultScaleOptions fills unset fields with the committed scale
// scorecard's shape: a 16-replica fleet under a high-rate shared-prefix
// stream.
func DefaultScaleOptions(opt ScaleOptions) ScaleOptions {
	if opt.Requests <= 0 {
		opt.Requests = 100_000
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 16
	}
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	if opt.Rate <= 0 {
		opt.Rate = 4000
	}
	if opt.Groups <= 0 {
		opt.Groups = 64
	}
	if opt.PrefixLen <= 0 {
		opt.PrefixLen = 512
	}
	if opt.SuffixLen <= 0 {
		opt.SuffixLen = 48
	}
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	// The workload is Groups interleaved round-robin streams, so the
	// request count rounds up to a whole number of rounds.
	perGroup := (opt.Requests + opt.Groups - 1) / opt.Groups
	opt.Requests = perGroup * opt.Groups
	return opt
}

// ScaleResult is one scale-harness measurement: simulated outcome plus
// the wall-clock and memory cost of producing it.
type ScaleResult struct {
	Requests int
	Replicas int
	Shards   int
	// Finished/HitRate/SimDuration/ReqPerSimSec summarize the simulated
	// run (fidelity anchors: these must not move with Shards).
	Finished     int
	HitRate      float64
	SimDuration  time.Duration
	ReqPerSimSec float64
	// Wall is the harness wall time; ReqPerWallSec the simulator's
	// processing rate (requests per wall second).
	Wall          time.Duration
	ReqPerWallSec float64
	// PeakHeapBytes is the maximum sampled live heap during the run —
	// the bounded-memory evidence for streamed workloads.
	PeakHeapBytes int64
}

// scaleCluster builds the fleet the scale harness drives: prefix-
// affinity routing (load-oblivious, so results are bit-identical at
// every shard count) over textSpec replicas.
func scaleCluster(opt ScaleOptions) (*cluster.Cluster, error) {
	return cluster.New(cluster.Config{
		Spec:          textSpec("bench-scale"),
		Replicas:      opt.Replicas,
		Policy:        cluster.PrefixAffinity,
		CapacityBytes: 64 << 20,
	})
}

// scaleSource builds the streamed workload: Poisson arrivals over
// interleaved prefix groups, one Gen per pipeline stage (or the
// caller's NewSource override).
func scaleSource(opt ScaleOptions) workload.Source {
	if opt.NewSource != nil {
		return opt.NewSource(opt)
	}
	perGroup := (opt.Requests + opt.Groups - 1) / opt.Groups
	gen := workload.NewGen(opt.Seed)
	src := gen.PrefixGroupsSource(opt.Groups, perGroup, opt.PrefixLen, opt.SuffixLen)
	return workload.PoissonSource(src, workload.NewGen(opt.Seed+1), opt.Rate)
}

// heapWatcher samples the live heap until stopped.
type heapWatcher struct {
	peak int64
	stop chan struct{}
	wg   sync.WaitGroup
}

func watchHeap() *heapWatcher {
	// Collect the previous run's garbage first so the peak measures
	// this run, not its predecessor's leftovers.
	runtime.GC()
	w := &heapWatcher{stop: make(chan struct{})}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		var ms runtime.MemStats
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if h := int64(ms.HeapAlloc); h > atomic.LoadInt64(&w.peak) {
				atomic.StoreInt64(&w.peak, h)
			}
			select {
			case <-w.stop:
				return
			case <-t.C:
			}
		}
	}()
	return w
}

func (w *heapWatcher) done() int64 {
	close(w.stop)
	w.wg.Wait()
	return w.peak
}

// RunScale drives one streamed ServeStream pass at the given shape and
// returns its scorecard row.
func RunScale(opt ScaleOptions) (ScaleResult, error) {
	opt = DefaultScaleOptions(opt)
	c, err := scaleCluster(opt)
	if err != nil {
		return ScaleResult{}, err
	}
	w := watchHeap()
	start := time.Now()
	res, err := c.ServeStream(scaleSource(opt), cluster.StreamConfig{
		Shards:        opt.Shards,
		Mailbox:       opt.Mailbox,
		SnapshotEvery: opt.SnapshotEvery,
	})
	wall := time.Since(start)
	peak := w.done()
	if err != nil {
		return ScaleResult{}, err
	}
	return scaleRow(opt, res, wall, peak), nil
}

// RunScaleSerial is RunScale over the serial ServeOnline path — the
// same workload materialized into a slice — the baseline the streamed
// path's algorithmic speedup is measured against. Shards reports 0.
func RunScaleSerial(opt ScaleOptions) (ScaleResult, error) {
	opt = DefaultScaleOptions(opt)
	c, err := scaleCluster(opt)
	if err != nil {
		return ScaleResult{}, err
	}
	w := watchHeap()
	reqs := workload.Collect(scaleSource(opt))
	start := time.Now()
	res, err := c.ServeOnline(reqs)
	wall := time.Since(start)
	peak := w.done()
	if err != nil {
		return ScaleResult{}, err
	}
	row := scaleRow(opt, res, wall, peak)
	row.Shards = 0
	return row, nil
}

func scaleRow(opt ScaleOptions, res *cluster.Result, wall time.Duration, peak int64) ScaleResult {
	out := ScaleResult{
		Requests:      opt.Requests,
		Replicas:      opt.Replicas,
		Shards:        opt.Shards,
		Finished:      res.Finished,
		HitRate:       res.HitRate,
		SimDuration:   res.Duration,
		ReqPerSimSec:  res.ReqPerSec,
		Wall:          wall,
		PeakHeapBytes: peak,
	}
	if wall > 0 {
		out.ReqPerWallSec = float64(opt.Requests) / wall.Seconds()
	}
	return out
}
