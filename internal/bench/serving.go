package bench

import (
	"time"

	"jenga/internal/cluster"
	"jenga/internal/engine"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/sched"
	"jenga/internal/workload"
)

// ServingOptions configures one run of the streaming-serving policy
// benchmark: a seeded shared-prefix Poisson stream with priority
// classes and deadlines, driven through a fresh cluster's online path
// under one scheduling policy. jengabench -stream runs it once per
// -sched value so BENCH_serving.json records a per-policy
// goodput/SLO-attainment row.
type ServingOptions struct {
	// Spec and Device describe the replicas (required Spec; zero
	// Device means H100).
	Spec   *model.Spec
	Device gpu.Device
	// Replicas is the fleet size (min 1).
	Replicas int
	// CapacityBytes overrides each replica's KV budget (0 = the full
	// device budget) — the knob that makes the stream memory-pressured
	// enough for preemption and tiering to matter.
	CapacityBytes int64
	// Router places arrivals; Admission and Scheduler forward to
	// every replica engine.
	Router    cluster.RouterPolicy
	Admission engine.AdmissionPolicy
	Scheduler sched.Scheduler
	// HostTierBytes gives every replica manager a host-memory KV
	// tier; PreemptMode selects recompute- or swap-based preemption
	// (swap pays off only with a tier to swap into).
	HostTierBytes int64
	PreemptMode   engine.PreemptMode
	// Requests, Rate, Groups, PrefixLen and SuffixLen shape the
	// shared-prefix workload (Rate in req/s; Groups distinct shared
	// prefixes).
	Requests  int
	Rate      float64
	Groups    int
	PrefixLen int
	SuffixLen int
	// PrioClasses assigns request i priority i mod PrioClasses
	// (≤1 leaves every priority 0).
	PrioClasses int
	// SLOTTFT is the fleet TTFT target; Deadline the per-request E2E
	// budget (0 = none).
	SLOTTFT  time.Duration
	Deadline time.Duration
	// Seed drives the deterministic workload generator.
	Seed int64
}

// RequestCount is the number of requests ServingWorkload generates
// (Requests rounded to whole prefix groups), without generating them.
func (o ServingOptions) RequestCount() int {
	perGroup := o.Requests / o.Groups
	if perGroup < 1 {
		perGroup = 1
	}
	return o.Groups * perGroup
}

// ServingWorkload builds the options' seeded request stream: prefix
// groups, Poisson arrivals, round-robin priority classes, uniform
// deadlines.
func ServingWorkload(o ServingOptions) []workload.Request {
	perGroup := o.Requests / o.Groups
	if perGroup < 1 {
		perGroup = 1
	}
	gen := workload.NewGen(o.Seed)
	reqs := gen.PrefixGroups(o.Groups, perGroup, o.PrefixLen, o.SuffixLen)
	gen.PoissonArrivals(reqs, o.Rate)
	if o.PrioClasses > 1 {
		for i := range reqs {
			reqs[i].Priority = i % o.PrioClasses
		}
	}
	if o.Deadline > 0 {
		workload.SetDeadlines(reqs, o.Deadline)
	}
	return reqs
}

// RunServing drives the options' workload through a fresh cluster's
// ServeOnline: routing sees live replica state, admission sheds at
// arrival, the scheduler orders admission and preemption. A fresh
// cluster per call keeps policies comparable — every policy starts
// from cold caches on the identical seeded stream.
func RunServing(o ServingOptions) (*cluster.Result, error) {
	c, err := cluster.New(cluster.Config{
		Spec:          o.Spec,
		Device:        o.Device,
		Replicas:      o.Replicas,
		CapacityBytes: o.CapacityBytes,
		Policy:        o.Router,
		Admission:     o.Admission,
		Scheduler:     o.Scheduler,
		SLOTTFT:       o.SLOTTFT,
		HostTierBytes: o.HostTierBytes,
		PreemptMode:   o.PreemptMode,
	})
	if err != nil {
		return nil, err
	}
	return c.ServeOnline(ServingWorkload(o))
}
