package core

import "testing"

// TestCrashResetColdRestart: CrashReset wipes the GPU heap, the
// prefix cache and the host tier — the manager restarts cold — while
// preserving pointer identity and the installed tier observer, so a
// restarted replica's new spills keep feeding the fleet directory
// through the same wiring.
func TestCrashResetColdRestart(t *testing.T) {
	m := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	obs := newRecObs()
	m.SetTierObserver(obs)
	spillAll(t, m)
	if st := m.TierStats(); st.HostUsed == 0 {
		t.Fatalf("setup: nothing spilled to the tier: %+v", st)
	}
	if len(obs.stored) == 0 {
		t.Fatal("setup: observer saw no stores")
	}

	if err := m.CrashReset(); err != nil {
		t.Fatal(err)
	}
	st := m.TierStats()
	if st.HostUsed != 0 || st.SwapOuts != 0 || st.SpilledBytes != 0 {
		t.Fatalf("tier not cold after crash: %+v", st)
	}
	probe := textSeq(9, 33)
	probe.PromptLen = 33
	if p := m.Lookup(probe); p != 0 {
		t.Fatalf("prefix cache survived the crash: Lookup = %d", p)
	}

	// The observer wiring survives the reset: new spills register.
	obs.stored = make(map[uint64]bool)
	spillAll(t, m)
	if len(obs.stored) == 0 {
		t.Fatal("observer lost across CrashReset")
	}
}

// TestNotePeerFetch: skip/fail counts accumulate into the tier stats
// and vanish without a tier.
func TestNotePeerFetch(t *testing.T) {
	m := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	m.NotePeerFetch(2, 1)
	m.NotePeerFetch(1, 0)
	if st := m.TierStats(); st.PeerSkips != 3 || st.PeerFails != 1 {
		t.Fatalf("peer fetch notes: skips %d fails %d", st.PeerSkips, st.PeerFails)
	}
	tierless, err := New(Config{Spec: flatSpec(), CapacityBytes: 1 << 16, TokensPerPage: 4,
		EnablePrefixCache: true})
	if err != nil {
		t.Fatal(err)
	}
	tierless.NotePeerFetch(1, 1) // must not panic; nowhere to record
	if st := tierless.TierStats(); st.PeerSkips != 0 || st.PeerFails != 0 {
		t.Fatalf("tierless manager recorded peer notes: %+v", st)
	}
}
