package core

import (
	"fmt"

	"jenga/internal/arena"
	"jenga/internal/model"
)

// Config configures a Jenga manager.
type Config struct {
	// Spec is the model architecture (required).
	Spec *model.Spec
	// CapacityBytes is the KV-cache memory budget (weights and runtime
	// reserve already subtracted by the caller).
	CapacityBytes int64
	// TokensPerPage is the token-group page granularity (default 16).
	TokensPerPage int
	// EnablePrefixCache keeps released pages as evictable cache and
	// publishes block hashes.
	EnablePrefixCache bool
	// Backed allocates real bytes behind the arena so layout can be
	// verified (tests/examples only).
	Backed bool
	// RequestAware enables §4.3 request-aware small-page placement.
	// Disabled only by the ablation benchmark.
	RequestAware bool
	// PolicyOverride, when non-nil, replaces the default policy derived
	// from a group's Kind (keyed by group name). This is the hook the
	// paper describes for plugging in new attention variants.
	PolicyOverride map[string]Policy
	// HostTierBytes is the host-memory KV tier budget (§8 tiered
	// offload). When at least one large page fits, whole-large-page
	// eviction spills instead of discarding, SwapOut preempts by
	// moving pages to host, and prefix Lookups restore tier-resident
	// blocks at claim time. 0 (or below one large page) disables the
	// tier entirely — allocator behavior is then bit-identical to an
	// untiered manager.
	HostTierBytes int64
}

// Stats counts allocator events since construction.
type Stats struct {
	// Allocs and Frees count small-page transitions.
	Allocs, Frees int64
	// SmallEvictions counts §5.4 step-5 single-page evictions.
	SmallEvictions int64
	// LargeEvictions counts §5.4 step-3 whole-large-page evictions.
	LargeEvictions int64
	// LargeReclaims counts large pages returned by request completion.
	LargeReclaims int64
	// SwapOuts counts large pages spilled to the host tier; SwapIns
	// counts blocks restored from it (0 without a tier).
	SwapOuts, SwapIns int64
	// RestoredTokens counts prefix tokens served from the host tier
	// instead of being recomputed.
	RestoredTokens int64
	// Forks counts Fork calls; CowCopies and CowCopyBytes count the
	// copy-on-write page privatizations (and their copied KV volume)
	// that divergent writes on shared pages triggered.
	Forks        int64
	CowCopies    int64
	CowCopyBytes int64
}

// pageStatus is the three-state life cycle of §5.4.
type pageStatus uint8

const (
	pageEmpty  pageStatus = iota // no valid KV, allocatable
	pageUsed                     // referenced by ≥1 running request
	pageCached                   // valid KV, unreferenced, evictable
)

// page is per-small-page metadata.
type page struct {
	status pageStatus
	ref    int32
	// filled is the number of token slots written (≤ tokensPerPage).
	filled int32
	// dead is the number of filled slots whose KV the architecture no
	// longer needs but that share the page with live slots.
	dead int32
	// assoc is the request the page is associated with (§4.3).
	assoc RequestID
	// hash is the block identity once the block is complete; hashed
	// reports the page owns the index entry for that hash.
	hash     uint64
	complete bool
	hashed   bool
	// lastAccess and priority order eviction (§5.1).
	lastAccess Tick
	priority   int64
	// expired marks cached pages holding KV outside the architecture's
	// dependency horizon (out-of-window tokens). §3.3: such pages are
	// prioritized for eviction over any in-window page, regardless of
	// recency.
	expired bool
}

// group is the per-layer-type allocator + evictor state.
type group struct {
	idx  int
	spec model.KVGroup
	pol  Policy
	view *arena.View

	smallBytes int // small-page size
	slotUnit   int // bytes per token slot across the group's layers
	tpp        int // token slots per page (1 for Mamba)
	ratio      int // small pages per large page

	pages []page // indexed by SmallPageID

	// index maps published block hash → page (prefix cache).
	index map[uint64]arena.SmallPageID
	// freeByReq holds empty pages grouped by associated request
	// (lazy — entries validated on pop).
	freeByReq map[RequestID][]arena.SmallPageID
	// free holds every empty page in group-owned large pages (strictly
	// maintained): a hierarchical bitmap whose pop is O(1) and always
	// yields the lowest free ID (deterministic §5.4 steps 1/4).
	free freePool
	// evict orders cached pages by (lastAccess, -priority).
	evict pageHeap

	// counters for Usage (pages in the "used" state only for slots).
	ownedLarge  int
	nUsed       int
	nCached     int
	filledSlots int64
	deadSlots   int64
	// extraRefs counts references beyond the first across all used
	// pages (Σ max(ref-1, 0)); extraRefs × smallBytes is the group's
	// contribution to Usage.SharedBytes.
	extraRefs int64

	// Lookup scratch, reused across calls: nothing returned from
	// Lookup outlives the call, so reuse is safe and makes the warm
	// lookup allocation-free. The content-derived parts (ProjCount,
	// lkProj, lkHashes) are additionally cached across calls keyed on
	// the sequence below — a warm lookup over a prompt already seen
	// extends the projection and hash chain incrementally instead of
	// rehashing the whole prefix. Present/presentRun are rebuilt in
	// full every call (the index mutates between lookups, and
	// LookupFleet overlays peer presence in place).
	lkView   GroupSeqView
	lkProj   []Token
	lkHashes []uint64
	// Identity of the sequence the scratch above was built from.
	// The incremental path requires the same request ID and the same
	// backing array with an unchanged prefix; callers only ever append
	// to a live sequence's tokens, so (ID, base pointer, first/last
	// token at the cached length) identifies an append-only extension.
	lkSeqID   RequestID
	lkSeqBase *Token
	lkSeqLen  int
	lkFirst   Token
	lkLast    Token
}

func (g *group) isVision() bool { return g.spec.Kind == model.VisionEmbedding }

// Jenga is the two-level memory manager (§4, §5).
type Jenga struct {
	cfg Config
	geo *model.PageGeometry
	ar  *arena.Arena

	groups []*group
	byName map[string]int

	// large-page state, indexed by LargePageID.
	largeOwner []int32 // owning group index, -1 when free
	largeAssoc []RequestID
	cntUsed    []int32 // used small pages per large page
	cntCached  []int32 // cached small pages per large page
	// Incrementally maintained large-page eviction keys (§5.4 step 3):
	// cntExpired counts cached pages holding expired KV, largeTS is the
	// max last-access among cached pages, and largeDirty marks a
	// largeTS whose max-holder left the cached set (recomputed lazily
	// by largeTimestamp). Together they make eviction-key reads O(1)
	// instead of a rescan of every small page in the large page.
	cntExpired []int32
	largeTS    []Tick
	largeDirty []bool

	freeLarge  []arena.LargePageID
	largeEvict largeHeap

	reqs  map[RequestID]*reqState
	stats Stats

	// host is the optional second memory tier (nil without one), and
	// pendingH2D/pendingD2H the transfer bytes accumulated since the
	// last DrainTransfers — the engine charges them to its PCIe term.
	host       *hostTier
	pendingH2D int64
	pendingD2H int64
	// pendingCopy is the device-to-device copy volume copy-on-write
	// privatizations accumulated since the last DrainCopyBytes — the
	// engine charges it to the step's HBM copy term.
	pendingCopy int64

	// lkViews is the Lookup scratch for the per-group view list.
	lkViews []lookupView
}

var _ Manager = (*Jenga)(nil)

// DefaultPolicy returns the built-in policy for a group.
func DefaultPolicy(g *model.KVGroup) Policy {
	switch g.Kind {
	case model.SlidingWindow, model.PyramidWindow:
		return WindowPolicy{Window: g.Window}
	case model.Mamba:
		return MambaPolicy{Every: g.Checkpoint()}
	case model.CrossAttention:
		return ImageAtomicPolicy{}
	case model.VisionEmbedding:
		return VisionEmbedPolicy{}
	default:
		return FullPolicy{}
	}
}

// New builds a Jenga manager for the spec with LCM page geometry.
func New(cfg Config) (*Jenga, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("core: nil model spec")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.TokensPerPage == 0 {
		cfg.TokensPerPage = 16
	}
	if cfg.TokensPerPage < 0 {
		return nil, fmt.Errorf("core: negative tokensPerPage")
	}
	geo, err := cfg.Spec.Geometry(model.LCMPage, cfg.TokensPerPage)
	if err != nil {
		return nil, err
	}
	var ar *arena.Arena
	if cfg.Backed {
		ar, err = arena.NewBacked(cfg.CapacityBytes, geo.LargePageBytes)
	} else {
		ar, err = arena.New(cfg.CapacityBytes, geo.LargePageBytes)
	}
	if err != nil {
		return nil, err
	}
	if ar.NumLargePages() == 0 {
		return nil, fmt.Errorf("core: capacity %d below one large page (%d bytes)",
			cfg.CapacityBytes, geo.LargePageBytes)
	}

	m := &Jenga{
		cfg:        cfg,
		geo:        geo,
		ar:         ar,
		byName:     make(map[string]int, len(cfg.Spec.Groups)),
		largeOwner: make([]int32, ar.NumLargePages()),
		largeAssoc: make([]RequestID, ar.NumLargePages()),
		cntUsed:    make([]int32, ar.NumLargePages()),
		cntCached:  make([]int32, ar.NumLargePages()),
		cntExpired: make([]int32, ar.NumLargePages()),
		largeTS:    make([]Tick, ar.NumLargePages()),
		largeDirty: make([]bool, ar.NumLargePages()),
		reqs:       make(map[RequestID]*reqState),
	}
	for i := range m.largeOwner {
		m.largeOwner[i] = -1
	}
	// Free list in reverse so allocation proceeds from page 0 upward.
	m.freeLarge = make([]arena.LargePageID, 0, ar.NumLargePages())
	for i := ar.NumLargePages() - 1; i >= 0; i-- {
		m.freeLarge = append(m.freeLarge, arena.LargePageID(i))
	}

	for i := range cfg.Spec.Groups {
		gs := cfg.Spec.Groups[i]
		tpp := cfg.TokensPerPage
		if gs.Kind == model.Mamba {
			tpp = 1
		}
		small := geo.SmallPageBytes[gs.Name]
		view, err := ar.View(gs.Name, small, gs.Layers, tpp)
		if err != nil {
			return nil, err
		}
		pol := DefaultPolicy(&gs)
		if o, ok := cfg.PolicyOverride[gs.Name]; ok && o != nil {
			pol = o
		}
		g := &group{
			idx:        i,
			spec:       gs,
			pol:        pol,
			view:       view,
			smallBytes: small,
			slotUnit:   small / tpp,
			tpp:        tpp,
			ratio:      geo.Ratio[gs.Name],
			pages:      make([]page, ar.NumLargePages()*geo.Ratio[gs.Name]),
			index:      make(map[uint64]arena.SmallPageID),
			freeByReq:  make(map[RequestID][]arena.SmallPageID),
		}
		g.free.init(len(g.pages))
		m.groups = append(m.groups, g)
		m.byName[gs.Name] = i
	}
	if cfg.HostTierBytes >= int64(geo.LargePageBytes) {
		m.host = newHostTier(cfg.HostTierBytes, geo.LargePageBytes)
	}
	return m, nil
}

// Capacity implements Manager.
func (m *Jenga) Capacity() int64 { return m.ar.UsableBytes() }

// SupportsVisionCache implements Manager: true when the model declares
// a vision-embedding group.
func (m *Jenga) SupportsVisionCache() bool {
	for _, g := range m.groups {
		if g.isVision() {
			return true
		}
	}
	return false
}

// Geometry returns the LCM page geometry in use.
func (m *Jenga) Geometry() *model.PageGeometry { return m.geo }

// Stats returns allocator event counters.
func (m *Jenga) Stats() Stats { return m.stats }

// Arena exposes the underlying arena (for layout verification in tests).
func (m *Jenga) Arena() *arena.Arena { return m.ar }

// GroupView returns the arena view of a group (layout tests).
func (m *Jenga) GroupView(name string) (*arena.View, error) {
	gi, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown group %q", name)
	}
	return m.groups[gi].view, nil
}

// usage folds the group's aggregate counters into its Usage slice.
func (g *group) usage() GroupUsage {
	live := g.filledSlots - g.deadSlots
	tailEmpty := int64(g.nUsed)*int64(g.tpp) - g.filledSlots
	ownedEmpty := int64(g.ownedLarge*g.ratio - g.nUsed - g.nCached)
	return GroupUsage{
		Used:   live * int64(g.slotUnit),
		Cached: int64(g.nCached) * int64(g.smallBytes),
		Wasted: g.deadSlots*int64(g.slotUnit) +
			tailEmpty*int64(g.slotUnit) +
			ownedEmpty*int64(g.smallBytes),
	}
}

// Usage implements Manager. Used + Cached + Wasted + Free == Capacity.
func (m *Jenga) Usage() Usage {
	u := m.UsageTotals()
	u.PerGroup = make(map[string]GroupUsage, len(m.groups))
	for _, g := range m.groups {
		u.PerGroup[g.spec.Name] = g.usage()
	}
	return u
}

// UsageTotals implements Manager: the aggregate snapshot without the
// PerGroup map. All inputs are counters maintained on page transitions,
// so the call is allocation-free and O(groups) — the form the engine's
// admission check and KV-utilization sampling use every step.
func (m *Jenga) UsageTotals() Usage {
	var u Usage
	var allocatedLarge int64
	for _, g := range m.groups {
		gu := g.usage()
		u.Used += gu.Used
		u.Cached += gu.Cached
		u.Wasted += gu.Wasted
		u.SharedBytes += g.extraRefs * int64(g.smallBytes)
		allocatedLarge += int64(g.ownedLarge)
	}
	u.Free = m.Capacity() - allocatedLarge*int64(m.geo.LargePageBytes)
	if m.host != nil {
		u.HostUsed, u.HostCapacity = m.host.used, m.host.capacity
	}
	return u
}

// largeOf returns the large page containing small page p of group g.
func (m *Jenga) largeOf(g *group, p arena.SmallPageID) arena.LargePageID {
	return g.view.LargeOf(p)
}
