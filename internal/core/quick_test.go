package core

import (
	"errors"
	"math/rand"
	"testing"

	"jenga/internal/model"
)

// heteroSpec exercises four layer types at once.
func heteroSpec() *model.Spec {
	return &model.Spec{
		Name: "hetero", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 3, BytesPerToken: 64, Scope: model.ScopeText},
			{Name: "win", Kind: model.SlidingWindow, Layers: 2, BytesPerToken: 64, Window: 6, Scope: model.ScopeText},
			{Name: "cross", Kind: model.CrossAttention, Layers: 2, BytesPerToken: 64, Scope: model.ScopeImage},
			{Name: "mamba", Kind: model.Mamba, Layers: 1, StateBytes: 384, CheckpointEvery: 8},
		},
	}
}

// simSeq is the fuzzer's view of one in-flight request.
type simSeq struct {
	seq       *Sequence
	reserved  int
	committed int
}

// TestRandomOpsInvariants drives the manager with random interleaved
// reserve/commit/release/lookup traffic under tight memory and audits
// every counter and invariant after each operation. Failures here mean
// memory-accounting corruption.
func TestRandomOpsInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		for _, cache := range []bool{true, false} {
			t.Run("", func(t *testing.T) {
				runRandomOps(t, seed, cache)
			})
		}
	}
}

func runRandomOps(t *testing.T, seed int64, cache bool) {
	rng := rand.New(rand.NewSource(seed))
	spec := heteroSpec()
	geo, err := spec.Geometry(model.LCMPage, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tight: 24 large pages forces constant eviction and ErrNoSpace.
	m, err := New(Config{
		Spec: spec, CapacityBytes: int64(geo.LargePageBytes) * 24,
		TokensPerPage: 2, EnablePrefixCache: cache, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	live := map[RequestID]*simSeq{}
	var nextID RequestID = 1
	now := Tick(0)

	newSeq := func() *simSeq {
		n := 4 + rng.Intn(40)
		s := &Sequence{ID: nextID}
		nextID++
		// Shared pools of content so prefix hits actually happen.
		base := int32(rng.Intn(3) * 1000)
		for i := 0; i < n; i++ {
			img := rng.Intn(5) == 0
			s.Tokens = append(s.Tokens, Token{ID: base + int32(i), Image: img})
		}
		return &simSeq{seq: s}
	}

	for op := 0; op < 600; op++ {
		now++
		switch r := rng.Intn(10); {
		case r < 4 || len(live) == 0: // start or extend via reserve
			var ss *simSeq
			if len(live) == 0 || rng.Intn(3) == 0 {
				ss = newSeq()
				live[ss.seq.ID] = ss
			} else {
				ss = pickSeq(rng, live)
			}
			target := ss.reserved + 1 + rng.Intn(8)
			if target > len(ss.seq.Tokens) {
				target = len(ss.seq.Tokens)
			}
			err := m.Reserve(ss.seq, target, now)
			if err != nil && !errors.Is(err, ErrNoSpace) {
				t.Fatalf("reserve: %v", err)
			}
			if err == nil {
				ss.reserved = max(ss.reserved, target)
			} else {
				// Treat as preemption: release everything.
				m.Release(ss.seq, rng.Intn(2) == 0)
				delete(live, ss.seq.ID)
			}
		case r < 7: // commit some reserved tokens
			ss := pickSeq(rng, live)
			if ss.committed < ss.reserved {
				upTo := ss.committed + 1 + rng.Intn(ss.reserved-ss.committed)
				m.Commit(ss.seq, upTo, now)
				ss.committed = upTo
			}
		case r < 8: // lookup (pure)
			ss := newSeq()
			p := m.Lookup(ss.seq)
			if p < 0 || p >= len(ss.seq.Tokens) {
				t.Fatalf("lookup out of range: %d of %d", p, len(ss.seq.Tokens))
			}
		default: // release
			ss := pickSeq(rng, live)
			m.Release(ss.seq, rng.Intn(2) == 0)
			delete(live, ss.seq.ID)
		}
		audit(t, m)
	}
	// Drain.
	for _, ss := range live {
		m.Release(ss.seq, false)
	}
	audit(t, m)
}

func pickSeq(rng *rand.Rand, live map[RequestID]*simSeq) *simSeq {
	ids := make([]RequestID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	// Deterministic order for reproducibility.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return live[ids[rng.Intn(len(ids))]]
}

// TestLookupNeverExceedsCommitted: a prefix hit can only cover tokens
// some request actually committed with identical content.
func TestLookupNeverExceedsCommitted(t *testing.T) {
	m := newMgr(t, heteroSpec(), 1<<22, 2, true)
	a := textSeq(1, 20)
	if err := m.Reserve(a, 20, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(a, 12, 1) // only 12 of 20 committed
	m.Release(a, true)
	b := textSeq(2, 20)
	if p := m.Lookup(b); p > 12 {
		t.Errorf("lookup = %d exceeds committed 12", p)
	}
	audit(t, m)
}
