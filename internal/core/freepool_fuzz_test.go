package core

import (
	"sort"
	"testing"

	"jenga/internal/arena"
)

// FuzzFreePool drives the hierarchical-bitmap free pool with an
// arbitrary byte-encoded op sequence against a map+sort reference
// model. Each byte pair is one op: the low two bits of the first byte
// select toggle/pop/probe, the remaining 14 bits address a page in a
// pool sized to span two summary levels. After every op the pool must
// agree with the reference on membership, count, and — the §5.4
// determinism invariant — pop always returning the lowest free ID.
//
// CI runs it as a short timed fuzz (make fuzz) on top of the seeded
// corpus below, so the encoder keeps exploring op interleavings the
// handwritten randomized test never reaches.
func FuzzFreePool(f *testing.F) {
	// Seeded corpus: empty, single toggles, dense fill, fill-then-pop
	// churn, and a high-bit pattern that exercises the top summary
	// level.
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x02, 0x00})
	f.Add([]byte{0x00, 0x01, 0x04, 0x01, 0x00, 0x01, 0x05, 0x01})
	corpus := make([]byte, 0, 512)
	for i := 0; i < 128; i++ {
		corpus = append(corpus, byte(i<<2), byte(i)) // toggle a spread of IDs
		corpus = append(corpus, 0x01, 0x00)          // pop-check after each
	}
	f.Add(corpus)
	f.Add([]byte{0xfc, 0xff, 0x01, 0x00, 0xfc, 0xff, 0x02, 0x00})

	const pages = 1 << 14 // two summary levels above the bit level
	f.Fuzz(func(t *testing.T, data []byte) {
		var pool freePool
		pool.init(pages)
		ref := map[arena.SmallPageID]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] & 3
			id := arena.SmallPageID((int(data[i])>>2 | int(data[i+1])<<6) % pages)
			switch op {
			case 0, 3: // toggle membership (add/remove respect the contracts)
				if ref[id] {
					pool.remove(id)
					delete(ref, id)
				} else {
					pool.add(id)
					ref[id] = true
				}
			case 1: // pop-check: min must be the lowest free ID
				min, ok := pool.min()
				want, wantOK := refMin(ref)
				if ok != wantOK || (ok && min != want) {
					t.Fatalf("op %d: min = %d,%v, reference %d,%v", i, min, ok, want, wantOK)
				}
			case 2: // membership probe
				if pool.has(id) != ref[id] {
					t.Fatalf("op %d: has(%d) = %v, reference %v", i, id, pool.has(id), ref[id])
				}
			}
			if pool.len() != len(ref) {
				t.Fatalf("op %d: len = %d, reference %d", i, pool.len(), len(ref))
			}
		}
		// Drain via min: the pop order must be exactly ascending ID.
		ids := make([]arena.SmallPageID, 0, len(ref))
		for id := range ref {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, want := range ids {
			got, ok := pool.min()
			if !ok || got != want {
				t.Fatalf("drain: min = %d,%v, want %d (lowest-ID-first pop violated)", got, ok, want)
			}
			pool.remove(got)
		}
		if _, ok := pool.min(); ok || pool.len() != 0 {
			t.Fatalf("pool not empty after drain: len %d", pool.len())
		}
	})
}

// refMin is the reference model's lowest free ID.
func refMin(ref map[arena.SmallPageID]bool) (arena.SmallPageID, bool) {
	var best arena.SmallPageID
	found := false
	for id := range ref {
		if !found || id < best {
			best = id
			found = true
		}
	}
	return best, found
}
