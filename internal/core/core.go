// Package core implements Jenga's memory manager: a two-level (LCM
// large page / per-type small page) allocator with request-aware
// placement (§4) and a prefix-subset evictor with per-layer-type
// caching policies (§5).
//
// The package also defines the Manager interface that the serving
// engine programs against; the PagedAttention-style baselines in
// internal/baseline implement the same interface so every experiment
// swaps only the memory manager, exactly as the paper's evaluation
// does.
package core

import (
	"errors"
	"fmt"
)

// ErrNoSpace is returned by Reserve when the manager cannot find or
// evict enough memory for the requested tokens. The scheduler reacts by
// delaying admission or preempting a running request.
var ErrNoSpace = errors.New("core: insufficient KV cache memory")

// RequestID identifies a sequence for request-aware allocation.
type RequestID int64

// Tick is the simulated time used for LRU ordering. The engine supplies
// a monotonically increasing step counter.
type Tick int64

// Token is one sequence element as the memory manager sees it: a
// content identifier (for prefix-cache hashing) and a modality flag.
type Token struct {
	// ID is the token's content identity (vocabulary id or content
	// hash); two tokens with equal IDs at equal positions after equal
	// prefixes hash to the same block.
	ID int32
	// Image marks image tokens, which only image-scoped groups store.
	Image bool
}

// Sequence is the manager-facing view of one request.
type Sequence struct {
	// ID must be unique among concurrently live sequences.
	ID RequestID
	// Tag selects which model's KV groups apply when one manager serves
	// multiple models (§6.1); empty matches untagged groups only.
	Tag string
	// Tokens holds the prompt followed by generated tokens; the engine
	// appends as decoding progresses.
	Tokens []Token
	// PromptLen is the number of leading prompt tokens (0 = all).
	// Prefix-cache hits land at prompt boundaries, so window KV inside
	// the prompt's final window stays in the live eviction class even
	// after generated tokens slide the window past it; KV below that is
	// expired (§3.3) and evicted first.
	PromptLen int
}

// promptBound returns the effective prompt length.
func (s *Sequence) promptBound() int {
	if s.PromptLen <= 0 || s.PromptLen > len(s.Tokens) {
		return len(s.Tokens)
	}
	return s.PromptLen
}

// Manager is the KV-cache memory-management contract shared by Jenga
// and the baselines.
type Manager interface {
	// Lookup returns the longest model-wide cached prefix, in tokens,
	// for the sequence's current Tokens. It does not claim pages.
	Lookup(seq *Sequence) int
	// Reserve guarantees KV capacity for tokens [0, upTo) of seq,
	// claiming cached prefix pages on the sequence's first reservation
	// and evicting cache as needed. It returns ErrNoSpace if capacity
	// cannot be found; partial progress is kept (the sequence stays
	// valid and can be Released).
	Reserve(seq *Sequence, upTo int, now Tick) error
	// Commit marks tokens [0, upTo) computed: KV is now valid, block
	// hashes are published for prefix caching, per-policy last-access
	// times are updated, and KV that the architecture no longer needs
	// (outside sliding windows) is freed or demoted.
	Commit(seq *Sequence, upTo int, now Tick)
	// Release ends the sequence's use of its pages. With cache true,
	// fully committed pages remain as evictable prefix cache; otherwise
	// everything returns to the free pool.
	Release(seq *Sequence, cache bool)
	// Usage returns the current memory accounting snapshot.
	Usage() Usage
	// UsageTotals returns the same snapshot without the PerGroup map —
	// the allocation-free form per-step hot paths (admission checks,
	// KV-utilization sampling) call. Totals must equal Usage()'s.
	UsageTotals() Usage
	// Capacity returns the total KV bytes under management.
	Capacity() int64
	// CachedPrefix returns the prefix length served from cache at the
	// sequence's first reservation (0 before that or on a miss).
	CachedPrefix(seq *Sequence) int
	// EncodeImages stores vision embeddings for image tokens among the
	// first uptoFull tokens (no-op for managers without an embedding
	// cache — the engine then re-runs the encoder per prefill chunk).
	EncodeImages(seq *Sequence, uptoFull int, now Tick) error
	// DropImages frees embeddings already consumed by chunked prefill.
	DropImages(seq *Sequence, uptoFull int)
	// SupportsVisionCache reports whether EncodeImages actually caches.
	SupportsVisionCache() bool
	// Footprint estimates the bytes the sequence needs resident at
	// steady state (prompt KV per the architecture's dependency
	// patterns, Mamba states and checkpoints, vision embeddings). The
	// scheduler admits a request only when Footprint fits in free plus
	// evictable memory — vLLM's can_allocate admission check.
	Footprint(seq *Sequence) int64
}

// GroupUsage is the per-layer-type slice of a Usage snapshot.
type GroupUsage struct {
	// Used is bytes holding KV that future computation may read.
	Used int64
	// Cached is bytes in evictable prefix-cache pages.
	Cached int64
	// Wasted is allocated bytes holding no useful KV: dead slots
	// (out-of-window tokens the manager cannot free), tokens stored in
	// layers that never read them, tail slots of partially filled
	// pages, and small pages stranded inside partially used large pages.
	Wasted int64
}

// Usage is a memory accounting snapshot. Used + Cached + Wasted + Free
// equals Capacity(); the host-tier fields account a separate memory
// pool and are not part of that conservation sum.
type Usage struct {
	Used   int64
	Cached int64
	Wasted int64
	// Free is unallocated bytes (plus the unusable remainder beyond the
	// last whole large page).
	Free int64
	// SharedBytes is the KV volume saved by block sharing: every page
	// referenced by r holders contributes (r-1) × its size — bytes that
	// forked branches (and claimed prefixes) would each hold privately
	// without refcounted sharing. Shared pages are counted once in
	// Used, so SharedBytes is informational and not part of the
	// conservation sum.
	SharedBytes int64
	// HostUsed and HostCapacity are the host-memory KV tier's byte
	// accounting (both 0 for managers without a tier).
	HostUsed, HostCapacity int64
	// PerGroup breaks the totals down by layer type.
	PerGroup map[string]GroupUsage
}

// check panics with a formatted message when cond is false; it guards
// internal invariants whose violation means memory-accounting
// corruption (never user error).
func check(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("core: invariant violated: "+format, args...))
	}
}
