package core

import (
	"testing"

	"jenga/internal/model"
)

// specDecodeSpec merges a large target model and a small draft model
// into one manager via group tags (§6.1). Per-token KV: target 512,
// draft 128 → LCM page sharing at 512-byte granularity (tpp 1).
func specDecodeSpec() *model.Spec {
	return &model.Spec{
		Name: "spec-decode", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "t:self", Kind: model.FullAttention, Layers: 4, BytesPerToken: 128, Tag: "target"},
			{Name: "d:self", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128, Tag: "draft"},
		},
	}
}

// TestMultiModelSharedHeap: draft and target sequences allocate only
// their own groups, share the LCM pool, and exchange large pages.
func TestMultiModelSharedHeap(t *testing.T) {
	m := newMgr(t, specDecodeSpec(), 16*512, 1, false)
	tgt := textSeq(1, 8)
	tgt.Tag = "target"
	drf := textSeq(2, 8)
	drf.Tag = "draft"

	if err := m.Reserve(tgt, 8, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(tgt, 8, 1)
	if err := m.Reserve(drf, 8, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(drf, 8, 1)
	audit(t, m)

	u := m.Usage()
	if got := u.PerGroup["t:self"].Used; got != 8*512 {
		t.Errorf("target used = %d, want %d", got, 8*512)
	}
	if got := u.PerGroup["d:self"].Used; got != 8*128 {
		t.Errorf("draft used = %d, want %d", got, 8*128)
	}
	// Draft pages are 128 B inside 512 B large pages (ratio 4): 8 draft
	// tokens occupy 2 large pages exactly → zero draft waste.
	if got := u.PerGroup["d:self"].Wasted; got != 0 {
		t.Errorf("draft wasted = %d, want 0", got)
	}

	// Release the target; the draft can then grow into the freed large
	// pages — the §6.1 inter-model memory exchange.
	m.Release(tgt, false)
	drf.Tokens = append(drf.Tokens, textSeq(0, 24).Tokens...)
	if err := m.Reserve(drf, 32, 2); err != nil {
		t.Fatalf("draft growth into freed target pages failed: %v", err)
	}
	m.Commit(drf, 32, 2)
	audit(t, m)
	m.Release(drf, false)
	audit(t, m)
}

// TestMultiModelPrefixIsolation: identical token content under
// different tags must not cross-hit.
func TestMultiModelPrefixIsolation(t *testing.T) {
	m := newMgr(t, specDecodeSpec(), 64*512, 1, true)
	tgt := textSeq(1, 9)
	tgt.Tag = "target"
	if err := m.Reserve(tgt, 9, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(tgt, 9, 1)
	m.Release(tgt, true)

	// A draft sequence with identical tokens: its group's index is
	// empty, so no hit.
	drf := textSeq(2, 9)
	drf.Tag = "draft"
	if p := m.Lookup(drf); p != 0 {
		t.Errorf("draft lookup = %d, want 0 (per-model isolation)", p)
	}
	// A second target sequence hits.
	tgt2 := textSeq(3, 9)
	tgt2.Tag = "target"
	if p := m.Lookup(tgt2); p != 8 {
		t.Errorf("target lookup = %d, want 8", p)
	}
	audit(t, m)
}
