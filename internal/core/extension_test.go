package core

import (
	"errors"
	"testing"

	"jenga/internal/model"
)

// sinkTestPolicy is a StreamingLLM-style attention-sink policy used to
// exercise the KeepAlive extension.
type sinkTestPolicy struct {
	sink, window int
}

func (p sinkTestPolicy) AccessedFrom(projLen int) int {
	if projLen <= p.window {
		return 0
	}
	return projLen - p.window
}
func (p sinkTestPolicy) FreeBelow(projLen int) int {
	if projLen <= p.window {
		return 0
	}
	return projLen - p.window
}
func (p sinkTestPolicy) KeptBelow(int) int { return p.sink }
func (p sinkTestPolicy) ValidPrefix(v *GroupSeqView, prefix int) bool {
	pl := v.ProjCount[prefix]
	lo := 0
	if pl > p.window {
		lo = pl - p.window
	}
	keep := p.sink
	if keep > pl {
		keep = pl
	}
	return v.RangeCached(0, keep) && v.RangeCached(lo, pl)
}
func (sinkTestPolicy) BlockPriority(b int, _ uint64) int64 { return int64(b) }

func sinkSpec() *model.Spec {
	return &model.Spec{
		Name: "sink", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128},
			{Name: "sink", Kind: model.SlidingWindow, Layers: 1, BytesPerToken: 128, Window: 8},
		},
	}
}

func newSinkMgr(t *testing.T) *Jenga {
	t.Helper()
	m, err := New(Config{
		Spec: sinkSpec(), CapacityBytes: 1 << 20, TokensPerPage: 2,
		EnablePrefixCache: true, RequestAware: true,
		PolicyOverride: map[string]Policy{"sink": sinkTestPolicy{sink: 4, window: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestKeepAliveHoldsSinkPages: the always-live head stays held (used,
// unevictable) while the window slides far past it.
func TestKeepAliveHoldsSinkPages(t *testing.T) {
	m := newSinkMgr(t)
	seq := textSeq(1, 64)
	seq.PromptLen = 64
	if err := m.Reserve(seq, 64, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 64, 1)
	audit(t, m)
	g := m.groups[m.byName["sink"]]
	// Held pages: sink blocks 0,1 (tokens 0..3) + window blocks.
	r := m.reqs[seq.ID]
	rg := &r.g[1]
	if !rg.pages[0].held || !rg.pages[1].held {
		t.Error("sink blocks must stay held after the window slides past")
	}
	if rg.pages[5].held {
		t.Error("mid-sequence block should be demoted")
	}
	// Sink group used slots: 4 sink tokens + 8 window tokens = 12.
	wantUsed := int64(12 * 128)
	if got := m.Usage().PerGroup["sink"].Used; got != wantUsed {
		t.Errorf("sink used = %d, want %d", got, wantUsed)
	}
	m.Release(seq, true)
	audit(t, m)
	_ = g
}

// TestKeepAliveClaimCoversSink: a prefix hit claims both the sink head
// and the window tail.
func TestKeepAliveClaimCoversSink(t *testing.T) {
	m := newSinkMgr(t)
	seq := textSeq(1, 64)
	seq.PromptLen = 64
	if err := m.Reserve(seq, 64, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 64, 1)
	m.Release(seq, true)

	rep := textSeq(2, 64)
	rep.PromptLen = 64
	p := m.Lookup(rep)
	if p < 56 {
		t.Fatalf("expected a deep hit, got %d", p)
	}
	if err := m.Reserve(rep, 64, 2); err != nil {
		t.Fatal(err)
	}
	r := m.reqs[rep.ID]
	rg := &r.g[1]
	if !rg.pages[0].held || !rg.pages[1].held {
		t.Error("claim must re-hold the sink head blocks")
	}
	m.Commit(rep, 64, 2)
	audit(t, m)
	m.Release(rep, true)
	audit(t, m)
}

// TestPolicyOverrideReplacesDefault: a nil override entry is ignored;
// a real one replaces the kind-derived policy.
func TestPolicyOverride(t *testing.T) {
	m, err := New(Config{
		Spec: sinkSpec(), CapacityBytes: 1 << 20, TokensPerPage: 2,
		PolicyOverride: map[string]Policy{"sink": nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.groups[m.byName["sink"]].pol.(WindowPolicy); !ok {
		t.Error("nil override must keep the default WindowPolicy")
	}
	m2 := newSinkMgr(t)
	if _, ok := m2.groups[m2.byName["sink"]].pol.(sinkTestPolicy); !ok {
		t.Error("override must replace the default policy")
	}
}

// TestFootprintPerKind checks the admission estimate against the
// per-kind formulas.
func TestFootprintPerKind(t *testing.T) {
	m := newMgr(t, heteroSpec(), 1<<22, 2, true)
	seq := &Sequence{ID: 1}
	for i := 0; i < 20; i++ {
		seq.Tokens = append(seq.Tokens, Token{ID: int32(i + 1), Image: i%5 == 0})
	}
	// 4 image tokens, 16 text tokens.
	fp := m.Footprint(seq)
	// self: ceil(16/2)=8 pages × 3 layers×64×2 = 8×384
	// win (window 6): ceil(6/2)+1 = 4 pages × 2×64×2 = 4×256
	// cross: ceil(4/2)=2 pages × 2×64×2 = 2×256
	// mamba: 1 work + 20/8 checkpoints = 3 pages × 384
	want := int64(8*384 + 4*256 + 2*256 + 3*384)
	if fp != want {
		t.Errorf("footprint = %d, want %d", fp, want)
	}
	// Caching off: no checkpoint pages.
	m2 := newMgr(t, heteroSpec(), 1<<22, 2, false)
	fp2 := m2.Footprint(seq)
	if fp2 != want-2*384 {
		t.Errorf("no-cache footprint = %d, want %d", fp2, want-2*384)
	}
}

// TestDiagnose exercises the observability helper.
func TestDiagnose(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<20, 2, true)
	seq := textSeq(1, 17)
	if err := m.Reserve(seq, 17, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 17, 1)
	m.Release(seq, true)
	out := m.Diagnose(textSeq(2, 17))
	if out == "" {
		t.Fatal("expected diagnosis output")
	}
	for _, want := range []string{"full", "window", "contig="} {
		if !contains(out, want) {
			t.Errorf("diagnosis missing %q: %s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEncodeImagesNoSpace: vision encoding failure leaves a resumable
// cursor and a consistent manager.
func TestEncodeImagesNoSpace(t *testing.T) {
	m := newMgr(t, vlmSpec(), 2048, 2, false) // 2 large pages of 1024
	seq := mixedSeq(1, 24, 0)
	err := m.EncodeImages(seq, 24, 1)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	audit(t, m)
	m.Release(seq, false)
	audit(t, m)
	if got := m.Usage().Free; got != m.Capacity() {
		t.Errorf("free = %d after release, want full capacity", got)
	}
}
