package core

import (
	"math/bits"

	"jenga/internal/arena"
)

// freePool is the deterministic O(1) free-page set behind §5.4 steps 1
// and 4: a hierarchical bitmap over small-page IDs. add, remove and has
// are O(1); min — the allocation pop — walks one word per summary
// level (O(log₆₄ pages), ≤3 words for a 16M-page pool) and always
// returns the lowest free ID, so allocation order is deterministic and
// packs low pages first, unlike the randomized map iteration it
// replaces. The structure also stays fast when the pool is huge but
// nearly empty (a loaded replica at high-90s KV utilization), where a
// map pop degrades to a linear bucket scan.
type freePool struct {
	// bits is level 0: bit p is set iff small page p is free.
	bits []uint64
	// sums are the summary levels: bit w of sums[l] is set iff word w
	// of the level below is non-zero. The top level is a single word.
	sums [][]uint64
	n    int
}

// init sizes the pool for a fixed ID space [0, pages).
func (f *freePool) init(pages int) {
	words := (pages + 63) / 64
	if words == 0 {
		words = 1
	}
	f.bits = make([]uint64, words)
	for words > 1 {
		words = (words + 63) / 64
		f.sums = append(f.sums, make([]uint64, words))
	}
	f.n = 0
}

// len returns the number of free pages.
func (f *freePool) len() int { return f.n }

// has reports whether id is in the pool.
func (f *freePool) has(id arena.SmallPageID) bool {
	return f.bits[id>>6]&(1<<(uint(id)&63)) != 0
}

// add inserts id (must not be present).
//
//jenga:hotpath
func (f *freePool) add(id arena.SmallPageID) {
	w := int(id >> 6)
	f.bits[w] |= 1 << (uint(id) & 63)
	f.n++
	for _, s := range f.sums {
		b := uint(w) & 63
		w >>= 6
		if s[w]&(1<<b) != 0 {
			return
		}
		s[w] |= 1 << b
	}
}

// remove deletes id (must be present).
//
//jenga:hotpath
func (f *freePool) remove(id arena.SmallPageID) {
	w := int(id >> 6)
	f.bits[w] &^= 1 << (uint(id) & 63)
	f.n--
	if f.bits[w] != 0 {
		return
	}
	for _, s := range f.sums {
		b := uint(w) & 63
		w >>= 6
		s[w] &^= 1 << b
		if s[w] != 0 {
			return
		}
	}
}

// min returns the lowest free page ID.
//
//jenga:hotpath
func (f *freePool) min() (arena.SmallPageID, bool) {
	if f.n == 0 {
		return 0, false
	}
	w := 0
	for l := len(f.sums) - 1; l >= 0; l-- {
		w = w<<6 | bits.TrailingZeros64(f.sums[l][w])
	}
	return arena.SmallPageID(w<<6 | bits.TrailingZeros64(f.bits[w])), true
}
