package core

import (
	"testing"

	"jenga/internal/model"
)

// vlmSpec is a decoder-only VLM: full-attention KV over all tokens plus
// a vision-embedding cache over image tokens (LLaVA shape, §6.2).
func vlmSpec() *model.Spec {
	return &model.Spec{
		Name: "vlm", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 4, BytesPerToken: 64},
			{Name: "vision", Kind: model.VisionEmbedding, Layers: 1, BytesPerToken: 128, Scope: model.ScopeImage},
		},
		Vision: &model.VisionSpec{Params: 100, TokensPerImage: 8},
	}
}

// TestVisionEncodeConsumeFree walks the §6.2(a) timeline: encode fills
// the embedding cache, chunked prefill consumes it, DropImages frees
// consumed embeddings, so peak vision memory stays bounded.
func TestVisionEncodeConsumeFree(t *testing.T) {
	m := newMgr(t, vlmSpec(), 1<<20, 2, false)
	// Request [t0 i0 i1 i2 i3 t1] scaled up: 2 text, 8 image, 2 text.
	seq := &Sequence{ID: 1}
	seq.Tokens = append(seq.Tokens, Token{ID: 1}, Token{ID: 2})
	for i := 0; i < 8; i++ {
		seq.Tokens = append(seq.Tokens, Token{ID: int32(10 + i), Image: true})
	}
	seq.Tokens = append(seq.Tokens, Token{ID: 3}, Token{ID: 4})
	n := len(seq.Tokens)

	// Vision encoder runs once, producing all embeddings.
	if err := m.EncodeImages(seq, n, 1); err != nil {
		t.Fatal(err)
	}
	audit(t, m)
	vu := m.Usage().PerGroup["vision"]
	if want := int64(8 * 128); vu.Used != want {
		t.Fatalf("vision used after encode = %d, want %d", vu.Used, want)
	}

	// Chunked prefill: 4 tokens per chunk; embeddings freed as consumed.
	for _, chunk := range []int{4, 8, 12} {
		if err := m.Reserve(seq, chunk, Tick(chunk)); err != nil {
			t.Fatal(err)
		}
		m.Commit(seq, chunk, Tick(chunk))
		m.DropImages(seq, chunk)
		audit(t, m)
	}
	vu = m.Usage().PerGroup["vision"]
	if vu.Used != 0 {
		t.Errorf("vision used after consumption = %d, want 0", vu.Used)
	}
	su := m.Usage().PerGroup["self"]
	if want := int64(12 * 256); su.Used != want { // 4 layers × 64 = 256/token
		t.Errorf("self used = %d, want %d", su.Used, want)
	}
	m.Release(seq, true)
	audit(t, m)
	// Vision pages are never cached (embeddings are re-derivable).
	if got := m.Usage().PerGroup["vision"].Cached; got != 0 {
		t.Errorf("vision cached = %d, want 0", got)
	}
}

// TestVisionDoesNotGateKVHits: a model-wide prefix hit must not require
// vision embeddings to be cached (VisionEmbedPolicy.ValidPrefix).
func TestVisionDoesNotGateKVHits(t *testing.T) {
	m := newMgr(t, vlmSpec(), 1<<20, 2, true)
	seq := &Sequence{ID: 1}
	for i := 0; i < 4; i++ {
		seq.Tokens = append(seq.Tokens, Token{ID: int32(10 + i), Image: true})
	}
	for i := 0; i < 13; i++ {
		seq.Tokens = append(seq.Tokens, Token{ID: int32(i + 1)})
	}
	if err := m.EncodeImages(seq, len(seq.Tokens), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Reserve(seq, len(seq.Tokens), 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, len(seq.Tokens), 1)
	m.DropImages(seq, len(seq.Tokens))
	m.Release(seq, true)
	audit(t, m)

	// Same request again: KV is cached, vision embeddings are gone.
	seq2 := &Sequence{ID: 2, Tokens: seq.Tokens}
	if p := m.Lookup(seq2); p != 16 {
		t.Errorf("lookup = %d, want 16 (vision cache must not gate)", p)
	}
}

// TestDropImagesBeyondLengthClamps exercises the clamp path.
func TestDropImagesBeyondLengthClamps(t *testing.T) {
	m := newMgr(t, vlmSpec(), 1<<20, 2, false)
	seq := mixedSeq(1, 4, 2)
	if err := m.EncodeImages(seq, 6, 1); err != nil {
		t.Fatal(err)
	}
	m.DropImages(seq, 99)
	audit(t, m)
	if got := m.Usage().PerGroup["vision"].Used; got != 0 {
		t.Errorf("vision used = %d, want 0 after full drop", got)
	}
	m.Release(seq, false)
	audit(t, m)
}
