package core

import (
	"testing"

	"jenga/internal/arena"
	"jenga/internal/model"
)

// forkSpec is a single full-attention group — the simplest geometry
// for counting shared pages exactly.
func forkSpec() *model.Spec {
	return &model.Spec{
		Name: "fork", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "kv", Kind: model.FullAttention, Layers: 2, BytesPerToken: 128},
		},
	}
}

// commitSeq reserves and commits the sequence's full token list.
func commitAll(t *testing.T, m *Jenga, s *Sequence, now Tick) {
	t.Helper()
	if err := m.Reserve(s, len(s.Tokens), now); err != nil {
		t.Fatal(err)
	}
	m.Commit(s, len(s.Tokens), now)
}

// forkChild forks child off the committed parent.
func forkChild(t *testing.T, m *Jenga, parent *Sequence, id RequestID) *Sequence {
	t.Helper()
	child := &Sequence{ID: id, PromptLen: parent.PromptLen,
		Tokens: append([]Token(nil), parent.Tokens...)}
	if err := m.Fork(parent, child, 1); err != nil {
		t.Fatal(err)
	}
	return child
}

// extend appends one token with content unique to (seq, position) and
// commits it — the divergent decode step of one branch.
func extend(t *testing.T, m *Jenga, s *Sequence, now Tick) {
	t.Helper()
	pos := len(s.Tokens)
	s.Tokens = append(s.Tokens, Token{ID: int32(uint64(s.ID)*131+uint64(pos))%50000 + 1})
	if err := m.Reserve(s, len(s.Tokens), now); err != nil {
		t.Fatal(err)
	}
	m.Commit(s, len(s.Tokens), now)
}

// TestForkSharesWithoutAllocation: forking costs no device memory —
// the child rides the parent's pages, visible only in SharedBytes.
func TestForkSharesWithoutAllocation(t *testing.T) {
	m := newMgr(t, forkSpec(), 1<<20, 2, true)
	parent := textSeq(1, 16)
	commitAll(t, m, parent, 1)
	before := m.UsageTotals()
	if before.SharedBytes != 0 {
		t.Fatalf("unforked SharedBytes = %d", before.SharedBytes)
	}

	child := forkChild(t, m, parent, 2)
	audit(t, m)
	after := m.UsageTotals()
	if after.Used != before.Used || after.Free != before.Free {
		t.Errorf("fork changed device memory: used %d->%d free %d->%d",
			before.Used, after.Used, before.Free, after.Free)
	}
	// 16 tokens, tpp 2 → 8 pages, each now referenced twice.
	g := m.groups[0]
	if want := 8 * int64(g.smallBytes); after.SharedBytes != want {
		t.Errorf("SharedBytes = %d, want %d", after.SharedBytes, want)
	}
	if st := m.Stats(); st.Forks != 1 || st.CowCopies != 0 {
		t.Errorf("stats forks/cowCopies = %d/%d, want 1/0", st.Forks, st.CowCopies)
	}
	if got := m.CachedPrefix(child); got != 16 {
		t.Errorf("child CachedPrefix = %d, want 16", got)
	}
}

// TestForkCopyOnWrite: the first divergent write on a shared partial
// block privatizes it, charging the copy; complete shared blocks stay
// shared.
func TestForkCopyOnWrite(t *testing.T) {
	m, err := New(Config{
		Spec: forkSpec(), CapacityBytes: 1 << 20, TokensPerPage: 2,
		EnablePrefixCache: true, RequestAware: true, Backed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 15 tokens → blocks 0..6 complete, block 7 holds one token.
	parent := textSeq(1, 15)
	commitAll(t, m, parent, 1)
	child := forkChild(t, m, parent, 2)
	shared := m.UsageTotals().SharedBytes

	// Child's first decode lands in shared partial block 7 → CoW.
	extend(t, m, child, 2)
	audit(t, m)
	g := m.groups[0]
	st := m.Stats()
	if st.CowCopies != 1 {
		t.Fatalf("CowCopies = %d, want 1", st.CowCopies)
	}
	if want := int64(g.slotUnit); st.CowCopyBytes != want {
		t.Errorf("CowCopyBytes = %d, want %d (one filled slot)", st.CowCopyBytes, want)
	}
	if got := m.DrainCopyBytes(); got != st.CowCopyBytes {
		t.Errorf("DrainCopyBytes = %d, want %d", got, st.CowCopyBytes)
	}
	if got := m.DrainCopyBytes(); got != 0 {
		t.Errorf("second DrainCopyBytes = %d, want 0", got)
	}
	// One page went private; the complete blocks remain shared.
	if got, want := m.UsageTotals().SharedBytes, shared-int64(g.smallBytes); got != want {
		t.Errorf("SharedBytes after CoW = %d, want %d", got, want)
	}

	// The parent's divergent decode now writes its own (still-shared →
	// second CoW? No: parent's block 7 is no longer shared, ref fell
	// back to 1 when the child copied — no further copy.
	extend(t, m, parent, 3)
	audit(t, m)
	if st := m.Stats(); st.CowCopies != 1 {
		t.Errorf("parent extension copied again: CowCopies = %d", st.CowCopies)
	}
}

// TestForkLifecycleRefcounts drives every release-shaped path against
// a live fork sibling: eviction pressure, host-tier spill, both
// preemption flavors and cancellation must all respect the nonzero
// refcount — the survivor keeps decoding on intact pages afterwards.
func TestForkLifecycleRefcounts(t *testing.T) {
	cases := []struct {
		name string
		op   func(t *testing.T, m *Jenga, parent, child *Sequence)
	}{
		{"finish parent", func(t *testing.T, m *Jenga, parent, child *Sequence) {
			m.Release(parent, true) // normal completion
		}},
		{"cancel parent", func(t *testing.T, m *Jenga, parent, child *Sequence) {
			m.Release(parent, false) // cancellation frees nothing shared
		}},
		{"preempt parent recompute", func(t *testing.T, m *Jenga, parent, child *Sequence) {
			m.Release(parent, true)
			// Re-admission: the shared prefix is still claimable (the
			// child holds the pages live and their hashes published).
			if err := m.Reserve(parent, len(parent.Tokens), 5); err != nil {
				t.Fatal(err)
			}
			if got := m.CachedPrefix(parent); got < 14 {
				t.Errorf("re-admission claimed %d of 15 shared tokens", got)
			}
			m.Commit(parent, len(parent.Tokens), 5)
		}},
		{"preempt parent swap", func(t *testing.T, m *Jenga, parent, child *Sequence) {
			// Swap-out must not spill pages the child still uses
			// (spillLarge skips any large page with used smalls).
			m.SwapOut(parent)
		}},
		{"evict under pressure", func(t *testing.T, m *Jenga, parent, child *Sequence) {
			m.Release(parent, true)
			// Fill the pool: eviction may take every cached page but
			// never the child's used (shared) ones.
			hog := textSeq(99, 80)
			hog.Tokens[0].ID = 31337
			if err := m.Reserve(hog, len(hog.Tokens), 6); err != nil {
				t.Fatal(err)
			}
			m.Commit(hog, len(hog.Tokens), 6)
			m.Release(hog, false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(Config{
				Spec: forkSpec(), CapacityBytes: 1 << 15, TokensPerPage: 2,
				EnablePrefixCache: true, RequestAware: true, Backed: true,
				HostTierBytes: 1 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			parent := textSeq(1, 15)
			commitAll(t, m, parent, 1)
			child := forkChild(t, m, parent, 2)
			extend(t, m, child, 2) // diverge: child owns its tail block
			audit(t, m)

			tc.op(t, m, parent, child)
			audit(t, m)

			// The child keeps decoding on intact pages.
			for i := 0; i < 4; i++ {
				extend(t, m, child, Tick(10+i))
			}
			audit(t, m)
			m.Release(child, true)
			if r, ok := m.reqs[parent.ID]; ok && r != nil {
				m.Release(parent, false)
			}
			audit(t, m)
			if u := m.UsageTotals(); u.SharedBytes != 0 {
				t.Errorf("SharedBytes = %d after all releases", u.SharedBytes)
			}
		})
	}
}

// TestForkMamba: finalized checkpoints are shared; the in-place-mutated
// working state (and any unfinalized checkpoint) is copied eagerly.
func TestForkMamba(t *testing.T) {
	m := newMgr(t, mambaSpec(4), 1<<20, 2, true)
	parent := textSeq(1, 9) // 2 finalized ckpts (at 4, 8) + working state
	commitAll(t, m, parent, 1)
	base := m.Stats()
	child := forkChild(t, m, parent, 2)
	audit(t, m)
	if st := m.Stats(); st.CowCopies <= base.CowCopies {
		t.Errorf("Mamba fork must eagerly copy the working state (CowCopies %d -> %d)",
			base.CowCopies, st.CowCopies)
	}
	if m.UsageTotals().SharedBytes == 0 {
		t.Error("finalized checkpoints and attention blocks should be shared")
	}
	// Both branches decode independently across checkpoint boundaries.
	for i := 0; i < 5; i++ {
		extend(t, m, parent, Tick(3+i))
		extend(t, m, child, Tick(3+i))
	}
	audit(t, m)
	m.Release(parent, true)
	m.Release(child, true)
	audit(t, m)
}

// TestForkErrors: the Fork preconditions.
func TestForkErrors(t *testing.T) {
	m := newMgr(t, forkSpec(), 1<<20, 2, true)
	parent := textSeq(1, 8)
	if err := m.Fork(parent, textSeq(2, 8), 1); err == nil {
		t.Error("fork of an unknown parent should fail")
	}
	commitAll(t, m, parent, 1)
	forkChild(t, m, parent, 2)
	if err := m.Fork(parent, textSeq(2, 8), 1); err == nil {
		t.Error("fork onto a live child ID should fail")
	}
	// An uncommitted reservation makes the parent non-quiescent.
	parent.Tokens = append(parent.Tokens, Token{ID: 42})
	if err := m.Reserve(parent, 9, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Fork(parent, textSeq(3, 9), 2); err == nil {
		t.Error("fork of a parent with an uncommitted reservation should fail")
	}
	audit(t, m)
}

// FuzzForkLifecycle drives random fork/extend/release sequences on a
// backed arena against a map-based reference of every live branch's
// committed tokens. Every committed slot carries a fingerprint of its
// token; any sharing bug — a missing copy-on-write (one branch's write
// visible in a sibling) or a premature free (content lost while a
// sibling still holds the block) — corrupts a read-back.
func FuzzForkLifecycle(f *testing.F) {
	f.Add([]byte{0, 4, 2, 0, 1, 1, 1, 0, 3, 0})
	f.Add([]byte{0, 8, 2, 0, 2, 0, 1, 1, 1, 2, 4, 0, 1, 0})
	f.Add([]byte{0, 15, 2, 0, 2, 0, 2, 0, 1, 3, 1, 2, 1, 1, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := New(Config{
			Spec: forkSpec(), CapacityBytes: 1 << 15, TokensPerPage: 2,
			EnablePrefixCache: true, RequestAware: true, Backed: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := m.groups[0]

		// Reference model: every live branch's committed token list.
		type ref struct {
			seq *Sequence
		}
		var live []*ref
		nextID := RequestID(1)
		now := Tick(1)

		// stamp writes the fingerprint of tokens [from, to) into the
		// request's committed slots.
		stamp := func(s *Sequence, from, to int) {
			r := m.reqs[s.ID]
			rg := &r.g[0]
			for pos := from; pos < to; pos++ {
				pr := rg.pages[pos/g.tpp]
				if !pr.held {
					continue
				}
				kv, err := g.view.Kernel(0, []arena.SmallPageID{pr.id})
				if err != nil {
					t.Fatal(err)
				}
				fp := arena.TokenFingerprint(uint64(s.Tokens[pos].ID), 0, pos)
				if err := kv.WriteFingerprint(0, pos%g.tpp, fp); err != nil {
					t.Fatal(err)
				}
			}
		}
		// verify reads every live branch's committed slots back.
		verify := func() {
			for _, rf := range live {
				r := m.reqs[rf.seq.ID]
				rg := &r.g[0]
				for pos := 0; pos < r.committed; pos++ {
					pr := rg.pages[pos/g.tpp]
					if !pr.held {
						t.Fatalf("req %d: committed block %d not held", rf.seq.ID, pos/g.tpp)
					}
					kv, err := g.view.Kernel(0, []arena.SmallPageID{pr.id})
					if err != nil {
						t.Fatal(err)
					}
					got, err := kv.ReadFingerprint(0, pos%g.tpp)
					if err != nil {
						t.Fatal(err)
					}
					want := arena.TokenFingerprint(uint64(rf.seq.Tokens[pos].ID), 0, pos)
					if got != want {
						t.Fatalf("req %d pos %d: fingerprint %#x, want %#x (CoW aliasing)",
							rf.seq.ID, pos, got, want)
					}
				}
			}
		}
		drop := func(i int) { live = append(live[:i], live[i+1:]...) }

		for i := 0; i+1 < len(data) && len(live) < 24; i += 2 {
			op, arg := data[i]%5, int(data[i+1])
			now++
			switch op {
			case 0: // new root
				n := 1 + arg%16
				s := &Sequence{ID: nextID}
				nextID++
				for p := 0; p < n; p++ {
					s.Tokens = append(s.Tokens, Token{ID: int32((int(s.ID)*37+p)%997 + 1)})
				}
				if err := m.Reserve(s, n, now); err != nil {
					m.Release(s, false)
					continue
				}
				m.Commit(s, n, now)
				stamp(s, 0, n)
				live = append(live, &ref{seq: s})
			case 1: // divergent decode on one branch
				if len(live) == 0 {
					continue
				}
				rf := live[arg%len(live)]
				pos := len(rf.seq.Tokens)
				rf.seq.Tokens = append(rf.seq.Tokens,
					Token{ID: int32((int(rf.seq.ID)*1009+pos*31)%997 + 1)})
				if err := m.Reserve(rf.seq, pos+1, now); err != nil {
					rf.seq.Tokens = rf.seq.Tokens[:pos]
					continue
				}
				m.Commit(rf.seq, pos+1, now)
				stamp(rf.seq, pos, pos+1)
			case 2: // fork
				if len(live) == 0 {
					continue
				}
				parent := live[arg%len(live)]
				child := &Sequence{ID: nextID,
					Tokens: append([]Token(nil), parent.seq.Tokens...)}
				nextID++
				if err := m.Fork(parent.seq, child, now); err != nil {
					t.Fatalf("fork of quiescent parent %d: %v", parent.seq.ID, err)
				}
				live = append(live, &ref{seq: child})
			case 3: // finish (cache-preserving release)
				if len(live) == 0 {
					continue
				}
				j := arg % len(live)
				m.Release(live[j].seq, true)
				drop(j)
			case 4: // cancel (free release)
				if len(live) == 0 {
					continue
				}
				j := arg % len(live)
				m.Release(live[j].seq, false)
				drop(j)
			}
			audit(t, m)
			verify()
		}
		for _, rf := range live {
			m.Release(rf.seq, true)
		}
		audit(t, m)
		if u := m.UsageTotals(); u.SharedBytes != 0 {
			t.Fatalf("SharedBytes = %d after releasing everything", u.SharedBytes)
		}
	})
}
