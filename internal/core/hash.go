package core

// Block hashing for prefix caching. As in vLLM, a block's hash chains
// the parent block's hash with the block's token IDs, so a hash value
// identifies the entire prefix up to and including the block. Presence
// in the index is per block: evicting an early block makes that block
// miss without invalidating the identities of later blocks, which is
// what lets sliding-window layers hit on prefixes whose early tokens
// are gone (§5.2).

// blockHashSeed distinguishes an empty chain from a zero hash.
const blockHashSeed uint64 = 0x6A656E6761_5F4B56 // "jenga_KV"

// hashChain extends a parent hash with one token.
func hashChain(parent uint64, tok Token) uint64 {
	x := parent ^ (uint64(uint32(tok.ID)) + 0x9E3779B97F4A7C15)
	if tok.Image {
		x ^= 0xA5A5A5A5A5A5A5A5
	}
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// blockHashes returns the chained hash of every complete block of size
// blockTokens over the projected token list. Element k covers projected
// tokens [k*blockTokens, (k+1)*blockTokens).
func blockHashes(tokens []Token, blockTokens int) []uint64 {
	if blockTokens <= 0 {
		return nil
	}
	n := len(tokens) / blockTokens
	out := make([]uint64, n)
	h := blockHashSeed
	for k := 0; k < n; k++ {
		for i := k * blockTokens; i < (k+1)*blockTokens; i++ {
			h = hashChain(h, tokens[i])
		}
		out[k] = h
	}
	return out
}

// blockHashesInto is blockHashes appending into a caller-provided
// slice (pass dst[:0] to reuse its capacity) — the warm-Lookup path
// rebuilds per-group hash lists every call and reuses the scratch.
func blockHashesInto(dst []uint64, tokens []Token, blockTokens int) []uint64 {
	if blockTokens <= 0 {
		return dst
	}
	n := len(tokens) / blockTokens
	h := blockHashSeed
	for k := 0; k < n; k++ {
		for i := k * blockTokens; i < (k+1)*blockTokens; i++ {
			h = hashChain(h, tokens[i])
		}
		dst = append(dst, h)
	}
	return dst
}

// extendBlockHashes appends the hashes of complete blocks not yet in
// dst, resuming the chain from dst's last element (the chain value
// after block k IS element k, so no rehash of covered tokens is
// needed). With an empty dst it equals blockHashesInto(dst[:0], ...);
// callers guarantee dst was built from a prefix of tokens.
func extendBlockHashes(dst []uint64, tokens []Token, blockTokens int) []uint64 {
	if blockTokens <= 0 {
		return dst
	}
	n := len(tokens) / blockTokens
	h := blockHashSeed
	if len(dst) > 0 {
		h = dst[len(dst)-1]
	}
	for k := len(dst); k < n; k++ {
		for i := k * blockTokens; i < (k+1)*blockTokens; i++ {
			h = hashChain(h, tokens[i])
		}
		dst = append(dst, h)
	}
	return dst
}

// prefixHash returns the chained hash over the first n projected
// tokens; used to identify Mamba state checkpoints, which snapshot the
// whole prefix at one position.
func prefixHash(tokens []Token, n int) uint64 {
	h := blockHashSeed
	for i := 0; i < n && i < len(tokens); i++ {
		h = hashChain(h, tokens[i])
	}
	return h
}

// PrefixHash returns the chained hash over the first n tokens (the
// whole sequence when n exceeds it). It is the same chain prefix
// caching publishes per block, so two requests that share a cached
// prefix share its PrefixHash — cluster routers use it to steer
// prefix-sharing requests to the same replica.
func PrefixHash(tokens []Token, n int) uint64 {
	if n > len(tokens) {
		n = len(tokens)
	}
	return prefixHash(tokens, n)
}

// project returns the subsequence of tokens a group stores (its
// "projected sequence") given the group's modality filter, plus the
// mapping from projected index to full-sequence index.
func project(tokens []Token, storesImage, storesText bool) ([]Token, []int) {
	if storesImage && storesText {
		idx := make([]int, len(tokens))
		for i := range idx {
			idx[i] = i
		}
		return tokens, idx
	}
	proj := make([]Token, 0, len(tokens))
	idx := make([]int, 0, len(tokens))
	for i, t := range tokens {
		if (t.Image && storesImage) || (!t.Image && storesText) {
			proj = append(proj, t)
			idx = append(idx, i)
		}
	}
	return proj, idx
}

// projectInto appends the projected subsequence to dst (pass dst[:0]
// to reuse capacity). Callers that need the index mapping use project;
// the Lookup path only needs the tokens and reuses per-group scratch.
func projectInto(dst []Token, tokens []Token, storesImage, storesText bool) []Token {
	for _, t := range tokens {
		if (t.Image && storesImage) || (!t.Image && storesText) {
			dst = append(dst, t)
		}
	}
	return dst
}

// projectedLen returns how many of the first p full-sequence tokens a
// group with the given modality filter stores.
func projectedLen(tokens []Token, p int, storesImage, storesText bool) int {
	if storesImage && storesText {
		if p > len(tokens) {
			return len(tokens)
		}
		return p
	}
	n := 0
	for i := 0; i < p && i < len(tokens); i++ {
		if (tokens[i].Image && storesImage) || (!tokens[i].Image && storesText) {
			n++
		}
	}
	return n
}
