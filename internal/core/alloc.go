package core

import (
	"container/heap"

	"jenga/internal/arena"
)

// Eviction heaps. Entries are immutable snapshots validated lazily on
// pop: a page (or large page) whose state or timestamp moved on since
// the entry was pushed is skipped or re-pushed with fresh keys, which
// keeps every mutation O(log n) without decrease-key support.

type pageEntry struct {
	id      arena.SmallPageID
	ts      Tick
	prio    int64
	expired bool
}

// pageHeap orders evictable pages expired-first (§3.3: out-of-window
// KV is evicted before any live page), then by (lastAccess asc,
// priority desc, id asc) — LRU with the §5.1 prefix-length tie break.
type pageHeap []pageEntry

func (h pageHeap) Len() int { return len(h) }
func (h pageHeap) Less(i, j int) bool {
	if h[i].expired != h[j].expired {
		return h[i].expired
	}
	if h[i].ts != h[j].ts {
		return h[i].ts < h[j].ts
	}
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].id < h[j].id
}
func (h pageHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pageHeap) Push(x any)   { *h = append(*h, x.(pageEntry)) }
func (h *pageHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

type largeEntry struct {
	id      arena.LargePageID
	ts      Tick
	expired bool
}

// largeHeap orders evictable large pages expired-first, then by the
// latest last-access time among their small pages (§5.4 step 3).
type largeHeap []largeEntry

func (h largeHeap) Len() int { return len(h) }
func (h largeHeap) Less(i, j int) bool {
	if h[i].expired != h[j].expired {
		return h[i].expired
	}
	if h[i].ts != h[j].ts {
		return h[i].ts < h[j].ts
	}
	return h[i].id < h[j].id
}
func (h largeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *largeHeap) Push(x any)   { *h = append(*h, x.(largeEntry)) }
func (h *largeHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// --- page state transitions -------------------------------------------

// cacheAdd registers a page entering the cached state of large page L,
// keeping the large page's eviction key (cached/expired counts, max
// last-access) current without a rescan.
func (m *Jenga) cacheAdd(L arena.LargePageID, ts Tick, expired bool) {
	m.cntCached[L]++
	if expired {
		m.cntExpired[L]++
	}
	if ts > m.largeTS[L] {
		m.largeTS[L] = ts
	}
}

// cacheRemove registers a cached page leaving the cached state of large
// page L. A max can't be maintained incrementally under removal, so
// when the departing page holds the current max the key is only marked
// dirty; largeTimestamp recomputes it lazily if the page is ever read
// as an eviction candidate again.
func (m *Jenga) cacheRemove(L arena.LargePageID, pg *page) {
	m.cntCached[L]--
	if pg.expired {
		m.cntExpired[L]--
	}
	if m.cntCached[L] == 0 {
		m.largeTS[L] = 0
		m.largeDirty[L] = false
	} else if pg.lastAccess == m.largeTS[L] {
		m.largeDirty[L] = true
	}
}

// pageToUsed moves an empty or cached page into the used state with one
// reference held by req.
//
//jenga:hotpath
func (m *Jenga) pageToUsed(g *group, id arena.SmallPageID, req RequestID) {
	pg := &g.pages[id]
	L := m.largeOf(g, id)
	switch pg.status {
	case pageEmpty:
		g.free.remove(id)
		pg.filled, pg.dead = 0, 0
		pg.hash, pg.complete, pg.hashed = 0, false, false
	case pageCached:
		// Re-claimed prefix-cache page: its content is a full valid
		// block for the claimant, so dead slots reset.
		if pg.ref != 0 {
			check(false, "cached page %d has refs", id)
		}
		g.nCached--
		m.cacheRemove(L, pg)
		pg.dead = 0
		pg.expired = false
		g.filledSlots += int64(pg.filled)
	default:
		check(false, "pageToUsed on used page %d", id)
	}
	pg.status = pageUsed
	pg.ref = 1
	pg.assoc = req
	g.nUsed++
	m.cntUsed[L]++
	m.stats.Allocs++
}

// pageAddRef shares an already-used page with another request.
func (m *Jenga) pageAddRef(g *group, id arena.SmallPageID) {
	pg := &g.pages[id]
	if pg.status != pageUsed || pg.ref <= 0 {
		check(false, "addRef on non-used page %d", id)
	}
	pg.ref++
	g.extraRefs++
}

// pageRelease drops one reference; at zero the page becomes cached
// (when cache is true and the block hash was published) or empty.
// exitTS is the page's final last-access time (§5.1 semantics: the time
// the page was last read by a computation). expired marks KV outside
// the dependency horizon — first in line for eviction (§3.3).
//
//jenga:hotpath
func (m *Jenga) pageRelease(g *group, id arena.SmallPageID, cache bool, exitTS Tick, expired bool) {
	pg := &g.pages[id]
	if pg.status != pageUsed || pg.ref <= 0 {
		check(false, "release on non-used page %d", id)
	}
	pg.ref--
	if pg.ref > 0 {
		// Still shared: another holder keeps the page used; only the
		// shared-bytes accounting shrinks.
		g.extraRefs--
		return
	}
	L := m.largeOf(g, id)
	g.nUsed--
	m.cntUsed[L]--
	g.filledSlots -= int64(pg.filled)
	g.deadSlots -= int64(pg.dead)
	if cache && pg.complete && !pg.hashed {
		// The block was computed while another page owned the index
		// entry for the same content; publish now if the slot freed up.
		if _, ok := g.index[pg.hash]; !ok {
			g.index[pg.hash] = id
			pg.hashed = true
		}
	}
	if cache && pg.hashed {
		pg.status = pageCached
		pg.lastAccess = exitTS
		pg.expired = expired
		g.nCached++
		m.cacheAdd(L, exitTS, expired)
		heap.Push(&g.evict, pageEntry{id: id, ts: pg.lastAccess, prio: pg.priority, expired: expired})
		if m.cntUsed[L] == 0 {
			m.pushLargeCandidate(L)
		}
		return
	}
	m.pageToEmpty(g, id)
}

// pageToEmpty returns a page to the free pool and reclaims its large
// page if it became entirely empty.
func (m *Jenga) pageToEmpty(g *group, id arena.SmallPageID) {
	pg := &g.pages[id]
	if pg.hashed {
		if cur, ok := g.index[pg.hash]; ok && cur == id {
			delete(g.index, pg.hash)
		}
		pg.hashed = false
	}
	pg.status = pageEmpty
	pg.filled, pg.dead = 0, 0
	pg.complete = false
	g.free.add(id)
	if m.cfg.RequestAware {
		g.freeByReq[pg.assoc] = append(g.freeByReq[pg.assoc], id)
	}
	m.stats.Frees++
	L := m.largeOf(g, id)
	if m.cntUsed[L] == 0 && m.cntCached[L] == 0 {
		m.reclaimLarge(g, L)
	}
}

// evictCached empties a cached page (prefix-cache eviction).
func (m *Jenga) evictCached(g *group, id arena.SmallPageID) {
	pg := &g.pages[id]
	if pg.status != pageCached {
		check(false, "evict on non-cached page %d", id)
	}
	L := m.largeOf(g, id)
	g.nCached--
	m.cacheRemove(L, pg)
	m.pageToEmpty(g, id)
}

// reclaimLarge returns a fully empty large page to the LCM allocator —
// the payoff of request-aware placement (§4.3).
func (m *Jenga) reclaimLarge(g *group, L arena.LargePageID) {
	if m.largeOwner[L] != int32(g.idx) {
		check(false, "reclaim of foreign large page %d", L)
	}
	first, n := g.view.SmallRange(L)
	for i := 0; i < n; i++ {
		g.free.remove(first + arena.SmallPageID(i))
	}
	g.ownedLarge--
	m.largeOwner[L] = -1
	m.freeLarge = append(m.freeLarge, L)
	m.stats.LargeReclaims++
}

// pushLargeCandidate registers a large page as an eviction candidate
// with the max last-access among its cached small pages.
func (m *Jenga) pushLargeCandidate(L arena.LargePageID) {
	ts, expired, ok := m.largeTimestamp(L)
	if !ok {
		return
	}
	heap.Push(&m.largeEvict, largeEntry{id: L, ts: ts, expired: expired})
}

// largeTimestamp returns the eviction key of a large page: the latest
// last-access among its cached small pages, and whether every cached
// page holds expired KV (such pages evict first, §3.3). ok is false
// when the page is not currently evictable. The key is maintained
// incrementally by cacheAdd/cacheRemove, so the common case is O(1);
// only a dirty max (its holder left the cached set since the last
// read) triggers a rescan of the large page's small pages.
func (m *Jenga) largeTimestamp(L arena.LargePageID) (Tick, bool, bool) {
	if m.largeOwner[L] < 0 || m.cntUsed[L] != 0 || m.cntCached[L] == 0 {
		return 0, false, false
	}
	if m.largeDirty[L] {
		g := m.groups[m.largeOwner[L]]
		first, n := g.view.SmallRange(L)
		var ts Tick
		for i := 0; i < n; i++ {
			pg := &g.pages[first+arena.SmallPageID(i)]
			if pg.status == pageCached && pg.lastAccess > ts {
				ts = pg.lastAccess
			}
		}
		m.largeTS[L] = ts
		m.largeDirty[L] = false
	}
	return m.largeTS[L], m.cntExpired[L] == m.cntCached[L], true
}

// --- §5.4 allocation ----------------------------------------------------

// allocSmall finds one empty-or-evicted small page of group g for
// request req, following the five-step policy of §5.4:
//
//  1. an empty page associated with req;
//  2. a fresh large page from the LCM allocator;
//  3. evict an entire evictable large page (LRU by max last access);
//  4. any empty page of the type, regardless of association;
//  5. evict a single cached page of the type (LRU + priority).
//
// With RequestAware disabled (ablation), step 4 runs before steps 1–3.
//
//jenga:hotpath
func (m *Jenga) allocSmall(g *group, req RequestID) (arena.SmallPageID, error) {
	if !m.cfg.RequestAware {
		if id, ok := m.popAnyFree(g); ok {
			m.pageToUsed(g, id, req)
			return id, nil
		}
	}
	// Step 1: request-associated empty page.
	if m.cfg.RequestAware {
		if id, ok := m.popAssocFree(g, req); ok {
			m.pageToUsed(g, id, req)
			return id, nil
		}
	}
	// Step 2: carve a fresh large page.
	if id, ok := m.takeFreshLarge(g, req); ok {
		m.pageToUsed(g, id, req)
		return id, nil
	}
	// Step 3: evict a whole large page (possibly another type's).
	if m.evictLargeLRU() {
		if id, ok := m.takeFreshLarge(g, req); ok {
			m.pageToUsed(g, id, req)
			return id, nil
		}
		check(false, "large eviction produced no free large page")
	}
	// Step 4: any empty page of the type.
	if id, ok := m.popAnyFree(g); ok {
		m.pageToUsed(g, id, req)
		return id, nil
	}
	// Step 5: evict one cached page of the type. The eviction may have
	// emptied an entire large page (which reclaimLarge returned to the
	// LCM allocator), so re-probe the free pools rather than using the
	// evicted page directly.
	for m.evictOneSmall(g) {
		if id, ok := m.popAnyFree(g); ok {
			m.pageToUsed(g, id, req)
			return id, nil
		}
		if id, ok := m.takeFreshLarge(g, req); ok {
			m.pageToUsed(g, id, req)
			return id, nil
		}
	}
	return 0, ErrNoSpace
}

// popAssocFree pops an empty page associated with req (lazy list).
//
//jenga:hotpath
func (m *Jenga) popAssocFree(g *group, req RequestID) (arena.SmallPageID, bool) {
	lst := g.freeByReq[req]
	for len(lst) > 0 {
		id := lst[len(lst)-1]
		lst = lst[:len(lst)-1]
		pg := &g.pages[id]
		if pg.status == pageEmpty && pg.assoc == req &&
			m.largeOwner[m.largeOf(g, id)] == int32(g.idx) {
			if g.free.has(id) {
				g.freeByReq[req] = lst
				return id, true
			}
		}
	}
	delete(g.freeByReq, req)
	return 0, false
}

// popAnyFree pops the lowest-ID empty page of the group — O(1) and
// deterministic, unlike the randomized map iteration it replaces.
//
//jenga:hotpath
func (m *Jenga) popAnyFree(g *group) (arena.SmallPageID, bool) {
	return g.free.min()
}

// takeFreshLarge assigns a free large page to g, associates all its
// small pages with req, and returns the first of them.
func (m *Jenga) takeFreshLarge(g *group, req RequestID) (arena.SmallPageID, bool) {
	if len(m.freeLarge) == 0 {
		return 0, false
	}
	L := m.freeLarge[len(m.freeLarge)-1]
	m.freeLarge = m.freeLarge[:len(m.freeLarge)-1]
	if m.largeOwner[L] != -1 {
		check(false, "free large page %d has owner", L)
	}
	m.largeOwner[L] = int32(g.idx)
	m.largeAssoc[L] = req
	g.ownedLarge++
	first, n := g.view.SmallRange(L)
	assoc := m.cfg.RequestAware && n > 1
	var lst []arena.SmallPageID
	if assoc {
		lst = g.freeByReq[req] // one map access for the whole carve
	}
	for i := n - 1; i >= 0; i-- {
		id := first + arena.SmallPageID(i)
		pg := &g.pages[id]
		pg.status = pageEmpty
		pg.ref, pg.filled, pg.dead = 0, 0, 0
		pg.hashed = false
		pg.assoc = req
		g.free.add(id)
		if assoc && i > 0 {
			lst = append(lst, id)
		}
	}
	if assoc {
		g.freeByReq[req] = lst
	}
	return first, true
}

// evictLargeLRU evicts the least-recently-used evictable large page,
// returning it to the LCM free list. Reports whether one was evicted.
func (m *Jenga) evictLargeLRU() bool {
	for m.largeEvict.Len() > 0 {
		e := heap.Pop(&m.largeEvict).(largeEntry)
		ts, expired, ok := m.largeTimestamp(e.id)
		if !ok {
			continue // stale: no longer evictable
		}
		if ts != e.ts || expired != e.expired {
			heap.Push(&m.largeEvict, largeEntry{id: e.id, ts: ts, expired: expired})
			continue // stale key: retry with fresh position
		}
		og := m.groups[m.largeOwner[e.id]]
		// Tiered spill (§8): copy the victim page out to the host tier
		// before discarding, so the evicted bytes survive one tier down
		// and a later prefix Lookup restores them instead of
		// recomputing. Best-effort — a full (or absent) tier degrades
		// to today's discard.
		m.spillLarge(e.id, ts)
		first, n := og.view.SmallRange(e.id)
		for i := 0; i < n; i++ {
			id := first + arena.SmallPageID(i)
			if og.pages[id].status == pageCached {
				m.evictCached(og, id)
			}
		}
		m.stats.LargeEvictions++
		// pageToEmpty → reclaimLarge put it on freeLarge.
		return true
	}
	return false
}

// evictOneSmall evicts the least-recently-used cached page of g,
// reporting whether any eviction happened.
func (m *Jenga) evictOneSmall(g *group) bool {
	for g.evict.Len() > 0 {
		e := heap.Pop(&g.evict).(pageEntry)
		pg := &g.pages[e.id]
		if pg.status != pageCached || pg.lastAccess != e.ts || pg.priority != e.prio || pg.expired != e.expired {
			continue // stale
		}
		m.evictCached(g, e.id)
		m.stats.SmallEvictions++
		return true
	}
	return false
}
