package core

import (
	"container/heap"
	"fmt"

	"jenga/internal/arena"
	"jenga/internal/model"
)

// pageRef is a request's handle on one block's page. held is false for
// blocks the request skipped (below a window at claim time) or has
// already demoted.
type pageRef struct {
	id   arena.SmallPageID
	held bool
}

// reqGroup is the per-(request, group) state.
type reqGroup struct {
	// pages is indexed by block number (token groups).
	pages         []pageRef
	projReserved  int
	projCommitted int
	// demotedBlocks is the block index below which pages have been
	// demoted, freed, or skipped.
	demotedBlocks int

	// Incremental hashing state (projCommitted tokens consumed).
	chain       uint64
	runChain    uint64
	lastFullIdx int
	// projPrompt is the projected length of the sequence's prompt part
	// committed so far (window KV above projPrompt−Window stays in the
	// live eviction class; see Sequence.PromptLen).
	projPrompt int

	// Mamba state.
	hasWork  bool
	work     arena.SmallPageID
	baseProj int
	nextCkpt int // next checkpoint position to pre-allocate
	ckptDone int // checkpoints finalized so far
	ckpts    []pageRef
	ckptPos  []int

	// Vision-embedding state (driven by EncodeImages / DropImages).
	visPages   []pageRef
	visProj    int // projected image tokens encoded
	visCursor  int // full-token cursor for EncodeImages
	visDropped int // blocks fully dropped
	dropCursor int // full-token cursor for DropImages
	dropProj   int
}

// reqState is the per-request manager state.
type reqState struct {
	id           RequestID
	reserved     int // full-sequence tokens with KV slots reserved
	committed    int // full-sequence tokens with valid KV
	lastNow      Tick
	claimed      bool
	cachedPrefix int
	// restoredTokens is the model-wide prefix the host tier added
	// beyond what the GPU cache alone validated at claim time — the
	// tokens a restore saved from recompute; restoredBytes the H2D
	// volume the restores moved (RestoreCost reads both).
	restoredTokens int
	restoredBytes  int64
	g              []reqGroup
}

func (m *Jenga) getReq(seq *Sequence) *reqState {
	if r, ok := m.reqs[seq.ID]; ok {
		return r
	}
	r := &reqState{id: seq.ID, g: make([]reqGroup, len(m.groups))}
	for i := range r.g {
		rg := &r.g[i]
		rg.chain = blockHashSeed
		rg.runChain = blockHashSeed
		rg.lastFullIdx = -1
		if m.groups[i].spec.Kind == model.Mamba {
			rg.nextCkpt = m.groups[i].spec.Checkpoint()
		}
	}
	m.reqs[seq.ID] = r
	return r
}

// appliesTo reports whether a group stores KV for the sequence's model
// (multi-model tagging, §6.1). Untagged groups apply to every sequence.
func (g *group) appliesTo(seq *Sequence) bool {
	return g.spec.Tag == "" || g.spec.Tag == seq.Tag
}

// countScope counts tokens in toks that group g stores.
func countScope(g *group, toks []Token) int {
	if g.spec.Scope == model.ScopeAll {
		return len(toks)
	}
	n := 0
	for _, t := range toks {
		if g.spec.StoresToken(t.Image) {
			n++
		}
	}
	return n
}

// Footprint implements Manager.
func (m *Jenga) Footprint(seq *Sequence) int64 {
	var total int64
	for _, g := range m.groups {
		if !g.appliesTo(seq) {
			continue
		}
		proj := countScope(g, seq.Tokens)
		if proj == 0 {
			continue
		}
		pages := 0
		switch g.spec.Kind {
		case model.Mamba:
			pages = 1 // working state
			if m.cfg.EnablePrefixCache {
				pages += proj / g.spec.Checkpoint()
			}
		case model.SlidingWindow, model.PyramidWindow:
			keep := proj
			if keep > g.spec.Window {
				keep = g.spec.Window
			}
			// +1 page of slack for the chunk crossing the window edge.
			pages = (keep+g.tpp-1)/g.tpp + 1
		case model.VisionEmbedding:
			// Embeddings for every image token exist right after
			// encoding (§6.2a), before consumption frees them.
			pages = (proj + g.tpp - 1) / g.tpp
		default:
			pages = (proj + g.tpp - 1) / g.tpp
		}
		total += int64(pages) * int64(g.smallBytes)
	}
	return total
}

// CachedPrefix implements Manager: the prefix length served from cache
// at the sequence's first reservation.
func (m *Jenga) CachedPrefix(seq *Sequence) int {
	if r, ok := m.reqs[seq.ID]; ok {
		return r.cachedPrefix
	}
	return 0
}

// --- Lookup --------------------------------------------------------------

// Lookup implements Manager (§5.2): per-group views are built, each
// policy's hit rule is evaluated, and the longest model-wide valid
// prefix is returned. With a host tier, blocks whose only copy lives
// one tier down count as present — claiming such a prefix restores
// them (H2D) instead of recomputing.
//
//jenga:hotpath
func (m *Jenga) Lookup(seq *Sequence) int {
	return m.lookupPrefix(seq, m.host != nil)
}

// lookupPrefix is Lookup with host-tier presence switchable: the
// claim fallback path re-evaluates the prefix GPU-only when a restore
// ran out of device memory.
//
//jenga:hotpath
func (m *Jenga) lookupPrefix(seq *Sequence, useHost bool) int {
	if !m.cfg.EnablePrefixCache {
		return 0
	}
	maxP := len(seq.Tokens) - 1 // at least one token must run
	if maxP <= 0 {
		return 0
	}
	views := m.lkViews[:0]
	anyPresent := false
	for _, g := range m.groups {
		if g.isVision() || !g.appliesTo(seq) {
			continue // never gates KV hits
		}
		v := m.buildView(g, seq.ID, seq.Tokens, useHost)
		for _, ok := range v.Present {
			if ok {
				anyPresent = true
				break
			}
		}
		if g.spec.Kind == model.Mamba && v.CheckpointAt != nil {
			// Presence detection for Mamba handled via CheckpointAt in
			// the candidate scan; mark possible presence cheaply.
			anyPresent = anyPresent || len(g.index) > 0 ||
				(useHost && m.host.groupSize(g.spec.Name) > 0)
		}
		views = append(views, lookupView{g, v})
	}
	m.lkViews = views
	if !anyPresent {
		return 0
	}
candidates:
	for p := maxP; p > 0; p-- {
		for _, gv := range views {
			// Hit prefixes must project to whole blocks in every token
			// group so claiming is block-exact.
			if gv.g.spec.Kind != model.Mamba && gv.view.ProjCount[p]%gv.g.tpp != 0 {
				continue candidates
			}
			if !gv.g.pol.ValidPrefix(gv.view, p) {
				continue candidates
			}
		}
		return p
	}
	return 0
}

// lookupView pairs a group with its Lookup view; lookupPrefix reuses
// the manager-level slice of them across calls.
type lookupView struct {
	g    *group
	view *GroupSeqView
}

// buildView constructs the Lookup view of one group for sequence id.
// With useHost, host-tier-resident blocks count as present. The view
// is built into per-group scratch (g.lkView and friends); nothing
// returned from Lookup outlives the call, so the warm-lookup path
// allocates nothing.
//
// Presence (Present/presentRun and the Mamba checkpoint set) is
// rebuilt in full on every call — the cache index mutates between
// lookups, and LookupFleet overlays peer presence in place — but the
// content-derived scratch (the projection, ProjCount and the block
// hash chain) extends incrementally when this call sees the same
// request on the same backing array with the cached prefix intact.
// Callers only ever append to a live sequence's tokens (Submit and
// Fork allocate fresh arrays), so append-only growth keeps the base
// pointer, the first token and the token at the cached boundary
// stable; a different request, a reallocated array or a truncation
// breaks one of them and forces a full rebuild. This is what makes a
// warm lookup over a long prompt stop rehashing the whole prefix.
//
//jenga:hotpath
func (m *Jenga) buildView(g *group, id RequestID, tokens []Token, useHost bool) *GroupSeqView {
	storesImg := g.spec.StoresToken(true)
	storesTxt := g.spec.StoresToken(false)
	done := 0
	if g.lkSeqLen > 0 && g.lkSeqID == id && len(tokens) >= g.lkSeqLen &&
		g.lkSeqBase == &tokens[0] && g.lkFirst == tokens[0] &&
		g.lkLast == tokens[g.lkSeqLen-1] {
		done = g.lkSeqLen
	}
	v := &g.lkView
	v.BlockTokens = g.tpp
	v.CheckpointAt = nil
	if cap(v.ProjCount) >= len(tokens)+1 {
		v.ProjCount = v.ProjCount[:len(tokens)+1]
	} else {
		pc := make([]int, len(tokens)+1)
		if done > 0 {
			copy(pc, v.ProjCount[:done+1])
		}
		v.ProjCount = pc
	}
	v.ProjCount[0] = 0
	n := v.ProjCount[done]
	for i := done; i < len(tokens); i++ {
		if g.spec.StoresToken(tokens[i].Image) {
			n++
		}
		v.ProjCount[i+1] = n
	}
	proj := tokens
	if !(storesImg && storesTxt) {
		g.lkProj = projectInto(g.lkProj[:v.ProjCount[done]], tokens[done:], storesImg, storesTxt)
		proj = g.lkProj
	}
	if len(tokens) > 0 {
		g.lkSeqID = id
		g.lkSeqBase = &tokens[0]
		g.lkSeqLen = len(tokens)
		g.lkFirst = tokens[0]
		g.lkLast = tokens[len(tokens)-1]
	} else {
		g.lkSeqLen = 0
	}
	if g.spec.Kind == model.Mamba {
		every := g.spec.Checkpoint()
		//jenga:alloc-ok Mamba checkpoint branch; the measured warm-lookup path is full-attention only
		present := make(map[int]bool)
		h := blockHashSeed
		for i, t := range proj {
			h = hashChain(h, t)
			if (i+1)%every == 0 {
				if id, ok := g.index[h]; ok {
					pg := &g.pages[id]
					if pg.hashed && pg.hash == h && pg.status != pageEmpty {
						present[i+1] = true
					}
				}
				if !present[i+1] && useHost {
					if _, ok := m.host.lookup(g.spec.Name, h); ok {
						present[i+1] = true
					}
				}
			}
		}
		//jenga:alloc-ok Mamba checkpoint branch; the measured warm-lookup path is full-attention only
		v.CheckpointAt = func(pos int) bool { return present[pos] }
		v.Present = nil
		v.buildRuns()
		return v
	}
	if done == 0 {
		g.lkHashes = g.lkHashes[:0]
	}
	g.lkHashes = extendBlockHashes(g.lkHashes, proj, g.tpp)
	hashes := g.lkHashes
	if cap(v.Present) >= len(hashes) {
		v.Present = v.Present[:len(hashes)]
		for k := range v.Present {
			v.Present[k] = false
		}
	} else {
		v.Present = make([]bool, len(hashes))
	}
	for k, h := range hashes {
		if id, ok := g.index[h]; ok {
			pg := &g.pages[id]
			v.Present[k] = pg.hashed && pg.hash == h && pg.status != pageEmpty
		}
		if !v.Present[k] && useHost {
			if _, ok := m.host.lookup(g.spec.Name, h); ok {
				v.Present[k] = true
			}
		}
	}
	v.buildRuns()
	return v
}

// --- Reserve -------------------------------------------------------------

// Reserve implements Manager.
//
//jenga:hotpath
func (m *Jenga) Reserve(seq *Sequence, upTo int, now Tick) error {
	if upTo > len(seq.Tokens) {
		//jenga:alloc-ok caller-bug error path, never taken on the measured steady state
		return fmt.Errorf("core: reserve %d beyond sequence length %d", upTo, len(seq.Tokens))
	}
	r := m.getReq(seq)
	if !r.claimed {
		r.claimed = true
		if m.cfg.EnablePrefixCache {
			m.claim(seq, r, now)
		}
	}
	if upTo <= r.reserved {
		return nil
	}
	delta := seq.Tokens[r.reserved:upTo]
	for gi, g := range m.groups {
		if g.isVision() || !g.appliesTo(seq) {
			continue // vision is driven by EncodeImages
		}
		rg := &r.g[gi]
		add := countScope(g, delta)
		if add == 0 {
			continue
		}
		newProj := rg.projReserved + add
		if g.spec.Kind == model.Mamba {
			if err := m.reserveMamba(g, rg, r.id, newProj); err != nil {
				return err
			}
			continue
		}
		lastBlock := (newProj - 1) / g.tpp
		for len(rg.pages) <= lastBlock {
			rg.pages = append(rg.pages, pageRef{})
		}
		// Copy-on-write boundary: the scan starts at the committed tail
		// block, not the reserved one, because every block from there to
		// lastBlock will receive this reservation's commits — a block
		// still shared with a fork sibling (ref > 1) must be privatized
		// before those writes land. Blocks between the committed and
		// reserved positions are always held, so with no sharing the
		// extra iterations fall through the held-page skip and behavior
		// is identical to scanning from projReserved.
		b0 := rg.projCommitted / g.tpp
		if rb := rg.projReserved / g.tpp; rb < b0 {
			b0 = rb
		}
		for b := b0; b <= lastBlock; b++ {
			if rg.pages[b].held {
				if pg := &g.pages[rg.pages[b].id]; pg.ref > 1 {
					id, err := m.cowPage(g, rg.pages[b].id, r.id)
					if err != nil {
						return err
					}
					rg.pages[b] = pageRef{id: id, held: true}
				}
				continue // partial block page from a previous chunk
			}
			id, err := m.allocSmall(g, r.id)
			if err != nil {
				return err
			}
			rg.pages[b] = pageRef{id: id, held: true}
		}
		rg.projReserved = newProj
	}
	r.reserved = upTo
	return nil
}

// reserveMamba ensures a working state page exists and pre-allocates
// checkpoint pages for the boundaries this reservation will cross.
func (m *Jenga) reserveMamba(g *group, rg *reqGroup, req RequestID, newProj int) error {
	if !rg.hasWork {
		id, err := m.allocSmall(g, req)
		if err != nil {
			return err
		}
		rg.work = id
		rg.hasWork = true
		pg := &g.pages[id]
		pg.filled = 1 // the working state occupies the page
		g.filledSlots++
	}
	if m.cfg.EnablePrefixCache {
		every := g.spec.Checkpoint()
		for rg.nextCkpt <= newProj {
			id, err := m.allocSmall(g, req)
			if err != nil {
				return err
			}
			rg.ckpts = append(rg.ckpts, pageRef{id: id, held: true})
			rg.ckptPos = append(rg.ckptPos, rg.nextCkpt)
			rg.nextCkpt += every
		}
	}
	rg.projReserved = newProj
	return nil
}

// --- Commit --------------------------------------------------------------

// Commit implements Manager.
//
//jenga:hotpath
func (m *Jenga) Commit(seq *Sequence, upTo int, now Tick) {
	r := m.getReq(seq)
	if upTo > r.reserved {
		check(false, "commit %d beyond reserved %d for request %d", upTo, r.reserved, r.id)
	}
	if upTo <= r.committed {
		return
	}
	r.lastNow = now
	delta := seq.Tokens[r.committed:upTo]
	for gi, g := range m.groups {
		if g.isVision() || !g.appliesTo(seq) {
			continue
		}
		rg := &r.g[gi]
		m.commitGroup(g, rg, delta, r.committed, seq.promptBound(), now)
	}
	r.committed = upTo
}

//jenga:hotpath
func (m *Jenga) commitGroup(g *group, rg *reqGroup, delta []Token, fullBase, promptBound int, now Tick) {
	mamba := g.spec.Kind == model.Mamba
	pos := rg.projCommitted
	for i, t := range delta {
		if !g.spec.StoresToken(t.Image) {
			continue
		}
		fi := fullBase + i
		if rg.lastFullIdx != fi-1 {
			rg.runChain = rg.chain // a new contiguous run starts here
		}
		rg.lastFullIdx = fi
		rg.chain = hashChain(rg.chain, t)
		if fi < promptBound {
			rg.projPrompt = pos + 1
		}
		if mamba {
			pos++
			if rg.ckptDone < len(rg.ckptPos) && pos == rg.ckptPos[rg.ckptDone] {
				m.finalizeCheckpoint(g, rg, rg.ckptDone, now)
				rg.ckptDone++
			}
			continue
		}
		b := pos / g.tpp
		if b >= len(rg.pages) || !rg.pages[b].held {
			check(false, "commit into unreserved block %d", b)
		}
		pg := &g.pages[rg.pages[b].id]
		pg.filled++
		g.filledSlots++
		pos++
		if pos%g.tpp == 0 {
			pg.hash = rg.chain
			pg.complete = true
			pg.priority = g.pol.BlockPriority(b, rg.runChain)
			if m.cfg.EnablePrefixCache {
				if _, ok := g.index[pg.hash]; !ok {
					g.index[pg.hash] = rg.pages[b].id
					pg.hashed = true
				}
			}
		}
	}
	rg.projCommitted = pos
	if mamba {
		return
	}
	// Demote blocks that fell outside the dependency horizon (§5.3).
	freeBelow := g.pol.FreeBelow(pos)
	fullBlocksBelow := freeBelow / g.tpp
	// Blocks inside the prompt's final window serve future prefix hits
	// at prompt boundaries — and a shared-prefix boundary (e.g. the
	// document before a per-request question) can sit anywhere within
	// that window, needing its own window below it. KV below 2×Window
	// under the prompt end is truly expired.
	expireBelow := rg.projPrompt - 2*g.spec.Window - 2*g.tpp
	// Policies with an always-live head region (attention sinks) keep
	// those pages held regardless of the window.
	keep := 0
	if ka, ok := g.pol.(KeepAlive); ok {
		keep = ka.KeptBelow(pos)
	}
	for b := rg.demotedBlocks; b < fullBlocksBelow; b++ {
		if rg.pages[b].held {
			if b*g.tpp < keep {
				continue // always-live head page stays held
			}
			// Out-of-window KV: cached for shorter-prefix hits but
			// first in line for eviction (§3.3, §5.3).
			expired := (b+1)*g.tpp <= expireBelow
			m.pageRelease(g, rg.pages[b].id, m.cfg.EnablePrefixCache, now, expired)
			rg.pages[b].held = false
		}
	}
	if fullBlocksBelow > rg.demotedBlocks {
		rg.demotedBlocks = fullBlocksBelow
	}
	// Dead slots in the boundary block share a page with live slots.
	if db := freeBelow % g.tpp; db > 0 && fullBlocksBelow < len(rg.pages) && rg.pages[fullBlocksBelow].held {
		pg := &g.pages[rg.pages[fullBlocksBelow].id]
		if int32(db) > pg.dead {
			g.deadSlots += int64(int32(db) - pg.dead)
			pg.dead = int32(db)
		}
	}
}

// finalizeCheckpoint publishes the i-th Mamba state snapshot: the state
// content at that position is copied into the pre-allocated page and
// its prefix hash published for hits at that exact position (§5.3).
func (m *Jenga) finalizeCheckpoint(g *group, rg *reqGroup, i int, now Tick) {
	check(rg.ckpts[i].held, "checkpoint page %d not held", i)
	pg := &g.pages[rg.ckpts[i].id]
	if pg.filled == 0 {
		pg.filled = 1
		g.filledSlots++
	}
	pg.hash = rg.chain
	pg.complete = true
	pg.priority = g.pol.BlockPriority(i, rg.runChain)
	pg.lastAccess = now
	if _, ok := g.index[pg.hash]; !ok {
		g.index[pg.hash] = rg.ckpts[i].id
		pg.hashed = true
	}
}

// --- Release -------------------------------------------------------------

// Release implements Manager.
//
//jenga:hotpath
func (m *Jenga) Release(seq *Sequence, cache bool) {
	r, ok := m.reqs[seq.ID]
	if !ok {
		return
	}
	cache = cache && m.cfg.EnablePrefixCache
	for gi, g := range m.groups {
		rg := &r.g[gi]
		for b := range rg.pages {
			if rg.pages[b].held {
				m.pageRelease(g, rg.pages[b].id, cache, r.lastNow, false)
			}
		}
		for _, ref := range rg.visPages {
			if ref.held {
				m.pageRelease(g, ref.id, false, r.lastNow, false)
			}
		}
		if rg.hasWork {
			m.pageRelease(g, rg.work, false, r.lastNow, false)
		}
		for i := range rg.ckpts {
			if rg.ckpts[i].held {
				pg := &g.pages[rg.ckpts[i].id]
				m.pageRelease(g, rg.ckpts[i].id, cache, pg.lastAccess, false)
			}
		}
		delete(g.freeByReq, r.id)
	}
	delete(m.reqs, seq.ID)
}

// --- Prefix-cache claiming ------------------------------------------------

// claim runs at a request's first reservation: it finds the model-wide
// cached prefix and attaches the corresponding pages (§5.2), so the
// engine can skip computing those tokens. With a host tier, blocks
// whose only copy lives one tier down are restored (H2D) as part of
// the claim; if device memory runs out mid-restore, the claim rolls
// back and falls back to the GPU-only prefix, which never allocates.
func (m *Jenga) claim(seq *Sequence, r *reqState, now Tick) {
	// An empty tier cannot assist any lookup, so skip the host passes
	// (including the hostAssist probe below) until something spilled.
	useHost := m.host != nil && len(m.host.pages) > 0
	p := m.lookupPrefix(seq, useHost)
	// hostAssist is the model-wide prefix the tier adds beyond what
	// the GPU cache alone validates — the tokens a restore saves from
	// recompute. Measured before claiming (afterwards restored blocks
	// are GPU-resident and the difference vanishes).
	hostAssist := 0
	if useHost && p > 0 {
		if pGPU := m.lookupPrefix(seq, false); pGPU < p {
			hostAssist = p - pGPU
		}
	}
	if p > 0 && !m.claimPrefix(seq, r, p, now, useHost) {
		m.rollbackClaim(seq, r)
		p = m.lookupPrefix(seq, false)
		if p > 0 {
			check(m.claimPrefix(seq, r, p, now, false),
				"claim: GPU-only fallback claim failed")
		}
	} else if hostAssist > 0 {
		r.restoredTokens = hostAssist
		m.stats.RestoredTokens += int64(hostAssist)
		m.host.stats.RestoredTokens += int64(hostAssist)
	}
	r.cachedPrefix = p
	r.reserved = p
	r.committed = p
}

// pendingRestore is one host-tier block a claim must bring back:
// block ≥ 0 names a token-group block, block < 0 a Mamba checkpoint
// at projected position pl.
type pendingRestore struct {
	g     *group
	rg    *reqGroup
	block int
	hash  uint64
	pl    int
}

// claimPrefix attaches the pages of a p-token valid prefix to r. It
// runs in two passes: pass 1 claims every GPU-resident block across
// all groups (no allocation — claiming pins them in the used state),
// pass 2 restores host-tier blocks, whose allocations may evict or
// spill anything *not* pinned by pass 1 or the tier pins. It reports
// false when a pass-2 allocation failed (partial state attached —
// the caller rolls back). With useHost false it is the historical
// claim, performs no allocation, and always succeeds.
func (m *Jenga) claimPrefix(seq *Sequence, r *reqState, p int, now Tick, useHost bool) bool {
	var pending []pendingRestore
	for gi, g := range m.groups {
		rg := &r.g[gi]
		if g.isVision() || !g.appliesTo(seq) {
			continue
		}
		storesImg := g.spec.StoresToken(true)
		storesTxt := g.spec.StoresToken(false)
		proj, fullIdx := project(seq.Tokens[:p], storesImg, storesTxt)
		pl := len(proj)
		// Replay hashing state through the claimed prefix.
		rg.chain = blockHashSeed
		rg.runChain = blockHashSeed
		rg.lastFullIdx = -1
		for j, t := range proj {
			if rg.lastFullIdx != fullIdx[j]-1 {
				rg.runChain = rg.chain
			}
			rg.lastFullIdx = fullIdx[j]
			rg.chain = hashChain(rg.chain, t)
		}
		if g.spec.Kind == model.Mamba {
			if useHost && pl > 0 {
				if _, ok := g.index[rg.chain]; !ok {
					if _, hok := m.host.lookup(g.spec.Name, rg.chain); hok {
						pending = append(pending, pendingRestore{g: g, rg: rg, block: -1, hash: rg.chain, pl: pl})
						continue
					}
				}
			}
			m.claimMamba(g, rg, pl, now)
			continue
		}
		check(pl%g.tpp == 0, "claim: group %s prefix %d not block aligned", g.spec.Name, pl)
		nb := pl / g.tpp
		rg.pages = make([]pageRef, nb)
		lo := g.pol.AccessedFrom(pl) / g.tpp
		keepBlocks := 0
		if ka, ok := g.pol.(KeepAlive); ok {
			keepBlocks = (ka.KeptBelow(pl) + g.tpp - 1) / g.tpp
		}
		hashes := blockHashes(proj, g.tpp)
		claimBlock := func(b int) {
			id, ok := g.index[hashes[b]]
			if !ok {
				check(useHost, "claim: block %d of group %s vanished", b, g.spec.Name)
				pending = append(pending, pendingRestore{g: g, rg: rg, block: b, hash: hashes[b]})
				return
			}
			pg := &g.pages[id]
			check(pg.hashed && pg.hash == hashes[b], "claim: stale index entry")
			switch pg.status {
			case pageCached:
				m.pageToUsed(g, id, r.id)
			case pageUsed:
				m.pageAddRef(g, id)
			default:
				check(false, "claim: empty page in index")
			}
			rg.pages[b] = pageRef{id: id, held: true}
		}
		for b := 0; b < keepBlocks && b < lo; b++ {
			claimBlock(b) // always-live head (attention sinks)
		}
		for b := lo; b < nb; b++ {
			claimBlock(b)
		}
		rg.projReserved = pl
		rg.projCommitted = pl
		rg.demotedBlocks = lo
	}
	if len(pending) == 0 {
		return true
	}
	// Pass 2: every source page is pinned before the first restore,
	// because a restore's allocation can spill — and a spill's tier
	// eviction must never drop a sibling restore's source.
	pins := make([]int64, len(pending))
	for i, pr := range pending {
		pins[i] = m.host.pin(pr.g.spec.Name, pr.hash)
	}
	ok := true
	for _, pr := range pending {
		hb, found := m.host.lookup(pr.g.spec.Name, pr.hash)
		check(found, "claim: pinned host block vanished mid-claim")
		blk := *hb
		id, allocOK := m.restoreBlock(pr.g, blk, pr.hash, r.id, now)
		if !allocOK {
			ok = false
			break
		}
		r.restoredBytes += int64(pr.g.smallBytes)
		if pr.block >= 0 {
			pr.rg.pages[pr.block] = pageRef{id: id, held: true}
		} else {
			// Mamba checkpoint: park the restored page as published
			// cache, then claim it through the normal path.
			m.pageRelease(pr.g, id, true, now, false)
			m.claimMamba(pr.g, pr.rg, pr.pl, now)
		}
	}
	for _, s := range pins {
		m.host.unpin(s)
	}
	return ok
}

// rollbackClaim detaches everything a failed claimPrefix attached:
// held pages return to the evictable cache (keeping whatever H2D work
// already succeeded — the restored blocks are now GPU-resident and
// the fallback claim picks them up), and the per-group claim state
// resets to its pre-claim form.
func (m *Jenga) rollbackClaim(seq *Sequence, r *reqState) {
	for gi, g := range m.groups {
		rg := &r.g[gi]
		for b := range rg.pages {
			if rg.pages[b].held {
				pg := &g.pages[rg.pages[b].id]
				m.pageRelease(g, rg.pages[b].id, m.cfg.EnablePrefixCache, pg.lastAccess, false)
			}
		}
		r.g[gi] = reqGroup{chain: blockHashSeed, runChain: blockHashSeed, lastFullIdx: -1}
		if g.spec.Kind == model.Mamba {
			r.g[gi].nextCkpt = g.spec.Checkpoint()
		}
	}
	r.restoredTokens = 0
	r.restoredBytes = 0
}

// claimMamba restores the working state from a cached checkpoint.
func (m *Jenga) claimMamba(g *group, rg *reqGroup, pl int, now Tick) {
	if pl == 0 {
		return
	}
	id, ok := g.index[rg.chain]
	check(ok, "claimMamba: checkpoint at %d vanished", pl)
	pg := &g.pages[id]
	// Touch the checkpoint (the paper updates only the last cached
	// state's access time) and re-queue it with the fresh timestamp.
	if pg.status == pageCached {
		// Re-keying a cached page re-keys its large page: losing the
		// old value may lower the max (a warm engine restart resets
		// ticks, so `now` can be below it — mark dirty), the new value
		// may raise it.
		L := m.largeOf(g, id)
		if pg.lastAccess == m.largeTS[L] {
			m.largeDirty[L] = true
		}
		pg.lastAccess = now
		if now > m.largeTS[L] {
			m.largeTS[L] = now
		}
		heap.Push(&g.evict, pageEntry{id: id, ts: now, prio: pg.priority})
	} else {
		pg.lastAccess = now
	}
	rg.baseProj = pl
	rg.nextCkpt = pl + g.spec.Checkpoint()
	rg.projReserved = pl
	rg.projCommitted = pl
}

// --- Vision embeddings (§6.2) ----------------------------------------------

// EncodeImages implements Manager: allocates and fills vision-embedding
// pages for every image token among the first uptoFull tokens. The
// engine calls it after running the (simulated) vision encoder.
func (m *Jenga) EncodeImages(seq *Sequence, uptoFull int, now Tick) error {
	if uptoFull > len(seq.Tokens) {
		return fmt.Errorf("core: encode %d beyond sequence length %d", uptoFull, len(seq.Tokens))
	}
	r := m.getReq(seq)
	for gi, g := range m.groups {
		if !g.isVision() || !g.appliesTo(seq) {
			continue
		}
		rg := &r.g[gi]
		for fi := rg.visCursor; fi < uptoFull; fi++ {
			if !seq.Tokens[fi].Image {
				continue
			}
			b := rg.visProj / g.tpp
			for len(rg.visPages) <= b {
				rg.visPages = append(rg.visPages, pageRef{})
			}
			if !rg.visPages[b].held {
				id, err := m.allocSmall(g, r.id)
				if err != nil {
					rg.visCursor = fi
					return err
				}
				rg.visPages[b] = pageRef{id: id, held: true}
			} else if pg := &g.pages[rg.visPages[b].id]; pg.ref > 1 {
				// Copy-on-write: the partial embedding block is shared
				// with a fork sibling; privatize before writing into it.
				id, err := m.cowPage(g, rg.visPages[b].id, r.id)
				if err != nil {
					rg.visCursor = fi
					return err
				}
				rg.visPages[b] = pageRef{id: id, held: true}
			}
			pg := &g.pages[rg.visPages[b].id]
			pg.filled++
			g.filledSlots++
			rg.visProj++
		}
		rg.visCursor = uptoFull
	}
	r.lastNow = now
	return nil
}

// DropImages implements Manager: frees vision-embedding pages whose
// image tokens have been fully consumed by chunked prefill (§6.2's
// free-on-demand strategy).
func (m *Jenga) DropImages(seq *Sequence, uptoFull int) {
	r, ok := m.reqs[seq.ID]
	if !ok {
		return
	}
	for gi, g := range m.groups {
		if !g.isVision() || !g.appliesTo(seq) {
			continue
		}
		rg := &r.g[gi]
		if uptoFull > len(seq.Tokens) {
			uptoFull = len(seq.Tokens)
		}
		for fi := rg.dropCursor; fi < uptoFull; fi++ {
			if seq.Tokens[fi].Image {
				rg.dropProj++
			}
		}
		rg.dropCursor = uptoFull
		fullBlocksBelow := rg.dropProj / g.tpp
		for b := rg.visDropped; b < fullBlocksBelow && b < len(rg.visPages); b++ {
			if rg.visPages[b].held {
				m.pageRelease(g, rg.visPages[b].id, false, r.lastNow, false)
				rg.visPages[b].held = false
			}
		}
		if fullBlocksBelow > rg.visDropped {
			rg.visDropped = fullBlocksBelow
		}
	}
}

// Diagnose reports per-group cache coverage for a sequence (debugging
// and observability): for each group, the number of present blocks out
// of the total complete blocks.
func (m *Jenga) Diagnose(seq *Sequence) string {
	out := ""
	for _, g := range m.groups {
		if g.isVision() || !g.appliesTo(seq) {
			continue
		}
		if g.spec.Kind == model.Mamba {
			continue
		}
		v := m.buildView(g, seq.ID, seq.Tokens, m.host != nil)
		present, runEnd := 0, 0
		for k, ok := range v.Present {
			if ok {
				present++
				if runEnd == k {
					runEnd++
				}
			}
		}
		out += fmt.Sprintf("[%s %d/%d contig=%d]", g.spec.Name, present, len(v.Present), runEnd)
	}
	return out
}
