package core

import "jenga/internal/model"

// Fleet transfer surface: the host tier doubles as each replica's
// share of a cluster-wide KV store. ExportPrefix serializes tier
// pages for the wire, ImportPrefix injects a peer's pages into the
// local tier (where the ordinary claim path restores them over PCIe),
// and LookupFleet extends the prefix lookup with a third presence
// level — blocks a peer's tier holds — returning the block list a
// fetch must move to realize the longer prefix. A TierObserver keeps
// an external directory consistent with tier content: every hash is
// registered when its page is stored and invalidated when its live
// copy dies. internal/fleet builds the directory and the transfer
// path on top; nothing here knows about replicas or links.

// TierObserver receives host-tier content notifications. TierStored
// fires when a page enters the tier (spill or import), TierEvicted
// when a block's live copy leaves it (budget eviction only — a
// re-spill that repoints a hash keeps it resident and emits no
// eviction). Callbacks run synchronously inside allocator operations
// and must not call back into the manager.
type TierObserver interface {
	TierStored(group string, hashes []uint64)
	TierEvicted(group string, hashes []uint64)
}

// SetTierObserver installs obs as the host tier's content observer
// (nil disables, the default). A no-op without a tier.
func (m *Jenga) SetTierObserver(obs TierObserver) {
	if m.host != nil {
		m.host.obs = obs
	}
}

// NotePeerFetch records a fleet fetch's per-holder skip and failure
// counts into this (destination) tier's stats — pure observability,
// no state change. A no-op without a tier.
func (m *Jenga) NotePeerFetch(skipped, failed int64) {
	if m.host != nil {
		m.host.stats.PeerSkips += skipped
		m.host.stats.PeerFails += failed
	}
}

// PageBlock is one block of a serialized host-tier page: its identity
// and (for backed arenas) contents, the wire form of a spilled block.
type PageBlock struct {
	Hash     uint64
	Priority int64
	Filled   int32
	Data     []byte
}

// PageSet is a serializable set of host-tier pages of one group — the
// unit of fleet peer transfer (ExportPrefix → wire → ImportPrefix).
// Transfer granularity is the whole large page, so a set fetched for
// a few blocks may carry sibling blocks along; they are injected too
// and warm the destination tier for free.
type PageSet struct {
	Group string
	Pages [][]PageBlock
	// PageBytes is the accounted size of each page (the large-page
	// transfer unit, uniform across layer types).
	PageBytes int64
}

// Bytes is the set's wire volume: every page costs one large page on
// the link regardless of how many blocks it carries.
func (ps *PageSet) Bytes() int64 { return int64(len(ps.Pages)) * ps.PageBytes }

// ExportPrefix copies the host-tier pages holding any of the given
// block hashes (group g) into a serializable page set, deduplicated
// by page and in first-reference order. The export is a pure read:
// refcounts and tier state are untouched, and pages pinned by an
// in-flight restore are skipped entirely (pin-safe — a transfer never
// observes a page mid-restore). Reports false when nothing could be
// exported.
func (m *Jenga) ExportPrefix(group string, hashes []uint64) (PageSet, bool) {
	ps := PageSet{Group: group}
	if m.host == nil {
		return ps, false
	}
	ps.PageBytes = m.host.pageBytes
	gi, ok := m.host.index[group]
	if !ok {
		return ps, false
	}
	seen := make(map[int64]bool)
	for _, hsh := range hashes {
		seq, ok := gi[hsh]
		if !ok || seen[seq] {
			continue
		}
		seen[seq] = true
		if _, pinned := m.host.pinned[seq]; pinned {
			continue
		}
		pg := m.host.pages[seq]
		blocks := make([]PageBlock, len(pg.blocks))
		for i := range pg.blocks {
			b := &pg.blocks[i]
			blocks[i] = PageBlock{Hash: b.hash, Priority: b.priority, Filled: b.filled}
			if b.data != nil {
				blocks[i].Data = append([]byte(nil), b.data...)
			}
		}
		ps.Pages = append(ps.Pages, blocks)
	}
	if len(ps.Pages) == 0 {
		return ps, false
	}
	m.host.stats.PeerExports += int64(len(ps.Pages))
	m.host.stats.PeerExportBytes += ps.Bytes()
	return ps, true
}

// ImportPrefix injects a peer's page set into the local host tier,
// evicting LRU tier pages as needed (never pinned ones), and returns
// the pages and bytes actually admitted. Pages whose blocks are all
// already resident are deduplicated to a recency touch. The local
// claim path then restores imported blocks over PCIe exactly like
// locally spilled ones. ImportPrefix takes ownership of the set's
// Data slices; callers must not reuse them.
func (m *Jenga) ImportPrefix(ps PageSet, now Tick) (int, int64) {
	if m.host == nil || !m.host.hasRoomEver() {
		return 0, 0
	}
	if _, ok := m.byName[ps.Group]; !ok {
		return 0, 0
	}
	pages, bytes := 0, int64(0)
	for _, pb := range ps.Pages {
		if len(pb) == 0 {
			continue
		}
		hashes := make([]uint64, len(pb))
		for i := range pb {
			hashes[i] = pb[i].Hash
		}
		if m.host.resident(ps.Group, hashes) {
			m.host.touchPage(ps.Group, hashes[0], now)
			continue
		}
		blocks := make([]hostBlock, len(pb))
		for i := range pb {
			blocks[i] = hostBlock{hash: pb[i].Hash, priority: pb[i].Priority, filled: pb[i].Filled, data: pb[i].Data}
		}
		if !m.host.store(ps.Group, blocks, now) {
			break
		}
		pages++
		bytes += m.host.pageBytes
	}
	if pages > 0 {
		m.host.stats.PeerImports += int64(pages)
		m.host.stats.PeerImportBytes += bytes
	}
	return pages, bytes
}

// PeerPresence reports whether some peer replica's tier holds a live
// copy of block (group, hash) — LookupFleet's oracle, backed by the
// fleet directory.
type PeerPresence func(group string, hash uint64) bool

// FetchBlock names one block a fleet prefix fetch must move.
type FetchBlock struct {
	Group string
	Hash  uint64
}

// LookupFleet is Lookup with a third presence level: blocks that are
// neither GPU- nor host-resident locally count as present when a peer
// holds them. It returns the longest model-wide valid prefix under
// that extended view and the peer-only blocks a claim of it would
// touch — exactly the keep-alive head and accessed tail per token
// group, and the final checkpoint for Mamba — so the fleet layer can
// fetch precisely what the claim needs. With no tier, no peers or a
// disabled prefix cache it returns (0, nil); with peers that add
// nothing, the prefix matches Lookup and the fetch list is empty.
func (m *Jenga) LookupFleet(seq *Sequence, peer PeerPresence) (int, []FetchBlock) {
	if !m.cfg.EnablePrefixCache || m.host == nil || !m.host.hasRoomEver() || peer == nil {
		return 0, nil
	}
	maxP := len(seq.Tokens) - 1 // at least one token must run
	if maxP <= 0 {
		return 0, nil
	}
	type fleetView struct {
		g        *group
		view     *GroupSeqView
		peerOnly []bool         // token groups: block index → peer-supplied
		ckHash   map[int]uint64 // Mamba: projected position → chain hash
		ckPeer   map[int]bool   // Mamba: position → peer-supplied
	}
	var views []fleetView
	anyPresent := false
	for _, g := range m.groups {
		if g.isVision() || !g.appliesTo(seq) {
			continue
		}
		v := m.buildView(g, seq.ID, seq.Tokens, true)
		fv := fleetView{g: g, view: v}
		if g.spec.Kind == model.Mamba {
			// Re-derive the checkpoint chain hashes (buildView keeps
			// them private) and overlay peer presence on the closure.
			storesImg := g.spec.StoresToken(true)
			storesTxt := g.spec.StoresToken(false)
			proj := seq.Tokens
			if !(storesImg && storesTxt) {
				proj = g.lkProj
			}
			every := g.spec.Checkpoint()
			fv.ckHash = make(map[int]uint64)
			fv.ckPeer = make(map[int]bool)
			h := blockHashSeed
			for i, t := range proj {
				h = hashChain(h, t)
				if (i+1)%every == 0 {
					fv.ckHash[i+1] = h
				}
			}
			// Walk checkpoint positions in chain order rather than
			// ranging ckHash: the peer() probe order stays
			// deterministic.
			local := v.CheckpointAt
			for pos := every; pos <= len(proj); pos += every {
				hh, ok := fv.ckHash[pos]
				if !ok {
					continue
				}
				if !local(pos) && peer(g.spec.Name, hh) {
					fv.ckPeer[pos] = true
					anyPresent = true
				}
			}
			ckPeer := fv.ckPeer
			v.CheckpointAt = func(pos int) bool { return local(pos) || ckPeer[pos] }
			anyPresent = anyPresent || len(g.index) > 0 || m.host.groupSize(g.spec.Name) > 0
		} else {
			hashes := g.lkHashes
			fv.peerOnly = make([]bool, len(hashes))
			for k, hsh := range hashes {
				if v.Present[k] {
					anyPresent = true
					continue
				}
				if peer(g.spec.Name, hsh) {
					v.Present[k] = true
					fv.peerOnly[k] = true
					anyPresent = true
				}
			}
			v.buildRuns()
		}
		views = append(views, fv)
	}
	if !anyPresent {
		return 0, nil
	}
	p := 0
candidates:
	for c := maxP; c > 0; c-- {
		for i := range views {
			fv := &views[i]
			if fv.g.spec.Kind != model.Mamba && fv.view.ProjCount[c]%fv.g.tpp != 0 {
				continue candidates
			}
			if !fv.g.pol.ValidPrefix(fv.view, c) {
				continue candidates
			}
		}
		p = c
		break
	}
	if p == 0 {
		return 0, nil
	}
	var fetch []FetchBlock
	for i := range views {
		fv := &views[i]
		g := fv.g
		pl := fv.view.ProjCount[p]
		if g.spec.Kind == model.Mamba {
			if fv.ckPeer[pl] {
				fetch = append(fetch, FetchBlock{Group: g.spec.Name, Hash: fv.ckHash[pl]})
			}
			continue
		}
		nb := pl / g.tpp
		lo := g.pol.AccessedFrom(pl) / g.tpp
		keep := 0
		if ka, ok := g.pol.(KeepAlive); ok {
			keep = (ka.KeptBelow(pl) + g.tpp - 1) / g.tpp
		}
		hashes := g.lkHashes
		add := func(b int) {
			if b < len(fv.peerOnly) && fv.peerOnly[b] {
				fetch = append(fetch, FetchBlock{Group: g.spec.Name, Hash: hashes[b]})
			}
		}
		for b := 0; b < keep && b < lo; b++ {
			add(b)
		}
		for b := lo; b < nb; b++ {
			add(b)
		}
	}
	return p, fetch
}
