package core

import (
	"errors"
	"math/rand"
	"testing"

	"jenga/internal/model"
)

// taggedSpec merges three models with different page sizes into one
// heap — a harder configuration than spec-decode's two.
func taggedSpec() *model.Spec {
	return &model.Spec{
		Name: "three-models", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "a:self", Kind: model.FullAttention, Layers: 3, BytesPerToken: 64, Tag: "A"},
			{Name: "a:win", Kind: model.SlidingWindow, Layers: 1, BytesPerToken: 64, Window: 6, Tag: "A"},
			{Name: "b:self", Kind: model.FullAttention, Layers: 2, BytesPerToken: 128, Tag: "B"},
			{Name: "c:mamba", Kind: model.Mamba, Layers: 1, StateBytes: 768, CheckpointEvery: 8, Tag: "C"},
			{Name: "c:self", Kind: model.FullAttention, Layers: 1, BytesPerToken: 64, Tag: "C"},
		},
	}
}

// TestMultiModelRandomOps drives three tagged models through one heap
// with random interleaved traffic, auditing every invariant after each
// operation. Tag mix-ups (one model's sequence touching another's
// groups) would corrupt the audit immediately.
func TestMultiModelRandomOps(t *testing.T) {
	tags := []string{"A", "B", "C"}
	for _, seed := range []int64{3, 17} {
		rng := rand.New(rand.NewSource(seed))
		m, err := New(Config{
			Spec: taggedSpec(), CapacityBytes: 1 << 16, TokensPerPage: 2,
			EnablePrefixCache: true, RequestAware: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var live []*simSeq
		var nextID RequestID = 1
		for op := 0; op < 500; op++ {
			now := Tick(op)
			switch r := rng.Intn(10); {
			case r < 5 || len(live) == 0:
				var ss *simSeq
				if len(live) == 0 || rng.Intn(3) == 0 {
					s := &Sequence{ID: nextID, Tag: tags[rng.Intn(3)]}
					nextID++
					n := 4 + rng.Intn(24)
					base := int32(rng.Intn(2) * 500)
					for i := 0; i < n; i++ {
						s.Tokens = append(s.Tokens, Token{ID: base + int32(i)})
					}
					s.PromptLen = n
					ss = &simSeq{seq: s}
					live = append(live, ss)
				} else {
					ss = live[rng.Intn(len(live))]
				}
				target := ss.reserved + 1 + rng.Intn(6)
				if target > len(ss.seq.Tokens) {
					target = len(ss.seq.Tokens)
				}
				if err := m.Reserve(ss.seq, target, now); err != nil {
					if !errors.Is(err, ErrNoSpace) {
						t.Fatalf("reserve: %v", err)
					}
					m.Release(ss.seq, rng.Intn(2) == 0)
					live = removeSim(live, ss)
				} else if target > ss.reserved {
					ss.reserved = target
				}
			case r < 8:
				ss := live[rng.Intn(len(live))]
				if ss.committed < ss.reserved {
					ss.committed += 1 + rng.Intn(ss.reserved-ss.committed)
					m.Commit(ss.seq, ss.committed, now)
				}
			default:
				ss := live[rng.Intn(len(live))]
				m.Release(ss.seq, rng.Intn(2) == 0)
				live = removeSim(live, ss)
			}
			audit(t, m)
		}
		for _, ss := range live {
			m.Release(ss.seq, false)
		}
		audit(t, m)
	}
}

func removeSim(live []*simSeq, s *simSeq) []*simSeq {
	for i, c := range live {
		if c == s {
			return append(live[:i], live[i+1:]...)
		}
	}
	return live
}

// TestCrossTagLookupIsolation: identical content under different tags
// never cross-hits, even under heavy interleaving.
func TestCrossTagLookupIsolation(t *testing.T) {
	m, err := New(Config{
		Spec: taggedSpec(), CapacityBytes: 1 << 18, TokensPerPage: 2,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range []string{"A", "B", "C"} {
		s := textSeq(RequestID(i+1), 17)
		s.Tag = tag
		s.PromptLen = 17
		if err := m.Reserve(s, 17, Tick(i)); err != nil {
			t.Fatal(err)
		}
		m.Commit(s, 17, Tick(i))
		m.Release(s, true)
	}
	for i, tag := range []string{"A", "B", "C"} {
		probe := textSeq(RequestID(100+i), 17)
		probe.Tag = tag
		if p := m.Lookup(probe); p == 0 {
			t.Errorf("tag %s should hit its own cache", tag)
		}
	}
	// A fourth, unknown tag matches no groups and must not hit or panic.
	ghost := textSeq(999, 17)
	ghost.Tag = "D"
	if p := m.Lookup(ghost); p != 0 {
		t.Errorf("unknown tag hit %d", p)
	}
	audit(t, m)
}
