package core

import (
	"math/rand"
	"sort"
	"testing"

	"jenga/internal/arena"
)

// TestFreePoolAgainstReference drives the hierarchical bitmap against a
// plain map reference across pool sizes spanning one to three summary
// levels, checking membership, count and the lowest-ID pop invariant
// after every operation.
func TestFreePoolAgainstReference(t *testing.T) {
	for _, pages := range []int{1, 7, 64, 65, 4096, 4097, 300_000} {
		var f freePool
		f.init(pages)
		ref := map[arena.SmallPageID]bool{}
		rng := rand.New(rand.NewSource(int64(pages)))
		ops := 4096
		if ops > pages*4 {
			ops = pages * 4
		}
		for i := 0; i < ops; i++ {
			id := arena.SmallPageID(rng.Intn(pages))
			if ref[id] {
				f.remove(id)
				delete(ref, id)
			} else {
				f.add(id)
				ref[id] = true
			}
			if f.has(id) == !ref[id] {
				t.Fatalf("pages=%d: has(%d) = %v after op %d", pages, id, f.has(id), i)
			}
			if f.len() != len(ref) {
				t.Fatalf("pages=%d: len = %d, want %d", pages, f.len(), len(ref))
			}
			min, ok := f.min()
			if ok != (len(ref) > 0) {
				t.Fatalf("pages=%d: min ok = %v with %d free", pages, ok, len(ref))
			}
			if ok {
				want := arena.SmallPageID(pages)
				for id := range ref {
					if id < want {
						want = id
					}
				}
				if min != want {
					t.Fatalf("pages=%d: min = %d, want %d", pages, min, want)
				}
			}
		}
	}
}

// TestFreePoolPopDrain pops a sparse set to exhaustion and expects the
// IDs back in ascending order — the §5.4 determinism guarantee.
func TestFreePoolPopDrain(t *testing.T) {
	var f freePool
	f.init(100_000)
	ids := []arena.SmallPageID{0, 1, 63, 64, 65, 4095, 4096, 90_001, 99_999}
	perm := rand.New(rand.NewSource(1)).Perm(len(ids))
	for _, i := range perm {
		f.add(ids[i])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, want := range ids {
		got, ok := f.min()
		if !ok || got != want {
			t.Fatalf("min = %d/%v, want %d", got, ok, want)
		}
		f.remove(got)
	}
	if _, ok := f.min(); ok || f.len() != 0 {
		t.Fatalf("pool not empty after drain")
	}
}
