package core

import (
	"testing"

	"jenga/internal/arena"
	"jenga/internal/model"
)

// TestBackedLayoutUnderChurn drives a backed manager through the full
// lifecycle — prefill, window demotion, release-to-cache, prefix-hit
// claims and evictions — writing a fingerprint into every slot at
// commit time and re-verifying every slot of every *live* page after
// each phase. Any allocator bug that reuses bytes still referenced by a
// live page shows up as a corrupted fingerprint.
func TestBackedLayoutUnderChurn(t *testing.T) {
	spec := &model.Spec{
		Name: "churn", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 2, BytesPerToken: 64},
			{Name: "win", Kind: model.SlidingWindow, Layers: 3, BytesPerToken: 64, Window: 8},
		},
	}
	m, err := New(Config{
		Spec: spec, CapacityBytes: 1 << 15, TokensPerPage: 2,
		EnablePrefixCache: true, RequestAware: true, Backed: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// write stamps fingerprints for every filled slot of every held
	// page of seq; expected records them for later verification.
	type slotKey struct {
		group string
		page  arena.SmallPageID
		layer int
		slot  int
	}
	expected := map[slotKey]uint64{}
	stamp := func(seq *Sequence) {
		r := m.reqs[seq.ID]
		for gi, g := range m.groups {
			rg := &r.g[gi]
			for b, ref := range rg.pages {
				if !ref.held {
					continue
				}
				pg := &g.pages[ref.id]
				for layer := 0; layer < g.spec.Layers; layer++ {
					kv, err := g.view.Kernel(layer, []arena.SmallPageID{ref.id})
					if err != nil {
						t.Fatal(err)
					}
					for s := 0; s < int(pg.filled); s++ {
						fp := arena.TokenFingerprint(uint64(seq.ID), layer*1_000_003+gi, b*g.tpp+s)
						if err := kv.WriteFingerprint(0, s, fp); err != nil {
							t.Fatal(err)
						}
						expected[slotKey{g.spec.Name, ref.id, layer, s}] = fp
					}
				}
			}
		}
	}
	// verify checks every slot of every page still held by live
	// sequences; pages that were demoted/evicted drop out of expected.
	verify := func(label string, seqs ...*Sequence) {
		t.Helper()
		for _, seq := range seqs {
			r, ok := m.reqs[seq.ID]
			if !ok {
				continue
			}
			for gi, g := range m.groups {
				rg := &r.g[gi]
				for _, ref := range rg.pages {
					if !ref.held {
						continue
					}
					pg := &g.pages[ref.id]
					for layer := 0; layer < g.spec.Layers; layer++ {
						kv, err := g.view.Kernel(layer, []arena.SmallPageID{ref.id})
						if err != nil {
							t.Fatal(err)
						}
						for s := 0; s < int(pg.filled); s++ {
							want, ok := expected[slotKey{g.spec.Name, ref.id, layer, s}]
							if !ok {
								continue
							}
							got, err := kv.ReadFingerprint(0, s)
							if err != nil {
								t.Fatal(err)
							}
							if got != want {
								t.Fatalf("%s: seq %d group %s page %d layer %d slot %d: %#x != %#x (bytes reused under a live page)",
									label, seq.ID, g.spec.Name, ref.id, layer, s, got, want)
							}
						}
					}
				}
			}
		}
	}

	// Phase 1: two sequences prefill in interleaved chunks.
	a := textSeq(1, 32)
	a.PromptLen = 32
	b := textSeq(2, 32)
	b.Tokens[0].ID = 999
	b.PromptLen = 32
	for _, upTo := range []int{8, 16, 24, 32} {
		for i, s := range []*Sequence{a, b} {
			if err := m.Reserve(s, upTo, Tick(upTo+i)); err != nil {
				t.Fatal(err)
			}
			m.Commit(s, upTo, Tick(upTo+i))
		}
		stamp(a)
		stamp(b)
		verify("prefill", a, b)
	}
	audit(t, m)

	// Phase 2: a releases to cache; c claims a's prefix and continues.
	m.Release(a, true)
	verify("after release", b)
	c := textSeq(3, 32)
	c.PromptLen = 32
	if err := m.Reserve(c, 32, 100); err != nil {
		t.Fatal(err)
	}
	if m.CachedPrefix(c) == 0 {
		t.Fatal("expected c to claim a's cache")
	}
	m.Commit(c, 32, 100)
	stamp(c)
	verify("after claim", b, c)
	audit(t, m)

	// Phase 3: eviction pressure from a fourth sequence must never
	// touch bytes under b's or c's held pages.
	d := textSeq(4, 64)
	d.Tokens[0].ID = 777
	d.PromptLen = 64
	_ = m.Reserve(d, 64, 200) // may hit ErrNoSpace; pressure is the point
	verify("under pressure", b, c)
	m.Release(b, false)
	m.Release(c, false)
	m.Release(d, false)
	audit(t, m)
}
