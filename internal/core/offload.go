package core

import (
	"container/heap"
	"sort"

	"jenga/internal/arena"
)

// Offload advice (§8): systems that spill KV to host memory or disk
// (CachedAttention, Mooncake) need a fixed-size transfer granularity
// and an ordering of what to spill first. Jenga's large pages are the
// natural granularity — uniform across layer types — and the eviction
// order is the offload order: what LRU would discard next is what an
// offloader should copy out first. The built-in host tier
// (hosttier.go) consumes exactly this order through the eviction
// path: evictLargeLRU copies the victim page out before discarding.

// OffloadHint describes one large page an offloader should spill, in
// priority order (index 0 spills first).
type OffloadHint struct {
	// LargePage is the page to spill (LargePageBytes() bytes at offset
	// LargePage × LargePageBytes in the arena).
	LargePage arena.LargePageID
	// Group is the owning layer type.
	Group string
	// LastAccess is the page's eviction key (oldest spill first).
	LastAccess Tick
	// Expired marks pages holding only out-of-horizon KV: they are the
	// cheapest to lose and spill before any live page (§3.3 ordering).
	Expired bool
}

// hintLess is the offload priority: expired first, then LRU, then
// lowest page ID — a total order, so the selection is deterministic.
func hintLess(a, b OffloadHint) bool {
	if a.Expired != b.Expired {
		return a.Expired
	}
	if a.LastAccess != b.LastAccess {
		return a.LastAccess < b.LastAccess
	}
	return a.LargePage < b.LargePage
}

// hintHeap is a bounded max-heap on hintLess: the top is the *worst*
// kept hint, so top-k selection evicts it when a better candidate
// appears. This keeps a bounded OffloadOrder at O(L log max) instead
// of sorting every evictable page for any max.
type hintHeap []OffloadHint

func (h hintHeap) Len() int           { return len(h) }
func (h hintHeap) Less(i, j int) bool { return hintLess(h[j], h[i]) }
func (h hintHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hintHeap) Push(x any)        { *h = append(*h, x.(OffloadHint)) }
func (h *hintHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// OffloadOrder returns up to max evictable large pages in the order the
// evictor would discard them — expired pages first, then LRU. An
// offloading layer copies pages out in this order so that when eviction
// strikes, the discarded bytes already live in the next memory tier.
// The call is read-only: nothing is evicted. max ≤ 0 returns every
// evictable page.
//
// Pages pinned by an in-flight commit are excluded: any large page
// with a used small page on it is referenced by a live reservation
// whose commit may still be in flight, so spilling it could race the
// commit's writes. Only fully evictable pages (no used pages, ≥ 1
// cached page) are advised — the same rule the evictor and the host
// tier's spill path enforce.
func (m *Jenga) OffloadOrder(max int) []OffloadHint {
	if max <= 0 || max > m.ar.NumLargePages() {
		max = m.ar.NumLargePages()
	}
	var top hintHeap
	for L := 0; L < m.ar.NumLargePages(); L++ {
		// largeTimestamp is the commit-pin gate: it rejects pages with
		// used (reservation-held) small pages and pages with nothing
		// cached.
		ts, expired, ok := m.largeTimestamp(arena.LargePageID(L))
		if !ok {
			continue
		}
		h := OffloadHint{
			LargePage:  arena.LargePageID(L),
			Group:      m.groups[m.largeOwner[L]].spec.Name,
			LastAccess: ts,
			Expired:    expired,
		}
		if len(top) < max {
			heap.Push(&top, h)
		} else if hintLess(h, top[0]) {
			top[0] = h
			heap.Fix(&top, 0)
		}
	}
	hints := []OffloadHint(top)
	sort.Slice(hints, func(i, j int) bool { return hintLess(hints[i], hints[j]) })
	return hints
}

// OffloadGranularity returns the fixed transfer size an offloader
// should use: one large page, compatible across every layer type.
func (m *Jenga) OffloadGranularity() int { return m.geo.LargePageBytes }
