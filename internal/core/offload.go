package core

import (
	"sort"

	"jenga/internal/arena"
)

// Offload advice (§8): systems that spill KV to host memory or disk
// (CachedAttention, Mooncake) need a fixed-size transfer granularity
// and an ordering of what to spill first. Jenga's large pages are the
// natural granularity — uniform across layer types — and the eviction
// order is the offload order: what LRU would discard next is what an
// offloader should copy out first.

// OffloadHint describes one large page an offloader should spill, in
// priority order (index 0 spills first).
type OffloadHint struct {
	// LargePage is the page to spill (LargePageBytes() bytes at offset
	// LargePage × LargePageBytes in the arena).
	LargePage arena.LargePageID
	// Group is the owning layer type.
	Group string
	// LastAccess is the page's eviction key (oldest spill first).
	LastAccess Tick
	// Expired marks pages holding only out-of-horizon KV: they are the
	// cheapest to lose and spill before any live page (§3.3 ordering).
	Expired bool
}

// OffloadOrder returns up to max evictable large pages in the order the
// evictor would discard them — expired pages first, then LRU. An
// offloading layer copies pages out in this order so that when eviction
// strikes, the discarded bytes already live in the next memory tier.
// The call is read-only: nothing is evicted.
func (m *Jenga) OffloadOrder(max int) []OffloadHint {
	var hints []OffloadHint
	for L := 0; L < m.ar.NumLargePages(); L++ {
		ts, expired, ok := m.largeTimestamp(arena.LargePageID(L))
		if !ok {
			continue
		}
		hints = append(hints, OffloadHint{
			LargePage:  arena.LargePageID(L),
			Group:      m.groups[m.largeOwner[L]].spec.Name,
			LastAccess: ts,
			Expired:    expired,
		})
	}
	sort.Slice(hints, func(i, j int) bool {
		if hints[i].Expired != hints[j].Expired {
			return hints[i].Expired
		}
		if hints[i].LastAccess != hints[j].LastAccess {
			return hints[i].LastAccess < hints[j].LastAccess
		}
		return hints[i].LargePage < hints[j].LargePage
	})
	if max > 0 && len(hints) > max {
		hints = hints[:max]
	}
	return hints
}

// OffloadGranularity returns the fixed transfer size an offloader
// should use: one large page, compatible across every layer type.
func (m *Jenga) OffloadGranularity() int { return m.geo.LargePageBytes }
