package core

import (
	"container/heap"

	"jenga/internal/arena"
)

// Host-memory KV tier (§8 direction: CachedAttention, Mooncake). The
// tier stores spilled large pages — the LCM granularity, uniform
// across layer types, exactly what OffloadOrder advertises as the
// transfer unit — under a byte budget. Spills happen on the eviction
// path (evictLargeLRU copies a victim page out before discarding it)
// and proactively on swap-based preemption (SwapOut); restores happen
// when a prefix Lookup hits a block whose only copy lives in the
// tier, at claim time.
//
// The tier is pure accounting plus metadata: each spilled large page
// records the block identities (hash, priority, last access, fill)
// of its cached small pages, and — for backed arenas — the raw small
// page bytes, so tests can prove a spill/restore round trip is
// byte-exact. Everything is deterministic: spill order is the
// eviction order, tier eviction is oldest-touch-first with the spill
// sequence number as the tiebreak.

// hostBlock is one spilled small page's identity and (for backed
// arenas) contents. Recency and expiry are deliberately not carried:
// a restored block is immediately claimed (used) by a request, and
// its eviction class is recomputed from scratch when that request's
// commit/release path demotes it — host-tier residence resets a
// block's eviction history just like a fresh commit would.
type hostBlock struct {
	hash     uint64
	priority int64
	filled   int32
	// data holds the small page's bytes (backed arenas only).
	data []byte
}

// hostPage is one spilled large page: the tier's budget unit.
type hostPage struct {
	group string
	// seq is the spill sequence number — unique, so (touch, seq) is a
	// total order and tier eviction is deterministic.
	seq int64
	// touch is the page's last access (restores refresh it).
	touch Tick
	// blocks are the cached small pages the large page held at spill
	// time.
	blocks []hostBlock
	// bytes is the accounted size: one large page, regardless of how
	// many blocks it carried (the transfer granularity is the whole
	// page).
	bytes int64
}

// TierStats is the host tier's counter snapshot, exposed through the
// TierManager capability so serving layers can report tier hit rates
// and transfer volumes.
type TierStats struct {
	// SwapOuts counts large pages spilled to the host tier; SwapIns
	// counts blocks restored from it.
	SwapOuts, SwapIns int64
	// SpilledBytes and RestoredBytes are the D2H and H2D transfer
	// volumes.
	SpilledBytes, RestoredBytes int64
	// RestoredTokens counts model-wide prefix tokens the tier served
	// beyond the GPU-only prefix (tokens saved from recompute).
	RestoredTokens int64
	// HostEvictions counts spilled pages the tier dropped to stay
	// within its byte budget.
	HostEvictions int64
	// HostUsed and HostCapacity are the tier's live byte accounting.
	HostUsed, HostCapacity int64
	// PeerExports/PeerImports count pages serialized out of and
	// injected into this tier by the fleet transfer path
	// (ExportPrefix/ImportPrefix); the byte counters are the
	// corresponding wire volumes. Peer traffic is deliberately kept
	// out of SwapOuts/SpilledBytes: it rides the peer link, not PCIe.
	PeerExports, PeerImports         int64
	PeerExportBytes, PeerImportBytes int64
	// PeerSkips and PeerFails count fleet fetch batches whose holder
	// contributed nothing to this (destination) tier: skipped — the
	// holder had nothing left to export by transfer time — or failed —
	// the transfer faulted past its retry budget. Recorded through
	// NotePeerFetch so partial fetches are observable, never silent.
	PeerSkips, PeerFails int64
}

// hostTier is the byte-budgeted second memory tier.
type hostTier struct {
	capacity  int64
	pageBytes int64 // large-page size: the budget and transfer unit
	used      int64
	nextSeq   int64
	// pages holds every live spilled page by sequence number.
	pages map[int64]*hostPage
	// index maps group name → block hash → owning page sequence
	// number. A re-spill of the same hash repoints the index; the
	// older page's copy becomes unreachable and dies with its page.
	index map[string]map[uint64]int64
	// pinned pages are mid-restore and must not be evicted: a restore
	// allocates GPU pages, and that allocation may itself spill (and
	// therefore tier-evict) — it must not evict the source.
	pinned map[int64]int
	// evict orders pages by (touch, seq) for O(log n) tier eviction.
	// Entries are immutable snapshots validated lazily on pop (the
	// same pattern as the allocator's page heaps): a touch refresh
	// pushes a new entry and the stale one is skipped later.
	evict hostEvictHeap
	stats TierStats
	// obs, when set, is notified of every content change: block hashes
	// entering the tier (store) and leaving it (dropPage). The fleet
	// directory registers and invalidates through these callbacks; nil
	// (the default) costs nothing.
	obs TierObserver
}

// hostEvictEntry is one (touch, seq) snapshot in the eviction heap.
type hostEvictEntry struct {
	touch Tick
	seq   int64
}

// hostEvictHeap is a min-heap on (touch, seq) — the seq tiebreak
// makes the order total, so tier eviction is deterministic.
type hostEvictHeap []hostEvictEntry

func (h hostEvictHeap) Len() int { return len(h) }
func (h hostEvictHeap) Less(i, j int) bool {
	if h[i].touch != h[j].touch {
		return h[i].touch < h[j].touch
	}
	return h[i].seq < h[j].seq
}
func (h hostEvictHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hostEvictHeap) Push(x any)   { *h = append(*h, x.(hostEvictEntry)) }
func (h *hostEvictHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// newHostTier builds a tier with the given byte budget. A budget
// below one large page can never hold a spill: hasRoomEver is false
// and every caller treats the tier as absent.
func newHostTier(capacity int64, pageBytes int) *hostTier {
	return &hostTier{
		capacity:  capacity,
		pageBytes: int64(pageBytes),
		pages:     make(map[int64]*hostPage),
		index:     make(map[string]map[uint64]int64),
		pinned:    make(map[int64]int),
		stats:     TierStats{HostCapacity: capacity},
	}
}

// hasRoomEver reports whether the budget admits even one page.
func (h *hostTier) hasRoomEver() bool { return h.capacity >= h.pageBytes }

// lookup reports whether the tier holds a live copy of (group, hash).
func (h *hostTier) lookup(group string, hash uint64) (*hostBlock, bool) {
	gi, ok := h.index[group]
	if !ok {
		return nil, false
	}
	seq, ok := gi[hash]
	if !ok {
		return nil, false
	}
	pg := h.pages[seq]
	for i := range pg.blocks {
		if pg.blocks[i].hash == hash {
			return &pg.blocks[i], true
		}
	}
	check(false, "host tier: index entry %x without block", hash)
	return nil, false
}

// groupSize returns the number of live indexed blocks for a group.
func (h *hostTier) groupSize(group string) int { return len(h.index[group]) }

// pin marks the page owning (group, hash) as un-evictable for the
// duration of a restore; it returns the page's sequence number, or
// -1 when the hash is not resident. Pins nest.
func (h *hostTier) pin(group string, hash uint64) int64 {
	gi, ok := h.index[group]
	if !ok {
		return -1
	}
	seq, ok := gi[hash]
	if !ok {
		return -1
	}
	h.pinned[seq]++
	return seq
}

// unpin releases one pin on a page (a no-op for -1 or a page the
// tier already dropped before it was ever pinned).
func (h *hostTier) unpin(seq int64) {
	if seq < 0 {
		return
	}
	if n, ok := h.pinned[seq]; ok {
		if n <= 1 {
			delete(h.pinned, seq)
		} else {
			h.pinned[seq] = n - 1
		}
	}
}

// spill stores one large page's cached blocks as a new host page,
// evicting the least-recently-touched unpinned pages as needed to
// stay within budget. It reports whether the page was stored (false
// when the budget can never fit it, or when pins block every
// eviction candidate).
func (h *hostTier) spill(group string, blocks []hostBlock, now Tick) bool {
	if !h.store(group, blocks, now) {
		return false
	}
	h.stats.SwapOuts++
	h.stats.SpilledBytes += h.pageBytes
	return true
}

// store is the common page-admission path behind the D2H spill and the
// fleet import: budget eviction, indexing, recency, observer
// registration — everything except the transfer-direction accounting,
// which the two callers charge differently.
func (h *hostTier) store(group string, blocks []hostBlock, now Tick) bool {
	if !h.hasRoomEver() || len(blocks) == 0 {
		return false
	}
	for h.used+h.pageBytes > h.capacity {
		if !h.evictOne() {
			return false
		}
	}
	seq := h.nextSeq
	h.nextSeq++
	pg := &hostPage{group: group, seq: seq, touch: now, blocks: blocks, bytes: h.pageBytes}
	h.pages[seq] = pg
	heap.Push(&h.evict, hostEvictEntry{touch: now, seq: seq})
	gi := h.index[group]
	if gi == nil {
		gi = make(map[uint64]int64)
		h.index[group] = gi
	}
	for i := range blocks {
		gi[blocks[i].hash] = seq
	}
	h.used += pg.bytes
	h.stats.HostUsed = h.used
	if h.obs != nil {
		hashes := make([]uint64, len(blocks))
		for i := range blocks {
			hashes[i] = blocks[i].hash
		}
		h.obs.TierStored(group, hashes)
	}
	return true
}

// resident reports whether every hash in hs is live in the tier —
// the dedup check that makes spill-on-evict free for pages whose
// bytes already moved to host at swap-out time.
func (h *hostTier) resident(group string, hs []uint64) bool {
	gi, ok := h.index[group]
	if !ok {
		return false
	}
	for _, hash := range hs {
		if _, ok := gi[hash]; !ok {
			return false
		}
	}
	return true
}

// touchPage refreshes the owning page's last access (restore hits),
// re-queueing it in the eviction heap; the stale entry is skipped on
// pop.
func (h *hostTier) touchPage(group string, hash uint64, now Tick) {
	if gi, ok := h.index[group]; ok {
		if seq, ok := gi[hash]; ok {
			if pg := h.pages[seq]; pg.touch < now {
				pg.touch = now
				heap.Push(&h.evict, hostEvictEntry{touch: now, seq: seq})
			}
		}
	}
}

// evictOne drops the least-recently-touched unpinned page (spill
// sequence breaks ties), reporting whether anything was dropped —
// O(log n) amortized via the lazily validated heap. Pinned
// candidates are stashed and re-queued so a pin never loses a page
// its position in the order.
func (h *hostTier) evictOne() bool {
	var stash []hostEvictEntry
	dropped := false
	for h.evict.Len() > 0 {
		e := heap.Pop(&h.evict).(hostEvictEntry)
		pg, live := h.pages[e.seq]
		if !live || pg.touch != e.touch {
			continue // stale: page gone or touched since
		}
		if _, p := h.pinned[e.seq]; p {
			stash = append(stash, e)
			continue
		}
		h.dropPage(pg)
		h.stats.HostEvictions++
		dropped = true
		break
	}
	for _, s := range stash {
		heap.Push(&h.evict, s)
	}
	return dropped
}

// dropPage removes a page, deleting only the index entries that
// still point at it (a later re-spill may have repointed some). The
// observer hears exactly the hashes whose live copy died — repointed
// hashes are still resident and stay registered.
func (h *hostTier) dropPage(pg *hostPage) {
	gi := h.index[pg.group]
	var gone []uint64
	for i := range pg.blocks {
		if seq, ok := gi[pg.blocks[i].hash]; ok && seq == pg.seq {
			delete(gi, pg.blocks[i].hash)
			if h.obs != nil {
				gone = append(gone, pg.blocks[i].hash)
			}
		}
	}
	delete(h.pages, pg.seq)
	h.used -= pg.bytes
	h.stats.HostUsed = h.used
	if h.obs != nil && len(gone) > 0 {
		h.obs.TierEvicted(pg.group, gone)
	}
}

// --- Jenga integration ---------------------------------------------------

// TierManager is the optional Manager capability a host-tiered
// manager exposes to the serving engine: swap-based preemption,
// per-step transfer draining for the PCIe cost term, and tier
// statistics for reports. core.Jenga implements it; the baselines do
// not, and the engine degrades to recompute preemption for them.
type TierManager interface {
	// SwapOut releases the sequence cache-preservingly and proactively
	// spills its fully evictable large pages to the host tier,
	// returning the pages and bytes moved (zero with no tier).
	SwapOut(seq *Sequence) (pages int, bytes int64)
	// DrainTransfers returns and resets the H2D/D2H bytes moved since
	// the previous drain — the engine charges them to the step's PCIe
	// budget.
	DrainTransfers() (h2d, d2h int64)
	// TierStats snapshots the tier's counters.
	TierStats() TierStats
	// RestoreCost returns the host-restore share of the sequence's
	// prefix claim: tokens and bytes served from the tier (zero when
	// the claim was GPU-only or no claim happened).
	RestoreCost(seq *Sequence) (tokens int, bytes int64)

	// The fleet transfer surface (see fleet.go): serializing tier
	// pages out for a peer, injecting a peer's pages, the
	// peer-extended prefix lookup, and the content-change observer the
	// fleet directory registers through.
	ExportPrefix(group string, hashes []uint64) (PageSet, bool)
	ImportPrefix(ps PageSet, now Tick) (pages int, bytes int64)
	LookupFleet(seq *Sequence, peer PeerPresence) (p int, fetch []FetchBlock)
	SetTierObserver(obs TierObserver)
}

var _ TierManager = (*Jenga)(nil)

// HostTierUsage returns the tier's live byte accounting (0, 0 with no
// tier configured).
func (m *Jenga) HostTierUsage() (used, capacity int64) {
	if m.host == nil {
		return 0, 0
	}
	return m.host.used, m.host.capacity
}

// TierStats implements TierManager.
func (m *Jenga) TierStats() TierStats {
	if m.host == nil {
		return TierStats{}
	}
	return m.host.stats
}

// DrainTransfers implements TierManager.
func (m *Jenga) DrainTransfers() (h2d, d2h int64) {
	h2d, d2h = m.pendingH2D, m.pendingD2H
	m.pendingH2D, m.pendingD2H = 0, 0
	return h2d, d2h
}

// RestoreCost implements TierManager.
func (m *Jenga) RestoreCost(seq *Sequence) (int, int64) {
	if r, ok := m.reqs[seq.ID]; ok {
		return r.restoredTokens, r.restoredBytes
	}
	return 0, 0
}

// SwapOut implements TierManager: the swap-preemption primitive. The
// sequence's pages are released cache-preservingly (publishing every
// complete block, exactly like Release(seq, true)), and each large
// page that thereby became fully evictable is copied out to the host
// tier — so even if memory pressure later evicts those pages, the
// preempted request restores from host instead of recomputing. With
// no tier (or no prefix cache), SwapOut degrades to the plain
// cache-preserving release.
func (m *Jenga) SwapOut(seq *Sequence) (int, int64) {
	r, ok := m.reqs[seq.ID]
	if !ok {
		return 0, 0
	}
	var candidates []arena.LargePageID
	if m.host != nil && m.host.hasRoomEver() && m.cfg.EnablePrefixCache {
		candidates = m.heldLargePages(r)
	}
	m.Release(seq, true)
	pages, bytes := 0, int64(0)
	for _, L := range candidates {
		if m.spillLarge(L, r.lastNow) {
			pages++
			bytes += int64(m.geo.LargePageBytes)
		}
	}
	return pages, bytes
}

// heldLargePages collects, in ascending order, the distinct large
// pages holding any page the request currently references.
func (m *Jenga) heldLargePages(r *reqState) []arena.LargePageID {
	seen := make(map[arena.LargePageID]bool)
	var out []arena.LargePageID
	add := func(g *group, id arena.SmallPageID) {
		L := m.largeOf(g, id)
		if !seen[L] {
			seen[L] = true
			out = append(out, L)
		}
	}
	for gi, g := range m.groups {
		rg := &r.g[gi]
		for b := range rg.pages {
			if rg.pages[b].held {
				add(g, rg.pages[b].id)
			}
		}
		for i := range rg.ckpts {
			if rg.ckpts[i].held {
				add(g, rg.ckpts[i].id)
			}
		}
	}
	sortLargeIDs(out)
	return out
}

// sortLargeIDs sorts ascending (tiny n; insertion sort avoids an
// import and allocation).
func sortLargeIDs(ids []arena.LargePageID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// spillLarge copies large page L's cached blocks into the host tier
// (without evicting them from the GPU), reporting whether a transfer
// happened. The page must be fully evictable — any used page on it
// means an in-flight request still references it, and spilling would
// race that commit, so such pages are skipped. Pages whose blocks
// are all already host-resident cost nothing (the swap-out already
// moved them).
func (m *Jenga) spillLarge(L arena.LargePageID, now Tick) bool {
	if m.host == nil || !m.host.hasRoomEver() {
		return false
	}
	if m.largeOwner[L] < 0 || m.cntUsed[L] != 0 || m.cntCached[L] == 0 {
		return false
	}
	g := m.groups[m.largeOwner[L]]
	first, n := g.view.SmallRange(L)
	blocks := make([]hostBlock, 0, m.cntCached[L])
	hashes := make([]uint64, 0, m.cntCached[L])
	for i := 0; i < n; i++ {
		id := first + arena.SmallPageID(i)
		pg := &g.pages[id]
		if pg.status != pageCached || !pg.hashed {
			continue
		}
		hb := hostBlock{
			hash:     pg.hash,
			priority: pg.priority,
			filled:   pg.filled,
		}
		if m.ar.Backed() {
			if buf, err := g.view.SmallSlice(id); err == nil {
				hb.data = append([]byte(nil), buf...)
			}
		}
		blocks = append(blocks, hb)
		hashes = append(hashes, pg.hash)
	}
	if len(blocks) == 0 {
		return false
	}
	if m.host.resident(g.spec.Name, hashes) {
		// Dedup: the bytes already live in the tier (a swap-out beat
		// the evictor here); just refresh recency.
		m.host.touchPage(g.spec.Name, hashes[0], now)
		return false
	}
	if !m.host.spill(g.spec.Name, blocks, now) {
		return false
	}
	m.stats.SwapOuts++
	m.pendingD2H += int64(m.geo.LargePageBytes)
	return true
}

// restoreBlock allocates a GPU page for a host-resident block and
// rebuilds it as a committed, published block owned by req (claim's
// H2D path). The source host page must be pinned by the caller; the
// host copy stays (the tier is a cache). Returns the page and
// whether the GPU allocation succeeded.
func (m *Jenga) restoreBlock(g *group, hb hostBlock, hash uint64, req RequestID, now Tick) (arena.SmallPageID, bool) {
	id, err := m.allocSmall(g, req)
	if err != nil {
		return 0, false
	}
	pg := &g.pages[id]
	pg.filled = hb.filled
	g.filledSlots += int64(hb.filled)
	pg.hash = hash
	pg.complete = true
	pg.priority = hb.priority
	pg.lastAccess = now
	if _, ok := g.index[hash]; !ok {
		g.index[hash] = id
		pg.hashed = true
	}
	if m.ar.Backed() && hb.data != nil {
		if buf, err := g.view.SmallSlice(id); err == nil {
			copy(buf, hb.data)
		}
	}
	m.host.touchPage(g.spec.Name, hash, now)
	m.host.stats.SwapIns++
	m.host.stats.RestoredBytes += int64(g.smallBytes)
	m.stats.SwapIns++
	m.pendingH2D += int64(g.smallBytes)
	return id, true
}
