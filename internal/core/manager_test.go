package core

import (
	"errors"
	"testing"

	"jenga/internal/arena"
	"jenga/internal/model"
)

// fig6Spec is the paper's running example (§4.1, Fig. 6): 3 self-attn
// layers over text tokens, 2 cross-attn layers over image tokens,
// 128 B per layer per token.
func fig6Spec() *model.Spec {
	return &model.Spec{
		Name: "fig6", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 3, BytesPerToken: 128, Scope: model.ScopeText},
			{Name: "cross", Kind: model.CrossAttention, Layers: 2, BytesPerToken: 128, Scope: model.ScopeImage},
		},
	}
}

// windowSpec mixes full and sliding-window attention (Gemma/Ministral
// shape) at tiny scale.
func windowSpec(window int) *model.Spec {
	return &model.Spec{
		Name: "win", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 2, BytesPerToken: 128},
			{Name: "window", Kind: model.SlidingWindow, Layers: 2, BytesPerToken: 128, Window: window},
		},
	}
}

// mambaSpec mixes attention with a Mamba group at tiny scale.
func mambaSpec(every int) *model.Spec {
	return &model.Spec{
		Name: "mamba", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "attn", Kind: model.FullAttention, Layers: 2, BytesPerToken: 128},
			{Name: "mamba", Kind: model.Mamba, Layers: 2, StateBytes: 1024, CheckpointEvery: every},
		},
	}
}

func textSeq(id RequestID, n int) *Sequence {
	s := &Sequence{ID: id}
	for i := 0; i < n; i++ {
		s.Tokens = append(s.Tokens, Token{ID: int32(i%997 + 1)})
	}
	return s
}

// mixedSeq builds <IMG>*imgN followed by text*txtN (mllama shape).
func mixedSeq(id RequestID, imgN, txtN int) *Sequence {
	s := &Sequence{ID: id}
	for i := 0; i < imgN; i++ {
		s.Tokens = append(s.Tokens, Token{ID: int32(i + 1), Image: true})
	}
	for i := 0; i < txtN; i++ {
		s.Tokens = append(s.Tokens, Token{ID: int32(i + 1)})
	}
	return s
}

// audit recomputes every counter from page states and compares with the
// incremental bookkeeping; it also checks structural invariants. It is
// the workhorse behind the property-based tests (DESIGN.md §4).
func audit(t *testing.T, m *Jenga) {
	t.Helper()
	var ownedLargeTotal int64
	for L := range m.largeOwner {
		var used, cached, expired int32
		var maxTS Tick
		if m.largeOwner[L] >= 0 {
			g := m.groups[m.largeOwner[L]]
			first, n := g.view.SmallRange(arena.LargePageID(L))
			for i := 0; i < n; i++ {
				pg := &g.pages[first+arena.SmallPageID(i)]
				switch pg.status {
				case pageUsed:
					used++
				case pageCached:
					cached++
					if pg.expired {
						expired++
					}
					if pg.lastAccess > maxTS {
						maxTS = pg.lastAccess
					}
				}
			}
			ownedLargeTotal++
		}
		if used != m.cntUsed[L] || cached != m.cntCached[L] {
			t.Fatalf("large %d: cnt used/cached = %d/%d, recount %d/%d",
				L, m.cntUsed[L], m.cntCached[L], used, cached)
		}
		// The incremental eviction key: expired count is exact; the
		// cached max last-access is exact when clean and an upper bound
		// while dirty (the max-holder left, pending a lazy rescan).
		if expired != m.cntExpired[L] {
			t.Fatalf("large %d: cntExpired = %d, recount %d", L, m.cntExpired[L], expired)
		}
		if cached == 0 {
			if m.largeTS[L] != 0 || m.largeDirty[L] {
				t.Fatalf("large %d: uncached but largeTS/dirty = %d/%v", L, m.largeTS[L], m.largeDirty[L])
			}
		} else if m.largeDirty[L] {
			if m.largeTS[L] < maxTS {
				t.Fatalf("large %d: dirty largeTS = %d below true max %d", L, m.largeTS[L], maxTS)
			}
		} else if m.largeTS[L] != maxTS {
			t.Fatalf("large %d: clean largeTS = %d, true max %d", L, m.largeTS[L], maxTS)
		}
		if m.largeOwner[L] >= 0 && used == 0 && cached == 0 {
			t.Fatalf("large %d: fully empty but still owned (reclaim missed)", L)
		}
	}
	if int(ownedLargeTotal)+len(m.freeLarge) != m.ar.NumLargePages() {
		t.Fatalf("large pages: %d owned + %d free != %d total",
			ownedLargeTotal, len(m.freeLarge), m.ar.NumLargePages())
	}
	for _, g := range m.groups {
		var nUsed, nCached, owned int
		var filled, dead, extra int64
		for L := range m.largeOwner {
			if m.largeOwner[L] != int32(g.idx) {
				continue
			}
			owned++
			first, n := g.view.SmallRange(arena.LargePageID(L))
			for i := 0; i < n; i++ {
				pg := &g.pages[first+arena.SmallPageID(i)]
				switch pg.status {
				case pageUsed:
					nUsed++
					filled += int64(pg.filled)
					dead += int64(pg.dead)
					extra += int64(pg.ref - 1)
					if pg.ref <= 0 {
						t.Fatalf("group %s: used page %d with ref %d", g.spec.Name, first+arena.SmallPageID(i), pg.ref)
					}
				case pageCached:
					nCached++
					if pg.ref != 0 {
						t.Fatalf("group %s: cached page with refs", g.spec.Name)
					}
					if !pg.hashed {
						t.Fatalf("group %s: cached page without index entry", g.spec.Name)
					}
				case pageEmpty:
					if !g.free.has(first + arena.SmallPageID(i)) {
						t.Fatalf("group %s: empty owned page %d missing from free pool", g.spec.Name, first+arena.SmallPageID(i))
					}
				}
			}
		}
		if nUsed != g.nUsed || nCached != g.nCached || owned != g.ownedLarge {
			t.Fatalf("group %s: counters used/cached/owned = %d/%d/%d, recount %d/%d/%d",
				g.spec.Name, g.nUsed, g.nCached, g.ownedLarge, nUsed, nCached, owned)
		}
		if filled != g.filledSlots || dead != g.deadSlots {
			t.Fatalf("group %s: slots filled/dead = %d/%d, recount %d/%d",
				g.spec.Name, g.filledSlots, g.deadSlots, filled, dead)
		}
		if extra != g.extraRefs {
			t.Fatalf("group %s: extraRefs = %d, recount %d", g.spec.Name, g.extraRefs, extra)
		}
		nFree := 0
		for p := range g.pages {
			id := arena.SmallPageID(p)
			if !g.free.has(id) {
				continue
			}
			nFree++
			pg := &g.pages[id]
			if pg.status != pageEmpty {
				t.Fatalf("group %s: free pool holds non-empty page %d", g.spec.Name, id)
			}
			if m.largeOwner[g.view.LargeOf(id)] != int32(g.idx) {
				t.Fatalf("group %s: free page %d in foreign large page", g.spec.Name, id)
			}
		}
		if nFree != g.free.len() {
			t.Fatalf("group %s: free pool count %d, recount %d", g.spec.Name, g.free.len(), nFree)
		}
		for h, id := range g.index {
			pg := &g.pages[id]
			if !pg.hashed || pg.hash != h || pg.status == pageEmpty {
				t.Fatalf("group %s: dangling index entry %x -> page %d", g.spec.Name, h, id)
			}
		}
	}
	u := m.Usage()
	total := u.Used + u.Cached + u.Wasted + u.Free
	if total != m.Capacity() {
		t.Fatalf("usage not conserved: used %d + cached %d + wasted %d + free %d = %d != capacity %d",
			u.Used, u.Cached, u.Wasted, u.Free, total, m.Capacity())
	}
	if u.Used < 0 || u.Cached < 0 || u.Wasted < 0 || u.Free < 0 {
		t.Fatalf("negative usage component: %+v", u)
	}
}

func newMgr(t *testing.T, spec *model.Spec, capacity int64, tpp int, cache bool) *Jenga {
	t.Helper()
	m, err := New(Config{
		Spec: spec, CapacityBytes: capacity, TokensPerPage: tpp,
		EnablePrefixCache: cache, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil spec should error")
	}
	if _, err := New(Config{Spec: fig6Spec(), CapacityBytes: 10}); err == nil {
		t.Error("capacity below one large page should error")
	}
	if _, err := New(Config{Spec: fig6Spec(), CapacityBytes: 1 << 20, TokensPerPage: -1}); err == nil {
		t.Error("negative tokensPerPage should error")
	}
	bad := fig6Spec()
	bad.Groups[0].Layers = 0
	if _, err := New(Config{Spec: bad, CapacityBytes: 1 << 20}); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestBasicLifecycle(t *testing.T) {
	m := newMgr(t, fig6Spec(), 64*768, 1, false)
	seq := mixedSeq(1, 4, 2) // Fig. 6: <IMG>×4 Hello World
	if err := m.Reserve(seq, 6, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 6, 1)
	audit(t, m)
	u := m.Usage()
	// 2 text tokens × 384 + 4 image tokens × 256 = 1792 bytes used.
	if want := int64(2*384 + 4*256); u.Used != want {
		t.Errorf("used = %d, want %d", u.Used, want)
	}
	// Waste: text large page has 0 empty small pages? tokensPerPage=1:
	// text needs 2 small pages (ratio 2) → exactly one large page, no
	// waste. Image needs 4 smalls (ratio 3) → 2 large pages, 2 unused
	// smalls = 512 bytes wasted.
	if want := int64(2 * 256); u.Wasted != want {
		t.Errorf("wasted = %d, want %d", u.Wasted, want)
	}
	m.Release(seq, false)
	audit(t, m)
	u = m.Usage()
	if u.Used != 0 || u.Wasted != 0 || u.Cached != 0 {
		t.Errorf("after release: %+v", u)
	}
	if u.Free != m.Capacity() {
		t.Errorf("free = %d, want full capacity %d", u.Free, m.Capacity())
	}
	st := m.Stats()
	if st.LargeReclaims == 0 {
		t.Error("release should reclaim large pages")
	}
}

func TestReserveBeyondLengthErrors(t *testing.T) {
	m := newMgr(t, fig6Spec(), 64*768, 1, false)
	seq := textSeq(1, 3)
	if err := m.Reserve(seq, 4, 1); err == nil {
		t.Error("reserve beyond sequence length should error")
	}
	if err := m.EncodeImages(seq, 4, 1); err == nil {
		t.Error("encode beyond sequence length should error")
	}
}

func TestReserveIdempotentAndMonotonic(t *testing.T) {
	m := newMgr(t, fig6Spec(), 64*768, 1, false)
	seq := textSeq(1, 10)
	if err := m.Reserve(seq, 5, 1); err != nil {
		t.Fatal(err)
	}
	a := m.Stats().Allocs
	if err := m.Reserve(seq, 5, 2); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Allocs != a {
		t.Error("repeated reserve should not allocate")
	}
	if err := m.Reserve(seq, 3, 2); err != nil {
		t.Fatal("shrinking reserve should be a no-op, not an error")
	}
	m.Commit(seq, 5, 2)
	audit(t, m)
	m.Release(seq, false)
	audit(t, m)
}

func TestErrNoSpaceAndRetry(t *testing.T) {
	// Capacity of exactly 2 large pages; text ratio 2 → 4 text slots.
	m := newMgr(t, fig6Spec(), 2*768, 1, false)
	seq := textSeq(1, 10)
	err := m.Reserve(seq, 10, 1)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace, got %v", err)
	}
	audit(t, m)
	// Partial progress: 4 tokens should have pages.
	if err := m.Reserve(seq, 4, 1); err != nil {
		t.Fatalf("reserve within capacity after failure: %v", err)
	}
	m.Commit(seq, 4, 1)
	audit(t, m)
	// Releasing frees everything; a new request can then fit.
	m.Release(seq, false)
	seq2 := textSeq(2, 4)
	if err := m.Reserve(seq2, 4, 2); err != nil {
		t.Fatal(err)
	}
	audit(t, m)
}

func TestWindowFreeing(t *testing.T) {
	// Window 4, tpp 2: committed tokens beyond the window free their
	// blocks (caching off → pages return to the free pool).
	spec := windowSpec(4)
	m := newMgr(t, spec, 1<<20, 2, false)
	seq := textSeq(1, 40)
	if err := m.Reserve(seq, 40, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 40, 1)
	audit(t, m)
	u := m.Usage()
	full := u.PerGroup["full"]
	win := u.PerGroup["window"]
	// Full group: all 40 tokens live (40 × 256 per-token bytes... 2
	// layers × 128 = 256/token).
	if want := int64(40 * 256); full.Used != want {
		t.Errorf("full used = %d, want %d", full.Used, want)
	}
	// Window group: only the last 4 tokens live.
	if want := int64(4 * 256); win.Used != want {
		t.Errorf("window used = %d, want %d", win.Used, want)
	}
	m.Release(seq, false)
	audit(t, m)
}

func TestWindowDeadSlotBoundary(t *testing.T) {
	// Window 3, tpp 2: freeBelow lands mid-block, leaving one dead slot
	// in the boundary page.
	spec := windowSpec(3)
	m := newMgr(t, spec, 1<<20, 2, false)
	seq := textSeq(1, 10)
	if err := m.Reserve(seq, 10, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 10, 1)
	audit(t, m)
	win := m.Usage().PerGroup["window"]
	// 10 tokens, window 3 → freeBelow 7 → blocks 0-2 freed, block 3
	// keeps token 7 dead (1 dead slot), tokens 8,9 live in blocks 3-4.
	if want := int64(3 * 256); win.Used != want {
		t.Errorf("window used = %d, want %d", win.Used, want)
	}
	if win.Wasted < 256 {
		t.Errorf("window wasted = %d, want ≥ one dead slot (256)", win.Wasted)
	}
	m.Release(seq, false)
	audit(t, m)
}

func TestMambaLifecycle(t *testing.T) {
	m := newMgr(t, mambaSpec(4), 1<<20, 2, true)
	seq := textSeq(1, 11)
	if err := m.Reserve(seq, 11, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 11, 1)
	audit(t, m)
	r := m.reqs[seq.ID]
	rg := &r.g[1]
	if !rg.hasWork {
		t.Fatal("mamba group should hold a working state page")
	}
	// Checkpoints at 4 and 8 finalized (position 12 not reached).
	if rg.ckptDone != 2 {
		t.Errorf("finalized checkpoints = %d, want 2", rg.ckptDone)
	}
	u := m.Usage()
	mu := u.PerGroup["mamba"]
	// Working state + 2 checkpoints, each 2048 bytes (2 layers × 1024).
	if want := int64(3 * 2048); mu.Used != want {
		t.Errorf("mamba used = %d, want %d", mu.Used, want)
	}
	m.Release(seq, true)
	audit(t, m)
	mu = m.Usage().PerGroup["mamba"]
	if want := int64(2 * 2048); mu.Cached != want {
		t.Errorf("mamba cached after release = %d, want %d", mu.Cached, want)
	}
	if mu.Used != 0 {
		t.Errorf("mamba used after release = %d, want 0", mu.Used)
	}
}

func TestMambaPrefixHit(t *testing.T) {
	m := newMgr(t, mambaSpec(4), 1<<20, 2, true)
	seq := textSeq(1, 11)
	if err := m.Reserve(seq, 11, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 11, 1)
	m.Release(seq, true)

	// Same prefix: hit must land at a checkpoint multiple (8) that is
	// also block-aligned for the attention group (tpp 2 → 8 ✓).
	seq2 := textSeq(2, 11)
	p := m.Lookup(seq2)
	if p != 8 {
		t.Fatalf("mamba-constrained lookup = %d, want 8", p)
	}
	if err := m.Reserve(seq2, 11, 2); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedPrefix(seq2); got != 8 {
		t.Errorf("cached prefix = %d, want 8", got)
	}
	m.Commit(seq2, 11, 2)
	audit(t, m)
	m.Release(seq2, true)
	audit(t, m)
}

func TestFullPrefixHitAndSharing(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<20, 2, true)
	a := textSeq(1, 33)
	if err := m.Reserve(a, 33, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(a, 33, 1)
	m.Release(a, true)
	audit(t, m)

	b := textSeq(2, 33)
	p := m.Lookup(b)
	if p != 32 {
		t.Fatalf("lookup = %d, want 32 (len-1 rounded to block)", p)
	}
	if err := m.Reserve(b, 33, 2); err != nil {
		t.Fatal(err)
	}
	m.Commit(b, 33, 2)
	audit(t, m)

	// A third identical request while b still runs: pages are shared
	// (refcount), not copied.
	c := textSeq(3, 33)
	if err := m.Reserve(c, 33, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedPrefix(c); got != 32 {
		t.Errorf("cached prefix for c = %d, want 32", got)
	}
	m.Commit(c, 33, 3)
	audit(t, m)
	m.Release(b, true)
	audit(t, m)
	m.Release(c, true)
	audit(t, m)
}

func TestWindowHitWithEvictedEarlyTokens(t *testing.T) {
	// §5.2: a sliding-window layer hits even when tokens before the
	// window are gone. Build a cache, manually evict the earliest
	// window pages, and check the window group still validates while
	// the full group's contiguous rule shortens the hit.
	m := newMgr(t, windowSpec(4), 1<<20, 2, true)
	a := textSeq(1, 17)
	// Commit chunk by chunk at increasing ticks so early window blocks
	// exit the window with older timestamps (as in a real prefill).
	for i, upTo := range []int{4, 8, 12, 17} {
		if err := m.Reserve(a, upTo, Tick(i+1)); err != nil {
			t.Fatal(err)
		}
		m.Commit(a, upTo, Tick(i+1))
	}
	m.Release(a, true)

	// Evict window-group block 0 (tokens 0,1): they fell out of the
	// window long ago, so they carry the oldest timestamps.
	g := m.groups[m.byName["window"]]
	if !m.evictOneSmall(g) {
		t.Fatal("expected an evictable window page")
	}
	audit(t, m)

	b := textSeq(2, 17)
	v := m.buildView(g, 0, b.Tokens, false)
	// Blocks 0 and 1 exited the window at the same tick; the §5.1
	// tie-break evicts the higher position first → block 1.
	if v.Present[1] {
		t.Fatal("block 1 should be evicted")
	}
	// Window rule: prefix 16 needs projected tokens [12,16) → blocks
	// 6,7 — still cached → valid despite missing block 0.
	if !g.pol.ValidPrefix(v, 16) {
		t.Error("window policy should accept prefix 16 with early tokens evicted")
	}
	full := m.groups[m.byName["full"]]
	fv := m.buildView(full, 0, b.Tokens, false)
	if !full.pol.ValidPrefix(fv, 16) {
		t.Error("full group unaffected; prefix 16 should be valid")
	}
}

func TestReleaseUnknownSequenceIsNoop(t *testing.T) {
	m := newMgr(t, fig6Spec(), 64*768, 1, true)
	m.Release(&Sequence{ID: 99}, true)
	audit(t, m)
	if m.Lookup(&Sequence{ID: 98}) != 0 {
		t.Error("empty manager lookup should be 0")
	}
	if m.CachedPrefix(&Sequence{ID: 97}) != 0 {
		t.Error("unknown sequence cached prefix should be 0")
	}
}

func TestLookupDisabledCache(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<20, 2, false)
	a := textSeq(1, 17)
	if err := m.Reserve(a, 17, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(a, 17, 1)
	m.Release(a, true) // cache=true ignored when disabled
	audit(t, m)
	if m.Usage().Cached != 0 {
		t.Error("disabled cache should keep nothing")
	}
	if m.Lookup(textSeq(2, 17)) != 0 {
		t.Error("lookup with disabled cache should be 0")
	}
}

// TestCommitBeyondReservedPanics pins the manager's internal contract:
// committing tokens that were never reserved is a programming error and
// must fail loudly, not corrupt accounting.
func TestCommitBeyondReservedPanics(t *testing.T) {
	m := newMgr(t, fig6Spec(), 64*768, 1, false)
	seq := textSeq(1, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on commit beyond reserved")
		}
	}()
	m.Commit(seq, 3, 1)
}
