package core

import (
	"testing"
)

// recObs records TierObserver notifications for assertions.
type recObs struct {
	stored, evicted map[uint64]bool
}

func newRecObs() *recObs {
	return &recObs{stored: make(map[uint64]bool), evicted: make(map[uint64]bool)}
}

func (o *recObs) TierStored(group string, hashes []uint64) {
	for _, h := range hashes {
		o.stored[h] = true
	}
}

func (o *recObs) TierEvicted(group string, hashes []uint64) {
	for _, h := range hashes {
		o.evicted[h] = true
		delete(o.stored, h)
	}
}

func (o *recObs) hashes() []uint64 {
	out := make([]uint64, 0, len(o.stored))
	for h := range o.stored {
		out = append(out, h)
	}
	return out
}

// spillAll commits one 33-token sequence on m, stamps its backed
// bytes, releases it and evicts everything so the content sits in the
// host tier. Returns the stamps for round-trip checks.
func spillAll(t *testing.T, m *Jenga) map[uint64]byte {
	t.Helper()
	seq := textSeq(1, 33)
	seq.PromptLen = 33
	if err := m.Reserve(seq, 33, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 33, 1)
	stamps := stampPages(t, m, seq)
	if len(stamps) == 0 {
		t.Fatal("no complete blocks stamped")
	}
	m.Release(seq, true)
	for m.evictLargeLRU() {
	}
	if st := m.TierStats(); st.SwapOuts == 0 {
		t.Fatalf("eviction did not spill: %+v", st)
	}
	return stamps
}

// TestFleetExportImportRoundTrip moves spilled pages from replica A to
// replica B through the serializable page-set surface and verifies B
// serves the prefix with byte-exact content — without polluting B's
// spill counters or PCIe transfer budget (peer traffic rides the peer
// link, charged by the engine, not DrainTransfers).
func TestFleetExportImportRoundTrip(t *testing.T) {
	a := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	obs := newRecObs()
	a.SetTierObserver(obs)
	stamps := spillAll(t, a)
	if len(obs.stored) == 0 {
		t.Fatal("observer saw no stores")
	}

	ps, ok := a.ExportPrefix("kv", obs.hashes())
	if !ok || len(ps.Pages) == 0 {
		t.Fatalf("ExportPrefix failed: ok=%v pages=%d", ok, len(ps.Pages))
	}
	if ps.PageBytes <= 0 || ps.Bytes() != int64(len(ps.Pages))*ps.PageBytes {
		t.Fatalf("bad page-set accounting: %+v", ps)
	}
	st := a.TierStats()
	if st.PeerExports != int64(len(ps.Pages)) || st.PeerExportBytes != ps.Bytes() {
		t.Fatalf("export stats %+v don't match set (%d pages)", st, len(ps.Pages))
	}

	b := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	pages, bytes := b.ImportPrefix(ps, 2)
	if pages != len(ps.Pages) || bytes != ps.Bytes() {
		t.Fatalf("ImportPrefix = %d pages/%d bytes, want %d/%d", pages, bytes, len(ps.Pages), ps.Bytes())
	}
	bst := b.TierStats()
	if bst.PeerImports != int64(pages) || bst.PeerImportBytes != bytes {
		t.Fatalf("import stats %+v", bst)
	}
	if bst.SwapOuts != 0 || bst.SpilledBytes != 0 {
		t.Fatalf("peer import polluted spill counters: %+v", bst)
	}
	if h2d, d2h := b.DrainTransfers(); h2d != 0 || d2h != 0 {
		t.Fatalf("peer import charged PCIe: %d/%d", h2d, d2h)
	}

	// B never computed this prefix, but its tier now holds it.
	probe := textSeq(9, 33)
	probe.PromptLen = 33
	if p := b.Lookup(probe); p < 32 {
		t.Fatalf("B Lookup = %d, want ≥ 32", p)
	}
	if err := b.Reserve(probe, 33, 3); err != nil {
		t.Fatal(err)
	}
	if got := b.CachedPrefix(probe); got < 32 {
		t.Fatalf("B CachedPrefix = %d, want ≥ 32", got)
	}
	// Restored bytes on B must match A's stamps exactly.
	r := b.reqs[probe.ID]
	checked := 0
	for gi, g := range b.groups {
		rg := &r.g[gi]
		for blk := range rg.pages {
			if !rg.pages[blk].held {
				continue
			}
			pg := &g.pages[rg.pages[blk].id]
			want, ok := stamps[pg.hash]
			if !ok {
				continue
			}
			buf, err := g.view.SmallSlice(rg.pages[blk].id)
			if err != nil {
				t.Fatal(err)
			}
			for i := range buf {
				if buf[i] != want {
					t.Fatalf("block %d byte %d = %#x, want %#x", blk, i, buf[i], want)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no transferred blocks verified")
	}
	audit(t, a)
	audit(t, b)
}

// TestFleetImportDedup: re-importing a page set whose blocks are
// already resident admits nothing (and keeps the stats clean).
func TestFleetImportDedup(t *testing.T) {
	a := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	obs := newRecObs()
	a.SetTierObserver(obs)
	spillAll(t, a)
	ps, ok := a.ExportPrefix("kv", obs.hashes())
	if !ok {
		t.Fatal("export failed")
	}

	b := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	if pages, _ := b.ImportPrefix(ps, 1); pages == 0 {
		t.Fatal("first import admitted nothing")
	}
	ps2, ok := a.ExportPrefix("kv", obs.hashes())
	if !ok {
		t.Fatal("second export failed")
	}
	if pages, bytes := b.ImportPrefix(ps2, 2); pages != 0 || bytes != 0 {
		t.Fatalf("duplicate import admitted %d pages/%d bytes, want 0/0", pages, bytes)
	}
	// Unknown group: rejected outright.
	ps3 := ps2
	ps3.Group = "no-such-group"
	if pages, _ := b.ImportPrefix(ps3, 3); pages != 0 {
		t.Fatal("unknown-group import admitted pages")
	}
	audit(t, b)
}

// TestFleetExportSkipsPinned: a page pinned by an in-flight restore is
// never exported.
func TestFleetExportSkipsPinned(t *testing.T) {
	m := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	obs := newRecObs()
	m.SetTierObserver(obs)
	spillAll(t, m)
	hashes := obs.hashes()
	ps, ok := m.ExportPrefix("kv", hashes)
	if !ok {
		t.Fatal("baseline export failed")
	}
	baseline := len(ps.Pages)

	// Pin every page, as a mid-claim restore would.
	for seq := range m.host.pages {
		m.host.pinned[seq]++
	}
	if _, ok := m.ExportPrefix("kv", hashes); ok {
		t.Fatal("export succeeded with every page pinned")
	}
	// Unpin: exports flow again.
	for seq := range m.host.pages {
		delete(m.host.pinned, seq)
	}
	ps2, ok := m.ExportPrefix("kv", hashes)
	if !ok || len(ps2.Pages) != baseline {
		t.Fatalf("post-unpin export = %d pages, want %d", len(ps2.Pages), baseline)
	}
}

// TestFleetObserverEviction: budget evictions notify TierEvicted for
// exactly the hashes whose live copy died.
func TestFleetObserverEviction(t *testing.T) {
	// Tier budget of exactly one large page: every store evicts the
	// previous page (page size read off a throwaway manager).
	pageBytes := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4).host.pageBytes
	m := newTieredMgr(t, flatSpec(), 1<<16, pageBytes, 4)
	obs := newRecObs()
	m.SetTierObserver(obs)
	spillAll(t, m)
	if len(obs.evicted) == 0 {
		t.Fatal("one-page tier spilled many pages but evicted none")
	}
	for h := range obs.stored {
		if _, ok := m.host.index["kv"][h]; !ok {
			t.Fatalf("observer thinks %#x is stored but the index lost it", h)
		}
	}
	for h := range obs.evicted {
		if _, ok := m.host.index["kv"][h]; ok {
			t.Fatalf("observer thinks %#x was evicted but it is still resident", h)
		}
	}
}

// TestLookupFleetPeerExtension: a peer-presence oracle extends the
// prefix past what the local tiers hold, and the fetch list names
// exactly the peer-only blocks; once imported, the same lookup goes
// local and the fetch list empties.
func TestLookupFleetPeerExtension(t *testing.T) {
	a := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	obs := newRecObs()
	a.SetTierObserver(obs)
	spillAll(t, a)

	b := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	probe := textSeq(7, 33)
	probe.PromptLen = 33
	if p := b.Lookup(probe); p != 0 {
		t.Fatalf("B local lookup = %d, want 0", p)
	}
	peer := func(group string, hash uint64) bool { return group == "kv" && obs.stored[hash] }
	p, fetch := b.LookupFleet(probe, peer)
	if p < 32 || len(fetch) == 0 {
		t.Fatalf("LookupFleet = %d with %d fetch blocks, want ≥ 32 with > 0", p, len(fetch))
	}
	for _, fb := range fetch {
		if fb.Group != "kv" || !obs.stored[fb.Hash] {
			t.Fatalf("fetch block %+v not held by the peer", fb)
		}
	}
	// Nil oracle: the fleet path is off.
	if p, fetch := b.LookupFleet(probe, nil); p != 0 || fetch != nil {
		t.Fatalf("nil-peer LookupFleet = %d/%v, want 0/nil", p, fetch)
	}

	// Transfer, then the same lookup is local: no fetch needed.
	hashes := make([]uint64, 0, len(fetch))
	for _, fb := range fetch {
		hashes = append(hashes, fb.Hash)
	}
	ps, ok := a.ExportPrefix("kv", hashes)
	if !ok {
		t.Fatal("export failed")
	}
	if pages, _ := b.ImportPrefix(ps, 2); pages == 0 {
		t.Fatal("import admitted nothing")
	}
	p2, fetch2 := b.LookupFleet(probe, peer)
	if p2 < p || len(fetch2) != 0 {
		t.Fatalf("post-import LookupFleet = %d with %d fetch blocks, want ≥ %d with 0", p2, len(fetch2), p)
	}
	if lp := b.Lookup(probe); lp < p {
		t.Fatalf("post-import local Lookup = %d, want ≥ %d", lp, p)
	}
}
