package core

import (
	"math/rand"
	"testing"

	"jenga/internal/model"
)

// flatSpec is a single full-attention group — the simplest geometry
// (ratio 1) so tier tests can reason about pages directly.
func flatSpec() *model.Spec {
	return &model.Spec{
		Name: "flat", Params: 1_000_000, WeightBytes: 2, HiddenSize: 64,
		Groups: []model.KVGroup{
			{Name: "kv", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128},
		},
	}
}

// newTieredMgr builds a backed, prefix-caching manager with a host
// tier of hostBytes.
func newTieredMgr(t *testing.T, spec *model.Spec, capacity, hostBytes int64, tpp int) *Jenga {
	t.Helper()
	m, err := New(Config{
		Spec: spec, CapacityBytes: capacity, TokensPerPage: tpp,
		EnablePrefixCache: true, RequestAware: true, Backed: true,
		HostTierBytes: hostBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// commitSeq reserves, commits and cache-releases one whole sequence.
func commitSeq(t *testing.T, m *Jenga, seq *Sequence, now Tick) {
	t.Helper()
	if err := m.Reserve(seq, len(seq.Tokens), now); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, len(seq.Tokens), now)
	m.Release(seq, true)
}

// pagePattern fills a small page's backing bytes with a value derived
// from its hash, so a spill/restore round trip is checkable per block.
func stampPages(t *testing.T, m *Jenga, seq *Sequence) map[uint64]byte {
	t.Helper()
	r := m.reqs[seq.ID]
	if r == nil {
		t.Fatal("no request state")
	}
	stamps := make(map[uint64]byte)
	for gi, g := range m.groups {
		rg := &r.g[gi]
		for b := range rg.pages {
			if !rg.pages[b].held {
				continue
			}
			pg := &g.pages[rg.pages[b].id]
			if !pg.complete {
				continue
			}
			buf, err := g.view.SmallSlice(rg.pages[b].id)
			if err != nil {
				t.Fatal(err)
			}
			v := byte(pg.hash)
			for i := range buf {
				buf[i] = v
			}
			stamps[pg.hash] = v
		}
	}
	return stamps
}

// TestHostTierSpillRestoreRoundTrip drives the full tier cycle on a
// backed arena: commit → stamp bytes → evict (spill) → re-lookup →
// claim (restore) → verify the restored pages carry the exact bytes
// that were spilled.
func TestHostTierSpillRestoreRoundTrip(t *testing.T) {
	m := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	seq := textSeq(1, 33) // 8 complete blocks of 4 + 1 running token
	seq.PromptLen = 33
	if err := m.Reserve(seq, 33, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 33, 1)
	stamps := stampPages(t, m, seq)
	if len(stamps) == 0 {
		t.Fatal("no complete blocks stamped")
	}
	m.Release(seq, true)
	audit(t, m)

	// Evict everything: each whole-large-page eviction must spill
	// before discarding.
	evictions := 0
	for m.evictLargeLRU() {
		evictions++
	}
	if evictions == 0 {
		t.Fatal("no large pages evicted")
	}
	st := m.TierStats()
	if st.SwapOuts == 0 || st.HostUsed == 0 {
		t.Fatalf("eviction did not spill: %+v", st)
	}
	if st.HostUsed > st.HostCapacity {
		t.Fatalf("tier over budget: %d > %d", st.HostUsed, st.HostCapacity)
	}
	u := m.Usage()
	if u.HostUsed != st.HostUsed || u.HostCapacity != st.HostCapacity {
		t.Fatalf("Usage host fields disagree with TierStats: %+v vs %+v", u, st)
	}
	audit(t, m)

	// The GPU cache is gone, but Lookup still sees the prefix through
	// the tier.
	probe := textSeq(2, 33)
	probe.PromptLen = 33
	if p := m.Lookup(probe); p < 32 {
		t.Fatalf("host-aware Lookup = %d, want ≥ 32", p)
	}
	if p := m.lookupPrefix(probe, false); p != 0 {
		t.Fatalf("GPU-only lookup = %d, want 0 (everything spilled)", p)
	}

	// Claiming restores: block bytes must round-trip exactly.
	if err := m.Reserve(probe, 33, 5); err != nil {
		t.Fatal(err)
	}
	if got := m.CachedPrefix(probe); got < 32 {
		t.Fatalf("CachedPrefix = %d, want ≥ 32", got)
	}
	st = m.TierStats()
	if st.SwapIns == 0 || st.RestoredTokens == 0 {
		t.Fatalf("claim did not restore: %+v", st)
	}
	if tok, bytes := m.RestoreCost(probe); tok == 0 || bytes == 0 {
		t.Fatalf("RestoreCost = %d/%d, want > 0", tok, bytes)
	}
	r := m.reqs[probe.ID]
	checked := 0
	for gi, g := range m.groups {
		rg := &r.g[gi]
		for b := range rg.pages {
			if !rg.pages[b].held {
				continue
			}
			pg := &g.pages[rg.pages[b].id]
			want, ok := stamps[pg.hash]
			if !ok {
				continue
			}
			buf, err := g.view.SmallSlice(rg.pages[b].id)
			if err != nil {
				t.Fatal(err)
			}
			for i := range buf {
				if buf[i] != want {
					t.Fatalf("block %d byte %d = %#x, want %#x (round trip corrupted)", b, i, buf[i], want)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no restored blocks verified")
	}
	// Transfers were accounted on both directions.
	h2d, d2h := m.DrainTransfers()
	if h2d == 0 || d2h == 0 {
		t.Fatalf("DrainTransfers = %d/%d, want both > 0", h2d, d2h)
	}
	if h2, d2 := m.DrainTransfers(); h2 != 0 || d2 != 0 {
		t.Fatalf("second drain = %d/%d, want zeros", h2, d2)
	}
	audit(t, m)
}

// TestHostTierZeroBudget: a zero (or sub-page) budget disables the
// tier entirely — no spills, no host accounting, host-blind lookups.
func TestHostTierZeroBudget(t *testing.T) {
	for _, budget := range []int64{0, 1} {
		m, err := New(Config{
			Spec: flatSpec(), CapacityBytes: 1 << 16, TokensPerPage: 4,
			EnablePrefixCache: true, RequestAware: true, HostTierBytes: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.host != nil {
			t.Fatalf("budget %d built a tier", budget)
		}
		seq := textSeq(1, 33)
		seq.PromptLen = 33
		if err := m.Reserve(seq, 33, 1); err != nil {
			t.Fatal(err)
		}
		m.Commit(seq, 33, 1)
		if pages, bytes := m.SwapOut(seq); pages != 0 || bytes != 0 {
			t.Fatalf("SwapOut on zero tier moved %d pages / %d bytes", pages, bytes)
		}
		for m.evictLargeLRU() {
		}
		st := m.TierStats()
		if st != (TierStats{}) {
			t.Fatalf("zero-budget tier has stats: %+v", st)
		}
		u := m.Usage()
		if u.HostUsed != 0 || u.HostCapacity != 0 {
			t.Fatalf("zero-budget tier has usage: %+v", u)
		}
	}
}

// TestHostTierBudgetEviction: a tier sized to one large page drops its
// oldest spill to admit the next.
func TestHostTierBudgetEviction(t *testing.T) {
	m := newTieredMgr(t, flatSpec(), 1<<16, int64(512), 4) // exactly 1 large page
	if m.host == nil {
		t.Fatal("tier not built")
	}
	if m.OffloadGranularity() != 512 {
		t.Skipf("geometry changed: large page = %d", m.OffloadGranularity())
	}
	for i := 1; i <= 3; i++ {
		seq := textSeq(RequestID(i), 9)
		seq.Tokens[0].ID = int32(1000 * i)
		seq.PromptLen = 9
		commitSeq(t, m, seq, Tick(i))
	}
	for m.evictLargeLRU() {
	}
	st := m.TierStats()
	if st.SwapOuts < 2 {
		t.Fatalf("expected ≥ 2 spills, got %d", st.SwapOuts)
	}
	if st.HostEvictions != st.SwapOuts-1 {
		t.Fatalf("HostEvictions = %d, want %d (all but the newest spill dropped)", st.HostEvictions, st.SwapOuts-1)
	}
	if st.HostUsed != 512 {
		t.Fatalf("HostUsed = %d, want exactly one page", st.HostUsed)
	}
}

// TestSwapOutProactive: SwapOut copies a request's pages to host
// before any eviction, and the later eviction dedups instead of
// re-transferring.
func TestSwapOutProactive(t *testing.T) {
	m := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	seq := textSeq(1, 17)
	seq.PromptLen = 17
	if err := m.Reserve(seq, 17, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 17, 1)
	pages, bytes := m.SwapOut(seq)
	if pages == 0 || bytes == 0 {
		t.Fatalf("SwapOut moved %d pages / %d bytes, want > 0", pages, bytes)
	}
	if _, ok := m.reqs[seq.ID]; ok {
		t.Fatal("SwapOut did not release the request")
	}
	st := m.TierStats()
	if st.SwapOuts != int64(pages) {
		t.Fatalf("SwapOuts = %d, want %d", st.SwapOuts, pages)
	}
	audit(t, m)
	// Pages stayed GPU-cached (write-through): a lookup claims them
	// from the GPU without touching the tier.
	probe := textSeq(2, 17)
	probe.PromptLen = 17
	if p := m.lookupPrefix(probe, false); p < 16 {
		t.Fatalf("GPU-only lookup after SwapOut = %d, want ≥ 16", p)
	}
	// Eviction now finds the bytes already in the tier: no second
	// transfer for the same content.
	before := m.TierStats().SwapOuts
	for m.evictLargeLRU() {
	}
	if after := m.TierStats().SwapOuts; after != before {
		t.Fatalf("eviction re-spilled swap-out content: %d → %d", before, after)
	}
	// And the preempted request still resumes from the tier.
	if p := m.Lookup(probe); p < 16 {
		t.Fatalf("host Lookup after eviction = %d, want ≥ 16", p)
	}
	if err := m.Reserve(probe, 17, 3); err != nil {
		t.Fatal(err)
	}
	if m.CachedPrefix(probe) < 16 {
		t.Fatalf("restore claim failed: CachedPrefix = %d", m.CachedPrefix(probe))
	}
	audit(t, m)
}

// TestOffloadOrderExcludesInFlightCommit: a page holding blocks of a
// reserved-but-uncommitted (or committed-but-unreleased) request is
// pinned by that in-flight use and must never be advised for spill.
func TestOffloadOrderExcludesInFlightCommit(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<15, 2, true)
	done := textSeq(1, 17)
	done.PromptLen = 17
	if err := m.Reserve(done, 17, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(done, 17, 1)
	m.Release(done, true)

	inflight := textSeq(2, 17)
	inflight.Tokens[0].ID = 4242
	if err := m.Reserve(inflight, 17, 2); err != nil {
		t.Fatal(err)
	}
	// Reserved, commit still in flight: every page of the in-flight
	// request is used, so its large pages must not be advised.
	for _, h := range m.OffloadOrder(0) {
		if m.cntUsed[h.LargePage] != 0 {
			t.Fatalf("hint advises large page %d with %d in-flight pages", h.LargePage, m.cntUsed[h.LargePage])
		}
	}
	// Nor spilled, even when asked directly.
	m2 := newTieredMgr(t, flatSpec(), 1<<16, 1<<20, 4)
	busy := textSeq(3, 9)
	if err := m2.Reserve(busy, 9, 1); err != nil {
		t.Fatal(err)
	}
	r := m2.reqs[busy.ID]
	for gi := range m2.groups {
		for b := range r.g[gi].pages {
			if r.g[gi].pages[b].held {
				L := m2.largeOf(m2.groups[gi], r.g[gi].pages[b].id)
				if m2.spillLarge(L, 1) {
					t.Fatalf("spillLarge moved large page %d pinned by an in-flight commit", L)
				}
			}
		}
	}
}

// TestOffloadOrderChurnInvariants hammers a manager with seeded
// alloc/commit/release/evict churn and re-checks the ordering
// invariants after every mutation: expired strictly before live,
// non-decreasing LastAccess within a class, lowest-page-ID tiebreak,
// and bounded selection being an exact prefix of the full order.
func TestOffloadOrderChurnInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := newMgr(t, windowSpec(4), 1<<15, 2, true)
	live := make(map[RequestID]*Sequence)
	next := RequestID(1)
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // start + commit a request
			n := 5 + rng.Intn(40)
			seq := textSeq(next, n)
			seq.Tokens[0].ID = int32(rng.Intn(1 << 20))
			seq.PromptLen = n
			next++
			if err := m.Reserve(seq, n, Tick(step)); err == nil {
				m.Commit(seq, n, Tick(step))
				live[seq.ID] = seq
			} else {
				m.Release(seq, false)
			}
		case op < 8: // release one live request
			for id, seq := range live {
				m.Release(seq, rng.Intn(2) == 0)
				delete(live, id)
				break
			}
		default: // direct eviction pressure
			m.evictLargeLRU()
		}
		hints := m.OffloadOrder(0)
		for i := 1; i < len(hints); i++ {
			a, b := hints[i-1], hints[i]
			if !a.Expired && b.Expired {
				t.Fatalf("step %d: expired hint %d after live hint", step, i)
			}
			if a.Expired == b.Expired {
				if a.LastAccess > b.LastAccess {
					t.Fatalf("step %d: LRU order violated at %d", step, i)
				}
				if a.LastAccess == b.LastAccess && a.LargePage >= b.LargePage {
					t.Fatalf("step %d: page-ID tiebreak violated at %d", step, i)
				}
			}
		}
		for _, h := range hints {
			if m.cntUsed[h.LargePage] != 0 || m.cntCached[h.LargePage] == 0 {
				t.Fatalf("step %d: hint advises non-evictable page %d", step, h.LargePage)
			}
		}
		if len(hints) > 1 {
			k := 1 + rng.Intn(len(hints))
			bounded := m.OffloadOrder(k)
			if len(bounded) != k {
				t.Fatalf("step %d: OffloadOrder(%d) returned %d hints", step, k, len(bounded))
			}
			for i := range bounded {
				if bounded[i] != hints[i] {
					t.Fatalf("step %d: bounded order diverges from full order at %d", step, i)
				}
			}
		}
	}
	audit(t, m)
}
