package core

// Crasher is the optional Manager capability behind fault injection:
// CrashReset wipes every byte of managed state — GPU heap, prefix
// cache, host tier — restarting the manager cold, as if newly
// constructed. A replica crash loses device memory and the host tier
// alike; the fleet directory's now-dangling entries for this holder
// are invalidated separately by the layer that owns them
// (fleet.Store.Crash). Managers without the capability simply keep
// their state across a simulated crash — only the replica's requests
// and routing are affected.
type Crasher interface {
	CrashReset() error
}

var _ Crasher = (*Jenga)(nil)

// CrashReset implements Crasher: the manager restarts cold from its
// original configuration. Pointer identity is preserved — every
// engine, store and tier-capability reference holding this *Jenga
// stays valid — and the installed tier observer survives the reset,
// so a restarted replica's new spills keep feeding the fleet
// directory.
func (m *Jenga) CrashReset() error {
	var obs TierObserver
	if m.host != nil {
		obs = m.host.obs
	}
	fresh, err := New(m.cfg)
	if err != nil {
		return err
	}
	*m = *fresh
	if obs != nil {
		m.SetTierObserver(obs)
	}
	return nil
}
