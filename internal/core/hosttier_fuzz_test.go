package core

import (
	"fmt"
	"testing"
)

// refTier is an independent reference model of the host tier: pages
// as a plain slice, the index rebuilt with the same last-spill-wins
// semantics, eviction by linear min-scan. The fuzzer drives both
// implementations with the same byte-decoded op stream and compares
// full contents after every op — catching index dangles, byte
// mis-accounting, pin violations and nondeterministic eviction.
type refTier struct {
	capacity, pageBytes int64
	used                int64
	nextSeq             int64
	pages               []*refPage
	index               map[string]map[uint64]int64
	pinned              map[int64]int
}

type refPage struct {
	seq    int64
	touch  Tick
	group  string
	blocks map[uint64]int32
}

func newRefTier(capacity, pageBytes int64) *refTier {
	return &refTier{
		capacity: capacity, pageBytes: pageBytes,
		index:  make(map[string]map[uint64]int64),
		pinned: make(map[int64]int),
	}
}

func (r *refTier) spill(group string, hashes []uint64, filled []int32, now Tick) bool {
	if r.capacity < r.pageBytes || len(hashes) == 0 {
		return false
	}
	for r.used+r.pageBytes > r.capacity {
		if !r.evictOne() {
			return false
		}
	}
	pg := &refPage{seq: r.nextSeq, touch: now, group: group, blocks: make(map[uint64]int32)}
	r.nextSeq++
	gi := r.index[group]
	if gi == nil {
		gi = make(map[uint64]int64)
		r.index[group] = gi
	}
	for i, h := range hashes {
		pg.blocks[h] = filled[i]
		gi[h] = pg.seq
	}
	r.pages = append(r.pages, pg)
	r.used += r.pageBytes
	return true
}

func (r *refTier) evictOne() bool {
	vi := -1
	for i, pg := range r.pages {
		if _, p := r.pinned[pg.seq]; p {
			continue
		}
		if vi < 0 || pg.touch < r.pages[vi].touch ||
			(pg.touch == r.pages[vi].touch && pg.seq < r.pages[vi].seq) {
			vi = i
		}
	}
	if vi < 0 {
		return false
	}
	pg := r.pages[vi]
	gi := r.index[pg.group]
	for h := range pg.blocks {
		if gi[h] == pg.seq {
			delete(gi, h)
		}
	}
	r.pages = append(r.pages[:vi], r.pages[vi+1:]...)
	r.used -= r.pageBytes
	return true
}

func (r *refTier) lookup(group string, hash uint64) (int32, bool) {
	gi, ok := r.index[group]
	if !ok {
		return 0, false
	}
	seq, ok := gi[hash]
	if !ok {
		return 0, false
	}
	for _, pg := range r.pages {
		if pg.seq == seq {
			return pg.blocks[hash], true
		}
	}
	return 0, false
}

func (r *refTier) touch(group string, hash uint64, now Tick) {
	if gi, ok := r.index[group]; ok {
		if seq, ok := gi[hash]; ok {
			for _, pg := range r.pages {
				if pg.seq == seq && pg.touch < now {
					pg.touch = now
				}
			}
		}
	}
}

func (r *refTier) pin(group string, hash uint64) int64 {
	gi, ok := r.index[group]
	if !ok {
		return -1
	}
	seq, ok := gi[hash]
	if !ok {
		return -1
	}
	r.pinned[seq]++
	return seq
}

func (r *refTier) unpin(seq int64) {
	if seq < 0 {
		return
	}
	if n, ok := r.pinned[seq]; ok {
		if n <= 1 {
			delete(r.pinned, seq)
		} else {
			r.pinned[seq] = n - 1
		}
	}
}

// compareTiers checks full content equality between the real tier and
// the reference.
func compareTiers(h *hostTier, r *refTier) error {
	if h.used != r.used {
		return fmt.Errorf("used %d vs ref %d", h.used, r.used)
	}
	if len(h.pages) != len(r.pages) {
		return fmt.Errorf("pages %d vs ref %d", len(h.pages), len(r.pages))
	}
	for group, gi := range r.index {
		for hash, seq := range gi {
			hb, ok := h.lookup(group, hash)
			if !ok {
				return fmt.Errorf("ref has %s/%x (page %d), tier misses it", group, hash, seq)
			}
			want, _ := r.lookup(group, hash)
			if hb.filled != want {
				return fmt.Errorf("%s/%x filled %d vs ref %d", group, hash, hb.filled, want)
			}
		}
	}
	for group, gi := range h.index {
		for hash := range gi {
			if _, ok := r.lookup(group, hash); !ok {
				return fmt.Errorf("tier has %s/%x, ref misses it", group, hash)
			}
		}
	}
	return nil
}

// FuzzHostTier drives the host tier and the reference with the same
// byte-decoded op stream: spills, lookups/touches, evictions, pins and
// unpins. Any divergence in contents, byte accounting or operation
// outcome fails.
func FuzzHostTier(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 1, 4, 0, 2, 0, 0, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{3, 1, 0, 2, 2, 4, 1, 0, 3, 0, 5, 0, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const pageBytes = 64
		tier := newHostTier(4*pageBytes, pageBytes)
		ref := newRefTier(4*pageBytes, pageBytes)
		groups := []string{"a", "b"}
		var pins []int64
		var refPins []int64
		now := Tick(1)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%5, data[i+1]
			group := groups[int(arg)%len(groups)]
			hash := uint64(arg % 16)
			now++
			switch op {
			case 0: // spill 1–3 blocks with consecutive hashes
				n := 1 + int(arg)%3
				hashes := make([]uint64, n)
				filled := make([]int32, n)
				blocks := make([]hostBlock, n)
				for k := 0; k < n; k++ {
					hashes[k] = (hash + uint64(k)) % 16
					filled[k] = int32(arg) + int32(k)
					blocks[k] = hostBlock{hash: hashes[k], filled: filled[k]}
				}
				got := tier.spill(group, blocks, now)
				want := ref.spill(group, hashes, filled, now)
				if got != want {
					t.Fatalf("op %d: spill = %v, ref %v", i, got, want)
				}
			case 1: // lookup + touch
				hb, ok := tier.lookup(group, hash)
				want, wok := ref.lookup(group, hash)
				if ok != wok || (ok && hb.filled != want) {
					t.Fatalf("op %d: lookup(%s, %x) = %v, ref %v", i, group, hash, ok, wok)
				}
				tier.touchPage(group, hash, now)
				ref.touch(group, hash, now)
			case 2: // evict
				got := tier.evictOne()
				want := ref.evictOne()
				if got != want {
					t.Fatalf("op %d: evictOne = %v, ref %v", i, got, want)
				}
			case 3: // pin
				pins = append(pins, tier.pin(group, hash))
				refPins = append(refPins, ref.pin(group, hash))
				if (pins[len(pins)-1] < 0) != (refPins[len(refPins)-1] < 0) {
					t.Fatalf("op %d: pin diverged", i)
				}
			case 4: // unpin oldest outstanding pin
				if len(pins) > 0 {
					tier.unpin(pins[0])
					ref.unpin(refPins[0])
					pins, refPins = pins[1:], refPins[1:]
				}
			}
			if err := compareTiers(tier, ref); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if tier.used > tier.capacity {
				t.Fatalf("op %d: tier over budget: %d > %d", i, tier.used, tier.capacity)
			}
			if tier.stats.HostUsed != tier.used {
				t.Fatalf("op %d: stats.HostUsed %d != used %d", i, tier.stats.HostUsed, tier.used)
			}
		}
	})
}
