package core

// Per-layer-type prefix-caching customization (§5). The paper's Fig. 9a
// interface exposes update_last_access, set_prefix_length and
// get_possible_prefix; this file is the Go rendering of that interface:
//
//   - AccessedFrom is update_last_access: it names the projected-token
//     range the next-token computation reads, so only those pages get
//     fresh timestamps (balanced eviction, §5.1).
//   - BlockPriority is set_prefix_length: the tie-break value pages get
//     for aligned eviction (§5.1) — higher values are evicted first
//     among equal last-access times.
//   - ValidPrefix is the membership test of get_possible_prefix's set:
//     whether a model-wide prefix of p tokens is a valid hit for this
//     layer type (§5.2).
//   - FreeBelow is the dependency horizon: projected positions below it
//     hold KV the architecture will never read again and can be freed
//     or demoted to evictable cache.

// Policy customizes prefix caching and eviction for one layer type.
type Policy interface {
	// AccessedFrom returns the lowest projected position whose KV the
	// computation of the next token reads, given projLen committed
	// projected tokens. Pages in [AccessedFrom, projLen) carry the
	// current step's last-access time.
	AccessedFrom(projLen int) int
	// FreeBelow returns the projected position below which KV is dead
	// once projLen projected tokens are committed.
	FreeBelow(projLen int) int
	// ValidPrefix reports whether a model-wide prefix of p full-sequence
	// tokens is a valid cache hit for this layer type.
	ValidPrefix(v *GroupSeqView, p int) bool
	// BlockPriority returns the eviction tie-break value for block b.
	// runChain is the hash-chain value at the start of the current
	// image run (used by image-atomic policies; zero otherwise).
	BlockPriority(b int, runChain uint64) int64
}

// KeepAlive is an optional Policy extension for layer types whose live
// set is not a contiguous suffix of the prefix. Pages covering
// projected positions below KeptBelow stay held (never demoted) even
// when they fall below FreeBelow — e.g. StreamingLLM-style attention
// sinks, which always read the first few tokens plus a sliding window.
type KeepAlive interface {
	// KeptBelow returns the projected position bound of the
	// always-live head region given projLen committed tokens.
	KeptBelow(projLen int) int
}

// GroupSeqView is a read-only projection of one sequence onto one
// group, built during Lookup. Policies use it to evaluate hit rules.
type GroupSeqView struct {
	// ProjCount[p] is the number of projected tokens among the first p
	// full-sequence tokens (length fullLen+1).
	ProjCount []int
	// BlockTokens is the group's tokens-per-page.
	BlockTokens int
	// Present[k] reports whether complete block k is in the prefix
	// cache (live page with a published hash).
	Present []bool
	// presentRun[k] is the number of consecutive present blocks ending
	// at k (0 when block k is absent).
	presentRun []int
	// CheckpointAt reports whether a Mamba state checkpoint exists at
	// exactly projPos projected tokens. Nil for non-Mamba groups.
	CheckpointAt func(projPos int) bool
}

// buildRuns fills presentRun from Present, reusing its capacity (views
// built into per-group Lookup scratch rebuild it on every call).
func (v *GroupSeqView) buildRuns() {
	if cap(v.presentRun) >= len(v.Present) {
		v.presentRun = v.presentRun[:len(v.Present)]
	} else {
		v.presentRun = make([]int, len(v.Present))
	}
	run := 0
	for k, ok := range v.Present {
		if ok {
			run++
		} else {
			run = 0
		}
		v.presentRun[k] = run
	}
}

// RangeCached reports whether projected tokens [lo, hi) are all cached,
// at block granularity (tokens in incomplete tail blocks never count).
func (v *GroupSeqView) RangeCached(lo, hi int) bool {
	if hi <= lo {
		return true
	}
	firstBlock := lo / v.BlockTokens
	lastBlock := (hi - 1) / v.BlockTokens
	if lastBlock >= len(v.Present) {
		return false // range extends past the last complete block
	}
	return v.presentRun[lastBlock] >= lastBlock-firstBlock+1
}

// FullPolicy is classic self-attention: every prefix token is read
// every step, nothing is ever dead, and a hit needs the whole prefix.
type FullPolicy struct{}

// AccessedFrom implements Policy: all prefix KV is read each step.
func (FullPolicy) AccessedFrom(int) int { return 0 }

// FreeBelow implements Policy: full attention never frees prefix KV.
func (FullPolicy) FreeBelow(int) int { return 0 }

// ValidPrefix implements Policy: all projected tokens before p must be
// cached.
func (FullPolicy) ValidPrefix(v *GroupSeqView, p int) bool {
	return v.RangeCached(0, v.ProjCount[p])
}

// BlockPriority implements Policy: later blocks are evicted first.
func (FullPolicy) BlockPriority(b int, _ uint64) int64 { return int64(b) }

// WindowPolicy is sliding-window attention (and, approximately,
// PyramidKV token budgets): only the last Window projected tokens are
// read; earlier KV is dead.
type WindowPolicy struct {
	// Window is the attention window in projected tokens.
	Window int
}

// AccessedFrom implements Policy (Fig. 9b): only tokens inside the
// window are accessed.
func (p WindowPolicy) AccessedFrom(projLen int) int {
	if projLen <= p.Window {
		return 0
	}
	return projLen - p.Window
}

// FreeBelow implements Policy: KV outside the window is dead.
func (p WindowPolicy) FreeBelow(projLen int) int {
	if projLen <= p.Window {
		return 0
	}
	return projLen - p.Window
}

// ValidPrefix implements Policy: a prefix hits if the window-suffix of
// the prefix is cached, even when earlier tokens are evicted (§5.2's
// [token1̶ token2 token3] example).
func (p WindowPolicy) ValidPrefix(v *GroupSeqView, prefix int) bool {
	pl := v.ProjCount[prefix]
	lo := 0
	if pl > p.Window {
		lo = pl - p.Window
	}
	return v.RangeCached(lo, pl)
}

// BlockPriority implements Policy.
func (WindowPolicy) BlockPriority(b int, _ uint64) int64 { return int64(b) }

// MambaPolicy manages recurrent-state layers: the manager stores one
// working state per sequence plus checkpoints every Every tokens
// (§5.3). Hits land only on checkpoint positions.
type MambaPolicy struct {
	// Every is the checkpoint interval in projected tokens.
	Every int
}

// AccessedFrom implements Policy: only the latest state is touched.
func (MambaPolicy) AccessedFrom(projLen int) int {
	if projLen == 0 {
		return 0
	}
	return projLen - 1
}

// FreeBelow implements Policy: per-token positions hold no KV; the
// manager tracks state pages separately.
func (MambaPolicy) FreeBelow(projLen int) int { return projLen }

// ValidPrefix implements Policy: p hits iff its projected length is a
// checkpoint multiple whose state is cached (or zero).
func (m MambaPolicy) ValidPrefix(v *GroupSeqView, p int) bool {
	pl := v.ProjCount[p]
	if pl == 0 {
		return true
	}
	if m.Every <= 0 || pl%m.Every != 0 || v.CheckpointAt == nil {
		return false
	}
	return v.CheckpointAt(pl)
}

// BlockPriority implements Policy: later checkpoints are evicted first.
func (MambaPolicy) BlockPriority(b int, _ uint64) int64 { return int64(b) }

// ImageAtomicPolicy is for cross-attention KV and vision embeddings:
// evicting one image token forces re-encoding the whole image, so all
// blocks of one image share a pseudo-random priority — the image with
// the highest value is evicted first, wholesale (§5.3).
type ImageAtomicPolicy struct{}

// AccessedFrom implements Policy: cross-attention reads all image KV.
func (ImageAtomicPolicy) AccessedFrom(int) int { return 0 }

// FreeBelow implements Policy: image KV stays live for the request.
func (ImageAtomicPolicy) FreeBelow(int) int { return 0 }

// ValidPrefix implements Policy: like full attention over image tokens.
func (ImageAtomicPolicy) ValidPrefix(v *GroupSeqView, p int) bool {
	return v.RangeCached(0, v.ProjCount[p])
}

// BlockPriority implements Policy: a deterministic pseudo-random value
// derived from the hash chain at the image's first token, identical
// across layer types and requests for the same image — so all its
// pages align (§5.1's set_prefix_length with randomized values).
func (ImageAtomicPolicy) BlockPriority(_ int, runChain uint64) int64 {
	x := runChain * 0x2545F4914F6CDD1D
	x ^= x >> 32
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}

// VisionEmbedPolicy manages the vision-embedding cache. It never gates
// model-wide KV hits (embeddings are inputs to prefill, not KV), and
// uses image-atomic eviction.
type VisionEmbedPolicy struct {
	ImageAtomicPolicy
}

// ValidPrefix implements Policy: the embedding cache never blocks a KV
// prefix hit; its own hits are queried via Manager-level image lookup.
func (VisionEmbedPolicy) ValidPrefix(*GroupSeqView, int) bool { return true }
