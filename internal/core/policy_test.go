package core

import (
	"testing"
	"testing/quick"
)

// mkView builds a GroupSeqView with the given per-block presence over a
// text-only sequence of n tokens.
func mkView(n, blockTokens int, present []bool) *GroupSeqView {
	v := &GroupSeqView{BlockTokens: blockTokens, Present: present}
	v.ProjCount = make([]int, n+1)
	for i := 0; i <= n; i++ {
		v.ProjCount[i] = i
	}
	v.buildRuns()
	return v
}

func TestFullPolicyValidPrefix(t *testing.T) {
	// Blocks: [ok, ok, miss, ok] of 2 tokens each over 8 tokens.
	v := mkView(8, 2, []bool{true, true, false, true})
	pol := FullPolicy{}
	for p := 0; p <= 4; p++ {
		if !pol.ValidPrefix(v, p) {
			t.Errorf("prefix %d should be valid", p)
		}
	}
	for p := 5; p <= 8; p++ {
		if pol.ValidPrefix(v, p) {
			t.Errorf("prefix %d should be invalid (block 2 missing)", p)
		}
	}
}

// TestWindowPolicyPaperExample checks Fig. 11: request ABCDEFGHIJ with
// blocks of one token, E missing... here we use the §5.2 shape: window 2,
// token1 evicted, [token1 token2 token3] still a valid hit.
func TestWindowPolicyPaperExample(t *testing.T) {
	v := mkView(4, 1, []bool{false, true, true, true})
	pol := WindowPolicy{Window: 2}
	if !pol.ValidPrefix(v, 3) {
		t.Error("[t1̶ t2 t3] should hit with window 2 (§5.2)")
	}
	if (FullPolicy{}).ValidPrefix(v, 3) {
		t.Error("full attention must reject the same prefix")
	}
	if pol.ValidPrefix(v, 1) {
		t.Error("prefix 1 needs token 0 which is evicted")
	}
}

func TestWindowPolicyAccessedAndFree(t *testing.T) {
	pol := WindowPolicy{Window: 4}
	if pol.AccessedFrom(10) != 6 || pol.FreeBelow(10) != 6 {
		t.Errorf("window accounting wrong: %d %d", pol.AccessedFrom(10), pol.FreeBelow(10))
	}
	if pol.AccessedFrom(3) != 0 || pol.FreeBelow(3) != 0 {
		t.Error("short sequences have nothing outside the window")
	}
	full := FullPolicy{}
	if full.AccessedFrom(10) != 0 || full.FreeBelow(10) != 0 {
		t.Error("full attention accesses everything, frees nothing")
	}
}

func TestMambaPolicyValidPrefix(t *testing.T) {
	present := map[int]bool{8: true}
	v := &GroupSeqView{BlockTokens: 1, CheckpointAt: func(p int) bool { return present[p] }}
	v.ProjCount = make([]int, 21)
	for i := range v.ProjCount {
		v.ProjCount[i] = i
	}
	v.buildRuns()
	pol := MambaPolicy{Every: 8}
	if !pol.ValidPrefix(v, 0) {
		t.Error("empty prefix always valid")
	}
	if !pol.ValidPrefix(v, 8) {
		t.Error("checkpointed multiple should be valid")
	}
	for _, p := range []int{4, 7, 9, 16, 20} {
		if pol.ValidPrefix(v, p) {
			t.Errorf("prefix %d should be invalid", p)
		}
	}
	if (MambaPolicy{Every: 0}).ValidPrefix(v, 8) {
		t.Error("zero interval should never hit")
	}
	if pol.AccessedFrom(10) != 9 {
		t.Error("mamba accesses only the last state")
	}
}

func TestImageAtomicPriorityStable(t *testing.T) {
	pol := ImageAtomicPolicy{}
	a := pol.BlockPriority(0, 12345)
	b := pol.BlockPriority(7, 12345)
	if a != b {
		t.Error("blocks of the same image run must share a priority")
	}
	c := pol.BlockPriority(0, 54321)
	if a == c {
		t.Error("different runs should get different priorities")
	}
	if a < 0 {
		t.Error("priority must be non-negative")
	}
}

func TestVisionPolicyNeverGates(t *testing.T) {
	v := mkView(8, 2, []bool{false, false, false, false})
	if !(VisionEmbedPolicy{}).ValidPrefix(v, 8) {
		t.Error("vision embedding cache must never gate KV hits")
	}
}

func TestRangeCachedProperties(t *testing.T) {
	// RangeCached(lo,hi) ⟺ every block overlapping [lo,hi) is present.
	prop := func(bits uint8, lo8, hi8 uint8) bool {
		present := make([]bool, 8)
		for i := range present {
			present[i] = bits&(1<<i) != 0
		}
		n := 16
		v := mkView(n, 2, present)
		lo, hi := int(lo8)%n, int(hi8)%(n+1)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := true
		for i := lo; i < hi; i++ {
			if i/2 >= len(present) || !present[i/2] {
				want = false
				break
			}
		}
		return v.RangeCached(lo, hi) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBlockHashChaining(t *testing.T) {
	a := []Token{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	b := []Token{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 5}}
	ha := blockHashes(a, 2)
	hb := blockHashes(b, 2)
	if ha[0] != hb[0] {
		t.Error("identical first blocks must hash equal")
	}
	if ha[1] == hb[1] {
		t.Error("different second blocks must hash differently")
	}
	// Image flag participates in identity.
	c := []Token{{ID: 1, Image: true}, {ID: 2}}
	if blockHashes(c, 2)[0] == blockHashes(a[:2], 2)[0] {
		t.Error("image flag must change the hash")
	}
	// Chaining: same content, different parent → different hash.
	d := []Token{{ID: 9}, {ID: 9}, {ID: 3}, {ID: 4}}
	hd := blockHashes(d, 2)
	if hd[1] == ha[1] {
		t.Error("same block content under different prefix must differ")
	}
	if prefixHash(a, 4) != ha[1] {
		t.Error("prefixHash at block boundary must equal the chained block hash")
	}
}

func TestProjectHelpers(t *testing.T) {
	toks := []Token{{ID: 1}, {ID: 2, Image: true}, {ID: 3}, {ID: 4, Image: true}}
	proj, idx := project(toks, true, false)
	if len(proj) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Errorf("image projection wrong: %v %v", proj, idx)
	}
	proj, idx = project(toks, true, true)
	if len(proj) != 4 || idx[2] != 2 {
		t.Errorf("identity projection wrong: %v %v", proj, idx)
	}
	if projectedLen(toks, 3, false, true) != 2 {
		t.Error("projectedLen text of first 3 should be 2")
	}
	if projectedLen(toks, 99, true, true) != 4 {
		t.Error("projectedLen clamps at sequence length")
	}
	if blockHashes(toks, 0) != nil {
		t.Error("non-positive block size returns nil")
	}
}
