package core

import (
	"testing"

	"jenga/internal/model"
)

// fig10Spec: one self-attention layer and one sliding-window layer
// (window 2) with equal page sizes, tokens_per_page = 1 — the §5.1
// worked example.
func fig10Spec() *model.Spec {
	return &model.Spec{
		Name: "fig10", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128},
			{Name: "window", Kind: model.SlidingWindow, Layers: 1, BytesPerToken: 128, Window: 2},
		},
	}
}

// tok builds the A..Z tokens of the Fig. 10 example.
func tok(letters string) []Token {
	ts := make([]Token, len(letters))
	for i, c := range letters {
		ts[i] = Token{ID: int32(c)}
	}
	return ts
}

// lastAccessOf finds the cached page holding the block whose chained
// hash corresponds to prefix[0..i] of tokens and returns its
// last-access tick.
func lastAccessOf(t *testing.T, m *Jenga, groupName string, tokens []Token, i int) Tick {
	t.Helper()
	g := m.groups[m.byName[groupName]]
	hashes := blockHashes(tokens, 1)
	id, ok := g.index[hashes[i]]
	if !ok {
		t.Fatalf("group %s: block %d not cached", groupName, i)
	}
	return g.pages[id].lastAccess
}

// TestFig10Timeline replays the paper's Fig. 10 two-request example and
// checks the final last-access times of every token in both layers:
//
//	self:   A=3 B=3 C=3 D=3 E=2 G=3
//	window: A=1 B=1 C=3 D=3 E=2 G=3
func TestFig10Timeline(t *testing.T) {
	m := newMgr(t, fig10Spec(), 1<<20, 1, true)

	// Request 1: input [A B C D], output [E F].
	r1 := &Sequence{ID: 1, Tokens: tok("ABCD")}
	if err := m.Reserve(r1, 4, 1); err != nil { // step 1: prefill ABCD→E
		t.Fatal(err)
	}
	m.Commit(r1, 4, 1)
	r1.Tokens = append(r1.Tokens, tok("E")...)
	if err := m.Reserve(r1, 5, 2); err != nil { // step 2: decode ABCDE→F
		t.Fatal(err)
	}
	m.Commit(r1, 5, 2)
	m.Release(r1, true) // F has no KV

	// Request 2: input [A B C D G], output [H].
	r2 := &Sequence{ID: 2, Tokens: tok("ABCDG")}
	if p := m.Lookup(r2); p != 4 {
		t.Fatalf("request 2 cached prefix = %d, want 4", p)
	}
	if err := m.Reserve(r2, 5, 3); err != nil { // step 3: prefill ABCDG→H
		t.Fatal(err)
	}
	if got := m.CachedPrefix(r2); got != 4 {
		t.Fatalf("claimed prefix = %d, want 4", got)
	}
	m.Commit(r2, 5, 3)
	m.Release(r2, true)
	audit(t, m)

	seq1 := tok("ABCDE")
	seq2 := tok("ABCDG")
	type want struct {
		group  string
		tokens []Token
		idx    int
		ts     Tick
	}
	cases := []want{
		{"self", seq2, 0, 3}, {"self", seq2, 1, 3}, {"self", seq2, 2, 3}, {"self", seq2, 3, 3},
		{"self", seq1, 4, 2},                           // E
		{"self", seq2, 4, 3},                           // G
		{"window", seq2, 0, 1}, {"window", seq2, 1, 1}, // A B: outside window since step 1
		{"window", seq2, 2, 3}, {"window", seq2, 3, 3}, // C D: read by request 2
		{"window", seq1, 4, 2}, // E
		{"window", seq2, 4, 3}, // G
	}
	letters := "ABCDEG"
	for i, c := range cases {
		if got := lastAccessOf(t, m, c.group, c.tokens, c.idx); got != c.ts {
			t.Errorf("%s[%c]: last access = %d, want %d", c.group, letters[min(i%6, 5)], got, c.ts)
		}
	}
}

// TestBalancedEvictionAcrossGroups: §3.3 — pages of the older request
// are evicted before any page of the newer request, in both groups.
func TestBalancedEvictionAcrossGroups(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<20, 2, true)
	a := textSeq(1, 17)
	if err := m.Reserve(a, 17, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(a, 17, 1)
	m.Release(a, true)
	b := textSeq(2, 17)
	b.Tokens[0].ID = 9999 // different content → separate cache entries
	if err := m.Reserve(b, 17, 5); err != nil {
		t.Fatal(err)
	}
	m.Commit(b, 17, 5)
	m.Release(b, true)
	audit(t, m)

	// buildView reuses per-group scratch, so snapshot Present before
	// building another view of the same group.
	present := func(g *group, tokens []Token) []bool {
		v := m.buildView(g, 0, tokens, false)
		return append([]bool(nil), v.Present...)
	}

	// Full-attention group: pure LRU with the §5.1 tie break — all of
	// request a's pages evict before any of request b's.
	full := m.groups[m.byName["full"]]
	va := present(full, a.Tokens)
	vb := present(full, b.Tokens)
	aPages := 0
	for _, ok := range va {
		if ok {
			aPages++
		}
	}
	for i := 0; i < aPages; i++ {
		if !m.evictOneSmall(full) {
			t.Fatalf("full: expected evictable page %d", i)
		}
	}
	va = present(full, a.Tokens)
	vb2 := present(full, b.Tokens)
	for k, ok := range va {
		if ok {
			t.Errorf("full: request-a block %d survived balanced eviction", k)
		}
	}
	for k := range vb2 {
		if vb[k] != vb2[k] {
			t.Errorf("full: request-b block %d was evicted before all of request a", k)
		}
	}

	// Window group: two-class §3.3 order. With 17 prompt tokens, window
	// 4, tpp 2: expired = blocks ending ≤ 17−2·4−4 = 5 → blocks 0,1 per
	// request; blocks 2..7 stay live (any prompt boundary in the last
	// window may need them). Four evictions drain both requests'
	// expired classes (a's before b's) while every live page survives.
	win := m.groups[m.byName["window"]]
	for i := 0; i < 4; i++ {
		if !m.evictOneSmall(win) {
			t.Fatalf("window: expected evictable page %d", i)
		}
	}
	wa := present(win, a.Tokens)
	wb := present(win, b.Tokens)
	for k := 0; k < 2; k++ {
		if wa[k] || wb[k] {
			t.Errorf("window: expired block %d should be evicted first (a=%v b=%v)",
				k, wa[k], wb[k])
		}
	}
	for k := 2; k < 8; k++ {
		if !wa[k] || !wb[k] {
			t.Errorf("window: live block %d must outlive every expired page (a=%v b=%v)",
				k, wa[k], wb[k])
		}
	}
	// Within the live class, LRU: request a's pages evict before b's.
	for i := 0; i < 6; i++ {
		m.evictOneSmall(win)
	}
	wa = present(win, a.Tokens)
	wb = present(win, b.Tokens)
	for k := 2; k < 8; k++ {
		if wa[k] {
			t.Errorf("window: request-a live block %d should evict before b's", k)
		}
		if !wb[k] {
			t.Errorf("window: request-b live block %d evicted too early", k)
		}
	}
	audit(t, m)
}

// imageSpec has a cross-attention group only, so image-atomic eviction
// can be observed in isolation.
func imageSpec() *model.Spec {
	return &model.Spec{
		Name: "img", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128, Scope: model.ScopeText},
			{Name: "cross", Kind: model.CrossAttention, Layers: 1, BytesPerToken: 128, Scope: model.ScopeImage},
		},
	}
}

// TestImageAtomicEviction: §5.3 — all pages of one image are evicted
// before any page of another image, because they share a randomized
// priority.
func TestImageAtomicEviction(t *testing.T) {
	m := newMgr(t, imageSpec(), 1<<20, 2, true)
	// Two images of 4 tokens each, separated by text.
	seq := &Sequence{ID: 1}
	for i := 0; i < 4; i++ {
		seq.Tokens = append(seq.Tokens, Token{ID: int32(100 + i), Image: true})
	}
	seq.Tokens = append(seq.Tokens, Token{ID: 1}, Token{ID: 2})
	for i := 0; i < 4; i++ {
		seq.Tokens = append(seq.Tokens, Token{ID: int32(200 + i), Image: true})
	}
	seq.Tokens = append(seq.Tokens, Token{ID: 3}, Token{ID: 4})
	n := len(seq.Tokens)
	if err := m.Reserve(seq, n, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, n, 1)
	m.Release(seq, true)
	audit(t, m)

	g := m.groups[m.byName["cross"]]
	// Image 1 = cross blocks 0,1; image 2 = cross blocks 2,3. All share
	// last-access; priority decides. Evict twice: both evictions must
	// hit the same image.
	evicted := func() []bool {
		v := m.buildView(g, 0, seq.Tokens, false)
		out := make([]bool, len(v.Present))
		for k, ok := range v.Present {
			out[k] = !ok
		}
		return out
	}
	m.evictOneSmall(g)
	m.evictOneSmall(g)
	ev := evicted()
	img1 := ev[0] || ev[1]
	img2 := ev[2] || ev[3]
	if img1 && img2 {
		t.Fatalf("eviction split across images: %v", ev)
	}
	if ev[0] != ev[1] || ev[2] != ev[3] {
		t.Fatalf("half-evicted image: %v", ev)
	}
	audit(t, m)
}

// TestLargePageEvictionTransfersOwnership: §5.4 step 3 — when one type
// needs memory and another type holds only cache, a whole large page is
// evicted and changes type.
func TestLargePageEvictionTransfersOwnership(t *testing.T) {
	// Capacity: exactly 4 large pages of 768 bytes.
	m := newMgr(t, fig6Spec(), 4*768, 1, true)
	a := textSeq(1, 8) // 8 text smalls = 4 large pages (ratio 2)
	if err := m.Reserve(a, 8, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(a, 8, 1)
	m.Release(a, true)
	audit(t, m)
	if m.Usage().Cached != 8*384 {
		t.Fatalf("expected full cache, got %+v", m.Usage())
	}

	b := mixedSeq(2, 3, 0) // 3 image tokens: needs one cross large page
	if err := m.Reserve(b, 3, 2); err != nil {
		t.Fatal(err)
	}
	m.Commit(b, 3, 2)
	audit(t, m)
	if m.Stats().LargeEvictions == 0 {
		t.Error("expected a large-page eviction to transfer ownership")
	}
	// The transferred large page now belongs to cross; two self blocks
	// disappeared from the cache.
	if got := m.Usage().Cached; got != 6*384 {
		t.Errorf("cached after transfer = %d, want %d", got, 6*384)
	}
	m.Release(b, false)
	audit(t, m)
}

// TestRequestAwareReclaim reproduces Fig. 8: with interleaved
// allocations from two requests, request-aware placement lets every
// large page of the finished request return to the LCM allocator, while
// naive placement strands all of them.
func TestRequestAwareReclaim(t *testing.T) {
	run := func(aware bool) (reclaims int64) {
		m, err := New(Config{
			Spec: fig6Spec(), CapacityBytes: 64 * 768, TokensPerPage: 1,
			RequestAware: aware,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b := textSeq(1, 16), textSeq(2, 16)
		for i := 1; i <= 16; i++ { // interleave token-by-token
			if err := m.Reserve(a, i, Tick(i)); err != nil {
				t.Fatal(err)
			}
			if err := m.Reserve(b, i, Tick(i)); err != nil {
				t.Fatal(err)
			}
		}
		m.Commit(a, 16, 17)
		m.Commit(b, 16, 17)
		audit(t, m)
		base := m.Stats().LargeReclaims
		m.Release(a, false)
		audit(t, m)
		return m.Stats().LargeReclaims - base
	}
	if got := run(true); got != 8 {
		t.Errorf("request-aware reclaims = %d, want 8 (all of request a's large pages)", got)
	}
	if got := run(false); got != 0 {
		t.Errorf("naive reclaims = %d, want 0 (every large page shared)", got)
	}
}

// TestMambaCheckpointTouchOnHit: hitting a checkpoint refreshes its
// last-access time so it survives subsequent eviction pressure.
func TestMambaCheckpointTouchOnHit(t *testing.T) {
	m := newMgr(t, mambaSpec(4), 1<<20, 2, true)
	a := textSeq(1, 9)
	if err := m.Reserve(a, 9, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(a, 9, 1)
	m.Release(a, true)

	b := textSeq(2, 9)
	if err := m.Reserve(b, 9, 10); err != nil {
		t.Fatal(err)
	}
	if m.CachedPrefix(b) != 8 {
		t.Fatalf("cached prefix = %d, want 8", m.CachedPrefix(b))
	}
	m.Release(b, true)

	g := m.groups[m.byName["mamba"]]
	proj, _ := project(a.Tokens, g.spec.StoresToken(true), g.spec.StoresToken(false))
	h8 := prefixHash(proj, 8)
	id, ok := g.index[h8]
	if !ok {
		t.Fatal("checkpoint at 8 missing")
	}
	if got := g.pages[id].lastAccess; got != 10 {
		t.Errorf("checkpoint last access = %d, want 10 (touched at hit)", got)
	}
	h4 := prefixHash(proj, 4)
	id4, ok := g.index[h4]
	if !ok {
		t.Fatal("checkpoint at 4 missing")
	}
	if got := g.pages[id4].lastAccess; got != 1 {
		t.Errorf("untouched checkpoint last access = %d, want 1", got)
	}
	audit(t, m)
}

// TestExpiredClassEviction: §3.3 — window KV below the prompt's final
// window is expired-class and evicts before any live page, while the
// prompt-window blocks survive so future prompt hits still land, even
// after generated tokens slid the window past the prompt.
func TestExpiredClassEviction(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<20, 2, true)
	seq := textSeq(1, 48)
	seq.PromptLen = 40 // 8 generated tokens follow the prompt
	for i, upTo := range []int{16, 32, 40, 48} {
		if err := m.Reserve(seq, upTo, Tick(i+1)); err != nil {
			t.Fatal(err)
		}
		m.Commit(seq, upTo, Tick(i+1))
	}
	m.Release(seq, true)
	audit(t, m)

	// Expired: window blocks ending ≤ 40−2·4−2·2 = 28 → blocks 0..13.
	win := m.groups[m.byName["window"]]
	for i := 0; i < 14; i++ {
		if !m.evictOneSmall(win) {
			t.Fatalf("expected evictable expired page %d", i)
		}
	}
	probe := textSeq(2, 40)
	if p := m.Lookup(probe); p != 38 {
		t.Errorf("prompt hit after expired-class eviction = %d, want 38", p)
	}
	// The next eviction takes a live page; enough of them break the hit.
	for i := 0; i < 8; i++ {
		m.evictOneSmall(win)
	}
	if p := m.Lookup(probe); p >= 38 {
		t.Errorf("hit = %d should degrade once live window pages evict", p)
	}
	audit(t, m)
}
