package core

import (
	"testing"

	"jenga/internal/arena"
	"jenga/internal/model"
)

// TestBackedLayoutFingerprints runs two interleaved requests on a
// backed arena, simulates the KV writes of every layer through the
// Fig. 7c kernel views, and then reads everything back. Any aliasing
// between (request, group, layer, position) slots — i.e. any allocator
// bug that hands the same bytes to two owners — corrupts a fingerprint.
func TestBackedLayoutFingerprints(t *testing.T) {
	spec := fig6Spec()
	m, err := New(Config{
		Spec: spec, CapacityBytes: 64 * 768, TokensPerPage: 2,
		Backed: true, RequestAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := mixedSeq(1, 6, 8)
	b := mixedSeq(2, 4, 10)
	b.Tokens[0].ID = 777 // distinct content
	for _, s := range []*Sequence{a, b} {
		if err := m.Reserve(s, len(s.Tokens), 1); err != nil {
			t.Fatal(err)
		}
		m.Commit(s, len(s.Tokens), 1)
	}

	// Write fingerprints for every (seq, group, layer, projected pos).
	type loc struct {
		kv   arena.KernelView
		slot int
		fp   uint64
	}
	var locs []loc
	for _, s := range []*Sequence{a, b} {
		r := m.reqs[s.ID]
		for gi, g := range m.groups {
			rg := &r.g[gi]
			if g.spec.Kind == model.Mamba || g.isVision() {
				continue
			}
			for layer := 0; layer < g.spec.Layers; layer++ {
				for b0, ref := range rg.pages {
					if !ref.held {
						continue
					}
					kv, err := g.view.Kernel(layer, []arena.SmallPageID{ref.id})
					if err != nil {
						t.Fatal(err)
					}
					pg := &g.pages[ref.id]
					for slot := 0; slot < int(pg.filled); slot++ {
						pos := b0*g.tpp + slot
						fp := arena.TokenFingerprint(uint64(s.ID)<<32|uint64(gi), layer, pos)
						if err := kv.WriteFingerprint(0, slot, fp); err != nil {
							t.Fatal(err)
						}
						locs = append(locs, loc{kv: kv, slot: slot, fp: fp})
					}
				}
			}
		}
	}
	if len(locs) < 50 {
		t.Fatalf("expected many slots, got %d", len(locs))
	}
	// Read back after all writes: overlaps would have clobbered values.
	for i, l := range locs {
		got, err := l.kv.ReadFingerprint(0, l.slot)
		if err != nil {
			t.Fatal(err)
		}
		if got != l.fp {
			t.Fatalf("slot %d: fingerprint %#x, want %#x (aliased allocation)", i, got, l.fp)
		}
	}
	m.Release(a, false)
	m.Release(b, false)
	audit(t, m)
}

// TestKernelTripleMatchesPaper: the manager's per-layer kernel view for
// a group reproduces the (start_ptr, page_size_exec, pageid_exec)
// interface of Fig. 7c.
func TestKernelTripleMatchesPaper(t *testing.T) {
	m, err := New(Config{
		Spec: fig6Spec(), CapacityBytes: 8 * 768, TokensPerPage: 1, Backed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.GroupView("cross")
	if err != nil {
		t.Fatal(err)
	}
	kv, err := v.Kernel(1, []arena.SmallPageID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if kv.StartOff != 128 || kv.PageSizeExec != 256 {
		t.Errorf("kernel triple = (%d, %d), want (128, 256)", kv.StartOff, kv.PageSizeExec)
	}
	if _, err := m.GroupView("nope"); err == nil {
		t.Error("unknown group view should error")
	}
}
