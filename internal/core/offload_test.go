package core

import (
	"testing"

	"jenga/internal/arena"
)

// TestOffloadOrderMatchesEviction: the advised order must equal the
// order the evictor actually discards pages in.
func TestOffloadOrderMatchesEviction(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<15, 2, true) // 64 large pages
	// Three requests released at increasing ticks build a cache with
	// distinct last-access times and both eviction classes.
	for i := 1; i <= 3; i++ {
		seq := textSeq(RequestID(i), 17)
		seq.Tokens[0].ID = int32(1000 * i) // distinct content
		seq.PromptLen = 17
		if err := m.Reserve(seq, 17, Tick(i)); err != nil {
			t.Fatal(err)
		}
		m.Commit(seq, 17, Tick(i))
		m.Release(seq, true)
	}
	audit(t, m)

	hints := m.OffloadOrder(0)
	if len(hints) == 0 {
		t.Fatal("expected offload hints for a cache-full manager")
	}
	// Expired hints strictly precede live ones.
	seenLive := false
	for _, h := range hints {
		if h.Expired && seenLive {
			t.Fatal("expired page ordered after a live page")
		}
		if !h.Expired {
			seenLive = true
		}
	}
	// Within a class, LastAccess is non-decreasing.
	for i := 1; i < len(hints); i++ {
		if hints[i].Expired == hints[i-1].Expired && hints[i].LastAccess < hints[i-1].LastAccess {
			t.Fatalf("hint %d out of LRU order", i)
		}
	}

	// The advised first page must be the first actually evicted: force
	// one eviction via a new allocation that exhausts free memory.
	first := hints[0].LargePage
	pressure := textSeq(99, 400)
	pressure.Tokens[0].ID = 7777
	err := m.Reserve(pressure, 400, 10)
	_ = err // may or may not fit entirely; eviction must have occurred
	if m.largeOwner[first] >= 0 {
		g := m.groups[m.largeOwner[first]]
		fp, n := g.view.SmallRange(first)
		for i := 0; i < n; i++ {
			if g.pages[fp+arena.SmallPageID(i)].status == pageCached {
				t.Fatal("advised-first page still holds cache after eviction pressure")
			}
		}
	}
	audit(t, m)
}

func TestOffloadLimitAndGranularity(t *testing.T) {
	m := newMgr(t, windowSpec(4), 1<<20, 2, true)
	seq := textSeq(1, 33)
	seq.PromptLen = 33
	if err := m.Reserve(seq, 33, 1); err != nil {
		t.Fatal(err)
	}
	m.Commit(seq, 33, 1)
	m.Release(seq, true)

	all := m.OffloadOrder(0)
	if len(all) < 2 {
		t.Fatalf("expected several hints, got %d", len(all))
	}
	two := m.OffloadOrder(2)
	if len(two) != 2 {
		t.Fatalf("limit ignored: got %d", len(two))
	}
	if two[0] != all[0] || two[1] != all[1] {
		t.Error("limited order must be a prefix of the full order")
	}
	if m.OffloadGranularity() != m.geo.LargePageBytes {
		t.Error("granularity must be the LCM large page")
	}
	// Used pages never appear in hints.
	busy := textSeq(2, 17)
	busy.Tokens[0].ID = 4242
	if err := m.Reserve(busy, 17, 2); err != nil {
		t.Fatal(err)
	}
	m.Commit(busy, 17, 2)
	for _, h := range m.OffloadOrder(0) {
		L := h.LargePage
		if m.cntUsed[L] != 0 {
			t.Fatal("offload hint points at a large page with used pages")
		}
	}
}
