package core

import (
	"fmt"

	"jenga/internal/arena"
)

// Copy-on-write stream forking. Fork attaches a child sequence to a
// parent's committed KV by taking a reference on every page the parent
// holds — no allocation for the shared prefix, exactly PagedAttention's
// block-sharing trick for parallel sampling and beam search. Divergent
// writes privatize lazily: the first Reserve (or EncodeImages) that
// would write into a page still referenced by a sibling copies it
// first (cowPage), charging the copy to Stats and to the pending
// device-to-device byte counter the engine drains into its step cost.
// Mamba is the exception: the working state page is mutated in place
// every step, so the child gets an eager private copy at fork time;
// finalized checkpoints are immutable and shared like token blocks.

// Forker is the optional Manager capability behind copy-on-write
// stream forking. The engine type-asserts it: managers without it (the
// PagedAttention baselines) simply cannot fork, and fan-out degrades
// to independent requests.
type Forker interface {
	// Fork attaches child to parent's committed KV: child starts with
	// the same reserved/committed extent, sharing every page the
	// parent holds. The parent must be quiescent (no uncommitted
	// reservation) and the child ID must not be live. On error the
	// child holds nothing.
	Fork(parent, child *Sequence, now Tick) error
	// DrainCopyBytes returns and resets the device-to-device
	// copy-on-write byte volume accumulated since the previous drain.
	DrainCopyBytes() int64
}

var _ Forker = (*Jenga)(nil)

// cowPage privatizes one shared page for req: a fresh page is
// allocated, the original's content accounting (and raw bytes on
// backed arenas) is copied, and the original loses one reference —
// which cannot reach zero, because callers only privatize pages with
// ref > 1. The copy never owns the block's index entry (the original
// keeps it); if the copy completes under a different chain hash it
// publishes its own entry at commit like any private page.
func (m *Jenga) cowPage(g *group, id arena.SmallPageID, req RequestID) (arena.SmallPageID, error) {
	nid, err := m.forkCopyPage(g, id, req)
	if err != nil {
		return 0, err
	}
	old := &g.pages[id]
	check(old.ref > 1, "cowPage on unshared page %d", id)
	old.ref--
	g.extraRefs--
	return nid, nil
}

// Fork implements Forker. The shared prefix costs no new device
// memory (SharedBytes observes the savings); only Mamba working
// states and unfinalized checkpoint pages are copied eagerly, charged
// as CoW copy bytes like any privatization.
func (m *Jenga) Fork(parent, child *Sequence, now Tick) error {
	pr, ok := m.reqs[parent.ID]
	if !ok {
		return fmt.Errorf("core: fork: parent request %d unknown", parent.ID)
	}
	if pr.reserved != pr.committed {
		return fmt.Errorf("core: fork: parent %d has an uncommitted reservation (%d reserved, %d committed)",
			parent.ID, pr.reserved, pr.committed)
	}
	if _, dup := m.reqs[child.ID]; dup {
		return fmt.Errorf("core: fork: child request %d already live", child.ID)
	}
	cr := &reqState{
		id:           child.ID,
		reserved:     pr.reserved,
		committed:    pr.committed,
		lastNow:      now,
		claimed:      true, // the shared prefix stands in for a claim
		cachedPrefix: pr.committed,
		g:            make([]reqGroup, len(m.groups)),
	}
	// Register first so a mid-fork allocation failure can unwind
	// through the normal Release path.
	m.reqs[child.ID] = cr
	for gi, g := range m.groups {
		prg := &pr.g[gi]
		crg := &cr.g[gi]
		crg.projReserved = prg.projReserved
		crg.projCommitted = prg.projCommitted
		crg.demotedBlocks = prg.demotedBlocks
		crg.chain = prg.chain
		crg.runChain = prg.runChain
		crg.lastFullIdx = prg.lastFullIdx
		crg.projPrompt = prg.projPrompt
		crg.baseProj = prg.baseProj
		crg.nextCkpt = prg.nextCkpt
		crg.ckptDone = prg.ckptDone
		crg.visProj = prg.visProj
		crg.visCursor = prg.visCursor
		crg.visDropped = prg.visDropped
		crg.dropCursor = prg.dropCursor
		crg.dropProj = prg.dropProj
		if len(prg.pages) > 0 {
			crg.pages = make([]pageRef, len(prg.pages))
			copy(crg.pages, prg.pages)
			for b := range crg.pages {
				if crg.pages[b].held {
					m.pageAddRef(g, crg.pages[b].id)
				}
			}
		}
		if len(prg.visPages) > 0 {
			crg.visPages = make([]pageRef, len(prg.visPages))
			copy(crg.visPages, prg.visPages)
			for b := range crg.visPages {
				if crg.visPages[b].held {
					m.pageAddRef(g, crg.visPages[b].id)
				}
			}
		}
		if len(prg.ckpts) > 0 {
			crg.ckpts = make([]pageRef, len(prg.ckpts))
			copy(crg.ckpts, prg.ckpts)
			crg.ckptPos = append([]int(nil), prg.ckptPos...)
			for i := range crg.ckpts {
				if !crg.ckpts[i].held {
					continue
				}
				if i < prg.ckptDone {
					// Finalized checkpoints are immutable: share them.
					m.pageAddRef(g, crg.ckpts[i].id)
					continue
				}
				// Unfinalized checkpoint pages will be written in place
				// when the boundary commits: the child needs its own.
				crg.ckpts[i].held = false
				nid, err := m.forkCopyPage(g, prg.ckpts[i].id, cr.id)
				if err != nil {
					// Entries beyond i are copies of the parent's refs the
					// child never took; drop them before unwinding.
					for j := i + 1; j < len(crg.ckpts); j++ {
						crg.ckpts[j].held = false
					}
					m.Release(child, false)
					return err
				}
				crg.ckpts[i] = pageRef{id: nid, held: true}
			}
		}
		if prg.hasWork {
			// The Mamba working state mutates every step — eager copy.
			nid, err := m.forkCopyPage(g, prg.work, cr.id)
			if err != nil {
				m.Release(child, false)
				return err
			}
			crg.work = nid
			crg.hasWork = true
		}
	}
	m.stats.Forks++
	return nil
}

// forkCopyPage gives req a private copy of a page the parent keeps —
// the eager-copy path for in-place-mutated Mamba state, charged like a
// CoW privatization but without dropping a reference (the parent's
// handle is unchanged; the child simply never shared).
func (m *Jenga) forkCopyPage(g *group, id arena.SmallPageID, req RequestID) (arena.SmallPageID, error) {
	nid, err := m.allocSmall(g, req)
	if err != nil {
		return 0, err
	}
	old := &g.pages[id]
	np := &g.pages[nid]
	np.filled = old.filled
	np.dead = old.dead
	np.hash = old.hash
	np.complete = old.complete
	np.priority = old.priority
	np.lastAccess = old.lastAccess
	g.filledSlots += int64(old.filled)
	g.deadSlots += int64(old.dead)
	if m.ar.Backed() {
		if src, err1 := g.view.SmallSlice(id); err1 == nil {
			if dst, err2 := g.view.SmallSlice(nid); err2 == nil {
				copy(dst, src)
			}
		}
	}
	bytes := int64(old.filled) * int64(g.slotUnit)
	m.stats.CowCopies++
	m.stats.CowCopyBytes += bytes
	m.pendingCopy += bytes
	return nid, nil
}

// DrainCopyBytes implements Forker.
func (m *Jenga) DrainCopyBytes() int64 {
	b := m.pendingCopy
	m.pendingCopy = 0
	return b
}
