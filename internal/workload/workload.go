// Package workload generates the synthetic datasets and arrival
// processes of the paper's evaluation (§7.1). Generators match each
// dataset's published token-length statistics; token contents are
// deterministic functions of a seed so prefix-sharing structure (same
// article → same tokens) is exact and runs are reproducible.
package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"jenga/internal/core"
)

// Request is one serving request: a prompt plus a target output length.
type Request struct {
	// ID is unique within a run.
	ID int64
	// Arrival is the simulated arrival time.
	Arrival time.Duration
	// Group labels the request's prefix-sharing class (few-shot subject,
	// article, tenant): requests with equal Group share a prompt prefix.
	// 0 means unlabeled. Routers and stream-splitting helpers use it;
	// the engine ignores it.
	Group int64
	// Prompt is the input token sequence (text and image tokens).
	Prompt []core.Token
	// OutputLen is the number of tokens to generate (the engine runs
	// with the paper's --ignore-eos semantics: exactly this many).
	OutputLen int
	// Deadline is an end-to-end latency budget relative to Arrival
	// (0 = none). SLO-aware admission sheds requests whose estimated
	// queueing already exceeds it, and goodput counts only requests
	// that finish within it.
	Deadline time.Duration
	// Priority is the request's scheduling class, honored by
	// priority-aware schedulers (sched.NewPriority and similar):
	// higher-priority requests are admitted from the waiting queue
	// first and preempted last. The engine's default FCFS scheduler
	// ignores it; the default 0 everywhere is equivalent either way.
	Priority int
	// Fanout, when > 1, turns the request into a fan-out root: once
	// ForkAfter output tokens exist, the engine forks it into Fanout
	// total branches (this request plus Fanout−1 children) that share
	// the KV computed so far copy-on-write and decode independently to
	// their own OutputLen. Parallel sampling, beam-search expansion and
	// agentic fan-out all reduce to this shape. Requires a manager with
	// the core.Forker capability; otherwise the request runs single-
	// stream. 0 and 1 mean no fan-out.
	Fanout int
	// ForkAfter is the divergence point of a Fanout request: the number
	// of output tokens shared by all branches before they fork. 0 forks
	// at the first output token.
	ForkAfter int
}

// PromptImages counts image tokens in the prompt.
func (r *Request) PromptImages() int {
	n := 0
	for _, t := range r.Prompt {
		if t.Image {
			n++
		}
	}
	return n
}

// Gen is a deterministic request generator.
type Gen struct {
	rng  *rand.Rand
	next int64
}

// NewGen creates a generator with the given seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

func (g *Gen) id() int64 {
	g.next++
	return g.next
}

// textTokens derives deterministic token IDs from a content seed, so
// two prompts built from the same (seed, offset) share content.
func textTokens(seed int64, offset, n int) []core.Token {
	toks := make([]core.Token, n)
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		toks[i] = core.Token{ID: int32((x+uint64(offset+i))%50000 + 1)}
	}
	return toks
}

// imageTokens builds one image's tokens with content derived from seed.
func imageTokens(seed int64, n int) []core.Token {
	toks := textTokens(seed, 1<<20, n)
	for i := range toks {
		toks[i].Image = true
	}
	return toks
}

// clampedNormal samples a normal distribution clipped to [lo, hi].
func (g *Gen) clampedNormal(mean, stddev float64, lo, hi int) int {
	v := int(math.Round(g.rng.NormFloat64()*stddev + mean))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// uniform samples an integer in [lo, hi].
func (g *Gen) uniform(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// MMLUPro generates text-only exam questions: a shared few-shot
// instruction prefix (subject-wise) followed by a unique question. The
// dataset's maximum length is 3076 tokens (§7.1).
func (g *Gen) MMLUPro(n int, sharedPrefix int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, g.mmluProOne(sharedPrefix))
	}
	return reqs
}

// mmluProOne generates one MMLUPro request — the per-request body
// shared by the slice generator and MMLUProSource, so both consume the
// generator's randomness in exactly the same order.
func (g *Gen) mmluProOne(sharedPrefix int) Request {
	subject := g.rng.Intn(4)
	qLen := g.clampedNormal(800, 400, 128, 3076-sharedPrefix)
	prompt := append([]core.Token{}, textTokens(int64(1000+subject), 0, sharedPrefix)...)
	prompt = append(prompt, textTokens(int64(g.id())*7919, 0, qLen)...)
	return Request{
		ID: g.id(), Group: int64(1000 + subject), Prompt: prompt,
		// MMLU-pro is chain-of-thought: answers are long.
		OutputLen: g.uniform(256, 768),
	}
}

// MMMUPro generates multi-modal questions matching the §3.2 statistics:
// 6193 image tokens and 43 text tokens per request on average.
func (g *Gen) MMMUPro(n int, tokensPerImage int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, g.mmmuProOne(tokensPerImage))
	}
	return reqs
}

// mmmuProOne generates one MMMUPro request (shared by slice and
// streaming forms; see mmluProOne).
func (g *Gen) mmmuProOne(tokensPerImage int) Request {
	images := 1
	if tokensPerImage < 6193 {
		images = int(math.Round(6193.0/float64(tokensPerImage))) + g.rng.Intn(3) - 1
		if images < 1 {
			images = 1
		}
	}
	var prompt []core.Token
	for im := 0; im < images; im++ {
		prompt = append(prompt, imageTokens(int64(g.id())*104729+int64(im), tokensPerImage)...)
	}
	txt := g.clampedNormal(43, 15, 8, 120)
	prompt = append(prompt, textTokens(int64(g.id())*31, 0, txt)...)
	return Request{
		ID: g.id(), Prompt: prompt,
		// MMMU-pro answers include chain-of-thought reasoning.
		OutputLen: g.uniform(128, 384),
	}
}

// Article is a long document in the arXiv-QA pool.
type Article struct {
	Seed   int64
	Tokens []core.Token
}

// Articles builds a pool of long documents (arXiv-QA substrate).
func (g *Gen) Articles(count, meanLen int) []Article {
	arts := make([]Article, count)
	for i := range arts {
		n := g.clampedNormal(float64(meanLen), float64(meanLen)/4, meanLen/4, meanLen*2)
		seed := int64(i+1) * 6700417
		arts[i] = Article{Seed: seed, Tokens: textTokens(seed, 0, n)}
	}
	return arts
}

// ArxivQA asks questions about articles from a pool: each request is
// one article followed by a fresh question — the Fig. 17 prefix-caching
// workload, and with a large meanLen the Ministral long-context
// workload (average length 92408, §7.2).
func (g *Gen) ArxivQA(arts []Article, n int, questionLen int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, g.arxivQAOne(arts, questionLen))
	}
	return reqs
}

// arxivQAOne generates one ArxivQA request (shared by slice and
// streaming forms; see mmluProOne).
func (g *Gen) arxivQAOne(arts []Article, questionLen int) Request {
	a := arts[g.rng.Intn(len(arts))]
	prompt := append([]core.Token{}, a.Tokens...)
	prompt = append(prompt, textTokens(int64(g.id())*131071, 0, questionLen)...)
	return Request{
		ID: g.id(), Group: a.Seed, Prompt: prompt,
		OutputLen: g.uniform(100, 300),
	}
}

// LongDocQA is the Fig. 15 workload: n requests arriving at once with
// inputs uniform in [55k, 110k] tokens and outputs in [50, 100].
func (g *Gen) LongDocQA(n int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, g.longDocQAOne())
	}
	return reqs
}

// longDocQAOne generates one LongDocQA request (shared by slice and
// streaming forms; see mmluProOne).
func (g *Gen) longDocQAOne() Request {
	return Request{
		ID:        g.id(),
		Prompt:    textTokens(int64(g.id())*2147483647, 0, g.uniform(55_000, 110_000)),
		OutputLen: g.uniform(50, 100),
	}
}

// ShareGPT generates conversational prompts with the dataset's ~1085
// average length (§4.4).
func (g *Gen) ShareGPT(n int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, g.shareGPTOne())
	}
	return reqs
}

// shareGPTOne generates one ShareGPT request (shared by slice and
// streaming forms; see mmluProOne).
func (g *Gen) shareGPTOne() Request {
	return Request{
		ID:        g.id(),
		Prompt:    textTokens(int64(g.id())*524287, 0, g.clampedNormal(1085, 600, 32, 8192)),
		OutputLen: g.uniform(64, 512),
	}
}

// PrefixGroups generates the cluster-routing workload: groups distinct
// shared prefixes (few-shot templates, system prompts, tenants), each
// serving perGroup requests that append a unique suffix of suffixLen
// tokens. Requests interleave across groups in generation order, so an
// arrival process laid over them alternates prefix classes the way
// concurrent tenants do. With many groups and a per-replica cache too
// small to hold them all, router choice dominates the aggregate prefix
// hit rate.
func (g *Gen) PrefixGroups(groups, perGroup, prefixLen, suffixLen int) []Request {
	reqs := make([]Request, 0, groups*perGroup)
	for i := 0; i < perGroup; i++ {
		for grp := 0; grp < groups; grp++ {
			reqs = append(reqs, g.prefixGroupsOne(grp, prefixLen, suffixLen))
		}
	}
	return reqs
}

// prefixGroupsOne generates one PrefixGroups request for group grp
// (shared by slice and streaming forms; see mmluProOne).
func (g *Gen) prefixGroupsOne(grp, prefixLen, suffixLen int) Request {
	seed := int64(7_000_000 + grp)
	prompt := append([]core.Token{}, textTokens(seed, 0, prefixLen)...)
	prompt = append(prompt, textTokens(int64(g.id())*15485863, 0, suffixLen)...)
	return Request{
		ID: g.id(), Group: seed, Prompt: prompt,
		OutputLen: g.uniform(16, 64),
	}
}

// ChurnGroups generates the replica-churn workload: the same shared
// prefixes as PrefixGroups (identical content seeds, so caches warmed
// by one pattern serve the other), but with phase-shifted group
// popularity. The stream divides into `phases` equal windows; in
// window p the hot set is the groups with index ≡ p (mod phases), and
// 80% of the window's requests draw uniformly from it while 20% draw
// uniformly from all groups. Each phase shift re-concentrates a
// different prefix subset, so under affinity routing the new phase's
// requests land on replicas whose caches never served their group —
// the miss-after-reroute case a fleet-wide KV store converts from a
// recompute into a peer fetch. phases < 2 degrades to a single hot
// set (no churn).
func (g *Gen) ChurnGroups(groups, perGroup, prefixLen, suffixLen, phases int) []Request {
	if phases < 1 {
		phases = 1
	}
	total := groups * perGroup
	reqs := make([]Request, 0, total)
	for i := 0; i < total; i++ {
		reqs = append(reqs, g.churnGroupsOne(i, total, groups, prefixLen, suffixLen, phases))
	}
	return reqs
}

// churnGroupsOne generates ChurnGroups request i of total (shared by
// slice and streaming forms; see mmluProOne).
func (g *Gen) churnGroupsOne(i, total, groups, prefixLen, suffixLen, phases int) Request {
	p := i * phases / total
	// Hot groups in phase p are p, p+phases, p+2·phases, …
	hot := 0
	if p < groups {
		hot = (groups-1-p)/phases + 1
	}
	var grp int
	if hot > 0 && g.rng.Intn(5) != 0 {
		grp = p + g.rng.Intn(hot)*phases
	} else {
		grp = g.rng.Intn(groups)
	}
	seed := int64(7_000_000 + grp)
	prompt := append([]core.Token{}, textTokens(seed, 0, prefixLen)...)
	prompt = append(prompt, textTokens(int64(g.id())*15485863, 0, suffixLen)...)
	return Request{
		ID: g.id(), Group: seed, Prompt: prompt,
		OutputLen: g.uniform(16, 64),
	}
}

// FanOut generates fan-out roots (parallel sampling, best-of-n, agentic
// tree expansion): n requests, each with a unique prompt of promptLen
// tokens that forks into branch streams once forkAfter output tokens
// exist, every branch decoding to outLen total output tokens. Each root
// is its own Group, so schedulers see a fan-out's branches as siblings.
func (g *Gen) FanOut(n, promptLen, forkAfter, outLen, branch int) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, g.fanOutOne(promptLen, forkAfter, outLen, branch))
	}
	return reqs
}

// fanOutOne generates one fan-out root (shared by slice and streaming
// forms; see mmluProOne).
func (g *Gen) fanOutOne(promptLen, forkAfter, outLen, branch int) Request {
	id := g.id()
	return Request{
		ID: id, Group: id,
		Prompt:    textTokens(id*399989, 0, promptLen),
		OutputLen: outLen,
		Fanout:    branch, ForkAfter: forkAfter,
	}
}

// NaiveFanOut lowers fan-out roots into the independent-request stream
// an engine without forking must serve to produce the same branches:
// Fanout copies of each root's prompt with the same arrival, group and
// output budget, no fork. Prefix caching can still share the prompt
// blocks across copies, but every token the branches would have shared
// from the generated region is computed — and held — per copy. Requests
// without fan-out pass through unchanged; clone IDs start at 1<<40.
func NaiveFanOut(reqs []Request) []Request {
	out := make([]Request, 0, len(reqs))
	nextID := int64(1) << 40
	for i := range reqs {
		r := reqs[i]
		n := r.Fanout
		r.Fanout, r.ForkAfter = 0, 0
		out = append(out, r)
		for b := 1; b < n; b++ {
			c := r
			c.ID = nextID
			nextID++
			out = append(out, c)
		}
	}
	return out
}

// SplitByGroup partitions a stream by its Group labels, preserving
// order within each label.
func SplitByGroup(reqs []Request) map[int64][]Request {
	out := make(map[int64][]Request)
	for i := range reqs {
		out[reqs[i].Group] = append(out[reqs[i].Group], reqs[i])
	}
	return out
}

// Merge combines streams into one, ordered by arrival time (stable
// across equal arrivals, so AllAtOnce batches keep their input order).
func Merge(streams ...[]Request) []Request {
	var out []Request
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrival < out[j].Arrival })
	return out
}

// DriftLengths rescales request lengths so the mean input length drifts
// linearly from loFactor to hiFactor across the slice — the Fig. 16
// "dynamic" trace where workload composition changes over time.
func (g *Gen) DriftLengths(reqs []Request, loFactor, hiFactor float64) {
	n := len(reqs)
	for i := range reqs {
		f := loFactor + (hiFactor-loFactor)*float64(i)/float64(max(n-1, 1))
		keep := int(float64(len(reqs[i].Prompt)) * f)
		if keep < 16 {
			keep = 16
		}
		if keep < len(reqs[i].Prompt) {
			reqs[i].Prompt = reqs[i].Prompt[:keep]
		}
	}
}

// PoissonArrivals assigns arrival times with exponential gaps at the
// given rate (requests/second).
func (g *Gen) PoissonArrivals(reqs []Request, ratePerSec float64) {
	t := 0.0
	for i := range reqs {
		gap := g.rng.ExpFloat64() / ratePerSec
		t += gap
		reqs[i].Arrival = time.Duration(t * float64(time.Second))
	}
}

// JitterArrivals perturbs each arrival by an independent uniform
// offset in [0, maxJitter) — client-side scheduling noise layered over
// any arrival process. The engine orders submissions by arrival
// itself, so jittered streams need no re-sort.
func (g *Gen) JitterArrivals(reqs []Request, maxJitter time.Duration) {
	if maxJitter <= 0 {
		return
	}
	for i := range reqs {
		reqs[i].Arrival += time.Duration(g.rng.Int63n(int64(maxJitter)))
	}
}

// SetDeadlines assigns every request the same end-to-end latency
// budget (SLO-aware admission and goodput accounting read it).
func SetDeadlines(reqs []Request, d time.Duration) {
	for i := range reqs {
		reqs[i].Deadline = d
	}
}

// AllAtOnce zeroes every arrival time (offline batch workloads).
func AllAtOnce(reqs []Request) {
	for i := range reqs {
		reqs[i].Arrival = 0
	}
}

// Span returns the earliest and latest arrival instants of a stream
// (0, 0 for an empty one). Chaos schedules anchor crash and restart
// times to it so a plan stays mid-burst at any request count or rate.
func Span(reqs []Request) (first, last time.Duration) {
	if len(reqs) == 0 {
		return 0, 0
	}
	first, last = reqs[0].Arrival, reqs[0].Arrival
	for i := range reqs[1:] {
		a := reqs[i+1].Arrival
		if a < first {
			first = a
		}
		if a > last {
			last = a
		}
	}
	return first, last
}

// MeanPromptLen returns the average prompt length of a batch.
func MeanPromptLen(reqs []Request) float64 {
	if len(reqs) == 0 {
		return 0
	}
	var s int64
	for i := range reqs {
		s += int64(len(reqs[i].Prompt))
	}
	return float64(s) / float64(len(reqs))
}
