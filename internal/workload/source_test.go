package workload

import (
	"reflect"
	"testing"
	"time"
)

// requireSameStream asserts a streaming source reproduces its slice
// counterpart request for request.
func requireSameStream(t *testing.T, name string, want []Request, src Source) {
	t.Helper()
	got := Collect(src)
	if len(got) != len(want) {
		t.Fatalf("%s: stream yielded %d requests, slice %d", name, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: request %d differs:\nstream %+v\nslice  %+v", name, i, got[i], want[i])
		}
	}
}

// Every streaming generator must consume its Gen's randomness in
// exactly the slice generator's order: same seed, same sequence.
func TestSourcesMatchSliceGenerators(t *testing.T) {
	cases := []struct {
		name  string
		slice func(g *Gen) []Request
		src   func(g *Gen) Source
	}{
		{"mmlu_pro",
			func(g *Gen) []Request { return g.MMLUPro(40, 512) },
			func(g *Gen) Source { return g.MMLUProSource(40, 512) }},
		{"mmmu_pro",
			func(g *Gen) []Request { return g.MMMUPro(40, 256) },
			func(g *Gen) Source { return g.MMMUProSource(40, 256) }},
		{"longdoc_qa",
			func(g *Gen) []Request { return g.LongDocQA(40) },
			func(g *Gen) Source { return g.LongDocQASource(40) }},
		{"sharegpt",
			func(g *Gen) []Request { return g.ShareGPT(40) },
			func(g *Gen) Source { return g.ShareGPTSource(40) }},
		{"prefix_groups",
			func(g *Gen) []Request { return g.PrefixGroups(4, 10, 256, 64) },
			func(g *Gen) Source { return g.PrefixGroupsSource(4, 10, 256, 64) }},
		{"churn_groups",
			func(g *Gen) []Request { return g.ChurnGroups(4, 10, 256, 64, 3) },
			func(g *Gen) Source { return g.ChurnGroupsSource(4, 10, 256, 64, 3) }},
		{"fan_out",
			func(g *Gen) []Request { return g.FanOut(20, 256, 128, 32, 3) },
			func(g *Gen) Source { return g.FanOutSource(20, 256, 128, 32, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			requireSameStream(t, tc.name, tc.slice(NewGen(7)), tc.src(NewGen(7)))
		})
	}
}

func TestArxivQASourceMatchesSlice(t *testing.T) {
	// The article pool is generated first in both flows, so one Gen per
	// flow keeps the randomness order identical.
	gs := NewGen(11)
	arts := gs.Articles(6, 2048)
	want := gs.ArxivQA(arts, 40, 64)
	gt := NewGen(11)
	arts2 := gt.Articles(6, 2048)
	requireSameStream(t, "arxiv_qa", want, gt.ArxivQASource(arts2, 40, 64))
}

func TestPoissonSourceMatchesPoissonArrivals(t *testing.T) {
	// Slice flow: generate everything, then lay arrivals with the same
	// Gen. Streaming interleaves generation and arrivals, so it needs a
	// dedicated arrival Gen seeded like the slice flow's post-generation
	// state — here each stage simply gets its own seed in both flows.
	want := NewGen(3).PrefixGroups(4, 10, 256, 64)
	NewGen(5).PoissonArrivals(want, 200)
	src := PoissonSource(NewGen(3).PrefixGroupsSource(4, 10, 256, 64), NewGen(5), 200)
	requireSameStream(t, "poisson", want, src)
}

func TestDeadlineSourceMatchesSetDeadlines(t *testing.T) {
	want := NewGen(9).ShareGPT(30)
	SetDeadlines(want, 250*time.Millisecond)
	src := DeadlineSource(NewGen(9).ShareGPTSource(30), 250*time.Millisecond)
	requireSameStream(t, "deadline", want, src)
}

func TestMergeSourcesMatchesMerge(t *testing.T) {
	mk := func() ([]Request, []Request, []Request) {
		a := NewGen(1).PrefixGroups(2, 8, 128, 32)
		NewGen(21).PoissonArrivals(a, 300)
		b := NewGen(2).ShareGPT(12)
		NewGen(22).PoissonArrivals(b, 150)
		c := NewGen(3).LongDocQA(6)
		NewGen(23).PoissonArrivals(c, 90)
		return a, b, c
	}
	a, b, c := mk()
	want := Merge(a, b, c)
	a2, b2, c2 := mk()
	src := MergeSources(SliceSource(a2), SliceSource(b2), SliceSource(c2))
	requireSameStream(t, "merge", want, src)
}

func TestMergeSourcesStreaming(t *testing.T) {
	// The same merge built from live funcSource pipelines (whose Next
	// reuses an internal buffer) must still be correct: the k-way merge
	// copies the head out before refilling.
	a := NewGen(1).PrefixGroups(2, 8, 128, 32)
	NewGen(21).PoissonArrivals(a, 300)
	b := NewGen(2).ShareGPT(12)
	NewGen(22).PoissonArrivals(b, 150)
	want := Merge(a, b)
	src := MergeSources(
		PoissonSource(NewGen(1).PrefixGroupsSource(2, 8, 128, 32), NewGen(21), 300),
		PoissonSource(NewGen(2).ShareGPTSource(12), NewGen(22), 150),
	)
	requireSameStream(t, "merge_streaming", want, src)
}

func TestSourceExhaustion(t *testing.T) {
	src := NewGen(1).ShareGPTSource(2)
	for i := 0; i < 2; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("source exhausted after %d of 2", i)
		}
	}
	for i := 0; i < 3; i++ {
		if r, ok := src.Next(); ok || r != nil {
			t.Fatal("exhausted source must keep returning nil, false")
		}
	}
}
