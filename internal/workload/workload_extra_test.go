package workload

import (
	"testing"
	"time"
)

// TestMMMUImagesAreContiguousRuns: the engine and the image-atomic
// eviction policy treat each maximal run of image tokens as one image,
// so generated images must be contiguous.
func TestMMMUImagesAreContiguousRuns(t *testing.T) {
	reqs := NewGen(9).MMMUPro(10, 256)
	for _, r := range reqs {
		runs := 0
		inRun := false
		for _, tok := range r.Prompt {
			if tok.Image && !inRun {
				runs++
				inRun = true
			} else if !tok.Image {
				inRun = false
			}
		}
		if runs == 0 {
			t.Fatal("request without images")
		}
		// Each run should be an exact multiple of the image size.
		count := 0
		for i, tok := range r.Prompt {
			if tok.Image {
				count++
			}
			if (!tok.Image || i == len(r.Prompt)-1) && count > 0 {
				if count%256 != 0 {
					t.Fatalf("image run of %d tokens is not a multiple of 256", count)
				}
				count = 0
			}
		}
	}
}

// TestArticleIdentityAcrossGenerators: article content depends only on
// the article index, so two independently seeded generators agree —
// the property Fig. 17's cross-request sharing relies on.
func TestArticleIdentityAcrossGenerators(t *testing.T) {
	a := NewGen(1).Articles(3, 1000)
	b := NewGen(999).Articles(3, 1000)
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("article %d seeds differ", i)
		}
		n := min(len(a[i].Tokens), len(b[i].Tokens))
		for j := 0; j < n; j++ {
			if a[i].Tokens[j] != b[i].Tokens[j] {
				t.Fatalf("article %d token %d differs across generators", i, j)
			}
		}
	}
}

// TestArxivQAPromptIsArticlePlusQuestion: the question is appended
// after the complete article.
func TestArxivQAPromptIsArticlePlusQuestion(t *testing.T) {
	g := NewGen(4)
	arts := g.Articles(1, 500)
	reqs := g.ArxivQA(arts, 2, 64)
	for _, r := range reqs {
		if len(r.Prompt) != len(arts[0].Tokens)+64 {
			t.Fatalf("prompt len %d != article %d + question 64", len(r.Prompt), len(arts[0].Tokens))
		}
		for j, tok := range arts[0].Tokens {
			if r.Prompt[j] != tok {
				t.Fatalf("prompt diverges from article at %d", j)
			}
		}
	}
	// Questions are unique across requests.
	q0 := reqs[0].Prompt[len(arts[0].Tokens):]
	q1 := reqs[1].Prompt[len(arts[0].Tokens):]
	same := true
	for j := range q0 {
		if q0[j] != q1[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("questions should differ between requests")
	}
}

// TestSpan: the arrival envelope is order-independent and empty-safe.
func TestSpan(t *testing.T) {
	if f, l := Span(nil); f != 0 || l != 0 {
		t.Fatalf("empty Span = %v..%v, want 0..0", f, l)
	}
	reqs := []Request{
		{Arrival: 30 * time.Millisecond},
		{Arrival: 10 * time.Millisecond},
		{Arrival: 20 * time.Millisecond},
	}
	f, l := Span(reqs)
	if f != 10*time.Millisecond || l != 30*time.Millisecond {
		t.Fatalf("Span = %v..%v, want 10ms..30ms", f, l)
	}
}
