package workload

import (
	"testing"
	"time"
)

func TestDeterminism(t *testing.T) {
	a := NewGen(7).MMLUPro(20, 512)
	b := NewGen(7).MMLUPro(20, 512)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if len(a[i].Prompt) != len(b[i].Prompt) || a[i].OutputLen != b[i].OutputLen {
			t.Fatalf("request %d differs across identical seeds", i)
		}
		for j := range a[i].Prompt {
			if a[i].Prompt[j] != b[i].Prompt[j] {
				t.Fatalf("token %d of request %d differs", j, i)
			}
		}
	}
}

func TestMMLUProSharedPrefix(t *testing.T) {
	reqs := NewGen(1).MMLUPro(40, 256)
	// Requests of the same subject share the first 256 tokens.
	shared := 0
	for i := 1; i < len(reqs); i++ {
		same := true
		for j := 0; j < 256; j++ {
			if reqs[i].Prompt[j] != reqs[0].Prompt[j] {
				same = false
				break
			}
		}
		if same {
			shared++
		}
	}
	if shared == 0 {
		t.Error("expected some requests to share the subject prefix")
	}
	for _, r := range reqs {
		if len(r.Prompt) > 3076 {
			t.Errorf("MMLU-pro prompt %d exceeds max 3076", len(r.Prompt))
		}
		if r.PromptImages() != 0 {
			t.Error("MMLU-pro is text-only")
		}
	}
}

func TestMMMUProStatistics(t *testing.T) {
	reqs := NewGen(2).MMMUPro(50, 1601)
	var img, txt int64
	for _, r := range reqs {
		i := r.PromptImages()
		img += int64(i)
		txt += int64(len(r.Prompt) - i)
	}
	meanImg := float64(img) / 50
	meanTxt := float64(txt) / 50
	// §3.2: 6193 image and 43 text tokens per request on average.
	if meanImg < 4500 || meanImg > 8000 {
		t.Errorf("mean image tokens = %.0f, want ≈ 6193", meanImg)
	}
	if meanTxt < 25 || meanTxt > 70 {
		t.Errorf("mean text tokens = %.0f, want ≈ 43", meanTxt)
	}
}

func TestArxivQASharing(t *testing.T) {
	g := NewGen(3)
	arts := g.Articles(3, 2000)
	reqs := g.ArxivQA(arts, 30, 128)
	// Two requests over the same article share its full token prefix.
	found := false
outer:
	for i := range reqs {
		for j := i + 1; j < len(reqs); j++ {
			if len(reqs[i].Prompt) >= 64 && len(reqs[j].Prompt) >= 64 {
				same := true
				for k := 0; k < 64; k++ {
					if reqs[i].Prompt[k] != reqs[j].Prompt[k] {
						same = false
						break
					}
				}
				if same {
					found = true
					break outer
				}
			}
		}
	}
	if !found {
		t.Error("no article sharing across 30 requests over 3 articles")
	}
}

func TestLongDocQARange(t *testing.T) {
	reqs := NewGen(4).LongDocQA(20)
	for _, r := range reqs {
		if len(r.Prompt) < 55_000 || len(r.Prompt) > 110_000 {
			t.Errorf("input %d outside [55k, 110k]", len(r.Prompt))
		}
		if r.OutputLen < 50 || r.OutputLen > 100 {
			t.Errorf("output %d outside [50, 100]", r.OutputLen)
		}
	}
}

func TestPoissonArrivalsMonotone(t *testing.T) {
	g := NewGen(5)
	reqs := g.ShareGPT(100)
	g.PoissonArrivals(reqs, 2.0)
	var prev time.Duration = -1
	for _, r := range reqs {
		if r.Arrival <= prev {
			t.Fatal("arrivals must be strictly increasing")
		}
		prev = r.Arrival
	}
	// Mean gap ≈ 0.5 s → 100 requests ≈ 50 s total.
	if total := reqs[99].Arrival.Seconds(); total < 25 || total > 100 {
		t.Errorf("total arrival span = %.1fs, want ≈ 50s", total)
	}
	AllAtOnce(reqs)
	for _, r := range reqs {
		if r.Arrival != 0 {
			t.Fatal("AllAtOnce must zero arrivals")
		}
	}
}

func TestDriftLengths(t *testing.T) {
	g := NewGen(6)
	reqs := g.ShareGPT(50)
	before := MeanPromptLen(reqs)
	g.DriftLengths(reqs, 0.3, 1.0)
	after := MeanPromptLen(reqs)
	if after >= before {
		t.Error("drift with factors < 1 must shrink the mean")
	}
	early := MeanPromptLen(reqs[:10])
	late := MeanPromptLen(reqs[40:])
	if early >= late {
		t.Error("early requests should be shorter than late ones")
	}
}

func TestShareGPTMean(t *testing.T) {
	reqs := NewGen(8).ShareGPT(300)
	mean := MeanPromptLen(reqs)
	if mean < 800 || mean > 1400 {
		t.Errorf("ShareGPT mean = %.0f, want ≈ 1085", mean)
	}
	if MeanPromptLen(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestPrefixGroupsStructure(t *testing.T) {
	g := NewGen(7)
	reqs := g.PrefixGroups(5, 4, 128, 32)
	if len(reqs) != 20 {
		t.Fatalf("got %d requests, want 20", len(reqs))
	}
	byGroup := SplitByGroup(reqs)
	if len(byGroup) != 5 {
		t.Fatalf("SplitByGroup found %d groups, want 5", len(byGroup))
	}
	for grp, rs := range byGroup {
		if len(rs) != 4 {
			t.Fatalf("group %d has %d requests, want 4", grp, len(rs))
		}
		// All requests in a group share the 128-token prefix exactly;
		// suffixes are unique.
		for i := 1; i < len(rs); i++ {
			for j := 0; j < 128; j++ {
				if rs[i].Prompt[j] != rs[0].Prompt[j] {
					t.Fatalf("group %d request %d diverges from shared prefix at token %d", grp, i, j)
				}
			}
			if rs[i].Prompt[128] == rs[0].Prompt[128] {
				t.Fatalf("group %d request %d suffix collides with request 0", grp, i)
			}
		}
	}
	// Generation order interleaves groups round by round.
	for i := 1; i < 5; i++ {
		if reqs[i].Group == reqs[i-1].Group {
			t.Fatalf("requests %d and %d share group %d; expected interleaving", i-1, i, reqs[i].Group)
		}
	}
}

func TestMergeOrdersByArrival(t *testing.T) {
	g := NewGen(13)
	a := g.ShareGPT(10)
	b := g.ShareGPT(10)
	g.PoissonArrivals(a, 50)
	g.PoissonArrivals(b, 50)
	merged := Merge(a, b)
	if len(merged) != 20 {
		t.Fatalf("merged %d requests, want 20", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Arrival < merged[i-1].Arrival {
			t.Fatalf("merge not in arrival order at %d", i)
		}
	}
	// Stability: all-at-once streams keep input order.
	AllAtOnce(a)
	AllAtOnce(b)
	flat := Merge(a, b)
	for i := range a {
		if flat[i].ID != a[i].ID {
			t.Fatalf("stable merge broken: position %d has ID %d, want %d", i, flat[i].ID, a[i].ID)
		}
	}
	for i := range b {
		if flat[len(a)+i].ID != b[i].ID {
			t.Fatalf("stable merge broken in second stream at %d", i)
		}
	}
}

func TestFanOutShape(t *testing.T) {
	reqs := NewGen(9).FanOut(4, 128, 32, 96, 8)
	if len(reqs) != 4 {
		t.Fatalf("roots = %d, want 4", len(reqs))
	}
	seen := map[int64]bool{}
	for i, r := range reqs {
		if len(r.Prompt) != 128 || r.OutputLen != 96 {
			t.Errorf("root %d: prompt %d out %d", i, len(r.Prompt), r.OutputLen)
		}
		if r.Fanout != 8 || r.ForkAfter != 32 {
			t.Errorf("root %d: fanout %d forkAfter %d", i, r.Fanout, r.ForkAfter)
		}
		if r.Group != r.ID {
			t.Errorf("root %d: group %d != id %d", i, r.Group, r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
	}
	// Distinct roots have distinct prompts.
	if reqs[0].Prompt[0] == reqs[1].Prompt[0] && reqs[0].Prompt[1] == reqs[1].Prompt[1] &&
		reqs[0].Prompt[2] == reqs[1].Prompt[2] {
		t.Error("roots should not share prompt content")
	}
}

func TestNaiveFanOutExpansion(t *testing.T) {
	gen := NewGen(10)
	reqs := gen.FanOut(3, 64, 16, 48, 4)
	gen.PoissonArrivals(reqs, 5)
	plain := gen.ShareGPT(1)
	reqs = append(reqs, plain...)

	out := NaiveFanOut(reqs)
	if want := 3*4 + 1; len(out) != want {
		t.Fatalf("expanded to %d requests, want %d", len(out), want)
	}
	seen := map[int64]bool{}
	for _, r := range out {
		if r.Fanout != 0 || r.ForkAfter != 0 {
			t.Errorf("request %d still carries fan-out fields", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
	}
	// Clones mirror their root's prompt, arrival and group.
	root, clone := out[0], out[1]
	if clone.Group != root.Group || clone.Arrival != root.Arrival ||
		clone.OutputLen != root.OutputLen || len(clone.Prompt) != len(root.Prompt) {
		t.Errorf("clone diverges from root: %+v vs %+v", clone, root)
	}
	for i := range root.Prompt {
		if clone.Prompt[i] != root.Prompt[i] {
			t.Fatalf("clone prompt differs at %d", i)
		}
	}
	// The plain request passes through untouched.
	last := out[len(out)-1]
	if last.ID != plain[0].ID || last.Fanout != 0 {
		t.Errorf("plain request not passed through: %+v", last)
	}
}
