package workload

import (
	"container/heap"
	"time"
)

// Source is a streaming request iterator: million-request runs pull
// requests one at a time instead of materializing the whole slice up
// front, so a workload's memory footprint is O(1) in its length. Each
// streaming generator consumes its Gen's randomness in exactly the
// same order as its slice counterpart — same seed, same request
// sequence (the equivalence tests pin this). Next returns a pointer
// the caller owns until the next call; nil, false marks exhaustion.
//
// The one flow difference from the slice pipeline: slice workloads
// typically reuse one Gen for generation and then for PoissonArrivals,
// which consumes all generation randomness before any arrival
// randomness. A streaming pipeline interleaves the two per request, so
// each stage needs its own Gen (its own seed) for results to be
// reproducible independent of stage composition.
type Source interface {
	Next() (*Request, bool)
}

// funcSource adapts a pull function to Source.
type funcSource struct {
	n    int // remaining
	pull func() Request
	req  Request
}

func (s *funcSource) Next() (*Request, bool) {
	if s.n <= 0 {
		return nil, false
	}
	s.n--
	s.req = s.pull()
	return &s.req, true
}

// MMLUProSource streams the MMLUPro workload: same seed, same request
// sequence as the slice generator.
func (g *Gen) MMLUProSource(n int, sharedPrefix int) Source {
	return &funcSource{n: n, pull: func() Request { return g.mmluProOne(sharedPrefix) }}
}

// MMMUProSource streams the MMMUPro workload.
func (g *Gen) MMMUProSource(n int, tokensPerImage int) Source {
	return &funcSource{n: n, pull: func() Request { return g.mmmuProOne(tokensPerImage) }}
}

// ArxivQASource streams the ArxivQA workload over a shared article
// pool (the pool itself stays materialized — it is the prefix-sharing
// substrate, not the stream).
func (g *Gen) ArxivQASource(arts []Article, n int, questionLen int) Source {
	return &funcSource{n: n, pull: func() Request { return g.arxivQAOne(arts, questionLen) }}
}

// LongDocQASource streams the LongDocQA workload.
func (g *Gen) LongDocQASource(n int) Source {
	return &funcSource{n: n, pull: func() Request { return g.longDocQAOne() }}
}

// ShareGPTSource streams the ShareGPT workload.
func (g *Gen) ShareGPTSource(n int) Source {
	return &funcSource{n: n, pull: func() Request { return g.shareGPTOne() }}
}

// PrefixGroupsSource streams the PrefixGroups workload in the slice
// generator's interleaved order (request i belongs to group i%groups).
func (g *Gen) PrefixGroupsSource(groups, perGroup, prefixLen, suffixLen int) Source {
	i := 0
	return &funcSource{n: groups * perGroup, pull: func() Request {
		r := g.prefixGroupsOne(i%groups, prefixLen, suffixLen)
		i++
		return r
	}}
}

// ChurnGroupsSource streams the ChurnGroups workload.
func (g *Gen) ChurnGroupsSource(groups, perGroup, prefixLen, suffixLen, phases int) Source {
	if phases < 1 {
		phases = 1
	}
	total := groups * perGroup
	i := 0
	return &funcSource{n: total, pull: func() Request {
		r := g.churnGroupsOne(i, total, groups, prefixLen, suffixLen, phases)
		i++
		return r
	}}
}

// FanOutSource streams fan-out roots.
func (g *Gen) FanOutSource(n, promptLen, forkAfter, outLen, branch int) Source {
	return &funcSource{n: n, pull: func() Request { return g.fanOutOne(promptLen, forkAfter, outLen, branch) }}
}

// poissonSource lays exponential arrival gaps over an inner source.
type poissonSource struct {
	src  Source
	g    *Gen
	rate float64
	t    float64
}

func (s *poissonSource) Next() (*Request, bool) {
	r, ok := s.src.Next()
	if !ok {
		return nil, false
	}
	gap := s.g.rng.ExpFloat64() / s.rate
	s.t += gap
	r.Arrival = time.Duration(s.t * float64(time.Second))
	return r, true
}

// PoissonSource is the streaming counterpart of PoissonArrivals: it
// assigns exponential inter-arrival gaps at ratePerSec as requests
// flow through. Same-seeded Gens produce the same gap sequence in
// both forms; give the arrival process its own Gen (see Source).
func PoissonSource(src Source, g *Gen, ratePerSec float64) Source {
	return &poissonSource{src: src, g: g, rate: ratePerSec}
}

// applySource runs a transform over every request of an inner source.
type applySource struct {
	src Source
	fn  func(*Request)
}

func (s *applySource) Next() (*Request, bool) {
	r, ok := s.src.Next()
	if !ok {
		return nil, false
	}
	s.fn(r)
	return r, true
}

// Apply returns a source that applies fn to each request as it
// streams past — the streaming form of in-place slice passes like
// SetDeadlines or priority assignment.
func Apply(src Source, fn func(*Request)) Source {
	return &applySource{src: src, fn: fn}
}

// DeadlineSource is the streaming counterpart of SetDeadlines.
func DeadlineSource(src Source, d time.Duration) Source {
	return Apply(src, func(r *Request) { r.Deadline = d })
}

// sliceSource yields a materialized slice (bridging old generators
// into streaming consumers).
type sliceSource struct {
	reqs []Request
	i    int
}

func (s *sliceSource) Next() (*Request, bool) {
	if s.i >= len(s.reqs) {
		return nil, false
	}
	r := &s.reqs[s.i]
	s.i++
	return r, true
}

// SliceSource streams an already materialized request slice in order.
func SliceSource(reqs []Request) Source { return &sliceSource{reqs: reqs} }

// Collect drains a source into a slice (tests and small workloads).
func Collect(src Source) []Request {
	var out []Request
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, *r)
	}
}

// mergeItem is one source's pending head inside mergeSource.
type mergeItem struct {
	req *Request
	idx int // source index: the tie-break that mirrors Merge's stable sort
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].req.Arrival != h[j].req.Arrival {
		return h[i].req.Arrival < h[j].req.Arrival
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)      { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any        { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h mergeHeap) head() *mergeItem { return &h[0] }
func (h mergeHeap) emptied() bool    { return len(h) == 0 }

type mergeSource struct {
	srcs []Source
	h    mergeHeap
	out  Request
}

func (s *mergeSource) Next() (*Request, bool) {
	if s.h.emptied() {
		return nil, false
	}
	it := s.h.head()
	s.out = *it.req // copy out before refilling overwrites the head's buffer
	if r, ok := s.srcs[it.idx].Next(); ok {
		it.req = r
		heap.Fix(&s.h, 0)
	} else {
		heap.Pop(&s.h)
	}
	return &s.out, true
}

// MergeSources k-way-merges sources whose arrivals are each
// non-decreasing into one stream ordered by arrival — the streaming
// counterpart of Merge, with ties broken by source position exactly
// as Merge's stable sort breaks them by concatenation order. Memory
// is O(k), not O(total requests).
func MergeSources(srcs ...Source) Source {
	m := &mergeSource{srcs: srcs}
	for i, src := range srcs {
		if r, ok := src.Next(); ok {
			m.h = append(m.h, mergeItem{req: r, idx: i})
		}
	}
	heap.Init(&m.h)
	return m
}
