// Package detmap is the one sanctioned way to iterate a map in
// golden-affecting packages: deterministic, sorted-key traversal.
// jengalint's maporder analyzer forbids raw `range m` there because Go
// randomizes iteration order per run; loops that aggregate floats,
// append, emit events, or allocate in map order silently break the
// bit-identity the goldens and the sim anchor pin. This leaf package
// contains the only unordered ranges such code needs, and returns
// order-independent results.
package detmap

import (
	"cmp"
	"iter"
	"slices"
)

// SortedKeys returns m's keys in ascending order.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Sorted yields m's entries in ascending key order:
//
//	for k, v := range detmap.Sorted(m) { ... }
func Sorted[K cmp.Ordered, V any](m map[K]V) iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		for _, k := range SortedKeys(m) {
			if !yield(k, m[k]) {
				return
			}
		}
	}
}
