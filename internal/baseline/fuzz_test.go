package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"jenga/internal/core"
)

// TestPagedRandomOpsConservation drives the baseline with random
// traffic and checks conservation and sane accounting after every
// operation (the baseline's Usage() re-labels inner accounting, so the
// identity is worth fuzzing separately from the core fuzzer).
func TestPagedRandomOpsConservation(t *testing.T) {
	for _, seed := range []int64{1, 9, 77} {
		rng := rand.New(rand.NewSource(seed))
		p, err := NewPaged(Config{
			Spec: jambaMini(), CapacityBytes: 1 << 18, TokensPerPage: 2,
			EnablePrefixCache: seed%2 == 0, MaxSeqs: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var seqs []*fuzzLive
		var nextID core.RequestID = 1
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 5 || len(seqs) == 0:
				var s *fuzzLive
				if len(seqs) == 0 || rng.Intn(3) == 0 {
					sq := &core.Sequence{ID: nextID}
					nextID++
					n := 4 + rng.Intn(30)
					base := int32(rng.Intn(2) * 100)
					for i := 0; i < n; i++ {
						sq.Tokens = append(sq.Tokens, core.Token{ID: base + int32(i)})
					}
					sq.PromptLen = n
					s = &fuzzLive{seq: sq}
					seqs = append(seqs, s)
				} else {
					s = seqs[rng.Intn(len(seqs))]
				}
				target := s.reserved + 1 + rng.Intn(6)
				if target > len(s.seq.Tokens) {
					target = len(s.seq.Tokens)
				}
				if err := p.Reserve(s.seq, target, core.Tick(op)); err != nil {
					if !errors.Is(err, core.ErrNoSpace) {
						t.Fatalf("reserve: %v", err)
					}
					p.Release(s.seq, rng.Intn(2) == 0)
					seqs = remove(seqs, s)
				} else if target > s.reserved {
					s.reserved = target
				}
			case r < 8:
				s := seqs[rng.Intn(len(seqs))]
				if s.commit < s.reserved {
					s.commit += 1 + rng.Intn(s.reserved-s.commit)
					p.Commit(s.seq, s.commit, core.Tick(op))
				}
			default:
				s := seqs[rng.Intn(len(seqs))]
				p.Release(s.seq, rng.Intn(2) == 0)
				seqs = remove(seqs, s)
			}
			u := p.Usage()
			if u.Used+u.Cached+u.Wasted+u.Free != p.Capacity() {
				t.Fatalf("seed %d op %d: conservation violated: %+v vs %d",
					seed, op, u, p.Capacity())
			}
			if u.Used < 0 || u.Wasted < 0 || u.Cached < 0 || u.Free < 0 {
				t.Fatalf("seed %d op %d: negative component %+v", seed, op, u)
			}
		}
		for _, s := range seqs {
			p.Release(s.seq, false)
		}
		u := p.Usage()
		if u.Used != 0 {
			t.Fatalf("seed %d: leaked used memory: %+v", seed, u)
		}
	}
}

// fuzzLive tracks one in-flight sequence in the fuzzer.
type fuzzLive struct {
	seq      *core.Sequence
	reserved int
	commit   int
}

func remove(seqs []*fuzzLive, s *fuzzLive) []*fuzzLive {
	for i, c := range seqs {
		if c == s {
			return append(seqs[:i], seqs[i+1:]...)
		}
	}
	return seqs
}
