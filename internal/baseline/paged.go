// Package baseline implements the memory managers Jenga is compared
// against: the vLLM v0.6.3-style PagedAttention manager (one page size
// for every layer, no sliding-window freeing, static Mamba partition),
// and the two speculative-decoding strategies of §7.4 (vLLM-max and
// the SmartSpec-style manual split).
//
// Every baseline implements core.Manager, so the engine runs identical
// scheduling over either manager — only memory management differs,
// mirroring the paper's methodology.
package baseline

import (
	"fmt"

	"jenga/internal/core"
	"jenga/internal/model"
)

// FlattenedGroupName is the single layer type the PagedAttention
// baseline sees.
const FlattenedGroupName = "all"

// Flatten collapses a heterogeneous spec into the homogeneous view
// PagedAttention requires (§3.2): one KV group storing every token for
// every attention layer, regardless of scope or window. Mamba and
// vision-embedding groups are excluded (handled separately).
func Flatten(spec *model.Spec) *model.Spec {
	perTok := 0
	for i := range spec.Groups {
		g := &spec.Groups[i]
		if g.Kind == model.Mamba || g.Kind == model.VisionEmbedding {
			continue
		}
		// Sharing-unaware: allocate KV for every physical layer.
		perTok += g.BytesPerToken * g.Physical()
	}
	flat := &model.Spec{
		Name:         spec.Name + "-flat",
		Params:       spec.Params,
		ActiveParams: spec.ActiveParams,
		WeightBytes:  spec.WeightBytes,
		HiddenSize:   spec.HiddenSize,
		Groups: []model.KVGroup{{
			Name: FlattenedGroupName, Kind: model.FullAttention,
			Layers: 1, BytesPerToken: perTok, Scope: model.ScopeAll,
		}},
		Vision: spec.Vision,
	}
	return flat
}

// mambaBytesPerSeq returns the per-sequence recurrent state footprint.
func mambaBytesPerSeq(spec *model.Spec) int64 {
	var b int64
	for i := range spec.Groups {
		g := &spec.Groups[i]
		if g.Kind == model.Mamba {
			b += int64(g.StateBytes) * int64(g.Layers)
		}
	}
	return b
}

// Config configures the PagedAttention baseline.
type Config struct {
	// Spec is the true (heterogeneous) model architecture.
	Spec *model.Spec
	// CapacityBytes is the KV budget, shared between the paged pool and
	// the static Mamba pool.
	CapacityBytes int64
	// TokensPerPage is the page granularity (default 16).
	TokensPerPage int
	// EnablePrefixCache enables vLLM-style full-prefix caching.
	EnablePrefixCache bool
	// MaxSeqs sizes the static Mamba slot pool (vLLM's max_num_seqs);
	// default 64. Ignored for models without Mamba layers.
	MaxSeqs int
}

// seqTrack records what a live sequence actually needs, per true group,
// so the baseline's waste (allocated-but-dead KV) can be measured.
type seqTrack struct {
	seen      int   // full tokens consumed by the tracker
	proj      []int // per-true-group projected committed counts
	needed    int64 // ideal bytes per the true architecture
	mambaSlot bool
}

// Paged is the PagedAttention baseline manager.
type Paged struct {
	spec  *model.Spec
	inner *core.Jenga

	mambaPerSeq int64
	mambaSlots  int

	seqs        map[core.RequestID]*seqTrack
	neededAttn  int64
	activeMamba int
}

var _ core.Manager = (*Paged)(nil)

// NewPaged builds the baseline manager.
func NewPaged(cfg Config) (*Paged, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("baseline: nil spec")
	}
	if cfg.MaxSeqs == 0 {
		cfg.MaxSeqs = 64
	}
	perSeq := mambaBytesPerSeq(cfg.Spec)
	slots := 0
	var pool int64
	if perSeq > 0 {
		slots = cfg.MaxSeqs
		pool = perSeq * int64(slots)
		if pool >= cfg.CapacityBytes {
			return nil, fmt.Errorf("baseline: static mamba pool %d exceeds capacity %d (lower MaxSeqs)",
				pool, cfg.CapacityBytes)
		}
	}
	inner, err := core.New(core.Config{
		Spec:              Flatten(cfg.Spec),
		CapacityBytes:     cfg.CapacityBytes - pool,
		TokensPerPage:     cfg.TokensPerPage,
		EnablePrefixCache: cfg.EnablePrefixCache,
		RequestAware:      true,
	})
	if err != nil {
		return nil, err
	}
	return &Paged{
		spec:        cfg.Spec,
		inner:       inner,
		mambaPerSeq: perSeq,
		mambaSlots:  slots,
		seqs:        make(map[core.RequestID]*seqTrack),
	}, nil
}

// Lookup implements core.Manager.
func (p *Paged) Lookup(seq *core.Sequence) int { return p.inner.Lookup(seq) }

// CachedPrefix implements core.Manager.
func (p *Paged) CachedPrefix(seq *core.Sequence) int { return p.inner.CachedPrefix(seq) }

// Reserve implements core.Manager. For Mamba models a static slot must
// be available — the vLLM v0.6.3 static-partition behavior.
func (p *Paged) Reserve(seq *core.Sequence, upTo int, now core.Tick) error {
	tr := p.track(seq)
	if p.mambaPerSeq > 0 && !tr.mambaSlot {
		if p.activeMamba >= p.mambaSlots {
			return core.ErrNoSpace
		}
		tr.mambaSlot = true
		p.activeMamba++
	}
	if err := p.inner.Reserve(seq, upTo, now); err != nil {
		return err
	}
	// A prefix hit skips tokens without a Commit call; account for them.
	p.advance(seq, tr, p.inner.CachedPrefix(seq))
	return nil
}

// Commit implements core.Manager.
func (p *Paged) Commit(seq *core.Sequence, upTo int, now core.Tick) {
	p.inner.Commit(seq, upTo, now)
	p.advance(seq, p.track(seq), upTo)
}

// Release implements core.Manager.
func (p *Paged) Release(seq *core.Sequence, cache bool) {
	p.inner.Release(seq, cache)
	tr, ok := p.seqs[seq.ID]
	if !ok {
		return
	}
	p.neededAttn -= tr.needed
	if tr.mambaSlot {
		p.activeMamba--
	}
	delete(p.seqs, seq.ID)
}

// EncodeImages implements core.Manager: the baseline has no embedding
// cache; the engine re-runs the encoder each chunk.
func (p *Paged) EncodeImages(*core.Sequence, int, core.Tick) error { return nil }

// DropImages implements core.Manager (no-op).
func (p *Paged) DropImages(*core.Sequence, int) {}

// SupportsVisionCache implements core.Manager.
func (p *Paged) SupportsVisionCache() bool { return false }

// Footprint implements core.Manager: the flattened prompt KV plus one
// static Mamba slot.
func (p *Paged) Footprint(seq *core.Sequence) int64 {
	return p.inner.Footprint(seq) + p.mambaPerSeq
}

// Capacity implements core.Manager.
func (p *Paged) Capacity() int64 {
	return p.inner.Capacity() + p.mambaPerSeq*int64(p.mambaSlots)
}

// Stats exposes the inner allocator's counters.
func (p *Paged) Stats() core.Stats { return p.inner.Stats() }

// track returns (creating if needed) the sequence tracker.
func (p *Paged) track(seq *core.Sequence) *seqTrack {
	tr, ok := p.seqs[seq.ID]
	if !ok {
		tr = &seqTrack{proj: make([]int, len(p.spec.Groups))}
		p.seqs[seq.ID] = tr
	}
	return tr
}

// advance updates the per-true-group needed-bytes accounting through
// full-token position upTo.
func (p *Paged) advance(seq *core.Sequence, tr *seqTrack, upTo int) {
	if upTo <= tr.seen {
		return
	}
	delta := seq.Tokens[tr.seen:upTo]
	for gi := range p.spec.Groups {
		g := &p.spec.Groups[gi]
		if g.Kind == model.VisionEmbedding {
			continue
		}
		add := 0
		for _, t := range delta {
			if g.StoresToken(t.Image) {
				add++
			}
		}
		if add == 0 {
			continue
		}
		old := tr.proj[gi]
		tr.proj[gi] = old + add
		var inc int64
		unit := int64(g.BytesPerToken) * int64(g.Layers)
		switch g.Kind {
		case model.SlidingWindow, model.PyramidWindow:
			inc = int64(min(tr.proj[gi], g.Window)-min(old, g.Window)) * unit
		case model.Mamba:
			if old == 0 {
				inc = int64(g.StateBytes) * int64(g.Layers)
			}
		default:
			inc = int64(add) * unit
		}
		tr.needed += inc
		p.neededAttn += inc
	}
	tr.seen = upTo
}

// Usage implements core.Manager. The inner manager reports every
// committed token as used; the baseline re-labels KV the true
// architecture would never read again (out-of-window tokens, tokens
// stored in layers of the other modality, idle Mamba slots) as waste —
// the quantity Fig. 16 plots in red.
func (p *Paged) Usage() core.Usage {
	t := p.totals(p.inner.UsageTotals())
	u := t.u
	u.PerGroup = map[string]core.GroupUsage{
		FlattenedGroupName: {
			Used:   t.attnNeeded,
			Cached: u.Cached,
			Wasted: t.deadAttn + t.inWasted,
		},
	}
	if p.mambaPerSeq > 0 {
		u.PerGroup["mamba-pool"] = core.GroupUsage{
			Used:   t.mambaNeeded,
			Wasted: t.mambaPool - t.mambaNeeded,
		}
	}
	return u
}

// UsageTotals implements core.Manager (the PerGroup-free hot-path form).
func (p *Paged) UsageTotals() core.Usage {
	return p.totals(p.inner.UsageTotals()).u
}

// pagedTotals carries the re-labeled snapshot plus the intermediate
// quantities Usage's PerGroup breakdown reports.
type pagedTotals struct {
	u                                            core.Usage
	attnNeeded, mambaNeeded, mambaPool, deadAttn int64
	inWasted                                     int64
}

// totals folds the inner manager's aggregates into the baseline's
// re-labeled view.
func (p *Paged) totals(in core.Usage) pagedTotals {
	t := pagedTotals{mambaPool: p.mambaPerSeq * int64(p.mambaSlots), inWasted: in.Wasted}
	for _, tr := range p.seqs {
		for gi := range p.spec.Groups {
			g := &p.spec.Groups[gi]
			if g.Kind == model.Mamba {
				if tr.proj[gi] > 0 {
					t.mambaNeeded += int64(g.StateBytes) * int64(g.Layers)
				}
			}
		}
	}
	t.attnNeeded = p.neededAttn - t.mambaNeeded
	t.deadAttn = in.Used - t.attnNeeded
	if t.deadAttn < 0 {
		t.deadAttn = 0
	}
	t.u = core.Usage{
		Used:   t.attnNeeded + t.mambaNeeded,
		Cached: in.Cached,
		Wasted: t.deadAttn + in.Wasted + (t.mambaPool - t.mambaNeeded),
		Free:   in.Free,
	}
	return t
}
