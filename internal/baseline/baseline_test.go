package baseline

import (
	"errors"
	"testing"

	"jenga/internal/core"
	"jenga/internal/model"
)

// mllamaMini scales the Llama 3.2 Vision shape down: 4 self layers over
// text, 1 cross layer over images, 128 B per layer per token.
func mllamaMini() *model.Spec {
	return &model.Spec{
		Name: "mllama-mini", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 4, BytesPerToken: 128, Scope: model.ScopeText},
			{Name: "cross", Kind: model.CrossAttention, Layers: 1, BytesPerToken: 128, Scope: model.ScopeImage},
		},
	}
}

func windowMini() *model.Spec {
	return &model.Spec{
		Name: "win-mini", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "full", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128},
			{Name: "window", Kind: model.SlidingWindow, Layers: 3, BytesPerToken: 128, Window: 4},
		},
	}
}

func jambaMini() *model.Spec {
	return &model.Spec{
		Name: "jamba-mini", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{
			{Name: "attn", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128},
			{Name: "mamba", Kind: model.Mamba, Layers: 2, StateBytes: 1024, CheckpointEvery: 8},
		},
	}
}

func seqText(id core.RequestID, n int) *core.Sequence {
	s := &core.Sequence{ID: id}
	for i := 0; i < n; i++ {
		s.Tokens = append(s.Tokens, core.Token{ID: int32(i + 1)})
	}
	return s
}

func seqMixed(id core.RequestID, img, txt int) *core.Sequence {
	s := &core.Sequence{ID: id}
	for i := 0; i < img; i++ {
		s.Tokens = append(s.Tokens, core.Token{ID: int32(i + 1), Image: true})
	}
	for i := 0; i < txt; i++ {
		s.Tokens = append(s.Tokens, core.Token{ID: int32(i + 1)})
	}
	return s
}

func TestFlattenSumsAllLayers(t *testing.T) {
	flat := Flatten(mllamaMini())
	if got := flat.Groups[0].BytesPerToken; got != 5*128 {
		t.Errorf("flattened bytes/token = %d, want %d", got, 5*128)
	}
	// Mamba and vision groups are excluded.
	flat = Flatten(jambaMini())
	if got := flat.Groups[0].BytesPerToken; got != 128 {
		t.Errorf("flattened jamba bytes/token = %d, want 128", got)
	}
}

// TestPagedWasteMatchesSection32: with T text and I image tokens the
// baseline stores (T+I)×(allLayers)×E while only T×self + I×cross is
// needed; the waste fraction must match the §3.2 formula.
func TestPagedWasteMatchesSection32(t *testing.T) {
	spec := mllamaMini()
	p, err := NewPaged(Config{Spec: spec, CapacityBytes: 1 << 20, TokensPerPage: 1})
	if err != nil {
		t.Fatal(err)
	}
	T, I := 8, 16
	s := seqMixed(1, I, T)
	if err := p.Reserve(s, T+I, 1); err != nil {
		t.Fatal(err)
	}
	p.Commit(s, T+I, 1)
	u := p.Usage()
	wantUsed := int64(T*4*128 + I*1*128)
	if u.Used != wantUsed {
		t.Errorf("used = %d, want %d", u.Used, wantUsed)
	}
	allocated := int64((T + I) * 5 * 128)
	if got := u.Used + u.Wasted; got != allocated {
		t.Errorf("used+wasted = %d, want allocated %d", got, allocated)
	}
	wantFrac := 1 - float64(wantUsed)/float64(allocated)
	gotFrac := float64(u.Wasted) / float64(allocated)
	if diff := gotFrac - wantFrac; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("waste fraction = %f, want %f", gotFrac, wantFrac)
	}
	p.Release(s, false)
	u = p.Usage()
	if u.Used != 0 || u.Wasted != 0 {
		t.Errorf("after release: %+v", u)
	}
}

// TestPagedWindowNeverFrees: the baseline keeps out-of-window KV,
// reporting it as waste, while conservation still holds.
func TestPagedWindowNeverFrees(t *testing.T) {
	p, err := NewPaged(Config{Spec: windowMini(), CapacityBytes: 1 << 20, TokensPerPage: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := seqText(1, 40)
	if err := p.Reserve(s, 40, 1); err != nil {
		t.Fatal(err)
	}
	p.Commit(s, 40, 1)
	u := p.Usage()
	// Needed: full layer 40×128 + window layers min(40,4)×3×128.
	wantUsed := int64(40*128 + 4*3*128)
	if u.Used != wantUsed {
		t.Errorf("used = %d, want %d", u.Used, wantUsed)
	}
	// Dead window KV: (40-4)×3×128.
	wantDead := int64(36 * 3 * 128)
	if u.Wasted != wantDead {
		t.Errorf("wasted = %d, want %d", u.Wasted, wantDead)
	}
	if u.Used+u.Cached+u.Wasted+u.Free != p.Capacity() {
		t.Error("conservation violated")
	}
}

// TestPagedMambaStaticPartition: slots are reserved up front; idle
// slots count as waste; exceeding MaxSeqs returns ErrNoSpace.
func TestPagedMambaStaticPartition(t *testing.T) {
	p, err := NewPaged(Config{Spec: jambaMini(), CapacityBytes: 1 << 20, TokensPerPage: 2, MaxSeqs: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := p.Usage()
	// Pool of 2 slots × 2048 bytes reserved and idle.
	if u.Wasted != 2*2048 {
		t.Errorf("idle mamba pool wasted = %d, want %d", u.Wasted, 2*2048)
	}
	a, b, c := seqText(1, 4), seqText(2, 4), seqText(3, 4)
	if err := p.Reserve(a, 4, 1); err != nil {
		t.Fatal(err)
	}
	p.Commit(a, 4, 1)
	if err := p.Reserve(b, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(c, 4, 1); !errors.Is(err, core.ErrNoSpace) {
		t.Errorf("third sequence should exhaust mamba slots, got %v", err)
	}
	u = p.Usage()
	if got := u.PerGroup["mamba-pool"].Used; got != 2048 {
		t.Errorf("active mamba = %d, want 2048 (only committed seq a)", got)
	}
	p.Release(a, false)
	if err := p.Reserve(c, 4, 2); err != nil {
		t.Errorf("slot should free on release: %v", err)
	}
	if u := p.Usage(); u.Used+u.Cached+u.Wasted+u.Free != p.Capacity() {
		t.Error("conservation violated")
	}
}

func TestPagedMambaPoolTooLarge(t *testing.T) {
	_, err := NewPaged(Config{Spec: jambaMini(), CapacityBytes: 4096, TokensPerPage: 2, MaxSeqs: 64})
	if err == nil {
		t.Error("oversized static pool should fail construction")
	}
	if _, err := NewPaged(Config{}); err == nil {
		t.Error("nil spec should error")
	}
}

// TestPagedPrefixCachingWorks: the baseline still does vLLM-style
// full-prefix caching over flattened pages.
func TestPagedPrefixCaching(t *testing.T) {
	p, err := NewPaged(Config{Spec: windowMini(), CapacityBytes: 1 << 20, TokensPerPage: 2, EnablePrefixCache: true})
	if err != nil {
		t.Fatal(err)
	}
	a := seqText(1, 17)
	if err := p.Reserve(a, 17, 1); err != nil {
		t.Fatal(err)
	}
	p.Commit(a, 17, 1)
	p.Release(a, true)
	b := seqText(2, 17)
	if got := p.Lookup(b); got != 16 {
		t.Errorf("baseline lookup = %d, want 16", got)
	}
	if err := p.Reserve(b, 17, 2); err != nil {
		t.Fatal(err)
	}
	if got := p.CachedPrefix(b); got != 16 {
		t.Errorf("cached prefix = %d, want 16", got)
	}
	p.Commit(b, 17, 2)
	u := p.Usage()
	if u.Used+u.Cached+u.Wasted+u.Free != p.Capacity() {
		t.Error("conservation violated after prefix hit")
	}
	if p.SupportsVisionCache() {
		t.Error("baseline must not claim a vision cache")
	}
	if err := p.EncodeImages(b, 17, 2); err != nil {
		t.Errorf("EncodeImages no-op should not fail: %v", err)
	}
	p.DropImages(b, 17)
}

// TestVLLMMaxPadding: draft tokens in target-sized pages waste the
// difference.
func TestVLLMMaxPadding(t *testing.T) {
	target := &model.Spec{Name: "t", Params: 1000, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{{Name: "self", Kind: model.FullAttention, Layers: 4, BytesPerToken: 128}}}
	draft := &model.Spec{Name: "d", Params: 100, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{{Name: "self", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128}}}
	ms, err := NewVLLMMax(target, draft, 1<<20, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Target != ms.Draft {
		t.Error("vLLM-max shares one pool")
	}
	ds := seqText(1, 8)
	ds.Tag = TagDraft
	if err := ms.Draft.Reserve(ds, 8, 1); err != nil {
		t.Fatal(err)
	}
	ms.Draft.Commit(ds, 8, 1)
	u := ms.Draft.Usage()
	// Draft needs 8×128 but occupies 8×512: padding 8×384 is waste.
	if want := int64(8 * 128); u.Used != want {
		t.Errorf("used = %d, want %d", u.Used, want)
	}
	if want := int64(8 * 384); u.Wasted != want {
		t.Errorf("wasted = %d, want %d", u.Wasted, want)
	}
	ms.Draft.Release(ds, false)
	u = ms.Draft.Usage()
	if u.Used != 0 || u.Wasted != 0 {
		t.Errorf("after release: %+v", u)
	}
	// Draft larger than target is rejected.
	if _, err := NewVLLMMax(draft, target, 1<<20, 1, false); err == nil {
		t.Error("draft bigger than target should error")
	}
}

// TestVLLMManualSplit: capacities divide by the SmartSpec heuristic and
// the two pools are independent.
func TestVLLMManualSplit(t *testing.T) {
	target := windowMini()
	draft := &model.Spec{Name: "d", Params: 100, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{{Name: "self", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128}}}
	ms, err := NewVLLMManual(target, draft, 1<<20, 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Target == ms.Draft {
		t.Error("manual split must use two managers")
	}
	// target flat = 512, draft = 128 → draft gets 1/5 of capacity.
	if got := ms.Draft.Capacity(); got > (1<<20)/4 {
		t.Errorf("draft capacity = %d, too large", got)
	}
	total := ms.Draft.Capacity() + ms.Target.Capacity()
	if total > 1<<20 || total < (1<<20)-1024 {
		t.Errorf("split total = %d, want ≈ %d", total, 1<<20)
	}
}

// TestJengaSharedSpecDecode: merged tagged spec serves both models with
// natural page sizes.
func TestJengaSharedSpecDecode(t *testing.T) {
	target := windowMini()
	draft := &model.Spec{Name: "d", Params: 100, WeightBytes: 2, HiddenSize: 8,
		Groups: []model.KVGroup{{Name: "self", Kind: model.FullAttention, Layers: 1, BytesPerToken: 128}}}
	ms, err := NewJengaShared(target, draft, 1<<20, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Target != ms.Draft {
		t.Error("shared heap expected")
	}
	ts := seqText(1, 8)
	ts.Tag = TagTarget
	ds := seqText(2, 8)
	ds.Tag = TagDraft
	for _, s := range []*core.Sequence{ts, ds} {
		if err := ms.Target.Reserve(s, 8, 1); err != nil {
			t.Fatal(err)
		}
		ms.Target.Commit(s, 8, 1)
	}
	u := ms.Target.Usage()
	// Target: full 8×128 + window min(8,4)... window group under Jenga
	// frees beyond window: used = 8×128 + 4×3×128; draft: 8×128.
	wantUsed := int64(8*128 + 4*3*128 + 8*128)
	if u.Used != wantUsed {
		t.Errorf("used = %d, want %d", u.Used, wantUsed)
	}
	if u.Used+u.Cached+u.Wasted+u.Free != ms.Target.Capacity() {
		t.Error("conservation violated")
	}
}
