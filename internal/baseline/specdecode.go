package baseline

import (
	"fmt"

	"jenga/internal/core"
	"jenga/internal/model"
)

// Speculative-decoding memory strategies (§6.1, §7.4). The driver in
// internal/spec routes the target and draft sequences to the managers
// returned here; TagTarget/TagDraft select each model's KV groups.

// Sequence tags used by all multi-model managers.
const (
	TagTarget = "target"
	TagDraft  = "draft"
)

// Managers bundles the per-model manager handles. Target and Draft may
// be the same object (shared heap).
type Managers struct {
	Target core.Manager
	Draft  core.Manager
}

// MergeSpecs combines two models into one tagged spec so a single
// manager can serve both (§6.1's custom_kv_cache registration).
func MergeSpecs(target, draft *model.Spec) *model.Spec {
	out := &model.Spec{
		Name:        target.Name + "+" + draft.Name,
		Params:      target.Params,
		WeightBytes: target.WeightBytes,
		HiddenSize:  target.HiddenSize,
	}
	for _, g := range target.Groups {
		g.Name = "t:" + g.Name
		g.Tag = TagTarget
		out.Groups = append(out.Groups, g)
	}
	for _, g := range draft.Groups {
		g.Name = "d:" + g.Name
		g.Tag = TagDraft
		out.Groups = append(out.Groups, g)
	}
	return out
}

// NewJengaShared serves both models from one Jenga heap: each model's
// groups get their natural page sizes, and the LCM compatibility layer
// exchanges large pages between them with negligible fragmentation.
func NewJengaShared(target, draft *model.Spec, capacity int64, tokensPerPage int, cache bool) (Managers, error) {
	merged := MergeSpecs(target, draft)
	m, err := core.New(core.Config{
		Spec: merged, CapacityBytes: capacity, TokensPerPage: tokensPerPage,
		EnablePrefixCache: cache, RequestAware: true,
	})
	if err != nil {
		return Managers{}, err
	}
	return Managers{Target: m, Draft: m}, nil
}

// maxPaged is the vLLM-max strategy: one uniform page size, set by the
// large model (§7.4). Draft tokens occupy target-sized pages; the
// unused tail of every draft page is waste.
type maxPaged struct {
	*core.Jenga
	padWaste   int64 // per draft token
	draftSeen  map[core.RequestID]int
	draftTotal int64
}

var _ core.Manager = (*maxPaged)(nil)

// NewVLLMMax builds the vLLM-max manager pair (both roles share it).
func NewVLLMMax(target, draft *model.Spec, capacity int64, tokensPerPage int, cache bool) (Managers, error) {
	tFlat := Flatten(target).Groups[0].BytesPerToken
	dFlat := Flatten(draft).Groups[0].BytesPerToken
	if dFlat > tFlat {
		return Managers{}, fmt.Errorf("baseline: draft KV (%d) exceeds target KV (%d) per token", dFlat, tFlat)
	}
	spec := &model.Spec{
		Name:        target.Name + "+max",
		Params:      target.Params,
		WeightBytes: target.WeightBytes,
		HiddenSize:  target.HiddenSize,
		Groups: []model.KVGroup{
			{Name: "t:all", Kind: model.FullAttention, Layers: 1, BytesPerToken: tFlat, Tag: TagTarget},
			// Draft pages padded to the target page size: the defining
			// fragmentation of vLLM-max.
			{Name: "d:all", Kind: model.FullAttention, Layers: 1, BytesPerToken: tFlat, Tag: TagDraft},
		},
	}
	m, err := core.New(core.Config{
		Spec: spec, CapacityBytes: capacity, TokensPerPage: tokensPerPage,
		EnablePrefixCache: cache, RequestAware: true,
	})
	if err != nil {
		return Managers{}, err
	}
	mp := &maxPaged{
		Jenga:     m,
		padWaste:  int64(tFlat - dFlat),
		draftSeen: make(map[core.RequestID]int),
	}
	return Managers{Target: mp, Draft: mp}, nil
}

// Commit intercepts draft commits to count padding waste.
func (m *maxPaged) Commit(seq *core.Sequence, upTo int, now core.Tick) {
	m.Jenga.Commit(seq, upTo, now)
	if seq.Tag == TagDraft {
		seen := m.draftSeen[seq.ID]
		if upTo > seen {
			m.draftTotal += int64(upTo - seen)
			m.draftSeen[seq.ID] = upTo
		}
	}
}

// Release drops the padding accounting with the sequence.
func (m *maxPaged) Release(seq *core.Sequence, cache bool) {
	m.Jenga.Release(seq, cache)
	if seq.Tag == TagDraft {
		m.draftTotal -= int64(m.draftSeen[seq.ID])
		delete(m.draftSeen, seq.ID)
	}
}

// Usage re-labels the padded tail of live draft pages as waste.
func (m *maxPaged) Usage() core.Usage {
	return m.relabel(m.Jenga.Usage())
}

// UsageTotals is the PerGroup-free hot-path form of Usage.
func (m *maxPaged) UsageTotals() core.Usage {
	return m.relabel(m.Jenga.UsageTotals())
}

func (m *maxPaged) relabel(u core.Usage) core.Usage {
	pad := m.draftTotal * m.padWaste
	if pad > u.Used {
		pad = u.Used
	}
	u.Used -= pad
	u.Wasted += pad
	return u
}

// NewVLLMManual builds the SmartSpec-style manual split (§7.4,
// vllm-manual): memory statically divided between two flattened paged
// pools, proportional to each model's per-token KV weighted by the
// expected draft:target token ratio.
func NewVLLMManual(target, draft *model.Spec, capacity int64, tokensPerPage int, cache bool, draftTokenRatio float64) (Managers, error) {
	if draftTokenRatio <= 0 {
		draftTokenRatio = 1
	}
	tFlat := float64(Flatten(target).Groups[0].BytesPerToken)
	dFlat := float64(Flatten(draft).Groups[0].BytesPerToken) * draftTokenRatio
	frac := dFlat / (tFlat + dFlat)
	draftCap := int64(float64(capacity) * frac)
	tm, err := NewPaged(Config{
		Spec: target, CapacityBytes: capacity - draftCap,
		TokensPerPage: tokensPerPage, EnablePrefixCache: cache,
	})
	if err != nil {
		return Managers{}, err
	}
	dm, err := NewPaged(Config{
		Spec: draft, CapacityBytes: draftCap,
		TokensPerPage: tokensPerPage, EnablePrefixCache: cache,
	})
	if err != nil {
		return Managers{}, err
	}
	return Managers{Target: tm, Draft: dm}, nil
}
