// Package spec simulates speculative decoding (§6.1, Fig. 19): a small
// draft model proposes K tokens sequentially, the target model verifies
// them in one pass, and accepted tokens commit to both models' KV
// caches. The two models' memory lives in the managers supplied by
// internal/baseline — a shared Jenga heap, a vLLM-max uniform pool, or
// a SmartSpec-style static split — so the experiment varies only
// memory management.
package spec

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"jenga/internal/baseline"
	"jenga/internal/core"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/workload"
)

// Config configures a speculative-decoding run.
type Config struct {
	// Target and Draft are the two model architectures.
	Target, Draft *model.Spec
	// Device is the simulated GPU (shared by both models).
	Device gpu.Device
	// Managers supplies the per-model memory managers (possibly the
	// same object for shared heaps).
	Managers baseline.Managers
	// K is the speculation depth (default 4).
	K int
	// AcceptRate is the per-token acceptance probability (default 0.7).
	AcceptRate float64
	// MaxRunning caps concurrent requests (default 64).
	MaxRunning int
	// MaxSteps bounds the simulation (default 1_000_000).
	MaxSteps int
}

// Result aggregates a run's metrics.
type Result struct {
	Duration     time.Duration
	Steps        int
	Finished     int
	Failed       int
	ReqPerSec    float64
	TokensPerSec float64
	// MeanAccepted is the average number of draft tokens accepted per
	// verify pass (excluding the bonus token).
	MeanAccepted float64
	// MeanBatch is the average number of requests per iteration.
	MeanBatch   float64
	Preemptions int
}

type specRun struct {
	req       *workload.Request
	target    *core.Sequence
	draft     *core.Sequence
	prefilled bool
	generated int
	iter      int
	finish    time.Duration
}

// Driver executes speculative-decoding simulations.
type Driver struct {
	cfg        Config
	targetCost gpu.CostModel
	draftCost  gpu.CostModel
	clock      time.Duration
	step       int

	waiting  []*specRun
	running  []*specRun
	finished []*specRun
	failed   []*specRun

	acceptedSum int64
	verifies    int64
	batchSum    int64
	iters       int64
	generated   int64
	preempts    int
}

// New validates the config and builds a driver.
func New(cfg Config) (*Driver, error) {
	if cfg.Target == nil || cfg.Draft == nil {
		return nil, fmt.Errorf("spec: target and draft specs required")
	}
	if cfg.Managers.Target == nil || cfg.Managers.Draft == nil {
		return nil, fmt.Errorf("spec: managers required")
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.AcceptRate <= 0 || cfg.AcceptRate > 1 {
		cfg.AcceptRate = 0.7
	}
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 64
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 1_000_000
	}
	if cfg.Device.Name == "" {
		cfg.Device = gpu.H100()
	}
	return &Driver{
		cfg:        cfg,
		targetCost: gpu.CostModel{Dev: cfg.Device, Spec: cfg.Target},
		draftCost:  gpu.CostModel{Dev: cfg.Device, Spec: cfg.Draft},
	}, nil
}

// Run simulates the request set to completion.
func (d *Driver) Run(reqs []workload.Request) (*Result, error) {
	for i := range reqs {
		r := &reqs[i]
		if r.OutputLen < 1 {
			return nil, fmt.Errorf("spec: request %d has output length %d", r.ID, r.OutputLen)
		}
		d.waiting = append(d.waiting, &specRun{
			req:    r,
			target: &core.Sequence{ID: core.RequestID(r.ID), Tag: baseline.TagTarget, PromptLen: len(r.Prompt), Tokens: append([]core.Token{}, r.Prompt...)},
			draft:  &core.Sequence{ID: core.RequestID(r.ID) + 1_000_000_000, Tag: baseline.TagDraft, PromptLen: len(r.Prompt), Tokens: append([]core.Token{}, r.Prompt...)},
		})
	}
	sort.SliceStable(d.waiting, func(i, j int) bool {
		return d.waiting[i].req.Arrival < d.waiting[j].req.Arrival
	})

	total := len(d.waiting)
	stalls := 0
	for len(d.finished)+len(d.failed) < total {
		d.step++
		if d.step > d.cfg.MaxSteps {
			return nil, fmt.Errorf("spec: exceeded %d steps", d.cfg.MaxSteps)
		}
		progressed := d.runStep()
		if progressed {
			stalls = 0
			continue
		}
		stalls++
		if stalls > 3 {
			// The head request cannot fit even on an idle engine.
			if len(d.running) > 0 {
				d.fail(d.running[0])
			} else if len(d.waiting) > 0 {
				r := d.waiting[0]
				d.waiting = d.waiting[1:]
				d.release(r, false)
				d.failed = append(d.failed, r)
			} else {
				return nil, fmt.Errorf("spec: stuck with nothing to fail")
			}
			stalls = 0
		}
	}
	return d.result(), nil
}

// runStep performs one iteration: admissions (prefill both models) and
// one propose-verify round for the running batch.
func (d *Driver) runStep() bool {
	now := core.Tick(d.step)
	progressed := false

	// Admission: prefill prompt into both models.
	for len(d.waiting) > 0 && len(d.running) < d.cfg.MaxRunning {
		r := d.waiting[0]
		if !d.prefill(r, now) {
			break
		}
		d.waiting = d.waiting[1:]
		d.running = append(d.running, r)
		progressed = true
	}

	if len(d.running) == 0 {
		return progressed
	}

	// One propose-verify iteration over the whole batch.
	batch := 0
	var draftTokens, verifyTokens int
	var kvRead int64
	for _, r := range append([]*specRun(nil), d.running...) {
		if !d.contains(r) {
			continue
		}
		accepted := d.acceptance(r)
		gain := accepted + 1 // bonus token from the verify pass
		if r.generated+gain > r.req.OutputLen {
			gain = r.req.OutputLen - r.generated
		}
		if !d.extend(r, gain, now) {
			continue
		}
		r.generated += gain
		r.iter++
		d.generated += int64(gain)
		d.acceptedSum += int64(accepted)
		d.verifies++
		batch++
		draftTokens += d.cfg.K
		verifyTokens += d.cfg.K + 1
		kvRead += gpu.DecodeKVReadBytes(d.cfg.Target, ctxAll(d.cfg.Target, len(r.target.Tokens)))
		if r.generated >= r.req.OutputLen {
			r.finish = d.clock
			d.release(r, true)
			d.remove(r)
			d.finished = append(d.finished, r)
		}
	}
	if batch > 0 {
		// K sequential draft passes plus one target verify pass.
		var t time.Duration
		for k := 0; k < d.cfg.K; k++ {
			t += d.draftCost.StepTime(gpu.StepWork{DecodeSeqs: batch})
		}
		t += d.targetCost.StepTime(gpu.StepWork{
			PrefillTokens: verifyTokens, KVReadBytes: kvRead,
		})
		d.clock += t
		d.batchSum += int64(batch)
		d.iters++
		progressed = true
	}
	return progressed
}

// ctxAll maps every group of a (text-only) spec to the same projected
// context length.
func ctxAll(spec *model.Spec, n int) map[string]int {
	m := make(map[string]int, len(spec.Groups))
	for i := range spec.Groups {
		m[spec.Groups[i].Name] = n
	}
	return m
}

// prefill reserves and commits the prompt in both models.
func (d *Driver) prefill(r *specRun, now core.Tick) bool {
	n := len(r.req.Prompt)
	if err := d.cfg.Managers.Target.Reserve(r.target, n, now); err != nil {
		if errors.Is(err, core.ErrNoSpace) {
			d.release(r, false)
			return false
		}
		panic(err)
	}
	if err := d.cfg.Managers.Draft.Reserve(r.draft, n, now); err != nil {
		if errors.Is(err, core.ErrNoSpace) {
			d.release(r, false)
			return false
		}
		panic(err)
	}
	d.cfg.Managers.Target.Commit(r.target, n, now)
	d.cfg.Managers.Draft.Commit(r.draft, n, now)
	d.clock += d.targetCost.StepTime(gpu.StepWork{PrefillTokens: n})
	d.clock += d.draftCost.StepTime(gpu.StepWork{PrefillTokens: n})
	r.prefilled = true
	return true
}

// extend appends gain accepted tokens to both sequences, preempting the
// newest running request on memory pressure.
func (d *Driver) extend(r *specRun, gain int, now core.Tick) bool {
	for g := 0; g < gain; g++ {
		tok := d.genToken(r, len(r.target.Tokens))
		r.target.Tokens = append(r.target.Tokens, tok)
		r.draft.Tokens = append(r.draft.Tokens, tok)
	}
	n := len(r.target.Tokens)
	for {
		errT := d.cfg.Managers.Target.Reserve(r.target, n, now)
		var errD error
		if errT == nil {
			errD = d.cfg.Managers.Draft.Reserve(r.draft, n, now)
		}
		if errT == nil && errD == nil {
			d.cfg.Managers.Target.Commit(r.target, n, now)
			d.cfg.Managers.Draft.Commit(r.draft, n, now)
			return true
		}
		victim := d.victim(r)
		if victim == nil {
			// Roll back the speculative append.
			r.target.Tokens = r.target.Tokens[:n-gain]
			r.draft.Tokens = r.draft.Tokens[:n-gain]
			return false
		}
		d.preempt(victim)
	}
}

// victim returns the latest-arrived running request other than r.
func (d *Driver) victim(r *specRun) *specRun {
	var v *specRun
	for _, c := range d.running {
		if c == r {
			continue
		}
		if v == nil || c.req.Arrival > v.req.Arrival {
			v = c
		}
	}
	return v
}

// preempt releases a request entirely and requeues it for recompute.
func (d *Driver) preempt(v *specRun) {
	d.release(v, true)
	// Recompute restarts from the prompt plus already-accepted tokens.
	v.prefilled = false
	d.preempts++
	d.remove(v)
	d.waiting = append([]*specRun{v}, d.waiting...)
}

func (d *Driver) fail(r *specRun) {
	d.release(r, false)
	d.remove(r)
	d.failed = append(d.failed, r)
}

func (d *Driver) release(r *specRun, cache bool) {
	d.cfg.Managers.Target.Release(r.target, cache)
	d.cfg.Managers.Draft.Release(r.draft, cache)
}

func (d *Driver) remove(r *specRun) {
	for i, c := range d.running {
		if c == r {
			d.running = append(d.running[:i], d.running[i+1:]...)
			return
		}
	}
}

func (d *Driver) contains(r *specRun) bool {
	for _, c := range d.running {
		if c == r {
			return true
		}
	}
	return false
}

// acceptance returns the deterministic number of draft tokens accepted
// this iteration: leading Bernoulli(AcceptRate) successes among K.
func (d *Driver) acceptance(r *specRun) int {
	acc := 0
	for k := 0; k < d.cfg.K; k++ {
		x := uint64(r.req.ID)*0x9E3779B97F4A7C15 ^ uint64(r.iter)*0xBF58476D1CE4E5B9 ^ uint64(k)*0x94D049BB133111EB
		x ^= x >> 31
		x *= 0xD6E8FEB86659FD93
		x ^= x >> 29
		if float64(x%1_000_000)/1_000_000 < d.cfg.AcceptRate {
			acc++
		} else {
			break
		}
	}
	return acc
}

func (d *Driver) genToken(r *specRun, pos int) core.Token {
	x := uint64(r.req.ID)*0x2545F4914F6CDD1D + uint64(pos)
	x ^= x >> 29
	return core.Token{ID: int32(x%50000 + 1)}
}

func (d *Driver) result() *Result {
	res := &Result{
		Duration:    d.clock,
		Steps:       d.step,
		Finished:    len(d.finished),
		Failed:      len(d.failed),
		Preemptions: d.preempts,
	}
	if d.clock > 0 {
		res.ReqPerSec = float64(len(d.finished)) / d.clock.Seconds()
		res.TokensPerSec = float64(d.generated) / d.clock.Seconds()
	}
	if d.verifies > 0 {
		res.MeanAccepted = float64(d.acceptedSum) / float64(d.verifies)
	}
	if d.iters > 0 {
		res.MeanBatch = float64(d.batchSum) / float64(d.iters)
	}
	return res
}
