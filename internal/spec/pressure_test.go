package spec

import (
	"testing"

	"jenga/internal/baseline"
	"jenga/internal/workload"
)

// TestSpecDecodePreemptionUnderPressure: a shared heap too small for
// the whole batch forces preemptions; everything still completes.
func TestSpecDecodePreemptionUnderPressure(t *testing.T) {
	ms, err := baseline.NewJengaShared(miniTarget(), miniDraft(), 700<<10, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Target: miniTarget(), Draft: miniDraft(), Device: testDevice(),
		Managers: ms, K: 4, AcceptRate: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGen(31)
	reqs := g.ShareGPT(8)
	for i := range reqs {
		if len(reqs[i].Prompt) > 100 {
			reqs[i].Prompt = reqs[i].Prompt[:100]
		}
		reqs[i].OutputLen = 200 // decode growth forces preemption
	}
	workload.AllAtOnce(reqs)
	res, err := d.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != 8 {
		t.Fatalf("finished %d of 8 (failed %d)", res.Finished, res.Failed)
	}
	if res.Preemptions == 0 {
		t.Error("expected preemptions under tight shared memory")
	}
	if u := ms.Target.Usage(); u.Used != 0 {
		t.Errorf("leaked memory: %+v", u)
	}
}

// TestSpecDecodeImpossibleRequestFails: a prompt no configuration can
// hold is failed rather than looping.
func TestSpecDecodeImpossibleRequestFails(t *testing.T) {
	ms, err := baseline.NewJengaShared(miniTarget(), miniDraft(), 400<<10, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Target: miniTarget(), Draft: miniDraft(), Device: testDevice(),
		Managers: ms, K: 4, AcceptRate: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGen(33)
	reqs := g.ShareGPT(2)
	reqs[0].Prompt = g.LongDocQA(1)[0].Prompt[:20000] // cannot fit
	reqs[0].OutputLen = 4
	if len(reqs[1].Prompt) > 100 {
		reqs[1].Prompt = reqs[1].Prompt[:100]
	}
	reqs[1].OutputLen = 4
	workload.AllAtOnce(reqs)
	res, err := d.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Finished != 1 {
		t.Errorf("finished/failed = %d/%d, want 1/1", res.Finished, res.Failed)
	}
}

// TestMeanBatchAndThroughputConsistency: sanity relations between the
// reported aggregates.
func TestSpecResultConsistency(t *testing.T) {
	ms, err := baseline.NewVLLMManual(miniTarget(), miniDraft(), 8<<20, 8, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		Target: miniTarget(), Draft: miniDraft(), Device: testDevice(),
		Managers: ms, K: 4, AcceptRate: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(reqsFor(34, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBatch <= 0 || res.MeanBatch > 6 {
		t.Errorf("mean batch %f out of range", res.MeanBatch)
	}
	if res.TokensPerSec <= 0 {
		t.Error("token throughput must be positive")
	}
	// High acceptance should accept more than half the draft tokens.
	if res.MeanAccepted < 2 {
		t.Errorf("mean accepted %f too low for 0.9 acceptance", res.MeanAccepted)
	}
}
