package spec

import (
	"testing"
	"time"

	"jenga/internal/baseline"
	"jenga/internal/gpu"
	"jenga/internal/model"
	"jenga/internal/workload"
)

func miniTarget() *model.Spec {
	return &model.Spec{
		Name: "mini-target", Params: 400_000_000, WeightBytes: 2, HiddenSize: 512,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 8, BytesPerToken: 256},
		},
	}
}

func miniDraft() *model.Spec {
	return &model.Spec{
		Name: "mini-draft", Params: 40_000_000, WeightBytes: 2, HiddenSize: 128,
		Groups: []model.KVGroup{
			{Name: "self", Kind: model.FullAttention, Layers: 2, BytesPerToken: 64},
		},
	}
}

func testDevice() gpu.Device {
	return gpu.Device{Name: "t", MemBytes: 1 << 30, FLOPS: 50e12, MemBW: 500e9,
		StepOverhead: time.Millisecond}
}

func reqsFor(seed int64, n int) []workload.Request {
	g := workload.NewGen(seed)
	reqs := g.ShareGPT(n)
	for i := range reqs {
		if len(reqs[i].Prompt) > 200 {
			reqs[i].Prompt = reqs[i].Prompt[:200]
		}
		reqs[i].OutputLen = 40
	}
	workload.AllAtOnce(reqs)
	return reqs
}

func runWith(t *testing.T, ms baseline.Managers, n int) *Result {
	t.Helper()
	d, err := New(Config{
		Target: miniTarget(), Draft: miniDraft(), Device: testDevice(),
		Managers: ms, K: 4, AcceptRate: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(reqsFor(11, n))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpecDecodeJengaShared(t *testing.T) {
	ms, err := baseline.NewJengaShared(miniTarget(), miniDraft(), 8<<20, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	res := runWith(t, ms, 8)
	if res.Finished != 8 || res.Failed != 0 {
		t.Fatalf("finished %d failed %d", res.Finished, res.Failed)
	}
	if res.MeanAccepted <= 0 || res.MeanAccepted > 4 {
		t.Errorf("mean accepted = %.2f, want (0,4]", res.MeanAccepted)
	}
	if res.ReqPerSec <= 0 {
		t.Error("throughput must be positive")
	}
	// Memory drains at the end.
	if u := ms.Target.Usage(); u.Used != 0 {
		t.Errorf("leaked memory: %+v", u)
	}
}

// TestSharedBeatsMaxUnderPressure: with tight memory, Jenga's shared
// heap batches more requests than vLLM-max (draft tokens in
// target-sized pages) — the Fig. 19 mechanism.
func TestSharedBeatsMaxUnderPressure(t *testing.T) {
	capacity := int64(1 << 20)
	shared, err := baseline.NewJengaShared(miniTarget(), miniDraft(), capacity, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	vmax, err := baseline.NewVLLMMax(miniTarget(), miniDraft(), capacity, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	js := runWith(t, shared, 10)
	vm := runWith(t, vmax, 10)
	if js.Finished != 10 || vm.Finished != 10 {
		t.Fatalf("finished: jenga %d vmax %d", js.Finished, vm.Finished)
	}
	if js.ReqPerSec < vm.ReqPerSec {
		t.Errorf("shared heap %.3f req/s should be at least vLLM-max %.3f",
			js.ReqPerSec, vm.ReqPerSec)
	}
}

func TestManualSplitRuns(t *testing.T) {
	ms, err := baseline.NewVLLMManual(miniTarget(), miniDraft(), 4<<20, 8, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := runWith(t, ms, 6)
	if res.Finished != 6 {
		t.Fatalf("finished %d of 6 (failed %d)", res.Finished, res.Failed)
	}
}

func TestAcceptanceDeterministicAndBounded(t *testing.T) {
	ms, err := baseline.NewJengaShared(miniTarget(), miniDraft(), 1<<20, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Target: miniTarget(), Draft: miniDraft(), Device: testDevice(),
		Managers: ms, K: 4, AcceptRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r := &specRun{req: &workload.Request{ID: 3}}
	a1 := d.acceptance(r)
	a2 := d.acceptance(r)
	if a1 != a2 {
		t.Error("acceptance must be deterministic per (request, iteration)")
	}
	if a1 < 0 || a1 > 4 {
		t.Errorf("acceptance %d out of range", a1)
	}
	var sum int
	for i := 0; i < 200; i++ {
		r2 := &specRun{req: &workload.Request{ID: int64(i)}, iter: i}
		sum += d.acceptance(r2)
	}
	mean := float64(sum) / 200
	// E[leading successes of Bernoulli(0.5), capped at 4] ≈ 0.9375.
	if mean < 0.6 || mean > 1.3 {
		t.Errorf("mean acceptance %.2f, want ≈ 0.94", mean)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing specs should error")
	}
	if _, err := New(Config{Target: miniTarget(), Draft: miniDraft()}); err == nil {
		t.Error("missing managers should error")
	}
}
