// Long-context serving with sliding-window attention: Ministral-8B
// answering questions over ~90k-token documents on one H100. The same
// engine runs with the PagedAttention baseline (which keeps every
// token's KV in every layer) and with Jenga (which frees KV outside
// each window), showing the decode-batch and throughput gap of
// Figs. 13 and 15.
package main

import (
	"fmt"
	"log"

	"jenga"
)

func main() {
	spec := jenga.Models.Ministral8B()
	dev := jenga.H100()
	budget, err := jenga.KVBudget(spec, dev, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %.1f GiB KV budget\n", spec.Name, dev.Name, float64(budget)/(1<<30))

	load := func() []jenga.Request {
		g := jenga.NewWorkloadGen(7)
		reqs := g.LongDocQA(12)
		jenga.AllAtOnce(reqs)
		return reqs
	}

	run := func(name string, mgr jenga.Manager) {
		eng, err := jenga.NewEngine(jenga.EngineConfig{
			Spec: spec, Device: dev, Manager: mgr,
			MaxBatchTokens: 8192, MaxPrefills: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(load())
		if err != nil {
			log.Fatal(err)
		}
		u := mgr.Usage()
		fmt.Printf("%-16s %.3f req/s  decode batch %.2f  finished %d/%d  preemptions %d  (end: %0.1f GiB free)\n",
			name, res.ReqPerSec, res.MeanDecodeBatch, res.Finished,
			res.Finished+res.Failed, res.Preemptions, float64(u.Free)/(1<<30))
	}

	paged, err := jenga.NewPagedBaseline(jenga.BaselineConfig{
		Spec: spec, CapacityBytes: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	run("PagedAttention", paged)

	jm, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: budget, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	run("Jenga", jm)
}
