// Quickstart: allocate, commit, hit the prefix cache and inspect memory
// accounting on a heterogeneous model — the smallest end-to-end tour of
// the Jenga manager API.
package main

import (
	"fmt"
	"log"

	"jenga"
)

func main() {
	// Gemma-2 27B interleaves full attention with sliding-window
	// attention — two KV groups with different dependency patterns.
	spec := jenga.Models.Gemma2_27B()
	fmt.Printf("model: %s\n", spec)

	// Size the KV cache for an H100 and build the two-level manager.
	budget, err := jenga.KVBudget(spec, jenga.H100(), 0)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec:              spec,
		CapacityBytes:     budget,
		EnablePrefixCache: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	geo := mgr.Geometry()
	fmt.Printf("LCM page: %d bytes; per-type pages: %v\n",
		geo.LargePageBytes, geo.SmallPageBytes)

	// A 10 000-token request: reserve, commit, inspect.
	seq := &jenga.Sequence{ID: 1, PromptLen: 10_000}
	for i := 0; i < 10_000; i++ {
		seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(i%50_000 + 1)})
	}
	if err := mgr.Reserve(seq, len(seq.Tokens), 1); err != nil {
		log.Fatal(err)
	}
	mgr.Commit(seq, len(seq.Tokens), 1)

	u := mgr.Usage()
	fmt.Printf("after prefill: used %.2f GiB (full %.2f GiB, window %.2f GiB — the window keeps only %d tokens)\n",
		gib(u.Used), gib(u.PerGroup["full"].Used), gib(u.PerGroup["window"].Used),
		spec.Group("window").Window)

	// Release with caching: pages stay evictable; an identical request
	// hits the prefix cache and skips nearly all prefill compute.
	mgr.Release(seq, true)
	repeat := &jenga.Sequence{ID: 2, PromptLen: 10_000, Tokens: seq.Tokens}
	hit := mgr.Lookup(repeat)
	fmt.Printf("prefix cache hit for identical request: %d of %d tokens\n", hit, len(seq.Tokens))

	if err := mgr.Reserve(repeat, len(repeat.Tokens), 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("claimed from cache: %d tokens (compute only %d)\n",
		mgr.CachedPrefix(repeat), len(repeat.Tokens)-mgr.CachedPrefix(repeat))
	mgr.Release(repeat, true)
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }
