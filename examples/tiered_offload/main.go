// Tiered KV offload (§8): a host-memory tier with swap-based
// preemption, versus vLLM-style recompute preemption with no tier.
//
// The scenario serves 24 shared-prefix groups whose combined prefix
// working set is many times the GPU KV budget: the evictor constantly
// discards one group's prefix to make room for another's. Without a
// tier those bytes are simply gone — every arrival recomputes its
// group's 600-token prefix from scratch, and a preemption victim
// whose pages were evicted recomputes its own work too. With a host
// tier, whole-large-page eviction spills instead of discarding and
// prefix lookups restore spilled blocks over PCIe, so the engine pays
// transfer time instead of recompute FLOPs; PreemptMode=swap
// additionally copies a victim's pages down at preemption time, so
// its resume never depends on eviction luck.
//
// Run: go run ./examples/tiered_offload
package main

import (
	"fmt"
	"sort"
	"time"

	"jenga"
)

// miniSpec is a Gemma-shaped full+window hybrid small enough that a
// 1 MiB KV budget models a badly starved replica: a loaded machine
// where preemption is the norm, not the exception.
func miniSpec() *jenga.Spec {
	return &jenga.Spec{
		Name: "mini-win", Params: 100_000_000, WeightBytes: 2, HiddenSize: 256,
		Groups: []jenga.KVGroup{
			{Name: "full", Kind: jenga.FullAttention, Layers: 1, BytesPerToken: 256},
			{Name: "window", Kind: jenga.SlidingWindow, Layers: 3, BytesPerToken: 256, Window: 64},
		},
	}
}

func run(mode jenga.PreemptMode, hostBytes int64) *jenga.Result {
	spec := miniSpec()
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec:              spec,
		CapacityBytes:     1 << 20, // deliberately starved
		TokensPerPage:     8,
		EnablePrefixCache: true,
		RequestAware:      true,
		HostTierBytes:     hostBytes,
	})
	if err != nil {
		panic(err)
	}
	eng, err := jenga.NewEngine(jenga.EngineConfig{
		Spec: spec,
		Device: jenga.Device{
			Name: "small-gpu", MemBytes: 1 << 30, FLOPS: 50e12, MemBW: 500e9,
			PCIeBW: 25e9, StepOverhead: time.Millisecond,
		},
		Manager: mgr, MaxBatchTokens: 512, MaxPrefills: 2,
		MaxRunning: 16, PreemptMode: mode,
	})
	if err != nil {
		panic(err)
	}
	gen := jenga.NewWorkloadGen(42)
	reqs := gen.PrefixGroups(24, 8, 600, 64)
	gen.PoissonArrivals(reqs, 400)
	res, err := eng.Run(reqs)
	if err != nil {
		panic(err)
	}
	return res
}

func p99(res *jenga.Result) time.Duration {
	ts := make([]time.Duration, 0, len(res.PerRequest))
	for _, rm := range res.PerRequest {
		ts = append(ts, rm.TTFT)
	}
	if len(ts) == 0 {
		return 0
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[(len(ts)*99+99)/100-1]
}

func main() {
	fmt.Println("tiered offload: host-tier swap vs recompute when the prefix working set")
	fmt.Println("overflows GPU KV (24 shared prefixes x 600 tokens vs a 1 MiB budget)")
	fmt.Println()
	fmt.Printf("%-22s %9s %9s %10s %10s %9s %9s %9s\n",
		"mode", "finished", "computed", "restored", "tier-hit", "hit", "p99 TTFT", "e2e mean")
	for _, c := range []struct {
		name string
		mode jenga.PreemptMode
		host int64
	}{
		{"recompute (no tier)", jenga.PreemptRecompute, 0},
		{"swap (64 MiB tier)", jenga.PreemptSwap, 64 << 20},
	} {
		res := run(c.mode, c.host)
		fmt.Printf("%-22s %9d %9d %10d %8.1f%% %8.1f%% %9s %9s\n",
			c.name, res.Finished, res.ComputedPromptTokens,
			res.RestoredTokens, 100*res.TierHitRate, 100*res.HitRate,
			p99(res).Round(time.Millisecond), res.MeanE2E.Round(time.Millisecond))
		if c.host > 0 {
			fmt.Printf("%-22s %s\n", "", fmt.Sprintf(
				"tier: %d spills (%d MiB D2H), %d block restores (%d MiB H2D), host %d/%d MiB",
				res.SwapOuts, res.SwapOutBytes>>20, res.SwapIns, res.SwapInBytes>>20,
				res.HostTierUsed>>20, res.HostTierCapacity>>20))
		}
	}
	fmt.Println()
	fmt.Println("The tier trades PCIe transfer time for recompute FLOPs: evicted prefixes")
	fmt.Println("survive one tier down, so the computed-token column collapses, the hit")
	fmt.Println("rate jumps, and tail TTFT improves with it.")
}
