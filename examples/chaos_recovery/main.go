// Chaos and recovery: crash one of four replicas mid-burst.
//
// The same seeded churn stream runs three times:
//
//  1. Baseline — no faults. The reference scorecard.
//  2. Crash, no recovery. At 40% through the burst one replica dies:
//     its in-flight KV and queue are gone and its host-tier pages die
//     with the process. The fleet routes around the corpse, but the
//     lost requests never finish and the fleet directory keeps
//     pointing at content that no longer exists.
//  3. Crash, recovery on. The same plan — bit-identical faults — but
//     the recovery machinery reacts: the directory drops every entry
//     naming the dead holder, its in-flight requests re-dispatch to
//     the coolest survivors (recomputing from their prompts), and peer
//     transfers that hit the fault window retry within a bounded
//     budget before falling back to local recompute.
//
// The crash is part of the simulation's deterministic schedule, not
// randomness at run time: a chaos plan is a pure function of its seed,
// so a failure scenario reproduces exactly — same crash step, same
// lost requests, same recovery decisions.
//
// Run: go run ./examples/chaos_recovery
package main

import (
	"fmt"
	"log"
	"time"

	"jenga"
)

const (
	replicas = 4
	rate     = 70 // req/s, just above the knee so requests are in flight
	deadline = 6 * time.Second
)

// churn builds the seeded replica-churn stream: 15 prefix groups of
// 1024 tokens whose popularity rotates through 4 phases.
func churn() []jenga.Request {
	gen := jenga.NewWorkloadGen(42)
	reqs := gen.ChurnGroups(15, 32, 1024, 128, 4)
	gen.PoissonArrivals(reqs, rate)
	jenga.SetDeadlines(reqs, deadline)
	return reqs
}

// plan schedules the crash: replica 3 dies at 2.8s (mid-burst for this
// stream) and peer transfers fail 20% of the time.
func plan() *jenga.ChaosPlan {
	p := jenga.NewChaosPlan(7).Crash(3, 2800*time.Millisecond)
	p.FetchFailRate = 0.2
	return p
}

func run(pol jenga.ChaosPolicy) *jenga.ClusterResult {
	c, err := jenga.NewCluster(jenga.ClusterConfig{
		Spec:          jenga.Models.Gemma2_2B(),
		Device:        jenga.H100(),
		Replicas:      replicas,
		CapacityBytes: 256 << 20, // starved: the working set overflows to the tiers
		HostTierBytes: 2 << 30,
		PreemptMode:   jenga.PreemptSwap,
		SLOTTFT:       500 * time.Millisecond,
		Fleet:         jenga.FleetPolicy{Store: true, Migrate: true},
		Chaos:         pol,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.ServeOnline(churn())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	reqs := len(churn())
	fmt.Printf("chaos recovery: %d × Gemma-2-2B, %d requests at %d req/s; replica 3 crashes at 2.8s\n\n",
		replicas, reqs, rate)
	fmt.Printf("%-18s %9s %7s %6s %7s %7s %7s %10s\n",
		"mode", "goodput", "done", "lost", "redisp", "hit", "peer", "p99 TTFT")
	for _, c := range []struct {
		name string
		pol  jenga.ChaosPolicy
	}{
		{"no-faults", jenga.ChaosPolicy{}},
		{"crash", jenga.ChaosPolicy{Plan: plan()}},
		{"crash+recovery", jenga.ChaosPolicy{Plan: plan(), Recover: true}},
	} {
		res := run(c.pol)
		fmt.Printf("%-18s %9.1f %7d %6d %7d %6.1f%% %6.1f%% %10s\n",
			c.name, res.Goodput, res.Finished, res.LostRequests, res.Redispatched,
			100*res.HitRate, 100*res.PeerHitRate, res.P99TTFT.Round(time.Millisecond))
		if c.pol.Plan != nil {
			fmt.Printf("%-18s crashes %d, directory entries invalidated %d, transfer retries %d, transfer failures %d\n",
				"", res.Crashes, res.DirInvalidations, res.FetchRetries, res.FetchFailures)
		}
	}

	fmt.Println()
	fmt.Println("The crash costs the fleet its in-flight requests and poisons the")
	fmt.Println("directory; recovery invalidates the dead holder, re-dispatches the")
	fmt.Println("lost work to survivors, and bounds every transfer retry — same")
	fmt.Println("fault schedule, no request left behind.")
}
