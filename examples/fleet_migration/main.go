// Fleet memory: a cluster-wide KV store and live request migration.
//
// Two scenarios on the same four-replica fleet:
//
//  1. Replica churn. Group popularity phase-shifts through the stream
//     (ChurnGroups), so a replica keeps meeting prefixes that some
//     *other* replica prefilled during an earlier phase and has since
//     spilled to its host tier. Without the fleet store those tokens
//     are recomputed locally; with it, the fleet directory finds the
//     holder and the prefix arrives as a page-set over the
//     interconnect — transfer time instead of prefill FLOPs.
//
//  2. Scale-down. One replica drains mid-stream. Without migration its
//     in-flight requests are shed (terminal EventShed, work lost).
//     With migration each one is swapped out, handed to the coolest
//     survivor, and resumes where it left off — first-token latency
//     already paid, decode position preserved. With the store on top,
//     the destination restores the migrated prefix from the fleet
//     instead of recomputing it.
//
// Run: go run ./examples/fleet_migration
package main

import (
	"fmt"
	"log"
	"time"

	"jenga"
)

const (
	replicas = 4
	rate     = 70 // req/s, just above the knee so queues form
	deadline = 2 * time.Second
)

// churn builds the seeded replica-churn stream: 15 prefix groups of
// 1024 tokens whose popularity rotates through 4 phases.
func churn() []jenga.Request {
	gen := jenga.NewWorkloadGen(42)
	reqs := gen.ChurnGroups(15, 32, 1024, 128, 4)
	gen.PoissonArrivals(reqs, rate)
	jenga.SetDeadlines(reqs, deadline)
	return reqs
}

func run(fl jenga.FleetPolicy) *jenga.ClusterResult {
	c, err := jenga.NewCluster(jenga.ClusterConfig{
		Spec:          jenga.Models.Gemma2_2B(),
		Device:        jenga.H100(),
		Replicas:      replicas,
		CapacityBytes: 256 << 20, // starved: the 15-group working set overflows
		HostTierBytes: 2 << 30,
		PreemptMode:   jenga.PreemptSwap,
		SLOTTFT:       250 * time.Millisecond,
		Fleet:         fl,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.ServeOnline(churn())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Printf("fleet memory: %d × Gemma-2-2B, replica-churn stream at %d req/s\n\n", replicas, rate)

	fmt.Println("1) cluster-wide KV store vs local recompute")
	fmt.Printf("   %-16s %9s %7s %7s %12s %10s\n",
		"mode", "goodput", "hit", "peer", "computed", "p99 TTFT")
	for _, c := range []struct {
		name string
		fl   jenga.FleetPolicy
	}{
		{"local-recompute", jenga.FleetPolicy{}},
		{"fleet-store", jenga.FleetPolicy{Store: true}},
	} {
		res := run(c.fl)
		fmt.Printf("   %-16s %9.1f %6.1f%% %6.1f%% %12d %10s\n",
			c.name, res.Goodput, 100*res.HitRate, 100*res.PeerHitRate,
			res.ComputedPromptTokens, res.P99TTFT.Round(time.Millisecond))
		if c.fl.Store {
			fmt.Printf("   %-16s %d peer fetches moved %d MiB over the interconnect\n",
				"", res.PeerHits, res.PeerBytes>>20)
		}
	}

	fmt.Println("\n2) scale-down: one replica drains 3s into the stream")
	fmt.Printf("   %-18s %9s %7s %6s %6s %10s\n",
		"mode", "goodput", "done", "shed", "migr", "p99 TTFT")
	drain := jenga.FleetPolicy{DrainAfter: 3 * time.Second, DrainReplicas: 1}
	for _, c := range []struct {
		name string
		fl   jenga.FleetPolicy
	}{
		{"shed", drain},
		{"migrate-recompute", func() jenga.FleetPolicy { f := drain; f.Migrate = true; return f }()},
		{"migrate-transfer", func() jenga.FleetPolicy { f := drain; f.Migrate = true; f.Store = true; return f }()},
	} {
		res := run(c.fl)
		fmt.Printf("   %-18s %9.1f %7d %6d %6d %10s\n",
			c.name, res.Goodput, res.Finished, res.Shed, res.Migrations,
			res.P99TTFT.Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("The store turns another replica's spilled prefill into a page-set")
	fmt.Println("transfer; migration turns a drain from lost work into a hand-off.")
}
