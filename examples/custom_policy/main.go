// Custom layer policy: the paper's headline extensibility claim (§5,
// Fig. 9) is that new attention variants plug into Jenga by
// implementing one small interface. This example adds a
// "StreamingLLM"-style attention-sink policy — keep the first
// SinkTokens tokens plus a sliding window (Xiao et al., attention
// sinks) — without touching the manager.
package main

import (
	"fmt"
	"log"

	"jenga"
)

// sinkPolicy implements jenga.Policy for attention-sink layers: the
// next token reads the first Sink tokens and the last Window tokens;
// everything between is dead. A prefix hits if both regions are cached.
type sinkPolicy struct {
	Sink, Window int
}

// AccessedFrom reports the window start (the sink region is handled by
// FreeBelow never reaching it).
func (p sinkPolicy) AccessedFrom(projLen int) int {
	if projLen <= p.Window {
		return 0
	}
	return projLen - p.Window
}

// FreeBelow uses plain window semantics; the sink region is protected
// by KeptBelow (the KeepAlive extension), which the manager consults
// before demoting any page below this boundary.
func (p sinkPolicy) FreeBelow(projLen int) int {
	if projLen <= p.Window {
		return 0
	}
	return projLen - p.Window
}

// KeptBelow implements jenga.KeepAlive: the first Sink tokens are read
// by every future step and must stay resident.
func (p sinkPolicy) KeptBelow(int) int { return p.Sink }

// ValidPrefix requires the sink and the window suffix to be cached.
func (p sinkPolicy) ValidPrefix(v *jenga.GroupSeqView, prefix int) bool {
	pl := v.ProjCount[prefix]
	lo := 0
	if pl > p.Window {
		lo = pl - p.Window
	}
	return v.RangeCached(0, min(p.Sink, pl)) && v.RangeCached(lo, pl)
}

// BlockPriority evicts later blocks first, but sink blocks last of all.
func (p sinkPolicy) BlockPriority(b int, _ uint64) int64 {
	if b*16 < p.Sink {
		return -1 // sink pages: lowest eviction priority
	}
	return int64(b)
}

func main() {
	// A model with one full-attention group and one "sink" group that
	// we override with the custom policy (declared as sliding window so
	// the spec validates; the policy decides actual behavior).
	spec := &jenga.Spec{
		Name: "sink-demo", Params: 1_000_000_000, WeightBytes: 2, HiddenSize: 1024,
		Groups: []jenga.KVGroup{
			{Name: "full", Kind: jenga.FullAttention, Layers: 8, BytesPerToken: 2048},
			{Name: "sink", Kind: jenga.SlidingWindow, Layers: 24, BytesPerToken: 2048, Window: 1024},
		},
	}
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: 1 << 30, EnablePrefixCache: true, RequestAware: true,
		PolicyOverride: map[string]jenga.Policy{
			"sink": sinkPolicy{Sink: 64, Window: 1024},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serve an 8k-token request: the sink group keeps 64 sink tokens +
	// 1024 window tokens; the middle ~7k tokens' KV is freed as the
	// window slides.
	const n = 8192
	seq := &jenga.Sequence{ID: 1, PromptLen: n}
	for i := 0; i < n; i++ {
		seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(i%50_000 + 1)})
	}
	if err := mgr.Reserve(seq, n, 1); err != nil {
		log.Fatal(err)
	}
	mgr.Commit(seq, n, 1)
	u := mgr.Usage()
	fmt.Printf("full group:  %6.2f MiB (all %d tokens)\n",
		mib(u.PerGroup["full"].Used), n)
	fmt.Printf("sink group:  %6.2f MiB (64 sink + 1024 window tokens held; %.2f MiB if unmanaged)\n",
		mib(u.PerGroup["sink"].Used), float64(n*24*2048)/(1<<20))

	// The custom hit rule: prefixes are valid when sink+window survive.
	mgr.Release(seq, true)
	probe := &jenga.Sequence{ID: 2, PromptLen: n, Tokens: seq.Tokens}
	fmt.Printf("prefix hit on repeat: %d of %d tokens\n", mgr.Lookup(probe), n)
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
