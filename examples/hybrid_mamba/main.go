// Hybrid Transformer–Mamba serving: Jamba-1.5 52B mixes four
// full-attention layers with 28 Mamba layers whose per-sequence state
// is 1344× the per-token attention KV. The baseline statically
// partitions memory into a Mamba slot pool plus a paged KV pool; Jenga
// serves both from one LCM heap and checkpoints Mamba states every 512
// tokens for prefix caching (§5.3).
package main

import (
	"fmt"
	"log"

	"jenga"
)

func main() {
	spec := jenga.Models.Jamba52B()
	dev := jenga.H100()
	budget, err := jenga.KVBudget(spec, dev, 0)
	if err != nil {
		log.Fatal(err)
	}
	attn := spec.Group("attn")
	mamba := spec.Group("mamba")
	fmt.Printf("%s: mamba state %s per layer = %d× the per-token attention KV\n",
		spec.Name, mib(int64(mamba.StateBytes)), mamba.StateBytes/attn.BytesPerToken)
	geo, err := spec.Geometry(jenga.LCMPage, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LCM page %s; attention pages per large page: %d\n",
		mib(int64(geo.LargePageBytes)), geo.Ratio["attn"])

	load := func() []jenga.Request {
		g := jenga.NewWorkloadGen(5)
		reqs := g.MMLUPro(96, 1024)
		jenga.AllAtOnce(reqs)
		return reqs
	}
	run := func(name string, mgr jenga.Manager) {
		eng, err := jenga.NewEngine(jenga.EngineConfig{
			Spec: spec, Device: dev, Manager: mgr,
			MaxBatchTokens: 8192, MaxPrefills: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(load())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %.3f req/s  decode batch %.1f  finished %d\n",
			name, res.ReqPerSec, res.MeanDecodeBatch, res.Finished)
	}

	// Baseline: a static pool of 32 Mamba slots (vLLM v0.6.3's
	// partition); idle slots are pure waste.
	paged, err := jenga.NewPagedBaseline(jenga.BaselineConfig{
		Spec: spec, CapacityBytes: budget, MaxSeqs: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	u := paged.Usage()
	fmt.Printf("baseline static mamba pool: %.1f GiB reserved up front\n", float64(u.Wasted)/(1<<30))
	run("static partition (vLLM)", paged)

	jm, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: budget, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	run("Jenga LCM heap", jm)

	// With prefix caching on, Jenga checkpoints Mamba states every 512
	// tokens; an identical prompt hits at the checkpoint boundary.
	jc, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: budget, EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	seq := &jenga.Sequence{ID: 1, PromptLen: 1500}
	for i := 0; i < 1500; i++ {
		seq.Tokens = append(seq.Tokens, jenga.Token{ID: int32(i + 1)})
	}
	if err := jc.Reserve(seq, 1500, 1); err != nil {
		log.Fatal(err)
	}
	jc.Commit(seq, 1500, 1)
	jc.Release(seq, true)
	rep := &jenga.Sequence{ID: 2, PromptLen: 1500, Tokens: seq.Tokens}
	fmt.Printf("mamba prefix hit for identical prompt: %d tokens (checkpoint-aligned multiple of 512)\n",
		jc.Lookup(rep))
}

func mib(b int64) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }
