// Online serving: wrap one engine replica in the event-driven Server,
// stream a request's tokens as they are generated, cancel a stream
// mid-generation with a context (its KV returns to the pool, committed
// pages stay reusable in the prefix cache), lean on backpressure and
// SLO-aware admission under a burst, and read the goodput/attainment
// scorecard at the end — the serving loop the batch experiments are a
// thin driver over.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jenga"
)

func main() {
	spec := jenga.Models.Gemma2_2B()
	budget, err := jenga.KVBudget(spec, jenga.H100(), 0)
	if err != nil {
		log.Fatal(err)
	}
	// A deliberately small heap so the burst below actually contends.
	mgr, err := jenga.NewManager(jenga.ManagerConfig{
		Spec: spec, CapacityBytes: budget / 8,
		EnablePrefixCache: true, RequestAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	const sloTTFT = 250 * time.Millisecond
	srv, err := jenga.NewServer(jenga.ServerConfig{
		Engine: jenga.EngineConfig{
			Spec: spec, Device: jenga.H100(), Manager: mgr,
			// Shed at arrival when KV demand cannot fit or the queue
			// already busts the TTFT target.
			Admission: jenga.AdmissionChain(
				jenga.KVAdmission{},
				jenga.SLOAdmission{TTFT: sloTTFT},
			),
		},
		MaxQueue: 256,
		SLOTTFT:  sloTTFT,
	})
	if err != nil {
		log.Fatal(err)
	}

	gen := jenga.NewWorkloadGen(42)
	reqs := gen.PrefixGroups(6, 32, 512, 96)
	gen.PoissonArrivals(reqs, 600)
	jenga.SetDeadlines(reqs, 2*time.Second)

	// Watch the first request's stream in detail, token by token.
	first, err := srv.Submit(context.Background(), reqs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming request %d (%d prompt tokens, %d output tokens):\n",
		first.ID(), len(reqs[0].Prompt), reqs[0].OutputLen)
	for ev := range first.Events() {
		switch ev.Type {
		case jenga.EventFirstToken:
			fmt.Printf("  first token at %v (TTFT)\n", ev.Clock.Round(time.Millisecond))
		case jenga.EventToken:
			if ev.Generated%16 == 0 {
				fmt.Printf("  %d tokens at %v\n", ev.Generated, ev.Clock.Round(time.Millisecond))
			}
		case jenga.EventPreempted:
			fmt.Printf("  preempted at %v (recompute)\n", ev.Clock.Round(time.Millisecond))
		case jenga.EventFinished:
			fmt.Printf("  finished at %v\n", ev.Clock.Round(time.Millisecond))
		}
	}

	// A user who gives up mid-generation: the stream is cancelled
	// deterministically after its 24th token (a context cancelling
	// works too — Submit's ctx wires straight to Stream.Cancel — but
	// lands at whatever simulated instant the wall clock reaches).
	// Every page the stream holds returns to the pool; committed pages
	// stay reusable in the prefix cache.
	abandonedReq := reqs[1]
	abandonedReq.OutputLen = 100_000
	abandoned, err := srv.Submit(context.Background(), abandonedReq)
	if err != nil {
		log.Fatal(err)
	}
	abandoned.CancelAfter(24)

	// The rest of the burst: submit everything, count admission
	// verdicts as streams terminate.
	streams := []*jenga.Stream{first, abandoned}
	for _, r := range reqs[2:] {
		st, err := srv.Submit(context.Background(), r)
		if err == jenga.ErrQueueFull {
			fmt.Printf("backpressure: request %d bounced (queue full)\n", r.ID)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		streams = append(streams, st)
	}
	if err := srv.Drain(); err != nil {
		log.Fatal(err)
	}

	if res, ok := abandoned.Result(); ok {
		fmt.Printf("\nabandoned stream %d: state %v after %d tokens, E2E %v\n",
			abandoned.ID(), res.State, res.Generated, res.E2E.Round(time.Millisecond))
	}
	u := srv.Snapshot().Usage
	fmt.Printf("post-drain KV: used %d, cached %d bytes (cancelled pages back in the pool)\n",
		u.Used, u.Cached)

	rep := srv.Report()
	fmt.Printf("\nscorecard over %d submissions:\n", rep.Submitted)
	fmt.Printf("  finished %d, shed %d, cancelled %d, failed %d\n",
		rep.Finished, rep.Shed, rep.Cancelled, rep.Failed)
	fmt.Printf("  %.1f req/s, goodput %.1f/s, SLO attainment %.1f%%, shed rate %.1f%%\n",
		rep.ReqPerSec, rep.Goodput, 100*rep.SLOAttainment, 100*rep.ShedRate)
	fmt.Printf("  TTFT p50 %v p99 %v, E2E p99 %v, hit rate %.1f%%\n",
		rep.P50TTFT.Round(time.Millisecond), rep.P99TTFT.Round(time.Millisecond),
		rep.P99E2E.Round(time.Millisecond), 100*rep.HitRate)
}
