// Vision-language serving: LLaVA-OneVision on MMMU-pro-like traffic
// with chunked prefill. Without an embedding cache the vision encoder
// re-runs for every prefill chunk (the vLLM baseline); Jenga's
// free-on-demand embedding cache (§6.2a) runs it once per request and
// releases embeddings as chunks consume them — the Fig. 18 experiment
// as a runnable program.
package main

import (
	"fmt"
	"log"

	"jenga"
)

func main() {
	spec := jenga.Models.LLaVAOneVision7B()
	dev := jenga.H100()
	budget, err := jenga.KVBudget(spec, dev, 0.35)
	if err != nil {
		log.Fatal(err)
	}

	load := func() []jenga.Request {
		g := jenga.NewWorkloadGen(3)
		reqs := g.MMMUPro(16, spec.Vision.TokensPerImage)
		jenga.AllAtOnce(reqs)
		return reqs
	}

	run := func(name string, mgr jenga.Manager, strategy jenga.VisionStrategy) {
		eng, err := jenga.NewEngine(jenga.EngineConfig{
			Spec: spec, Device: dev, Manager: mgr,
			MaxBatchTokens: 1024, // the paper's chunked-prefill size
			Vision:         strategy,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(load())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %.3f req/s  E2E %.2fs  encoder runs %d (for %d requests)\n",
			name, res.ReqPerSec, res.MeanE2E.Seconds(), res.EncoderRuns, res.Finished)
	}

	paged, err := jenga.NewPagedBaseline(jenga.BaselineConfig{Spec: spec, CapacityBytes: budget})
	if err != nil {
		log.Fatal(err)
	}
	run("no embedding cache", paged, jenga.VisionNone)

	jm, err := jenga.NewManager(jenga.ManagerConfig{Spec: spec, CapacityBytes: budget, RequestAware: true})
	if err != nil {
		log.Fatal(err)
	}
	run("Jenga free-on-demand", jm, jenga.VisionFreeOnDemand)

	jm2, err := jenga.NewManager(jenga.ManagerConfig{Spec: spec, CapacityBytes: budget, RequestAware: true})
	if err != nil {
		log.Fatal(err)
	}
	run("Jenga reuse-KV (§6.2b)", jm2, jenga.VisionReuseKV)
}
