// Speculative decoding with a shared Jenga heap: the character.ai-style
// target and a 1B draft serve from one memory pool, exchanging large
// pages as the mix of draft and target KV shifts (§6.1). The same
// workload runs under the two §7.4 baselines — vLLM-max (uniform pages
// sized for the target) and the SmartSpec-style manual split — the
// Fig. 19 experiment as a runnable program.
package main

import (
	"fmt"
	"log"

	"jenga"
)

func main() {
	target := jenga.Models.CharacterAI70B()
	draft := jenga.Models.Llama32_1B()
	dev := jenga.H100()
	budget, err := jenga.KVBudget(target, dev, 0)
	if err != nil {
		log.Fatal(err)
	}
	budget -= draft.WeightFootprint() // the draft's weights live on-device too

	load := func() []jenga.Request {
		g := jenga.NewWorkloadGen(11)
		reqs := g.MMLUPro(48, 1024)
		jenga.AllAtOnce(reqs)
		return reqs
	}

	run := func(name string, ms jenga.SpecManagers) {
		d, err := jenga.NewSpeculative(jenga.SpecConfig{
			Target: target, Draft: draft, Device: dev,
			Managers: ms, K: 4, AcceptRate: 0.7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := d.Run(load())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %.3f req/s  batch %.1f  accepted %.2f/4 draft tokens per verify\n",
			name, res.ReqPerSec, res.MeanBatch, res.MeanAccepted)
	}

	vmax, err := jenga.NewVLLMMax(target, draft, budget, 16, false)
	if err != nil {
		log.Fatal(err)
	}
	run("vLLM-max", vmax)

	manual, err := jenga.NewVLLMManual(target, draft, budget, 16, false, 4)
	if err != nil {
		log.Fatal(err)
	}
	run("vLLM-manual", manual)

	shared, err := jenga.NewJengaShared(target, draft, budget, 16, false)
	if err != nil {
		log.Fatal(err)
	}
	run("Jenga shared", shared)
}
