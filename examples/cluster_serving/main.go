// Cluster serving: run four engine replicas behind each routing policy
// on a shared-prefix workload and watch why routing decides the
// fleet-wide prefix-cache hit rate — round-robin makes every replica
// re-prefill every few-shot template, prefix-affinity pins each
// template to one replica so the fleet's caches partition the prefix
// space.
package main

import (
	"fmt"
	"log"
	"time"

	"jenga"
)

func main() {
	spec := jenga.Models.Gemma2_2B()
	const replicas = 4

	// 15 few-shot templates of 1024 tokens shared across 300 requests,
	// arriving Poisson at 150 req/s — concurrent tenants whose traffic
	// interleaves at the router.
	gen := jenga.NewWorkloadGen(42)
	reqs := gen.PrefixGroups(15, 20, 1024, 128)
	gen.PoissonArrivals(reqs, 150)
	fmt.Printf("%d replicas × %s, %d requests over 15 shared prefixes\n\n",
		replicas, spec.Name, len(reqs))

	for _, policy := range []jenga.RouterPolicy{
		jenga.RoundRobin, jenga.LeastLoaded, jenga.PrefixAffinity,
	} {
		c, err := jenga.NewCluster(jenga.ClusterConfig{
			Spec:     spec,
			Device:   jenga.H100(),
			Replicas: replicas,
			Policy:   policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Serve(reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %6.1f req/s  p50 TTFT %-8s p99 E2E %-8s hit %5.1f%%  imbalance %.2f\n",
			res.Policy, res.ReqPerSec,
			res.P50TTFT.Round(time.Millisecond), res.P99E2E.Round(time.Millisecond),
			100*res.HitRate, res.Imbalance)
		for _, pr := range res.PerReplica {
			fmt.Printf("   replica %d served %3d requests, hit %5.1f%%\n",
				pr.Replica, pr.Requests, 100*pr.Result.HitRate)
		}
		fmt.Println()
	}
	fmt.Println("prefix-affinity trades a little load balance for cache locality;")
	fmt.Println("least-loaded balances tokens but scatters prefixes like round-robin.")
}
